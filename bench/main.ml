(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation plus two extensions (see EXPERIMENTS.md, index E1..E16) and
   times the core computations with Bechamel (one Test.make per
   experiment).

   Usage:
     dune exec bench/main.exe                    run every experiment
     dune exec bench/main.exe -- e5 e8           run selected experiments
     dune exec bench/main.exe -- --no-bechamel   skip the timing suite
     dune exec bench/main.exe -- e17 --tiny      E17 CI smoke (small sizes) *)

open Dynmos_util
open Dynmos_expr
open Dynmos_cell
open Dynmos_core
open Dynmos_netlist
open Dynmos_sim
open Dynmos_faultsim
open Dynmos_protest
open Dynmos_atpg
open Dynmos_circuits
module Chaos = Dynmos_chaos.Chaos

let pf = Format.printf

let header id title = pf "@.==== %s: %s ====@." (String.uppercase_ascii id) title

(* ---------------------------------------------------------------------- *)
(* E1 — Fig. 1: the faulty static CMOS NOR function table                  *)
(* ---------------------------------------------------------------------- *)

let e1 () =
  let nor = Stdcells.fig1_nor in
  let fault = Fault.Network_open 1 in
  pf "Static CMOS NOR, pull-down transistor of input A open.@.";
  pf "  A B | Z(t+d) good | Z(t+d) faulty@.";
  List.iter
    (fun (a, b) ->
      let good = snd (Charge_sim.static_step nor Charge_sim.static_initial [ a; b ]) in
      let f0 =
        snd
          (Charge_sim.static_step ~fault nor { Charge_sim.out = Charge_sim.Driven false } [ a; b ])
      in
      let f1 =
        snd
          (Charge_sim.static_step ~fault nor { Charge_sim.out = Charge_sim.Driven true } [ a; b ])
      in
      let faulty = if Logic.equal f0 f1 then String.make 1 (Logic.to_char f0) else "Z(t)" in
      pf "  %d %d |      %c      |     %s@." (Bool.to_int a) (Bool.to_int b) (Logic.to_char good)
        faulty)
    [ (false, false); (false, true); (true, false); (true, true) ];
  pf "  paper column: 1, 0, Z(t), 0 — sequential behaviour at A=1,B=0.@."

(* ---------------------------------------------------------------------- *)
(* E2 — Fig. 2: performance degradation by a stuck-closed pull-up          *)
(* ---------------------------------------------------------------------- *)

let e2 () =
  let inv = Stdcells.fig2_inverter in
  pf "Static CMOS inverter, T1 (pull-up) permanently closed; behaviour vs@.";
  pf "resistance ratio R(T1)/R(T2):@.";
  pf "  %8s | %-14s | %s@." "ratio" "classification" "effect";
  List.iter
    (fun ratio ->
      let electrical =
        {
          Fault_map.default_electrical with
          Fault_map.r_inverter_p = ratio;
          r_inverter_n = 1.0;
          delay_factor = Float.max 1.5 (2.0 *. ratio);
        }
      in
      match Fault_map.map ~electrical inv (Fault.Pullup_closed 1) with
      | Fault_map.Combinational f when Truth_table.equal_exprs f Expr.true_ ->
          pf "  %8.2f | %-14s | output stuck high (pull-up wins the fight)@." ratio "s1-z"
      | Fault_map.Combinational f ->
          pf "  %8.2f | %-14s | faulty function z = %s@." ratio "combinational"
            (Expr.to_string f)
      | Fault_map.Contention { resolves_to; factor; _ } ->
          pf "  %8.2f | %-14s | pull-down inverter z = %s, t_HL x%.1f@." ratio "degradation"
            (Expr.to_string resolves_to) factor
      | Fault_map.Delay { factor; _ } -> pf "  %8.2f | %-14s | x%.1f slower@." ratio "delay" factor
      | Fault_map.Sequential _ -> pf "  %8.2f | %-14s |@." ratio "sequential")
    [ 0.1; 0.2; 0.45; 1.0; 2.0; 5.0; 10.0 ];
  pf "  paper: R(T1) > R(T2) turns the gate into a pull down inverter with a@.";
  pf "  longer high-to-low delay; only a timing-aware model can test it.@."

(* ---------------------------------------------------------------------- *)
(* E3 — Section 3: the dynamic nMOS fault classes nMOS-1 .. nMOS-(2n+2)    *)
(* ---------------------------------------------------------------------- *)

let classify cell logical =
  match logical with
  | Fault_map.Combinational f ->
      if Truth_table.equal_exprs f Expr.false_ then "s0-z"
      else if Truth_table.equal_exprs f Expr.true_ then "s1-z"
      else Fmt.str "%s = %s" (Cell.output cell) (Minimize.minimize_to_string f)
  | Fault_map.Delay { observed_as = None; _ } -> "delay (possibly undetectable)"
  | Fault_map.Delay { observed_as = Some f; _ } ->
      Fmt.str "delay, seen as %s = %s at max speed" (Cell.output cell)
        (Minimize.minimize_to_string f)
  | Fault_map.Sequential _ -> "SEQUENTIAL"
  | Fault_map.Contention _ -> "contention"

let e3 () =
  let cell = Stdcells.nand 3 Technology.Dynamic_nmos in
  pf "Dynamic nMOS gate (Fig. 6), n = 3, T = a*b*c, z = !T.@.";
  pf "  %-10s %-26s %s@." "label" "fault" "logical effect";
  List.iter
    (fun f ->
      pf "  %-10s %-26s %s@."
        (Option.value ~default:"-" (Fault.paper_label cell f))
        (Fault.describe cell f)
        (classify cell (Fault_map.map cell f)))
    (Fault.enumerate cell);
  let seq =
    List.filter (fun f -> not (Charge_sim.nmos_combinational ~fault:f cell)) (Fault.enumerate cell)
  in
  pf "  charge-level check: %d of %d faults sequential (paper claims 0).@." (List.length seq)
    (List.length (Fault.enumerate cell));
  let open_class = classify cell (Fault_map.map cell Fault.Precharge_open) in
  let closed_class = classify cell (Fault_map.map cell Fault.Precharge_closed) in
  pf "  precharge open -> %s, precharge closed -> %s (same class: %b)@." open_class closed_class
    (String.equal open_class closed_class)

(* ---------------------------------------------------------------------- *)
(* E4 — Section 3: the domino CMOS fault classes CMOS-1 .. CMOS-4          *)
(* ---------------------------------------------------------------------- *)

let e4 () =
  let cell = Stdcells.fig9 in
  let dump label electrical =
    pf "  [%s devices]@." label;
    List.iter
      (fun f ->
        pf "    %-8s %-18s %s@."
          (Option.value ~default:"-" (Fault.paper_label cell f))
          (Fault.describe cell f)
          (classify cell (Fault_map.map ~electrical cell f)))
      [
        Fault.Evaluate_closed;
        Fault.Evaluate_open;
        Fault.Precharge_closed;
        Fault.Precharge_open;
        Fault.Inverter_p_open;
        Fault.Inverter_n_open;
        Fault.Inverter_p_closed;
        Fault.Inverter_n_closed;
      ]
  in
  pf "Domino CMOS gate (Fig. 4) clocking and inverter faults:@.";
  dump "strong restoring" Fault_map.default_electrical;
  dump "weak restoring" Fault_map.weak_electrical;
  let seq =
    List.filter
      (fun f -> not (Charge_sim.domino_combinational ~fault:f cell))
      (Fault.enumerate cell)
  in
  pf "  charge-level check over all %d faults: %d sequential (paper claims 0).@."
    (List.length (Fault.enumerate cell))
    (List.length seq)

(* ---------------------------------------------------------------------- *)
(* E5 — Section 5: the Fig. 9 fault-class table                            *)
(* ---------------------------------------------------------------------- *)

let e5 () =
  let lib = Faultlib.generate Stdcells.fig9 in
  Faultlib.pp_table Format.std_formatter lib;
  pf "  (paper: 10 distinguishable classes; class 3 = {b,c closed},@.";
  pf "   class 7 = {d,e open}, class 9 = {CMOS-2, CMOS-3}, class 10 = CMOS-4)@."

(* ---------------------------------------------------------------------- *)
(* E6 — PROTEST: signal probability estimation                             *)
(* ---------------------------------------------------------------------- *)

let e6 () =
  pf "Estimated (independence assumption) vs exact signal probabilities:@.";
  pf "  %-18s %8s %9s %9s@." "circuit" "nets" "max err" "mean err";
  List.iter
    (fun nl ->
      let c = Compiled.compile nl in
      let w = Array.make (Compiled.n_inputs c) 0.5 in
      let max_err, mean_err = Signal_prob.estimator_error c ~pi_weights:w in
      pf "  %-18s %8d %9.4f %9.4f@." (Netlist.name nl) (Compiled.n_nets c) max_err mean_err)
    [
      Generators.and_tree ~technology:Technology.Domino_cmos 8;
      Generators.carry_chain ~technology:Technology.Domino_cmos 6;
      Generators.c17 ~style:`Static ();
      Generators.c17 ~style:`Domino ();
      Generators.parity ~style:`Domino 5;
      Generators.ripple_adder ~style:`Domino 2;
    ];
  pf "  fan-out-free circuits are exact; reconvergence introduces the error.@."

(* ---------------------------------------------------------------------- *)
(* E7 — PROTEST: detection probabilities and necessary test length          *)
(* ---------------------------------------------------------------------- *)

let e7 () =
  pf "Necessary random-test length for a demanded confidence:@.";
  pf "  %-18s %6s %9s | %8s %8s %8s@." "circuit" "faults" "p_min" "c=0.99" "c=0.999" "c=0.9999";
  List.iter
    (fun nl ->
      let u = Faultsim.universe nl in
      let w = Array.make (Compiled.n_inputs u.Faultsim.compiled) 0.5 in
      let probs = Detect_prob.exact u ~pi_weights:w in
      let p_min = Array.fold_left Float.min 1.0 probs in
      let len c = Test_length.required_length ~confidence:c probs in
      pf "  %-18s %6d %9.5f | %8d %8d %8d@." (Netlist.name nl) (Faultsim.n_sites u) p_min
        (len 0.99) (len 0.999) (len 0.9999))
    [
      Generators.fig9_network ();
      Generators.c17 ~style:`Domino ();
      Generators.carry_chain ~technology:Technology.Domino_cmos 6;
      Generators.ripple_adder ~style:`Domino 2;
      Generators.wide_and ~technology:Technology.Domino_cmos 12;
    ]

(* ---------------------------------------------------------------------- *)
(* E8 — PROTEST: optimized input signal probabilities                       *)
(* ---------------------------------------------------------------------- *)

let e8 () =
  pf "Test length at uniform p=0.5 vs PROTEST-optimized probabilities@.";
  pf "(confidence 0.999):@.";
  pf "  %-18s %10s %10s %10s@." "circuit" "uniform" "optimized" "reduction";
  List.iter
    (fun (nl, objective) ->
      let u = Faultsim.universe nl in
      let r = Optimize.run ~objective ~confidence:0.999 u in
      match (r.Optimize.initial_length, r.Optimize.optimized_length) with
      | Some a, Some b ->
          pf "  %-18s %10d %10d %9.0fx@." (Netlist.name nl) a b
            (float_of_int a /. float_of_int (max 1 b))
      | _ -> pf "  %-18s (undetectable fault)@." (Netlist.name nl))
    [
      (Generators.wide_and ~technology:Technology.Domino_cmos 8, Optimize.Exact);
      (Generators.wide_and ~technology:Technology.Domino_cmos 12, Optimize.Exact);
      (Generators.wide_and ~technology:Technology.Domino_cmos 16, Optimize.Estimated);
      (Generators.carry_chain ~technology:Technology.Domino_cmos 8, Optimize.Estimated);
    ];
  pf "  paper: 'the necessary test length can be reduced by orders of@.";
  pf "  magnitudes' — the wide-AND family shows the >= 100x shape.@."

(* ---------------------------------------------------------------------- *)
(* E9 — Assumptions A1/A2                                                   *)
(* ---------------------------------------------------------------------- *)

let e9 () =
  let nl = Generators.carry_chain ~technology:Technology.Domino_cmos 6 in
  let c = Compiled.compile nl in
  let n_in = Compiled.n_inputs c in
  let n_nets = Compiled.n_nets c in
  pf "A2 requires every node charged and discharged at least once.@.";
  pf "Probability (100 trials) that k uniform random patterns achieve it@.";
  pf "on the %d-net domino carry chain:@." n_nets;
  let prng = Prng.create 2718 in
  List.iter
    (fun k ->
      let success = ref 0 in
      for _ = 1 to 100 do
        let seen1 = Array.make n_nets false in
        let seen0 = Array.make n_nets false in
        for _ = 1 to k do
          let pi = Array.init n_in (fun _ -> Prng.bool prng) in
          let nets = Compiled.eval_nets c pi in
          Array.iteri (fun i v -> if v then seen1.(i) <- true else seen0.(i) <- true) nets
        done;
        let all = ref true in
        for i = 0 to n_nets - 1 do
          if not (seen1.(i) && seen0.(i)) then all := false
        done;
        if !all then incr success
      done;
      pf "  k = %4d : %3d%%@." k !success)
    [ 2; 4; 8; 16; 32; 64 ];
  let u = Faultsim.universe nl in
  let r = Podem.generate_set u in
  let doubled = Podem.schedule_double r.Podem.vectors in
  let seen1 = Array.make n_nets false and seen0 = Array.make n_nets false in
  Array.iter
    (fun pi ->
      let nets = Compiled.eval_nets c pi in
      Array.iteri (fun i v -> if v then seen1.(i) <- true else seen0.(i) <- true) nets)
    doubled;
  let all = Array.for_all2 (fun a b -> a && b) seen1 seen0 in
  pf "  PODEM set (%d vectors) applied twice satisfies A2: %b@."
    (Array.length r.Podem.vectors) all

(* ---------------------------------------------------------------------- *)
(* E10 — random vs deterministic test ("as efficient as ATPG")              *)
(* ---------------------------------------------------------------------- *)

let e10 () =
  let nl = Generators.wide_and ~technology:Technology.Domino_cmos 12 in
  let u = Faultsim.universe nl in
  let n_in = Compiled.n_inputs u.Faultsim.compiled in
  let report = Protest.analyze ~confidence:0.999 ~optimize:true nl in
  let opt_weights =
    match report.Protest.optimization with
    | Some o -> o.Optimize.optimized_weights
    | None -> Array.make n_in 0.5
  in
  let podem = Podem.generate_set u in
  let budgets = [ 8; 32; 128; 512; 2048; 8192 ] in
  pf "Fault coverage vs pattern count on %s (%d sites):@." (Netlist.name nl)
    (Faultsim.n_sites u);
  pf "  %8s | %14s %16s %8s@." "patterns" "uniform random" "optimized random" "PODEM";
  let prng_u = Prng.create 5 in
  let prng_o = Prng.create 5 in
  let uniform = Faultsim.random_patterns prng_u ~n_inputs:n_in ~count:8192 in
  let optimized =
    Faultsim.random_patterns ~weights:opt_weights prng_o ~n_inputs:n_in ~count:8192
  in
  List.iter
    (fun k ->
      let cov pats n = Faultsim.coverage (Faultsim.run_parallel u (Array.sub pats 0 n)) in
      let podem_cov =
        let n = min k (Array.length podem.Podem.vectors) in
        Faultsim.coverage (Faultsim.run_parallel u (Array.sub podem.Podem.vectors 0 n))
      in
      pf "  %8d | %13.1f%% %15.1f%% %7.1f%%@." k
        (100.0 *. cov uniform k)
        (100.0 *. cov optimized k)
        (100.0 *. podem_cov))
    budgets;
  pf "  PODEM set size: %d vectors.  The deterministic set is far shorter, but@."
    (Array.length podem.Podem.vectors);
  pf "  optimized random reaches full coverage orders of magnitude before@.";
  pf "  uniform random — and needs no search, only the weighted generator.@."

(* ---------------------------------------------------------------------- *)
(* E11 — fault library generation speed                                     *)
(* ---------------------------------------------------------------------- *)

let library_cells =
  [
    Stdcells.and_gate 2 Technology.Domino_cmos;
    Stdcells.or_gate 3 Technology.Domino_cmos;
    Stdcells.fig9;
    Stdcells.ao ~groups:[ 2; 2; 2 ] Technology.Domino_cmos;
    Stdcells.ao ~groups:[ 3; 3; 2 ] Technology.Domino_cmos;
    Stdcells.oa ~groups:[ 3; 3; 3; 3 ] Technology.Domino_cmos;
  ]

let e11 () =
  pf "Fault library generation ('a few seconds for a normal sized gate,@.";
  pf "less than 12 transistors of the switching net' on 1986 hardware):@.";
  pf "  %-14s %11s %7s %7s %12s@." "cell" "transistors" "faults" "classes" "time";
  List.iter
    (fun cell ->
      (* Wall clock, like every other timing in this harness (Sys.time is
         CPU time and disagrees once domains are involved). *)
      let t0 = Unix.gettimeofday () in
      let reps = 50 in
      let lib = ref (Faultlib.generate cell) in
      for _ = 2 to reps do
        lib := Faultlib.generate cell
      done;
      let dt = (Unix.gettimeofday () -. t0) /. float_of_int reps in
      pf "  %-14s %11d %7d %7d %9.3f ms@." (Cell.name cell) (Cell.n_transistors cell)
        !lib.Faultlib.n_faults (Faultlib.n_classes !lib) (1000.0 *. dt))
    library_cells;
  pf "  (timing distributions in the Bechamel section below)@."

(* ---------------------------------------------------------------------- *)
(* E12 — Fig. 5: no races and spikes in domino networks                     *)
(* ---------------------------------------------------------------------- *)

let e12 () =
  pf "Transition counting, same function in both styles, 64 input changes:@.";
  pf "  %-10s | %13s %13s | %13s %13s@." "function" "static trans" "static glitch"
    "domino trans" "domino glitch";
  List.iter
    (fun (name, bn) ->
      let n = Boolnet.n_inputs bn in
      let cs = Compiled.compile (Boolnet.to_static bn) in
      let sim = Event_sim.create cs in
      Event_sim.settle sim (Array.make n false);
      let st = ref 0 and sg = ref 0 in
      for row = 0 to 63 do
        let pi = Array.init n (fun i -> ((row * 37) lsr i) land 1 = 1) in
        let tr, _ = Event_sim.apply sim pi in
        st := !st + Event_sim.total_gate_transitions sim tr;
        sg := !sg + Event_sim.glitch_count tr
      done;
      let cd = Compiled.compile (Boolnet.to_domino_dual_rail bn) in
      let dt = ref 0 and dg = ref 0 in
      for row = 0 to 63 do
        let pi = Array.init n (fun i -> ((row * 37) lsr i) land 1 = 1) in
        let tr, _ = Event_sim.domino_evaluate cd (Boolnet.dual_rail_vector bn pi) in
        Array.iteri
          (fun i t ->
            if i >= Compiled.n_inputs cd then begin
              dt := !dt + t;
              if t > 1 then incr dg
            end)
          tr
      done;
      pf "  %-10s | %13d %13d | %13d %13d@." name !st !sg !dt !dg)
    [
      ("parity6", Generators.parity_boolnet 6);
      ("adder2", Generators.ripple_adder_boolnet 2);
      ("mux2", Generators.mux_tree_boolnet 2);
      ("c17", Generators.c17_boolnet ());
    ];
  pf "  domino glitch count is structurally zero: monotone evaluation@.";
  pf "  ('races and spikes cannot occur', Fig. 5).@."

(* ---------------------------------------------------------------------- *)
(* E13 — Section 4(b): leakage measurement vs at-speed self test            *)
(* ---------------------------------------------------------------------- *)

let e13 () =
  pf "One bridging fault (stuck-closed precharge) somewhere on the die.@.";
  pf "IDDQ measures the *whole* chip; the BILBO partition tests the faulty@.";
  pf "8-cell block at its own speed regardless of chip size:@.";
  pf "  %11s | %10s %12s | %s@." "transistors" "IDDQ rate" "false alarms" "block self test";
  let prng = Prng.create 31 in
  (* The faulty block is the same in every chip size: an 8-cell carry
     chain tested at its own clock. *)
  let block = Compiled.compile (Generators.carry_chain ~technology:Technology.Domino_cmos 8) in
  let delays = Timing.nominal_delays block in
  let propagate =
    Array.of_list
      (List.map
         (fun nm -> nm.[0] = 'c' || nm.[0] = 'p')
         (Netlist.inputs (Compiled.netlist block)))
  in
  let period = Timing.critical_path block delays propagate in
  let bist =
    Dynmos_bist.Selftest.test_delay_fault ~seed:3 block ~n_cycles:400 ~gate_id:0 ~factor:4.0
      ~period
  in
  List.iter
    (fun n ->
      let nl = Generators.carry_chain ~technology:Technology.Domino_cmos n in
      let c = Compiled.compile nl in
      let pi = Array.make (Compiled.n_inputs c) true in
      let rate = Power.detection_rate prng c ~faulty_gate:(Some 0) pi in
      let fp = Power.detection_rate prng c ~faulty_gate:None pi in
      pf "  %11d | %9.0f%% %11.1f%% | detected %b@." (Netlist.n_transistors nl)
        (100.0 *. rate) (100.0 *. fp) bist.Dynmos_bist.Selftest.detected)
    [ 8; 32; 128; 512; 2048 ];
  pf "  paper: 'it is hard to prove whether one faulty conducting path within@.";
  pf "  a large scaled integrated circuit leads to a significant and computable@.";
  pf "  rise of the power dissipation' — the IDDQ rate collapses with die size@.";
  pf "  while the at-speed block self test is size-independent.@."

(* ---------------------------------------------------------------------- *)
(* E14 — random tests satisfy A1/A2 "per se"                                *)
(* ---------------------------------------------------------------------- *)

let e14 () =
  let nl = Generators.c17 ~style:`Domino () in
  let u = Faultsim.universe nl in
  let c = u.Faultsim.compiled in
  let n_in = Compiled.n_inputs c in
  let n_nets = Compiled.n_nets c in
  let prng = Prng.create 99 in
  let trials = 200 in
  let total = ref 0 in
  for _ = 1 to trials do
    let seen1 = Array.make n_nets false and seen0 = Array.make n_nets false in
    let k = ref 0 in
    let done_ = ref false in
    while not !done_ do
      incr k;
      let pi = Array.init n_in (fun _ -> Prng.bool prng) in
      let nets = Compiled.eval_nets c pi in
      Array.iteri (fun i v -> if v then seen1.(i) <- true else seen0.(i) <- true) nets;
      done_ := Array.for_all2 (fun a b -> a && b) seen1 seen0
    done;
    total := !total + !k
  done;
  let mean_a2 = float_of_int !total /. float_of_int trials in
  let probs = Detect_prob.exact u ~pi_weights:(Array.make n_in 0.5) in
  let mean_detect =
    Array.fold_left (fun acc p -> acc +. Test_length.expected_first_detection p) 0.0 probs
    /. float_of_int (Array.length probs)
  in
  let slowest =
    Array.fold_left
      (fun acc p -> Float.max acc (Test_length.expected_first_detection p))
      0.0 probs
  in
  pf "Mean patterns until A2 holds (every node charged+discharged): %.1f@." mean_a2;
  pf "Mean expected first detection over faults: %.1f patterns@." mean_detect;
  pf "Slowest fault's expected first detection: %.1f patterns@." slowest;
  pf "  -> by the time any fault is expected to be caught, A1/A2 already@.";
  pf "  hold: 'random tests satisfy the assumptions A1 and A2 per se'.@."

(* ---------------------------------------------------------------------- *)
(* E15 (extension) — the cost of testing static CMOS: two-pattern tests    *)
(* ---------------------------------------------------------------------- *)

let e15 () =
  pf "Test applications per cell for the same switching function realized@.";
  pf "in static CMOS (stuck-opens need ordered two-pattern tests) and in@.";
  pf "domino CMOS (every fault class needs one vector):@.";
  pf "  %-10s | %10s %9s | %9s %9s@." "function" "seq faults" "pairs" "static" "domino";
  List.iter
    (fun (name, static_cell, dynamic_cell) ->
      let cmp = Two_pattern.compare_cells ~static_cell ~dynamic_cell in
      pf "  %-10s | %10d %9d | %9d %9d@." name cmp.Two_pattern.sequential_faults
        cmp.Two_pattern.two_pattern_tests cmp.Two_pattern.static_applications
        cmp.Two_pattern.dynamic_applications)
    [
      ("nor2", Stdcells.nor 2 Technology.Static_cmos, Stdcells.or_gate 2 Technology.Domino_cmos);
      ("nand3", Stdcells.nand 3 Technology.Static_cmos, Stdcells.and_gate 3 Technology.Domino_cmos);
      ( "aoi22",
        Stdcells.ao ~groups:[ 2; 2 ] Technology.Static_cmos,
        Stdcells.ao ~groups:[ 2; 2 ] Technology.Domino_cmos );
      ( "oai33",
        Stdcells.oa ~groups:[ 3; 3 ] Technology.Static_cmos,
        Stdcells.oa ~groups:[ 3; 3 ] Technology.Domino_cmos );
    ];
  pf "  ('static' counts one vector per combinational class plus an ordered@.";
  pf "  pair per stuck-open; pairs are additionally invalidated by scan@.";
  pf "  shifting, so they must be delivered back to back.)@."

(* ---------------------------------------------------------------------- *)
(* E16 (extension) — diagnosis: the classes are distinguishable            *)
(* ---------------------------------------------------------------------- *)

let e16 () =
  let u = Faultsim.universe (Generators.fig9_network ()) in
  pf "The Section-5 classes as a diagnosis dictionary (fig9):@.";
  pf "  pairwise distinguishable: %b@." (Diagnosis.pairwise_distinguishable u);
  let pats, groups = Diagnosis.diagnosing_patterns u in
  pf "  adaptive diagnosing set: %d patterns fully separate %d classes@."
    (Array.length pats) (Faultsim.n_sites u);
  pf "  final ambiguity groups: %d (all singletons: %b)@." (List.length groups)
    (List.for_all (fun g -> List.length g = 1) groups);
  Array.iteri
    (fun i p ->
      pf "    pattern %d: %s@." (i + 1)
        (String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list p))))
    pats;
  (* a worked diagnosis *)
  let dict = Diagnosis.dictionary u pats in
  let site = u.Faultsim.sites.(2) in
  (match Diagnosis.diagnose_site dict site with
  | [ s ] ->
      pf "  injected %s -> diagnosed %s@."
        (Faultsim.site_label u site)
        (Faultsim.site_label u s)
  | l -> pf "  diagnosis ambiguous (%d candidates)@." (List.length l));
  pf "  (the paper's 'distinguishable fault classes', operationalized)@."

(* ---------------------------------------------------------------------- *)
(* E17 (extension) — fault-simulation engine throughput and domain scaling *)
(* ---------------------------------------------------------------------- *)

(* Times every fault-simulation engine on generated circuits of increasing
   size and emits machine-readable BENCH_faultsim.json so the performance
   trajectory of the hot path is tracked from PR to PR.  Wall-clock time
   (not Sys.time: CPU time sums over domains and would hide any speedup);
   drop disabled so the workload is size-stable.

   Methodology: one warmup iteration (touches the caches, triggers any
   lazy compilation) followed by at least five timed repetitions; the
   JSON records median, min and max so a noisy host is visible as spread
   instead of silently biasing a single sample.  Domain-scaling entries
   record both the requested and the effective domain count: the pool
   clamps tiny workloads to one domain (see Parallel_exec), so a
   single-site-per-domain workload reports speedup ~1.0 instead of the
   spawn-cost collapse. *)

let tiny_mode = ref false
(* --tiny: CI smoke — small circuits, few patterns, same code path. *)

let bench_circuits () =
  let full =
    [
      (* fig9 is the deliberate tiny workload: a handful of sites, so
         every multi-domain request exercises the job/work clamps. *)
      ("fig9", Generators.fig9_network (), 128, [ 1; 2; 4; 16 ]);
      ("carry8", Generators.carry_chain ~technology:Technology.Domino_cmos 8, 128, [ 1; 2; 4 ]);
      ("carry16", Generators.carry_chain ~technology:Technology.Domino_cmos 16, 128, [ 1; 2; 4 ]);
      ( "rand60",
        Generators.random_monotone ~seed:7 ~n_inputs:12 ~n_gates:60
          ~technology:Technology.Domino_cmos (),
        128,
        [ 1; 2; 4 ] );
      ( "rand120",
        Generators.random_monotone ~seed:7 ~n_inputs:16 ~n_gates:120
          ~technology:Technology.Domino_cmos (),
        128,
        [ 1; 2; 4 ] );
    ]
  in
  if not !tiny_mode then full
  else
    (* rand60 stays in the smoke (at 32 patterns) so CI can assert the
       cone-vs-full eval reduction on a random circuit. *)
    List.filter_map
      (fun (name, nl, _, doms) ->
        match name with
        | "fig9" | "carry8" -> Some (name, nl, 16, doms)
        | "rand60" -> Some (name, nl, 32, doms)
        | _ -> None)
      full

type timing = { median : float; t_min : float; t_max : float; reps : int }

(* Gate evaluations one engine run performs, read off the engine's own
   "faultsim.run" obs event (the unit the cone restriction reduces;
   kernel-invocation counts are identical between algorithms by
   construction). *)
let gate_evals_of run =
  let module Obs = Dynmos_obs.Obs in
  let mem, fetch = Obs.memory_sink () in
  let obs = Obs.make mem in
  ignore (Sys.opaque_identity (run obs));
  List.fold_left
    (fun acc e ->
      if e.Obs.ev = "faultsim.run" then
        match List.assoc_opt "gate_evals" e.Obs.fields with Some (Obs.Int n) -> n | _ -> acc
      else acc)
    0 (fetch ())

let time_reps ?(warmup = 1) ?(reps = 5) f =
  for _ = 1 to warmup do
    ignore (Sys.opaque_identity (f ()))
  done;
  let samples = Array.make reps 0.0 in
  for i = 0 to reps - 1 do
    let t0 = Unix.gettimeofday () in
    ignore (Sys.opaque_identity (f ()));
    samples.(i) <- Unix.gettimeofday () -. t0
  done;
  Array.sort Float.compare samples;
  { median = samples.(reps / 2); t_min = samples.(0); t_max = samples.(reps - 1); reps }

let e17 () =
  let reps = 5 in
  pf "Engine throughput (patterns/s, drop disabled, wall clock, median of %d@." reps;
  pf "after 1 warmup) and domain scaling; recommended_domain_count = %d.@."
    (Domain.recommended_domain_count ());
  if !tiny_mode then pf "  (--tiny: reduced circuits and pattern counts)@.";
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Fmt.str
       "  \"env\": {\"recommended_domains\": %d, \"ocaml_version\": \"%s\", \"word_size\": %d, \
        \"os_type\": \"%s\", \"word_bits\": %d},\n"
       (Domain.recommended_domain_count ())
       Sys.ocaml_version Sys.word_size Sys.os_type Parallel_exec.word_bits);
  Buffer.add_string buf
    (Fmt.str "  \"timing\": {\"warmup\": 1, \"reps\": %d, \"statistic\": \"median\"},\n" reps);
  Buffer.add_string buf "  \"algo_evals_unit\": \"gate_evaluations\",\n";
  Buffer.add_string buf "  \"circuits\": [\n";
  let circuits = bench_circuits () in
  let n_circuits = List.length circuits in
  List.iteri
    (fun ci (name, nl, count, domain_counts) ->
      let u = Faultsim.universe nl in
      let prng = Prng.create 17 in
      let pats =
        Faultsim.random_patterns prng ~n_inputs:(List.length (Netlist.inputs nl)) ~count
      in
      pf "  %-10s %3d gates, %4d sites, %d patterns:@." name (Netlist.n_gates nl)
        (Faultsim.n_sites u) count;
      let pps t = float_of_int count /. Float.max 1e-9 t.median in
      let entry label t extra =
        pf "    %-26s %8.4f s [%0.4f..%0.4f]  %10.0f patterns/s%s@." label t.median t.t_min
          t.t_max (pps t) extra
      in
      let t_serial = time_reps ~reps (fun () -> Faultsim.run_serial ~drop:false u pats) in
      entry "serial" t_serial "";
      let t_bitpar = time_reps ~reps (fun () -> Faultsim.run_parallel ~drop:false u pats) in
      entry "bit-parallel" t_bitpar "";
      (* One stats-bearing run per (inner, n) reveals the effective domain
         count the clamp settled on; the timed runs then use the exact
         same configuration. *)
      let scaling inner =
        List.map
          (fun n ->
            let _, st =
              Faultsim.run_domain_parallel_stats ~drop:false ~inner ~num_domains:n u pats
            in
            let t =
              time_reps ~reps (fun () ->
                  Faultsim.run_domain_parallel ~drop:false ~inner ~num_domains:n u pats)
            in
            (n, st.Parallel_exec.effective_domains, t))
          domain_counts
      in
      let dom_bit = scaling Parallel_exec.Bit_parallel in
      let dom_ser = scaling Parallel_exec.Serial in
      let t1_of results =
        match List.find_opt (fun (n, _, _) -> n = 1) results with
        | Some (_, _, t) -> t.median
        | None -> (match results with (_, _, t) :: _ -> t.median | [] -> 1.0)
      in
      let report label results =
        let t1 = t1_of results in
        List.iter
          (fun (n, eff, t) ->
            entry
              (Fmt.str "%s x%d (eff %d)" label n eff)
              t
              (Fmt.str "  (speedup %.2fx)" (t1 /. t.median)))
          results
      in
      report "domains/bit-parallel" dom_bit;
      report "domains/serial" dom_ser;
      (* Cone vs full side by side on the single-domain engines: same
         patterns, bit-identical results; "evals" in the JSON counts
         *gate evaluations*, the unit the cone restriction reduces. *)
      let algo_pair engine_label run =
        List.map
          (fun (aname, algo) ->
            let ge = gate_evals_of (fun obs -> run algo (Some obs)) in
            let t = time_reps ~reps (fun () -> run algo None) in
            entry (Fmt.str "%s/%s" engine_label aname) t (Fmt.str "  (%d gate-evals)" ge);
            (aname, ge, t))
          [ ("cone", `Cone); ("full", `Full) ]
      in
      let algo_serial =
        algo_pair "serial" (fun algo obs -> Faultsim.run_serial ~drop:false ~algo ?obs u pats)
      in
      let algo_bitpar =
        algo_pair "bit-parallel" (fun algo obs ->
            Faultsim.run_parallel ~drop:false ~algo ?obs u pats)
      in
      (* The propagation engines' cone mode skips gates outside every
         live fault's fanout cone — measured with dropping on, because
         the restriction only bites as detected sites retire (with no
         dropping every gate stays inside some live site's cone).
         Their per-fault "evals" are identical between algorithms by
         construction — a gate no live fault reaches evaluates no
         faults either way — so the cone's win here is the skipped
         per-gate sweep overhead, i.e. wall-clock only. *)
      let algo_deductive =
        algo_pair "deductive" (fun algo obs ->
            Faultsim.run_deductive ~drop:true ~algo ?obs u pats)
      in
      let algo_concurrent =
        algo_pair "concurrent" (fun algo obs ->
            Faultsim.run_concurrent ~drop:true ~algo ?obs u pats)
      in
      let algo_ppsfp =
        algo_pair "ppsfp" (fun algo obs -> Faultsim.run_ppsfp ~drop:false ~algo ?obs u pats)
      in
      let json_timing t =
        Fmt.str
          "\"seconds_median\": %.6f, \"seconds_min\": %.6f, \"seconds_max\": %.6f, \"reps\": %d, \
           \"patterns_per_s\": %.1f"
          t.median t.t_min t.t_max t.reps (pps t)
      in
      (* Checkpoint overhead (rand60 only): the identical serial sweep
         with a checkpoint controller at the default interval (1000
         pattern-units: interval-gated ticks, a write every 1000
         patterns, one finalize write).  Measured on a campaign long
         enough for the interval to amortize the ~0.3 ms file write —
         checkpointing exists for long runs; on a 5 ms sweep the single
         finalize write alone would be ~6% and say nothing about the
         steady state.  The robustness tax is budgeted at < 2%; the JSON
         records the measured figure so regressions show up in the
         artifact diff. *)
      let checkpoint_json =
        if name <> "rand60" then ""
        else begin
          let ck_count = if !tiny_mode then 512 else 4096 in
          let prng = Prng.create 17 in
          let ck_pats =
            Faultsim.random_patterns prng
              ~n_inputs:(List.length (Netlist.inputs nl))
              ~count:ck_count
          in
          let t_plain =
            time_reps ~reps (fun () -> Faultsim.run_serial ~drop:false u ck_pats)
          in
          let path = Filename.temp_file "dynmos_bench_ckpt" ".dat" in
          let t_ckpt =
            time_reps ~reps (fun () ->
                let ctl = Faultsim.checkpoint_ctl ~path ~interval:1000 u ck_pats in
                Faultsim.run_serial ~drop:false ~checkpoint:ctl u ck_pats)
          in
          if Sys.file_exists path then Sys.remove path;
          let overhead =
            (t_ckpt.median -. t_plain.median) /. Float.max 1e-9 t_plain.median
          in
          let pps t = float_of_int ck_count /. Float.max 1e-9 t.median in
          pf "    %-26s %8.4f s [%0.4f..%0.4f]  %10.0f patterns/s  (%d patterns, overhead %+.2f%%)@."
            "serial+checkpoint" t_ckpt.median t_ckpt.t_min t_ckpt.t_max (pps t_ckpt) ck_count
            (100.0 *. overhead);
          let json_ck t =
            Fmt.str
              "\"seconds_median\": %.6f, \"seconds_min\": %.6f, \"seconds_max\": %.6f, \
               \"reps\": %d, \"patterns_per_s\": %.1f"
              t.median t.t_min t.t_max t.reps (pps t)
          in
          Fmt.str
            ",\n     \"checkpoint\": {\"interval\": 1000, \"patterns\": %d, \"without\": \
             {%s}, \"with\": {%s}, \"overhead_pct\": %.2f}"
            ck_count (json_ck t_plain) (json_ck t_ckpt) (100.0 *. overhead)
        end
      in
      (* Chaos-layer overhead (rand60 only): what arming the injection
         registry costs the serial hot loop when the tapped point is not
         configured (a spec whose only configured point the pattern
         engines never tap).  Two figures go into the artifact:

         - [overhead_pct]: end-to-end paired comparison, sides timed
           back to back within each rep so throttling/GC bursts hit
           both.  Informational only — single-rep noise on this class
           of box is ±5%, far above the figure it tries to resolve.
         - [derived_overhead_pct]: the gated number.  Time the tap
           itself in a tight loop for each registry (an unconfigured
           point executes identical instructions under both), scale
           the per-tap delta by the sweep's Exec_job tap count, and
           divide by the sweep's wall clock.  Resolves ~0.1% where the
           end-to-end ratio resolves ~5%.  Budget < 1%; CI gates on
           this field. *)
      let chaos_json =
        if name <> "rand60" then ""
        else begin
          let cn_count = if !tiny_mode then 2048 else 4096 in
          let cn_spec = "cache.insert=fail_prob:0,seed=1" in
          let prng = Prng.create 17 in
          let cn_pats =
            Faultsim.random_patterns prng
              ~n_inputs:(List.length (Netlist.inputs nl))
              ~count:cn_count
          in
          let inert =
            match Chaos.of_spec cn_spec with Ok c -> c | Error e -> failwith e
          in
          let run_off () = ignore (Faultsim.run_serial ~drop:false u cn_pats) in
          let run_armed () =
            ignore (Faultsim.run_serial ~drop:false ~chaos:inert u cn_pats)
          in
          run_off ();
          run_armed ();
          let ratios = Array.make reps 0.0 in
          let off_min = ref infinity and armed_min = ref infinity in
          for i = 0 to reps - 1 do
            let t0 = Unix.gettimeofday () in
            run_off ();
            let t1 = Unix.gettimeofday () in
            run_armed ();
            let t2 = Unix.gettimeofday () in
            let off = t1 -. t0 and armed = t2 -. t1 in
            off_min := Float.min !off_min off;
            armed_min := Float.min !armed_min armed;
            ratios.(i) <- armed /. Float.max 1e-9 off
          done;
          Array.sort compare ratios;
          let overhead = ratios.(reps / 2) -. 1.0 in
          let tap_loops = 20_000_000 in
          let time_taps c =
            let best = ref infinity in
            for _ = 1 to 3 do
              let t0 = Unix.gettimeofday () in
              for _ = 1 to tap_loops do
                Chaos.tap c Chaos.Exec_job
              done;
              best := Float.min !best (Unix.gettimeofday () -. t0)
            done;
            !best /. float_of_int tap_loops
          in
          let tap_off = time_taps Chaos.disabled in
          let tap_armed = time_taps inert in
          (* drop:false serial sweep taps Exec_job once per site per
             pattern. *)
          let taps_per_sweep = float_of_int (Faultsim.n_sites u * cn_count) in
          let derived =
            (tap_armed -. tap_off) *. taps_per_sweep /. Float.max 1e-9 !off_min
          in
          pf
            "    %-26s %8.4f s armed vs %8.4f s disabled  (%d patterns, end-to-end %+.2f%%)@."
            "serial+chaos(inert)" !armed_min !off_min cn_count (100.0 *. overhead);
          pf
            "    %-26s %8.2f ns armed vs %8.2f ns disabled per tap (derived overhead %+.3f%%)@."
            "chaos tap (unconfigured)" (1e9 *. tap_armed) (1e9 *. tap_off)
            (100.0 *. derived);
          Fmt.str
            ",\n     \"chaos\": {\"spec\": \"%s\", \"patterns\": %d, \"disabled_s\": %.6f, \
             \"armed_inert_s\": %.6f, \"overhead_pct\": %.2f, \"tap_ns_disabled\": %.3f, \
             \"tap_ns_armed\": %.3f, \"derived_overhead_pct\": %.3f}"
            cn_spec cn_count !off_min !armed_min (100.0 *. overhead) (1e9 *. tap_off)
            (1e9 *. tap_armed) (100.0 *. derived)
        end
      in
      let json_engine name t = Fmt.str "\"%s\": {%s}" name (json_timing t) in
      (* A clamped request (effective < requested) never ran on the asked
         domain count, so a speedup figure would compare two identical
         configurations and read as a scaling plateau; mark it instead. *)
      let json_scaled prefix results =
        let t1 = t1_of results in
        List.map
          (fun (n, eff, t) ->
            let verdict =
              if eff < n then "\"clamped\": true"
              else Fmt.str "\"speedup_vs_1\": %.3f" (t1 /. t.median)
            in
            Fmt.str
              "\"%s_%d\": {%s, %s, \"requested_domains\": %d, \
               \"effective_domains\": %d}"
              prefix n (json_timing t) verdict n eff)
          results
      in
      let json_algos label results =
        Fmt.str "\"%s\": {%s}" label
          (String.concat ", "
             (List.map
                (fun (aname, ge, t) ->
                  Fmt.str "\"%s\": {%s, \"evals\": %d, \"gate_evals_per_s\": %.1f}" aname
                    (json_timing t) ge
                    (float_of_int ge /. Float.max 1e-9 t.median))
                results))
      in
      Buffer.add_string buf
        (Fmt.str
           "    {\"name\": \"%s\", \"gates\": %d, \"sites\": %d, \"patterns\": %d,\n     \
            \"engines\": {%s},\n     \"algos\": {%s}%s%s}%s\n"
           name (Netlist.n_gates nl) (Faultsim.n_sites u) count
           (String.concat ", "
              ([ json_engine "serial" t_serial; json_engine "bit_parallel" t_bitpar ]
              @ json_scaled "domains_bit_parallel" dom_bit
              @ json_scaled "domains_serial" dom_ser))
           (String.concat ", "
              [
                json_algos "serial" algo_serial;
                json_algos "bit_parallel" algo_bitpar;
                json_algos "deductive" algo_deductive;
                json_algos "concurrent" algo_concurrent;
                json_algos "ppsfp" algo_ppsfp;
              ])
           checkpoint_json chaos_json
           (if ci = n_circuits - 1 then "" else ",")))
    circuits;
  Buffer.add_string buf "  ],\n";
  (* --- PPSFP vs bit-parallel: the headline gate-evals/s block ----------
     The kernel's reason to exist is raw gate-evaluation throughput, so
     the headline compares each engine's own gate_evals counter divided
     by its median wall time — dropping ON (group compaction exercised)
     and the cone algorithm on both sides, on the layered thousand-gate
     workload where memory layout dominates (rand60 stands in under
     --tiny so CI asserts the same invariant cheaply). *)
  let ppsfp_specs =
    if !tiny_mode then [ ("rand60", 256) ] else [ ("rand60", 500); ("rand1k", 500) ]
  in
  let ppsfp_groups = [ 4; 16; 64 ] in
  pf "  --- ppsfp vs bit-parallel (drop on, cone; headline: gate-evals/s) ---@.";
  let ppsfp_entries =
    List.map
      (fun (name, count) ->
        let nl = match Catalog.find name with Ok nl -> nl | Error m -> failwith m in
        let u = Faultsim.universe nl in
        let prng = Prng.create 17 in
        let pats =
          Faultsim.random_patterns prng ~n_inputs:(List.length (Netlist.inputs nl)) ~count
        in
        pf "  %-10s %4d gates, %5d sites, %d patterns:@." name (Netlist.n_gates nl)
          (Faultsim.n_sites u) count;
        let json_t t =
          Fmt.str
            "\"seconds_median\": %.6f, \"seconds_min\": %.6f, \"seconds_max\": %.6f, \
             \"reps\": %d"
            t.median t.t_min t.t_max t.reps
        in
        let measure label run =
          let ge = gate_evals_of (fun obs -> run (Some obs)) in
          let t = time_reps ~reps (fun () -> run None) in
          let geps = float_of_int ge /. Float.max 1e-9 t.median in
          pf "    %-26s %8.4f s [%0.4f..%0.4f]  %11.4g gate-evals/s@." label t.median
            t.t_min t.t_max geps;
          (t, ge, geps)
        in
        let t_bp, ge_bp, geps_bp =
          measure "bit-parallel/cone" (fun obs ->
              Faultsim.run_parallel ~drop:true ~algo:`Cone ?obs u pats)
        in
        let groups =
          List.map
            (fun g ->
              let t, ge, geps =
                measure
                  (Fmt.str "ppsfp/cone G=%d" g)
                  (fun obs ->
                    Faultsim.run_ppsfp ~drop:true ~algo:`Cone ~group:g ?obs u pats)
              in
              (g, t, ge, geps, geps /. Float.max 1e-9 geps_bp))
            ppsfp_groups
        in
        let best_g, best_ratio =
          List.fold_left
            (fun (bg, br) (g, _, _, _, r) -> if r > br then (g, r) else (bg, br))
            (0, 0.0) groups
        in
        pf "    headline: ppsfp G=%d reaches %.2fx bit-parallel gate-evals/s@." best_g
          best_ratio;
        Fmt.str
          "    {\"name\": \"%s\", \"patterns\": %d, \"sites\": %d,\n     \
           \"bit_parallel\": {%s, \"gate_evals\": %d, \"gate_evals_per_s\": %.1f},\n     \
           \"groups\": [%s],\n     \
           \"headline\": {\"group\": %d, \"speedup_gate_evals_per_s\": %.3f}}"
          name count (Faultsim.n_sites u) (json_t t_bp) ge_bp geps_bp
          (String.concat ", "
             (List.map
                (fun (g, t, ge, geps, r) ->
                  Fmt.str
                    "{\"group\": %d, %s, \"gate_evals\": %d, \"gate_evals_per_s\": %.1f, \
                     \"speedup_gate_evals_per_s\": %.3f}"
                    g (json_t t) ge geps r)
                groups))
          best_g best_ratio)
      ppsfp_specs
  in
  Buffer.add_string buf
    (Fmt.str "  \"ppsfp\": {\"drop\": true, \"algo\": \"cone\", \"circuits\": [\n%s\n  ]},\n"
       (String.concat ",\n" ppsfp_entries));
  (* --- Durability: the robustness tax and restart behaviour ------------
     What a durable serve pays per job over the bare sweep: a journal
     admit/done pair (fsync'd) plus a checkpoint controller at the
     default interval, timed against the identical plain run on a
     campaign long enough for the interval to amortize the file writes.
     Budget < 2%; the JSON records the measured figure so regressions
     show up in the artifact diff.  The restart pair times a full server
     boot plus first response on the same data dir: the cold boot
     executes the campaign, the warm boot answers from the rehydrated
     persistent cache with zero gate evaluations. *)
  let durability_json =
    let module Journal = Dynmos_server.Journal in
    let module Server = Dynmos_server.Server in
    let module Sjson = Dynmos_server.Json in
    let name = "rand60" in
    let count = if !tiny_mode then 512 else 4096 in
    let nl = match Catalog.find name with Ok nl -> nl | Error m -> failwith m in
    let u = Faultsim.universe nl in
    let prng = Prng.create 17 in
    let pats =
      Faultsim.random_patterns prng ~n_inputs:(List.length (Netlist.inputs nl)) ~count
    in
    pf "  --- durability (journal + checkpoint tax; cold vs warm restart) ---@.";
    let json_t t =
      Fmt.str
        "\"seconds_median\": %.6f, \"seconds_min\": %.6f, \"seconds_max\": %.6f, \
         \"reps\": %d, \"patterns_per_s\": %.1f"
        t.median t.t_min t.t_max t.reps
        (float_of_int count /. Float.max 1e-9 t.median)
    in
    let temp_dir () =
      let d = Filename.temp_file "dynmos_bench_dur" "" in
      Sys.remove d;
      Unix.mkdir d 0o700;
      d
    in
    let rec rm_rf p =
      if Sys.is_directory p then begin
        Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
        Unix.rmdir p
      end
      else Sys.remove p
    in
    let t_plain = time_reps ~reps (fun () -> Faultsim.run_serial ~drop:false u pats) in
    let dir = temp_dir () in
    let journal = Journal.open_ (Filename.concat dir "journal") in
    let ck_path = Filename.concat dir "job.ckpt" in
    let envelope =
      Fmt.str {|{"op":"run","circuit":"%s","patterns":%d,"seed":17}|} name count
    in
    let t_durable =
      time_reps ~reps (fun () ->
          let jid = Journal.append_admit journal ~envelope in
          let ctl = Faultsim.checkpoint_ctl ~path:ck_path ~interval:1000 u pats in
          let s = Faultsim.run_serial ~drop:false ~checkpoint:ctl u pats in
          Journal.append_done journal ~jid ~status:"ok";
          s)
    in
    Journal.close journal;
    rm_rf dir;
    let overhead =
      (t_durable.median -. t_plain.median) /. Float.max 1e-9 t_plain.median
    in
    pf "    %-26s %8.4f s plain vs %8.4f s durable  (%d patterns, overhead %+.2f%%)@."
      "serial+journal+checkpoint" t_plain.median t_durable.median count (100.0 *. overhead);
    let data_dir = temp_dir () in
    let config =
      { Server.default_config with Server.executors = 1; data_dir = Some data_dir }
    in
    let req = Fmt.str {|{"circuit":"%s","patterns":%d,"seed":17}|} name count in
    let serve_one () =
      let t = Server.create ~config () in
      Server.wait_recovery t;
      let sent = ref false in
      let resp = ref "" in
      let input () =
        if !sent then None
        else begin
          sent := true;
          Some req
        end
      in
      ignore (Server.serve t ~input ~output:(fun s -> resp := s) () : Server.stop);
      Server.shutdown t;
      !resp
    in
    let time_once f =
      let t0 = Unix.gettimeofday () in
      let r = f () in
      (Unix.gettimeofday () -. t0, r)
    in
    let cold_s, _ = time_once serve_one in
    let warm_s, warm_resp = time_once serve_one in
    rm_rf data_dir;
    let warm_cached =
      match Sjson.parse warm_resp with
      | Ok v -> ( match Sjson.member "cached" v with Some (Sjson.Bool b) -> b | _ -> false)
      | Error _ -> false
    in
    pf "    %-26s %8.4f s cold vs %8.4f s warm  (warm cached: %b, %.1fx)@."
      "restart boot+first-response" cold_s warm_s warm_cached
      (cold_s /. Float.max 1e-9 warm_s);
    Fmt.str
      "  \"durability\": {\"circuit\": \"%s\", \"patterns\": %d, \"interval\": 1000,\n   \
       \"plain\": {%s}, \"durable\": {%s}, \"overhead_pct\": %.2f,\n   \
       \"restart\": {\"cold_s\": %.6f, \"warm_s\": %.6f, \"warm_cached\": %b, \
       \"speedup\": %.1f}}\n"
      name count (json_t t_plain) (json_t t_durable) (100.0 *. overhead) cold_s warm_s
      warm_cached
      (cold_s /. Float.max 1e-9 warm_s)
  in
  Buffer.add_string buf durability_json;
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_faultsim.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pf "  wrote BENCH_faultsim.json@."

(* ---------------------------------------------------------------------- *)
(* Bechamel timing suite: one Test.make per experiment                      *)
(* ---------------------------------------------------------------------- *)

let bechamel_tests () =
  let open Bechamel in
  let nor = Stdcells.fig1_nor in
  let dyn_nand = Stdcells.nand 3 Technology.Dynamic_nmos in
  let fig9 = Stdcells.fig9 in
  let carry6 = Compiled.compile (Generators.carry_chain ~technology:Technology.Domino_cmos 6) in
  let c17d = Generators.c17 ~style:`Domino () in
  let u_c17 = Faultsim.universe c17d in
  let w_c17 = Array.make (Compiled.n_inputs u_c17.Faultsim.compiled) 0.5 in
  let wide8 = Faultsim.universe (Generators.wide_and ~technology:Technology.Domino_cmos 8) in
  let parity_bn = Generators.parity_boolnet 6 in
  let parity_dom = Compiled.compile (Boolnet.to_domino_dual_rail parity_bn) in
  let big_cell = Stdcells.oa ~groups:[ 3; 3; 3; 3 ] Technology.Domino_cmos in
  let prng = Prng.create 12 in
  let pats64 =
    Faultsim.random_patterns prng ~n_inputs:(Compiled.n_inputs u_c17.Faultsim.compiled) ~count:64
  in
  let delays = Timing.nominal_delays carry6 in
  let pi_carry = Array.make (Compiled.n_inputs carry6) true in
  let w_carry = Array.make (Compiled.n_inputs carry6) 0.5 in
  [
    Test.make ~name:"e1_fig1_static_step"
      (Staged.stage (fun () ->
           ignore
             (Charge_sim.static_step ~fault:(Fault.Network_open 1) nor Charge_sim.static_initial
                [ true; false ])));
    Test.make ~name:"e2_fig2_ratio_map"
      (Staged.stage (fun () ->
           ignore (Fault_map.map Stdcells.fig2_inverter (Fault.Pullup_closed 1))));
    Test.make ~name:"e3_nmos_class_mapping"
      (Staged.stage (fun () ->
           List.iter (fun f -> ignore (Fault_map.map dyn_nand f)) (Fault.enumerate dyn_nand)));
    Test.make ~name:"e4_domino_combinationality"
      (Staged.stage (fun () ->
           ignore (Charge_sim.domino_combinational ~fault:Fault.Precharge_open fig9)));
    Test.make ~name:"e5_fig9_library"
      (Staged.stage (fun () -> ignore (Faultlib.generate fig9)));
    Test.make ~name:"e6_signal_prob_propagate"
      (Staged.stage (fun () -> ignore (Signal_prob.propagate carry6 ~pi_weights:w_carry)));
    Test.make ~name:"e7_detect_prob_exact_c17"
      (Staged.stage (fun () -> ignore (Detect_prob.exact u_c17 ~pi_weights:w_c17)));
    Test.make ~name:"e8_optimize_wide8"
      (Staged.stage (fun () ->
           ignore
             (Optimize.optimize ~objective:Optimize.Estimated ~confidence:0.99 wide8
                (Array.make 8 0.5))));
    Test.make ~name:"e9_a2_eval_nets"
      (Staged.stage (fun () -> ignore (Compiled.eval_nets carry6 pi_carry)));
    Test.make ~name:"e10_parallel_faultsim_64"
      (Staged.stage (fun () -> ignore (Faultsim.run_parallel ~drop:false u_c17 pats64)));
    Test.make ~name:"e11_library_12T"
      (Staged.stage (fun () -> ignore (Faultlib.generate big_cell)));
    Test.make ~name:"e12_domino_evaluate"
      (Staged.stage (fun () ->
           ignore
             (Event_sim.domino_evaluate parity_dom
                (Boolnet.dual_rail_vector parity_bn [| true; false; true; false; true; false |]))));
    Test.make ~name:"e13_at_speed_sample"
      (Staged.stage (fun () -> ignore (Timing.at_speed_sample carry6 delays ~period:6.0 pi_carry)));
    Test.make ~name:"e14_podem_c17"
      (Staged.stage (fun () -> ignore (Podem.generate u_c17 u_c17.Faultsim.sites.(0))));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Toolkit in
  pf "@.==== Bechamel timing suite (one test per experiment) ====@.";
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  let tests = Test.make_grouped ~name:"dynmos" ~fmt:"%s %s" (bechamel_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  pf "  %-36s %14s@." "experiment kernel" "time/run";
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, v) ->
         match Analyze.OLS.estimates v with
         | Some [ est ] ->
             let pretty =
               if est > 1e6 then Fmt.str "%8.2f ms" (est /. 1e6)
               else if est > 1e3 then Fmt.str "%8.2f us" (est /. 1e3)
               else Fmt.str "%8.0f ns" est
             in
             pf "  %-36s %14s@." name pretty
         | _ -> pf "  %-36s %14s@." name "n/a")

(* ---------------------------------------------------------------------- *)

let experiments =
  [
    ("e1", "Fig. 1 - faulty static CMOS NOR function table", e1);
    ("e2", "Fig. 2 - performance degradation by a faulty transistor", e2);
    ("e3", "Section 3 - dynamic nMOS fault classes", e3);
    ("e4", "Section 3 - domino CMOS fault classes CMOS-1..4", e4);
    ("e5", "Section 5 - the Fig. 9 fault-class table", e5);
    ("e6", "PROTEST - signal probability estimation", e6);
    ("e7", "PROTEST - detection probabilities and test length", e7);
    ("e8", "PROTEST - optimized input signal probabilities", e8);
    ("e9", "Assumptions A1/A2", e9);
    ("e10", "Random vs deterministic test", e10);
    ("e11", "Fault library generation speed", e11);
    ("e12", "Fig. 5 - no races and spikes in domino", e12);
    ("e13", "Section 4(b) - leakage vs at-speed self test", e13);
    ("e14", "Random tests satisfy A1/A2 per se", e14);
    ("e15", "Extension - two-pattern cost of static CMOS vs domino", e15);
    ("e16", "Extension - the fault classes as a diagnosis dictionary", e16);
    ("e17", "Extension - fault-simulation throughput and domain scaling", e17);
  ]

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let no_bechamel = List.mem "--no-bechamel" args in
  tiny_mode := List.mem "--tiny" args;
  let selected = List.filter (fun a -> String.length a < 2 || a.[0] <> '-') args in
  let to_run =
    if selected = [] then experiments
    else List.filter (fun (id, _, _) -> List.mem id selected) experiments
  in
  if to_run = [] then begin
    pf "unknown experiment(s); available: %s@."
      (String.concat " " (List.map (fun (id, _, _) -> id) experiments));
    exit 1
  end;
  List.iter
    (fun (id, title, run) ->
      header id title;
      run ())
    to_run;
  if (not no_bechamel) && selected = [] then run_bechamel ()
