(* dynmos — command-line front end.

   Subcommands:
     faultlib FILE       generate and print the fault library of the cells
                         in a description file (optionally emit Pascal or
                         OCaml source);
     protest CIRCUIT     run the PROTEST pipeline on a built-in benchmark
                         circuit (signal probabilities, detection
                         probabilities, test length, optional optimization,
                         validation);
     selftest CIRCUIT    run an LFSR/BILBO self-test session and report
                         signature-based coverage;
     atpg CIRCUIT        generate a PODEM test set and report its size and
                         coverage;
     circuits            list the built-in benchmark circuits. *)

open Cmdliner
open Dynmos_cell
open Dynmos_core
open Dynmos_netlist
open Dynmos_faultsim
open Dynmos_protest
open Dynmos_atpg
open Dynmos_circuits
module Obs = Dynmos_obs.Obs
module Chaos = Dynmos_chaos.Chaos

(* --- Argument hardening ---------------------------------------------------- *)

(* Validating converters: a nonsensical numeric argument must die as a
   clean Cmdliner usage error at parse time, never as an uncaught
   [Invalid_argument] backtrace from deep inside a library. *)

let bounded_int ~what ?(min = Stdlib.min_int) ?(max = Stdlib.max_int) () =
  let parse s =
    match int_of_string_opt s with
    | None -> Error (`Msg (Fmt.str "%s: expected an integer, got %S" what s))
    | Some n when n < min -> Error (`Msg (Fmt.str "%s must be >= %d (got %d)" what min n))
    | Some n when n > max -> Error (`Msg (Fmt.str "%s must be <= %d (got %d)" what max n))
    | Some n -> Ok n
  in
  Arg.conv (parse, Format.pp_print_int)

let open_probability ~what =
  let parse s =
    match float_of_string_opt s with
    | None -> Error (`Msg (Fmt.str "%s: expected a number, got %S" what s))
    | Some p when p > 0.0 && p < 1.0 -> Ok p
    | Some p -> Error (`Msg (Fmt.str "%s must lie strictly between 0 and 1 (got %g)" what p))
  in
  Arg.conv (parse, Format.pp_print_float)

let positive_float ~what =
  let parse s =
    match float_of_string_opt s with
    | None -> Error (`Msg (Fmt.str "%s: expected a number, got %S" what s))
    | Some f when f > 0.0 -> Ok f
    | Some f -> Error (`Msg (Fmt.str "%s must be positive (got %g)" what f))
  in
  Arg.conv (parse, Format.pp_print_float)

(* --chaos SPEC: a deterministic fault-injection schedule.  Shared by
   faultsim (checkpoint and supervised-retry points) and serve (socket,
   scheduler and cache points); the same spec and seed always replays
   the same schedule. *)
let chaos_arg =
  let chaos_conv =
    Arg.conv
      ( (fun s ->
          match Chaos.of_spec s with
          | Ok c -> Ok c
          | Error e -> Error (`Msg (Fmt.str "--chaos: %s" e))),
        fun ppf c -> Format.pp_print_string ppf (Chaos.to_spec c) )
  in
  Arg.(value & opt chaos_conv Chaos.disabled
       & info [ "chaos" ] ~docv:"SPEC"
           ~doc:"Deterministic fault injection: comma-separated point=action pairs plus \
                 an optional seed, e.g. \
                 'ckpt.write=fail_once,sched.task=fail_prob:0.2,seed=7'.  Actions: \
                 fail_once, fail_prob:P, delay:MS, torn_write.  Points: sched.spawn, \
                 sched.task, exec.job, ckpt.write, ckpt.rename, ckpt.fsync, serve.write, \
                 serve.read, cache.insert, journal.append, journal.fsync, \
                 journal.compact, cache.persist.  The same spec replays the same failure \
                 schedule.")

(* Second line of defense for anything the converters cannot know (file
   errors, library-level validation): report instead of backtracing. *)
let guard f =
  try f () with
  | Invalid_argument msg | Failure msg | Sys_error msg -> `Error (false, msg)
  | Checkpoint.Error msg -> `Error (false, "checkpoint: " ^ msg)

(* --- Signal handling ------------------------------------------------------- *)

(* Long campaigns stop cooperatively: the first SIGINT/SIGTERM sets a
   flag the engines poll via [?interrupt], so the run winds down at the
   next pattern-unit boundary — final checkpoint written, trace sink
   flushed — and the process exits 130.  A second signal aborts
   immediately (also 130; [Stdlib.exit] still flushes open channels). *)
let interrupt_flag = Atomic.make false

let install_signal_handlers () =
  let handler =
    Sys.Signal_handle
      (fun _ -> if Atomic.exchange interrupt_flag true then Stdlib.exit 130)
  in
  (try Sys.set_signal Sys.sigint handler with Invalid_argument _ | Sys_error _ -> ());
  (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ | Sys_error _ -> ());
  fun () -> Atomic.get interrupt_flag

(* --- Built-in benchmark circuits ----------------------------------------- *)

(* The named catalog lives in [Dynmos_circuits.Catalog] so the serve loop
   resolves the same names as the subcommands. *)
let circuit_of_name = Catalog.find

let circuit_arg =
  let doc = "Built-in benchmark circuit name (see the 'circuits' subcommand)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

(* --- faultlib -------------------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let faultlib_cmd =
  let file =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"Cell description file (paper syntax).")
  in
  let emit =
    Arg.(value & opt (enum [ ("table", `Table); ("pascal", `Pascal); ("ocaml", `Ocaml) ]) `Table
         & info [ "emit" ] ~docv:"FORMAT" ~doc:"Output format: table, pascal or ocaml.")
  in
  let weak =
    Arg.(value & flag
         & info [ "weak" ]
             ~doc:"Use the weak-device electrical model (CMOS-3 becomes a delay fault).")
  in
  let run file emit weak =
    guard @@ fun () ->
    match Cell_parser.cells (read_file file) with
    | exception Cell_parser.Error msg -> `Error (false, msg)
    | exception Sys_error msg -> `Error (false, msg)
    | cells ->
        let electrical =
          if weak then Some Fault_map.weak_electrical else None
        in
        List.iter
          (fun cell ->
            let lib = Faultlib.generate ?electrical cell in
            (match emit with
            | `Table -> Faultlib.pp_table Format.std_formatter lib
            | `Pascal -> print_string (Faultlib.to_pascal lib)
            | `Ocaml -> print_string (Faultlib.to_ocaml lib));
            print_newline ())
          cells;
        `Ok 0
  in
  let doc = "Generate the technology-dependent fault library of a cell file." in
  Cmd.v (Cmd.info "faultlib" ~doc) Term.(ret (const run $ file $ emit $ weak))

(* --- faultsim ---------------------------------------------------------------- *)

let faultsim_cmd =
  let patterns =
    Arg.(value & opt (bounded_int ~what:"--patterns" ~min:0 ()) 256
         & info [ "patterns"; "n" ] ~docv:"N" ~doc:"Number of random patterns to simulate.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Pattern generator seed.")
  in
  let engine =
    Arg.(value
         & opt
             (enum
                [
                  ("serial", `Serial);
                  ("parallel", `Parallel);
                  ("deductive", `Deductive);
                  ("concurrent", `Concurrent);
                  ("ppsfp", `Ppsfp);
                  ("domains", `Domains);
                ])
             `Domains
         & info [ "engine" ] ~docv:"ENGINE"
             ~doc:
               "Engine: serial, parallel (bit-parallel), deductive, concurrent, ppsfp \
                (parallel-pattern/parallel-fault word matrix), or domains (multicore \
                domain-parallel).")
  in
  let jobs =
    Arg.(value & opt (bounded_int ~what:"--jobs" ~min:0 ()) 0
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:
               "Worker domains for the 'domains' engine (0 = \
                Domain.recommended_domain_count ()); clamped to the site count and the \
                estimated work.")
  in
  let group =
    Arg.(value & opt (bounded_int ~what:"--group" ~min:1 ()) Dynmos_faultsim.Ppsfp.default_group
         & info [ "group" ] ~docv:"G"
             ~doc:
               "Fault-group size for the 'ppsfp' engine: G fault machines simulated \
                together per pattern word on one word matrix.")
  in
  let no_drop =
    Arg.(value & flag & info [ "no-drop" ] ~doc:"Simulate every fault on every pattern.")
  in
  let algo =
    Arg.(value & opt (enum [ ("full", `Full); ("cone", `Cone) ]) `Cone
         & info [ "algo" ] ~docv:"ALGO"
             ~doc:
               "Injection algorithm, honoured by every engine: cone (restrict work to the \
                fault sites' fanout cones; default) or full (process the whole circuit per \
                fault).  Results are bit-identical.")
  in
  let stats =
    Arg.(value & flag
         & info [ "stats" ]
             ~doc:"Print run counters (and per-domain scheduling statistics for the 'domains' \
                   engine) after the summary.")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Append every observability event as one JSON line to $(docv).")
  in
  let ckpt =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"FILE"
             ~doc:"Persist campaign progress to $(docv) (atomic rename) every \
                   --checkpoint-interval completed units and at exit.")
  in
  let ckpt_interval =
    Arg.(value & opt (bounded_int ~what:"--checkpoint-interval" ~min:1 ()) 1000
         & info [ "checkpoint-interval" ] ~docv:"N"
             ~doc:"Completed pattern-units (patterns, or sites for the 'domains' engine) \
                   between checkpoint writes.")
  in
  let resume =
    Arg.(value & flag
         & info [ "resume" ]
             ~doc:"Resume from --checkpoint FILE, validated against the circuit, fault \
                   universe and pattern set; a missing file is a fresh start.")
  in
  let deadline =
    Arg.(value & opt (some (positive_float ~what:"--deadline")) None
         & info [ "deadline" ] ~docv:"SEC"
             ~doc:"Stop cleanly after $(docv) seconds of wall clock and report the \
                   partial result (exit code 2).")
  in
  let max_evals =
    Arg.(value & opt (some (bounded_int ~what:"--max-evals" ~min:1 ())) None
         & info [ "max-evals" ] ~docv:"N"
             ~doc:"Stop cleanly after a budget of $(docv) faulty gate evaluations and \
                   report the partial result (exit code 2).")
  in
  let run name patterns seed engine jobs group algo no_drop stats trace ckpt ckpt_interval
      resume deadline_in max_evals chaos =
    guard @@ fun () ->
    match circuit_of_name name with
    | Error e -> `Error (false, e)
    | Ok nl when resume && ckpt = None ->
        ignore nl;
        `Error (true, "--resume requires --checkpoint FILE")
    | Ok nl ->
        let u = Faultsim.universe nl in
        let prng = Dynmos_util.Prng.create seed in
        let prng_state = Dynmos_util.Prng.save prng in
        let pats =
          Faultsim.random_patterns prng ~n_inputs:(List.length (Netlist.inputs nl))
            ~count:patterns
        in
        let drop = not no_drop in
        let num_domains = if jobs <= 0 then None else Some jobs in
        let checkpoint =
          Option.map
            (fun path ->
              Faultsim.checkpoint_ctl ~path ~interval:ckpt_interval ~resume ~prng_state
                ~chaos u pats)
            ckpt
        in
        let deadline = Option.map (fun s -> Unix.gettimeofday () +. s) deadline_in in
        let interrupt = install_signal_handlers () in
        (* Observability: --stats collects events in memory for a printed
           summary; --trace streams them to a JSONL file; both compose. *)
        let fetch_events = ref (fun () -> []) in
        let trace_oc = ref None in
        let sink =
          let s = Obs.null_sink in
          let s =
            if stats then begin
              let mem, fetch = Obs.memory_sink () in
              fetch_events := fetch;
              Obs.tee s mem
            end
            else s
          in
          match trace with
          | None -> s
          | Some file ->
              let oc = open_out_gen [ Open_creat; Open_append; Open_wronly ] 0o644 file in
              trace_oc := Some oc;
              Obs.tee s (Obs.channel_sink oc)
        in
        let obs = Obs.make sink in
        let t0 = Unix.gettimeofday () in
        let s, domain_stats =
          match engine with
          | `Serial ->
              ( Faultsim.run_serial ~drop ~algo ~obs ?deadline ?max_evals ~interrupt
                  ?checkpoint ~chaos u pats,
                None )
          | `Parallel ->
              ( Faultsim.run_parallel ~drop ~algo ~obs ?deadline ?max_evals ~interrupt
                  ?checkpoint ~chaos u pats,
                None )
          | `Deductive ->
              ( Faultsim.run_deductive ~drop ~algo ~obs ?deadline ?max_evals ~interrupt
                  ?checkpoint u pats,
                None )
          | `Concurrent ->
              ( Faultsim.run_concurrent ~drop ~algo ~obs ?deadline ?max_evals ~interrupt
                  ?checkpoint u pats,
                None )
          | `Ppsfp ->
              ( Faultsim.run_ppsfp ~drop ~algo ~group ~obs ?deadline ?max_evals ~interrupt
                  ?checkpoint u pats,
                None )
          | `Domains ->
              let s, st =
                Faultsim.run_domain_parallel_stats ~drop ~algo ?num_domains ~obs ?deadline
                  ?max_evals ~interrupt ?checkpoint u pats
              in
              (s, Some st)
        in
        let dt = Unix.gettimeofday () -. t0 in
        let engine_name =
          match (engine, domain_stats) with
          | `Domains, Some st ->
              Fmt.str "domains(%d requested, %d effective)"
                st.Parallel_exec.requested_domains st.Parallel_exec.effective_domains
          | `Serial, _ -> "serial"
          | `Parallel, _ -> "parallel"
          | `Deductive, _ -> "deductive"
          | `Concurrent, _ -> "concurrent"
          | `Ppsfp, _ -> Fmt.str "ppsfp(group %d)" group
          | `Domains, None -> "domains"
        in
        Format.printf "%s: %d sites, %d patterns -> %.2f%% coverage (%d detected)@."
          (Netlist.name nl) (Faultsim.n_sites u) patterns
          (100.0 *. Faultsim.coverage s)
          (Faultsim.n_detected s);
        Format.printf "engine %s: %.4f s wall, %.0f patterns/s@." engine_name dt
          (float_of_int patterns /. Float.max 1e-9 dt);
        (match s.Faultsim.outcome with
        | Outcome.Complete -> ()
        | Outcome.Partial p ->
            let cause =
              match p.Outcome.stopped with
              | Some c -> Outcome.stop_cause_name c
              | None -> "site failures"
            in
            Format.printf
              "partial result (%s): %d/%d patterns, %d/%d sites final; coverage is a \
               lower bound (%.2f%% over finished sites)@."
              cause s.Faultsim.patterns_done patterns s.Faultsim.sites_done
              (Faultsim.n_sites u)
              (100.0 *. Faultsim.coverage_of_done s);
            List.iter
              (fun (sid, msg) ->
                Format.printf "site %d gave up after repeated failures: %s@." sid msg)
              p.Outcome.failed_sites);
        (match checkpoint with
        | Some ctl ->
            Format.printf "checkpoint %s: %d write(s)@." (Checkpoint.path ctl)
              (Checkpoint.writes ctl)
        | None -> ());
        if stats then begin
          List.iter
            (fun e ->
              if e.Obs.ev = "faultsim.run" then begin
                Format.printf "stats:";
                List.iter
                  (fun (k, v) ->
                    Format.printf " %s=%s" k
                      (match v with
                      | Obs.Bool b -> string_of_bool b
                      | Obs.Int i -> string_of_int i
                      | Obs.Float f -> Fmt.str "%.6f" f
                      | Obs.String s -> s))
                  e.Obs.fields;
                Format.printf "@."
              end)
            (!fetch_events ());
          (* Durability accounting for checkpointed campaigns: how much
             progress persistence cost, and where the resume state came
             from (a primary corrupted under the writer falls back to
             the .bak rotation). *)
          (match checkpoint with
          | Some ctl ->
              let resumed_units =
                match Checkpoint.resume_state ctl with
                | Some st -> st.Checkpoint.units_done
                | None -> 0
              in
              Format.printf
                "durability: ckpt_writes=%d ckpt_failed_writes=%d ckpt_stale_cleaned=%d \
                 resumed_units=%d resumed_from_backup=%b@."
                (Checkpoint.writes ctl) (Checkpoint.failed_writes ctl)
                (Checkpoint.stale_cleaned ctl) resumed_units
                (Checkpoint.resumed_from_backup ctl)
          | None -> ());
          Option.iter (Parallel_exec.pp_stats Format.std_formatter) domain_stats;
          if Chaos.enabled chaos then begin
            Format.printf "chaos: spec=%s injected=%d" (Chaos.to_spec chaos)
              (Chaos.injected chaos);
            List.iter (fun (p, n) -> Format.printf " %s=%d" p n) (Chaos.counts chaos);
            (match checkpoint with
            | Some ctl ->
                Format.printf " failed_writes=%d stale_cleaned=%d"
                  (Checkpoint.failed_writes ctl) (Checkpoint.stale_cleaned ctl)
            | None -> ());
            Format.printf "@."
          end
        end;
        Option.iter close_out !trace_oc;
        (match trace with
        | Some file -> Format.printf "trace written to %s@." file
        | None -> ());
        (* 0 = complete; 2 = partial (deadline / budget / failed sites);
           130 = interrupted by SIGINT/SIGTERM, after the final
           checkpoint and trace flush. *)
        let code =
          match s.Faultsim.outcome with
          | Outcome.Partial { Outcome.stopped = Some Outcome.Interrupted; _ } -> 130
          | o -> Outcome.exit_code o
        in
        `Ok code
  in
  let doc =
    "Random-pattern fault simulation with a selectable engine (--jobs for multicore, --algo \
     for cone-restricted injection, --checkpoint/--resume for fault tolerance, --deadline \
     and --max-evals for budgeted partial results)."
  in
  Cmd.v (Cmd.info "faultsim" ~doc)
    Term.(
      ret
        (const run $ circuit_arg $ patterns $ seed $ engine $ jobs $ group $ algo $ no_drop
       $ stats $ trace $ ckpt $ ckpt_interval $ resume $ deadline $ max_evals $ chaos_arg))

(* --- protest ---------------------------------------------------------------- *)

let protest_cmd =
  let confidence =
    Arg.(value & opt (open_probability ~what:"--confidence") 0.999
         & info [ "confidence"; "c" ] ~docv:"C" ~doc:"Demanded test confidence in (0,1).")
  in
  let optimize =
    Arg.(value & flag & info [ "optimize"; "O" ] ~doc:"Optimize input signal probabilities.")
  in
  let validate =
    Arg.(value & flag & info [ "validate" ] ~doc:"Fault-simulate the proposed random test.")
  in
  let run name confidence optimize validate =
    guard @@ fun () ->
    match circuit_of_name name with
    | Error e -> `Error (false, e)
    | Ok nl ->
        let report = Protest.analyze ~confidence ~optimize nl in
        Protest.pp_report Format.std_formatter report;
        if validate then begin
          let v = Protest.validate report in
          Format.printf "validation: %d patterns -> %.2f%% coverage (predicted %.4f)@."
            v.Protest.applied
            (100.0 *. v.Protest.achieved_coverage)
            v.Protest.predicted_confidence
        end;
        `Ok 0
  in
  let doc = "Probabilistic testability analysis (the PROTEST pipeline)." in
  Cmd.v (Cmd.info "protest" ~doc)
    Term.(ret (const run $ circuit_arg $ confidence $ optimize $ validate))

(* --- selftest ---------------------------------------------------------------- *)

let selftest_cmd =
  let cycles =
    Arg.(value & opt (bounded_int ~what:"--cycles" ~min:0 ()) 500
         & info [ "cycles"; "n" ] ~docv:"N" ~doc:"Session length in clocks.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Generator seed.") in
  let run name cycles seed =
    guard @@ fun () ->
    match circuit_of_name name with
    | Error e -> `Error (false, e)
    | Ok nl ->
        let u = Faultsim.universe nl in
        let cov = Dynmos_bist.Selftest.coverage ~seed u ~n_cycles:cycles in
        Format.printf "%s: %d fault sites, BILBO session of %d cycles -> %.2f%% coverage@."
          (Netlist.name nl) (Faultsim.n_sites u) cycles (100.0 *. cov);
        `Ok 0
  in
  let doc = "Signature-based random self test (LFSR + MISR)." in
  Cmd.v (Cmd.info "selftest" ~doc) Term.(ret (const run $ circuit_arg $ cycles $ seed))

(* --- atpg --------------------------------------------------------------------- *)

let atpg_cmd =
  let run name =
    guard @@ fun () ->
    match circuit_of_name name with
    | Error e -> `Error (false, e)
    | Ok nl ->
        let u = Faultsim.universe nl in
        let r = Podem.generate_set u in
        let s = Faultsim.run_parallel u r.Podem.vectors in
        let untestable =
          Array.to_list r.Podem.per_site
          |> List.filter (function Podem.Untestable -> true | _ -> false)
          |> List.length
        in
        Format.printf
          "%s: %d sites -> %d vectors, coverage %.2f%%, %d untestable, %d dropped by simulation@."
          (Netlist.name nl) (Faultsim.n_sites u)
          (Array.length r.Podem.vectors)
          (100.0 *. Faultsim.coverage s)
          untestable r.Podem.covered_by_simulation;
        Format.printf "A2: apply the set twice -> %d test applications@."
          (2 * Array.length r.Podem.vectors);
        `Ok 0
  in
  let doc = "Deterministic test generation (PODEM baseline)." in
  Cmd.v (Cmd.info "atpg" ~doc) Term.(ret (const run $ circuit_arg))

(* --- diagnose ------------------------------------------------------------------ *)

let diagnose_cmd =
  let run name =
    guard @@ fun () ->
    match circuit_of_name name with
    | Error e -> `Error (false, e)
    | Ok nl ->
        let u = Faultsim.universe nl in
        if List.length (Netlist.inputs nl) > 16 then
          `Error (false, "diagnosis needs <= 16 primary inputs")
        else begin
          Format.printf "%s: %d fault sites, pairwise distinguishable: %b@." (Netlist.name nl)
            (Faultsim.n_sites u)
            (Diagnosis.pairwise_distinguishable u);
          let pats, groups = Diagnosis.diagnosing_patterns u in
          Format.printf "adaptive diagnosing set: %d patterns, %d ambiguity groups@."
            (Array.length pats) (List.length groups);
          List.iter
            (fun g ->
              if List.length g > 1 then
                Format.printf "  indistinguishable: %s@."
                  (String.concat " | "
                     (List.map (fun sid -> Faultsim.site_label u u.Faultsim.sites.(sid)) g)))
            groups;
          `Ok 0
        end
  in
  let doc = "Build an adaptive diagnosing pattern set and report its resolution." in
  Cmd.v (Cmd.info "diagnose" ~doc) Term.(ret (const run $ circuit_arg))

(* --- serve ---------------------------------------------------------------------- *)

(* Long-lived batch front end: JSONL requests from stdin (or a Unix
   socket, serving any number of clients concurrently), one terminal
   response line per request line, crash isolation via the supervised
   engines, a shared executor pool with a content-addressed result
   cache, bounded admission queue, graceful drain on the first
   SIGTERM/SIGINT (second signal hard-exits 130 — the same contract as
   a checkpointed campaign).  Signals are converted to drain requests by
   a dedicated sigwait thread: [Server.request_drain] takes locks and
   wakes condition variables, which a signal handler must never do. *)
let serve_cmd =
  let module Server = Dynmos_server.Server in
  let queue =
    Arg.(value & opt (bounded_int ~what:"--queue" ~min:1 ()) Server.default_config.Server.queue_capacity
         & info [ "queue" ] ~docv:"N"
             ~doc:"Pending-request queue capacity; further run requests are answered \
                   'overloaded' (backpressure instead of unbounded memory).")
  in
  let executors =
    Arg.(value & opt (bounded_int ~what:"--executors" ~min:1 ()) Server.default_config.Server.executors
         & info [ "executors" ] ~docv:"N"
             ~doc:"Worker domains in the shared executor pool; jobs from all clients \
                   multiplex onto it with per-client FIFO fairness.")
  in
  let cache =
    Arg.(value & opt (bounded_int ~what:"--cache" ~min:0 ()) Server.default_config.Server.cache_capacity
         & info [ "cache" ] ~docv:"N"
             ~doc:"Capacity (entries) of the content-addressed result cache; a repeat of \
                   a completed run is answered from it without simulating. 0 disables.")
  in
  let max_patterns =
    Arg.(value & opt (bounded_int ~what:"--max-patterns" ~min:0 ()) Server.default_config.Server.max_patterns
         & info [ "max-patterns" ] ~docv:"N" ~doc:"Per-request pattern-count cap.")
  in
  let max_seconds =
    Arg.(value & opt (positive_float ~what:"--max-seconds") Server.default_config.Server.max_seconds
         & info [ "max-seconds" ] ~docv:"SEC"
             ~doc:"Per-request wall-clock cap and default deadline; also bounds how long a \
                   drain can take.")
  in
  let max_request_evals =
    Arg.(value & opt (some (bounded_int ~what:"--max-request-evals" ~min:1 ())) None
         & info [ "max-request-evals" ] ~docv:"N"
             ~doc:"Per-request gate-evaluation cap and default budget.")
  in
  let global_max_evals =
    Arg.(value & opt (some (bounded_int ~what:"--global-max-evals" ~min:1 ())) None
         & info [ "global-max-evals" ] ~docv:"N"
             ~doc:"Whole-server gate-evaluation budget; once spent, run requests are \
                   rejected with an error response.")
  in
  let max_line_bytes =
    Arg.(value & opt (bounded_int ~what:"--max-line-bytes" ~min:2 ()) Server.default_config.Server.max_line_bytes
         & info [ "max-line-bytes" ] ~docv:"N" ~doc:"Reject request lines longer than $(docv) bytes.")
  in
  let events =
    Arg.(value & opt (bounded_int ~what:"--events" ~min:1 ()) Server.default_config.Server.events_capacity
         & info [ "events" ] ~docv:"N"
             ~doc:"Capacity of the bounded in-memory observability ring backing the \
                   'stats' op (oldest events overwritten first).")
  in
  let trace =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Append every observability event as one JSON line to $(docv) \
                   (flushed per event; also flushed on drain).")
  in
  let socket =
    Arg.(value & opt (some string) None
         & info [ "socket" ] ~docv:"PATH"
             ~doc:"Listen on a Unix-domain socket at $(docv) instead of serving \
                   stdin/stdout; connections are served concurrently until drain.")
  in
  let idle_timeout =
    Arg.(value & opt (some (positive_float ~what:"--idle-timeout")) None
         & info [ "idle-timeout" ] ~docv:"SEC"
             ~doc:"Reap socket connections that stay silent for $(docv) seconds with no \
                   work in flight, freeing their reader thread (socket mode only; \
                   default: never).")
  in
  let data_dir =
    Arg.(value & opt (some string) None
         & info [ "data-dir" ] ~docv:"DIR"
             ~doc:"Durable state root: a write-ahead job journal, the persistent result \
                   cache and per-job checkpoints live under $(docv).  On start the server \
                   recovers whatever a previous process — even one killed with kill -9 — \
                   left behind: unfinished jobs are replayed (resuming from their \
                   checkpoints), completed results are served from the warm cache with \
                   'recovered':true.  Default: no durability (volatile serve).")
  in
  let ckpt_patterns =
    Arg.(value & opt (bounded_int ~what:"--checkpoint-patterns" ~min:0 ())
           Server.default_config.Server.ckpt_patterns
         & info [ "checkpoint-patterns" ] ~docv:"N"
             ~doc:"With --data-dir: jobs of at least $(docv) patterns write resumable \
                   checkpoints (smaller jobs are cheaper to re-run than to checkpoint).")
  in
  let ckpt_interval =
    Arg.(value & opt (bounded_int ~what:"--checkpoint-interval" ~min:1 ())
           Server.default_config.Server.ckpt_interval
         & info [ "checkpoint-interval" ] ~docv:"N"
             ~doc:"Checkpoint write throttle, in completed work units.")
  in
  let run queue executors cache max_patterns max_seconds max_request_evals global_max_evals
      max_line_bytes events trace socket idle_timeout data_dir ckpt_patterns ckpt_interval
      chaos =
    guard @@ fun () ->
    let config =
      {
        Server.queue_capacity = queue;
        executors;
        max_patterns;
        max_seconds;
        max_request_evals;
        global_max_evals;
        max_line_bytes;
        events_capacity = events;
        cache_capacity = cache;
        idle_timeout_s = idle_timeout;
        chaos;
        data_dir;
        ckpt_patterns;
        ckpt_interval;
      }
    in
    (* A client closing its connection mid-response must never kill the
       server: with SIGPIPE ignored the failed write surfaces as EPIPE,
       which the serve loop turns into a cancelled session. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    let trace_oc =
      Option.map
        (fun file -> open_out_gen [ Open_creat; Open_append; Open_wronly ] 0o644 file)
        trace
    in
    (* Mask SIGHUP/SIGINT/SIGTERM on this thread BEFORE creating the
       server: executor domains and reader threads inherit the mask at
       spawn, so signals are delivered only to the sigwait thread
       below. *)
    let signals = [ Sys.sighup; Sys.sigint; Sys.sigterm ] in
    let masked =
      try
        ignore (Thread.sigmask Unix.SIG_BLOCK signals : int list);
        true
      with Invalid_argument _ | Unix.Unix_error _ -> false
    in
    let t =
      Server.create ~config ?trace:(Option.map Obs.channel_sink trace_oc) ()
    in
    (* SIGHUP: maintenance (journal compaction, cache re-persist, stats
       snapshot to the trace sink) without dropping a single connection.
       First SIGTERM/SIGINT: stop admitting, finish queued and in-flight
       jobs (each bounded by its per-request deadline), flush, exit 0.
       Second SIGTERM/SIGINT: hard exit 130. *)
    let drain =
      if masked then begin
        ignore
          (Thread.create
             (fun () ->
               let drained = ref false in
               let rec loop () =
                 let s = Thread.wait_signal signals in
                 if s = Sys.sighup then begin
                   Server.maintenance t;
                   loop ()
                 end
                 else if not !drained then begin
                   drained := true;
                   Server.request_drain t;
                   loop ()
                 end
                 else Stdlib.exit 130
               in
               loop ())
             ());
        fun () -> false
      end
      else
        (* No signal masking on this platform: fall back to the polled
           handler flag (drain is then only observed between lines). *)
        install_signal_handlers ()
    in
    (match socket with
    | Some path -> Server.serve_socket t ~drain path
    | None -> ignore (Server.serve_channels t ~drain stdin stdout : Server.stop));
    Server.shutdown t;
    Option.iter close_out trace_oc;
    `Ok 0
  in
  let doc =
    "Serve line-delimited JSONL fault-simulation requests (stdin/stdout or --socket) with \
     per-request limits, admission control and graceful drain.  One response line per \
     request line; see the README's Serving section for the protocol."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      ret
        (const run $ queue $ executors $ cache $ max_patterns $ max_seconds
       $ max_request_evals $ global_max_evals $ max_line_bytes $ events $ trace $ socket
       $ idle_timeout $ data_dir $ ckpt_patterns $ ckpt_interval $ chaos_arg))

(* --- circuits ------------------------------------------------------------------ *)

let circuits_cmd =
  let run () =
    List.iter
      (fun (name, f) ->
        let nl = f () in
        Format.printf "%-16s %3d gates, %2d inputs, %2d outputs, %4d transistors@." name
          (Netlist.n_gates nl)
          (List.length (Netlist.inputs nl))
          (List.length (Netlist.outputs nl))
          (Netlist.n_transistors nl))
      Catalog.builtin;
    `Ok 0
  in
  let doc = "List the built-in benchmark circuits." in
  Cmd.v (Cmd.info "circuits" ~doc) Term.(ret (const run $ const ()))

let () =
  let doc = "Fault modeling and random self test for dynamic MOS circuits (DAC'86)." in
  let info = Cmd.info "dynmos" ~version:"1.0.0" ~doc in
  (* eval': subcommands return their own exit code (faultsim uses 2 for
     partial results and 130 for an interrupted-but-flushed campaign). *)
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            faultlib_cmd;
            faultsim_cmd;
            protest_cmd;
            selftest_cmd;
            atpg_cmd;
            diagnose_cmd;
            serve_cmd;
            circuits_cmd;
          ]))
