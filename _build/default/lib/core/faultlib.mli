open Dynmos_expr
open Dynmos_cell

(** Fault library generation (the paper's Section 5).

    Maps every physical fault of a cell through {!Fault_map}, collapses
    combinational results into fault-equivalence classes (semantic equality
    of the faulty functions), stores each class in minimum disjunctive
    form, and emits the library as a program — Pascal, as in the paper, or
    OCaml.  Applied to the paper's Fig. 9 gate this reproduces the
    Section-5 table with its 10 classes. *)

type effect =
  | Function of { sop : Minimize.sop; text : string; expr : Expr.t }
      (** faulty combinational function, minimized *)
  | Delay_fault of { observed_as : string option; factor : float }
      (** performance degradation; [observed_as] is what maximum-speed
          sampling sees ([None]: possibly undetectable, CMOS-1) *)
  | Sequential_fault of { retain_when : string }
      (** static CMOS stuck-open memory states *)
  | Contention_fault of { fight_when : string; resolves_to : string; factor : float }

type entry = {
  class_id : int;
  members : (Fault.physical * string) list;  (** faults and display labels *)
  effect : effect;
  detectable : bool;
      (** false for classes equal to the fault-free function and for the
          possibly-undetectable CMOS-1 delay class *)
}

type t = {
  cell : Cell.t;
  vars : string array;
  fault_free_text : string;
  fault_free_table : Truth_table.t;
  function_classes : entry list;  (** combinational classes, paper order *)
  special_classes : entry list;   (** delay / sequential / contention *)
  n_faults : int;
}

val generate : ?electrical:Fault_map.electrical -> Cell.t -> t
(** Generate the complete library for a cell.  The default electrical
    model resolves ratioed fights to hard logic faults (the paper's table
    convention); pass {!Fault_map.weak_electrical} to obtain the case-b
    delay classes instead. *)

val entries : t -> entry list
(** All classes, function classes first. *)

val n_classes : t -> int

val lookup : t -> Fault.physical -> entry option
(** The equivalence class a physical fault landed in. *)

val detectable_function_classes : t -> entry list

val tables : t -> (int * Truth_table.t) list
(** [(class_id, truth table)] for every detectable function class — the
    form fault simulation consumes. *)

val pp_table : Format.formatter -> t -> unit
(** Print the library in the paper's Section-5 table format. *)

val to_pascal : t -> string
(** The library as a Pascal program ("the internal representation of a
    library is a PASCAL program", Section 5). *)

val to_ocaml : t -> string
(** The library as OCaml source. *)
