open Dynmos_switchnet
open Dynmos_cell

(* The common physical fault model of the paper (Section 3):

     - a connection is open
     - a transistor is permanently open
     - a transistor is permanently closed

   applied to each structural element of a cell: the switching-network
   transistors (with the paper's T1..Tn numbering), the clocking devices
   (precharge T(n+1) for dynamic nMOS; precharge T1 / evaluate T2 for
   domino CMOS), the domino output inverter, the input gate lines, and the
   supply/clock connections.  Static CMOS additionally gets the pull-up
   (dual network) transistor faults that produce the Fig. 1 sequential
   behaviour, and static technologies get the classic stuck-at model the
   paper prescribes for them. *)

type connection = Precharge_path | Pulldown_path

type physical =
  | Network_open of int        (* SN transistor T_i permanently open *)
  | Network_closed of int      (* SN transistor T_i permanently closed *)
  | Input_gate_open of string  (* open line at the gate(s) driven by an input *)
  | Pullup_open of int         (* static CMOS p-network transistor open *)
  | Pullup_closed of int
  | Precharge_open             (* dynamic nMOS T(n+1) / domino T1 *)
  | Precharge_closed
  | Evaluate_open              (* domino T2 *)
  | Evaluate_closed
  | Inverter_p_open            (* domino / static output inverter devices *)
  | Inverter_p_closed
  | Inverter_n_open
  | Inverter_n_closed
  | Connection_open of connection
  | Stuck_at of string * bool  (* classic model (static CMOS, bipolar, nMOS) *)

let equal (a : physical) (b : physical) = a = b

(* --- Naming ----------------------------------------------------------- *)

let switch_name cell id =
  match Spnet.find_switch (Cell.network cell) id with
  | None -> Fmt.str "T%d" id
  | Some s ->
      let occurrences = Spnet.switches_of_input (Cell.network cell) s.Spnet.input in
      if List.length occurrences > 1 then Fmt.str "%s(T%d)" s.Spnet.input id
      else s.Spnet.input

let describe cell = function
  | Network_open i -> Fmt.str "%s open" (switch_name cell i)
  | Network_closed i -> Fmt.str "%s closed" (switch_name cell i)
  | Input_gate_open v -> Fmt.str "gate line %s open" v
  | Pullup_open i -> Fmt.str "pull-up T%d open" i
  | Pullup_closed i -> Fmt.str "pull-up T%d closed" i
  | Precharge_open -> "precharge open"
  | Precharge_closed -> "precharge closed"
  | Evaluate_open -> "evaluate open"
  | Evaluate_closed -> "evaluate closed"
  | Inverter_p_open -> "inverter p open"
  | Inverter_p_closed -> "inverter p closed"
  | Inverter_n_open -> "inverter n open"
  | Inverter_n_closed -> "inverter n closed"
  | Connection_open Precharge_path -> "precharge connection open"
  | Connection_open Pulldown_path -> "pull-down connection open"
  | Stuck_at (v, b) -> Fmt.str "s%c-%s" (if b then '1' else '0') v

(* Paper-style class labels: "nMOS-i" (Fig. 6 numbering: T_i open is
   nMOS-i, T_i closed is nMOS-(n+i), T(n+1) open/closed are nMOS-(2n+1) /
   nMOS-(2n+2)) and "CMOS-1..4" for the domino clocking devices. *)
let paper_label cell fault =
  let n = Cell.n_transistors cell in
  match (Cell.technology cell, fault) with
  | Technology.Dynamic_nmos, Network_open i -> Some (Fmt.str "nMOS-%d" i)
  | Technology.Dynamic_nmos, Network_closed i -> Some (Fmt.str "nMOS-%d" (n + i))
  | Technology.Dynamic_nmos, Precharge_open -> Some (Fmt.str "nMOS-%d" ((2 * n) + 1))
  | Technology.Dynamic_nmos, Precharge_closed -> Some (Fmt.str "nMOS-%d" ((2 * n) + 2))
  | Technology.Domino_cmos, Evaluate_closed -> Some "CMOS-1"
  | Technology.Domino_cmos, Evaluate_open -> Some "CMOS-2"
  | Technology.Domino_cmos, Precharge_closed -> Some "CMOS-3"
  | Technology.Domino_cmos, Precharge_open -> Some "CMOS-4"
  | _ -> None

let label cell fault =
  match paper_label cell fault with Some l -> l | None -> describe cell fault

(* --- Enumeration (the paper's Section-5 table order) ------------------- *)

let network_faults cell =
  List.concat_map
    (fun s -> [ Network_closed s.Spnet.id; Network_open s.Spnet.id ])
    (Spnet.switches (Cell.network cell))

let input_gate_faults cell = List.map (fun v -> Input_gate_open v) (Cell.inputs cell)

let stuck_at_faults cell =
  List.concat_map (fun v -> [ Stuck_at (v, false); Stuck_at (v, true) ]) (Cell.inputs cell)
  @ [ Stuck_at (Cell.output cell, false); Stuck_at (Cell.output cell, true) ]

let enumerate cell =
  match Cell.technology cell with
  | Technology.Domino_cmos ->
      network_faults cell @ input_gate_faults cell
      @ [
          Evaluate_open;
          Evaluate_closed;
          Precharge_closed;
          Precharge_open;
          Inverter_p_open;
          Inverter_p_closed;
          Inverter_n_open;
          Inverter_n_closed;
          Connection_open Pulldown_path;
          Connection_open Precharge_path;
        ]
  | Technology.Dynamic_nmos ->
      network_faults cell @ input_gate_faults cell
      @ [
          Precharge_open;
          Precharge_closed;
          Connection_open Precharge_path;
          Connection_open Pulldown_path;
        ]
  | Technology.Static_cmos ->
      stuck_at_faults cell @ network_faults cell
      @ List.concat_map
          (fun s -> [ Pullup_closed s.Spnet.id; Pullup_open s.Spnet.id ])
          (Spnet.switches (Cell.network cell))
  | Technology.Nmos_pulldown -> stuck_at_faults cell @ network_faults cell
  | Technology.Bipolar -> stuck_at_faults cell

let pp cell ppf fault = Fmt.string ppf (label cell fault)
