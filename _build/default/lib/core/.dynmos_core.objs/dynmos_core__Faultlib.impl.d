lib/core/faultlib.ml: Array Buffer Cell Cube Dynmos_cell Dynmos_expr Expr Fault Fault_map Fmt Hashtbl List Minimize Option String Technology Truth_table
