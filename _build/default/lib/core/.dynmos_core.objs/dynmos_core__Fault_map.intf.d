lib/core/fault_map.mli: Cell Dynmos_cell Dynmos_expr Expr Fault
