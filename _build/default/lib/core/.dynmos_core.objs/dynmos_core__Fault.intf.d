lib/core/fault.mli: Cell Dynmos_cell Fmt
