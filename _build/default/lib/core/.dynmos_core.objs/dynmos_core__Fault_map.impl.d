lib/core/fault_map.ml: Cell Dynmos_cell Dynmos_expr Dynmos_switchnet Expr Fault List Spnet String Technology Truth_table
