lib/core/fault.ml: Cell Dynmos_cell Dynmos_switchnet Fmt List Spnet Technology
