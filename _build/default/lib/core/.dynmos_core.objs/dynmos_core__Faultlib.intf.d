lib/core/faultlib.mli: Cell Dynmos_cell Dynmos_expr Expr Fault Fault_map Format Minimize Truth_table
