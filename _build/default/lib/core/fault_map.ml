open Dynmos_expr
open Dynmos_switchnet
open Dynmos_cell

(* The technology-dependent mapping from physical faults to logical fault
   effects — the executable form of the paper's Section-3 case analysis.

   The paper's central theorem is encoded in the result type: for dynamic
   nMOS and domino CMOS every fault of the common physical model maps to
   [Combinational] or [Delay] — never to [Sequential].  Static CMOS is the
   negative control: its stuck-open faults map to [Sequential], which is
   exactly the Fig. 1 problem the dynamic techniques avoid.

   Ratioed cases (domino CMOS-3, the Fig. 2 inverter, closed devices of
   static gates) depend on electrical strength.  The paper splits CMOS-3
   into a) R(T1) << R(T2) + R(SN): the node cannot be pulled down -> hard
   s0-z, and b) otherwise: the node needs more (perhaps infinite) time ->
   delay fault, detectable as s0-z by maximum-speed testing.  We resolve
   the split with an [electrical] parameter carrying device resistances. *)

type electrical = {
  r_precharge : float;  (* on-resistance of the precharge device *)
  r_evaluate : float;   (* on-resistance of the foot (evaluate) device *)
  r_inverter_p : float;
  r_inverter_n : float;
  strong_ratio : float;
      (* a stuck-closed device "wins" the fight (hard logic fault) when its
         resistance is below [strong_ratio] times the opposing path's *)
  delay_factor : float; (* slow-down assigned to ratioed delay faults *)
}

(* Paper-table defaults: every ratioed fight resolves to the hard logic
   fault (case a), so CMOS-3 joins CMOS-2 in class 9 exactly as printed in
   the Section-5 table.  Experiments override this to explore case b. *)
let default_electrical =
  {
    r_precharge = 0.1;
    r_evaluate = 1.0;
    r_inverter_p = 0.1;
    r_inverter_n = 0.1;
    strong_ratio = 0.5;
    delay_factor = 10.0;
  }

(* A weak-device variant under which stuck-closed restoring devices lose
   the fight: CMOS-3 becomes the case-b delay fault. *)
let weak_electrical =
  {
    r_precharge = 20.0;
    r_evaluate = 1.0;
    r_inverter_p = 20.0;
    r_inverter_n = 20.0;
    strong_ratio = 0.5;
    delay_factor = 10.0;
  }

type logical =
  | Combinational of Expr.t
      (* the faulty cell computes this (combinational!) function *)
  | Delay of { observed_as : Expr.t option; factor : float }
      (* performance degradation; [observed_as] is the function seen when
         sampling at maximum speed (None: possibly undetectable, CMOS-1) *)
  | Sequential of { retain_when : Expr.t }
      (* static CMOS stuck-open: output keeps its previous value whenever
         [retain_when] holds (the Fig. 1 memory states) *)
  | Contention of { fight_when : Expr.t; resolves_to : Expr.t; factor : float }
      (* both networks conduct for [fight_when]; the ratioed fight resolves
         to [resolves_to] with degraded timing (the Fig. 2 inverter) *)

let is_combinational = function
  | Combinational _ -> true
  | Delay _ | Sequential _ | Contention _ -> false

let stuck_at_output b = Combinational (Expr.Const b)

(* Wrap a faulty transmission function into the cell's logic convention. *)
let of_transmission cell t' =
  if Technology.inverts_transmission (Cell.technology cell) then Combinational (Expr.not_ t')
  else Combinational t'

let sn_faulty cell f =
  of_transmission cell (Spnet.faulty_transmission (Cell.network cell) f)

let sn_faulty_multi cell fs =
  of_transmission cell (Spnet.faulty_transmission_multi (Cell.network cell) fs)

(* Open line at the gates driven by an input: by A1 the floating gates read
   low, i.e. every switch of that input behaves as gate-open. *)
let input_gate_open cell v =
  let faults =
    List.map (fun s -> Spnet.Gate_open s.Spnet.id) (Spnet.switches_of_input (Cell.network cell) v)
  in
  sn_faulty_multi cell faults

(* Dynamic nMOS T_i closed (paper case nMOS-(n+i)): the complementary clock
   charges the input node through the closed channel, so the *input* reads
   stuck-at-1 — every switch driven by it conducts. *)
let dynamic_input_stuck_1 cell i =
  match Spnet.find_switch (Cell.network cell) i with
  | None -> invalid_arg "Fault_map: unknown switch id"
  | Some s ->
      let faults =
        List.map
          (fun s' -> Spnet.Switch_closed s'.Spnet.id)
          (Spnet.switches_of_input (Cell.network cell) s.Spnet.input)
      in
      sn_faulty_multi cell faults

let strong el ~closed_r ~opposing_r = closed_r < el.strong_ratio *. opposing_r

(* Opposing-path resistance for the domino CMOS-3 fight: evaluate device in
   series with the cheapest conducting SN path. *)
let pulldown_path_r el cell =
  match Spnet.min_resistance (Cell.network cell) with
  | Some r -> el.r_evaluate +. r
  | None -> infinity

let map ?(electrical = default_electrical) cell fault =
  let el = electrical in
  let tech = Cell.technology cell in
  let t = Spnet.transmission (Cell.network cell) in
  match (tech, fault) with
  (* ---- Classic stuck-at model (any technology) --------------------- *)
  | _, Fault.Stuck_at (v, b) ->
      if String.equal v (Cell.output cell) then stuck_at_output b
      else Combinational (Expr.cofactor v b (Cell.logic cell))
  (* ---- Switching-network faults ------------------------------------ *)
  | Technology.Dynamic_nmos, Fault.Network_closed i -> dynamic_input_stuck_1 cell i
  | (Technology.Domino_cmos | Technology.Nmos_pulldown), Fault.Network_closed i ->
      sn_faulty cell (Spnet.Switch_closed i)
  | (Technology.Dynamic_nmos | Technology.Domino_cmos | Technology.Nmos_pulldown), Fault.Network_open i
    ->
      sn_faulty cell (Spnet.Switch_open i)
  | _, Fault.Input_gate_open v -> input_gate_open cell v
  (* ---- Static CMOS switch-level faults: the problem cases ---------- *)
  | Technology.Static_cmos, Fault.Network_open i ->
      (* Pull-down loses minterms; where the pull-up (dual, = !T) is also
         off the output floats and retains its value: sequential! *)
      let t' = Spnet.faulty_transmission (Cell.network cell) (Spnet.Switch_open i) in
      let retain = Expr.(t && Expr.not_ t') in
      if Truth_table.equal_exprs retain Expr.false_ then Combinational (Expr.not_ t')
      else Sequential { retain_when = retain }
  | Technology.Static_cmos, Fault.Pullup_open i ->
      (* The pull-up is the dual network; opening one of its switches makes
         the output float where the pull-down is off too. *)
      let dual_net = Spnet.dual (Cell.network cell) in
      let up' = Spnet.faulty_transmission dual_net (Spnet.Switch_open i) in
      let retain = Expr.(Expr.not_ t && Expr.not_ up') in
      if Truth_table.equal_exprs retain Expr.false_ then Combinational up'
      else Sequential { retain_when = retain }
  | Technology.Static_cmos, Fault.Network_closed i ->
      (* Extra pull-down minterms fight the pull-up (Fig. 2): where both
         conduct, the ratioed fight resolves to the stronger side. *)
      let t' = Spnet.faulty_transmission (Cell.network cell) (Spnet.Switch_closed i) in
      let fight = Expr.(t' && Expr.not_ t) in
      if Truth_table.equal_exprs fight Expr.false_ then Combinational (Expr.not_ t')
      else
        Contention { fight_when = fight; resolves_to = Expr.not_ t'; factor = el.delay_factor }
  | Technology.Static_cmos, Fault.Pullup_closed i ->
      let dual_net = Spnet.dual (Cell.network cell) in
      let up' = Spnet.faulty_transmission dual_net (Spnet.Switch_closed i) in
      let fight = Expr.(up' && t) in
      if Truth_table.equal_exprs fight Expr.false_ then Combinational up'
      else Contention { fight_when = fight; resolves_to = Expr.not_ t; factor = el.delay_factor }
  | Technology.Nmos_pulldown, Fault.Pullup_open _ | Technology.Nmos_pulldown, Fault.Pullup_closed _
    ->
      invalid_arg "Fault_map: nMOS pull-down cells have no pull-up network"
  (* ---- Dynamic nMOS clocking faults (Fig. 6) ------------------------ *)
  | Technology.Dynamic_nmos, Fault.Precharge_open ->
      (* nMOS-(2n+1): z was discharged once (A2) and can never be pulled
         up again: s0-z. *)
      stuck_at_output false
  | Technology.Dynamic_nmos, Fault.Precharge_closed ->
      (* nMOS-(2n+2): permanent drain-source path discharges z: s0-z.  The
         paper's "very interesting fact": open and closed precharge give
         the same class. *)
      stuck_at_output false
  | Technology.Dynamic_nmos, Fault.Connection_open Fault.Precharge_path ->
      (* Never precharged; A1: s0-z. *)
      stuck_at_output false
  | Technology.Dynamic_nmos, Fault.Connection_open Fault.Pulldown_path ->
      (* Opens at S(n+2)/S(n+3): z can never be discharged: s1-z. *)
      stuck_at_output true
  (* ---- Domino CMOS clocking faults (Fig. 4) ------------------------- *)
  | Technology.Domino_cmos, Fault.Evaluate_closed ->
      (* CMOS-1: T2 is there for timing only; during precharge all domino
         inputs are low so SN never conducts anyway.  Not modelable as a
         logic fault; possibly undetectable. *)
      Delay { observed_as = None; factor = el.delay_factor }
  | Technology.Domino_cmos, Fault.Evaluate_open ->
      (* CMOS-2: the internal node is never pulled down: s0-z. *)
      stuck_at_output false
  | Technology.Domino_cmos, Fault.Precharge_closed ->
      (* CMOS-3: ratioed fight between the stuck-closed precharge pull-up
         and the evaluation path. *)
      if strong el ~closed_r:el.r_precharge ~opposing_r:(pulldown_path_r el cell) then
        stuck_at_output false (* case a: node cannot fall: hard s0-z *)
      else Delay { observed_as = Some Expr.false_; factor = el.delay_factor }
      (* case b: slow fall, seen as s0-z at maximum speed *)
  | Technology.Domino_cmos, Fault.Precharge_open ->
      (* CMOS-4: never precharged; by A1 the internal node reads low, the
         inverter output is stuck high: s1-z. *)
      stuck_at_output true
  | Technology.Domino_cmos, Fault.Inverter_p_open -> stuck_at_output false
  | Technology.Domino_cmos, Fault.Inverter_n_open ->
      (* By A2 the output was high once and can never be pulled low. *)
      stuck_at_output true
  | Technology.Domino_cmos, Fault.Inverter_p_closed ->
      if strong el ~closed_r:el.r_inverter_p ~opposing_r:el.r_inverter_n then stuck_at_output true
      else Delay { observed_as = Some Expr.true_; factor = el.delay_factor }
  | Technology.Domino_cmos, Fault.Inverter_n_closed ->
      if strong el ~closed_r:el.r_inverter_n ~opposing_r:el.r_inverter_p then
        stuck_at_output false
      else Delay { observed_as = Some Expr.false_; factor = el.delay_factor }
  | Technology.Domino_cmos, Fault.Connection_open Fault.Pulldown_path -> stuck_at_output false
  | Technology.Domino_cmos, Fault.Connection_open Fault.Precharge_path -> stuck_at_output true
  (* ---- Inapplicable combinations ------------------------------------ *)
  | ( ( Technology.Static_cmos | Technology.Bipolar | Technology.Nmos_pulldown
      | Technology.Dynamic_nmos ),
      ( Fault.Evaluate_open | Fault.Evaluate_closed | Fault.Inverter_p_open
      | Fault.Inverter_p_closed | Fault.Inverter_n_open | Fault.Inverter_n_closed ) )
  | (Technology.Static_cmos | Technology.Bipolar), Fault.Precharge_open
  | (Technology.Static_cmos | Technology.Bipolar), Fault.Precharge_closed
  | (Technology.Static_cmos | Technology.Bipolar), Fault.Connection_open _
  | Technology.Nmos_pulldown, Fault.Precharge_open
  | Technology.Nmos_pulldown, Fault.Precharge_closed
  | Technology.Nmos_pulldown, Fault.Connection_open _
  | Technology.Bipolar, Fault.Network_open _
  | Technology.Bipolar, Fault.Network_closed _
  | (Technology.Dynamic_nmos | Technology.Domino_cmos | Technology.Bipolar), Fault.Pullup_open _
  | (Technology.Dynamic_nmos | Technology.Domino_cmos | Technology.Bipolar), Fault.Pullup_closed _
    ->
      invalid_arg "Fault_map.map: fault not applicable to this technology"

(* The paper's claim 2 as a decidable check: under the physical fault model
   no fault of a dynamic-technology cell yields sequential behaviour. *)
let never_sequential cell =
  Technology.is_dynamic (Cell.technology cell)
  && List.for_all
       (fun f -> match map cell f with Sequential _ -> false | _ -> true)
       (Fault.enumerate cell)
