open Dynmos_cell

(** The common physical fault model (paper, Section 3): open connections,
    permanently open transistors, permanently closed transistors — applied
    to every structural element of a cell. *)

type connection = Precharge_path | Pulldown_path

type physical =
  | Network_open of int        (** SN transistor T_i permanently open *)
  | Network_closed of int      (** SN transistor T_i permanently closed *)
  | Input_gate_open of string  (** open line at the gate(s) driven by an input (A1 applies) *)
  | Pullup_open of int         (** static CMOS p-network transistor open *)
  | Pullup_closed of int
  | Precharge_open             (** dynamic nMOS T(n+1) / domino T1 *)
  | Precharge_closed
  | Evaluate_open              (** domino T2 *)
  | Evaluate_closed
  | Inverter_p_open            (** domino / static output inverter devices *)
  | Inverter_p_closed
  | Inverter_n_open
  | Inverter_n_closed
  | Connection_open of connection
  | Stuck_at of string * bool  (** classic model (static CMOS, bipolar, nMOS) *)

val equal : physical -> physical -> bool

val describe : Cell.t -> physical -> string
(** Human-readable name in the paper's table style: ["a closed"],
    ["s0-u"], ["inverter p open"].  Switches of multiply-used inputs are
    disambiguated as ["a(T3) closed"]. *)

val paper_label : Cell.t -> physical -> string option
(** The paper's systematic label when one exists: ["nMOS-7"],
    ["CMOS-2"], ... *)

val label : Cell.t -> physical -> string
(** {!paper_label} when defined, {!describe} otherwise. *)

val enumerate : Cell.t -> physical list
(** Complete fault universe of a cell in the paper's enumeration order
    (per-switch closed/open pairs first — this is what makes the Fig. 9
    table come out in the published class order — then gate-line opens,
    then the technology-specific clocking/inverter/connection faults;
    static technologies get the stuck-at model first). *)

val pp : Cell.t -> physical Fmt.t
