open Dynmos_expr
open Dynmos_cell

(** Technology-dependent mapping from physical faults to logical effects —
    the executable form of the paper's Section-3 case analysis.

    For dynamic nMOS and domino CMOS every fault of the common physical
    model maps to {!Combinational} or {!Delay}, never {!Sequential} (the
    paper's central result).  Static CMOS stuck-open faults map to
    {!Sequential} — the Fig. 1 problem dynamic logic avoids. *)

type electrical = {
  r_precharge : float;
  r_evaluate : float;
  r_inverter_p : float;
  r_inverter_n : float;
  strong_ratio : float;
      (** a stuck-closed device wins its ratioed fight (hard logic fault)
          when its resistance is below [strong_ratio] × the opposing
          path's resistance *)
  delay_factor : float;  (** slow-down assigned to ratioed delay faults *)
}

val default_electrical : electrical
(** Strong restoring devices: every ratioed fight resolves to the hard
    logic fault (the paper's case a; reproduces the Section-5 table). *)

val weak_electrical : electrical
(** Weak restoring devices: stuck-closed precharge/inverter devices lose
    the fight and become delay faults (case b, max-speed testing). *)

type logical =
  | Combinational of Expr.t
      (** the faulty cell computes this combinational function *)
  | Delay of { observed_as : Expr.t option; factor : float }
      (** performance degradation; [observed_as] is the function seen at
          maximum-speed sampling ([None]: possibly undetectable, CMOS-1) *)
  | Sequential of { retain_when : Expr.t }
      (** static CMOS stuck-open: the output retains its previous value
          whenever [retain_when] holds *)
  | Contention of { fight_when : Expr.t; resolves_to : Expr.t; factor : float }
      (** both networks conduct on [fight_when]; the ratioed fight resolves
          to [resolves_to] with degraded timing (the Fig. 2 inverter) *)

val is_combinational : logical -> bool

val map : ?electrical:electrical -> Cell.t -> Fault.physical -> logical
(** The Section-3 case analysis.  @raise Invalid_argument when the fault
    does not apply to the cell's technology. *)

val never_sequential : Cell.t -> bool
(** Claim 2 as a decidable check: the cell is of a dynamic technology and
    none of its physical faults maps to {!Sequential}. *)
