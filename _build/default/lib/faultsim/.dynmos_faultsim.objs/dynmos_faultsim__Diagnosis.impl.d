lib/faultsim/diagnosis.ml: Array Compiled Dynmos_netlist Dynmos_sim Faultsim Fun Hashtbl List Netlist Option
