lib/faultsim/diagnosis.mli: Faultsim
