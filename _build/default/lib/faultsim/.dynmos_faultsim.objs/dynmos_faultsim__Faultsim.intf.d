lib/faultsim/faultsim.mli: Compiled Dynmos_core Dynmos_netlist Dynmos_sim Dynmos_util Fault_map Faultlib Netlist Prng
