lib/faultsim/faultsim.ml: Array Cell Compiled Dynmos_cell Dynmos_core Dynmos_netlist Dynmos_sim Dynmos_util Faultlib Fmt Hashtbl Int List Map Netlist Option Set String
