open Dynmos_netlist
open Dynmos_sim

(* Fault diagnosis from the generated libraries.

   The paper's Section-5 table enumerates the *distinguishable* fault
   classes of a cell — distinguishability is what makes the library a
   diagnosis dictionary, not just a detection target.  This module
   operationalizes that:

   - [dictionary] records, per fault site, the response signature of a
     test-pattern set (which patterns produce outputs differing from the
     fault-free machine, and how);
   - [diagnose] maps an observed faulty response back to the candidate
     sites (fault classes) consistent with it;
   - [distinguishing_pattern] searches for an input separating two sites;
   - [pairwise_distinguishable] verifies the paper's implicit claim that
     the table's classes are mutually distinguishable. *)

type signature = {
  site_id : int;
  (* Per pattern, the faulty primary-output vector (as a bit-packed int,
     one bit per PO). *)
  responses : int array;
}

type dictionary = {
  universe : Faultsim.universe;
  patterns : bool array array;
  good : int array;             (* fault-free responses, same packing *)
  signatures : signature array; (* indexed by site id *)
}

let pack_outputs (po : bool array) =
  let v = ref 0 in
  Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) po;
  !v

let responses_of u ~override patterns =
  Array.map
    (fun p -> pack_outputs (Compiled.eval ?override u.Faultsim.compiled p))
    patterns

let dictionary u patterns =
  let good = responses_of u ~override:None patterns in
  let signatures =
    Array.map
      (fun site ->
        {
          site_id = site.Faultsim.sid;
          responses =
            responses_of u
              ~override:(Some (site.Faultsim.gate.Netlist.id, site.Faultsim.fn))
              patterns;
        })
      u.Faultsim.sites
  in
  { universe = u; patterns; good; signatures }

(* Sites whose recorded signature matches the observed responses. *)
let diagnose dict (observed : int array) =
  if Array.length observed <> Array.length dict.patterns then
    invalid_arg "Diagnosis.diagnose: response length";
  Array.to_list dict.signatures
  |> List.filter (fun s -> s.responses = observed)
  |> List.map (fun s -> dict.universe.Faultsim.sites.(s.site_id))

(* Convenience: simulate a fault and diagnose it from its own responses
   (self-test of the dictionary's resolution). *)
let diagnose_site dict site =
  let observed =
    responses_of dict.universe
      ~override:(Some (site.Faultsim.gate.Netlist.id, site.Faultsim.fn))
      dict.patterns
  in
  diagnose dict observed

(* Does the observed response match the fault-free machine? *)
let looks_fault_free dict observed = observed = dict.good

(* A single input vector on which the two sites' faulty machines respond
   differently (None if they are equivalent at the primary outputs). *)
let distinguishing_pattern u a b =
  let n_in = Compiled.n_inputs u.Faultsim.compiled in
  if n_in > 22 then invalid_arg "Diagnosis.distinguishing_pattern: too many inputs";
  let eval site p =
    Compiled.eval ~override:(site.Faultsim.gate.Netlist.id, site.Faultsim.fn)
      u.Faultsim.compiled p
  in
  let rec go row =
    if row >= 1 lsl n_in then None
    else
      let p = Array.init n_in (fun i -> (row lsr i) land 1 = 1) in
      if eval a p <> eval b p then Some p else go (row + 1)
  in
  go 0

(* The resolution of a pattern set: groups of sites left indistinguishable
   by it.  Singleton groups mean the set diagnoses down to one class. *)
let equivalence_groups dict =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun s ->
      let key = Array.to_list s.responses in
      Hashtbl.replace tbl key
        (dict.universe.Faultsim.sites.(s.site_id)
        :: Option.value ~default:[] (Hashtbl.find_opt tbl key)))
    dict.signatures;
  Hashtbl.fold (fun _ sites acc -> List.rev sites :: acc) tbl []
  |> List.sort (fun a b ->
         compare
           (List.map (fun s -> s.Faultsim.sid) a)
           (List.map (fun s -> s.Faultsim.sid) b))

let pairwise_distinguishable u =
  let sites = Array.to_list u.Faultsim.sites in
  let rec pairs = function
    | [] -> true
    | a :: rest ->
        List.for_all (fun b -> distinguishing_pattern u a b <> None) rest && pairs rest
  in
  pairs sites

(* Greedy adaptive construction of a diagnosing pattern set: repeatedly
   pick the exhaustive pattern splitting the largest remaining ambiguity
   group, until no pattern improves the partition. *)
let diagnosing_patterns u =
  let n_in = Compiled.n_inputs u.Faultsim.compiled in
  if n_in > 16 then invalid_arg "Diagnosis.diagnosing_patterns: too many inputs";
  let all = Faultsim.exhaustive_patterns n_in in
  let response site p =
    pack_outputs
      (Compiled.eval ~override:(site.Faultsim.gate.Netlist.id, site.Faultsim.fn)
         u.Faultsim.compiled p)
  in
  (* partition: list of groups of site ids *)
  let refine groups p =
    List.concat_map
      (fun group ->
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun sid ->
            let r = response u.Faultsim.sites.(sid) p in
            Hashtbl.replace tbl r (sid :: Option.value ~default:[] (Hashtbl.find_opt tbl r)))
          group;
        Hashtbl.fold (fun _ g acc -> List.rev g :: acc) tbl [])
      groups
  in
  let score groups = List.length groups in
  let chosen = ref [] in
  let groups = ref [ List.init (Faultsim.n_sites u) Fun.id ] in
  let improved = ref true in
  while !improved do
    improved := false;
    let best = ref None in
    Array.iter
      (fun p ->
        let g' = refine !groups p in
        let s = score g' in
        match !best with
        | Some (_, sb) when sb >= s -> ()
        | _ -> if s > score !groups then best := Some (p, s))
      all;
    match !best with
    | Some (p, _) ->
        chosen := p :: !chosen;
        groups := refine !groups p;
        improved := true
    | None -> ()
  done;
  (Array.of_list (List.rev !chosen), !groups)
