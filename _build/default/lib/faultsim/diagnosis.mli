(** Fault diagnosis from the generated libraries.

    The paper's Section-5 table enumerates *distinguishable* fault
    classes — distinguishability is what makes a fault library a
    diagnosis dictionary, not just a detection target.  This module
    builds response dictionaries over pattern sets, maps observed
    responses back to candidate fault classes, and constructs adaptive
    diagnosing pattern sets. *)

type signature = {
  site_id : int;
  responses : int array;
      (** per pattern: the faulty primary outputs, bit-packed (bit i =
          output i) *)
}

type dictionary = {
  universe : Faultsim.universe;
  patterns : bool array array;
  good : int array;             (** fault-free responses, same packing *)
  signatures : signature array; (** indexed by site id *)
}

val pack_outputs : bool array -> int

val dictionary : Faultsim.universe -> bool array array -> dictionary
(** Record every site's response signature over a pattern set. *)

val diagnose : dictionary -> int array -> Faultsim.site list
(** Sites consistent with an observed response sequence.
    @raise Invalid_argument on a length mismatch. *)

val diagnose_site : dictionary -> Faultsim.site -> Faultsim.site list
(** Simulate a fault and look it up in the dictionary (resolution
    self-test: the result always contains the site itself). *)

val looks_fault_free : dictionary -> int array -> bool

val distinguishing_pattern :
  Faultsim.universe -> Faultsim.site -> Faultsim.site -> bool array option
(** An input separating two faulty machines at the primary outputs;
    [None] if they are output-equivalent. *)

val equivalence_groups : dictionary -> Faultsim.site list list
(** Partition of the sites by identical signatures under the dictionary's
    patterns (singletons = fully diagnosed). *)

val pairwise_distinguishable : Faultsim.universe -> bool
(** Are all sites mutually distinguishable by some input? *)

val diagnosing_patterns : Faultsim.universe -> bool array array * int list list
(** Greedy adaptive diagnosing set: patterns chosen to maximally split
    ambiguity groups, plus the final partition (site-id groups). *)
