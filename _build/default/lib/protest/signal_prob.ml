open Dynmos_util
open Dynmos_expr
open Dynmos_sim

(* Signal probability estimation (PROTEST feature 1, Fig. 8).

   [propagate] is the production estimator: exact for each gate under the
   assumption that its inputs are independent (Parker-McCluskey style),
   hence approximate in the presence of reconvergent fan-out — this is the
   estimator the original tool used.  [exact] evaluates the full input
   distribution (exponential, for validation on small circuits) and
   [monte_carlo] samples it (for larger validation). *)

let check_weights weights =
  Array.iter
    (fun p -> if not (p >= 0.0 && p <= 1.0) then invalid_arg "Signal_prob: weight outside [0,1]")
    weights

(* Probability that a gate function is 1 when input k is 1 independently
   with probability probs.(k): exact sum over the gate's truth table. *)
let gate_prob (fn : Compiled.gate_fn) (probs : float array) =
  let tt = fn.Compiled.table in
  let n = Truth_table.n_vars tt in
  let total = ref 0.0 in
  for row = 0 to (1 lsl n) - 1 do
    if Truth_table.get tt row then begin
      let p = ref 1.0 in
      for i = 0 to n - 1 do
        p := !p *. (if (row lsr i) land 1 = 1 then probs.(i) else 1.0 -. probs.(i))
      done;
      total := !total +. !p
    end
  done;
  !total

let propagate compiled ~pi_weights =
  check_weights pi_weights;
  let n_in = Compiled.n_inputs compiled in
  if Array.length pi_weights <> n_in then invalid_arg "Signal_prob.propagate: PI arity";
  let probs = Array.make (Compiled.n_nets compiled) 0.0 in
  Array.blit pi_weights 0 probs 0 n_in;
  Array.iter
    (fun cg ->
      let in_probs = Array.map (fun i -> probs.(i)) cg.Compiled.ins in
      probs.(cg.Compiled.out) <- gate_prob cg.Compiled.fn in_probs)
    (Compiled.gates compiled);
  probs

let exact compiled ~pi_weights =
  check_weights pi_weights;
  let n_in = Compiled.n_inputs compiled in
  if n_in > 22 then invalid_arg "Signal_prob.exact: too many primary inputs";
  let n_nets = Compiled.n_nets compiled in
  let probs = Array.make n_nets 0.0 in
  for row = 0 to (1 lsl n_in) - 1 do
    let w = ref 1.0 in
    let pi = Array.init n_in (fun i -> (row lsr i) land 1 = 1) in
    for i = 0 to n_in - 1 do
      w := !w *. (if pi.(i) then pi_weights.(i) else 1.0 -. pi_weights.(i))
    done;
    if !w > 0.0 then begin
      let nets = Compiled.eval_nets compiled pi in
      Array.iteri (fun i v -> if v then probs.(i) <- probs.(i) +. !w) nets
    end
  done;
  probs

let monte_carlo prng compiled ~pi_weights ~samples =
  check_weights pi_weights;
  let n_in = Compiled.n_inputs compiled in
  let n_nets = Compiled.n_nets compiled in
  let counts = Array.make n_nets 0 in
  for _ = 1 to samples do
    let pi = Array.init n_in (fun i -> Prng.bernoulli prng pi_weights.(i)) in
    let nets = Compiled.eval_nets compiled pi in
    Array.iteri (fun i v -> if v then counts.(i) <- counts.(i) + 1) nets
  done;
  Array.map (fun c -> float_of_int c /. float_of_int samples) counts

(* Error statistics of the estimator against the exact distribution. *)
let estimator_error compiled ~pi_weights =
  let est = propagate compiled ~pi_weights in
  let ex = exact compiled ~pi_weights in
  let n = Array.length est in
  let max_err = ref 0.0 and sum = ref 0.0 in
  for i = 0 to n - 1 do
    let e = Float.abs (est.(i) -. ex.(i)) in
    max_err := Float.max !max_err e;
    sum := !sum +. e
  done;
  (!max_err, !sum /. float_of_int n)
