open Dynmos_faultsim

(* Optimized input signal probabilities (PROTEST feature 4, Fig. 8).

   "For each primary input a specific signal probability is computed,
   promising an increase of fault detection and a decrease of the
   necessary test length ... the necessary test length can be reduced by
   orders of magnitudes."

   The objective is the test length required for the demanded confidence,
   computed from estimated (or exact, on small circuits) detection
   probabilities.  The search is cyclic coordinate descent with a grid
   over each input's probability — simple, derivative-free, deterministic,
   and faithful to the published tool's spirit.  To keep the objective
   finite when some fault has (estimated) zero detection probability we
   maximize the minimum detection probability first, then minimize the
   length. *)

type objective = Estimated | Exact

let detection u ~objective ~pi_weights =
  match objective with
  | Estimated -> Detect_prob.estimate u ~pi_weights
  | Exact -> Detect_prob.exact u ~pi_weights

(* Lexicographic cost: first get every fault detectable, then shorten the
   test.  Smaller is better. *)
let cost u ~objective ~confidence ~pi_weights =
  let probs = detection u ~objective ~pi_weights in
  let p_min = Array.fold_left Float.min 1.0 probs in
  if p_min <= 1e-12 then (1, -.p_min)
  else (0, float_of_int (Test_length.required_length ~confidence probs))

let default_grid = [ 0.05; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 0.95 ]

let optimize ?(objective = Estimated) ?(grid = default_grid) ?(max_passes = 8)
    ~confidence (u : Faultsim.universe) initial =
  let n = Array.length initial in
  let weights = Array.copy initial in
  let best_cost = ref (cost u ~objective ~confidence ~pi_weights:weights) in
  let improved = ref true in
  let passes = ref 0 in
  while !improved && !passes < max_passes do
    improved := false;
    incr passes;
    for i = 0 to n - 1 do
      let original = weights.(i) in
      let best_here = ref original in
      List.iter
        (fun cand ->
          if cand <> original then begin
            weights.(i) <- cand;
            let c = cost u ~objective ~confidence ~pi_weights:weights in
            if c < !best_cost then begin
              best_cost := c;
              best_here := cand;
              improved := true
            end
          end)
        grid;
      weights.(i) <- !best_here
    done
  done;
  weights

(* Convenience: uniform starting point and before/after lengths. *)
type result = {
  initial_weights : float array;
  optimized_weights : float array;
  initial_length : int option;   (* None: some fault unreachable at p=0.5 *)
  optimized_length : int option;
  reduction : float option;      (* initial / optimized *)
}

let length_opt u ~objective ~confidence ~pi_weights =
  match Test_length.required_length ~confidence (detection u ~objective ~pi_weights) with
  | n -> Some n
  | exception Test_length.Undetectable -> None

let run ?(objective = Estimated) ?grid ?max_passes ~confidence u =
  let n = Dynmos_sim.Compiled.n_inputs u.Faultsim.compiled in
  let initial = Array.make n 0.5 in
  let optimized = optimize ~objective ?grid ?max_passes ~confidence u initial in
  let initial_length = length_opt u ~objective ~confidence ~pi_weights:initial in
  let optimized_length = length_opt u ~objective ~confidence ~pi_weights:optimized in
  let reduction =
    match (initial_length, optimized_length) with
    | Some a, Some b when b > 0 -> Some (float_of_int a /. float_of_int b)
    | _ -> None
  in
  { initial_weights = initial; optimized_weights = optimized; initial_length; optimized_length; reduction }
