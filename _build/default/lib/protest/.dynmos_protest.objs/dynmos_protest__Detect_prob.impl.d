lib/protest/detect_prob.ml: Array Compiled Dynmos_expr Dynmos_faultsim Dynmos_netlist Dynmos_sim Dynmos_util Faultsim Float Netlist Prng Signal_prob Truth_table
