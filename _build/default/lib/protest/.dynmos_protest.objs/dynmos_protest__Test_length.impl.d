lib/protest/test_length.ml: Array Float
