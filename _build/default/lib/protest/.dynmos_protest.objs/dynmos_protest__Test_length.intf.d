lib/protest/test_length.mli:
