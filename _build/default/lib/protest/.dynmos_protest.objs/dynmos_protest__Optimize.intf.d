lib/protest/optimize.mli: Dynmos_faultsim Faultsim
