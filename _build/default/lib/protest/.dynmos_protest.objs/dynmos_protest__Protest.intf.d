lib/protest/protest.mli: Dynmos_core Dynmos_faultsim Dynmos_netlist Fault_map Faultsim Format Netlist Optimize
