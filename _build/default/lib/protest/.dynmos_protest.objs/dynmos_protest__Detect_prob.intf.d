lib/protest/detect_prob.mli: Compiled Dynmos_faultsim Dynmos_sim Dynmos_util Faultsim Prng
