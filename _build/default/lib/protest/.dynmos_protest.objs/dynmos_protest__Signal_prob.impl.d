lib/protest/signal_prob.ml: Array Compiled Dynmos_expr Dynmos_sim Dynmos_util Float Prng Truth_table
