lib/protest/signal_prob.mli: Compiled Dynmos_sim Dynmos_util Prng
