lib/protest/optimize.ml: Array Detect_prob Dynmos_faultsim Dynmos_sim Faultsim Float List Test_length
