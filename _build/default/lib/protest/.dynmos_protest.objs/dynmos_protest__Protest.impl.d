lib/protest/protest.ml: Array Compiled Detect_prob Dynmos_faultsim Dynmos_netlist Dynmos_sim Dynmos_util Faultsim Fmt Netlist Optimize Option Prng Signal_prob Test_length
