open Dynmos_util
open Dynmos_expr
open Dynmos_sim
open Dynmos_netlist
open Dynmos_faultsim

(* Fault detection probability (PROTEST feature 2, Fig. 8): for each fault
   the probability that one random pattern (with the given input signal
   probabilities) detects it.

   [exact] enumerates the weighted input space with bit-parallel
   simulation.  [estimate] is the production path: a COP-style
   controllability/observability product —
     controllability from [Signal_prob.propagate];
     observability propagated backwards through boolean-difference
     probabilities of each gate (exact per gate, independence assumed);
     detection ~= P(local fault effect) x O(gate output).
   [monte_carlo] samples. *)

(* --- Exact ---------------------------------------------------------------- *)

let pattern_weight pi_weights pattern =
  let w = ref 1.0 in
  Array.iteri
    (fun i b -> w := !w *. (if b then pi_weights.(i) else 1.0 -. pi_weights.(i)))
    pattern;
  !w

let exact (u : Faultsim.universe) ~pi_weights =
  let compiled = u.Faultsim.compiled in
  let n_in = Compiled.n_inputs compiled in
  if n_in > 22 then invalid_arg "Detect_prob.exact: too many primary inputs";
  let patterns = Faultsim.exhaustive_patterns n_in in
  let probs = Array.make (Faultsim.n_sites u) 0.0 in
  (* Chunked bit-parallel evaluation: 62 patterns at a time. *)
  let total = Array.length patterns in
  let from = ref 0 in
  while !from < total do
    let len = min 62 (total - !from) in
    let words = Array.make n_in 0 in
    let weights = Array.make len 0.0 in
    for j = 0 to len - 1 do
      let p = patterns.(!from + j) in
      weights.(j) <- pattern_weight pi_weights p;
      for i = 0 to n_in - 1 do
        if p.(i) then words.(i) <- words.(i) lor (1 lsl j)
      done
    done;
    let good = Compiled.outputs_of_nets compiled (Compiled.eval_words compiled words) in
    Array.iter
      (fun site ->
        let faulty =
          Compiled.outputs_of_nets compiled
            (Compiled.eval_words
               ~override:(site.Faultsim.gate.Netlist.id, site.Faultsim.fn)
               compiled words)
        in
        let diff = ref 0 in
        Array.iteri (fun k g -> diff := !diff lor (g lxor faulty.(k))) good;
        for j = 0 to len - 1 do
          if (!diff lsr j) land 1 = 1 then
            probs.(site.Faultsim.sid) <- probs.(site.Faultsim.sid) +. weights.(j)
        done)
      u.Faultsim.sites;
    from := !from + len
  done;
  probs

(* --- Estimated (controllability / observability) -------------------------- *)

(* P(flipping input k flips the gate output) under independent input
   probabilities: the boolean difference probability. *)
let sensitization_prob (fn : Compiled.gate_fn) probs k =
  let tt = fn.Compiled.table in
  let n = Truth_table.n_vars tt in
  let total = ref 0.0 in
  for row = 0 to (1 lsl n) - 1 do
    let row' = row lxor (1 lsl k) in
    if Truth_table.get tt row <> Truth_table.get tt row' then begin
      let p = ref 1.0 in
      for i = 0 to n - 1 do
        p := !p *. (if (row lsr i) land 1 = 1 then probs.(i) else 1.0 -. probs.(i))
      done;
      total := !total +. !p
    end
  done;
  !total

let observability compiled ~pi_weights =
  let controllability = Signal_prob.propagate compiled ~pi_weights in
  let n_nets = Compiled.n_nets compiled in
  let obs = Array.make n_nets 0.0 in
  Array.iter (fun po -> obs.(po) <- 1.0) (Compiled.po_indices compiled);
  (* Walk gates in reverse topological order; fan-out branches combine by
     the standard COP approximation O = max over branches. *)
  let gates = Compiled.gates compiled in
  for gi = Array.length gates - 1 downto 0 do
    let cg = gates.(gi) in
    let in_probs = Array.map (fun i -> controllability.(i)) cg.Compiled.ins in
    Array.iteri
      (fun k net ->
        let through = obs.(cg.Compiled.out) *. sensitization_prob cg.Compiled.fn in_probs k in
        obs.(net) <- Float.max obs.(net) through)
      cg.Compiled.ins
  done;
  (controllability, obs)

let estimate (u : Faultsim.universe) ~pi_weights =
  let compiled = u.Faultsim.compiled in
  let controllability, obs = observability compiled ~pi_weights in
  Array.map
    (fun site ->
      let cg = (Compiled.gates compiled).(site.Faultsim.gate.Netlist.id) in
      let in_probs = Array.map (fun i -> controllability.(i)) cg.Compiled.ins in
      (* Probability the faulty and good gate outputs differ locally. *)
      let good_tt = cg.Compiled.fn.Compiled.table in
      let bad_tt = site.Faultsim.fn.Compiled.table in
      let local = Truth_table.detection_prob ~weights:in_probs ~good:good_tt ~faulty:bad_tt () in
      local *. obs.(cg.Compiled.out))
    u.Faultsim.sites

(* --- Monte Carlo ------------------------------------------------------------ *)

let monte_carlo prng (u : Faultsim.universe) ~pi_weights ~samples =
  let compiled = u.Faultsim.compiled in
  let n_in = Compiled.n_inputs compiled in
  let hits = Array.make (Faultsim.n_sites u) 0 in
  for _ = 1 to samples do
    let pattern = Array.init n_in (fun i -> Prng.bernoulli prng pi_weights.(i)) in
    let good = Compiled.eval compiled pattern in
    Array.iter
      (fun site ->
        let faulty =
          Compiled.eval ~override:(site.Faultsim.gate.Netlist.id, site.Faultsim.fn) compiled
            pattern
        in
        if faulty <> good then hits.(site.Faultsim.sid) <- hits.(site.Faultsim.sid) + 1)
      u.Faultsim.sites
  done;
  Array.map (fun h -> float_of_int h /. float_of_int samples) hits
