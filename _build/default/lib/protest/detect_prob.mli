open Dynmos_util
open Dynmos_sim
open Dynmos_faultsim

(** Fault detection probabilities (PROTEST Fig. 8, feature 2): per fault
    site, the probability that one weighted random pattern detects it. *)

val exact : Faultsim.universe -> pi_weights:float array -> float array
(** Weighted enumeration of the input space (bit-parallel).  Indexed by
    site id.  @raise Invalid_argument beyond 22 primary inputs. *)

val estimate : Faultsim.universe -> pi_weights:float array -> float array
(** Production estimator: COP-style controllability/observability product
    with exact per-gate boolean-difference probabilities (independence
    assumed across nets). *)

val monte_carlo :
  Prng.t -> Faultsim.universe -> pi_weights:float array -> samples:int -> float array

val observability : Compiled.t -> pi_weights:float array -> float array * float array
(** (controllability, observability) per net — the internals of
    {!estimate}, exposed for inspection and tests. *)

val sensitization_prob : Compiled.gate_fn -> float array -> int -> float
(** Boolean-difference probability of one gate input. *)

val pattern_weight : float array -> bool array -> float
