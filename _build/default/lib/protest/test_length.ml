(* Necessary random-test length (PROTEST feature 3, Fig. 8).

   The user specifies the demanded confidence c that *all* faults are
   detected; with per-fault detection probabilities p_f and independent
   patterns, the probability that N patterns detect every fault is
   (under fault independence)  prod_f (1 - (1-p_f)^N) >= c.
   [required_length] solves for the minimal N (monotone bisection);
   [required_length_worst] is the closed-form single-fault bound the
   PROTEST papers use, driven by the hardest fault:
   N = ln(1 - c^(1/m)) / ln(1 - p_min). *)

let clamp p = Float.min 1.0 (Float.max 0.0 p)

let confidence ~n detection_probs =
  Array.fold_left
    (fun acc p ->
      let p = clamp p in
      if p >= 1.0 then acc
      else if p <= 0.0 then 0.0
      else acc *. (1.0 -. (((1.0 -. p) ** float_of_int n) : float)))
    1.0 detection_probs

exception Undetectable

let required_length ?(max_length = 1 lsl 40) ~confidence:c detection_probs =
  if not (c > 0.0 && c < 1.0) then invalid_arg "Test_length: confidence must be in (0,1)";
  if Array.exists (fun p -> clamp p <= 0.0) detection_probs then raise Undetectable;
  if Array.length detection_probs = 0 then 0
  else begin
    (* Exponential search then bisection on the monotone confidence. *)
    let ok n = confidence ~n detection_probs >= c in
    let rec grow n = if ok n then n else if n >= max_length then raise Undetectable else grow (n * 2) in
    let hi = grow 1 in
    let rec bisect lo hi =
      (* invariant: not (ok lo) (for lo >= 1), ok hi *)
      if hi - lo <= 1 then hi
      else
        let mid = lo + ((hi - lo) / 2) in
        if ok mid then bisect lo mid else bisect mid hi
    in
    if hi = 1 then if ok 0 then 0 else 1 else bisect (hi / 2) hi
  end

let required_length_worst ~confidence:c detection_probs =
  if not (c > 0.0 && c < 1.0) then invalid_arg "Test_length: confidence must be in (0,1)";
  let m = Array.length detection_probs in
  if m = 0 then 0
  else begin
    let p_min = Array.fold_left Float.min 1.0 (Array.map clamp detection_probs) in
    if p_min <= 0.0 then raise Undetectable;
    let per_fault = c ** (1.0 /. float_of_int m) in
    int_of_float (Float.ceil (log (1.0 -. per_fault) /. log (1.0 -. p_min)))
  end

(* Expected number of patterns until a single fault of detection
   probability p is first detected (geometric distribution). *)
let expected_first_detection p =
  let p = clamp p in
  if p <= 0.0 then infinity else 1.0 /. p

(* The escape probability after N patterns: P(some fault undetected). *)
let escape ~n detection_probs = 1.0 -. confidence ~n detection_probs
