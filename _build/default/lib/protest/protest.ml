open Dynmos_util
open Dynmos_netlist
open Dynmos_sim
open Dynmos_faultsim

(* The PROTEST tool facade (Fig. 8).

   "For combinational networks PROTEST determines: signal probabilities,
   fault detection probabilities, the necessary test length for a demanded
   confidence, optimized input signal probabilities; random patterns with
   the proposed distributions are created; a static fault simulation
   validates the predictions."

   [analyze] runs the full pipeline over a netlist whose fault universe is
   generated from the technology-dependent fault libraries (Section 5) —
   the integration the paper's title is about. *)

type fault_report = {
  site : Faultsim.site;
  label : string;
  estimated : float;   (* estimated detection probability *)
  exact : float option; (* exact, when the circuit is small enough *)
}

type report = {
  netlist : Netlist.t;
  universe : Faultsim.universe;
  pi_weights : float array;
  signal_probs : (string * float) array;   (* estimated, per net *)
  faults : fault_report array;
  test_length : int option;                (* None: some fault undetectable *)
  confidence : float;
  optimization : Optimize.result option;
}

let analyze ?electrical ?(confidence = 0.999) ?(optimize = false) ?(exact_limit = 14)
    ?(pi_weights : float array option) netlist =
  let u = Faultsim.universe ?electrical netlist in
  let compiled = u.Faultsim.compiled in
  let n_in = Compiled.n_inputs compiled in
  let pi_weights = match pi_weights with Some w -> w | None -> Array.make n_in 0.5 in
  let signal = Signal_prob.propagate compiled ~pi_weights in
  let signal_probs =
    Array.init (Compiled.n_nets compiled) (fun i -> (Compiled.net_name compiled i, signal.(i)))
  in
  let estimated = Detect_prob.estimate u ~pi_weights in
  let exact = if n_in <= exact_limit then Some (Detect_prob.exact u ~pi_weights) else None in
  let faults =
    Array.map
      (fun site ->
        {
          site;
          label = Faultsim.site_label u site;
          estimated = estimated.(site.Faultsim.sid);
          exact = Option.map (fun e -> e.(site.Faultsim.sid)) exact;
        })
      u.Faultsim.sites
  in
  let working = match exact with Some e -> e | None -> estimated in
  let test_length =
    match Test_length.required_length ~confidence working with
    | n -> Some n
    | exception Test_length.Undetectable -> None
  in
  let optimization =
    if optimize then
      let objective = if n_in <= exact_limit then Optimize.Exact else Optimize.Estimated in
      Some (Optimize.run ~objective ~confidence u)
    else None
  in
  { netlist; universe = u; pi_weights; signal_probs; faults; test_length; confidence; optimization }

(* Random patterns with the proposed distributions (feature 5). *)
let patterns ?(seed = 1) report ~count =
  let weights =
    match report.optimization with
    | Some o -> o.Optimize.optimized_weights
    | None -> report.pi_weights
  in
  Faultsim.random_patterns ~weights (Prng.create seed)
    ~n_inputs:(Compiled.n_inputs report.universe.Faultsim.compiled)
    ~count

(* Static fault simulation validating the predictions (feature 6): run the
   generated patterns and compare achieved coverage with the predicted
   confidence. *)
type validation = {
  applied : int;
  summary : Faultsim.summary;
  achieved_coverage : float;
  predicted_confidence : float;
}

(* The test length actually proposed: the optimized one when the
   optimization ran (its patterns come from the optimized weights too). *)
let proposed_length report =
  match report.optimization with
  | Some { Optimize.optimized_length = Some n; _ } -> Some n
  | Some { Optimize.optimized_length = None; _ } | None -> report.test_length

let validate ?(seed = 1) report =
  match proposed_length report with
  | None ->
      let summary = Faultsim.run_parallel report.universe [||] in
      {
        applied = 0;
        summary;
        achieved_coverage = Faultsim.coverage summary;
        predicted_confidence = 0.0;
      }
  | Some n ->
      let pats = patterns ~seed report ~count:n in
      let summary = Faultsim.run_parallel report.universe pats in
      (* Predict with the detection probabilities under the weights the
         patterns were actually drawn from. *)
      let weights =
        match report.optimization with
        | Some o -> o.Optimize.optimized_weights
        | None -> report.pi_weights
      in
      let n_in = Compiled.n_inputs report.universe.Faultsim.compiled in
      let working =
        if n_in <= 14 then Detect_prob.exact report.universe ~pi_weights:weights
        else Detect_prob.estimate report.universe ~pi_weights:weights
      in
      {
        applied = n;
        summary;
        achieved_coverage = Faultsim.coverage summary;
        predicted_confidence = Test_length.confidence ~n working;
      }

let pp_report ppf r =
  Fmt.pf ppf "PROTEST report for %s@." (Netlist.name r.netlist);
  Fmt.pf ppf "  gates: %d  nets: %d  fault sites: %d@." (Netlist.n_gates r.netlist)
    (Compiled.n_nets r.universe.Faultsim.compiled)
    (Faultsim.n_sites r.universe);
  Fmt.pf ppf "  demanded confidence: %g@." r.confidence;
  (match r.test_length with
  | Some n -> Fmt.pf ppf "  necessary test length: %d@." n
  | None -> Fmt.pf ppf "  necessary test length: unbounded (undetectable fault present)@.");
  (match r.optimization with
  | Some o ->
      Fmt.pf ppf "  optimized weights: [%a]@."
        Fmt.(array ~sep:(any "; ") (fmt "%.2f"))
        o.Optimize.optimized_weights;
      (match (o.Optimize.initial_length, o.Optimize.optimized_length) with
      | Some a, Some b ->
          Fmt.pf ppf "  test length %d -> %d (x%.1f shorter)@." a b
            (float_of_int a /. float_of_int (max 1 b))
      | _ -> ())
  | None -> ());
  let hardest =
    Array.fold_left
      (fun acc f -> match acc with Some g when g.estimated <= f.estimated -> acc | _ -> Some f)
      None r.faults
  in
  match hardest with
  | Some f -> Fmt.pf ppf "  hardest fault: %s (p ~ %.2e)@." f.label f.estimated
  | None -> ()
