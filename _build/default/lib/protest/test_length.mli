(** Necessary random-test length (PROTEST Fig. 8, feature 3).

    With per-fault detection probabilities [p_f] and independent patterns,
    N patterns detect every fault with probability
    [prod_f (1 - (1-p_f)^N)]. *)

exception Undetectable
(** Raised when some fault has detection probability 0 (no finite test
    length reaches the demanded confidence). *)

val confidence : n:int -> float array -> float
(** Probability that [n] random patterns detect all faults. *)

val required_length : ?max_length:int -> confidence:float -> float array -> int
(** Minimal [n] reaching the demanded confidence (exact bisection).
    @raise Undetectable on zero-probability faults
    @raise Invalid_argument unless confidence is in (0,1) *)

val required_length_worst : confidence:float -> float array -> int
(** Closed-form bound driven by the hardest fault:
    [ln(1 - c^(1/m)) / ln(1 - p_min)]. *)

val expected_first_detection : float -> float
(** Mean patterns to first detection (geometric). *)

val escape : n:int -> float array -> float
(** Probability some fault escapes [n] patterns. *)
