open Dynmos_util
open Dynmos_sim

(** Signal probability estimation (PROTEST Fig. 8, feature 1).

    [propagate] is the production estimator: exact per gate assuming
    independent inputs (approximate under reconvergent fan-out).  [exact]
    enumerates the input distribution; [monte_carlo] samples it. *)

val gate_prob : Compiled.gate_fn -> float array -> float
(** Probability a gate function is 1 given independent input
    1-probabilities. *)

val propagate : Compiled.t -> pi_weights:float array -> float array
(** Estimated probability that each net is 1 (indexed like compiled
    nets). *)

val exact : Compiled.t -> pi_weights:float array -> float array
(** Exact distribution by enumeration.
    @raise Invalid_argument beyond 22 primary inputs. *)

val monte_carlo : Prng.t -> Compiled.t -> pi_weights:float array -> samples:int -> float array

val estimator_error : Compiled.t -> pi_weights:float array -> float * float
(** (max, mean) absolute error of [propagate] against [exact]. *)
