open Dynmos_core
open Dynmos_netlist
open Dynmos_faultsim

(** The PROTEST tool facade (paper Fig. 8): signal probabilities, fault
    detection probabilities, necessary test length for a demanded
    confidence, optimized input probabilities, random pattern generation
    with the proposed distributions, and validating static fault
    simulation — over fault universes generated from the
    technology-dependent libraries of Section 5. *)

type fault_report = {
  site : Faultsim.site;
  label : string;
  estimated : float;     (** estimated detection probability *)
  exact : float option;  (** exact value when the circuit is small enough *)
}

type report = {
  netlist : Netlist.t;
  universe : Faultsim.universe;
  pi_weights : float array;
  signal_probs : (string * float) array;
  faults : fault_report array;
  test_length : int option;  (** [None]: an undetectable fault is present *)
  confidence : float;
  optimization : Optimize.result option;
}

val analyze :
  ?electrical:Fault_map.electrical ->
  ?confidence:float ->
  ?optimize:bool ->
  ?exact_limit:int ->
  ?pi_weights:float array ->
  Netlist.t ->
  report
(** Run the pipeline.  Exact probabilities are used up to [exact_limit]
    primary inputs (default 14), estimates beyond. *)

val patterns : ?seed:int -> report -> count:int -> bool array array
(** Weighted random patterns with the report's (optimized, if present)
    distributions. *)

type validation = {
  applied : int;
  summary : Faultsim.summary;
  achieved_coverage : float;
  predicted_confidence : float;
}

val validate : ?seed:int -> report -> validation
(** Static fault simulation of the proposed test (feature 6). *)

val pp_report : Format.formatter -> report -> unit
