open Dynmos_faultsim

(** Optimized input signal probabilities (PROTEST Fig. 8, feature 4):
    per-input probabilities minimizing the required random-test length
    ("reduced by orders of magnitudes"). *)

type objective = Estimated | Exact
(** Which detection-probability model drives the search. *)

val optimize :
  ?objective:objective ->
  ?grid:float list ->
  ?max_passes:int ->
  confidence:float ->
  Faultsim.universe ->
  float array ->
  float array
(** Cyclic coordinate descent over a probability grid, starting from the
    given weights; deterministic. *)

type result = {
  initial_weights : float array;
  optimized_weights : float array;
  initial_length : int option;   (** [None]: some fault undetectable at the start *)
  optimized_length : int option;
  reduction : float option;      (** initial / optimized *)
}

val run :
  ?objective:objective ->
  ?grid:float list ->
  ?max_passes:int ->
  confidence:float ->
  Faultsim.universe ->
  result
(** Optimize from the uniform 0.5 starting point and report the test
    lengths before and after. *)

val cost :
  Faultsim.universe ->
  objective:objective ->
  confidence:float ->
  pi_weights:float array ->
  int * float
(** The lexicographic objective (exposed for tests): get all faults
    detectable first, then minimize length. *)

val default_grid : float list
