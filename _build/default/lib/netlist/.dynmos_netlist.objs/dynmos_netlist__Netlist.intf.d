lib/netlist/netlist.mli: Cell Dynmos_cell Fmt Technology
