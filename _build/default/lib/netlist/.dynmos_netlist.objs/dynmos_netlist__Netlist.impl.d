lib/netlist/netlist.ml: Array Cell Dynmos_cell Fmt Hashtbl List Option Stdlib String Technology
