open Dynmos_cell

(** Gate-level combinational networks of library cells.

    Nets are named and single-driven; gates are stored in topological
    order after validation, so simulators evaluate in one pass.  Clocking
    discipline is derived: domino networks use a single clock (paper
    Fig. 5), dynamic nMOS networks alternate two non-overlapping phases by
    logic level (Fig. 7). *)

type gate = {
  id : int;                  (** dense index in topological order *)
  gname : string;
  cell : Cell.t;
  input_nets : string list;  (** positional: nth net drives nth cell input *)
  output_net : string;
  level : int;               (** longest path from a primary input *)
}

type t

exception Invalid of string

(** Imperative construction API; [finish] validates (single driver, no
    undriven nets, acyclicity) and freezes the network. *)
module Builder : sig
  type b

  val create : string -> b

  val input : b -> string -> string
  (** Declare a primary input; returns the net name for convenience. *)

  val inputs : b -> string list -> unit

  val add : b -> ?name:string -> Cell.t -> inputs:string list -> output:string -> string
  (** Instantiate a cell; returns the output net name.
      @raise Invalid on arity mismatch. *)

  val output : b -> string -> unit
  (** Mark a net as primary output (idempotent). *)

  val finish : b -> t
  (** @raise Invalid on double-driven/undriven nets or cycles. *)
end

val name : t -> string
val inputs : t -> string list
val outputs : t -> string list
val gates : t -> gate list
val gate_array : t -> gate array
val n_gates : t -> int

val gate_of_net : t -> string -> gate option
(** The driving gate of a net ([None] for primary inputs). *)

val fanout : t -> string -> gate list

val nets : t -> string list
(** All nets: primary inputs first, then gate outputs in topological order. *)

val n_nets : t -> int

val depth : t -> int
(** Maximum gate level. *)

val technologies : t -> Technology.t list
val single_technology : t -> Technology.t option

val clock_phase : gate -> [ `Phi1 | `Phi2 ]
(** Two-phase assignment for dynamic nMOS networks (by level parity). *)

val check_domino : t -> bool
(** All gates domino (single-clock monotone network, Fig. 5). *)

val distinct_cells : t -> Cell.t list

val n_transistors : t -> int
(** Total transistor count including clocking devices and inverters. *)

val pp : t Fmt.t
