lib/atpg/podem.ml: Array Compiled Dynmos_expr Dynmos_faultsim Dynmos_netlist Dynmos_sim Faultsim List Logic Netlist Truth_table
