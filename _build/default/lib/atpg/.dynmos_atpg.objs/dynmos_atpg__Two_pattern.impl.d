lib/atpg/two_pattern.ml: Array Cell Charge_sim Dynmos_cell Dynmos_core Dynmos_expr Dynmos_sim Expr Fault Fault_map Faultlib List Logic String Technology
