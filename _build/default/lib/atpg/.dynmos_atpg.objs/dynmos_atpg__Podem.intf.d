lib/atpg/podem.mli: Dynmos_faultsim Faultsim
