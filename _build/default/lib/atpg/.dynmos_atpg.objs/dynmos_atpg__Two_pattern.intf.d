lib/atpg/two_pattern.mli: Cell Dynmos_cell Dynmos_core Fault
