open Dynmos_faultsim

(** PODEM-style deterministic test generation (the paper's reference
    [13]), generalized to the function-class faults the dynamic-MOS model
    produces: the good and faulty circuits are co-simulated in
    three-valued logic, with excitation/propagation objectives backtraced
    to primary inputs and bounded backtracking. *)

type result = Test of bool array | Untestable | Aborted

val is_test : result -> bool

val generate : ?max_backtracks:int -> Faultsim.universe -> Faultsim.site -> result
(** Find an input vector detecting one fault site ([Untestable] when the
    search space is exhausted, [Aborted] past the backtrack limit). *)

type set_result = {
  vectors : bool array array;
  per_site : result array;      (** indexed by site id *)
  covered_by_simulation : int;  (** faults dropped by simulating new tests *)
}

val generate_set : ?max_backtracks:int -> Faultsim.universe -> set_result
(** Complete test set with fault dropping. *)

val schedule_double : bool array array -> bool array array
(** Apply the set exactly twice — the paper's prescription for satisfying
    assumption A2 with a deterministic test. *)
