open Dynmos_expr
open Dynmos_netlist
open Dynmos_sim
open Dynmos_faultsim

(* PODEM-style deterministic test generation (Goel & Rosales, the paper's
   reference [13]) generalized to function-class faults.

   Classical PODEM assigns primary inputs one at a time, simulating after
   each assignment and backtracking on failure.  Because the paper's fault
   model makes every fault a *combinational function replacement* at one
   gate, the D-calculus generalizes cleanly to simulating the good and the
   faulty circuit side by side in three-valued logic:

     - the fault is "excited" when the good and faulty values of the
       faulty gate's output differ and are both definite;
     - the "D-frontier" is the set of gates with a definite good/faulty
       difference on some input but an undecided (X) difference at the
       output;
     - a test is found when some primary output has definite, differing
       good and faulty values.

   Objectives are chosen from the fault site (excitation) or the
   D-frontier (propagation) and backtraced to an unassigned primary input
   through cube covers of the gate functions. *)

type result = Test of bool array | Untestable | Aborted

let is_test = function Test _ -> true | Untestable | Aborted -> false

(* Three-valued evaluation of a compiled gate function. *)
let eval_fn3 (fn : Compiled.gate_fn) (ins : Logic.v array) =
  let tt = fn.Compiled.table in
  let n = Array.length ins in
  (* Try all completions of X inputs; if all agree the output is definite.
     Gate fan-in is small, so 2^#X is fine. *)
  let xs = ref [] in
  for i = n - 1 downto 0 do
    if Logic.equal ins.(i) Logic.X then xs := i :: !xs
  done;
  let xs = Array.of_list !xs in
  let k = Array.length xs in
  let base =
    let row = ref 0 in
    Array.iteri (fun i v -> if Logic.equal v Logic.One then row := !row lor (1 lsl i)) ins;
    !row
  in
  let first = ref None in
  let all_same = ref true in
  for c = 0 to (1 lsl k) - 1 do
    let row = ref base in
    for j = 0 to k - 1 do
      if (c lsr j) land 1 = 1 then row := !row lor (1 lsl xs.(j))
    done;
    let v = Truth_table.get tt !row in
    match !first with
    | None -> first := Some v
    | Some f -> if f <> v then all_same := false
  done;
  match (!first, !all_same) with
  | Some v, true -> Logic.of_bool v
  | _ -> Logic.X

type state = {
  u : Faultsim.universe;
  site : Faultsim.site;
  pi : Logic.v array;           (* current PI assignment *)
  good : Logic.v array;         (* per net *)
  faulty : Logic.v array;
}

let simulate st =
  let compiled = st.u.Faultsim.compiled in
  let n_in = Compiled.n_inputs compiled in
  for i = 0 to n_in - 1 do
    st.good.(i) <- st.pi.(i);
    st.faulty.(i) <- st.pi.(i)
  done;
  Array.iter
    (fun cg ->
      let gins = Array.map (fun i -> st.good.(i)) cg.Compiled.ins in
      let fins = Array.map (fun i -> st.faulty.(i)) cg.Compiled.ins in
      st.good.(cg.Compiled.out) <- eval_fn3 cg.Compiled.fn gins;
      let ffn =
        if cg.Compiled.g.Netlist.id = st.site.Faultsim.gate.Netlist.id then st.site.Faultsim.fn
        else cg.Compiled.fn
      in
      st.faulty.(cg.Compiled.out) <- eval_fn3 ffn fins)
    (Compiled.gates compiled)

let detected st =
  Array.exists
    (fun po ->
      match (st.good.(po), st.faulty.(po)) with
      | Logic.One, Logic.Zero | Logic.Zero, Logic.One -> true
      | _ -> false)
    (Compiled.po_indices st.u.Faultsim.compiled)

(* The fault can still possibly be detected: some PO pair is (X, _) or
   (_, X) or differing — otherwise every PO agrees definitely. *)
let still_possible st =
  Array.exists
    (fun po ->
      match (st.good.(po), st.faulty.(po)) with
      | Logic.One, Logic.Zero | Logic.Zero, Logic.One -> true
      | Logic.X, _ | _, Logic.X -> true
      | Logic.One, Logic.One | Logic.Zero, Logic.Zero -> false)
    (Compiled.po_indices st.u.Faultsim.compiled)

(* --- Objective and backtrace ------------------------------------------- *)

(* Pick (net, value) that would help: excitation first, then propagation
   through the D-frontier. *)
let objective st =
  let compiled = st.u.Faultsim.compiled in
  let site_gate = st.site.Faultsim.gate.Netlist.id in
  let cg = (Compiled.gates compiled).(site_gate) in
  let out = cg.Compiled.out in
  let excited =
    match (st.good.(out), st.faulty.(out)) with
    | Logic.One, Logic.Zero | Logic.Zero, Logic.One -> true
    | _ -> false
  in
  if not excited then begin
    (* Find a gate-input completion on which good and faulty functions
       differ; aim the first X input at the value from such a cube. *)
    let gins = Array.map (fun i -> st.good.(i)) cg.Compiled.ins in
    let n = Array.length gins in
    let target = ref None in
    let rows = 1 lsl n in
    (let row = ref 0 in
     while !target = None && !row < rows do
       let consistent =
         let ok = ref true in
         for i = 0 to n - 1 do
           match gins.(i) with
           | Logic.One -> if (!row lsr i) land 1 = 0 then ok := false
           | Logic.Zero -> if (!row lsr i) land 1 = 1 then ok := false
           | Logic.X -> ()
         done;
         !ok
       in
       if
         consistent
         && Truth_table.get cg.Compiled.fn.Compiled.table !row
            <> Truth_table.get st.site.Faultsim.fn.Compiled.table !row
       then target := Some !row;
       incr row
     done);
    match !target with
    | None -> None (* fault cannot be excited under current assignment *)
    | Some row ->
        (* Choose the first X input of the gate; desired value from the row. *)
        let rec pick i =
          if i >= Array.length gins then None
          else if Logic.equal gins.(i) Logic.X then
            Some (cg.Compiled.ins.(i), (row lsr i) land 1 = 1)
          else pick (i + 1)
        in
        pick 0
  end
  else begin
    (* Propagation: find a D-frontier gate (some input with definite
       good/faulty difference, output X in the faulty or good circuit) and
       require one of its X side-inputs to take a value enabling the
       difference to pass. *)
    let frontier = ref None in
    Array.iter
      (fun cg' ->
        if !frontier = None then begin
          let has_d =
            Array.exists
              (fun i ->
                match (st.good.(i), st.faulty.(i)) with
                | Logic.One, Logic.Zero | Logic.Zero, Logic.One -> true
                | _ -> false)
              cg'.Compiled.ins
          in
          let out_undecided =
            Logic.equal st.good.(cg'.Compiled.out) Logic.X
            || Logic.equal st.faulty.(cg'.Compiled.out) Logic.X
          in
          if has_d && out_undecided then frontier := Some cg'
        end)
      (Compiled.gates compiled);
    match !frontier with
    | None -> None
    | Some cg' ->
        (* Ask for any X side-input; try the non-controlling direction by
           preferring the value that keeps the gate sensitive.  Simple
           heuristic: request value 1 for AND-ish gates, 0 for OR-ish —
           approximated by the gate's output probability at p=0.5. *)
        let rec pick i =
          if i >= Array.length cg'.Compiled.ins then None
          else
            let net = cg'.Compiled.ins.(i) in
            if Logic.equal st.good.(net) Logic.X && Logic.equal st.faulty.(net) Logic.X then
              (* Non-controlling direction heuristic: AND-ish gates (low
                 ON-set density) want side inputs at 1, OR-ish at 0. *)
              let tt = cg'.Compiled.fn.Compiled.table in
              let density =
                float_of_int (Truth_table.count_true tt)
                /. float_of_int (Truth_table.n_rows tt)
              in
              Some (net, density < 0.5)
            else pick (i + 1)
        in
        pick 0
  end

(* Backtrace a (net, value) objective to an unassigned primary input. *)
let rec backtrace st net value =
  let compiled = st.u.Faultsim.compiled in
  if net < Compiled.n_inputs compiled then
    if Logic.equal st.pi.(net) Logic.X then Some (net, value) else None
  else
    match Netlist.gate_of_net (Compiled.netlist compiled) (Compiled.net_name compiled net) with
    | None -> None
    | Some g ->
        let cg = (Compiled.gates compiled).(g.Netlist.id) in
        let tt = cg.Compiled.fn.Compiled.table in
        let n = Array.length cg.Compiled.ins in
        let gins = Array.map (fun i -> st.good.(i)) cg.Compiled.ins in
        (* Find a row consistent with current values yielding [value];
           recurse into its first X input. *)
        let row = ref 0 and found = ref None in
        while !found = None && !row < 1 lsl n do
          let consistent =
            let ok = ref true in
            for i = 0 to n - 1 do
              match gins.(i) with
              | Logic.One -> if (!row lsr i) land 1 = 0 then ok := false
              | Logic.Zero -> if (!row lsr i) land 1 = 1 then ok := false
              | Logic.X -> ()
            done;
            !ok
          in
          if consistent && Truth_table.get tt !row = value then found := Some !row;
          incr row
        done;
        (match !found with
        | None -> None
        | Some row ->
            let rec pick i =
              if i >= n then None
              else if Logic.equal gins.(i) Logic.X then
                backtrace st cg.Compiled.ins.(i) ((row lsr i) land 1 = 1)
              else pick (i + 1)
            in
            pick 0)

(* --- Search -------------------------------------------------------------- *)

let generate ?(max_backtracks = 1000) u site =
  let compiled = u.Faultsim.compiled in
  let n_in = Compiled.n_inputs compiled in
  let n_nets = Compiled.n_nets compiled in
  let st =
    {
      u;
      site;
      pi = Array.make n_in Logic.X;
      good = Array.make n_nets Logic.X;
      faulty = Array.make n_nets Logic.X;
    }
  in
  let backtracks = ref 0 in
  simulate st;
  let rec search () =
    if detected st then begin
      (* Fill remaining X inputs with 0 (deterministic). *)
      Test (Array.map (fun v -> Logic.equal v Logic.One) st.pi)
    end
    else if not (still_possible st) then Untestable
    else
      match objective st with
      | None -> Untestable
      | Some (net, value) -> (
          match backtrace st net value with
          | None -> Untestable
          | Some (pi_idx, v) -> (
              st.pi.(pi_idx) <- Logic.of_bool v;
              simulate st;
              match search () with
              | Test _ as t -> t
              | Aborted -> Aborted
              | Untestable ->
                  incr backtracks;
                  if !backtracks > max_backtracks then Aborted
                  else begin
                    (* Flip the decision. *)
                    st.pi.(pi_idx) <- Logic.of_bool (not v);
                    simulate st;
                    match search () with
                    | Test _ as t -> t
                    | Aborted -> Aborted
                    | Untestable ->
                        st.pi.(pi_idx) <- Logic.X;
                        simulate st;
                        Untestable
                  end))
  in
  search ()

(* Generate a complete deterministic test set with fault dropping: each
   new test is fault-simulated against the remaining faults. *)
type set_result = {
  vectors : bool array array;
  per_site : result array;         (* indexed by site id *)
  covered_by_simulation : int;     (* faults dropped by simulation *)
}

let generate_set ?(max_backtracks = 1000) u =
  let n = Faultsim.n_sites u in
  let per_site = Array.make n Untestable in
  let covered = Array.make n false in
  let dropped = ref 0 in
  let vectors = ref [] in
  Array.iter
    (fun site ->
      if not covered.(site.Faultsim.sid) then begin
        let r = generate ~max_backtracks u site in
        per_site.(site.Faultsim.sid) <- r;
        match r with
        | Test v ->
            vectors := v :: !vectors;
            covered.(site.Faultsim.sid) <- true;
            (* Drop everything else this vector detects. *)
            Array.iter
              (fun other ->
                if (not covered.(other.Faultsim.sid)) && Faultsim.detects u other v then begin
                  covered.(other.Faultsim.sid) <- true;
                  incr dropped;
                  per_site.(other.Faultsim.sid) <- Test v
                end)
              u.Faultsim.sites
        | Untestable | Aborted -> ()
      end)
    u.Faultsim.sites;
  { vectors = Array.of_list (List.rev !vectors); per_site; covered_by_simulation = !dropped }

(* Assumption A2: apply the deterministic test set exactly twice (the
   paper's prescription for charging and discharging every node). *)
let schedule_double (vectors : bool array array) = Array.append vectors vectors
