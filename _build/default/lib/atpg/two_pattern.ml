open Dynmos_expr
open Dynmos_cell
open Dynmos_core

(* Two-pattern test generation for static CMOS stuck-open faults.

   This is the *baseline cost* the paper's proposal removes: a static
   stuck-open fault is sequential (Fig. 1), so testing it needs an
   ordered pair of vectors — an initialization P1 that drives the output
   to a known value, followed immediately by P2 inside the floating
   (retain) region where the fault-free gate would produce the opposite
   value.  The pair is *invalidated* if any intermediate vector re-drives
   the node (the scan-shifting problem), so delivery must be back to
   back (enhanced scan / at-speed pairs).

   For a dynamic-technology cell every fault needs only a single vector
   (the paper's claim 2); [compare_cells] quantifies the difference. *)

type pair = { p1 : bool array; p2 : bool array }

let vector_of_row n row = Array.init n (fun i -> (row lsr i) land 1 = 1)

let env_of cell v =
  let inputs = Cell.inputs cell in
  fun name ->
    let rec go i = function
      | [] -> invalid_arg ("Two_pattern: unbound input " ^ name)
      | x :: rest -> if String.equal x name then v.(i) else go (i + 1) rest
    in
    go 0 inputs

(* A two-pattern test for one sequential (stuck-open) fault of a static
   CMOS cell: P2 must lie in the retain region with good(P2) differing
   from the retained value, and P1 must drive the node to that retained
   value while being outside the retain region itself. *)
let generate cell fault =
  if Cell.technology cell <> Technology.Static_cmos then
    invalid_arg "Two_pattern.generate: static CMOS cells only";
  match Fault_map.map cell fault with
  | Fault_map.Sequential { retain_when } ->
      let n = Cell.arity cell in
      let good v = Expr.eval (env_of cell v) (Cell.logic cell) in
      let retains v = Expr.eval (env_of cell v) retain_when in
      let rec find_pair r2 =
        if r2 >= 1 lsl n then None
        else
          let p2 = vector_of_row n r2 in
          if retains p2 then begin
            (* the faulty gate would retain; we need P1 setting the node
               to the complement of good(P2) *)
            let want = not (good p2) in
            let rec find_p1 r1 =
              if r1 >= 1 lsl n then None
              else
                let p1 = vector_of_row n r1 in
                if (not (retains p1)) && good p1 = want then Some { p1; p2 }
                else find_p1 (r1 + 1)
            in
            match find_p1 0 with None -> find_pair (r2 + 1) | some -> some
          end
          else find_pair (r2 + 1)
      in
      find_pair 0
  | Fault_map.Combinational _ | Fault_map.Delay _ | Fault_map.Contention _ -> None

(* Validate a pair on the charge-level simulator: applied back to back it
   must expose the fault (faulty output <> good output on P2). *)
let validates cell fault { p1; p2 } =
  let open Dynmos_sim in
  let step st v = Charge_sim.static_step ~fault cell st (Array.to_list v) in
  let st, _ = step Charge_sim.static_initial p1 in
  let _, faulty = step st p2 in
  let good = Expr.eval (env_of cell p2) (Cell.logic cell) in
  match faulty with
  | Logic.X -> false
  | v -> not (Logic.equal v (Logic.of_bool good))

(* Is the pair robust against an inserted intermediate vector?  (The scan
   problem: an intermediate that re-drives the node to good(P2)'s
   complement keeps the test valid, anything else can invalidate it.) *)
let invalidated_by cell fault { p1; p2 } intermediate =
  let open Dynmos_sim in
  let step st v = Charge_sim.static_step ~fault cell st (Array.to_list v) in
  let st, _ = step Charge_sim.static_initial p1 in
  let st, _ = step st intermediate in
  let _, faulty = step st p2 in
  let good = Expr.eval (env_of cell p2) (Cell.logic cell) in
  match faulty with Logic.X -> true | v -> Logic.equal v (Logic.of_bool good)

(* --- The paper's cost comparison ---------------------------------------- *)

type comparison = {
  static_cell : Cell.t;
  dynamic_cell : Cell.t;
  sequential_faults : int;       (* static faults needing two-pattern tests *)
  two_pattern_tests : int;       (* of which testable pairs were found *)
  static_applications : int;     (* vectors applied for the static cell *)
  dynamic_applications : int;    (* vectors for the dynamic cell (1/fault class) *)
}

(* Build the same switching function in static CMOS and in a dynamic
   technology and count test applications: each static stuck-open needs
   an ordered pair; every dynamic fault class needs one vector. *)
let compare_cells ~static_cell ~dynamic_cell =
  let seq_faults =
    List.filter
      (fun f ->
        match Fault_map.map static_cell f with
        | Fault_map.Sequential _ -> true
        | _ -> false)
      (Fault.enumerate static_cell)
  in
  let pairs = List.filter_map (generate static_cell) seq_faults in
  (* combinational static faults need one vector each (counted via the
     library's detectable function classes) *)
  let static_lib = Faultlib.generate static_cell in
  let static_combinational = List.length (Faultlib.detectable_function_classes static_lib) in
  let dynamic_lib = Faultlib.generate dynamic_cell in
  let dynamic_classes = List.length (Faultlib.detectable_function_classes dynamic_lib) in
  {
    static_cell;
    dynamic_cell;
    sequential_faults = List.length seq_faults;
    two_pattern_tests = List.length pairs;
    static_applications = static_combinational + (2 * List.length pairs);
    dynamic_applications = dynamic_classes;
  }
