open Dynmos_cell
open Dynmos_core

(** Two-pattern test generation for static CMOS stuck-open faults — the
    baseline cost the paper's dynamic-MOS proposal removes: sequential
    faults need ordered vector pairs (and those pairs are invalidated by
    intermediate vectors, the scan-shifting problem), while every dynamic
    fault class needs a single vector. *)

type pair = { p1 : bool array;  (** initialization *) p2 : bool array  (** observation *) }

val generate : Cell.t -> Fault.physical -> pair option
(** A two-pattern test for one sequential fault of a static CMOS cell:
    [p2] lies in the retain region with the fault-free output differing
    from the value [p1] stored.  [None] for non-sequential faults or
    untestable memories.
    @raise Invalid_argument for non-static-CMOS cells. *)

val validates : Cell.t -> Fault.physical -> pair -> bool
(** Charge-level check: applied back to back, the pair exposes the
    fault. *)

val invalidated_by : Cell.t -> Fault.physical -> pair -> bool array -> bool
(** Does inserting one intermediate vector between the pair destroy the
    detection (the scan problem)? *)

type comparison = {
  static_cell : Cell.t;
  dynamic_cell : Cell.t;
  sequential_faults : int;
  two_pattern_tests : int;
  static_applications : int;   (** combinational classes + 2 x pairs *)
  dynamic_applications : int;  (** one vector per detectable class *)
}

val compare_cells : static_cell:Cell.t -> dynamic_cell:Cell.t -> comparison
(** The paper's cost argument quantified on one switching function
    realized in both styles. *)
