(* Multiple-input signature register.

   The response compactor of the self-test scheme: circuit outputs are
   XOR-ed into a maximal LFSR every clock; after N cycles the register
   holds a signature.  A fault escapes (aliases) only if the induced error
   sequence is a codeword — probability ~ 2^-width for random errors,
   which [aliasing_bound] reports. *)

type t = { width : int; taps : int; mutable state : int }

let create ?seed width =
  let taps = Lfsr.taps_for width in
  { width; taps; state = (match seed with Some s -> s land ((1 lsl width) - 1) | None -> 0) }

let state t = t.state
let width t = t.width

let reset t = t.state <- 0

(* One clock: shift (Galois feedback) and inject the input bits. *)
let step t (inputs : bool array) =
  if Array.length inputs > t.width then invalid_arg "Misr.step: more inputs than width";
  let lsb = t.state land 1 in
  t.state <- t.state lsr 1;
  if lsb = 1 then t.state <- t.state lxor t.taps;
  Array.iteri (fun i b -> if b then t.state <- t.state lxor (1 lsl i)) inputs

let signature t = t.state

let run t (responses : bool array list) =
  List.iter (fun r -> step t r) responses;
  signature t

let aliasing_bound ~width = 1.0 /. float_of_int (1 lsl width)
