(** Hardware-style weighted pattern generation: PROTEST's per-input signal
    probabilities realized from LFSR stages as dyadic weights [k/2^r]. *)

val quantize : ?resolution:int -> float array -> float array
(** Closest realizable dyadic weights, clamped away from 0 and 1. *)

type t

val create : ?resolution:int -> ?seed:int -> float array -> t
(** A generator whose input [i] is 1 with (quantized) probability
    [weights.(i)] each clock. *)

val next_pattern : t -> bool array
val patterns : t -> int -> bool array array
val weights : t -> float array
(** The quantized weights actually realized. *)
