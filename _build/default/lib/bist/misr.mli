(** Multiple-input signature register (response compactor of the
    self-test scheme). *)

type t

val create : ?seed:int -> int -> t
(** [create width] with Galois feedback from the primitive-polynomial
    table (seed defaults to 0). *)

val state : t -> int
val width : t -> int
val reset : t -> unit

val step : t -> bool array -> unit
(** One clock: shift and inject the response bits. *)

val signature : t -> int

val run : t -> bool array list -> int
(** Compact a whole response sequence. *)

val aliasing_bound : width:int -> float
(** Random-error aliasing probability ~ [2^-width]. *)
