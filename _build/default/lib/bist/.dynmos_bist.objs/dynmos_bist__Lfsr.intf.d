lib/bist/lfsr.mli:
