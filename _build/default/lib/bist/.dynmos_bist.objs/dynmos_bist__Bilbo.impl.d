lib/bist/bilbo.ml: Array Lfsr List
