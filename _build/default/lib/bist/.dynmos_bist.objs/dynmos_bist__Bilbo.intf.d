lib/bist/bilbo.mli:
