lib/bist/nlfsr.ml: Array Lfsr List
