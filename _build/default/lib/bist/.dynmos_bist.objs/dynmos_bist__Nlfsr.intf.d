lib/bist/nlfsr.mli:
