lib/bist/misr.mli:
