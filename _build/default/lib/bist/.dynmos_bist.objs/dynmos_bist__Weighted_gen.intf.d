lib/bist/weighted_gen.mli:
