lib/bist/weighted_gen.ml: Array Float Lfsr
