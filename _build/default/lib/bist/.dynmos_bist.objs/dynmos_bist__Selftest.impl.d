lib/bist/selftest.ml: Array Bilbo Compiled Dynmos_faultsim Dynmos_netlist Dynmos_sim Faultsim Lfsr Misr Netlist Timing Weighted_gen
