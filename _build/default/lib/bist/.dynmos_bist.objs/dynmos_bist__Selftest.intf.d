lib/bist/selftest.mli: Bilbo Compiled Dynmos_faultsim Dynmos_sim Faultsim Lfsr Weighted_gen
