(* Hardware-style weighted pattern generation.

   PROTEST proposes per-input signal probabilities; in self-test hardware
   these are realized by combining LFSR stages: AND of k independent
   stages has 1-density 2^-k, OR has 1 - 2^-k, and mixing one extra stage
   selects between two such sources, giving all dyadic weights k/2^r.
   [quantize] maps arbitrary probabilities to the closest r-bit dyadic
   weight; [generator] produces patterns whose input i is a Boolean
   function of [r] fresh LFSR bits tuned to that weight. *)

let quantize ?(resolution = 4) (weights : float array) =
  let denom = float_of_int (1 lsl resolution) in
  Array.map
    (fun w ->
      let q = Float.round (w *. denom) /. denom in
      Float.min ((denom -. 1.0) /. denom) (Float.max (1.0 /. denom) q))
    weights

type t = {
  lfsr : Lfsr.t;
  weights : float array;  (* quantized, dyadic *)
  resolution : int;
}

let create ?(resolution = 4) ?(seed = 0b1011) weights =
  let weights = quantize ~resolution weights in
  (* One LFSR supplies [resolution] fresh bits per input per clock; width
     32 gives plenty of stages to draw from. *)
  { lfsr = Lfsr.create ~form:Galois ~seed 32; weights; resolution }

(* A bit with exact dyadic probability q = k/2^r from r fresh LFSR bits:
   compare the r-bit number they form against k (a hardware comparator /
   ROM column in practice). *)
let weighted_bit t q =
  let r = t.resolution in
  let v = ref 0 in
  for i = 0 to r - 1 do
    if Lfsr.step t.lfsr then v := !v lor (1 lsl i)
  done;
  float_of_int !v < (q *. float_of_int (1 lsl r)) -. 1e-9

let next_pattern t =
  Array.map (fun q -> weighted_bit t q) t.weights

let patterns t count = Array.init count (fun _ -> next_pattern t)

let weights t = t.weights
