(** Nonlinear feedback shift registers (the paper's reference [11]):
    feedback is an XOR of AND terms over register bits, optionally with
    the de-Bruijn modification that joins the all-zero state into the
    cycle (period exactly [2^width]). *)

type term = int list
(** AND of these bit positions. *)

type t

val create :
  ?de_bruijn:bool ->
  ?complemented:int list ->
  width:int ->
  terms:term list ->
  ?seed:int ->
  unit ->
  t
(** [complemented] lists bit positions read inverted inside terms.
    @raise Invalid_argument on out-of-range widths or term bits. *)

val of_lfsr : ?de_bruijn:bool -> ?seed:int -> int -> t
(** The maximal LFSR of that width expressed as degenerate terms —
    with [~de_bruijn:true] a period-[2^width] generator. *)

val state : t -> int
val set_state : t -> int -> unit

val step : t -> bool
(** Advance one clock; returns the serial output bit. *)

val bits : t -> int -> bool array
val next_pattern : t -> int -> bool array

val period : t -> int option
(** Exact cycle length from the current state ([None] if the state is not
    on a cycle through itself). *)
