(* Linear feedback shift registers.

   The pattern generators of the paper's self-test proposal (Section 4 and
   references [9]-[11]): maximal-length LFSRs drive the circuit inputs at
   operating speed.  Both Fibonacci (external XOR) and Galois (internal
   XOR) forms are provided; tap sets come from a table of primitive
   polynomials for degrees 2..32, so every generator is maximal-period. *)

type form = Fibonacci | Galois

type t = {
  width : int;
  taps : int;      (* bit mask of feedback taps; bit (width-1) always set *)
  form : form;
  mutable state : int;
}

(* Primitive polynomial tap masks (x^n + ... + 1) for n = 2..32; entry k
   is the mask of exponents below n for degree n = k+2.  Taken from the
   standard maximal-LFSR tables (Xilinx XAPP052 / Golomb). *)
let primitive_taps =
  [|
    (* n=2 : x^2+x+1 *) 0b11;
    (* n=3 : x^3+x^2+1 *) 0b110;
    (* n=4 : x^4+x^3+1 *) 0b1100;
    (* n=5 : x^5+x^3+1 *) 0b10100;
    (* n=6 : x^6+x^5+1 *) 0b110000;
    (* n=7 : x^7+x^6+1 *) 0b1100000;
    (* n=8 : x^8+x^6+x^5+x^4+1 *) 0b10111000;
    (* n=9 : x^9+x^5+1 *) 0b100010000;
    (* n=10: x^10+x^7+1 *) 0b1001000000;
    (* n=11: x^11+x^9+1 *) 0b10100000000;
    (* n=12: x^12+x^6+x^4+x^1+1 *) 0b100000101001;
    (* n=13: x^13+x^4+x^3+x^1+1 *) 0b1000000001101;
    (* n=14: x^14+x^5+x^3+x^1+1 *) 0b10000000010101;
    (* n=15: x^15+x^14+1 *) 0b110000000000000;
    (* n=16: x^16+x^15+x^13+x^4+1 *) 0b1101000000001000;
    (* n=17: x^17+x^14+1 *) 0b10010000000000000;
    (* n=18: x^18+x^11+1 *) 0b100000010000000000;
    (* n=19: x^19+x^6+x^2+x^1+1 *) 0b1000000000000100011;
    (* n=20: x^20+x^17+1 *) 0b10010000000000000000;
    (* n=21: x^21+x^19+1 *) 0b101000000000000000000;
    (* n=22: x^22+x^21+1 *) 0b1100000000000000000000;
    (* n=23: x^23+x^18+1 *) 0b10000100000000000000000;
    (* n=24: x^24+x^23+x^22+x^17+1 *) 0b111000010000000000000000;
    (* n=25: x^25+x^22+1 *) 0b1001000000000000000000000;
    (* n=26: x^26+x^6+x^2+x^1+1 *) 0b10000000000000000000100011;
    (* n=27: x^27+x^5+x^2+x^1+1 *) 0b100000000000000000000010011;
    (* n=28: x^28+x^25+1 *) 0b1001000000000000000000000000;
    (* n=29: x^29+x^27+1 *) 0b10100000000000000000000000000;
    (* n=30: x^30+x^6+x^4+x^1+1 *) 0b100000000000000000000000101001;
    (* n=31: x^31+x^28+1 *) 0b1001000000000000000000000000000;
    (* n=32: x^32+x^22+x^2+x^1+1 *) 0b10000000001000000000000000000011;
  |]

let taps_for width =
  if width < 2 || width > 32 then invalid_arg "Lfsr: width must be in 2..32";
  primitive_taps.(width - 2)

let create ?(form = Fibonacci) ?seed width =
  let taps = taps_for width in
  let seed = match seed with Some s -> s land ((1 lsl width) - 1) | None -> 1 in
  if seed = 0 then invalid_arg "Lfsr.create: seed must be non-zero";
  { width; taps; form; state = seed }

let state t = t.state
let width t = t.width

let set_state t s =
  let s = s land ((1 lsl t.width) - 1) in
  if s = 0 then invalid_arg "Lfsr.set_state: zero state";
  t.state <- s

(* Advance one clock; returns the output bit (serial output = bit 0).
   The Fibonacci form shifts left with the feedback parity entering at bit
   0 (the convention the tap table is written for); the Galois form shifts
   right, XOR-ing the taps when the outgoing bit is 1 (its reciprocal
   polynomial is primitive whenever the polynomial is, so both forms are
   maximal). *)
let step t =
  let out = t.state land 1 in
  (match t.form with
  | Fibonacci ->
      let fb =
        let x = t.state land t.taps in
        let rec parity acc v = if v = 0 then acc else parity (acc lxor (v land 1)) (v lsr 1) in
        parity 0 x
      in
      t.state <- ((t.state lsl 1) lor fb) land ((1 lsl t.width) - 1)
  | Galois ->
      let lsb = t.state land 1 in
      t.state <- t.state lsr 1;
      if lsb = 1 then t.state <- t.state lxor t.taps);
  out = 1

(* The parallel view: the register contents as a bit vector (bit 0
   first).  Used to drive circuit inputs one register bit per input. *)
let bits t n =
  if n > t.width then invalid_arg "Lfsr.bits: more bits than width";
  Array.init n (fun i -> (t.state lsr i) land 1 = 1)

let next_pattern t n =
  let p = bits t n in
  ignore (step t);
  p

(* Period measurement (walks the cycle; exact, so only for small widths in
   tests). *)
let period t =
  let start = t.state in
  let copy = { t with state = start } in
  let rec go n =
    ignore (step copy);
    if copy.state = start then n else go (n + 1)
  in
  go 1
