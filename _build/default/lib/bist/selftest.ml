open Dynmos_netlist
open Dynmos_sim
open Dynmos_faultsim

(* Random self-test sessions (the paper's Section 4 proposal).

   A pattern source (BILBO in PRPG mode, plain LFSR, or a weighted
   generator) drives the circuit's primary inputs for N clocks at
   operating speed; a MISR compacts the primary outputs; the final
   signature is compared against the fault-free (golden) signature.

   Because the session runs at maximum clock rate, performance-degradation
   faults are covered too: with [check_at_speed], responses are taken from
   the timing model's at-speed sampling, so a slow gate corrupts the
   signature whenever a pattern sensitizes it — the paper's argument for
   self test over external test and over leakage measurement. *)

type source =
  | Lfsr_source of Lfsr.t
  | Bilbo_source of Bilbo.t
  | Weighted_source of Weighted_gen.t

(* Circuits wider than the register are fed from the serial output stream
   (one register clock per input bit — how a scan-configured generator
   drives a wide circuit). *)
let next_pattern source n =
  match source with
  | Lfsr_source l ->
      if n <= Lfsr.width l then Lfsr.next_pattern l n
      else Array.init n (fun _ -> Lfsr.step l)
  | Bilbo_source b ->
      if n <= Bilbo.width b then begin
        let p = Bilbo.pattern b n in
        ignore (Bilbo.step b [||]);
        p
      end
      else Array.init n (fun _ -> Bilbo.step b [||])
  | Weighted_source w -> Weighted_gen.next_pattern w

type session = {
  compiled : Compiled.t;
  source : source;
  misr_width : int;
  n_cycles : int;
}

let make_session ?(misr_width = 16) ?(seed = 1) ?(source = `Lfsr) compiled ~n_cycles =
  let n_in = Compiled.n_inputs compiled in
  let reg_width = min 32 (max 16 n_in) in
  let source =
    match source with
    | `Lfsr -> Lfsr_source (Lfsr.create ~seed reg_width)
    | `Bilbo ->
        let b = Bilbo.create ~seed reg_width in
        Bilbo.set_mode b Bilbo.Prpg;
        Bilbo_source b
    | `Weighted weights -> Weighted_source (Weighted_gen.create ~seed weights)
  in
  { compiled; source; misr_width; n_cycles }

(* Run the session; [response] maps a pattern to the PO vector (this is
   where fault injection and at-speed sampling plug in). *)
let run_with session ~(response : bool array -> bool array) =
  let misr = Misr.create session.misr_width in
  let n_in = Compiled.n_inputs session.compiled in
  for _ = 1 to session.n_cycles do
    let pattern = next_pattern session.source n_in in
    Misr.step misr (response pattern)
  done;
  Misr.signature misr

let golden session = run_with session ~response:(fun p -> Compiled.eval session.compiled p)

(* NOTE: sessions are stateful (the source advances); use a fresh session
   per run.  [signature_of] rebuilds one from the same parameters. *)
type outcome = { golden_signature : int; faulty_signature : int; detected : bool }

let test_fault ?misr_width ?seed ?source compiled ~n_cycles (site : Faultsim.site) =
  let fresh () = make_session ?misr_width ?seed ?source compiled ~n_cycles in
  let golden_signature = golden (fresh ()) in
  let faulty_signature =
    run_with (fresh ()) ~response:(fun p ->
        Compiled.eval ~override:(site.Faultsim.gate.Netlist.id, site.Faultsim.fn) compiled p)
  in
  { golden_signature; faulty_signature; detected = golden_signature <> faulty_signature }

(* At-speed session against a delay fault: the responses are the timing
   model's sampled outputs. *)
let test_delay_fault ?misr_width ?seed ?source compiled ~n_cycles ~gate_id ~factor ~period =
  let delays = Timing.nominal_delays compiled in
  let slow = Timing.with_slow_gate delays ~gate_id ~factor in
  let fresh () = make_session ?misr_width ?seed ?source compiled ~n_cycles in
  let golden_signature =
    run_with (fresh ()) ~response:(fun p -> Timing.at_speed_sample compiled delays ~period p)
  in
  let faulty_signature =
    run_with (fresh ()) ~response:(fun p -> Timing.at_speed_sample compiled slow ~period p)
  in
  { golden_signature; faulty_signature; detected = golden_signature <> faulty_signature }

(* Whole-universe self-test coverage: how many fault sites a session of
   [n_cycles] catches. *)
let coverage ?misr_width ?seed ?source (u : Faultsim.universe) ~n_cycles =
  let compiled = u.Faultsim.compiled in
  let detected = ref 0 in
  Array.iter
    (fun site ->
      let o = test_fault ?misr_width ?seed ?source compiled ~n_cycles site in
      if o.detected then incr detected)
    u.Faultsim.sites;
  float_of_int !detected /. float_of_int (max 1 (Faultsim.n_sites u))
