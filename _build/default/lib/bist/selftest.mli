open Dynmos_sim
open Dynmos_faultsim

(** Random self-test sessions (paper Section 4): a pattern source (LFSR,
    BILBO in PRPG mode, or a weighted generator) drives the inputs at
    operating speed while a MISR compacts the outputs; detection is a
    signature mismatch.  At-speed variants route responses through the
    timing model so delay faults are caught. *)

type source =
  | Lfsr_source of Lfsr.t
  | Bilbo_source of Bilbo.t
  | Weighted_source of Weighted_gen.t

type session

val make_session :
  ?misr_width:int ->
  ?seed:int ->
  ?source:[ `Lfsr | `Bilbo | `Weighted of float array ] ->
  Compiled.t ->
  n_cycles:int ->
  session
(** Sessions are stateful (the source advances); build a fresh one per
    run. *)

val run_with : session -> response:(bool array -> bool array) -> int
(** Run the session with a custom response function (fault injection /
    at-speed sampling plug in here); returns the signature. *)

val golden : session -> int
(** Fault-free signature. *)

type outcome = { golden_signature : int; faulty_signature : int; detected : bool }

val test_fault :
  ?misr_width:int ->
  ?seed:int ->
  ?source:[ `Lfsr | `Bilbo | `Weighted of float array ] ->
  Compiled.t ->
  n_cycles:int ->
  Faultsim.site ->
  outcome

val test_delay_fault :
  ?misr_width:int ->
  ?seed:int ->
  ?source:[ `Lfsr | `Bilbo | `Weighted of float array ] ->
  Compiled.t ->
  n_cycles:int ->
  gate_id:int ->
  factor:float ->
  period:float ->
  outcome
(** At-speed session against a performance-degradation fault. *)

val coverage :
  ?misr_width:int ->
  ?seed:int ->
  ?source:[ `Lfsr | `Bilbo | `Weighted of float array ] ->
  Faultsim.universe ->
  n_cycles:int ->
  float
(** Fraction of fault sites whose signature differs after a session. *)
