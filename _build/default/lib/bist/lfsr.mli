(** Maximal-length linear feedback shift registers (pattern generators of
    the paper's random self-test proposal, references [9]-[11]).

    Tap masks come from a table of primitive polynomials for widths 2..32,
    so the period is always [2^width - 1]. *)

type form = Fibonacci | Galois

type t

val taps_for : int -> int
(** Primitive-polynomial tap mask for a width.
    @raise Invalid_argument outside 2..32. *)

val create : ?form:form -> ?seed:int -> int -> t
(** [create width]; the default seed is 1.  @raise Invalid_argument on a
    zero seed or unsupported width. *)

val state : t -> int
val width : t -> int
val set_state : t -> int -> unit

val step : t -> bool
(** Advance one clock; returns the serial output bit. *)

val bits : t -> int -> bool array
(** The low [n] register bits (parallel pattern view). *)

val next_pattern : t -> int -> bool array
(** [bits] then [step]: one test pattern per clock. *)

val period : t -> int
(** Exact cycle length from the current state (walks the cycle — use on
    small widths). *)
