(* Nonlinear feedback shift registers (Kunzmann & Wunderlich, the paper's
   reference [11]: "Design automation of random testable circuits").

   The feedback is an XOR of AND terms over register bits.  Two uses:

   - weighted pattern sources: the bit streams of products of register
     stages have 1-densities of 2^-k, which is how non-0.5 input signal
     probabilities are realized in hardware;
   - guaranteed-cycle generators: [with_zero_state] inserts the all-zero
     state into a maximal LFSR cycle (the classic de-Bruijn modification
     feedback' = feedback XOR AND(not bits[0..w-2])), giving period 2^w. *)

type term = int list  (* AND of these bit positions *)

type t = {
  width : int;
  terms : term list;         (* feedback = XOR over terms *)
  complemented : int list;   (* bit positions complemented inside terms *)
  de_bruijn : bool;
  mutable state : int;
}

let bit state i = (state lsr i) land 1 = 1

let create ?(de_bruijn = false) ?(complemented = []) ~width ~terms ?(seed = 1) () =
  if width < 2 || width > 32 then invalid_arg "Nlfsr: width in 2..32";
  List.iter
    (List.iter (fun i -> if i < 0 || i >= width then invalid_arg "Nlfsr: term bit out of range"))
    terms;
  { width; terms; complemented; de_bruijn; state = seed land ((1 lsl width) - 1) }

(* A maximal LFSR feedback expressed as degenerate (single-bit) terms. *)
let of_lfsr ?(de_bruijn = false) ?(seed = 1) width =
  let taps = Lfsr.taps_for width in
  let terms = ref [] in
  for i = width - 1 downto 0 do
    if taps land (1 lsl i) <> 0 then terms := [ i ] :: !terms
  done;
  create ~de_bruijn ~width ~terms:!terms ~seed ()

let state t = t.state
let set_state t s = t.state <- s land ((1 lsl t.width) - 1)

let feedback t =
  let term_value term =
    List.for_all
      (fun i -> if List.mem i t.complemented then not (bit t.state i) else bit t.state i)
      term
  in
  let linear = List.fold_left (fun acc term -> acc <> term_value term) false t.terms in
  if t.de_bruijn then begin
    (* XOR with NOR of bits 0..width-2: joins the all-zero state into the
       maximal cycle, making the period exactly 2^width. *)
    let low_zero =
      let rec go i = i > t.width - 2 || ((not (bit t.state i)) && go (i + 1)) in
      go 0
    in
    linear <> low_zero
  end
  else linear

(* Left shift with the feedback entering at bit 0 — the same convention as
   the Fibonacci LFSR, so [of_lfsr] reproduces its sequence exactly. *)
let step t =
  let out = bit t.state 0 in
  let fb = feedback t in
  t.state <- ((t.state lsl 1) lor (if fb then 1 else 0)) land ((1 lsl t.width) - 1);
  out

let bits t n =
  if n > t.width then invalid_arg "Nlfsr.bits: more bits than width";
  Array.init n (fun i -> bit t.state i)

let next_pattern t n =
  let p = bits t n in
  ignore (step t);
  p

let period t =
  let start = t.state in
  let copy = { t with state = start } in
  let limit = 1 lsl t.width in
  let rec go n =
    ignore (step copy);
    if copy.state = start then Some n else if n > limit then None else go (n + 1)
  in
  go 1
