(* BILBO: Built-In Logic Block Observation register (Koenemann, Mucha &
   Zwiehoff — the paper's reference [10]).

   One register, four operating modes selected by two control bits:

     B1 B2 = 1 1   Normal   parallel latch (system operation)
     B1 B2 = 0 0   Scan     serial shift register (scan path)
     B1 B2 = 1 0   Prpg     maximal LFSR: pseudo-random pattern generator
     B1 B2 = 0 1   Misr     multiple-input signature register

   In a self-test session one BILBO at the circuit inputs runs in PRPG
   mode while one at the outputs runs in MISR mode — both at full clock
   rate, which is what lets the scheme catch the delay faults of Section
   4(b). *)

type mode = Normal | Scan | Prpg | Misr

type t = { width : int; taps : int; mutable state : int; mutable mode : mode }

let create ?seed width =
  let taps = Lfsr.taps_for width in
  let state = match seed with Some s -> s land ((1 lsl width) - 1) | None -> 1 in
  { width; taps; state; mode = Normal }

let width t = t.width
let state t = t.state
let set_state t s = t.state <- s land ((1 lsl t.width) - 1)
let mode t = t.mode
let set_mode t m = t.mode <- m

let mode_of_controls ~b1 ~b2 =
  match (b1, b2) with
  | true, true -> Normal
  | false, false -> Scan
  | true, false -> Prpg
  | false, true -> Misr

let feedback t =
  let x = t.state land t.taps in
  let rec parity acc v = if v = 0 then acc else parity (acc lxor (v land 1)) (v lsr 1) in
  parity 0 x = 1

(* One clock.  [parallel] is the data at the parallel inputs (circuit
   responses in MISR mode, system data in Normal mode); [serial] is the
   scan-in bit.  Returns the scan-out bit. *)
let step t ?(serial = false) (parallel : bool array) =
  if Array.length parallel > t.width then invalid_arg "Bilbo.step: data wider than register";
  let out = t.state land 1 = 1 in
  (match t.mode with
  | Normal ->
      let v = ref 0 in
      Array.iteri (fun i b -> if b then v := !v lor (1 lsl i)) parallel;
      t.state <- !v
  | Scan ->
      t.state <- (t.state lsr 1) lor (if serial then 1 lsl (t.width - 1) else 0)
  | Prpg ->
      (* Left-shift Fibonacci step (the tap table's convention). *)
      let fb = feedback t in
      t.state <- ((t.state lsl 1) lor (if fb then 1 else 0)) land ((1 lsl t.width) - 1);
      if t.state = 0 then t.state <- 1
  | Misr ->
      let fb = feedback t in
      let shifted = ((t.state lsl 1) lor (if fb then 1 else 0)) land ((1 lsl t.width) - 1) in
      let v = ref shifted in
      Array.iteri (fun i b -> if b then v := !v lxor (1 lsl i)) parallel;
      t.state <- !v);
  out

let pattern t n =
  if n > t.width then invalid_arg "Bilbo.pattern: more bits than width";
  Array.init n (fun i -> (t.state lsr i) land 1 = 1)

(* Scan a full word out (destructively), returning bits LSB first. *)
let scan_out t =
  List.init t.width (fun _ -> step t ~serial:false [||])
