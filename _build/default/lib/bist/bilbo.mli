(** BILBO — Built-In Logic Block Observation register (the paper's
    reference [10]): one register operating as parallel latch, scan
    register, pseudo-random pattern generator or signature register,
    selected by two control bits. *)

type mode = Normal | Scan | Prpg | Misr

type t

val create : ?seed:int -> int -> t
(** [create width] in Normal mode; feedback taps from the
    primitive-polynomial table. *)

val width : t -> int
val state : t -> int
val set_state : t -> int -> unit
val mode : t -> mode
val set_mode : t -> mode -> unit

val mode_of_controls : b1:bool -> b2:bool -> mode
(** The published control encoding: 11 Normal, 00 Scan, 10 PRPG, 01 MISR. *)

val step : t -> ?serial:bool -> bool array -> bool
(** One clock with the given parallel data ([serial] is the scan-in bit);
    returns the scan-out bit. *)

val pattern : t -> int -> bool array
(** Low [n] register bits (the pattern driving the circuit in PRPG mode). *)

val scan_out : t -> bool list
(** Shift the register contents out (destructive), LSB first. *)
