open Dynmos_expr

(* A small standard-cell library spanning the paper's technologies.  Cells
   are constructed programmatically; names encode family, fan-in and
   technology (e.g. "nand3_static-CMOS", "and2_domino-CMOS"). *)

let letters = [| "a"; "b"; "c"; "d"; "e"; "f"; "g"; "h"; "i"; "j"; "k"; "l"; "m" |]

let input_names n =
  if n < 1 || n > Array.length letters then invalid_arg "Stdcells: unsupported fan-in";
  Array.to_list (Array.sub letters 0 n)

let vars n = List.map Expr.var (input_names n)

let tech_tag technology = Technology.to_string technology

(* Transmission-inverting technologies give NAND/NOR from series/parallel
   networks; transmission-preserving ones (domino) give AND/OR. *)

let series_cell ~family n technology =
  let name = Fmt.str "%s%d_%s" family n (tech_tag technology) in
  Cell.make ~name ~technology ~inputs:(input_names n) ~output:"z"
    [ ("z", Expr.and_ (vars n)) ]

let parallel_cell ~family n technology =
  let name = Fmt.str "%s%d_%s" family n (tech_tag technology) in
  Cell.make ~name ~technology ~inputs:(input_names n) ~output:"z"
    [ ("z", Expr.or_ (vars n)) ]

let nand n technology =
  if not (Technology.inverts_transmission technology) then
    invalid_arg "Stdcells.nand: use and_gate for transmission-preserving technologies";
  series_cell ~family:"nand" n technology

let nor n technology =
  if not (Technology.inverts_transmission technology) then
    invalid_arg "Stdcells.nor: use or_gate for transmission-preserving technologies";
  parallel_cell ~family:"nor" n technology

let and_gate n technology =
  if Technology.inverts_transmission technology then
    invalid_arg "Stdcells.and_gate: use nand for transmission-inverting technologies";
  series_cell ~family:"and" n technology

let or_gate n technology =
  if Technology.inverts_transmission technology then
    invalid_arg "Stdcells.or_gate: use nor for transmission-inverting technologies";
  parallel_cell ~family:"or" n technology

let inv technology =
  let name = Fmt.str "inv_%s" (tech_tag technology) in
  Cell.make ~name ~technology ~inputs:[ "a" ] ~output:"z" [ ("z", Expr.var "a") ]

let buf technology =
  if Technology.inverts_transmission technology then
    invalid_arg "Stdcells.buf: inverting technology";
  let name = Fmt.str "buf_%s" (tech_tag technology) in
  Cell.make ~name ~technology ~inputs:[ "a" ] ~output:"z" [ ("z", Expr.var "a") ]

(* AND-OR / OR-AND compound gates.  [groups] lists the fan-in of each AND
   branch, e.g. [ao ~groups:[2;2]] is a*b + c*d. *)
let ao ?name ~groups technology =
  let total = List.fold_left ( + ) 0 groups in
  let names = input_names total in
  let rec take k = function
    | rest when k = 0 -> ([], rest)
    | [] -> invalid_arg "Stdcells.ao"
    | x :: rest ->
        let xs, rem = take (k - 1) rest in
        (x :: xs, rem)
  in
  let branches, _ =
    List.fold_left
      (fun (acc, rest) g ->
        let xs, rem = take g rest in
        (Expr.and_ (List.map Expr.var xs) :: acc, rem))
      ([], names) groups
  in
  let expr = Expr.or_ (List.rev branches) in
  let family = if Technology.inverts_transmission technology then "aoi" else "ao" in
  let name =
    match name with
    | Some n -> n
    | None ->
        Fmt.str "%s%s_%s" family
          (String.concat "" (List.map string_of_int groups))
          (tech_tag technology)
  in
  Cell.make ~name ~technology ~inputs:names ~output:"z" [ ("z", expr) ]

let oa ?name ~groups technology =
  let total = List.fold_left ( + ) 0 groups in
  let names = input_names total in
  let rec take k = function
    | rest when k = 0 -> ([], rest)
    | [] -> invalid_arg "Stdcells.oa"
    | x :: rest ->
        let xs, rem = take (k - 1) rest in
        (x :: xs, rem)
  in
  let branches, _ =
    List.fold_left
      (fun (acc, rest) g ->
        let xs, rem = take g rest in
        (Expr.or_ (List.map Expr.var xs) :: acc, rem))
      ([], names) groups
  in
  let expr = Expr.and_ (List.rev branches) in
  let family = if Technology.inverts_transmission technology then "oai" else "oa" in
  let name =
    match name with
    | Some n -> n
    | None ->
        Fmt.str "%s%s_%s" family
          (String.concat "" (List.map string_of_int groups))
          (tech_tag technology)
  in
  Cell.make ~name ~technology ~inputs:names ~output:"z" [ ("z", expr) ]

(* Dual-rail 2:1 multiplexer for monotone (domino) logic: both select
   polarities arrive as separate rails. *)
let mux2_dual_rail technology =
  let name = Fmt.str "mux2dr_%s" (tech_tag technology) in
  Cell.make ~name ~technology ~inputs:[ "d0"; "d1"; "s"; "sn" ] ~output:"z"
    [ ("z", Expr.(or_ [ and_ [ var "d0"; var "sn" ]; and_ [ var "d1"; var "s" ] ])) ]

(* The paper's running examples. *)

let fig9 =
  Cell.make ~name:"fig9" ~technology:Technology.Domino_cmos
    ~inputs:[ "a"; "b"; "c"; "d"; "e" ] ~output:"u"
    [
      ("x1", Expr.(and_ [ var "a"; or_ [ var "b"; var "c" ] ]));
      ("x2", Expr.(and_ [ var "d"; var "e" ]));
      ("u", Expr.(or_ [ var "x1"; var "x2" ]));
    ]

let fig9_text =
  "TECHNOLOGY domino-CMOS;\nNAME fig9;\nINPUT a,b,c,d,e;\nOUTPUT u;\n\
   x1 := a*(b+c);\nx2 := d*e;\nu := x1+x2;\n"

let fig1_nor = nor 2 Technology.Static_cmos

let fig2_inverter = inv Technology.Static_cmos
