open Dynmos_expr
open Dynmos_switchnet

(** Logical cells in the paper's Section-5 description style.

    A cell couples a technology, an interface, a switching network (as an
    expression over the inputs and as an {!Spnet.t} with numbered
    transistors) and the resulting logic function — the transmission
    function or its inverse depending on the technology. *)

type t

exception Invalid of string
(** Raised on ill-formed descriptions (undefined nets, double assignment,
    missing output, constant function, duplicate signals). *)

val make :
  ?name:string ->
  technology:Technology.t ->
  inputs:string list ->
  output:string ->
  (string * Expr.t) list ->
  t
(** [make ~technology ~inputs ~output assigns] elaborates an assignment
    list (intermediate nets inlined in order; the last value of [output]
    is the switching-network expression).  @raise Invalid on errors. *)

val of_logic :
  ?name:string ->
  technology:Technology.t ->
  inputs:string list ->
  output:string ->
  Expr.t ->
  t
(** Build a cell from the desired logic function; the network is derived
    (inverted through De Morgan for transmission-inverting technologies). *)

val name : t -> string
val technology : t -> Technology.t
val inputs : t -> string list
val output : t -> string
val assigns : t -> (string * Expr.t) list

val network_expr : t -> Expr.t
(** Switching-network expression over the inputs. *)

val network : t -> Spnet.t
(** The switching network with T1.. transistor numbering. *)

val logic : t -> Expr.t
(** The cell's logic function. *)

val arity : t -> int
val n_transistors : t -> int
(** Switching-network transistors only (excludes clocking devices). *)

val input_vars : t -> string array
(** Inputs in declaration order (the truth-table variable ordering). *)

val logic_table : t -> Truth_table.t

val eval : t -> (string -> bool) -> bool

val pp : t Fmt.t
(** Prints the cell back in the paper's description syntax. *)
