(** The five design techniques distinguished by the paper's functional
    library (Section 5). *)

type t =
  | Nmos_pulldown  (** conventional static nMOS with pull-down network *)
  | Static_cmos
  | Bipolar
  | Dynamic_nmos   (** Fig. 6: two-phase precharged nMOS *)
  | Domino_cmos    (** Fig. 4: single-clock precharge/evaluate + inverter *)

val all : t list

val to_string : t -> string

val of_string : string -> t option
(** Case/punctuation-insensitive: accepts e.g. ["domino-CMOS"],
    ["dynamic_nMOS"], ["nMOS"]. *)

val is_dynamic : t -> bool
(** True for the precharged techniques the paper's fault model targets. *)

val inverts_transmission : t -> bool
(** Whether the cell output is the inverse of the switching network's
    transmission function (dynamic nMOS, nMOS pull-down, static CMOS) or
    the transmission function itself (domino CMOS, bipolar). *)

val pp : t Fmt.t
