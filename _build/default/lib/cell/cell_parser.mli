(** Parser for cell-description files in the paper's Section-5 syntax.

    {[
      TECHNOLOGY domino-CMOS;
      NAME fig9;                -- optional
      INPUT a,b,c,d,e;
      OUTPUT u;
      x1 := a*(b+c);
      x2 := d*e;
      u  := x1+x2;
    ]}

    Statements end with [;]; [#] and [--] start line comments; keywords are
    case-insensitive; a [TECHNOLOGY] statement opens a new cell. *)

exception Error of string

val cells : string -> Cell.t list
(** Parse all cells in a file.  @raise Error on syntax or elaboration
    problems (with a message naming the offending statement). *)

val cell : string -> Cell.t
(** Parse a file that must contain exactly one cell. *)
