(* The five design techniques the paper's functional library distinguishes
   (Section 5, "Technology dependent parameters"). *)

type t =
  | Nmos_pulldown   (* conventional static nMOS with pull-down network *)
  | Static_cmos
  | Bipolar
  | Dynamic_nmos    (* Fig. 6: two-phase precharged nMOS *)
  | Domino_cmos     (* Fig. 4: single-clock precharge/evaluate + inverter *)

let all = [ Nmos_pulldown; Static_cmos; Bipolar; Dynamic_nmos; Domino_cmos ]

let to_string = function
  | Nmos_pulldown -> "nMOS-pull-down"
  | Static_cmos -> "static-CMOS"
  | Bipolar -> "bipolar"
  | Dynamic_nmos -> "dynamic-nMOS"
  | Domino_cmos -> "domino-CMOS"

let normalize s =
  String.concat ""
    (String.split_on_char '-'
       (String.concat "" (String.split_on_char '_' (String.lowercase_ascii s))))

let of_string s =
  match normalize s with
  | "nmos" | "nmospulldown" | "pulldownnmos" | "staticnmos" -> Some Nmos_pulldown
  | "staticcmos" | "cmos" -> Some Static_cmos
  | "bipolar" -> Some Bipolar
  | "dynamicnmos" -> Some Dynamic_nmos
  | "dominocmos" | "cmosdomino" | "domino" -> Some Domino_cmos
  | _ -> None

let is_dynamic = function
  | Dynamic_nmos | Domino_cmos -> true
  | Nmos_pulldown | Static_cmos | Bipolar -> false

(* Is the cell's logic function the transmission function itself, or its
   inverse?  (Section 5: "the assignment of the transmission function or
   its inverse to the cell output".)  Domino gates compute T (the internal
   node holds !T, the output inverter restores T); dynamic nMOS, static
   nMOS and static CMOS pull-down based gates compute !T; a bipolar cell is
   described functionally, so it computes T as written. *)
let inverts_transmission = function
  | Dynamic_nmos | Nmos_pulldown | Static_cmos -> true
  | Domino_cmos | Bipolar -> false

let pp ppf t = Fmt.string ppf (to_string t)
