open Dynmos_expr
open Dynmos_switchnet

(* Logical cells in the paper's description style (Section 5):

     TECHNOLOGY domino-CMOS;
     INPUT a,b,c,d,e;
     OUTPUT u;
     x1 := a*(b+c);
     x2 := d*e;
     u  := x1+x2;

   A cell records the technology, the interface, the switching network both
   as an expression over the inputs (intermediate nets inlined) and as an
   [Spnet.t] with numbered transistors, and the resulting logic function —
   the transmission function or its inverse depending on the technology. *)

type t = {
  name : string;
  technology : Technology.t;
  inputs : string list;
  output : string;
  assigns : (string * Expr.t) list;
  network_expr : Expr.t;
  network : Spnet.t;
  logic : Expr.t;
}

exception Invalid of string

let invalid fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

let rec check_distinct = function
  | [] -> ()
  | x :: rest ->
      if List.mem x rest then invalid "duplicate signal name %s" x;
      check_distinct rest

(* Inline the intermediate nets of the assignment list, in order, producing
   the switching-network expression for [output] over the inputs only. *)
let elaborate ~inputs ~output assigns =
  let defined = Hashtbl.create 8 in
  List.iter
    (fun (net, rhs) ->
      if Hashtbl.mem defined net then invalid "net %s assigned twice" net;
      if List.mem net inputs then invalid "assignment to input %s" net;
      let rhs' =
        Expr.subst
          (fun v ->
            match Hashtbl.find_opt defined v with
            | Some e -> Some e
            | None ->
                if List.mem v inputs then None
                else invalid "undefined signal %s in definition of %s" v net)
          rhs
      in
      Hashtbl.replace defined net rhs')
    assigns;
  match Hashtbl.find_opt defined output with
  | Some e -> e
  | None -> invalid "output %s is never assigned" output

let make ?name ~technology ~inputs ~output assigns =
  if inputs = [] then invalid "cell has no inputs";
  check_distinct (output :: inputs);
  let network_expr = elaborate ~inputs ~output assigns in
  let network =
    (* Expressions with general negation or XOR are not directly
       series-parallel; realize them through their minimum disjunctive form
       (literals, possibly negated, are realizable as dual-rail switches). *)
    match Spnet.of_expr network_expr with
    | net -> net
    | exception Spnet.Not_series_parallel _ -> (
        let sop, vars = Minimize.of_expr network_expr in
        match Minimize.to_expr ~vars sop with
        | Expr.Const _ -> invalid "cell %s computes a constant function" output
        | e -> Spnet.of_expr e)
  in
  let t = Spnet.transmission network in
  let logic = if Technology.inverts_transmission technology then Expr.not_ t else t in
  let name =
    match name with
    | Some n -> n
    | None -> Fmt.str "cell_%s_%s" (Technology.to_string technology) output
  in
  { name; technology; inputs; output; assigns; network_expr; network; logic }

let of_logic ?name ~technology ~inputs ~output logic_expr =
  (* Build a cell directly from the desired logic function: the network is
     the function itself (transmission-style techniques get the inverted
     network so that !T equals the requested logic). *)
  let net_expr =
    if Technology.inverts_transmission technology then
      (* need T with !T = logic, i.e. T = !logic pushed to literals *)
      let rec push = function
        | Expr.Const b -> Expr.Const (not b)
        | Expr.Var v -> Expr.not_ (Expr.var v)
        | Expr.Not e -> e
        | Expr.And es -> Expr.or_ (List.map push es)
        | Expr.Or es -> Expr.and_ (List.map push es)
        | Expr.Xor (a, b) -> Expr.xor (push a) b
      in
      push logic_expr
    else logic_expr
  in
  make ?name ~technology ~inputs ~output [ (output, net_expr) ]

let name t = t.name
let technology t = t.technology
let inputs t = t.inputs
let output t = t.output
let assigns t = t.assigns
let network_expr t = t.network_expr
let network t = t.network
let logic t = t.logic
let arity t = List.length t.inputs
let n_transistors t = Spnet.n_switches t.network

let input_vars t = Array.of_list t.inputs

let logic_table t = Truth_table.of_expr ~vars:(input_vars t) t.logic

let eval t env = Expr.eval env t.logic

let pp ppf t =
  Fmt.pf ppf "@[<v>TECHNOLOGY %a;@,INPUT %s;@,OUTPUT %s;@,%a@]" Technology.pp t.technology
    (String.concat "," t.inputs) t.output
    Fmt.(list ~sep:cut (fun ppf (n, e) -> Fmt.pf ppf "%s := %a;" n Expr.pp e))
    t.assigns
