(** Standard-cell families across the paper's technologies.

    Names encode family, fan-in and technology (e.g.
    ["nand3_static-CMOS"], ["and2_domino-CMOS"]).  NAND/NOR exist for
    transmission-inverting technologies, AND/OR for transmission-preserving
    ones (domino, bipolar); calling the wrong family raises
    [Invalid_argument]. *)

val input_names : int -> string list
(** First [n] canonical input names [a], [b], ... *)

val nand : int -> Technology.t -> Cell.t
val nor : int -> Technology.t -> Cell.t
val and_gate : int -> Technology.t -> Cell.t
val or_gate : int -> Technology.t -> Cell.t

val inv : Technology.t -> Cell.t
(** Inverter: for transmission-inverting technologies this is a single
    switch; for domino it is not available (use {!buf}). *)

val buf : Technology.t -> Cell.t
(** Non-inverting buffer (transmission-preserving technologies only). *)

val ao : ?name:string -> groups:int list -> Technology.t -> Cell.t
(** AND-OR (or AOI for inverting technologies): [groups] gives each AND
    branch's fan-in; [ao ~groups:[2;2]] computes [a*b + c*d]. *)

val oa : ?name:string -> groups:int list -> Technology.t -> Cell.t
(** OR-AND / OAI dual of {!ao}. *)

val mux2_dual_rail : Technology.t -> Cell.t
(** 2:1 multiplexer with both select rails as inputs ([d0*sn + d1*s]). *)

val fig9 : Cell.t
(** The paper's Fig. 9 domino gate: [u = a*(b+c) + d*e]. *)

val fig9_text : string
(** Fig. 9 in the cell-description language (round-trips through
    {!Cell_parser.cell}). *)

val fig1_nor : Cell.t
(** The static CMOS NOR of Fig. 1. *)

val fig2_inverter : Cell.t
(** The static CMOS inverter of Fig. 2. *)
