lib/cell/stdcells.mli: Cell Technology
