lib/cell/technology.ml: Fmt String
