lib/cell/cell_parser.mli: Cell
