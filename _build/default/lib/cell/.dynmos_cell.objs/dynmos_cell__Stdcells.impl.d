lib/cell/stdcells.ml: Array Cell Dynmos_expr Expr Fmt List String Technology
