lib/cell/cell_parser.ml: Cell Dynmos_expr Expr Fmt List Parse String Technology
