lib/cell/cell.mli: Dynmos_expr Dynmos_switchnet Expr Fmt Spnet Technology Truth_table
