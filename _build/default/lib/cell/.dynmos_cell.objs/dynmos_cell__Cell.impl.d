lib/cell/cell.ml: Array Dynmos_expr Dynmos_switchnet Expr Fmt Hashtbl List Minimize Spnet String Technology Truth_table
