lib/cell/technology.mli: Fmt
