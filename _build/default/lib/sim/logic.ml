(* Three-valued logic for gate-level simulation. *)

type v = Zero | One | X

let of_bool b = if b then One else Zero

let to_bool = function Zero -> Some false | One -> Some true | X -> None

let equal a b =
  match (a, b) with Zero, Zero | One, One | X, X -> true | _, _ -> false

let band a b =
  match (a, b) with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | X, _ | _, X -> X

let bor a b =
  match (a, b) with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | X, _ | _, X -> X

let bnot = function Zero -> One | One -> Zero | X -> X

let bxor a b =
  match (a, b) with
  | X, _ | _, X -> X
  | One, One | Zero, Zero -> Zero
  | One, Zero | Zero, One -> One

let to_char = function Zero -> '0' | One -> '1' | X -> 'X'

let pp ppf v = Fmt.char ppf (to_char v)
