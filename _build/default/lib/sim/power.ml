open Dynmos_util
open Dynmos_netlist
open Dynmos_cell

(* Quiescent-current (IDDQ / leakage) estimation.

   Section 4(b) of the paper argues against leakage measurement: "it is
   hard to prove whether one faulty conducting path within a large scaled
   integrated circuit leads to a significant and computable rise of the
   power dissipation".  We make that argument quantitative with a simple
   statistical model: every transistor contributes a small random baseline
   leakage (process variation), and a stuck-closed restoring device adds a
   defect current when its ratioed fight is active under the applied
   vector.  Detection compares the measured current against the expected
   baseline distribution. *)

type model = {
  leak_mean : float;      (* per-transistor baseline leakage *)
  leak_sigma : float;     (* per-transistor variation (std dev) *)
  defect_current : float; (* current of one active faulty Vdd-GND path *)
}

(* Calibrated so that the single-defect current stands out of the baseline
   spread on cell-sized blocks but drowns in it past a few thousand
   transistors — the Section 4(b) observation, made quantitative. *)
let default_model = { leak_mean = 2e-2; leak_sigma = 5e-3; defect_current = 0.5 }

(* Gaussian via Box-Muller on the deterministic PRNG. *)
let gaussian prng ~mu ~sigma =
  let u1 = Float.max 1e-12 (Prng.float prng) in
  let u2 = Prng.float prng in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let baseline_current ?(model = default_model) prng compiled =
  let n = Netlist.n_transistors (Compiled.netlist compiled) in
  let total = ref 0.0 in
  for _ = 1 to n do
    total := !total +. Float.max 0.0 (gaussian prng ~mu:model.leak_mean ~sigma:model.leak_sigma)
  done;
  !total

(* Is the faulty Vdd-GND path of a stuck-closed precharge device (domino
   CMOS-3-style bridge) conducting under this vector?  It conducts when
   the gate's switching network is on during evaluation. *)
let bridge_active compiled ~gate_id pi =
  let values = Compiled.eval_nets compiled pi in
  let cg = (Compiled.gates compiled).(gate_id) in
  (* The internal node is pulled down (path on) iff the gate's function,
     i.e. the transmission function for domino, is 1. *)
  let tech = Cell.technology cg.Compiled.g.Netlist.cell in
  match tech with
  | Technology.Domino_cmos -> values.(cg.Compiled.out)
  | Technology.Dynamic_nmos -> not values.(cg.Compiled.out)
  | Technology.Static_cmos | Technology.Nmos_pulldown | Technology.Bipolar ->
      invalid_arg "Power.bridge_active: precharged technologies only"

let measured_current ?(model = default_model) prng compiled ~faulty_gate pi =
  let base = baseline_current ~model prng compiled in
  match faulty_gate with
  | Some gate_id when bridge_active compiled ~gate_id pi -> base +. model.defect_current
  | Some _ | None -> base

(* Expected baseline statistics for thresholding: mean and std dev of the
   total leakage of a circuit with n transistors. *)
let baseline_stats ?(model = default_model) compiled =
  let n = float_of_int (Netlist.n_transistors (Compiled.netlist compiled)) in
  (* Truncation at zero slightly biases the per-device mean upward; for
     the detection-shape experiment the Gaussian approximation is fine. *)
  (n *. model.leak_mean, sqrt n *. model.leak_sigma)

let iddq_detects ?(model = default_model) ?(k_sigma = 3.0) prng compiled ~faulty_gate pi =
  let mu, sigma = baseline_stats ~model compiled in
  let current = measured_current ~model prng compiled ~faulty_gate pi in
  current > mu +. (k_sigma *. sigma)

(* Probability (Monte Carlo) that a vector's IDDQ measurement flags the
   fault, and the corresponding false-positive rate on a fault-free die. *)
let detection_rate ?(model = default_model) ?(k_sigma = 3.0) ?(trials = 200) prng compiled
    ~faulty_gate pi =
  let hits = ref 0 in
  for _ = 1 to trials do
    if iddq_detects ~model ~k_sigma prng compiled ~faulty_gate pi then incr hits
  done;
  float_of_int !hits /. float_of_int trials
