(** Lumped-delay timing and maximum-speed sampling for precharged
    networks.

    Each gate has a nominal delay; a performance-degradation fault
    multiplies one gate's delay.  During domino evaluation only rises
    occur, so an output sampled at the clock period reads 0 unless its
    rise completed — the executable form of the paper's CMOS-3(b) /
    Fig. 2 maximum-speed-testing argument. *)

type delays = float array
(** Delay per gate id. *)

val nominal_delays : ?delay:float -> Compiled.t -> delays

val with_slow_gate : delays -> gate_id:int -> factor:float -> delays

val arrival : Compiled.t -> delays -> bool array -> bool array * float array
(** Per-net (value, rise-arrival-time) for one vector; value-0 nets keep
    time 0. *)

val critical_path : Compiled.t -> delays -> bool array -> float
(** Latest primary-output arrival for one vector. *)

val min_period : Compiled.t -> delays -> bool array list -> float
(** Minimum safe clock period over a pattern set. *)

val at_speed_sample : Compiled.t -> delays -> period:float -> bool array -> bool array
(** Primary outputs as seen when sampling at [period] (late rises read as
    the precharged 0). *)

val at_speed_detects :
  Compiled.t -> delays -> gate_id:int -> factor:float -> period:float -> bool array -> bool
(** Does this pattern expose the slow gate at the given period? *)
