open Dynmos_cell
open Dynmos_core

(** Charge-level simulation of single gates.

    Nodes are driven or floating-with-retained-charge; floating nodes leak
    to low after a cycle (assumption A1).  This module lets the paper's
    claims be executed: dynamic gates stay combinational under every
    physical fault (after the A2 warm-up), static CMOS stuck-open gates do
    not (Fig. 1). *)

type node = Driven of bool | Floating of bool | Unknown

val node_value : node -> Logic.v
val equal_node : node -> node -> bool

val decay : node -> node
(** One cycle of charge decay: driven nodes start floating, floating nodes
    have leaked to low (A1). *)

(** {1 Domino CMOS (Fig. 4)} *)

type domino_state = { y : node;  (** internal precharged node *) z : node  (** inverter output *) }

val domino_initial : domino_state
val all_domino_states : domino_state list

val domino_cycle :
  ?electrical:Fault_map.electrical ->
  ?fault:Fault.physical ->
  Cell.t ->
  domino_state ->
  bool list ->
  domino_state * Logic.v
(** One precharge/evaluate cycle; returns the new state and the valid
    output sampled at the end of evaluation. *)

val domino_warmup :
  ?electrical:Fault_map.electrical -> ?fault:Fault.physical -> Cell.t -> domino_state
(** Apply every input vector once (satisfies assumption A2). *)

val domino_combinational :
  ?electrical:Fault_map.electrical -> ?fault:Fault.physical -> Cell.t -> bool
(** After warm-up, is the valid output of each cycle independent of the
    gate's internal state (over all reachable states)? *)

(** {1 Dynamic nMOS (Fig. 6)} *)

type nmos_state = { zn : node }

val nmos_initial : nmos_state
val all_nmos_states : nmos_state list

val dynamic_nmos_cycle :
  ?electrical:Fault_map.electrical ->
  ?fault:Fault.physical ->
  Cell.t ->
  nmos_state ->
  bool list ->
  nmos_state * Logic.v

val nmos_warmup :
  ?electrical:Fault_map.electrical -> ?fault:Fault.physical -> Cell.t -> nmos_state

val nmos_combinational :
  ?electrical:Fault_map.electrical -> ?fault:Fault.physical -> Cell.t -> bool

(** {1 Static CMOS (Fig. 1, the negative control)} *)

type static_state = { out : node }

val static_initial : static_state

val static_step :
  ?electrical:Fault_map.electrical ->
  ?fault:Fault.physical ->
  Cell.t ->
  static_state ->
  bool list ->
  static_state * Logic.v
(** Apply one input vector; when neither network conducts the output node
    retains its charge — the stuck-open memory. *)

val static_sequential :
  ?electrical:Fault_map.electrical -> ?fault:Fault.physical -> Cell.t -> bool
(** Does some input vector produce different outputs depending on the
    stored state? *)

(** {1 Observation} *)

val observed_function :
  ?electrical:Fault_map.electrical ->
  ?fault:Fault.physical ->
  Cell.t ->
  (bool list * Logic.v) list
(** The logic function a (possibly faulty) dynamic gate exhibits after the
    A2 warm-up, one entry per input vector — compared against
    {!Fault_map.map}'s prediction in tests and benches. *)

val bool_vectors : int -> bool list list
(** All input vectors of the given arity, in row order. *)
