(* Event-driven unit-delay simulation with transition counting.

   Used for the Fig. 5 claim: in a static implementation an input change
   can glitch internal nets (races and spikes), while a domino network
   evaluates monotonically — each net rises at most once per evaluation.
   [apply] drives a new input vector from the current state and counts the
   value changes of every net until quiescence. *)

type t = {
  compiled : Compiled.t;
  values : bool array;          (* current value per net *)
  mutable initialized : bool;
}

let create compiled =
  {
    compiled;
    values = Array.make (Compiled.n_nets compiled) false;
    initialized = false;
  }

let settle t pi =
  let nets = Compiled.eval_nets t.compiled pi in
  Array.blit nets 0 t.values 0 (Array.length nets);
  t.initialized <- true

(* Apply a vector with unit gate delays; returns per-net transition counts
   and the final PO values.  Gates are retried level by level: at time
   step k every gate re-evaluates against the time-(k-1) values, which is
   exactly unit-delay semantics and exposes hazards (a net can flip
   several times while signals race through different path depths). *)
let apply t pi =
  if not t.initialized then settle t pi;
  let compiled = t.compiled in
  let n = Compiled.n_nets compiled in
  let transitions = Array.make n 0 in
  let current = Array.copy t.values in
  (* Drive the primary inputs. *)
  Array.iteri
    (fun i b ->
      if current.(i) <> b then begin
        transitions.(i) <- transitions.(i) + 1;
        current.(i) <- b
      end)
    pi;
  let gates = Compiled.gates compiled in
  let changed = ref true in
  let steps = ref 0 in
  let max_steps = (Array.length gates * 2) + 4 in
  while !changed && !steps < max_steps do
    changed := false;
    incr steps;
    (* Unit delay: all gates read the previous time step's values. *)
    let snapshot = Array.copy current in
    Array.iter
      (fun cg ->
        let ins = Array.map (fun i -> if snapshot.(i) then 1 else 0) cg.Compiled.ins in
        let v = Compiled.eval_fn cg.Compiled.fn ins land 1 = 1 in
        if v <> current.(cg.Compiled.out) then begin
          transitions.(cg.Compiled.out) <- transitions.(cg.Compiled.out) + 1;
          current.(cg.Compiled.out) <- v;
          changed := true
        end)
      gates;
    ignore snapshot
  done;
  Array.blit current 0 t.values 0 n;
  let po = Array.map (fun i -> current.(i)) (Compiled.po_indices compiled) in
  (transitions, po)

let total_gate_transitions t transitions =
  let n_in = Compiled.n_inputs t.compiled in
  let sum = ref 0 in
  Array.iteri (fun i c -> if i >= n_in then sum := !sum + c) transitions;
  !sum

(* A net glitches when it changes value more than once while settling. *)
let glitch_count transitions =
  Array.fold_left (fun acc c -> if c > 1 then acc + 1 else acc) 0 transitions

(* Domino evaluation of the same compiled network: one precharge (all gate
   outputs low) followed by a monotone evaluation.  Because the network is
   monotone and starts from all-low, every net transitions at most once —
   returned counts prove it. *)
let domino_evaluate compiled pi =
  let n = Compiled.n_nets compiled in
  let n_in = Compiled.n_inputs compiled in
  let current = Array.make n false in
  let transitions = Array.make n 0 in
  Array.iteri
    (fun i b ->
      if b then begin
        current.(i) <- true;
        transitions.(i) <- 1
      end)
    pi;
  ignore n_in;
  let gates = Compiled.gates compiled in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun cg ->
        let ins = Array.map (fun i -> if current.(i) then 1 else 0) cg.Compiled.ins in
        let v = Compiled.eval_fn cg.Compiled.fn ins land 1 = 1 in
        if v && not current.(cg.Compiled.out) then begin
          current.(cg.Compiled.out) <- true;
          transitions.(cg.Compiled.out) <- transitions.(cg.Compiled.out) + 1;
          changed := true
        end
        else if (not v) && current.(cg.Compiled.out) then begin
          (* A falling gate output during domino evaluation would be a
             monotonicity violation; count it so tests can assert zero. *)
          current.(cg.Compiled.out) <- false;
          transitions.(cg.Compiled.out) <- transitions.(cg.Compiled.out) + 1;
          changed := true
        end)
      gates
  done;
  let po = Array.map (fun i -> current.(i)) (Compiled.po_indices compiled) in
  (transitions, po)
