open Dynmos_cell
open Dynmos_netlist

(* Two-phase dynamic nMOS networks (the paper's Fig. 7).

   "Obviously the inputs of the gate are blocked when the output z is
   valid.  Therefore one has to use at least two non-overlapping clocks
   in order to build a combinational network by dynamic nMOS gates."

   Gates alternate clock phases by logic level ([Netlist.clock_phase]);
   a gate's output becomes valid when its phase ends and is consumed by
   gates of the opposite phase while it precharges again.  The network is
   therefore a wave pipeline: a vector advances one level per half-cycle
   and a new vector may enter every full cycle.

   The simulator keeps one charge node per gate output: precharge drives
   it high at the start of the gate's own phase, evaluation at the end of
   the phase pulls it down when the (compiled, already inverted) gate
   function says so; between evaluations the node floats and holds.
   Primary inputs are assumed to come from input latches valid in both
   phases. *)

type t = {
  compiled : Compiled.t;
  values : bool array;       (* current held value per net *)
  valid : bool array;        (* has the net been evaluated at least once *)
  mutable next_phase : [ `Phi1 | `Phi2 ];
}

exception Not_dynamic_nmos

let create compiled =
  (match Netlist.single_technology (Compiled.netlist compiled) with
  | Some Technology.Dynamic_nmos -> ()
  | Some _ | None -> raise Not_dynamic_nmos);
  {
    compiled;
    values = Array.make (Compiled.n_nets compiled) true (* precharged *);
    valid = Array.make (Compiled.n_nets compiled) false;
    next_phase = `Phi1;
  }

(* The Fig. 7 composition rule: every gate-to-gate edge must connect
   opposite phases (odd level difference), otherwise the consumer samples
   its driver while that driver is precharging. *)
let check_discipline netlist =
  List.for_all
    (fun g ->
      List.for_all
        (fun net ->
          match Netlist.gate_of_net netlist net with
          | None -> true (* primary inputs are valid in both phases *)
          | Some driver -> (driver.Netlist.level - g.Netlist.level) mod 2 <> 0)
        g.Netlist.input_nets)
    (Netlist.gates netlist)

let phase t = t.next_phase

(* One half-cycle: the gates of [t.next_phase] precharge-and-evaluate
   against the currently held values; all other nodes hold their charge. *)
let half_cycle t (pi : bool array) =
  let compiled = t.compiled in
  let n_in = Compiled.n_inputs compiled in
  if Array.length pi <> n_in then invalid_arg "Two_phase.half_cycle: PI arity";
  Array.blit pi 0 t.values 0 n_in;
  for i = 0 to n_in - 1 do
    t.valid.(i) <- true
  done;
  let p = t.next_phase in
  Array.iter
    (fun cg ->
      if Netlist.clock_phase cg.Compiled.g = p then begin
        let ins = Array.map (fun i -> if t.values.(i) then 1 else 0) cg.Compiled.ins in
        t.values.(cg.Compiled.out) <- Compiled.eval_fn cg.Compiled.fn ins land 1 = 1;
        t.valid.(cg.Compiled.out) <-
          Array.for_all (fun i -> t.valid.(i)) cg.Compiled.ins
      end)
    (Compiled.gates compiled);
  t.next_phase <- (match p with `Phi1 -> `Phi2 | `Phi2 -> `Phi1)

let outputs t = Array.map (fun i -> t.values.(i)) (Compiled.po_indices t.compiled)

let outputs_valid t =
  Array.for_all (fun i -> t.valid.(i)) (Compiled.po_indices t.compiled)

(* Hold one vector at the inputs until every output has been evaluated
   from it: [depth] half-cycles flush the wave through. *)
let run_vector t pi =
  let depth = Netlist.depth (Compiled.netlist t.compiled) in
  Array.fill t.valid 0 (Array.length t.valid) false;
  for _ = 1 to max 1 depth + 1 do
    half_cycle t pi
  done;
  outputs t

(* Pipelined operation: feed a new vector every full cycle (two
   half-cycles); each result emerges [ceil(depth/2)] cycles later.
   Returns the outputs observed after each full cycle, including the
   fill latency (entries before the first valid result are [None]). *)
let run_stream t (vectors : bool array list) =
  let depth = Netlist.depth (Compiled.netlist t.compiled) in
  let latency = (depth + 1) / 2 in
  let results = ref [] in
  let count = ref 0 in
  List.iter
    (fun pi ->
      half_cycle t pi;
      half_cycle t pi;
      incr count;
      results := (if !count > latency then Some (outputs t) else None) :: !results)
    vectors;
  (* Flush the pipeline with the last vector held. *)
  (match vectors with
  | [] -> ()
  | _ ->
      let last = List.nth vectors (List.length vectors - 1) in
      for _ = 1 to latency do
        half_cycle t last;
        half_cycle t last;
        results := Some (outputs t) :: !results
      done);
  List.rev !results
