open Dynmos_netlist

(** Two-phase dynamic nMOS network simulation (the paper's Fig. 7).

    Gates alternate clock phases by logic level; a gate's output is valid
    while it precharges and is consumed by opposite-phase gates, so a
    vector advances one level per half-cycle (wave pipelining). *)

type t

exception Not_dynamic_nmos

val create : Compiled.t -> t
(** @raise Not_dynamic_nmos unless every gate is dynamic nMOS. *)

val check_discipline : Netlist.t -> bool
(** The Fig. 7 composition rule: every gate-to-gate edge connects
    opposite phases (odd level difference).  Primary inputs are assumed
    valid in both phases. *)

val phase : t -> [ `Phi1 | `Phi2 ]
(** The phase the next {!half_cycle} will fire. *)

val half_cycle : t -> bool array -> unit
(** Precharge-and-evaluate the gates of the pending phase against the
    currently held values; other nodes hold their charge. *)

val outputs : t -> bool array
val outputs_valid : t -> bool
(** Have all primary outputs been evaluated from applied inputs? *)

val run_vector : t -> bool array -> bool array
(** Hold one vector at the inputs until the wave has flushed through
    (depth+1 half-cycles); returns the primary outputs, which then equal
    the combinational function. *)

val run_stream : t -> bool array list -> bool array option list
(** Pipelined operation: a new vector every full cycle, results emerging
    after the fill latency ([None] until then).  Wave-consistent only for
    networks whose primary inputs feed level-1 gates exclusively (deeper
    PI fan-in mixes waves — real designs retime such inputs). *)
