lib/sim/timing.mli: Compiled
