lib/sim/charge_sim.mli: Cell Dynmos_cell Dynmos_core Fault Fault_map Logic
