lib/sim/compiled.ml: Array Cell Cube Dynmos_cell Dynmos_expr Dynmos_netlist Expr Hashtbl List Minimize Netlist Truth_table
