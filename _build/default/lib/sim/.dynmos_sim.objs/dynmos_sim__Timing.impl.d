lib/sim/timing.ml: Array Compiled Dynmos_netlist Float List Netlist
