lib/sim/two_phase.mli: Compiled Dynmos_netlist Netlist
