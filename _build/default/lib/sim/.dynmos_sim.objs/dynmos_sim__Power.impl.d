lib/sim/power.ml: Array Cell Compiled Dynmos_cell Dynmos_netlist Dynmos_util Float Netlist Prng Technology
