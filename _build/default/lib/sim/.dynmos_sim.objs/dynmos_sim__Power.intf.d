lib/sim/power.mli: Compiled Dynmos_util Prng
