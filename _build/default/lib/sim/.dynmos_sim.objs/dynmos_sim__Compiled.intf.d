lib/sim/compiled.mli: Dynmos_expr Dynmos_netlist Expr Netlist Truth_table
