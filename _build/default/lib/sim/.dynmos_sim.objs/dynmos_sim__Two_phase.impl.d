lib/sim/two_phase.ml: Array Compiled Dynmos_cell Dynmos_netlist List Netlist Technology
