lib/sim/logic.mli: Fmt
