lib/sim/charge_sim.ml: Bool Cell Dynmos_cell Dynmos_core Dynmos_expr Dynmos_switchnet Expr Fault Fault_map List Logic Option Spnet String Technology
