lib/sim/logic.ml: Fmt
