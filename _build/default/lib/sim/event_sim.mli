(** Event-driven unit-delay simulation with transition counting.

    Supports the Fig. 5 claim: static implementations glitch (races and
    spikes) while domino evaluation is monotone — every net transitions at
    most once per cycle. *)

type t

val create : Compiled.t -> t

val settle : t -> bool array -> unit
(** Initialize the state to the steady response of a vector. *)

val apply : t -> bool array -> int array * bool array
(** Drive a new vector with unit gate delays from the current state;
    returns per-net transition counts until quiescence and the final
    primary-output values. *)

val total_gate_transitions : t -> int array -> int

val glitch_count : int array -> int
(** Number of nets that changed value more than once while settling. *)

val domino_evaluate : Compiled.t -> bool array -> int array * bool array
(** One domino precharge/evaluate cycle of a (monotone) network starting
    from the all-low precharged state; per-net transition counts are 0 or
    1 when the network is properly monotone. *)
