open Dynmos_netlist

(* Lumped-delay timing simulation and maximum-speed sampling.

   Substitute for the paper's electrical reality: each gate has a nominal
   delay; a performance-degradation fault multiplies one gate's delay.
   For a precharged (domino) network the only transitions during
   evaluation are rises, so a primary output sampled at the clock period
   reads 0 unless its rise completed in time.  This turns the paper's
   Fig. 2 / CMOS-3(b) argument into executable detection: a slow gate is
   seen as s0-z exactly when the pattern sensitizes a path through it and
   the period is tight. *)

type delays = float array  (* per gate id *)

let nominal_delays ?(delay = 1.0) compiled =
  Array.make (Array.length (Compiled.gates compiled)) delay

let with_slow_gate delays ~gate_id ~factor =
  let d = Array.copy delays in
  d.(gate_id) <- d.(gate_id) *. factor;
  d

(* Rise arrival time of every net for one vector: inputs are ready at 0;
   a gate whose output evaluates to 1 rises [delay] after the latest of
   its rising (value-1) inputs; value-0 nets never transition. *)
let arrival compiled delays pi =
  let n = Compiled.n_nets compiled in
  let values = Compiled.eval_nets compiled pi in
  let time = Array.make n 0.0 in
  Array.iter
    (fun cg ->
      let out = cg.Compiled.out in
      if values.(out) then begin
        let latest = ref 0.0 in
        Array.iter
          (fun i -> if values.(i) then latest := Float.max !latest time.(i))
          cg.Compiled.ins;
        time.(out) <- !latest +. delays.(cg.Compiled.g.Netlist.id)
      end)
    (Compiled.gates compiled);
  (values, time)

let critical_path compiled delays pi =
  let _, time = arrival compiled delays pi in
  Array.fold_left
    (fun acc i -> Float.max acc time.(i))
    0.0
    (Compiled.po_indices compiled)

(* Worst-case evaluation time over a pattern set (the minimum safe clock
   period for those patterns). *)
let min_period compiled delays patterns =
  List.fold_left (fun acc pi -> Float.max acc (critical_path compiled delays pi)) 0.0 patterns

(* Sample the primary outputs at [period]: a rising output whose arrival
   exceeds the period still reads its precharged 0. *)
let at_speed_sample compiled delays ~period pi =
  let values, time = arrival compiled delays pi in
  Array.map
    (fun i -> values.(i) && time.(i) <= period +. 1e-9)
    (Compiled.po_indices compiled)

(* Does maximum-speed testing detect a delay fault at [gate_id] with the
   given slow-down under this pattern?  (Paper: "applying maximum speed
   testing may detect this fault as an s0-z".) *)
let at_speed_detects compiled delays ~gate_id ~factor ~period pi =
  let slow = with_slow_gate delays ~gate_id ~factor in
  let good = at_speed_sample compiled delays ~period pi in
  let faulty = at_speed_sample compiled slow ~period pi in
  good <> faulty
