open Dynmos_util

(** Quiescent-current (IDDQ) estimation — the measurement technique the
    paper's Section 4(b) argues against, made quantitative: per-transistor
    baseline leakage with process variation, plus a defect current when a
    stuck-closed device's Vdd-GND path is active under the applied
    vector. *)

type model = {
  leak_mean : float;       (** per-transistor baseline leakage *)
  leak_sigma : float;      (** per-transistor variation (std dev) *)
  defect_current : float;  (** current of one active faulty path *)
}

val default_model : model

val gaussian : Prng.t -> mu:float -> sigma:float -> float

val baseline_current : ?model:model -> Prng.t -> Compiled.t -> float
(** One sampled fault-free leakage measurement of the whole circuit. *)

val bridge_active : Compiled.t -> gate_id:int -> bool array -> bool
(** Is the stuck-closed precharge device's Vdd-GND path conducting under
    this vector (the gate's evaluation path is on)? *)

val measured_current :
  ?model:model -> Prng.t -> Compiled.t -> faulty_gate:int option -> bool array -> float

val baseline_stats : ?model:model -> Compiled.t -> float * float
(** (mean, std dev) of the fault-free total leakage. *)

val iddq_detects :
  ?model:model -> ?k_sigma:float -> Prng.t -> Compiled.t -> faulty_gate:int option ->
  bool array -> bool
(** Threshold test at mean + k·sigma. *)

val detection_rate :
  ?model:model -> ?k_sigma:float -> ?trials:int -> Prng.t -> Compiled.t ->
  faulty_gate:int option -> bool array -> float
(** Monte-Carlo detection (or false-positive, with [faulty_gate:None])
    rate of the threshold test. *)
