(** Three-valued logic for gate-level simulation. *)

type v = Zero | One | X

val of_bool : bool -> v
val to_bool : v -> bool option
val equal : v -> v -> bool
val band : v -> v -> v
val bor : v -> v -> v
val bnot : v -> v
val bxor : v -> v -> v
val to_char : v -> char
val pp : v Fmt.t
