open Dynmos_netlist

(** Technology-independent Boolean networks (tiny DAG IR) realized either
    as conventional static CMOS (NAND/NOR/INV decomposition) or as
    dual-rail monotone domino CMOS — the same function in the two styles
    the paper contrasts. *)

type node_id = int

type node =
  | Input of string
  | Land of node_id list
  | Lor of node_id list
  | Lnot of node_id
  | Lxor of node_id * node_id

type t = { nodes : node array; inputs : string list; outputs : (string * node_id) list }

(** Monotone builder: operands must be created before use. *)
module Build : sig
  type b

  val create : unit -> b
  val input : b -> string -> node_id
  val land_ : b -> node_id list -> node_id
  val lor_ : b -> node_id list -> node_id
  val not_ : b -> node_id -> node_id
  val xor_ : b -> node_id -> node_id -> node_id
  val output : b -> string -> node_id -> unit
  val finish : b -> t
end

val eval : t -> (string * bool) list -> (string * bool) list
(** Reference evaluation (output name, value). *)

val to_static : ?name:string -> t -> Netlist.t
(** NAND/NOR/INV static CMOS realization (hazard-prone, the paper's
    races-and-spikes foil). *)

val to_domino_dual_rail : ?name:string -> t -> Netlist.t
(** Dual-rail monotone domino realization: every input [i] becomes the
    rail pair [i_p]/[i_n]; NOT is a free rail swap; each output
    contributes both rails as primary outputs (positive first). *)

val rail_pos : string -> string
val rail_neg : string -> string

val dual_rail_vector : t -> bool array -> bool array
(** Expand a single-rail input vector into the dual-rail PI vector. *)

val n_inputs : t -> int
val n_outputs : t -> int
val n_nodes : t -> int
