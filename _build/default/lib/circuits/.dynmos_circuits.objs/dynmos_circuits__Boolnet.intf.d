lib/circuits/boolnet.mli: Dynmos_netlist Netlist
