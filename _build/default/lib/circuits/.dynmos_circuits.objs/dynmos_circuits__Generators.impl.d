lib/circuits/generators.ml: Array Boolnet Cell Dynmos_cell Dynmos_netlist Dynmos_util Fmt Hashtbl List Netlist Option Prng Stdcells Technology
