lib/circuits/boolnet.ml: Array Dynmos_cell Dynmos_netlist Fmt List Netlist Stdcells Technology
