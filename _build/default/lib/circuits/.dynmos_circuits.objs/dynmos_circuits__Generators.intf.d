lib/circuits/generators.mli: Boolnet Cell Dynmos_cell Dynmos_netlist Netlist Technology
