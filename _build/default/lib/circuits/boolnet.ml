open Dynmos_cell
open Dynmos_netlist

(* Technology-independent Boolean networks.

   A tiny DAG IR (AND/OR/NOT/XOR over named inputs) from which the same
   function is realized in two styles:

   - [to_static]: NAND/NOR/INV decomposition in static CMOS — the
     conventional implementation the paper's introduction criticizes;
   - [to_domino_dual_rail]: dual-rail monotone domino CMOS.  Every signal
     travels as a (positive, negative) rail pair; NOT is free (rail swap),
     AND/OR/XOR become pairs of monotone domino gates, and primary inputs
     arrive in both polarities.  This is the standard way non-monotone
     functions (parity, adders, comparators) are built in domino logic and
     is what lets us evaluate the paper's techniques on real workloads. *)

type node_id = int

type node =
  | Input of string
  | Land of node_id list
  | Lor of node_id list
  | Lnot of node_id
  | Lxor of node_id * node_id

type t = { nodes : node array; inputs : string list; outputs : (string * node_id) list }

module Build = struct
  type b = {
    mutable rev_nodes : node list;
    mutable count : int;
    mutable binputs : string list;
    mutable bouts : (string * node_id) list;
  }

  let create () = { rev_nodes = []; count = 0; binputs = []; bouts = [] }

  let node b n =
    b.rev_nodes <- n :: b.rev_nodes;
    b.count <- b.count + 1;
    b.count - 1

  let input b name =
    if List.mem name b.binputs then invalid_arg ("Boolnet: duplicate input " ^ name);
    b.binputs <- name :: b.binputs;
    node b (Input name)

  let land_ b ids = match ids with [ x ] -> x | _ -> node b (Land ids)
  let lor_ b ids = match ids with [ x ] -> x | _ -> node b (Lor ids)
  let not_ b id = node b (Lnot id)
  let xor_ b x y = node b (Lxor (x, y))

  let output b name id = b.bouts <- (name, id) :: b.bouts

  let finish b =
    {
      nodes = Array.of_list (List.rev b.rev_nodes);
      inputs = List.rev b.binputs;
      outputs = List.rev b.bouts;
    }
end

let eval t (env : (string * bool) list) =
  let values = Array.make (Array.length t.nodes) false in
  Array.iteri
    (fun i n ->
      values.(i) <-
        (match n with
        | Input name -> (
            match List.assoc_opt name env with
            | Some v -> v
            | None -> invalid_arg ("Boolnet.eval: missing input " ^ name))
        | Land ids -> List.for_all (fun j -> values.(j)) ids
        | Lor ids -> List.exists (fun j -> values.(j)) ids
        | Lnot j -> not values.(j)
        | Lxor (x, y) -> values.(x) <> values.(y)))
    t.nodes;
  List.map (fun (name, id) -> (name, values.(id))) t.outputs

(* --- Static CMOS realization ------------------------------------------- *)

let to_static ?(name = "static") t =
  let b = Netlist.Builder.create name in
  let inv = Stdcells.inv Technology.Static_cmos in
  let fresh =
    let k = ref 0 in
    fun prefix ->
      incr k;
      Fmt.str "%s%d" prefix !k
  in
  List.iter (fun i -> ignore (Netlist.Builder.input b i)) t.inputs;
  let net_of = Array.make (Array.length t.nodes) "" in
  Array.iteri
    (fun i n ->
      let net =
        match n with
        | Input nm -> nm
        | Land ids ->
            let nand = Stdcells.nand (List.length ids) Technology.Static_cmos in
            let mid =
              Netlist.Builder.add b nand
                ~inputs:(List.map (fun j -> net_of.(j)) ids)
                ~output:(fresh "n")
            in
            Netlist.Builder.add b inv ~inputs:[ mid ] ~output:(fresh "n")
        | Lor ids ->
            let nor = Stdcells.nor (List.length ids) Technology.Static_cmos in
            let mid =
              Netlist.Builder.add b nor
                ~inputs:(List.map (fun j -> net_of.(j)) ids)
                ~output:(fresh "n")
            in
            Netlist.Builder.add b inv ~inputs:[ mid ] ~output:(fresh "n")
        | Lnot j -> Netlist.Builder.add b inv ~inputs:[ net_of.(j) ] ~output:(fresh "n")
        | Lxor (x, y) ->
            (* Four-NAND exclusive-or: hazard-prone, which is the point of
               the static implementation used as the races/spikes foil. *)
            let nand2 = Stdcells.nand 2 Technology.Static_cmos in
            let m = Netlist.Builder.add b nand2 ~inputs:[ net_of.(x); net_of.(y) ] ~output:(fresh "n") in
            let p = Netlist.Builder.add b nand2 ~inputs:[ net_of.(x); m ] ~output:(fresh "n") in
            let q = Netlist.Builder.add b nand2 ~inputs:[ net_of.(y); m ] ~output:(fresh "n") in
            Netlist.Builder.add b nand2 ~inputs:[ p; q ] ~output:(fresh "n")
      in
      net_of.(i) <- net)
    t.nodes;
  List.iter
    (fun (po_name, id) ->
      (* Alias the PO through a buffer-free rename: mark the driving net. *)
      ignore po_name;
      Netlist.Builder.output b net_of.(id))
    t.outputs;
  Netlist.Builder.finish b

(* --- Dual-rail domino realization -------------------------------------- *)

let rail_pos name = name ^ "_p"
let rail_neg name = name ^ "_n"

let to_domino_dual_rail ?(name = "domino") t =
  let b = Netlist.Builder.create name in
  let fresh =
    let k = ref 0 in
    fun prefix ->
      incr k;
      Fmt.str "%s%d" prefix !k
  in
  List.iter
    (fun i ->
      ignore (Netlist.Builder.input b (rail_pos i));
      ignore (Netlist.Builder.input b (rail_neg i)))
    t.inputs;
  let and_cell k = Stdcells.and_gate k Technology.Domino_cmos in
  let or_cell k = Stdcells.or_gate k Technology.Domino_cmos in
  let gate cell ins = Netlist.Builder.add b cell ~inputs:ins ~output:(fresh "w") in
  let xor_p = Stdcells.ao ~name:"xor_p_domino" ~groups:[ 2; 2 ] Technology.Domino_cmos in
  (* rails per node: (positive, negative) *)
  let rails = Array.make (Array.length t.nodes) ("", "") in
  Array.iteri
    (fun i n ->
      let r =
        match n with
        | Input nm -> (rail_pos nm, rail_neg nm)
        | Land ids ->
            let ps = List.map (fun j -> fst rails.(j)) ids in
            let ns = List.map (fun j -> snd rails.(j)) ids in
            let k = List.length ids in
            (gate (and_cell k) ps, gate (or_cell k) ns)
        | Lor ids ->
            let ps = List.map (fun j -> fst rails.(j)) ids in
            let ns = List.map (fun j -> snd rails.(j)) ids in
            let k = List.length ids in
            (gate (or_cell k) ps, gate (and_cell k) ns)
        | Lnot j ->
            let p, n' = rails.(j) in
            (n', p)
        | Lxor (x, y) ->
            let xp, xn = rails.(x) and yp, yn = rails.(y) in
            (* z_p = xp*yn + xn*yp ; z_n = xp*yp + xn*yn *)
            (gate xor_p [ xp; yn; xn; yp ], gate xor_p [ xp; yp; xn; yn ])
      in
      rails.(i) <- r)
    t.nodes;
  List.iter
    (fun (_, id) ->
      Netlist.Builder.output b (fst rails.(id));
      Netlist.Builder.output b (snd rails.(id)))
    t.outputs;
  Netlist.Builder.finish b

(* Expand a single-rail input vector (in [t.inputs] order) into the
   dual-rail primary-input vector of [to_domino_dual_rail]'s network. *)
let dual_rail_vector t (pi : bool array) =
  if Array.length pi <> List.length t.inputs then invalid_arg "dual_rail_vector: arity";
  Array.concat (Array.to_list (Array.map (fun v -> [| v; not v |]) pi))

let n_inputs t = List.length t.inputs
let n_outputs t = List.length t.outputs
let n_nodes t = Array.length t.nodes
