lib/switchnet/graph.mli: Dynmos_expr Expr Spnet
