lib/switchnet/spnet.mli: Dynmos_expr Expr Fmt
