lib/switchnet/graph.ml: Array Dynmos_expr Fun Int List Minimize Spnet String Truth_table
