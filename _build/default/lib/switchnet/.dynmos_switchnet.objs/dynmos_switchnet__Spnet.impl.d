lib/switchnet/spnet.ml: Array Dynmos_expr Expr Fmt List Option String
