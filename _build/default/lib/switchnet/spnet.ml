open Dynmos_expr

(* Series-parallel switching networks (the paper's Fig. 3).

   A network SN has two terminals S and D; switches are interconnected at
   source and drain and their gates are driven by input signals.  The
   transmission function T(i1..in) is true iff a conducting path S--D
   exists.  The paper describes networks exactly in this series/parallel
   style ([x1 := a*(b+c)]), so the primary representation is the SP tree;
   the general graph form (with bridges) lives in [Graph].

   Every switch carries a unique 1-based id assigned in left-to-right
   traversal order of the defining expression — this makes our transistor
   numbering match the paper's T1..Tn convention, which matters for
   reproducing the Section-5 fault table ordering. *)

type polarity = N | P

type switch = {
  id : int;
  input : string;
  negated : bool;  (* gate driven by the complement of [input] (dual rail) *)
  polarity : polarity;
  r_on : float;    (* on-resistance, for ratioed-fault analysis *)
}

type t = Switch of switch | Series of t list | Parallel of t list

exception Not_series_parallel of Expr.t

let default_r_on = 1.0

let of_expr ?(polarity = N) ?(r_on = default_r_on) expr =
  let counter = ref 0 in
  let fresh input negated =
    incr counter;
    Switch { id = !counter; input; negated; polarity; r_on }
  in
  let rec go = function
    | Expr.Var v -> fresh v false
    | Expr.Not (Expr.Var v) -> fresh v true
    | Expr.And es -> Series (List.map go es)
    | Expr.Or es -> Parallel (List.map go es)
    | (Expr.Const _ | Expr.Not _ | Expr.Xor _) as e -> raise (Not_series_parallel e)
  in
  go expr

let rec switches = function
  | Switch s -> [ s ]
  | Series ts | Parallel ts -> List.concat_map switches ts

let n_switches t = List.length (switches t)

let find_switch t id = List.find_opt (fun s -> s.id = id) (switches t)

let inputs t =
  List.sort_uniq String.compare (List.map (fun s -> s.input) (switches t))

(* A switch conducts when its (possibly negated) gate signal matches its
   polarity: N conducts on high, P conducts on low. *)
let switch_literal s =
  let v = if s.negated then Expr.not_ (Expr.var s.input) else Expr.var s.input in
  match s.polarity with N -> v | P -> Expr.not_ v

let rec transmission = function
  | Switch s -> switch_literal s
  | Series ts -> Expr.and_ (List.map transmission ts)
  | Parallel ts -> Expr.or_ (List.map transmission ts)

type fault =
  | Switch_open of int     (* channel never conducts *)
  | Switch_closed of int   (* channel always conducts *)
  | Gate_open of int       (* gate line open: floats low by assumption A1 *)

let fault_switch_id = function Switch_open i | Switch_closed i | Gate_open i -> i

(* Under assumption A1 a floating gate reads logic low, so a gate-open
   N-switch never conducts while a gate-open P-switch always conducts. *)
let faulty_literal f s =
  if fault_switch_id f <> s.id then switch_literal s
  else
    match f with
    | Switch_open _ -> Expr.false_
    | Switch_closed _ -> Expr.true_
    | Gate_open _ -> ( match s.polarity with N -> Expr.false_ | P -> Expr.true_)

let faulty_transmission t f =
  let rec go = function
    | Switch s -> faulty_literal f s
    | Series ts -> Expr.and_ (List.map go ts)
    | Parallel ts -> Expr.or_ (List.map go ts)
  in
  go t

let faulty_transmission_multi t faults =
  let rec go = function
    | Switch s -> (
        match List.find_opt (fun f -> fault_switch_id f = s.id) faults with
        | Some f -> faulty_literal f s
        | None -> switch_literal s)
    | Series ts -> Expr.and_ (List.map go ts)
    | Parallel ts -> Expr.or_ (List.map go ts)
  in
  go t

let switches_of_input t input =
  List.filter (fun s -> String.equal s.input input) (switches t)

let all_faults t =
  List.concat_map (fun s -> [ Switch_closed s.id; Switch_open s.id ]) (switches t)

(* Dual network: series<->parallel with each switch replaced by the
   complementary device on the *same* gate signal, so its conduction
   condition is complemented.  This is how a static-CMOS pull-up is derived
   from the pull-down network. *)
let rec dual = function
  | Switch s -> Switch { s with polarity = (match s.polarity with N -> P | P -> N) }
  | Series ts -> Parallel (List.map dual ts)
  | Parallel ts -> Series (List.map dual ts)

(* Effective S--D resistance under an input assignment, treating conducting
   switches as their on-resistance and open switches as infinite.  [None]
   means no conducting path. *)
let resistance t env =
  let conducting s =
    let gate = if s.negated then not (env s.input) else env s.input in
    match s.polarity with N -> gate | P -> not gate
  in
  let rec go = function
    | Switch s -> if conducting s then Some s.r_on else None
    | Series ts ->
        List.fold_left
          (fun acc t ->
            match (acc, go t) with Some r1, Some r2 -> Some (r1 +. r2) | _ -> None)
          (Some 0.0) ts
    | Parallel ts ->
        let gs = List.filter_map (fun t -> Option.map (fun r -> 1.0 /. r) (go t)) ts in
        if gs = [] then None else Some (1.0 /. List.fold_left ( +. ) 0.0 gs)
  in
  go t

let min_resistance t =
  (* Minimum over all input assignments that produce a conducting path;
     the worst case for a ratioed fight against the precharge device. *)
  let ins = inputs t in
  let n = List.length ins in
  let arr = Array.of_list ins in
  let best = ref None in
  for v = 0 to (1 lsl n) - 1 do
    let env name =
      let rec idx i = if String.equal arr.(i) name then i else idx (i + 1) in
      (v lsr (idx 0)) land 1 = 1
    in
    match resistance t env with
    | Some r -> ( match !best with Some b when b <= r -> () | _ -> best := Some r)
    | None -> ()
  done;
  !best

let rec pp ppf = function
  | Switch s ->
      Fmt.pf ppf "%s%s:T%d" (if s.negated then "!" else "") s.input s.id
  | Series ts -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any "*") pp) ts
  | Parallel ts -> Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any "+") pp) ts
