open Dynmos_expr

(** General switch graphs.

    Topology-agnostic model of a switching network between terminals S and
    D.  Covers bridge (non-series-parallel) networks and cross-checks the
    {!Spnet} analysis: converting an SP tree with {!of_spnet} and taking
    {!transmission} must agree with [Spnet.transmission]. *)

type node = int

val source : node
val drain : node

type edge = { id : int; u : node; v : node; switch : Spnet.switch }

type t

val create : n_nodes:int -> edge list -> t
(** @raise Invalid_argument on out-of-range endpoints or [n_nodes < 2]. *)

val edges : t -> edge list
val n_nodes : t -> int

val inputs : t -> string list
(** Sorted distinct gate signals. *)

val of_spnet : Spnet.t -> t
(** Structural conversion; internal series nodes are allocated fresh. *)

type fault = Spnet.fault

val conducts : ?fault:fault -> t -> (string -> bool) -> bool
(** Is there a conducting S--D path under the assignment (union-find)? *)

val transmission : ?fault:fault -> t -> Expr.t
(** Transmission function by assignment enumeration, returned in minimum
    disjunctive form. *)

val all_faults : t -> fault list
(** Closed/open faults for every edge, ordered by switch id. *)

val bridge : a:string -> b:string -> c:string -> d:string -> e:string -> t
(** The 5-switch Wheatstone bridge (not series-parallel); for tests. *)
