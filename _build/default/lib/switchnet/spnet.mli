open Dynmos_expr

(** Series-parallel switching networks (the paper's Fig. 3).

    A network has two terminals S and D; the transmission function
    T(i1..in) is true iff a conducting path between them exists.  Switches
    are numbered T1.. in left-to-right traversal order of the defining
    expression, matching the paper's convention. *)

type polarity = N | P

type switch = {
  id : int;       (** 1-based transistor number *)
  input : string; (** gate signal *)
  negated : bool; (** gate driven by the complement (dual rail) *)
  polarity : polarity;
  r_on : float;   (** on-resistance for ratioed-fault analysis *)
}

type t = Switch of switch | Series of t list | Parallel of t list

exception Not_series_parallel of Expr.t

val default_r_on : float

val of_expr : ?polarity:polarity -> ?r_on:float -> Expr.t -> t
(** Build a network from a [*]/[+] expression; [Var] and [Not (Var _)]
    become switches.  @raise Not_series_parallel on constants, [Xor] or
    negations of compound expressions. *)

val switches : t -> switch list
(** All switches in traversal (id) order. *)

val n_switches : t -> int
val find_switch : t -> int -> switch option

val inputs : t -> string list
(** Sorted distinct gate signals. *)

val switch_literal : switch -> Expr.t
(** Conduction condition of one switch. *)

val transmission : t -> Expr.t
(** The transmission function T. *)

type fault =
  | Switch_open of int     (** channel never conducts *)
  | Switch_closed of int   (** channel always conducts *)
  | Gate_open of int       (** gate line open: floats low by assumption A1 *)

val fault_switch_id : fault -> int

val faulty_transmission : t -> fault -> Expr.t
(** Transmission function with one switch faulted. *)

val faulty_transmission_multi : t -> fault list -> Expr.t
(** Transmission function with several switches faulted at once (at most
    one fault per switch id is honoured; the first match wins). *)

val switches_of_input : t -> string -> switch list
(** All switches whose gate is driven by the given input. *)

val all_faults : t -> fault list
(** [Switch_closed i; Switch_open i] for every switch, in id order (the
    paper's enumeration order for the Section-5 table). *)

val dual : t -> t
(** Series/parallel dual with complemented gates (static-CMOS pull-up from
    a pull-down network; dual-rail complement network). *)

val resistance : t -> (string -> bool) -> float option
(** Effective S--D resistance under an assignment; [None] if no path. *)

val min_resistance : t -> float option
(** Minimum conducting-path resistance over all assignments (the worst case
    for a ratioed fight against a stuck-closed precharge device). *)

val pp : t Fmt.t
