open Dynmos_expr

(* General switch graphs.

   Series-parallel trees cover everything the paper's cell language can
   describe, but real pass-transistor networks (and the nMOS literature the
   paper cites, Tsai '83) also contain bridge topologies.  This module keeps
   an explicit node/edge representation, computes transmission functions by
   assignment enumeration, and supports the same open/closed/gate-open
   fault injections, so the SP analysis can be cross-checked against a
   topology-agnostic model. *)

type node = int

let source : node = 0
let drain : node = 1

type edge = { id : int; u : node; v : node; switch : Spnet.switch }

type t = { n_nodes : int; edges : edge list }

let create ~n_nodes edges =
  if n_nodes < 2 then invalid_arg "Graph.create: need at least terminals S and D";
  List.iter
    (fun e ->
      if e.u < 0 || e.u >= n_nodes || e.v < 0 || e.v >= n_nodes then
        invalid_arg "Graph.create: edge endpoint out of range")
    edges;
  { n_nodes; edges }

let edges t = t.edges
let n_nodes t = t.n_nodes

let inputs t =
  List.sort_uniq String.compare (List.map (fun e -> e.switch.Spnet.input) t.edges)

(* Convert an SP tree to a graph by structural recursion, allocating
   internal nodes for series junctions. *)
let of_spnet sp =
  let next = ref 2 in
  let fresh () =
    let n = !next in
    incr next;
    n
  in
  let edges = ref [] in
  let eid = ref 0 in
  let add u v switch =
    incr eid;
    edges := { id = !eid; u; v; switch } :: !edges
  in
  let rec go u v = function
    | Spnet.Switch s -> add u v s
    | Spnet.Series ts ->
        let rec chain u = function
          | [] -> ()
          | [ t ] -> go u v t
          | t :: rest ->
              let mid = fresh () in
              go u mid t;
              chain mid rest
        in
        chain u ts
    | Spnet.Parallel ts -> List.iter (go u v) ts
  in
  go source drain sp;
  { n_nodes = !next; edges = List.rev !edges }

type fault = Spnet.fault

let edge_conducts ?fault env e =
  let s = e.switch in
  let healthy () =
    let gate = if s.Spnet.negated then not (env s.Spnet.input) else env s.Spnet.input in
    match s.Spnet.polarity with Spnet.N -> gate | Spnet.P -> not gate
  in
  match fault with
  | Some f when Spnet.fault_switch_id f = s.Spnet.id -> (
      match f with
      | Spnet.Switch_open _ -> false
      | Spnet.Switch_closed _ -> true
      | Spnet.Gate_open _ -> ( match s.Spnet.polarity with Spnet.N -> false | Spnet.P -> true))
  | _ -> healthy ()

(* Union-find based connectivity between S and D under an assignment. *)
let conducts ?fault t env =
  let parent = Array.init t.n_nodes Fun.id in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  List.iter (fun e -> if edge_conducts ?fault env e then union e.u e.v) t.edges;
  find source = find drain

let env_of_row inputs row name =
  let rec idx i = function
    | [] -> invalid_arg ("Graph: unknown input " ^ name)
    | x :: rest -> if String.equal x name then i else idx (i + 1) rest
  in
  (row lsr (idx 0 inputs)) land 1 = 1

let transmission ?fault t =
  let ins = inputs t in
  let n = List.length ins in
  if n > Truth_table.max_vars then invalid_arg "Graph.transmission: too many inputs";
  let on = ref [] in
  for row = (1 lsl n) - 1 downto 0 do
    if conducts ?fault t (env_of_row ins row) then on := row :: !on
  done;
  let vars = Array.of_list ins in
  let sop = Minimize.of_minterms ~n_vars:n !on in
  Minimize.to_expr ~vars sop

let all_faults t =
  List.concat_map
    (fun e -> [ Spnet.Switch_closed e.switch.Spnet.id; Spnet.Switch_open e.switch.Spnet.id ])
    (List.sort (fun a b -> Int.compare a.switch.Spnet.id b.switch.Spnet.id) t.edges)

(* A bridge network: the classic 5-switch Wheatstone topology, which is not
   series-parallel.  Used by tests and examples. *)
let bridge ~a ~b ~c ~d ~e =
  let sw id input = { Spnet.id; input; negated = false; polarity = Spnet.N; r_on = Spnet.default_r_on } in
  let m1 = 2 and m2 = 3 in
  create ~n_nodes:4
    [
      { id = 1; u = source; v = m1; switch = sw 1 a };
      { id = 2; u = source; v = m2; switch = sw 2 b };
      { id = 3; u = m1; v = drain; switch = sw 3 c };
      { id = 4; u = m2; v = drain; switch = sw 4 d };
      { id = 5; u = m1; v = m2; switch = sw 5 e };
    ]
