lib/util/prng.mli:
