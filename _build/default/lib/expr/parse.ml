(* Recursive-descent parser for the paper's expression syntax:

     expr   ::= term ('+' term)*
     term   ::= factor ('*' factor)*
     factor ::= '!' factor | ident | '0' | '1' | '(' expr ')'

   Identifiers are [A-Za-z_][A-Za-z0-9_]*.  Used both standalone and by the
   cell-description parser in [Dynmos_cell]. *)

exception Error of { pos : int; message : string }

let error pos message = raise (Error { pos; message })

type token = Ident of string | Star | Plus | Caret | Bang | Lparen | Rparen | Zero | One

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = '*' then (toks := (Star, !i) :: !toks; incr i)
    else if c = '+' then (toks := (Plus, !i) :: !toks; incr i)
    else if c = '^' then (toks := (Caret, !i) :: !toks; incr i)
    else if c = '!' || c = '/' then (toks := (Bang, !i) :: !toks; incr i)
    else if c = '(' then (toks := (Lparen, !i) :: !toks; incr i)
    else if c = ')' then (toks := (Rparen, !i) :: !toks; incr i)
    else if c = '0' then (toks := (Zero, !i) :: !toks; incr i)
    else if c = '1' then (toks := (One, !i) :: !toks; incr i)
    else if is_ident_start c then begin
      let start = !i in
      while !i < n && is_ident_char s.[!i] do incr i done;
      toks := (Ident (String.sub s start (!i - start)), start) :: !toks
    end
    else error !i (Printf.sprintf "unexpected character %C" c)
  done;
  List.rev !toks

type state = { mutable rest : (token * int) list; len : int }

let peek st = match st.rest with [] -> None | (t, p) :: _ -> Some (t, p)

let advance st = match st.rest with [] -> () | _ :: r -> st.rest <- r

let rec parse_or st =
  let t = parse_xor st in
  match peek st with
  | Some (Plus, _) ->
      advance st;
      let rest = parse_or st in
      Expr.or_ [ t; rest ]
  | _ -> t

and parse_xor st =
  let t = parse_and st in
  match peek st with
  | Some (Caret, _) ->
      advance st;
      let rest = parse_xor st in
      Expr.xor t rest
  | _ -> t

and parse_and st =
  let f = parse_factor st in
  match peek st with
  | Some (Star, _) ->
      advance st;
      let rest = parse_and st in
      Expr.and_ [ f; rest ]
  | _ -> f

and parse_factor st =
  match peek st with
  | Some (Bang, _) ->
      advance st;
      Expr.not_ (parse_factor st)
  | Some (Ident v, _) ->
      advance st;
      Expr.var v
  | Some (Zero, _) ->
      advance st;
      Expr.false_
  | Some (One, _) ->
      advance st;
      Expr.true_
  | Some (Lparen, _) ->
      advance st;
      let e = parse_or st in
      (match peek st with
      | Some (Rparen, _) -> advance st
      | Some (_, p) -> error p "expected ')'"
      | None -> error st.len "unexpected end of input, expected ')'");
      e
  | Some (_, p) -> error p "expected an identifier, constant, '!' or '('"
  | None -> error st.len "unexpected end of input"

let expr s =
  let st = { rest = tokenize s; len = String.length s } in
  let e = parse_or st in
  match peek st with
  | None -> e
  | Some (_, p) -> error p "trailing input after expression"

let expr_opt s = match expr s with e -> Some e | exception Error _ -> None
