lib/expr/expr.ml: Bool Fmt List Set String
