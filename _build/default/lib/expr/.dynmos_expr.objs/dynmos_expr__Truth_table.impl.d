lib/expr/truth_table.ml: Array Bytes Char Expr Fmt Hashtbl Set Stdlib String
