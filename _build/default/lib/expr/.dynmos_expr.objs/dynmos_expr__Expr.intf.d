lib/expr/expr.mli: Fmt
