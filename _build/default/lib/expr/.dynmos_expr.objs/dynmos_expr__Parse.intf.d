lib/expr/parse.mli: Expr
