lib/expr/cube.mli: Expr
