lib/expr/truth_table.mli: Expr Fmt
