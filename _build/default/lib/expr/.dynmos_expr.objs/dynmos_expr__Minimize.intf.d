lib/expr/minimize.mli: Cube Expr Truth_table
