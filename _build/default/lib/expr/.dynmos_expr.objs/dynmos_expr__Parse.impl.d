lib/expr/parse.ml: Expr List Printf String
