lib/expr/minimize.ml: Array Bytes Char Cube Expr Hashtbl Int List Option Set Stdlib String Truth_table
