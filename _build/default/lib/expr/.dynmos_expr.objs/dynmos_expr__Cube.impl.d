lib/expr/cube.ml: Array Expr Int List String
