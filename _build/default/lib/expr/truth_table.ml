(* Dense truth tables.

   A table holds one bit per input row; variable [vars.(i)] is bit [i] of
   the row index.  Cell functions in this project have at most a dozen or so
   inputs, so dense tables are both the simplest and the fastest complete
   representation: semantic equality, ON-set counting, weighted probability
   and fault-detection counting are all linear scans. *)

let max_vars = 22

type t = { vars : string array; bits : Bytes.t }

exception Too_many_vars of int

let n_vars t = Array.length t.vars
let n_rows t = 1 lsl n_vars t
let vars t = t.vars

let check_vars vars =
  let n = Array.length vars in
  if n > max_vars then raise (Too_many_vars n);
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun v ->
      if Hashtbl.mem seen v then invalid_arg ("Truth_table: duplicate variable " ^ v);
      Hashtbl.add seen v ())
    vars

let get t row = Char.code (Bytes.unsafe_get t.bits (row lsr 3)) land (1 lsl (row land 7)) <> 0

let set t row b =
  let i = row lsr 3 in
  let mask = 1 lsl (row land 7) in
  let cur = Char.code (Bytes.get t.bits i) in
  Bytes.set t.bits i (Char.chr (if b then cur lor mask else cur land lnot mask))

let create vars f =
  check_vars vars;
  let n = Array.length vars in
  let rows = 1 lsl n in
  let t = { vars; bits = Bytes.make ((rows + 7) / 8) '\000' } in
  for row = 0 to rows - 1 do
    set t row (f row)
  done;
  t

let var_index t v =
  let rec find i =
    if i >= Array.length t.vars then None
    else if String.equal t.vars.(i) v then Some i
    else find (i + 1)
  in
  find 0

let of_expr ?vars e =
  let vars =
    match vars with Some vs -> vs | None -> Array.of_list (Expr.support e)
  in
  check_vars vars;
  let index = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace index v i) vars;
  let lookup row v =
    match Hashtbl.find_opt index v with
    | Some i -> (row lsr i) land 1 = 1
    | None -> invalid_arg ("Truth_table.of_expr: free variable " ^ v)
  in
  create vars (fun row -> Expr.eval (lookup row) e)

let equal a b =
  Array.length a.vars = Array.length b.vars
  && Array.for_all2 String.equal a.vars b.vars
  && Bytes.equal a.bits b.bits

let equal_exprs ?vars a b =
  let vars =
    match vars with
    | Some vs -> vs
    | None ->
        let module S = Set.Make (String) in
        Array.of_list
          (S.elements (S.union (S.of_list (Expr.support a)) (S.of_list (Expr.support b))))
  in
  equal (of_expr ~vars a) (of_expr ~vars b)

let count_true t =
  let n = ref 0 in
  for row = 0 to n_rows t - 1 do
    if get t row then incr n
  done;
  !n

let is_const t =
  let c = count_true t in
  if c = 0 then Some false else if c = n_rows t then Some true else None

let minterms t =
  let acc = ref [] in
  for row = n_rows t - 1 downto 0 do
    if get t row then acc := row :: !acc
  done;
  !acc

let map2 op a b =
  if not (Array.length a.vars = Array.length b.vars && Array.for_all2 String.equal a.vars b.vars)
  then invalid_arg "Truth_table.map2: variable orderings differ";
  create a.vars (fun row -> op (get a row) (get b row))

let xor_tables = map2 ( <> )
let and_tables = map2 ( Stdlib.( && ) )
let or_tables = map2 ( Stdlib.( || ) )
let not_table t = create t.vars (fun row -> not (get t row))

let prob ?weights t =
  let n = n_vars t in
  let w =
    match weights with
    | Some w ->
        if Array.length w <> n then invalid_arg "Truth_table.prob: weight arity";
        w
    | None -> Array.make n 0.5
  in
  let total = ref 0.0 in
  for row = 0 to n_rows t - 1 do
    if get t row then begin
      let p = ref 1.0 in
      for i = 0 to n - 1 do
        p := !p *. (if (row lsr i) land 1 = 1 then w.(i) else 1.0 -. w.(i))
      done;
      total := !total +. !p
    end
  done;
  !total

let detection_prob ?weights ~good ~faulty () = prob ?weights (xor_tables good faulty)

let pp ppf t =
  let n = n_vars t in
  Fmt.pf ppf "%s | f@." (String.concat " " (Array.to_list t.vars));
  for row = 0 to n_rows t - 1 do
    for i = 0 to n - 1 do
      Fmt.pf ppf "%d " ((row lsr i) land 1)
    done;
    Fmt.pf ppf "| %d@." (if get t row then 1 else 0)
  done
