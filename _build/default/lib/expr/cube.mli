(** Cubes (product terms) over an indexed variable set.

    A cube is a pair of bit masks: [care] marks variables appearing as
    literals, [value] their polarities.  Used by the Quine-McCluskey
    minimizer and by fault-simulation pattern expansion. *)

type t

val universe : t
(** The cube with no literals (constant true / all minterms). *)

val make : care:int -> value:int -> t
(** Build a cube; [value] bits outside [care] are cleared. *)

val of_minterm : n_vars:int -> int -> t
(** Full cube for one minterm. *)

val care : t -> int
val value : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int

val n_literals : t -> int

val covers : t -> int -> bool
(** Does the cube contain the given minterm? *)

val subsumes : t -> t -> bool
(** [subsumes a b] iff [a] covers every minterm of [b]. *)

val combine : t -> t -> t option
(** Quine-McCluskey merge: defined iff the cubes have the same literals and
    differ in exactly one polarity; the result drops that variable. *)

val literals : t -> (int * bool) list
(** [(index, polarity)] pairs, ascending by index. *)

val eval : t -> int -> bool
(** Alias of {!covers}. *)

val to_expr : vars:string array -> t -> Expr.t

val to_string : vars:string array -> t -> string
(** E.g. ["a*!b*c"]; the empty cube prints as ["1"]. *)

val minterms : n_vars:int -> t -> int list
(** All minterms covered by the cube, ascending. *)

val popcount : int -> int
(** Bit-population count (exposed for reuse). *)
