(** Dense truth tables over an explicit variable ordering.

    Variable [vars.(i)] is bit [i] of the row index (variable 0 is the least
    significant bit).  Tables are the semantic workhorse for cell-sized
    functions: equality, ON-set counting, weighted signal probability and
    fault-detection probability are linear scans over at most [2^max_vars]
    rows. *)

type t

exception Too_many_vars of int

val max_vars : int
(** Upper bound on the number of variables (22). *)

val create : string array -> (int -> bool) -> t
(** [create vars f] tabulates [f] over all [2^n] row indices.
    @raise Too_many_vars if the arity exceeds {!max_vars}
    @raise Invalid_argument on duplicate variable names *)

val of_expr : ?vars:string array -> Expr.t -> t
(** Tabulate an expression.  When [vars] is omitted, the expression's sorted
    support is used.  When given, it must contain every free variable. *)

val vars : t -> string array
val n_vars : t -> int
val n_rows : t -> int

val get : t -> int -> bool
(** Value at a row index. *)

val var_index : t -> string -> int option
(** Position of a variable in the ordering. *)

val equal : t -> t -> bool
(** Same ordering and same function. *)

val equal_exprs : ?vars:string array -> Expr.t -> Expr.t -> bool
(** Semantic equality of two expressions over the union of their supports
    (or over [vars] when provided). *)

val count_true : t -> int
(** ON-set size. *)

val is_const : t -> bool option
(** [Some b] if the function is constantly [b]. *)

val minterms : t -> int list
(** Ascending list of ON-set row indices. *)

val xor_tables : t -> t -> t
val and_tables : t -> t -> t
val or_tables : t -> t -> t
val not_table : t -> t

val prob : ?weights:float array -> t -> float
(** Probability that the function is true when input [i] is 1 independently
    with probability [weights.(i)] (default 0.5 each).  Exact. *)

val detection_prob : ?weights:float array -> good:t -> faulty:t -> unit -> float
(** Probability that a random vector distinguishes [good] from [faulty]:
    the weighted measure of the XOR of the two tables. *)

val pp : t Fmt.t
(** Multi-line tabular dump (for debugging and small demos). *)
