(* Boolean expressions.

   This is the term language shared by the whole project: switching-network
   transmission functions, cell logic functions, faulty functions produced by
   the fault mapper, and the functions manipulated by PROTEST are all values
   of [Expr.t].  Semantic questions (equality, satisfiability, probability)
   are answered by [Truth_table]; this module only provides the syntax,
   smart constructors performing cheap local simplification, evaluation and
   substitution. *)

type t =
  | Const of bool
  | Var of string
  | Not of t
  | And of t list
  | Or of t list
  | Xor of t * t

let true_ = Const true
let false_ = Const false
let var v = Var v

let not_ = function
  | Const b -> Const (not b)
  | Not e -> e
  | e -> Not e

(* [and_]/[or_] flatten nested conjunctions/disjunctions and apply the unit
   and absorbing element laws.  They do not sort or deduplicate: syntactic
   forms are kept close to what the user wrote so that printed functions are
   recognizable; canonical comparisons go through truth tables. *)
let and_ es =
  let rec flatten acc = function
    | [] -> Some (List.rev acc)
    | Const false :: _ -> None
    | Const true :: rest -> flatten acc rest
    | And inner :: rest -> (
        match flatten acc inner with
        | None -> None
        | Some acc' -> flatten (List.rev acc') rest)
    | e :: rest -> flatten (e :: acc) rest
  in
  match flatten [] es with
  | None -> Const false
  | Some [] -> Const true
  | Some [ e ] -> e
  | Some es -> And es

let or_ es =
  let rec flatten acc = function
    | [] -> Some (List.rev acc)
    | Const true :: _ -> None
    | Const false :: rest -> flatten acc rest
    | Or inner :: rest -> (
        match flatten acc inner with
        | None -> None
        | Some acc' -> flatten (List.rev acc') rest)
    | e :: rest -> flatten (e :: acc) rest
  in
  match flatten [] es with
  | None -> Const true
  | Some [] -> Const false
  | Some [ e ] -> e
  | Some es -> Or es

let xor a b =
  match (a, b) with
  | Const false, e | e, Const false -> e
  | Const true, e | e, Const true -> not_ e
  | a, b -> Xor (a, b)

let ( && ) a b = and_ [ a; b ]
let ( || ) a b = or_ [ a; b ]

let rec eval env = function
  | Const b -> b
  | Var v -> env v
  | Not e -> not (eval env e)
  | And es -> List.for_all (eval env) es
  | Or es -> List.exists (eval env) es
  | Xor (a, b) -> eval env a <> eval env b

module String_set = Set.Make (String)

let support e =
  let rec go acc = function
    | Const _ -> acc
    | Var v -> String_set.add v acc
    | Not e -> go acc e
    | And es | Or es -> List.fold_left go acc es
    | Xor (a, b) -> go (go acc a) b
  in
  String_set.elements (go String_set.empty e)

let rec subst f = function
  | Const b -> Const b
  | Var v -> ( match f v with Some e -> e | None -> Var v)
  | Not e -> not_ (subst f e)
  | And es -> and_ (List.map (subst f) es)
  | Or es -> or_ (List.map (subst f) es)
  | Xor (a, b) -> xor (subst f a) (subst f b)

let cofactor v value e = subst (fun w -> if String.equal w v then Some (Const value) else None) e

let rec size = function
  | Const _ | Var _ -> 1
  | Not e -> 1 + size e
  | And es | Or es -> List.fold_left (fun n e -> n + size e) 1 es
  | Xor (a, b) -> 1 + size a + size b

let rec depth = function
  | Const _ | Var _ -> 0
  | Not e -> 1 + depth e
  | And es | Or es -> 1 + List.fold_left (fun n e -> max n (depth e)) 0 es
  | Xor (a, b) -> 1 + max (depth a) (depth b)

(* Printing follows the paper's cell-description syntax: [*] for AND, [+]
   for OR, [!] for NOT, [(…)] where precedence requires.  Precedence levels:
   Or < Xor < And < Not/atom. *)
let pp ppf e =
  let rec go level ppf e =
    let paren lvl body =
      if level > lvl then Fmt.pf ppf "(%t)" body else body ppf
    in
    match e with
    | Const true -> Fmt.string ppf "1"
    | Const false -> Fmt.string ppf "0"
    | Var v -> Fmt.string ppf v
    | Not e -> Fmt.pf ppf "!%a" (go 3) e
    | And es ->
        paren 2 (fun ppf -> Fmt.(list ~sep:(any "*") (go 2)) ppf es)
    | Xor (a, b) -> paren 1 (fun ppf -> Fmt.pf ppf "%a^%a" (go 2) a (go 2) b)
    | Or es ->
        paren 0 (fun ppf -> Fmt.(list ~sep:(any "+") (go 1)) ppf es)
  in
  go 0 ppf e

let to_string e = Fmt.str "%a" pp e

let rec compare a b =
  match (a, b) with
  | Const x, Const y -> Bool.compare x y
  | Const _, _ -> -1
  | _, Const _ -> 1
  | Var x, Var y -> String.compare x y
  | Var _, _ -> -1
  | _, Var _ -> 1
  | Not x, Not y -> compare x y
  | Not _, _ -> -1
  | _, Not _ -> 1
  | And xs, And ys -> compare_lists xs ys
  | And _, _ -> -1
  | _, And _ -> 1
  | Or xs, Or ys -> compare_lists xs ys
  | Or _, _ -> -1
  | _, Or _ -> 1
  | Xor (a1, b1), Xor (a2, b2) ->
      let c = compare a1 a2 in
      if c <> 0 then c else compare b1 b2

and compare_lists xs ys =
  match (xs, ys) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | x :: xs, y :: ys ->
      let c = compare x y in
      if c <> 0 then c else compare_lists xs ys

let equal a b = compare a b = 0
