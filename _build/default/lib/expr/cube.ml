(* Cubes (product terms) over an indexed variable set.

   A cube is a pair of bit masks: [care] marks the variables that appear as
   literals, [value] gives each such literal's polarity.  Bits of [value]
   outside [care] are kept at zero so that structural equality coincides
   with semantic equality of cubes.  This representation supports the
   Quine-McCluskey combining step (same care set, values differing in
   exactly one bit) with a couple of word operations. *)

type t = { care : int; value : int }

let universe = { care = 0; value = 0 }

let make ~care ~value = { care; value = value land care }

let of_minterm ~n_vars row =
  let mask = (1 lsl n_vars) - 1 in
  { care = mask; value = row land mask }

let care t = t.care
let value t = t.value
let equal a b = a.care = b.care && a.value = b.value
let compare a b =
  let c = Int.compare a.care b.care in
  if c <> 0 then c else Int.compare a.value b.value

let popcount x =
  let rec go acc x = if x = 0 then acc else go (acc + (x land 1)) (x lsr 1) in
  go 0 x

let n_literals t = popcount t.care

let covers t row = row land t.care = t.value

let subsumes a b =
  (* [a] covers every minterm of [b]: a's literals are a subset of b's and
     agree in polarity. *)
  a.care land b.care = a.care && b.value land a.care = a.value

let combine a b =
  if a.care <> b.care then None
  else
    let diff = a.value lxor b.value in
    if diff <> 0 && diff land (diff - 1) = 0 then
      Some { care = a.care land lnot diff; value = a.value land lnot diff }
    else None

let literals t =
  let rec go i acc =
    if 1 lsl i > t.care then List.rev acc
    else if t.care land (1 lsl i) <> 0 then
      go (i + 1) ((i, t.value land (1 lsl i) <> 0) :: acc)
    else go (i + 1) acc
  in
  go 0 []

let eval t row = covers t row

let to_expr ~vars t =
  match literals t with
  | [] -> Expr.true_
  | lits ->
      Expr.and_
        (List.map
           (fun (i, pos) -> if pos then Expr.var vars.(i) else Expr.not_ (Expr.var vars.(i)))
           lits)

let to_string ~vars t =
  match literals t with
  | [] -> "1"
  | lits ->
      String.concat "*"
        (List.map (fun (i, pos) -> if pos then vars.(i) else "!" ^ vars.(i)) lits)

let minterms ~n_vars t =
  (* Enumerate the free (don't-care) positions of the cube. *)
  let free = ref [] in
  for i = n_vars - 1 downto 0 do
    if t.care land (1 lsl i) = 0 then free := i :: !free
  done;
  let free = Array.of_list !free in
  let k = Array.length free in
  let acc = ref [] in
  for c = (1 lsl k) - 1 downto 0 do
    let row = ref t.value in
    for j = 0 to k - 1 do
      if (c lsr j) land 1 = 1 then row := !row lor (1 lsl free.(j))
    done;
    acc := !row :: !acc
  done;
  !acc
