(** Two-level minimization to "minimum disjunctive form".

    Quine-McCluskey prime-implicant generation followed by an exact
    branch-and-bound cover (Petrick-style) up to a size threshold, and a
    greedy set cover beyond it.  Covers minimize (#cubes, #literals) in
    lexicographic order with deterministic tie-breaking, so printed forms
    are stable — this is what lets the paper's Section-5 fault table be
    reproduced verbatim. *)

type sop = Cube.t list
(** A sum of products; the empty list is constant 0, [[Cube.universe]] is
    constant 1. *)

val exact_cover_limit : int ref
(** Maximum number of non-essential primes for which the exact cover search
    runs; larger charts fall back to greedy covering. *)

val exact_cover_minterm_limit : int ref
(** Companion bound on the number of uncovered minterms for the exact
    search. *)

val primes_of_minterms : n_vars:int -> int list -> Cube.t list
(** All prime implicants of the function given by its ON-set. *)

val of_minterms : n_vars:int -> int list -> sop
(** Minimum disjunctive form of the function given by its ON-set. *)

val of_table : Truth_table.t -> sop

val of_expr : ?vars:string array -> Expr.t -> sop * string array
(** Minimize an expression; returns the cover and the variable ordering the
    cube indices refer to. *)

val to_expr : vars:string array -> sop -> Expr.t

val to_string : vars:string array -> sop -> string
(** E.g. ["a*b+a*c+e"]; constant functions print as ["0"] / ["1"]. *)

val minimize_to_string : ?vars:string array -> Expr.t -> string
(** Convenience: minimize and print in one step. *)

val verify : n_vars:int -> sop -> int list -> bool
(** Check that a cover is exactly the given ON-set (used by tests). *)
