(** Parser for the paper's expression syntax.

    Grammar: [expr ::= xterm ('+' xterm)*], [xterm ::= term ('^' term)*],
    [term ::= factor ('*' factor)*],
    [factor ::= '!' factor | ident | '0' | '1' | '(' expr ')'].  ['/'] is
    accepted as a synonym for ['!']. *)

exception Error of { pos : int; message : string }
(** Raised on malformed input with a byte offset. *)

val expr : string -> Expr.t
(** Parse a complete expression.  @raise Error on malformed input. *)

val expr_opt : string -> Expr.t option
(** Exception-free variant. *)
