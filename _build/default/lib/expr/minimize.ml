(* Two-level minimization: Quine-McCluskey prime generation followed by an
   exact (Petrick-style branch and bound) or greedy cover.

   The paper's fault library stores every faulty function in "minimum
   disjunctive form"; this module produces exactly that, deterministically,
   so the Section-5 table of the paper can be reproduced character for
   character.  Exact covering is used up to a configurable problem size
   (cell functions are tiny), greedy set cover beyond it. *)

type sop = Cube.t list

let exact_cover_limit = ref 22

(* --- Prime implicant generation ------------------------------------- *)

module Cube_set = Set.Make (Cube)

let primes_of_minterms ~n_vars minterms =
  let current = ref (List.sort_uniq Cube.compare (List.map (Cube.of_minterm ~n_vars) minterms)) in
  let primes = ref Cube_set.empty in
  let continue = ref (!current <> []) in
  while !continue do
    (* Group cubes by (care mask, popcount of value) so only candidate pairs
       are tried; two cubes combine only within adjacent popcount groups of
       the same care mask. *)
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun c ->
        let key = (Cube.care c, Cube.popcount (Cube.value c)) in
        Hashtbl.replace tbl key (c :: (Option.value ~default:[] (Hashtbl.find_opt tbl key))))
      !current;
    let combined = Hashtbl.create 64 in
    let next = ref Cube_set.empty in
    List.iter
      (fun c ->
        let care = Cube.care c in
        let ones = Cube.popcount (Cube.value c) in
        let partners = Option.value ~default:[] (Hashtbl.find_opt tbl (care, ones + 1)) in
        List.iter
          (fun d ->
            match Cube.combine c d with
            | Some m ->
                Hashtbl.replace combined c ();
                Hashtbl.replace combined d ();
                next := Cube_set.add m !next
            | None -> ())
          partners)
      !current;
    List.iter (fun c -> if not (Hashtbl.mem combined c) then primes := Cube_set.add c !primes) !current;
    current := Cube_set.elements !next;
    continue := !current <> []
  done;
  Cube_set.elements !primes

(* --- Covering -------------------------------------------------------- *)

(* Branch and bound over the prime implicant chart.  Cost of a cover is
   (number of cubes, total literals); we search for the lexicographically
   least cost and break remaining ties by the sorted cube list itself, so
   results are deterministic. *)

let cover_cost cubes =
  (List.length cubes, List.fold_left (fun n c -> n + Cube.n_literals c) 0 cubes)

let better a b =
  let ca, cb = (cover_cost a, cover_cost b) in
  if ca <> cb then Stdlib.compare ca cb < 0
  else Stdlib.compare (List.sort Cube.compare a) (List.sort Cube.compare b) < 0

let exact_cover primes minterms =
  let primes = Array.of_list primes in
  let n_primes = Array.length primes in
  let covers_of_minterm =
    List.map
      (fun m ->
        let who = ref [] in
        for i = n_primes - 1 downto 0 do
          if Cube.covers primes.(i) m then who := i :: !who
        done;
        (m, !who))
      minterms
  in
  let best = ref None in
  let rec go chosen uncovered =
    (* A partial cover with [>= nb] cubes and minterms still uncovered can
       only finish with more cubes than the incumbent: prune. *)
    let prune =
      match (!best, uncovered) with
      | None, _ | _, [] -> false
      | Some b, _ :: _ ->
          let nb, _ = cover_cost b in
          List.length chosen >= nb
    in
    if prune then ()
    else
      match uncovered with
      | [] ->
          let cand = List.map (fun i -> primes.(i)) chosen in
          let is_better = match !best with None -> true | Some b -> better cand b in
          if is_better then best := Some cand
      | _ ->
          (* Branch on a minterm with the fewest covering primes. *)
          let m, who =
            List.fold_left
              (fun ((_, w) as acc) ((_, w') as x) ->
                if List.length w' < List.length w then x else acc)
              (List.hd uncovered) (List.tl uncovered)
          in
          ignore m;
          List.iter
            (fun i ->
              let remaining =
                List.filter (fun (m', _) -> not (Cube.covers primes.(i) m')) uncovered
              in
              go (i :: chosen) remaining)
            who
  in
  go [] covers_of_minterm;
  match !best with Some b -> b | None -> []

let greedy_cover primes minterms =
  let remaining = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace remaining m ()) minterms;
  let chosen = ref [] in
  let primes = List.sort Cube.compare primes in
  while Hashtbl.length remaining > 0 do
    let gain c =
      Hashtbl.fold (fun m () acc -> if Cube.covers c m then acc + 1 else acc) remaining 0
    in
    let best =
      List.fold_left
        (fun acc c ->
          match acc with
          | None -> if gain c > 0 then Some (c, gain c) else None
          | Some (_, g) -> if gain c > g then Some (c, gain c) else acc)
        None primes
    in
    match best with
    | None -> Hashtbl.reset remaining (* unreachable if primes cover all minterms *)
    | Some (c, _) ->
        chosen := c :: !chosen;
        let hit = Hashtbl.fold (fun m () acc -> if Cube.covers c m then m :: acc else acc) remaining [] in
        List.iter (Hashtbl.remove remaining) hit
  done;
  !chosen

(* --- Large-arity fallback: greedy prime expansion --------------------- *)

(* Quine-McCluskey enumerates every implicant, which explodes past ~10
   variables.  For wide functions we instead expand each yet-uncovered
   minterm into a prime directly (the espresso "expand" step): literals
   are dropped greedily, left to right, as long as the grown cube stays
   inside the ON-set.  The result is a deterministic prime and irredundant
   cover, not guaranteed minimum. *)
let expand_cover ~n_vars minterms =
  let onset = Bytes.make (((1 lsl n_vars) + 7) / 8) '\000' in
  let set_bit m =
    Bytes.set onset (m lsr 3) (Char.chr (Char.code (Bytes.get onset (m lsr 3)) lor (1 lsl (m land 7))))
  in
  let get_bit m = Char.code (Bytes.get onset (m lsr 3)) land (1 lsl (m land 7)) <> 0 in
  List.iter set_bit minterms;
  let inside cube = List.for_all get_bit (Cube.minterms ~n_vars cube) in
  let covered = Hashtbl.create 256 in
  let cover = ref [] in
  List.iter
    (fun m ->
      if not (Hashtbl.mem covered m) then begin
        let cube = ref (Cube.of_minterm ~n_vars m) in
        for i = 0 to n_vars - 1 do
          let cand = Cube.make ~care:(Cube.care !cube land lnot (1 lsl i)) ~value:(Cube.value !cube) in
          if inside cand then cube := cand
        done;
        List.iter (fun m' -> Hashtbl.replace covered m' ()) (Cube.minterms ~n_vars !cube);
        cover := !cube :: !cover
      end)
    minterms;
  (* Drop cubes made redundant by later expansions.  Removal must be
     sequential: removing two mutually-redundant cubes at once would
     uncover minterms. *)
  let cubes = ref (List.rev !cover) in
  let changed = ref true in
  while !changed do
    changed := false;
    let rec scan kept = function
      | [] -> List.rev kept
      | c :: rest ->
          let others = List.rev_append kept rest in
          if
            List.for_all
              (fun m -> List.exists (fun d -> Cube.covers d m) others)
              (Cube.minterms ~n_vars c)
          then begin
            changed := true;
            scan kept rest
          end
          else scan (c :: kept) rest
    in
    cubes := scan [] !cubes
  done;
  List.sort Cube.compare !cubes

(* --- Entry points ----------------------------------------------------- *)

let exact_cover_minterm_limit = ref 64
let qm_var_limit = ref 9

let of_minterms ~n_vars minterms =
  match minterms with
  | [] -> []
  | _ ->
      let all = 1 lsl n_vars in
      if List.length minterms = all then [ Cube.universe ]
      else if n_vars > !qm_var_limit then expand_cover ~n_vars minterms
      else
        let primes = Array.of_list (primes_of_minterms ~n_vars minterms) in
        let n_primes = Array.length primes in
        (* One pass over the chart: per minterm, the list of covering
           primes.  A prime covering some singly-covered minterm is
           essential. *)
        let coverers =
          List.map
            (fun m ->
              let who = ref [] in
              for i = n_primes - 1 downto 0 do
                if Cube.covers primes.(i) m then who := i :: !who
              done;
              (m, !who))
            minterms
        in
        let is_essential = Array.make n_primes false in
        List.iter
          (fun (_, who) -> match who with [ i ] -> is_essential.(i) <- true | _ -> ())
          coverers;
        let essential =
          List.filteri (fun i _ -> is_essential.(i)) (Array.to_list primes)
        in
        let uncovered =
          List.filter_map
            (fun (m, who) -> if List.exists (fun i -> is_essential.(i)) who then None else Some m)
            coverers
        in
        let rest_primes =
          List.filteri (fun i _ -> not is_essential.(i)) (Array.to_list primes)
        in
        let extra =
          if uncovered = [] then []
          else if
            List.length rest_primes <= !exact_cover_limit
            && List.length uncovered <= !exact_cover_minterm_limit
          then exact_cover rest_primes uncovered
          else greedy_cover rest_primes uncovered
        in
        List.sort Cube.compare (essential @ extra)

let of_table tt = of_minterms ~n_vars:(Truth_table.n_vars tt) (Truth_table.minterms tt)

let of_expr ?vars e =
  let tt = Truth_table.of_expr ?vars e in
  (of_table tt, Truth_table.vars tt)

let to_expr ~vars sop =
  match sop with [] -> Expr.false_ | _ -> Expr.or_ (List.map (Cube.to_expr ~vars) sop)

let to_string ~vars sop =
  match sop with
  | [] -> "0"
  | _ ->
      let key c =
        (* Order terms by their literal index sequence so the printed form is
           stable and matches the paper's left-to-right variable order. *)
        List.map fst (Cube.literals c)
      in
      let sorted = List.sort (fun a b -> Stdlib.compare (key a, Cube.value a) (key b, Cube.value b)) sop in
      String.concat "+" (List.map (Cube.to_string ~vars) sorted)

let minimize_to_string ?vars e =
  let sop, vars = of_expr ?vars e in
  to_string ~vars sop

let verify ~n_vars sop minterms =
  let covered m = List.exists (fun c -> Cube.covers c m) sop in
  let module IS = Set.Make (Int) in
  let on = IS.of_list minterms in
  let ok = ref true in
  for m = 0 to (1 lsl n_vars) - 1 do
    if covered m <> IS.mem m on then ok := false
  done;
  !ok
