open Dynmos_cell
open Dynmos_sim
open Dynmos_faultsim
open Dynmos_bist
open Dynmos_circuits

(* Tests for the self-test hardware models: LFSR maximality, MISR
   signatures, BILBO modes, nonlinear FSRs, weighted generation and
   whole-circuit self-test sessions (including at-speed delay-fault
   detection). *)

let check = Alcotest.(check bool)
let check_i = Alcotest.(check int)

(* --- LFSR ----------------------------------------------------------------- *)

let test_lfsr_periods () =
  (* Maximal length 2^w - 1 for every width up to 16, both forms. *)
  for w = 2 to 16 do
    let fib = Lfsr.create ~form:Lfsr.Fibonacci w in
    check_i (Fmt.str "fibonacci w=%d" w) ((1 lsl w) - 1) (Lfsr.period fib);
    let gal = Lfsr.create ~form:Lfsr.Galois w in
    check_i (Fmt.str "galois w=%d" w) ((1 lsl w) - 1) (Lfsr.period gal)
  done

let test_lfsr_state_coverage () =
  (* A maximal LFSR visits every non-zero state exactly once per period. *)
  let l = Lfsr.create 6 in
  let seen = Hashtbl.create 64 in
  for _ = 1 to 63 do
    Hashtbl.replace seen (Lfsr.state l) ();
    ignore (Lfsr.step l)
  done;
  check_i "63 distinct states" 63 (Hashtbl.length seen);
  check "zero never visited" false (Hashtbl.mem seen 0)

let test_lfsr_guards () =
  let fails f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check "zero seed" true (fails (fun () -> Lfsr.create ~seed:0 4));
  check "width 1" true (fails (fun () -> Lfsr.create 1));
  check "width 33" true (fails (fun () -> Lfsr.create 33));
  check "bits bound" true (fails (fun () -> Lfsr.bits (Lfsr.create 4) 5))

let test_lfsr_patterns () =
  let l = Lfsr.create ~seed:0b0101 4 in
  let p = Lfsr.next_pattern l 4 in
  check "pattern is the state" true (p = [| true; false; true; false |]);
  check "state advanced" true (Lfsr.state l <> 0b0101)

let test_lfsr_balance () =
  (* Over a full period every bit is 1 in 2^(w-1) of the states. *)
  let l = Lfsr.create 8 in
  let ones = Array.make 8 0 in
  for _ = 1 to 255 do
    let bits = Lfsr.bits l 8 in
    Array.iteri (fun i b -> if b then ones.(i) <- ones.(i) + 1) bits;
    ignore (Lfsr.step l)
  done;
  Array.iteri (fun i c -> check_i (Fmt.str "bit %d ones" i) 128 c) ones

(* --- MISR ------------------------------------------------------------------ *)

let test_misr_signature () =
  let responses = List.init 20 (fun i -> [| i mod 2 = 0; i mod 3 = 0 |]) in
  let m1 = Misr.create 8 in
  let s1 = Misr.run m1 responses in
  let m2 = Misr.create 8 in
  let s2 = Misr.run m2 responses in
  check "deterministic" true (s1 = s2);
  (* a single flipped response bit changes the signature *)
  let corrupted =
    List.mapi (fun i r -> if i = 7 then [| not r.(0); r.(1) |] else r) responses
  in
  let m3 = Misr.create 8 in
  check "sensitive" true (Misr.run m3 corrupted <> s1);
  Alcotest.(check (float 1e-12)) "aliasing bound" (1.0 /. 256.0) (Misr.aliasing_bound ~width:8)

let test_misr_aliasing_rate () =
  (* Random error sequences alias with probability about 2^-width. *)
  let open Dynmos_util in
  let prng = Prng.create 13 in
  let width = 8 in
  let trials = 3000 in
  let aliased = ref 0 in
  for _ = 1 to trials do
    let responses = List.init 12 (fun _ -> [| Prng.bool prng; Prng.bool prng |]) in
    let errors = List.init 12 (fun _ -> [| Prng.bernoulli prng 0.2; Prng.bernoulli prng 0.2 |]) in
    let has_error = List.exists (fun e -> e.(0) || e.(1)) errors in
    if has_error then begin
      let good = Misr.run (Misr.create width) responses in
      let bad =
        Misr.run (Misr.create width)
          (List.map2 (fun r e -> [| r.(0) <> e.(0); r.(1) <> e.(1) |]) responses errors)
      in
      if good = bad then incr aliased
    end
  done;
  let rate = float_of_int !aliased /. float_of_int trials in
  check "aliasing near 2^-8" true (rate < 4.0 /. 256.0)

(* --- BILBO ------------------------------------------------------------------ *)

let test_bilbo_modes () =
  check "controls 11" true (Bilbo.mode_of_controls ~b1:true ~b2:true = Bilbo.Normal);
  check "controls 00" true (Bilbo.mode_of_controls ~b1:false ~b2:false = Bilbo.Scan);
  check "controls 10" true (Bilbo.mode_of_controls ~b1:true ~b2:false = Bilbo.Prpg);
  check "controls 01" true (Bilbo.mode_of_controls ~b1:false ~b2:true = Bilbo.Misr);
  (* Normal: parallel latch *)
  let b = Bilbo.create 4 in
  Bilbo.set_mode b Bilbo.Normal;
  ignore (Bilbo.step b [| true; false; true; false |]);
  check_i "latched" 0b0101 (Bilbo.state b);
  (* Scan: shift with serial input *)
  Bilbo.set_mode b Bilbo.Scan;
  ignore (Bilbo.step b ~serial:true [||]);
  check_i "shifted" 0b1010 (Bilbo.state b);
  (* PRPG behaves like the LFSR of the same width/seed *)
  let b2 = Bilbo.create ~seed:1 4 in
  Bilbo.set_mode b2 Bilbo.Prpg;
  let seen = Hashtbl.create 16 in
  for _ = 1 to 15 do
    Hashtbl.replace seen (Bilbo.state b2) ();
    ignore (Bilbo.step b2 [||])
  done;
  check_i "PRPG maximal" 15 (Hashtbl.length seen);
  (* MISR mode: injecting data changes the state evolution *)
  let b3 = Bilbo.create ~seed:3 4 in
  Bilbo.set_mode b3 Bilbo.Misr;
  ignore (Bilbo.step b3 [| true; true; false; false |]);
  let with_data = Bilbo.state b3 in
  let b4 = Bilbo.create ~seed:3 4 in
  Bilbo.set_mode b4 Bilbo.Misr;
  ignore (Bilbo.step b4 [| false; false; false; false |]);
  check "data injected" true (with_data <> Bilbo.state b4)

let test_bilbo_scan_out () =
  let b = Bilbo.create 4 in
  Bilbo.set_state b 0b1101;
  Bilbo.set_mode b Bilbo.Scan;
  let bits = Bilbo.scan_out b in
  check "scan order LSB first" true (bits = [ true; false; true; true ])

(* --- NLFSR ------------------------------------------------------------------ *)

let test_nlfsr_de_bruijn () =
  (* The de-Bruijn modification reaches period 2^w including the zero
     state. *)
  for w = 3 to 10 do
    let n = Nlfsr.of_lfsr ~de_bruijn:true w in
    check_i (Fmt.str "de bruijn w=%d" w) (1 lsl w)
      (match Nlfsr.period n with Some p -> p | None -> -1)
  done

let test_nlfsr_linear_matches_lfsr () =
  (* Without nonlinear terms, of_lfsr reproduces the Fibonacci LFSR
     sequence. *)
  let w = 6 in
  let n = Nlfsr.of_lfsr w in
  let l = Lfsr.create ~form:Lfsr.Fibonacci w in
  let ok = ref true in
  for _ = 1 to 100 do
    if Nlfsr.state n <> Lfsr.state l then ok := false;
    ignore (Nlfsr.step n);
    ignore (Lfsr.step l)
  done;
  check "sequences equal" true !ok

let test_nlfsr_nonlinear_term () =
  (* A genuine AND term gives a different (still eventually periodic)
     sequence. *)
  let n = Nlfsr.create ~width:4 ~terms:[ [ 3 ]; [ 0; 1 ] ] ~seed:1 () in
  check "steps run" true
    (let _ = Nlfsr.step n in
     let _ = Nlfsr.step n in
     true);
  check "guards" true
    (match Nlfsr.create ~width:4 ~terms:[ [ 9 ] ] () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- Weighted generation ------------------------------------------------------ *)

let test_quantize () =
  let q = Weighted_gen.quantize ~resolution:4 [| 0.5; 0.93; 0.0; 1.0 |] in
  Alcotest.(check (float 1e-9)) "0.5 stays" 0.5 q.(0);
  Alcotest.(check (float 1e-9)) "0.93 -> 15/16" 0.9375 q.(1);
  Alcotest.(check (float 1e-9)) "0 clamped" 0.0625 q.(2);
  Alcotest.(check (float 1e-9)) "1 clamped" 0.9375 q.(3)

let test_weighted_frequencies () =
  let g = Weighted_gen.create ~resolution:4 [| 0.75; 0.25; 0.5 |] in
  let n = 8000 in
  let ones = Array.make 3 0 in
  for _ = 1 to n do
    let p = Weighted_gen.next_pattern g in
    Array.iteri (fun i b -> if b then ones.(i) <- ones.(i) + 1) p
  done;
  let freq i = float_of_int ones.(i) /. float_of_int n in
  check "w0 ~ 0.75" true (Float.abs (freq 0 -. 0.75) < 0.03);
  check "w1 ~ 0.25" true (Float.abs (freq 1 -. 0.25) < 0.03);
  check "w2 ~ 0.5" true (Float.abs (freq 2 -. 0.5) < 0.03)

(* --- Self-test sessions --------------------------------------------------------- *)

let test_selftest_detects_faults () =
  let nl = Generators.c17 ~style:`Domino () in
  let u = Faultsim.universe nl in
  let compiled = u.Faultsim.compiled in
  (* A few hundred cycles catch every detectable fault of this small
     circuit through the signature. *)
  let all_caught =
    Array.for_all
      (fun site ->
        (Selftest.test_fault ~seed:5 compiled ~n_cycles:300 site).Selftest.detected)
      u.Faultsim.sites
  in
  check "signature catches all" true all_caught

let test_selftest_golden_deterministic () =
  let nl = Generators.carry_chain ~technology:Technology.Domino_cmos 4 in
  let c = Compiled.compile nl in
  let s1 = Selftest.golden (Selftest.make_session ~seed:3 c ~n_cycles:100) in
  let s2 = Selftest.golden (Selftest.make_session ~seed:3 c ~n_cycles:100) in
  check "golden reproducible" true (s1 = s2);
  let s3 = Selftest.golden (Selftest.make_session ~seed:4 c ~n_cycles:100) in
  check "seed matters" true (s1 <> s3)

let test_selftest_sources () =
  let nl = Generators.c17 ~style:`Domino () in
  let u = Faultsim.universe nl in
  let compiled = u.Faultsim.compiled in
  let site = u.Faultsim.sites.(0) in
  List.iter
    (fun source ->
      let o = Selftest.test_fault ~seed:7 ~source compiled ~n_cycles:300 site in
      check "source detects" true o.Selftest.detected)
    [ `Lfsr; `Bilbo; `Weighted (Array.make (Compiled.n_inputs compiled) 0.5) ]

let test_at_speed_selftest () =
  (* The Section-4(b) claim: a session at maximum speed catches a delay
     fault; the same session at a relaxed clock misses it. *)
  let nl = Generators.carry_chain ~technology:Technology.Domino_cmos 6 in
  let c = Compiled.compile nl in
  let delays = Timing.nominal_delays c in
  (* Clock at the true worst case: the full propagate chain (c0=1, all p,
     no g). *)
  let propagate =
    Array.of_list
      (List.map (fun n -> n.[0] = 'c' || n.[0] = 'p') (Dynmos_netlist.Netlist.inputs nl))
  in
  let period = Timing.critical_path c delays propagate in
  let fast =
    Selftest.test_delay_fault ~seed:11 c ~n_cycles:200 ~gate_id:0 ~factor:3.0 ~period
  in
  check "at-speed detects" true fast.Selftest.detected;
  let slow_clock =
    Selftest.test_delay_fault ~seed:11 c ~n_cycles:200 ~gate_id:0 ~factor:3.0
      ~period:(period *. 10.0)
  in
  check "slow clock misses" false slow_clock.Selftest.detected

let test_selftest_coverage () =
  let nl = Generators.carry_chain ~technology:Technology.Domino_cmos 4 in
  let u = Faultsim.universe nl in
  let cov = Selftest.coverage ~seed:21 u ~n_cycles:400 in
  check "near-full coverage" true (cov > 0.95)

let () =
  Alcotest.run "bist"
    [
      ( "lfsr",
        [
          Alcotest.test_case "maximal periods" `Quick test_lfsr_periods;
          Alcotest.test_case "state coverage" `Quick test_lfsr_state_coverage;
          Alcotest.test_case "guards" `Quick test_lfsr_guards;
          Alcotest.test_case "patterns" `Quick test_lfsr_patterns;
          Alcotest.test_case "bit balance" `Quick test_lfsr_balance;
        ] );
      ( "misr",
        [
          Alcotest.test_case "signatures" `Quick test_misr_signature;
          Alcotest.test_case "aliasing rate" `Quick test_misr_aliasing_rate;
        ] );
      ( "bilbo",
        [
          Alcotest.test_case "four modes" `Quick test_bilbo_modes;
          Alcotest.test_case "scan out" `Quick test_bilbo_scan_out;
        ] );
      ( "nlfsr",
        [
          Alcotest.test_case "de Bruijn period" `Quick test_nlfsr_de_bruijn;
          Alcotest.test_case "linear matches LFSR" `Quick test_nlfsr_linear_matches_lfsr;
          Alcotest.test_case "nonlinear terms" `Quick test_nlfsr_nonlinear_term;
        ] );
      ( "weighted",
        [
          Alcotest.test_case "quantize" `Quick test_quantize;
          Alcotest.test_case "frequencies" `Quick test_weighted_frequencies;
        ] );
      ( "selftest",
        [
          Alcotest.test_case "detects all faults" `Slow test_selftest_detects_faults;
          Alcotest.test_case "golden deterministic" `Quick test_selftest_golden_deterministic;
          Alcotest.test_case "all sources" `Quick test_selftest_sources;
          Alcotest.test_case "at-speed delay detection" `Quick test_at_speed_selftest;
          Alcotest.test_case "coverage" `Quick test_selftest_coverage;
        ] );
    ]
