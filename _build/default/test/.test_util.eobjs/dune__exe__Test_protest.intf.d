test/test_protest.mli:
