test/test_switchnet.ml: Alcotest Dynmos_expr Dynmos_switchnet Expr Fmt Graph List Parse QCheck2 QCheck_alcotest Spnet String Truth_table
