test/test_expr.ml: Alcotest Array Cube Dynmos_expr Expr Fmt Int List Minimize Parse QCheck2 QCheck_alcotest Set String Truth_table
