test/test_netlist.ml: Alcotest Dynmos_cell Dynmos_netlist List Netlist Option Stdcells Technology
