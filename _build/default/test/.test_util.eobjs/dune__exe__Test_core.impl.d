test/test_core.ml: Alcotest Cell Dynmos_cell Dynmos_core Dynmos_expr Dynmos_switchnet Expr Fault Fault_map Faultlib Fmt List Parse QCheck2 QCheck_alcotest Stdcells String Technology Truth_table
