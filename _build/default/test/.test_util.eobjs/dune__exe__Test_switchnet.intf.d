test/test_switchnet.mli:
