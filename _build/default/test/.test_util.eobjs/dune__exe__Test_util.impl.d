test/test_util.ml: Alcotest Array Dynmos_util Float Fmt Fun List Prng String
