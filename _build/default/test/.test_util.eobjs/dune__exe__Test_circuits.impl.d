test/test_circuits.ml: Alcotest Array Boolnet Char Compiled Dynmos_cell Dynmos_circuits Dynmos_netlist Dynmos_sim Fmt Generators List Netlist Stdcells String Technology
