test/test_cell.ml: Alcotest Cell Cell_parser Dynmos_cell Dynmos_expr Expr Fmt List Parse Stdcells Technology Truth_table
