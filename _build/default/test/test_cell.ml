open Dynmos_expr
open Dynmos_cell

(* Tests for technologies, cell elaboration, the cell-description parser
   and the standard-cell library. *)

let check = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

let e = Parse.expr
let equal_fn = Truth_table.equal_exprs

(* --- Technology ------------------------------------------------------------ *)

let test_technology_names () =
  List.iter
    (fun t ->
      match Technology.of_string (Technology.to_string t) with
      | Some t' -> check "roundtrip" true (t = t')
      | None -> Alcotest.fail "technology name does not round-trip")
    Technology.all;
  check "case insensitive" true (Technology.of_string "DOMINO-cmos" = Some Technology.Domino_cmos);
  check "underscores" true (Technology.of_string "dynamic_nMOS" = Some Technology.Dynamic_nmos);
  check "plain nmos" true (Technology.of_string "nMOS" = Some Technology.Nmos_pulldown);
  check "unknown" true (Technology.of_string "ttl" = None)

let test_technology_classes () =
  check "domino dynamic" true (Technology.is_dynamic Technology.Domino_cmos);
  check "dynamic nmos dynamic" true (Technology.is_dynamic Technology.Dynamic_nmos);
  check "static not dynamic" false (Technology.is_dynamic Technology.Static_cmos);
  check "domino preserves T" false (Technology.inverts_transmission Technology.Domino_cmos);
  check "dynamic nmos inverts" true (Technology.inverts_transmission Technology.Dynamic_nmos);
  check "static cmos inverts" true (Technology.inverts_transmission Technology.Static_cmos)

(* --- Elaboration ------------------------------------------------------------ *)

let test_make_fig9 () =
  let c = Stdcells.fig9 in
  check_s "name" "fig9" (Cell.name c);
  check_i "arity" 5 (Cell.arity c);
  check_i "transistors" 5 (Cell.n_transistors c);
  check "logic is T" true (equal_fn (Cell.logic c) (e "a*(b+c)+d*e"));
  check "network expr" true (equal_fn (Cell.network_expr c) (e "a*(b+c)+d*e"))

let test_inverting_logic () =
  let nand2 = Stdcells.nand 2 Technology.Static_cmos in
  check "nand logic" true (equal_fn (Cell.logic nand2) (e "!(a*b)"));
  let nor2 = Stdcells.nor 2 Technology.Dynamic_nmos in
  check "dynamic nor logic" true (equal_fn (Cell.logic nor2) (e "!(a+b)"));
  let and2 = Stdcells.and_gate 2 Technology.Domino_cmos in
  check "domino and logic" true (equal_fn (Cell.logic and2) (e "a*b"))

let test_make_errors () =
  let fails f = match f () with _ -> false | exception Cell.Invalid _ -> true in
  check "no inputs" true
    (fails (fun () ->
         Cell.make ~technology:Technology.Domino_cmos ~inputs:[] ~output:"z" [ ("z", e "1") ]));
  check "output unassigned" true
    (fails (fun () ->
         Cell.make ~technology:Technology.Domino_cmos ~inputs:[ "a" ] ~output:"z"
           [ ("w", e "a") ]));
  check "double assignment" true
    (fails (fun () ->
         Cell.make ~technology:Technology.Domino_cmos ~inputs:[ "a" ] ~output:"z"
           [ ("z", e "a"); ("z", e "a") ]));
  check "assignment to input" true
    (fails (fun () ->
         Cell.make ~technology:Technology.Domino_cmos ~inputs:[ "a" ] ~output:"z"
           [ ("a", e "a"); ("z", e "a") ]));
  check "undefined signal" true
    (fails (fun () ->
         Cell.make ~technology:Technology.Domino_cmos ~inputs:[ "a" ] ~output:"z"
           [ ("z", e "a*q") ]));
  check "duplicate signals" true
    (fails (fun () ->
         Cell.make ~technology:Technology.Domino_cmos ~inputs:[ "a"; "a" ] ~output:"z"
           [ ("z", e "a") ]));
  check "constant function" true
    (fails (fun () ->
         Cell.make ~technology:Technology.Bipolar ~inputs:[ "a" ] ~output:"z"
           [ ("z", Expr.xor (e "a") (e "a")) ]))

let test_intermediate_nets () =
  let c =
    Cell.make ~technology:Technology.Domino_cmos ~inputs:[ "a"; "b"; "c" ] ~output:"z"
      [ ("x", e "a*b"); ("y", e "x+c"); ("z", e "y*a") ]
  in
  check "nets inlined" true (equal_fn (Cell.logic c) (e "(a*b+c)*a"))

let test_of_logic () =
  (* Building from the desired logic function for an inverting technology
     derives the complementary network. *)
  let c =
    Cell.of_logic ~technology:Technology.Static_cmos ~inputs:[ "a"; "b" ] ~output:"z"
      (e "!(a*b)")
  in
  check "logic preserved" true (equal_fn (Cell.logic c) (e "!(a*b)"));
  check "network is a*b" true (equal_fn (Cell.network_expr c) (e "a*b"));
  let d =
    Cell.of_logic ~technology:Technology.Domino_cmos ~inputs:[ "a"; "b" ] ~output:"z" (e "a+b")
  in
  check "domino direct" true (equal_fn (Cell.network_expr d) (e "a+b"))

let test_eval_table () =
  let c = Stdcells.fig9 in
  let env = function "a" -> true | "b" -> false | "c" -> true | _ -> false in
  check "eval" true (Cell.eval c env);
  let tt = Cell.logic_table c in
  check_i "table vars" 5 (Truth_table.n_vars tt);
  (* row a=1,c=1 -> index bit0(a)=1, bit2(c)=1 -> 5 *)
  check "table value" true (Truth_table.get tt 0b00101)

(* --- Parser ------------------------------------------------------------------ *)

let test_parse_fig9 () =
  let c = Cell_parser.cell Stdcells.fig9_text in
  check_s "name from NAME" "fig9" (Cell.name c);
  check "same logic as stdcell" true (equal_fn (Cell.logic c) (Cell.logic Stdcells.fig9));
  Alcotest.(check (list string)) "inputs" [ "a"; "b"; "c"; "d"; "e" ] (Cell.inputs c);
  check_s "output" "u" (Cell.output c)

let test_parse_multiple () =
  let text =
    "TECHNOLOGY domino-CMOS;\nINPUT a,b;\nOUTPUT z;\nz := a*b;\n\
     TECHNOLOGY dynamic-nMOS;\nINPUT x,y;\nOUTPUT w;\nw := x+y;\n"
  in
  let cells = Cell_parser.cells text in
  check_i "two cells" 2 (List.length cells);
  (match cells with
  | [ c1; c2 ] ->
      check "first domino" true (Cell.technology c1 = Technology.Domino_cmos);
      check "second dynamic" true (Cell.technology c2 = Technology.Dynamic_nmos);
      check "second logic inverted" true (equal_fn (Cell.logic c2) (e "!(x+y)"))
  | _ -> Alcotest.fail "expected two cells")

let test_parse_comments () =
  let text =
    "# leading comment\nTECHNOLOGY domino-CMOS; -- trailing\nINPUT a,b; # note\nOUTPUT z;\n\
     z := a*b; -- done\n"
  in
  let c = Cell_parser.cell text in
  check "comments stripped" true (equal_fn (Cell.logic c) (e "a*b"))

let test_parse_errors () =
  let fails s = match Cell_parser.cells s with _ -> false | exception Cell_parser.Error _ -> true in
  check "no technology" true (fails "INPUT a;\nOUTPUT z;\nz := a;\n");
  check "unknown technology" true (fails "TECHNOLOGY ttl;\nINPUT a;\nOUTPUT z;\nz := a;\n");
  check "bad statement" true (fails "TECHNOLOGY domino-CMOS;\nFOO bar;\n");
  check "bad expression" true
    (fails "TECHNOLOGY domino-CMOS;\nINPUT a;\nOUTPUT z;\nz := a+*;\n");
  check "missing output stmt" true (fails "TECHNOLOGY domino-CMOS;\nINPUT a;\nz := a;\n");
  check "empty" true (fails "");
  check "single-cell check" true
    (match
       Cell_parser.cell
         "TECHNOLOGY domino-CMOS;\nINPUT a;\nOUTPUT z;\nz := a;\n\
          TECHNOLOGY domino-CMOS;\nINPUT b;\nOUTPUT y;\ny := b;\n"
     with
    | _ -> false
    | exception Cell_parser.Error _ -> true)

let test_pp_roundtrip () =
  let c = Stdcells.fig9 in
  let printed = Fmt.str "%a" Cell.pp c in
  let reparsed = Cell_parser.cell printed in
  check "pp/parse roundtrip preserves logic" true
    (equal_fn (Cell.logic reparsed) (Cell.logic c))

(* --- Standard cells ----------------------------------------------------------- *)

let test_stdcells_families () =
  check "nand3" true
    (equal_fn (Cell.logic (Stdcells.nand 3 Technology.Static_cmos)) (e "!(a*b*c)"));
  check "nor3" true
    (equal_fn (Cell.logic (Stdcells.nor 3 Technology.Nmos_pulldown)) (e "!(a+b+c)"));
  check "or4 domino" true
    (equal_fn (Cell.logic (Stdcells.or_gate 4 Technology.Domino_cmos)) (e "a+b+c+d"));
  check "inv" true (equal_fn (Cell.logic (Stdcells.inv Technology.Static_cmos)) (e "!a"));
  check "buf domino" true (equal_fn (Cell.logic (Stdcells.buf Technology.Domino_cmos)) (e "a"));
  check "ao22" true
    (equal_fn (Cell.logic (Stdcells.ao ~groups:[ 2; 2 ] Technology.Domino_cmos)) (e "a*b+c*d"));
  check "ao12" true
    (equal_fn (Cell.logic (Stdcells.ao ~groups:[ 1; 2 ] Technology.Domino_cmos)) (e "a+b*c"));
  check "oa22" true
    (equal_fn (Cell.logic (Stdcells.oa ~groups:[ 2; 2 ] Technology.Domino_cmos)) (e "(a+b)*(c+d)"));
  check "aoi21" true
    (equal_fn (Cell.logic (Stdcells.ao ~groups:[ 2; 1 ] Technology.Static_cmos)) (e "!(a*b+c)"));
  check "mux dual rail" true
    (equal_fn
       (Cell.logic (Stdcells.mux2_dual_rail Technology.Domino_cmos))
       (e "d0*sn+d1*s"))

let test_stdcells_guards () =
  let fails f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check "nand needs inverting" true (fails (fun () -> Stdcells.nand 2 Technology.Domino_cmos));
  check "and needs preserving" true (fails (fun () -> Stdcells.and_gate 2 Technology.Static_cmos));
  check "buf needs preserving" true (fails (fun () -> Stdcells.buf Technology.Static_cmos));
  check "fan-in bound" true (fails (fun () -> Stdcells.nand 20 Technology.Static_cmos))

let test_fig1_fig2 () =
  check "fig1 NOR logic" true (equal_fn (Cell.logic Stdcells.fig1_nor) (e "!(a+b)"));
  check "fig2 inverter logic" true (equal_fn (Cell.logic Stdcells.fig2_inverter) (e "!a"))

let () =
  Alcotest.run "cell"
    [
      ( "technology",
        [
          Alcotest.test_case "name parsing" `Quick test_technology_names;
          Alcotest.test_case "classification" `Quick test_technology_classes;
        ] );
      ( "elaboration",
        [
          Alcotest.test_case "fig9" `Quick test_make_fig9;
          Alcotest.test_case "inverting technologies" `Quick test_inverting_logic;
          Alcotest.test_case "errors" `Quick test_make_errors;
          Alcotest.test_case "intermediate nets" `Quick test_intermediate_nets;
          Alcotest.test_case "of_logic" `Quick test_of_logic;
          Alcotest.test_case "eval and table" `Quick test_eval_table;
        ] );
      ( "parser",
        [
          Alcotest.test_case "fig9 text" `Quick test_parse_fig9;
          Alcotest.test_case "multiple cells" `Quick test_parse_multiple;
          Alcotest.test_case "comments" `Quick test_parse_comments;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "pp roundtrip" `Quick test_pp_roundtrip;
        ] );
      ( "stdcells",
        [
          Alcotest.test_case "families" `Quick test_stdcells_families;
          Alcotest.test_case "guards" `Quick test_stdcells_guards;
          Alcotest.test_case "paper cells" `Quick test_fig1_fig2;
        ] );
    ]
