open Dynmos_expr

(* Tests for the Boolean expression layer: smart constructors, evaluation,
   truth tables, cubes, two-level minimization and the parser. *)

let check = Alcotest.(check bool)
let check_s = Alcotest.(check string)
let check_i = Alcotest.(check int)

let e = Parse.expr

let env_of_string vars s v =
  let rec idx i = function
    | [] -> invalid_arg ("no var " ^ v)
    | x :: rest -> if String.equal x v then i else idx (i + 1) rest
  in
  s.[idx 0 vars] = '1'

(* --- Smart constructors -------------------------------------------------- *)

let test_constructors () =
  check_s "and flattens" "a*b*c" (Expr.to_string (Expr.and_ [ e "a*b"; e "c" ]));
  check_s "or flattens" "a+b+c" (Expr.to_string (Expr.or_ [ e "a+b"; e "c" ]));
  check_s "and absorbs false" "0" (Expr.to_string (Expr.and_ [ e "a"; Expr.false_ ]));
  check_s "or absorbs true" "1" (Expr.to_string (Expr.or_ [ e "a"; Expr.true_ ]));
  check_s "and drops true" "a" (Expr.to_string (Expr.and_ [ Expr.true_; e "a" ]));
  check_s "or drops false" "a" (Expr.to_string (Expr.or_ [ Expr.false_; e "a" ]));
  check_s "empty and" "1" (Expr.to_string (Expr.and_ []));
  check_s "empty or" "0" (Expr.to_string (Expr.or_ []));
  check_s "double negation" "a" (Expr.to_string (Expr.not_ (Expr.not_ (e "a"))));
  check_s "not of const" "0" (Expr.to_string (Expr.not_ Expr.true_));
  check_s "xor with false" "a" (Expr.to_string (Expr.xor (e "a") Expr.false_));
  check_s "xor with true" "!a" (Expr.to_string (Expr.xor (e "a") Expr.true_))

let test_pp_parens () =
  check_s "or under and" "a*(b+c)" (Expr.to_string (e "a*(b+c)"));
  check_s "no spurious parens" "a*b+c" (Expr.to_string (e "(a*b)+c"));
  check_s "not of compound" "!(a+b)" (Expr.to_string (Expr.not_ (e "a+b")));
  check_s "nested" "(a+b)*(c+d)" (Expr.to_string (e "(a+b)*(c+d)"))

(* --- Evaluation ----------------------------------------------------------- *)

let test_eval () =
  let f = e "a*(b+c)+d*e" in
  let vars = [ "a"; "b"; "c"; "d"; "e" ] in
  check "10100" true (Expr.eval (env_of_string vars "10100") f);
  check "11000" true (Expr.eval (env_of_string vars "11000") f);
  check "10000" false (Expr.eval (env_of_string vars "10000") f);
  check "00011" true (Expr.eval (env_of_string vars "00011") f);
  check "00010" false (Expr.eval (env_of_string vars "00010") f);
  check "xor eval" true (Expr.eval (env_of_string [ "a"; "b" ] "10") (Expr.xor (e "a") (e "b")))

let test_support () =
  Alcotest.(check (list string))
    "sorted support" [ "a"; "b"; "c"; "d"; "e" ]
    (Expr.support (e "d*e+a*(b+c)"));
  Alcotest.(check (list string)) "dedup" [ "a" ] (Expr.support (e "a*a+a"))

let test_subst_cofactor () =
  let f = e "a*(b+c)" in
  check_s "cofactor a=1" "b+c" (Expr.to_string (Expr.cofactor "a" true f));
  check_s "cofactor a=0" "0" (Expr.to_string (Expr.cofactor "a" false f));
  check_s "subst" "x*y*(b+c)"
    (Expr.to_string (Expr.subst (fun v -> if v = "a" then Some (e "x*y") else None) f))

(* --- Parser --------------------------------------------------------------- *)

let test_parse_errors () =
  let fails s = match Parse.expr s with _ -> false | exception Parse.Error _ -> true in
  check "empty" true (fails "");
  check "unbalanced" true (fails "(a+b");
  check "trailing" true (fails "a b");
  check "bad char" true (fails "a & b");
  check "missing operand" true (fails "a+*b");
  check "opt form" true (Parse.expr_opt "a+" = None);
  check "opt ok" true (Parse.expr_opt "a+b" <> None)

let test_parse_ok () =
  check_s "slash negation" "!a" (Expr.to_string (e "/a"));
  check_s "constants" "1" (Expr.to_string (e "1"));
  check_s "precedence" "a+b*c" (Expr.to_string (e "a+b*c"));
  check "precedence semantics" true
    (Expr.eval (env_of_string [ "a"; "b"; "c" ] "100") (e "a+b*c"))

(* --- Truth tables ---------------------------------------------------------- *)

let test_truth_table_basic () =
  let tt = Truth_table.of_expr (e "a*b") in
  check_i "rows" 4 (Truth_table.n_rows tt);
  check "row 3" true (Truth_table.get tt 3);
  check "row 1" false (Truth_table.get tt 1);
  check_i "count" 1 (Truth_table.count_true tt);
  Alcotest.(check (list int)) "minterms" [ 3 ] (Truth_table.minterms tt)

let test_truth_table_semantic_equal () =
  check "demorgan" true (Truth_table.equal_exprs (e "!(a*b)") (e "!a+!b"));
  check "absorption" true (Truth_table.equal_exprs (e "a+a*b") (e "a"));
  check "distrib" true (Truth_table.equal_exprs (e "a*(b+c)") (e "a*b+a*c"));
  check "different" false (Truth_table.equal_exprs (e "a*b") (e "a+b"));
  check "xor expand" true
    (Truth_table.equal_exprs (Expr.xor (e "a") (e "b")) (e "a*!b+!a*b"))

let test_truth_table_errors () =
  check "too many vars" true
    (match
       Truth_table.create (Array.init 23 (fun i -> Fmt.str "v%d" i)) (fun _ -> false)
     with
    | _ -> false
    | exception Truth_table.Too_many_vars _ -> true);
  check "dup vars" true
    (match Truth_table.create [| "a"; "a" |] (fun _ -> false) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_prob () =
  let tt = Truth_table.of_expr (e "a*b") in
  Alcotest.(check (float 1e-9)) "uniform" 0.25 (Truth_table.prob tt);
  Alcotest.(check (float 1e-9)) "weighted" 0.08 (Truth_table.prob ~weights:[| 0.1; 0.8 |] tt);
  let g = Truth_table.of_expr ~vars:[| "a"; "b" |] (e "a*b") in
  let f = Truth_table.of_expr ~vars:[| "a"; "b" |] (e "a") in
  (* differ on a=1,b=0: probability 0.5*0.5 *)
  Alcotest.(check (float 1e-9)) "detection" 0.25
    (Truth_table.detection_prob ~good:g ~faulty:f ())

let test_table_ops () =
  let a = Truth_table.of_expr ~vars:[| "a"; "b" |] (e "a") in
  let b = Truth_table.of_expr ~vars:[| "a"; "b" |] (e "b") in
  check "xor tables" true
    (Truth_table.equal (Truth_table.xor_tables a b)
       (Truth_table.of_expr ~vars:[| "a"; "b" |] (Expr.xor (e "a") (e "b"))));
  check "and tables" true
    (Truth_table.equal (Truth_table.and_tables a b)
       (Truth_table.of_expr ~vars:[| "a"; "b" |] (e "a*b")));
  check "or tables" true
    (Truth_table.equal (Truth_table.or_tables a b)
       (Truth_table.of_expr ~vars:[| "a"; "b" |] (e "a+b")));
  check "not table" true
    (Truth_table.equal (Truth_table.not_table a)
       (Truth_table.of_expr ~vars:[| "a"; "b" |] (e "!a")));
  check "is_const none" true (Truth_table.is_const a = None);
  check "is_const true" true
    (Truth_table.is_const (Truth_table.of_expr ~vars:[| "a" |] (e "1")) = Some true)

(* --- Cubes ------------------------------------------------------------------ *)

let test_cubes () =
  let c = Cube.make ~care:0b101 ~value:0b001 in
  (* a * !c over vars (a,b,c) *)
  check "covers 001" true (Cube.covers c 0b001);
  check "covers 011" true (Cube.covers c 0b011);
  check "not covers 101" false (Cube.covers c 0b101);
  check_i "literals" 2 (Cube.n_literals c);
  check_s "to_string" "a*!c" (Cube.to_string ~vars:[| "a"; "b"; "c" |] c);
  Alcotest.(check (list int)) "minterms" [ 1; 3 ] (Cube.minterms ~n_vars:3 c);
  check "universe covers all" true (Cube.covers Cube.universe 7);
  check_s "universe prints 1" "1" (Cube.to_string ~vars:[| "a" |] Cube.universe);
  (* subsumption *)
  let big = Cube.make ~care:0b001 ~value:0b001 in
  check "bigger subsumes" true (Cube.subsumes big c);
  check "smaller does not" false (Cube.subsumes c big);
  (* combine *)
  let c1 = Cube.of_minterm ~n_vars:2 0 and c2 = Cube.of_minterm ~n_vars:2 1 in
  (match Cube.combine c1 c2 with
  | Some m -> check_s "merged" "!b" (Cube.to_string ~vars:[| "a"; "b" |] m)
  | None -> Alcotest.fail "expected combine");
  check "no combine distance 2" true
    (Cube.combine (Cube.of_minterm ~n_vars:2 0) (Cube.of_minterm ~n_vars:2 3) = None);
  check "value normalized" true
    (Cube.equal (Cube.make ~care:0b01 ~value:0b11) (Cube.make ~care:0b01 ~value:0b01))

(* --- Minimization ------------------------------------------------------------ *)

let minimize_string s vars = Minimize.minimize_to_string ~vars (e s)

let test_minimize_paper_table () =
  (* The faulty functions of the paper's Fig. 9 table, produced from the
     structural expressions with the respective switch replaced. *)
  let vars = [| "a"; "b"; "c"; "d"; "e" |] in
  check_s "fault-free" "a*b+a*c+d*e" (minimize_string "a*(b+c)+d*e" vars);
  check_s "class 1 (a closed)" "b+c+d*e" (minimize_string "1*(b+c)+d*e" vars);
  check_s "class 2 (a open)" "d*e" (minimize_string "0*(b+c)+d*e" vars);
  check_s "class 3 (b closed)" "a+d*e" (minimize_string "a*(1+c)+d*e" vars);
  check_s "class 4 (b open)" "a*c+d*e" (minimize_string "a*(0+c)+d*e" vars);
  check_s "class 5 (c open)" "a*b+d*e" (minimize_string "a*(b+0)+d*e" vars);
  check_s "class 6 (d closed)" "a*b+a*c+e" (minimize_string "a*(b+c)+1*e" vars);
  check_s "class 7 (d open)" "a*b+a*c" (minimize_string "a*(b+c)+0*e" vars);
  check_s "class 8 (e closed)" "a*b+a*c+d" (minimize_string "a*(b+c)+d*1" vars);
  check_s "constant 0" "0" (minimize_string "a*!a" [| "a" |]);
  check_s "constant 1" "1" (minimize_string "a+!a" [| "a" |])

let test_minimize_classic () =
  check_s "xor stays 2 terms" "a*!b+!a*b"
    (Minimize.minimize_to_string ~vars:[| "a"; "b" |] (Expr.xor (e "a") (e "b")));
  check_s "consensus drops" "a*b+!a*c"
    (minimize_string "a*b+!a*c+b*c" [| "a"; "b"; "c" |]);
  check_s "absorption" "a" (minimize_string "a+a*b" [| "a"; "b" |])

let test_minimize_verify () =
  let sop, vars = Minimize.of_expr (e "a*(b+c)+d*e") in
  let tt = Truth_table.of_expr ~vars:(Array.copy vars) (e "a*(b+c)+d*e") in
  check "verify" true (Minimize.verify ~n_vars:5 sop (Truth_table.minterms tt))

let test_primes () =
  (* f = a*b + a*!b = a: single prime. *)
  let primes = Minimize.primes_of_minterms ~n_vars:2 [ 1; 3 ] in
  check_i "one prime" 1 (List.length primes);
  check_s "prime is a" "a" (Cube.to_string ~vars:[| "a"; "b" |] (List.hd primes));
  (* XOR: both minterms are themselves primes *)
  let primes = Minimize.primes_of_minterms ~n_vars:2 [ 1; 2 ] in
  check_i "two primes" 2 (List.length primes)

(* QCheck: minimization preserves the function, for random expressions. *)
let gen_expr n_vars =
  let open QCheck2.Gen in
  let var = map (fun i -> Expr.var (Fmt.str "v%d" i)) (int_bound (n_vars - 1)) in
  sized
  @@ fix (fun self n ->
         if n <= 1 then var
         else
           frequency
             [
               (2, var);
               (2, map2 (fun a b -> Expr.and_ [ a; b ]) (self (n / 2)) (self (n / 2)));
               (2, map2 (fun a b -> Expr.or_ [ a; b ]) (self (n / 2)) (self (n / 2)));
               (1, map Expr.not_ (self (n - 1)));
               (1, map2 Expr.xor (self (n / 2)) (self (n / 2)));
             ])

let qcheck_minimize_preserves =
  QCheck2.Test.make ~name:"minimize preserves function" ~count:200 (gen_expr 5) (fun expr ->
      let vars = Array.init 5 (fun i -> Fmt.str "v%d" i) in
      let sop = Minimize.of_table (Truth_table.of_expr ~vars expr) in
      Truth_table.equal_exprs ~vars (Minimize.to_expr ~vars sop) expr)

let qcheck_minimize_minimal =
  (* On up to 3 variables, compare cube count against brute-force minimum
     over all SOPs assembled from primes. *)
  QCheck2.Test.make ~name:"exact cover is minimal (3 vars)" ~count:100 (gen_expr 3)
    (fun expr ->
      let vars = Array.init 3 (fun i -> Fmt.str "v%d" i) in
      let tt = Truth_table.of_expr ~vars expr in
      let minterms = Truth_table.minterms tt in
      if minterms = [] then true
      else begin
        let sop = Minimize.of_minterms ~n_vars:3 minterms in
        let primes = Minimize.primes_of_minterms ~n_vars:3 minterms in
        let np = List.length primes in
        let covers_all cubes =
          List.for_all (fun m -> List.exists (fun c -> Cube.covers c m) cubes) minterms
        in
        (* brute force smallest cover size *)
        let best = ref max_int in
        for mask = 1 to (1 lsl np) - 1 do
          let cubes = List.filteri (fun i _ -> (mask lsr i) land 1 = 1) primes in
          if covers_all cubes then best := min !best (List.length cubes)
        done;
        List.length sop = !best
      end)

let qcheck_expand_cover =
  (* Above the QM variable limit, minimization switches to the greedy
     prime-expansion cover; it must still represent the function exactly,
     with prime (maximally expanded) cubes. *)
  QCheck2.Test.make ~name:"expand cover preserves function (11 vars)" ~count:40 (gen_expr 11)
    (fun expr ->
      let vars = Array.init 11 (fun i -> Fmt.str "v%d" i) in
      let tt = Truth_table.of_expr ~vars expr in
      let minterms = Truth_table.minterms tt in
      let sop = Minimize.of_minterms ~n_vars:11 minterms in
      Minimize.verify ~n_vars:11 sop minterms
      && List.for_all
           (fun c ->
             (* primality: no literal can be dropped *)
             List.for_all
               (fun (i, _) ->
                 let grown =
                   Cube.make ~care:(Cube.care c land lnot (1 lsl i)) ~value:(Cube.value c)
                 in
                 let module IS = Set.Make (Int) in
                 let on = IS.of_list minterms in
                 not (List.for_all (fun m -> IS.mem m on) (Cube.minterms ~n_vars:11 grown)))
               (Cube.literals c))
           sop)

let qcheck_parse_roundtrip =
  QCheck2.Test.make ~name:"print/parse roundtrip" ~count:200 (gen_expr 4) (fun expr ->
      let s = Expr.to_string expr in
      Truth_table.equal_exprs
        ~vars:(Array.init 4 (fun i -> Fmt.str "v%d" i))
        (Parse.expr s) expr)

let qcheck_eval_cofactor =
  QCheck2.Test.make ~name:"shannon expansion" ~count:200 (gen_expr 4) (fun expr ->
      (* f = v0*f[v0=1] + !v0*f[v0=0] *)
      let vars = Array.init 4 (fun i -> Fmt.str "v%d" i) in
      let v = "v0" in
      let expanded =
        Expr.or_
          [
            Expr.and_ [ Expr.var v; Expr.cofactor v true expr ];
            Expr.and_ [ Expr.not_ (Expr.var v); Expr.cofactor v false expr ];
          ]
      in
      Truth_table.equal_exprs ~vars expanded expr)

let () =
  Alcotest.run "expr"
    [
      ( "constructors",
        [
          Alcotest.test_case "simplification laws" `Quick test_constructors;
          Alcotest.test_case "printing parentheses" `Quick test_pp_parens;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "evaluation" `Quick test_eval;
          Alcotest.test_case "support" `Quick test_support;
          Alcotest.test_case "subst and cofactor" `Quick test_subst_cofactor;
        ] );
      ( "parser",
        [
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "accepted forms" `Quick test_parse_ok;
        ] );
      ( "truth_table",
        [
          Alcotest.test_case "basic" `Quick test_truth_table_basic;
          Alcotest.test_case "semantic equality" `Quick test_truth_table_semantic_equal;
          Alcotest.test_case "errors" `Quick test_truth_table_errors;
          Alcotest.test_case "probabilities" `Quick test_prob;
          Alcotest.test_case "bitwise ops" `Quick test_table_ops;
        ] );
      ("cube", [ Alcotest.test_case "operations" `Quick test_cubes ]);
      ( "minimize",
        [
          Alcotest.test_case "paper fig9 forms" `Quick test_minimize_paper_table;
          Alcotest.test_case "classic identities" `Quick test_minimize_classic;
          Alcotest.test_case "verify" `Quick test_minimize_verify;
          Alcotest.test_case "prime generation" `Quick test_primes;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_minimize_preserves;
          QCheck_alcotest.to_alcotest qcheck_minimize_minimal;
          QCheck_alcotest.to_alcotest qcheck_expand_cover;
          QCheck_alcotest.to_alcotest qcheck_parse_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_eval_cofactor;
        ] );
    ]
