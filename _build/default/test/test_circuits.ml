open Dynmos_cell
open Dynmos_netlist
open Dynmos_sim
open Dynmos_circuits

(* Tests for the benchmark generators: functional correctness of every
   circuit family in both realizations, dual-rail invariants and
   deterministic seeding. *)

let check = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let check_realizations name bn =
  let static = Boolnet.to_static bn in
  let domino = Boolnet.to_domino_dual_rail bn in
  let cs = Compiled.compile static in
  let cd = Compiled.compile domino in
  let n = Boolnet.n_inputs bn in
  let rows = 1 lsl n in
  for row = 0 to min (rows - 1) 255 do
    let pi = Array.init n (fun i -> (row lsr i) land 1 = 1) in
    let reference =
      List.map snd (Boolnet.eval bn (List.mapi (fun i nm -> (nm, pi.(i))) bn.Boolnet.inputs))
    in
    let got_static = Array.to_list (Compiled.eval cs pi) in
    if got_static <> reference then
      Alcotest.fail (Fmt.str "%s static mismatch at row %d" name row);
    let dr = Boolnet.dual_rail_vector bn pi in
    let got_domino = Array.to_list (Compiled.eval cd dr) in
    (* Domino POs come in (positive, negative) pairs per output. *)
    let rec pairs = function
      | p :: q :: rest -> (p, q) :: pairs rest
      | [] -> []
      | [ _ ] -> Alcotest.fail "odd number of domino POs"
    in
    List.iter2
      (fun (p, q) r ->
        if p <> r then Alcotest.fail (Fmt.str "%s domino pos rail wrong at %d" name row);
        if q <> not r then Alcotest.fail (Fmt.str "%s domino neg rail wrong at %d" name row))
      (pairs got_domino) reference
  done

let test_parity () = check_realizations "parity5" (Generators.parity_boolnet 5)
let test_adder () = check_realizations "adder2" (Generators.ripple_adder_boolnet 2)
let test_decoder () = check_realizations "decoder3" (Generators.decoder_boolnet 3)
let test_equality () = check_realizations "eq3" (Generators.equality_boolnet 3)
let test_c17 () = check_realizations "c17" (Generators.c17_boolnet ())
let test_mux () = check_realizations "mux2" (Generators.mux_tree_boolnet 2)

let test_adder_adds () =
  (* End-to-end arithmetic check of the 3-bit ripple adder. *)
  let bn = Generators.ripple_adder_boolnet 3 in
  for a = 0 to 7 do
    for b = 0 to 7 do
      for cin = 0 to 1 do
        let env =
          List.init 3 (fun i -> (Fmt.str "a%d" i, (a lsr i) land 1 = 1))
          @ List.init 3 (fun i -> (Fmt.str "b%d" i, (b lsr i) land 1 = 1))
          @ [ ("cin", cin = 1) ]
        in
        let out = Boolnet.eval bn env in
        let sum = ref 0 in
        List.iter
          (fun (name, v) ->
            if v then
              match name with
              | "s0" -> sum := !sum + 1
              | "s1" -> sum := !sum + 2
              | "s2" -> sum := !sum + 4
              | "cout" -> sum := !sum + 8
              | _ -> ())
          out;
        if !sum <> a + b + cin then
          Alcotest.fail (Fmt.str "%d + %d + %d gave %d" a b cin !sum)
      done
    done
  done;
  check "adder adds" true true

let test_decoder_one_hot () =
  let bn = Generators.decoder_boolnet 3 in
  for row = 0 to 7 do
    let env = List.mapi (fun i nm -> (nm, (row lsr i) land 1 = 1)) bn.Boolnet.inputs in
    let out = Boolnet.eval bn env in
    let ones = List.filter snd out in
    check_i (Fmt.str "one-hot at %d" row) 1 (List.length ones);
    check "right line" true (fst (List.hd ones) = Fmt.str "d%d" row)
  done

let test_carry_chain_function () =
  let nl = Generators.carry_chain ~technology:Technology.Domino_cmos 3 in
  let c = Compiled.compile nl in
  (* inputs: c0, g0..g2, p0..p2 *)
  let eval ~c0 ~g ~p =
    let pi =
      Array.of_list
        (List.map
           (fun name ->
             match name.[0] with
             | 'c' -> c0
             | 'g' -> List.nth g (Char.code name.[1] - Char.code '0')
             | 'p' -> List.nth p (Char.code name.[1] - Char.code '0')
             | _ -> false)
           (Netlist.inputs nl))
    in
    (Compiled.eval c pi).(0)
  in
  check "generate" true (eval ~c0:false ~g:[ false; false; true ] ~p:[ false; false; false ]);
  check "propagate" true (eval ~c0:true ~g:[ false; false; false ] ~p:[ true; true; true ]);
  check "killed" false (eval ~c0:true ~g:[ false; false; false ] ~p:[ true; false; true ])

let test_trees () =
  let nl = Generators.and_tree ~fanin:3 ~technology:Technology.Domino_cmos 9 in
  let c = Compiled.compile nl in
  check "all ones" true (Compiled.eval c (Array.make 9 true)).(0);
  let one_zero = Array.make 9 true in
  one_zero.(4) <- false;
  check "one zero kills" false (Compiled.eval c one_zero).(0);
  (* static variant computes the same function *)
  let nls = Generators.and_tree ~fanin:3 ~technology:Technology.Static_cmos 9 in
  let cs = Compiled.compile nls in
  check "static agrees" true ((Compiled.eval cs (Array.make 9 true)).(0) = true);
  let nlo = Generators.or_tree ~technology:Technology.Dynamic_nmos 5 in
  let co = Compiled.compile nlo in
  check "or tree zero" false (Compiled.eval co (Array.make 5 false)).(0);
  let one = Array.make 5 false in
  one.(2) <- true;
  check "or tree one" true (Compiled.eval co one).(0)

let test_random_monotone_deterministic () =
  let a = Generators.random_monotone ~seed:42 ~n_inputs:6 ~n_gates:10 ~technology:Technology.Domino_cmos () in
  let b = Generators.random_monotone ~seed:42 ~n_inputs:6 ~n_gates:10 ~technology:Technology.Domino_cmos () in
  let c = Generators.random_monotone ~seed:43 ~n_inputs:6 ~n_gates:10 ~technology:Technology.Domino_cmos () in
  check "same seed same structure" true
    (List.map (fun g -> g.Netlist.output_net) (Netlist.gates a)
    = List.map (fun g -> g.Netlist.output_net) (Netlist.gates b));
  check_i "gate count" 10 (Netlist.n_gates a);
  check "monotone legal domino" true (Netlist.check_domino a);
  check "different seed differs" true
    (Fmt.str "%a" Netlist.pp a <> Fmt.str "%a" Netlist.pp c)

let test_fig5_network () =
  let nl = Generators.fig5_network () in
  let c = Compiled.compile nl in
  (* z1 = (i1 + i2) * i3 *)
  check "110" true (Compiled.eval c [| true; false; true |]).(0);
  check "001" false (Compiled.eval c [| false; false; true |]).(0);
  check "domino legal" true (Netlist.check_domino nl)

let test_single_cell_wrap () =
  let nl = Generators.single_cell Stdcells.fig9 in
  check_i "one gate" 1 (Netlist.n_gates nl);
  Alcotest.(check (list string)) "inputs preserved" [ "a"; "b"; "c"; "d"; "e" ]
    (Netlist.inputs nl)

let test_dual_rail_vector () =
  let bn = Generators.parity_boolnet 2 in
  let v = Boolnet.dual_rail_vector bn [| true; false |] in
  check "expanded" true (v = [| true; false; false; true |]);
  check "arity guard" true
    (match Boolnet.dual_rail_vector bn [| true |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "circuits"
    [
      ( "realizations",
        [
          Alcotest.test_case "parity" `Quick test_parity;
          Alcotest.test_case "ripple adder" `Quick test_adder;
          Alcotest.test_case "decoder" `Quick test_decoder;
          Alcotest.test_case "equality" `Quick test_equality;
          Alcotest.test_case "c17" `Quick test_c17;
          Alcotest.test_case "mux tree" `Quick test_mux;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "adder adds" `Quick test_adder_adds;
          Alcotest.test_case "decoder one-hot" `Quick test_decoder_one_hot;
          Alcotest.test_case "carry chain" `Quick test_carry_chain_function;
          Alcotest.test_case "trees" `Quick test_trees;
          Alcotest.test_case "fig5 network" `Quick test_fig5_network;
          Alcotest.test_case "single cell wrap" `Quick test_single_cell_wrap;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "random deterministic" `Quick test_random_monotone_deterministic;
          Alcotest.test_case "dual-rail vectors" `Quick test_dual_rail_vector;
        ] );
    ]
