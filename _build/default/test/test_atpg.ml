open Dynmos_cell
open Dynmos_netlist
open Dynmos_faultsim
open Dynmos_atpg
open Dynmos_circuits

(* Tests for the PODEM baseline: generated vectors really detect their
   faults, full sets reach full coverage on detectable universes, and
   netlist-level redundancy is recognized as untestable. *)

let check = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let test_single_fault () =
  let u = Faultsim.universe (Generators.fig9_network ()) in
  Array.iter
    (fun site ->
      match Podem.generate u site with
      | Podem.Test v ->
          check (Faultsim.site_label u site) true (Faultsim.detects u site v)
      | Podem.Untestable | Podem.Aborted ->
          Alcotest.fail (Fmt.str "no test for %s" (Faultsim.site_label u site)))
    u.Faultsim.sites

let full_coverage nl =
  let u = Faultsim.universe nl in
  let r = Podem.generate_set u in
  let s = Faultsim.run_parallel u r.Podem.vectors in
  (u, r, Faultsim.coverage s)

let test_full_sets () =
  (* PODEM must cover every *testable* fault: coverage equals the fraction
     of sites with a Test verdict, nothing aborts, and any Untestable
     verdict is a genuine netlist-level redundancy (cross-checked by
     exhaustive simulation where feasible). *)
  List.iter
    (fun nl ->
      let u, r, cov = full_coverage nl in
      let n = Faultsim.n_sites u in
      let tests =
        Array.fold_left
          (fun acc v -> match v with Podem.Test _ -> acc + 1 | _ -> acc)
          0 r.Podem.per_site
      in
      let aborted =
        Array.exists (function Podem.Aborted -> true | _ -> false) r.Podem.per_site
      in
      check (Netlist.name nl ^ " no aborts") false aborted;
      Alcotest.(check (float 1e-9))
        (Netlist.name nl ^ " coverage = testable fraction")
        (float_of_int tests /. float_of_int n)
        cov;
      let n_in = List.length (Netlist.inputs nl) in
      if n_in <= 10 then begin
        let s = Faultsim.run_parallel ~drop:false u (Faultsim.exhaustive_patterns n_in) in
        Array.iteri
          (fun sid verdict ->
            match (verdict, s.Faultsim.first_detection.(sid)) with
            | Podem.Untestable, Some _ ->
                Alcotest.fail (Netlist.name nl ^ ": PODEM wrongly declared untestable")
            | _ -> ())
          r.Podem.per_site
      end)
    [
      Generators.c17 ~style:`Static ();
      Generators.c17 ~style:`Domino ();
      Generators.carry_chain ~technology:Technology.Domino_cmos 8;
      Generators.parity ~style:`Domino 5;
      Generators.decoder ~style:`Domino 3;
      Generators.mux_tree ~style:`Domino 2;
      Generators.random_monotone ~seed:8 ~n_inputs:7 ~n_gates:15
        ~technology:Technology.Domino_cmos ();
    ]

let test_compaction () =
  (* Fault dropping keeps the vector count well below the site count. *)
  let u, r, _ = full_coverage (Generators.carry_chain ~technology:Technology.Domino_cmos 8) in
  check "fewer vectors than sites" true
    (Array.length r.Podem.vectors < Faultsim.n_sites u);
  check "some dropped by simulation" true (r.Podem.covered_by_simulation > 0)

let test_untestable_redundancy () =
  (* Netlist-level masking: z = (a AND b) OR (a AND b) — a stuck-0 class
     of one branch is masked by the other only if the branches were
     different; build true masking with w = a*b, z = w + a*b ... here we
     use two identical AND gates feeding an OR: a fault making one AND
     output 0 is masked because the other still computes a*b. *)
  let and2 = Stdcells.and_gate 2 Technology.Domino_cmos in
  let or2 = Stdcells.or_gate 2 Technology.Domino_cmos in
  let b = Netlist.Builder.create "redundant" in
  let a = Netlist.Builder.input b "a" in
  let c = Netlist.Builder.input b "c" in
  let w1 = Netlist.Builder.add b and2 ~inputs:[ a; c ] ~output:"w1" in
  let w2 = Netlist.Builder.add b and2 ~inputs:[ a; c ] ~output:"w2" in
  let z = Netlist.Builder.add b or2 ~inputs:[ w1; w2 ] ~output:"z" in
  Netlist.Builder.output b z;
  let nl = Netlist.Builder.finish b in
  let u = Faultsim.universe nl in
  let r = Podem.generate_set u in
  let untestable =
    Array.to_list r.Podem.per_site
    |> List.filter (fun x -> match x with Podem.Untestable -> true | _ -> false)
  in
  check "some untestable faults" true (List.length untestable > 0);
  (* PODEM's untestable verdicts are consistent with exhaustive
     simulation. *)
  let s = Faultsim.run_parallel u (Faultsim.exhaustive_patterns 2) in
  Array.iteri
    (fun sid verdict ->
      match (verdict, s.Faultsim.first_detection.(sid)) with
      | Podem.Untestable, Some _ -> Alcotest.fail "PODEM wrongly declared untestable"
      | Podem.Test _, None -> Alcotest.fail "PODEM test but exhaustive missed it?"
      | _ -> ())
    r.Podem.per_site

let test_vectors_are_verified () =
  (* Every vector returned by generate_set detects at least one site. *)
  let u = Faultsim.universe (Generators.c17 ~style:`Domino ()) in
  let r = Podem.generate_set u in
  Array.iter
    (fun v ->
      check "vector useful" true
        (Array.exists (fun site -> Faultsim.detects u site v) u.Faultsim.sites))
    r.Podem.vectors

let test_schedule_double () =
  let vs = [| [| true |]; [| false |] |] in
  let d = Podem.schedule_double vs in
  check_i "doubled" 4 (Array.length d);
  check "first half" true (Array.sub d 0 2 = vs);
  check "second half" true (Array.sub d 2 2 = vs)

let test_eval_fn3_consistency () =
  (* The 3-valued co-simulation must agree with 2-valued evaluation on
     fully defined inputs: implied by generate's tests being verified, but
     check directly on a known circuit via a definite vector. *)
  let u = Faultsim.universe (Generators.fig9_network ()) in
  let site = u.Faultsim.sites.(0) in
  match Podem.generate u site with
  | Podem.Test v -> check "definite test" true (Faultsim.detects u site v)
  | _ -> Alcotest.fail "expected test"


(* --- Two-pattern tests for static CMOS stuck-opens -------------------------- *)

let test_two_pattern_fig1 () =
  let nor = Stdcells.fig1_nor in
  let fault = Dynmos_core.Fault.Network_open 1 in
  match Two_pattern.generate nor fault with
  | None -> Alcotest.fail "expected a two-pattern test"
  | Some pair ->
      check "pair validates back to back" true (Two_pattern.validates nor fault pair);
      (* P2 must be the retain vector (1,0) *)
      check "p2 in retain region" true (pair.Two_pattern.p2 = [| true; false |]);
      (* inserting the vector (0,1) between them re-drives the node and
         invalidates the test — the scan-shifting problem *)
      check "intermediate invalidates" true
        (Two_pattern.invalidated_by nor fault pair [| false; true |])

let test_two_pattern_all_sequential () =
  (* Every sequential fault of small static cells gets a validated pair. *)
  List.iter
    (fun cell ->
      List.iter
        (fun f ->
          match Dynmos_core.Fault_map.map cell f with
          | Dynmos_core.Fault_map.Sequential _ -> (
              match Two_pattern.generate cell f with
              | Some pair ->
                  check
                    (Fmt.str "%s/%s" (Cell.name cell) (Dynmos_core.Fault.label cell f))
                    true
                    (Two_pattern.validates cell f pair)
              | None -> Alcotest.fail "missing two-pattern test")
          | _ -> ())
        (Dynmos_core.Fault.enumerate cell))
    [
      Stdcells.fig1_nor;
      Stdcells.nand 2 Technology.Static_cmos;
      Stdcells.nand 3 Technology.Static_cmos;
      Stdcells.nor 3 Technology.Static_cmos;
      Stdcells.ao ~groups:[ 2; 1 ] Technology.Static_cmos;
    ]

let test_two_pattern_rejects () =
  check "combinational fault has no pair" true
    (Two_pattern.generate (Stdcells.nand 2 Technology.Static_cmos)
       (Dynmos_core.Fault.Stuck_at ("a", false))
    = None);
  check "non-static cell rejected" true
    (match Two_pattern.generate Stdcells.fig9 (Dynmos_core.Fault.Network_open 1) with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_compare_cells () =
  (* The paper's cost argument: the same NOR function costs more test
     applications in static CMOS (pairs for the stuck-opens) than the
     dual OR gate costs in domino (one vector per class). *)
  let cmp =
    Two_pattern.compare_cells
      ~static_cell:(Stdcells.nor 2 Technology.Static_cmos)
      ~dynamic_cell:(Stdcells.or_gate 2 Technology.Domino_cmos)
  in
  check "static has sequential faults" true (cmp.Two_pattern.sequential_faults > 0);
  check "all got pairs" true
    (cmp.Two_pattern.two_pattern_tests = cmp.Two_pattern.sequential_faults);
  check "static needs more applications" true
    (cmp.Two_pattern.static_applications > cmp.Two_pattern.dynamic_applications)

(* QCheck: on random monotone circuits PODEM's verdicts match exhaustive
   fault simulation exactly. *)
let qcheck_podem_complete =
  QCheck2.Test.make ~name:"PODEM verdicts match exhaustive simulation" ~count:15
    QCheck2.Gen.(int_range 1 500)
    (fun seed ->
      let nl =
        Generators.random_monotone ~seed ~n_inputs:5 ~n_gates:8
          ~technology:Technology.Domino_cmos ()
      in
      let u = Faultsim.universe nl in
      let s = Faultsim.run_parallel ~drop:false u (Faultsim.exhaustive_patterns 5) in
      Array.for_all
        (fun site ->
          let detectable = s.Faultsim.first_detection.(site.Faultsim.sid) <> None in
          match Podem.generate u site with
          | Podem.Test v -> detectable && Faultsim.detects u site v
          | Podem.Untestable -> not detectable
          | Podem.Aborted -> true)
        u.Faultsim.sites)

let () =
  Alcotest.run "atpg"
    [
      ( "podem",
        [
          Alcotest.test_case "single faults on fig9" `Quick test_single_fault;
          Alcotest.test_case "full sets reach 100%" `Slow test_full_sets;
          Alcotest.test_case "compaction by dropping" `Quick test_compaction;
          Alcotest.test_case "redundancy is untestable" `Quick test_untestable_redundancy;
          Alcotest.test_case "vectors verified" `Quick test_vectors_are_verified;
          Alcotest.test_case "A2 double application" `Quick test_schedule_double;
          Alcotest.test_case "3-valued consistency" `Quick test_eval_fn3_consistency;
        ] );
      ( "two_pattern",
        [
          Alcotest.test_case "fig1 pair + scan invalidation" `Quick test_two_pattern_fig1;
          Alcotest.test_case "all sequential faults get pairs" `Quick
            test_two_pattern_all_sequential;
          Alcotest.test_case "rejections" `Quick test_two_pattern_rejects;
          Alcotest.test_case "static vs dynamic cost" `Quick test_compare_cells;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_podem_complete ]);
    ]
