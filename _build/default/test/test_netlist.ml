open Dynmos_cell
open Dynmos_netlist

(* Tests for gate-level netlists: builder validation, topological order,
   levels, clocking discipline and structural queries. *)

let check = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let and2 = Stdcells.and_gate 2 Technology.Domino_cmos
let or2 = Stdcells.or_gate 2 Technology.Domino_cmos
let nand2 = Stdcells.nand 2 Technology.Static_cmos

let two_level () =
  let b = Netlist.Builder.create "two_level" in
  let a = Netlist.Builder.input b "a" in
  let c = Netlist.Builder.input b "c" in
  let d = Netlist.Builder.input b "d" in
  let w = Netlist.Builder.add b or2 ~inputs:[ a; c ] ~output:"w" in
  let z = Netlist.Builder.add b and2 ~inputs:[ w; d ] ~output:"z" in
  Netlist.Builder.output b z;
  Netlist.Builder.finish b

let test_build () =
  let nl = two_level () in
  check_i "two gates" 2 (Netlist.n_gates nl);
  Alcotest.(check (list string)) "inputs" [ "a"; "c"; "d" ] (Netlist.inputs nl);
  Alcotest.(check (list string)) "outputs" [ "z" ] (Netlist.outputs nl);
  check_i "five nets" 5 (Netlist.n_nets nl);
  check_i "depth" 2 (Netlist.depth nl)

let test_topological_order () =
  (* Insert gates in reverse order; finish must still topo-sort. *)
  let b = Netlist.Builder.create "rev" in
  let a = Netlist.Builder.input b "a" in
  let c = Netlist.Builder.input b "c" in
  ignore (Netlist.Builder.add b and2 ~inputs:[ "w"; c ] ~output:"z");
  ignore (Netlist.Builder.add b or2 ~inputs:[ a; c ] ~output:"w");
  Netlist.Builder.output b "z";
  let nl = Netlist.Builder.finish b in
  let order = List.map (fun g -> g.Netlist.output_net) (Netlist.gates nl) in
  Alcotest.(check (list string)) "w before z" [ "w"; "z" ] order;
  let ids = List.map (fun g -> g.Netlist.id) (Netlist.gates nl) in
  Alcotest.(check (list int)) "dense ids" [ 0; 1 ] ids

let test_levels_and_phases () =
  let nl = two_level () in
  let w = Option.get (Netlist.gate_of_net nl "w") in
  let z = Option.get (Netlist.gate_of_net nl "z") in
  check_i "w level 1" 1 w.Netlist.level;
  check_i "z level 2" 2 z.Netlist.level;
  check "w phase 1" true (Netlist.clock_phase w = `Phi1);
  check "z phase 2" true (Netlist.clock_phase z = `Phi2)

let test_validation_errors () =
  let fails f = match f () with _ -> false | exception Netlist.Invalid _ -> true in
  (* double driver *)
  check "double drive" true
    (fails (fun () ->
         let b = Netlist.Builder.create "x" in
         let a = Netlist.Builder.input b "a" in
         let c = Netlist.Builder.input b "c" in
         ignore (Netlist.Builder.add b and2 ~inputs:[ a; c ] ~output:"z");
         ignore (Netlist.Builder.add b or2 ~inputs:[ a; c ] ~output:"z");
         Netlist.Builder.finish b));
  (* undriven input *)
  check "undriven net" true
    (fails (fun () ->
         let b = Netlist.Builder.create "x" in
         let a = Netlist.Builder.input b "a" in
         ignore (Netlist.Builder.add b and2 ~inputs:[ a; "ghost" ] ~output:"z");
         Netlist.Builder.finish b));
  (* undriven PO *)
  check "undriven output" true
    (fails (fun () ->
         let b = Netlist.Builder.create "x" in
         ignore (Netlist.Builder.input b "a");
         Netlist.Builder.output b "nowhere";
         Netlist.Builder.finish b));
  (* cycle *)
  check "cycle" true
    (fails (fun () ->
         let b = Netlist.Builder.create "x" in
         let a = Netlist.Builder.input b "a" in
         ignore (Netlist.Builder.add b and2 ~inputs:[ a; "q" ] ~output:"p");
         ignore (Netlist.Builder.add b or2 ~inputs:[ a; "p" ] ~output:"q");
         Netlist.Builder.output b "q";
         Netlist.Builder.finish b));
  (* arity *)
  check "arity" true
    (fails (fun () ->
         let b = Netlist.Builder.create "x" in
         let a = Netlist.Builder.input b "a" in
         ignore (Netlist.Builder.add b and2 ~inputs:[ a ] ~output:"z");
         Netlist.Builder.finish b));
  (* duplicate PI *)
  check "duplicate input" true
    (fails (fun () ->
         let b = Netlist.Builder.create "x" in
         ignore (Netlist.Builder.input b "a");
         ignore (Netlist.Builder.input b "a");
         Netlist.Builder.finish b))

let test_fanout () =
  let b = Netlist.Builder.create "fan" in
  let a = Netlist.Builder.input b "a" in
  let c = Netlist.Builder.input b "c" in
  ignore (Netlist.Builder.add b and2 ~inputs:[ a; c ] ~output:"x");
  ignore (Netlist.Builder.add b or2 ~inputs:[ a; c ] ~output:"y");
  Netlist.Builder.output b "x";
  Netlist.Builder.output b "y";
  let nl = Netlist.Builder.finish b in
  check_i "a fans out to 2" 2 (List.length (Netlist.fanout nl "a"));
  check_i "x fans out to 0" 0 (List.length (Netlist.fanout nl "x"));
  check "gate_of_net on PI" true (Netlist.gate_of_net nl "a" = None)

let test_technology_queries () =
  let nl = two_level () in
  check "single technology" true (Netlist.single_technology nl = Some Technology.Domino_cmos);
  check "is domino" true (Netlist.check_domino nl);
  let b = Netlist.Builder.create "mixed" in
  let a = Netlist.Builder.input b "a" in
  let c = Netlist.Builder.input b "c" in
  let w = Netlist.Builder.add b and2 ~inputs:[ a; c ] ~output:"w" in
  ignore (Netlist.Builder.add b nand2 ~inputs:[ w; c ] ~output:"z");
  Netlist.Builder.output b "z";
  let mixed = Netlist.Builder.finish b in
  check "mixed not single" true (Netlist.single_technology mixed = None);
  check "mixed not domino" false (Netlist.check_domino mixed);
  check_i "two distinct cells" 2 (List.length (Netlist.distinct_cells mixed))

let test_transistor_count () =
  let nl = two_level () in
  (* each domino gate: 2 SN + T1 + T2 + inverter(2) = 6; two gates = 12 *)
  check_i "domino transistors" 12 (Netlist.n_transistors nl);
  let b = Netlist.Builder.create "s" in
  let a = Netlist.Builder.input b "a" in
  let c = Netlist.Builder.input b "c" in
  ignore (Netlist.Builder.add b nand2 ~inputs:[ a; c ] ~output:"z");
  Netlist.Builder.output b "z";
  let nl2 = Netlist.Builder.finish b in
  (* static CMOS nand2: 2 pull-down + 2 pull-up *)
  check_i "static transistors" 4 (Netlist.n_transistors nl2)

let test_unobserved_gates_kept () =
  (* Gates whose output is not observed still belong to the network. *)
  let b = Netlist.Builder.create "dangling" in
  let a = Netlist.Builder.input b "a" in
  let c = Netlist.Builder.input b "c" in
  ignore (Netlist.Builder.add b and2 ~inputs:[ a; c ] ~output:"unused");
  let z = Netlist.Builder.add b or2 ~inputs:[ a; c ] ~output:"z" in
  Netlist.Builder.output b z;
  let nl = Netlist.Builder.finish b in
  check_i "both gates kept" 2 (Netlist.n_gates nl)

let () =
  Alcotest.run "netlist"
    [
      ( "builder",
        [
          Alcotest.test_case "basic construction" `Quick test_build;
          Alcotest.test_case "topological sorting" `Quick test_topological_order;
          Alcotest.test_case "levels and clock phases" `Quick test_levels_and_phases;
          Alcotest.test_case "validation errors" `Quick test_validation_errors;
          Alcotest.test_case "unobserved gates kept" `Quick test_unobserved_gates_kept;
        ] );
      ( "queries",
        [
          Alcotest.test_case "fanout" `Quick test_fanout;
          Alcotest.test_case "technology" `Quick test_technology_queries;
          Alcotest.test_case "transistor count" `Quick test_transistor_count;
        ] );
    ]
