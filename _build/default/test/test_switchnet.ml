open Dynmos_expr
open Dynmos_switchnet

(* Tests for series-parallel switching networks and the general switch
   graph: transmission functions, duals, fault injection, resistances and
   the SP/graph cross-check. *)

let check = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

let e = Parse.expr

let fig9_net () = Spnet.of_expr (e "a*(b+c)+d*e")

let equal_fn = Truth_table.equal_exprs

let test_numbering () =
  let net = fig9_net () in
  check_i "five switches" 5 (Spnet.n_switches net);
  let names = List.map (fun s -> s.Spnet.input) (Spnet.switches net) in
  Alcotest.(check (list string)) "left-to-right T1..T5" [ "a"; "b"; "c"; "d"; "e" ] names;
  let ids = List.map (fun s -> s.Spnet.id) (Spnet.switches net) in
  Alcotest.(check (list int)) "ids 1..5" [ 1; 2; 3; 4; 5 ] ids

let test_transmission () =
  let net = fig9_net () in
  check "transmission" true (equal_fn (Spnet.transmission net) (e "a*(b+c)+d*e"));
  let neg = Spnet.of_expr (e "!a*b") in
  check "negated literal" true (equal_fn (Spnet.transmission neg) (e "!a*b"))

let test_not_sp () =
  check "const rejected" true
    (match Spnet.of_expr (e "1") with
    | _ -> false
    | exception Spnet.Not_series_parallel _ -> true);
  check "negated compound rejected" true
    (match Spnet.of_expr (Expr.not_ (e "a*b")) with
    | _ -> false
    | exception Spnet.Not_series_parallel _ -> true);
  check "xor rejected" true
    (match Spnet.of_expr (Expr.xor (e "a") (e "b")) with
    | _ -> false
    | exception Spnet.Not_series_parallel _ -> true)

let test_faults () =
  let net = fig9_net () in
  (* The paper's Fig. 9 classes at switch level. *)
  check "T1 open" true (equal_fn (Spnet.faulty_transmission net (Spnet.Switch_open 1)) (e "d*e"));
  check "T1 closed" true
    (equal_fn (Spnet.faulty_transmission net (Spnet.Switch_closed 1)) (e "b+c+d*e"));
  check "T2 closed == T3 closed" true
    (equal_fn
       (Spnet.faulty_transmission net (Spnet.Switch_closed 2))
       (Spnet.faulty_transmission net (Spnet.Switch_closed 3)));
  check "T4 open == T5 open" true
    (equal_fn
       (Spnet.faulty_transmission net (Spnet.Switch_open 4))
       (Spnet.faulty_transmission net (Spnet.Switch_open 5)));
  (* Gate-open behaves as open for N switches and closed for P switches
     (assumption A1). *)
  check "gate open N" true
    (equal_fn (Spnet.faulty_transmission net (Spnet.Gate_open 1)) (e "d*e"));
  let pnet = Spnet.of_expr ~polarity:Spnet.P (e "a*b") in
  check "P net transmission" true (equal_fn (Spnet.transmission pnet) (e "!a*!b"));
  check "gate open P conducts" true
    (equal_fn (Spnet.faulty_transmission pnet (Spnet.Gate_open 1)) (e "!b"))

let test_multi_faults () =
  let net = Spnet.of_expr (e "a*b+a*c") in
  (* two switches driven by [a]: ids 1 and 3 *)
  let a_switches = Spnet.switches_of_input net "a" in
  check_i "a drives two switches" 2 (List.length a_switches);
  let all_open = List.map (fun s -> Spnet.Switch_open s.Spnet.id) a_switches in
  check "both a switches open kills both products" true
    (equal_fn (Spnet.faulty_transmission_multi net all_open) (e "0"));
  (* single-switch fault only kills one product *)
  check "single a switch open" true
    (equal_fn (Spnet.faulty_transmission net (Spnet.Switch_open 1)) (e "a*c"))

let test_all_faults_order () =
  let net = fig9_net () in
  let fs = Spnet.all_faults net in
  check_i "2n faults" 10 (List.length fs);
  check "closed before open per switch" true
    (match fs with
    | Spnet.Switch_closed 1 :: Spnet.Switch_open 1 :: Spnet.Switch_closed 2 :: _ -> true
    | _ -> false)

let test_dual () =
  let net = Spnet.of_expr (e "a+b") in
  check "dual of parallel is series of complements" true
    (equal_fn (Spnet.transmission (Spnet.dual net)) (e "!a*!b"));
  let net9 = fig9_net () in
  check "dual complements transmission" true
    (equal_fn (Spnet.transmission (Spnet.dual net9)) (Expr.not_ (e "a*(b+c)+d*e")))

let test_resistance () =
  let series = Spnet.of_expr ~r_on:2.0 (e "a*b") in
  let env _ = true in
  (match Spnet.resistance series env with
  | Some r -> Alcotest.(check (float 1e-9)) "series adds" 4.0 r
  | None -> Alcotest.fail "expected path");
  let par = Spnet.of_expr ~r_on:2.0 (e "a+b") in
  (match Spnet.resistance par env with
  | Some r -> Alcotest.(check (float 1e-9)) "parallel halves" 1.0 r
  | None -> Alcotest.fail "expected path");
  check "no path" true (Spnet.resistance series (fun _ -> false) = None);
  (* min resistance of fig9 is with every switch on: branch a*(b||c) =
     1 + 0.5 = 1.5 in parallel with branch d*e = 2, i.e. 6/7 *)
  match Spnet.min_resistance (fig9_net ()) with
  | Some r -> Alcotest.(check (float 1e-9)) "min path" (6.0 /. 7.0) r
  | None -> Alcotest.fail "expected conducting assignment"

let test_pp () =
  let s = Fmt.str "%a" Spnet.pp (fig9_net ()) in
  check "pp mentions T1" true (String.length s > 0 && String.index_opt s 'T' <> None);
  check_s "switch literal" "a"
    (Expr.to_string (Spnet.switch_literal (List.hd (Spnet.switches (fig9_net ())))))

(* --- Graph --------------------------------------------------------------- *)

let test_graph_of_spnet () =
  let net = fig9_net () in
  let g = Graph.of_spnet net in
  check_i "five edges" 5 (List.length (Graph.edges g));
  check "same transmission" true (equal_fn (Graph.transmission g) (e "a*(b+c)+d*e"))

let test_graph_faults () =
  let net = fig9_net () in
  let g = Graph.of_spnet net in
  check "open fault matches" true
    (equal_fn (Graph.transmission ~fault:(Spnet.Switch_open 1) g) (e "d*e"));
  check "closed fault matches" true
    (equal_fn (Graph.transmission ~fault:(Spnet.Switch_closed 1) g) (e "b+c+d*e"));
  check_i "fault list" 10 (List.length (Graph.all_faults g))

let test_bridge () =
  (* Wheatstone bridge: S-a-m1-c-D, S-b-m2-d-D, bridge e between m1,m2. *)
  let g = Graph.bridge ~a:"a" ~b:"b" ~c:"c" ~d:"d" ~e:"e" in
  let expected = e "a*c+b*d+a*e*d+b*e*c" in
  check "bridge transmission" true (equal_fn (Graph.transmission g) expected);
  (* The bridge switch open degrades it to two disjoint paths. *)
  check "bridge open" true
    (equal_fn (Graph.transmission ~fault:(Spnet.Switch_open 5) g) (e "a*c+b*d"))

let test_graph_validation () =
  check "bad endpoint" true
    (match
       Graph.create ~n_nodes:2
         [
           {
             Graph.id = 1;
             u = 0;
             v = 5;
             switch = { Spnet.id = 1; input = "a"; negated = false; polarity = Spnet.N; r_on = 1.0 };
           };
         ]
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  check "too few nodes" true
    (match Graph.create ~n_nodes:1 [] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* QCheck: SP and graph transmissions agree on random SP expressions, for
   every single-switch fault too. *)
let gen_sp_expr =
  let open QCheck2.Gen in
  let var = map (fun i -> Expr.var (Fmt.str "v%d" i)) (int_bound 3) in
  sized
  @@ fix (fun self n ->
         if n <= 1 then var
         else
           frequency
             [
               (2, var);
               (3, map2 (fun a b -> Expr.and_ [ a; b ]) (self (n / 2)) (self (n / 2)));
               (3, map2 (fun a b -> Expr.or_ [ a; b ]) (self (n / 2)) (self (n / 2)));
             ])

let qcheck_sp_graph_agree =
  QCheck2.Test.make ~name:"SP vs graph transmission (incl. faults)" ~count:100 gen_sp_expr
    (fun expr ->
      match Spnet.of_expr expr with
      | exception Spnet.Not_series_parallel _ -> true
      | net ->
          let g = Graph.of_spnet net in
          equal_fn (Spnet.transmission net) (Graph.transmission g)
          && List.for_all
               (fun f ->
                 equal_fn (Spnet.faulty_transmission net f) (Graph.transmission ~fault:f g))
               (Spnet.all_faults net))

let qcheck_dual_complements =
  QCheck2.Test.make ~name:"dual network complements transmission" ~count:100 gen_sp_expr
    (fun expr ->
      match Spnet.of_expr expr with
      | exception Spnet.Not_series_parallel _ -> true
      | net ->
          equal_fn (Spnet.transmission (Spnet.dual net)) (Expr.not_ (Spnet.transmission net)))

let qcheck_open_weakens =
  QCheck2.Test.make ~name:"open weakens, closed strengthens" ~count:100 gen_sp_expr
    (fun expr ->
      match Spnet.of_expr expr with
      | exception Spnet.Not_series_parallel _ -> true
      | net ->
          let t = Spnet.transmission net in
          List.for_all
            (fun s ->
              let t_open = Spnet.faulty_transmission net (Spnet.Switch_open s.Spnet.id) in
              let t_closed = Spnet.faulty_transmission net (Spnet.Switch_closed s.Spnet.id) in
              (* onset(t_open) <= onset(t) <= onset(t_closed) *)
              Truth_table.equal_exprs (Expr.and_ [ t_open; t ]) t_open
              && Truth_table.equal_exprs (Expr.and_ [ t; t_closed ]) t)
            (Spnet.switches net))

let () =
  Alcotest.run "switchnet"
    [
      ( "spnet",
        [
          Alcotest.test_case "transistor numbering" `Quick test_numbering;
          Alcotest.test_case "transmission" `Quick test_transmission;
          Alcotest.test_case "non-SP rejection" `Quick test_not_sp;
          Alcotest.test_case "fault injection" `Quick test_faults;
          Alcotest.test_case "multi-switch faults" `Quick test_multi_faults;
          Alcotest.test_case "fault enumeration order" `Quick test_all_faults_order;
          Alcotest.test_case "dual network" `Quick test_dual;
          Alcotest.test_case "resistance" `Quick test_resistance;
          Alcotest.test_case "printing" `Quick test_pp;
        ] );
      ( "graph",
        [
          Alcotest.test_case "of_spnet" `Quick test_graph_of_spnet;
          Alcotest.test_case "graph faults" `Quick test_graph_faults;
          Alcotest.test_case "bridge (non-SP)" `Quick test_bridge;
          Alcotest.test_case "validation" `Quick test_graph_validation;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_sp_graph_agree;
          QCheck_alcotest.to_alcotest qcheck_dual_complements;
          QCheck_alcotest.to_alcotest qcheck_open_weakens;
        ] );
    ]
