open Dynmos_expr
open Dynmos_cell
open Dynmos_core

(* Tests for the paper's contribution: the physical fault model, the
   Section-3 case analysis (Fault_map), and the Section-5 fault library
   generation with its Fig. 9 table. *)

let check = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

let e = Parse.expr
let equal_fn = Truth_table.equal_exprs

let combinational_equal logical expr =
  match logical with
  | Fault_map.Combinational f -> equal_fn f expr
  | Fault_map.Delay _ | Fault_map.Sequential _ | Fault_map.Contention _ -> false

(* --- Fault enumeration --------------------------------------------------- *)

let test_enumerate_domino () =
  let fs = Fault.enumerate Stdcells.fig9 in
  (* 5 switches x 2 + 5 gate-line opens + T1/T2 x 2 + inverter x 4 +
     2 connection opens = 25. *)
  check_i "25 faults" 25 (List.length fs);
  check "starts closed/open T1" true
    (match fs with Fault.Network_closed 1 :: Fault.Network_open 1 :: _ -> true | _ -> false)

let test_enumerate_dynamic_nmos () =
  let c = Stdcells.nand 3 Technology.Dynamic_nmos in
  let fs = Fault.enumerate c in
  (* 3 switches x 2 + 3 gate lines + precharge x 2 + 2 connections = 13 *)
  check_i "13 faults" 13 (List.length fs)

let test_enumerate_static () =
  let c = Stdcells.nor 2 Technology.Static_cmos in
  let fs = Fault.enumerate c in
  (* stuck-at: (2 inputs + output) x 2 = 6; n-net 2x2, p-net 2x2 *)
  check_i "14 faults" 14 (List.length fs)

let test_enumerate_bipolar () =
  (* Bipolar cells are described functionally (transmission-preserving). *)
  let c = Stdcells.and_gate 2 Technology.Bipolar in
  check_i "stuck-at only" 6 (List.length (Fault.enumerate c))

let test_labels () =
  let c9 = Stdcells.fig9 in
  check_s "CMOS-1" "CMOS-1" (Fault.label c9 Fault.Evaluate_closed);
  check_s "CMOS-2" "CMOS-2" (Fault.label c9 Fault.Evaluate_open);
  check_s "CMOS-3" "CMOS-3" (Fault.label c9 Fault.Precharge_closed);
  check_s "CMOS-4" "CMOS-4" (Fault.label c9 Fault.Precharge_open);
  check_s "switch name" "a closed" (Fault.label c9 (Fault.Network_closed 1));
  let dn = Stdcells.nand 3 Technology.Dynamic_nmos in
  (* n = 3: T_i open = nMOS-i, T_i closed = nMOS-(3+i), precharge
     open/closed = nMOS-7/nMOS-8.  Labels use the paper numbering. *)
  check_s "nMOS-1" "nMOS-1" (Fault.label dn (Fault.Network_open 1));
  check_s "nMOS-5" "nMOS-5" (Fault.label dn (Fault.Network_closed 2));
  check_s "nMOS-7" "nMOS-7" (Fault.label dn Fault.Precharge_open);
  check_s "nMOS-8" "nMOS-8" (Fault.label dn Fault.Precharge_closed);
  check_s "stuck-at label" "s0-a" (Fault.describe dn (Fault.Stuck_at ("a", false)));
  (* multiply-used inputs get disambiguated *)
  let c =
    Cell.make ~technology:Technology.Domino_cmos ~inputs:[ "a"; "b"; "c" ] ~output:"z"
      [ ("z", e "a*b+a*c") ]
  in
  check_s "disambiguated" "a(T1) closed" (Fault.describe c (Fault.Network_closed 1))

(* --- Section 3: the domino CMOS case analysis ------------------------------ *)

let test_domino_clocking_faults () =
  let c = Stdcells.fig9 in
  (* CMOS-2: s0-z *)
  check "CMOS-2 -> s0-z" true (combinational_equal (Fault_map.map c Fault.Evaluate_open) (e "0"));
  (* CMOS-4: s1-z *)
  check "CMOS-4 -> s1-z" true (combinational_equal (Fault_map.map c Fault.Precharge_open) (e "1"));
  (* CMOS-1: timing only, possibly undetectable *)
  check "CMOS-1 -> delay, unobservable" true
    (match Fault_map.map c Fault.Evaluate_closed with
    | Fault_map.Delay { observed_as = None; _ } -> true
    | _ -> false);
  (* CMOS-3 case a (strong precharge): hard s0-z *)
  check "CMOS-3a -> s0-z" true
    (combinational_equal
       (Fault_map.map ~electrical:Fault_map.default_electrical c Fault.Precharge_closed)
       (e "0"));
  (* CMOS-3 case b (weak precharge): delay fault seen as s0-z at speed *)
  check "CMOS-3b -> delay seen as s0-z" true
    (match Fault_map.map ~electrical:Fault_map.weak_electrical c Fault.Precharge_closed with
    | Fault_map.Delay { observed_as = Some f; _ } -> equal_fn f (e "0")
    | _ -> false)

let test_domino_inverter_faults () =
  let c = Stdcells.fig9 in
  check "inv p open -> s0-z" true
    (combinational_equal (Fault_map.map c Fault.Inverter_p_open) (e "0"));
  check "inv n open -> s1-z (A2)" true
    (combinational_equal (Fault_map.map c Fault.Inverter_n_open) (e "1"));
  (* closed inverter devices: ratioed -> delay under symmetric strengths *)
  check "inv p closed -> delay to 1" true
    (match Fault_map.map c Fault.Inverter_p_closed with
    | Fault_map.Delay { observed_as = Some f; _ } -> equal_fn f (e "1")
    | Fault_map.Combinational f -> equal_fn f (e "1")
    | _ -> false)

let test_domino_connection_faults () =
  let c = Stdcells.fig9 in
  check "pulldown conn open -> s0-z" true
    (combinational_equal (Fault_map.map c (Fault.Connection_open Fault.Pulldown_path)) (e "0"));
  check "precharge conn open -> s1-z" true
    (combinational_equal (Fault_map.map c (Fault.Connection_open Fault.Precharge_path)) (e "1"))

let test_domino_network_faults () =
  let c = Stdcells.fig9 in
  check "a closed" true
    (combinational_equal (Fault_map.map c (Fault.Network_closed 1)) (e "b+c+d*e"));
  check "a open" true (combinational_equal (Fault_map.map c (Fault.Network_open 1)) (e "d*e"));
  check "gate line a open" true
    (combinational_equal (Fault_map.map c (Fault.Input_gate_open "a")) (e "d*e"))

(* --- Section 3: the dynamic nMOS case analysis ------------------------------ *)

let test_dynamic_nmos_faults () =
  let c = Stdcells.nand 3 Technology.Dynamic_nmos in
  (* T_i open: input reads s-a-0 in T; z = !(T) *)
  check "nMOS-1: T1 open" true
    (combinational_equal (Fault_map.map c (Fault.Network_open 1)) (e "1"));
  (* T = a*b*c with a=0 is 0, so z = !0 = 1 constantly *)
  check "nMOS-(n+1): T1 closed = s1-a" true
    (combinational_equal (Fault_map.map c (Fault.Network_closed 1)) (e "!(b*c)"));
  (* The paper's "very interesting fact": both precharge faults are s0-z. *)
  check "precharge open -> s0-z" true
    (combinational_equal (Fault_map.map c Fault.Precharge_open) (e "0"));
  check "precharge closed -> s0-z" true
    (combinational_equal (Fault_map.map c Fault.Precharge_closed) (e "0"));
  check "S(n+2)/S(n+3) open -> s1-z" true
    (combinational_equal (Fault_map.map c (Fault.Connection_open Fault.Pulldown_path)) (e "1"))

let test_dynamic_nmos_multi_occurrence () =
  (* In dynamic nMOS a stuck-closed transistor charges its *input*, so all
     switches driven by that input conduct — unlike domino where only the
     faulty channel is shorted. *)
  let dyn =
    Cell.make ~technology:Technology.Dynamic_nmos ~inputs:[ "a"; "b"; "c" ] ~output:"z"
      [ ("z", e "a*b+a*c") ]
  in
  check "dynamic: input stuck 1" true
    (combinational_equal (Fault_map.map dyn (Fault.Network_closed 1)) (e "!(b+c)"));
  let dom =
    Cell.make ~technology:Technology.Domino_cmos ~inputs:[ "a"; "b"; "c" ] ~output:"z"
      [ ("z", e "a*b+a*c") ]
  in
  check "domino: single channel shorted" true
    (combinational_equal (Fault_map.map dom (Fault.Network_closed 1)) (e "b+a*c"))

(* --- Section 1: the static CMOS problem cases ------------------------------- *)

let test_static_stuck_open_sequential () =
  let nor = Stdcells.fig1_nor in
  (* Fig. 1: pull-down transistor of input A open -> memory exactly at
     A=1, B=0. *)
  (match Fault_map.map nor (Fault.Network_open 1) with
  | Fault_map.Sequential { retain_when } ->
      check "fig1 retain condition" true (equal_fn retain_when (e "a*!b"))
  | _ -> Alcotest.fail "expected sequential behaviour");
  (* Pull-up switch open: NOR pull-up is serial !a*!b; opening either
     leaves 00 floating. *)
  match Fault_map.map nor (Fault.Pullup_open 1) with
  | Fault_map.Sequential { retain_when } ->
      check "pull-up retain at 00" true (equal_fn retain_when (e "!a*!b"))
  | _ -> Alcotest.fail "expected sequential behaviour"

let test_static_stuck_closed_contention () =
  (* Fig. 2: inverter with the pull-up permanently closed fights the
     pull-down at a=1 and degrades into a slow pull-down inverter. *)
  let inv = Stdcells.fig2_inverter in
  match Fault_map.map inv (Fault.Pullup_closed 1) with
  | Fault_map.Contention { fight_when; resolves_to; factor } ->
      check "fight at a=1" true (equal_fn fight_when (e "a"));
      check "resolves to !a" true (equal_fn resolves_to (e "!a"));
      check "slower" true (factor > 1.0)
  | _ -> Alcotest.fail "expected contention"

let test_static_stuck_at () =
  let nand2 = Stdcells.nand 2 Technology.Static_cmos in
  check "input s-a-0" true
    (combinational_equal (Fault_map.map nand2 (Fault.Stuck_at ("a", false))) (e "1"));
  check "input s-a-1" true
    (combinational_equal (Fault_map.map nand2 (Fault.Stuck_at ("a", true))) (e "!b"));
  check "output s-a-1" true
    (combinational_equal (Fault_map.map nand2 (Fault.Stuck_at ("z", true))) (e "1"))

let test_nmos_pulldown_faults () =
  (* Ratioed static nMOS: the depletion load always loses, so switch
     faults stay combinational (the paper's reference [2]). *)
  let c = Stdcells.nor 2 Technology.Nmos_pulldown in
  check "pull-down open" true
    (combinational_equal (Fault_map.map c (Fault.Network_open 1)) (e "!b"));
  check "pull-down closed" true
    (combinational_equal (Fault_map.map c (Fault.Network_closed 1)) (e "0"))

let test_inapplicable () =
  let fails f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check "evaluate fault on static" true
    (fails (fun () -> Fault_map.map (Stdcells.nor 2 Technology.Static_cmos) Fault.Evaluate_open));
  check "pullup fault on domino" true
    (fails (fun () -> Fault_map.map Stdcells.fig9 (Fault.Pullup_open 1)))

(* --- Claim 2: never sequential ----------------------------------------------- *)

let test_never_sequential () =
  check "fig9" true (Fault_map.never_sequential Stdcells.fig9);
  check "dynamic nand" true
    (Fault_map.never_sequential (Stdcells.nand 4 Technology.Dynamic_nmos));
  check "dynamic nor" true (Fault_map.never_sequential (Stdcells.nor 3 Technology.Dynamic_nmos));
  check "domino ao" true
    (Fault_map.never_sequential (Stdcells.ao ~groups:[ 2; 2 ] Technology.Domino_cmos));
  (* the check is false for static technologies by definition *)
  check "static is not" false (Fault_map.never_sequential Stdcells.fig1_nor)

(* --- Section 5: fault library generation -------------------------------------- *)

let fig9_lib () = Faultlib.generate Stdcells.fig9

let test_fig9_table_classes () =
  let lib = fig9_lib () in
  check_s "fault free" "a*b+a*c+d*e" lib.Faultlib.fault_free_text;
  let texts =
    List.filter_map
      (fun en ->
        match en.Faultlib.effect with Faultlib.Function { text; _ } -> Some text | _ -> None)
      lib.Faultlib.function_classes
  in
  (* The paper's table, classes 1-10 in order. *)
  Alcotest.(check (list string))
    "the ten classes"
    [
      "b+c+d*e" (* 1: a closed *);
      "d*e" (* 2: a open *);
      "a+d*e" (* 3: b closed, c closed *);
      "a*c+d*e" (* 4: b open *);
      "a*b+d*e" (* 5: c open *);
      "a*b+a*c+e" (* 6: d closed *);
      "a*b+a*c" (* 7: d open, e open *);
      "a*b+a*c+d" (* 8: e closed *);
      "0" (* 9: CMOS-2, CMOS-3 *);
      "1" (* 10: CMOS-4 *);
    ]
    texts

let test_fig9_equivalences () =
  let lib = fig9_lib () in
  let members_of i =
    let entry = List.nth lib.Faultlib.function_classes (i - 1) in
    List.map snd entry.Faultlib.members
  in
  check "class 3 groups b and c closed" true
    (List.mem "b closed" (members_of 3) && List.mem "c closed" (members_of 3));
  check "class 7 groups d and e open" true
    (List.mem "d open" (members_of 7) && List.mem "e open" (members_of 7));
  check "class 9 groups CMOS-2 and CMOS-3" true
    (List.mem "CMOS-2" (members_of 9) && List.mem "CMOS-3" (members_of 9));
  check "class 10 is CMOS-4" true (List.mem "CMOS-4" (members_of 10));
  (* gate-line opens fold into the transistor-open classes *)
  check "gate line a joins class 2" true (List.mem "gate line a open" (members_of 2))

let test_fig9_specials () =
  let lib = fig9_lib () in
  check "CMOS-1 is a special class" true
    (List.exists
       (fun en ->
         List.exists (fun (_, l) -> l = "CMOS-1") en.Faultlib.members
         &&
         match en.Faultlib.effect with
         | Faultlib.Delay_fault { observed_as = None; _ } -> true
         | _ -> false)
       lib.Faultlib.special_classes);
  (* CMOS-1 flagged as possibly undetectable *)
  check "CMOS-1 not detectable" true
    (match Faultlib.lookup lib Fault.Evaluate_closed with
    | Some en -> not en.Faultlib.detectable
    | None -> false)

let test_lookup_and_tables () =
  let lib = fig9_lib () in
  (match Faultlib.lookup lib (Fault.Network_closed 2) with
  | Some en -> check_i "b closed in class 3" 3 en.Faultlib.class_id
  | None -> Alcotest.fail "lookup failed");
  check_i "ten detectable function tables" 10 (List.length (Faultlib.tables lib));
  check_i "classes total" (List.length (Faultlib.entries lib)) (Faultlib.n_classes lib);
  (* every table differs from the fault-free one *)
  check "tables differ from good" true
    (List.for_all
       (fun (_, tt) -> not (Truth_table.equal tt lib.Faultlib.fault_free_table))
       (Faultlib.tables lib))

let test_undetectable_redundancy () =
  (* A redundant structure: z = a + a*b; the switch for b stuck open
     leaves the function unchanged -> undetectable class. *)
  let c =
    Cell.make ~technology:Technology.Domino_cmos ~inputs:[ "a"; "b" ] ~output:"z"
      [ ("z", e "a+a*b") ]
  in
  let lib = Faultlib.generate c in
  (match Faultlib.lookup lib (Fault.Network_open 3) with
  | Some en ->
      check "b open undetectable" false en.Faultlib.detectable;
      check "it equals fault-free" true
        (match en.Faultlib.effect with
        | Faultlib.Function { text; _ } -> String.equal text lib.Faultlib.fault_free_text
        | _ -> false)
  | None -> Alcotest.fail "lookup failed");
  check "detectable excludes it" true
    (List.for_all (fun en -> en.Faultlib.detectable) (Faultlib.detectable_function_classes lib))

let test_weak_electrical_library () =
  (* Under weak precharge the CMOS-3 fault leaves class 9 and becomes a
     delay class. *)
  let lib = Faultlib.generate ~electrical:Fault_map.weak_electrical Stdcells.fig9 in
  match Faultlib.lookup lib Fault.Precharge_closed with
  | Some en ->
      check "CMOS-3 weak is delay" true
        (match en.Faultlib.effect with
        | Faultlib.Delay_fault { observed_as = Some "0"; _ } -> true
        | _ -> false)
  | None -> Alcotest.fail "lookup failed"

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let test_emission () =
  let lib = fig9_lib () in
  let pas = Faultlib.to_pascal lib in
  check "pascal good function" true (contains pas "function fig9_good(a, b, c, d, e : boolean)");
  check "pascal fault 1" true (contains pas "function fig9_fault_1");
  check "pascal and/or" true (contains pas "(a and b) or (a and c) or (d and e)");
  let ml = Faultlib.to_ocaml lib in
  check "ocaml good function" true (contains ml "let fig9_good a b c d e");
  check "ocaml class comment" true (contains ml "(* class 2:");
  check "emitted body" true (contains ml "(a && b) || (a && c) || (d && e)")

let test_pp_table () =
  let s = Fmt.str "%a" (fun ppf l -> Faultlib.pp_table ppf l) (fig9_lib ()) in
  check "header" true (contains s "u = a*b+a*c+d*e");
  check "class 9 line" true (contains s "u = 0");
  check "CMOS-1 line" true (contains s "possibly undetectable")

(* QCheck: on random domino cells, every fault maps to a combinational or
   delay effect and the library partitions all faults. *)
let gen_sp_expr =
  let open QCheck2.Gen in
  let var = map (fun i -> Expr.var (Fmt.str "v%d" i)) (int_bound 3) in
  sized
  @@ fix (fun self n ->
         if n <= 1 then var
         else
           frequency
             [
               (2, var);
               (3, map2 (fun a b -> Expr.and_ [ a; b ]) (self (n / 2)) (self (n / 2)));
               (3, map2 (fun a b -> Expr.or_ [ a; b ]) (self (n / 2)) (self (n / 2)));
             ])

let cell_of_expr technology expr =
  let inputs = Expr.support expr in
  match inputs with
  | [] -> None
  | _ -> (
      match Cell.make ~technology ~inputs ~output:"zz" [ ("zz", expr) ] with
      | c -> Some c
      | exception Cell.Invalid _ -> None)

let qcheck_dynamic_never_sequential =
  QCheck2.Test.make ~name:"dynamic cells never sequential (random SNs)" ~count:100 gen_sp_expr
    (fun expr ->
      match cell_of_expr Technology.Domino_cmos expr with
      | None -> true
      | Some c -> (
          Fault_map.never_sequential c
          &&
          match cell_of_expr Technology.Dynamic_nmos expr with
          | None -> true
          | Some d -> Fault_map.never_sequential d))

let qcheck_library_partitions =
  QCheck2.Test.make ~name:"library covers every enumerated fault" ~count:60 gen_sp_expr
    (fun expr ->
      match cell_of_expr Technology.Domino_cmos expr with
      | None -> true
      | Some c ->
          let lib = Faultlib.generate c in
          let faults = Fault.enumerate c in
          List.length faults = lib.Faultlib.n_faults
          && List.for_all (fun f -> Faultlib.lookup lib f <> None) faults)

let qcheck_open_is_stuck0_in_transmission =
  (* Paper nMOS-i: an open SN transistor appears as s-a-0 of its input in
     the transmission function (for single-occurrence inputs). *)
  QCheck2.Test.make ~name:"open switch = input s-a-0 (single occurrence)" ~count:100 gen_sp_expr
    (fun expr ->
      match cell_of_expr Technology.Domino_cmos expr with
      | None -> true
      | Some c ->
          let net = Cell.network c in
          List.for_all
            (fun s ->
              let occurrences =
                Dynmos_switchnet.Spnet.switches_of_input net s.Dynmos_switchnet.Spnet.input
              in
              List.length occurrences > 1
              ||
              match Fault_map.map c (Fault.Network_open s.Dynmos_switchnet.Spnet.id) with
              | Fault_map.Combinational f ->
                  equal_fn f (Expr.cofactor s.Dynmos_switchnet.Spnet.input false (Cell.logic c))
              | _ -> false)
            (Dynmos_switchnet.Spnet.switches net))

let () =
  Alcotest.run "core"
    [
      ( "enumeration",
        [
          Alcotest.test_case "domino fig9" `Quick test_enumerate_domino;
          Alcotest.test_case "dynamic nMOS" `Quick test_enumerate_dynamic_nmos;
          Alcotest.test_case "static CMOS" `Quick test_enumerate_static;
          Alcotest.test_case "bipolar" `Quick test_enumerate_bipolar;
          Alcotest.test_case "labels" `Quick test_labels;
        ] );
      ( "fault_map_domino",
        [
          Alcotest.test_case "clocking (CMOS-1..4)" `Quick test_domino_clocking_faults;
          Alcotest.test_case "output inverter" `Quick test_domino_inverter_faults;
          Alcotest.test_case "connection opens" `Quick test_domino_connection_faults;
          Alcotest.test_case "network faults" `Quick test_domino_network_faults;
        ] );
      ( "fault_map_dynamic_nmos",
        [
          Alcotest.test_case "case analysis" `Quick test_dynamic_nmos_faults;
          Alcotest.test_case "input-charging vs channel-short" `Quick
            test_dynamic_nmos_multi_occurrence;
        ] );
      ( "fault_map_static",
        [
          Alcotest.test_case "stuck-open is sequential (fig1)" `Quick
            test_static_stuck_open_sequential;
          Alcotest.test_case "stuck-closed contention (fig2)" `Quick
            test_static_stuck_closed_contention;
          Alcotest.test_case "stuck-at model" `Quick test_static_stuck_at;
          Alcotest.test_case "nMOS pull-down" `Quick test_nmos_pulldown_faults;
          Alcotest.test_case "inapplicable combinations" `Quick test_inapplicable;
        ] );
      ("claim", [ Alcotest.test_case "never sequential" `Quick test_never_sequential ]);
      ( "faultlib",
        [
          Alcotest.test_case "fig9 table classes" `Quick test_fig9_table_classes;
          Alcotest.test_case "fig9 equivalences" `Quick test_fig9_equivalences;
          Alcotest.test_case "fig9 special classes" `Quick test_fig9_specials;
          Alcotest.test_case "lookup and tables" `Quick test_lookup_and_tables;
          Alcotest.test_case "undetectable redundancy" `Quick test_undetectable_redundancy;
          Alcotest.test_case "weak electrical variant" `Quick test_weak_electrical_library;
          Alcotest.test_case "pascal/ocaml emission" `Quick test_emission;
          Alcotest.test_case "table printing" `Quick test_pp_table;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_dynamic_never_sequential;
          QCheck_alcotest.to_alcotest qcheck_library_partitions;
          QCheck_alcotest.to_alcotest qcheck_open_is_stuck0_in_transmission;
        ] );
    ]
