open Dynmos_util
open Dynmos_expr
open Dynmos_cell
open Dynmos_core
open Dynmos_netlist
open Dynmos_sim
open Dynmos_faultsim
open Dynmos_protest
open Dynmos_atpg
open Dynmos_circuits

(* End-to-end pipelines across the whole system:

   1. cell text -> fault library -> netlist -> PROTEST -> patterns ->
      validated coverage;
   2. the full A1/A2 story: deterministic set applied twice vs random
      patterns, on the charge-level simulator;
   3. cross-technology consistency: the same function in static CMOS and
      domino yields the same good behaviour while only static faults are
      sequential. *)

let check = Alcotest.(check bool)

let test_text_to_validated_test () =
  (* Parse a two-cell library from text, instantiate a network of those
     cells, run the whole PROTEST pipeline, and fault-simulate the
     proposed random test. *)
  let text =
    "TECHNOLOGY domino-CMOS;\nNAME aotree;\nINPUT a,b,c;\nOUTPUT z;\n\
     x1 := a*b;\nz := x1+c;\n\
     TECHNOLOGY domino-CMOS;\nNAME pair;\nINPUT a,b;\nOUTPUT z;\nz := a*b;\n"
  in
  let cells = Cell_parser.cells text in
  let aotree = List.find (fun c -> Cell.name c = "aotree") cells in
  let pair = List.find (fun c -> Cell.name c = "pair") cells in
  let b = Netlist.Builder.create "mixed" in
  Netlist.Builder.inputs b [ "i1"; "i2"; "i3"; "i4"; "i5" ];
  let w1 = Netlist.Builder.add b pair ~inputs:[ "i1"; "i2" ] ~output:"w1" in
  let w2 = Netlist.Builder.add b aotree ~inputs:[ w1; "i3"; "i4" ] ~output:"w2" in
  let z = Netlist.Builder.add b pair ~inputs:[ w2; "i5" ] ~output:"z" in
  Netlist.Builder.output b z;
  let nl = Netlist.Builder.finish b in
  let report = Protest.analyze ~confidence:0.999 nl in
  let v = Protest.validate ~seed:3 report in
  check "test length positive" true (v.Protest.applied > 0);
  check "coverage high" true (v.Protest.achieved_coverage >= 0.9)

let test_podem_beats_uniform_on_hard_circuit () =
  (* The E10 shape: on a wide AND, PODEM needs a handful of vectors while
     uniform random patterns of the same count miss the hard faults. *)
  let nl = Generators.wide_and ~technology:Technology.Domino_cmos 12 in
  let u = Faultsim.universe nl in
  let r = Podem.generate_set u in
  let podem_cov = Faultsim.coverage (Faultsim.run_parallel u r.Podem.vectors) in
  Alcotest.(check (float 1e-9)) "PODEM full" 1.0 podem_cov;
  let prng = Prng.create 99 in
  let same_budget =
    Faultsim.random_patterns prng ~n_inputs:12 ~count:(Array.length r.Podem.vectors)
  in
  let random_cov = Faultsim.coverage (Faultsim.run_parallel u same_budget) in
  check "uniform random misses" true (random_cov < 1.0)

let test_optimized_random_matches_podem () =
  (* With optimized weights the random test reaches PODEM coverage within
     its computed length. *)
  let nl = Generators.wide_and ~technology:Technology.Domino_cmos 12 in
  let u = Faultsim.universe nl in
  let report = Protest.analyze ~confidence:0.99 ~optimize:true nl in
  let v = Protest.validate ~seed:17 report in
  check "optimized random full coverage" true (v.Protest.achieved_coverage >= 0.999);
  ignore u

let test_a2_by_double_application () =
  (* The paper: "these assumptions can be fulfilled by applying the test
     set exactly two times."  Apply the *whole* exhaustive set twice to a
     fresh (unknown-state) faulty gate: the first pass establishes A1/A2,
     so every second-pass response must equal the predicted combinational
     faulty function. *)
  let cell = Stdcells.fig9 in
  let faults = Fault.enumerate cell in
  let vectors = Charge_sim.bool_vectors 5 in
  List.iter
    (fun f ->
      match Fault_map.map cell f with
      | Fault_map.Combinational predicted ->
          (* first application of the set, from a completely unknown gate *)
          let st =
            List.fold_left
              (fun st v -> fst (Charge_sim.domino_cycle ~fault:f cell st v))
              Charge_sim.domino_initial vectors
          in
          (* second application: responses must match the prediction *)
          let _ =
            List.fold_left
              (fun st v ->
                let st', out = Charge_sim.domino_cycle ~fault:f cell st v in
                let env name =
                  let rec go ns vs =
                    match (ns, vs) with
                    | n :: _, b :: _ when String.equal n name -> b
                    | _ :: ns, _ :: vs -> go ns vs
                    | _ -> invalid_arg "env"
                  in
                  go (Cell.inputs cell) v
                in
                let expected = Expr.eval env predicted in
                (match out with
                | Dynmos_sim.Logic.X -> Alcotest.fail "unexpected X after double application"
                | o ->
                    if not (Dynmos_sim.Logic.equal o (Dynmos_sim.Logic.of_bool expected)) then
                      Alcotest.fail
                        (Fmt.str "double application wrong for %s" (Fault.label cell f)));
                st')
              st vectors
          in
          ()
      | _ -> ())
    faults;
  check "A2 by double application" true true

let test_cross_technology_consistency () =
  (* The same boolnet function realized in static CMOS and dual-rail
     domino: identical good behaviour (checked in test_circuits), and the
     domino fault universe contains no sequential classes while the static
     one, at switch level, does. *)
  let nor2 = Stdcells.fig1_nor in
  let sequential_faults =
    List.filter
      (fun f ->
        match Fault_map.map nor2 f with Fault_map.Sequential _ -> true | _ -> false)
      (Fault.enumerate nor2)
  in
  check "static NOR has sequential faults" true (List.length sequential_faults > 0);
  let domino_or = Stdcells.or_gate 2 Technology.Domino_cmos in
  let any_sequential =
    List.exists
      (fun f ->
        match Fault_map.map domino_or f with Fault_map.Sequential _ -> true | _ -> false)
      (Fault.enumerate domino_or)
  in
  check "domino OR has none" false any_sequential

let test_selftest_pipeline () =
  (* PROTEST-optimized weights drive a weighted hardware generator in a
     self-test session; the signature still catches an injected hard
     fault. *)
  let nl = Generators.wide_and ~technology:Technology.Domino_cmos 8 in
  let u = Faultsim.universe nl in
  let report = Protest.analyze ~confidence:0.99 ~optimize:true nl in
  let weights =
    match report.Protest.optimization with
    | Some o -> o.Dynmos_protest.Optimize.optimized_weights
    | None -> Array.make 8 0.5
  in
  (* the hardest site: output stuck-at-0 of the root gate *)
  let root = (Compiled.gates u.Faultsim.compiled).(Netlist.n_gates nl - 1) in
  let site =
    Array.to_list u.Faultsim.sites
    |> List.filter (fun s -> s.Faultsim.gate.Netlist.id = root.Compiled.g.Netlist.id)
    |> List.hd
  in
  let o =
    Dynmos_bist.Selftest.test_fault ~seed:5 ~source:(`Weighted weights) u.Faultsim.compiled
      ~n_cycles:500 site
  in
  check "weighted self test catches hard fault" true o.Dynmos_bist.Selftest.detected

let test_charge_sim_matches_faultsim () =
  (* The charge-level simulator and the library-driven fault simulator
     agree on the faulty responses of a single-gate network, for every
     combinational fault class. *)
  let cell = Stdcells.fig9 in
  let nl = Generators.single_cell cell in
  let u = Faultsim.universe nl in
  let vectors = Charge_sim.bool_vectors 5 in
  Array.iter
    (fun site ->
      (* pick one physical member of the class and run the charge sim *)
      let f, _ = List.hd site.Faultsim.entry.Faultlib.members in
      let warm = Charge_sim.domino_warmup ~fault:f cell in
      let _, responses =
        List.fold_left
          (fun (st, acc) v ->
            let st', o = Charge_sim.domino_cycle ~fault:f cell st v in
            (st', o :: acc))
          (warm, []) vectors
      in
      let responses = List.rev responses in
      List.iter2
        (fun v o ->
          let faulty = (Compiled.eval ~override:(0, site.Faultsim.fn) u.Faultsim.compiled (Array.of_list v)).(0) in
          match o with
          | Dynmos_sim.Logic.X -> Alcotest.fail "X from charge sim"
          | o ->
              if not (Dynmos_sim.Logic.equal o (Dynmos_sim.Logic.of_bool faulty)) then
                Alcotest.fail
                  (Fmt.str "disagreement for %s" (Faultsim.site_label u site)))
        vectors responses)
    u.Faultsim.sites;
  check "charge sim = fault sim" true true

let test_scan_invalidation () =
  (* The paper's introduction: "scan path techniques fail since the state
     of the faulty circuit may change during shifting."  A two-pattern
     test for the Fig. 1 stuck-open NOR works when the patterns are
     applied back to back, but shifting the second pattern through a scan
     chain drives the gate through an intermediate state that re-resolves
     the floating node and invalidates the test. *)
  let nor = Stdcells.fig1_nor in
  let fault = Fault.Network_open 1 in
  let good v = snd (Charge_sim.static_step nor Charge_sim.static_initial v) in
  let step st v = Charge_sim.static_step ~fault nor st v in
  (* P1 = (0,0) charges Z to 1; P2 = (1,0) floats the faulty gate. *)
  let p1 = [ false; false ] and p2 = [ true; false ] in
  (* Direct (enhanced-scan / back-to-back) application: detected. *)
  let st, _ = step Charge_sim.static_initial p1 in
  let _, direct = step st p2 in
  check "direct two-pattern test detects" false
    (Dynmos_sim.Logic.equal direct (good p2));
  (* Scan application: the chain is scan_in -> B -> A, so loading (1,0)
     from (0,0) passes through (A,B) = (0,1), which discharges Z again. *)
  let st, _ = step Charge_sim.static_initial p1 in
  let st, _ = step st [ false; true ] (* intermediate shift state *) in
  let _, scanned = step st p2 in
  check "scan-shifted test invalidated" true (Dynmos_sim.Logic.equal scanned (good p2));
  (* The domino counterpart: detection is per-vector (combinational), so
     no shifting order can invalidate a test — the response to the final
     vector is state-independent (this is claim 2, already proved by
     [domino_combinational]; assert it for the OR gate used here). *)
  let domino_or = Stdcells.or_gate 2 Technology.Domino_cmos in
  check "domino detection is shift-order independent" true
    (List.for_all
       (fun f -> Charge_sim.domino_combinational ~fault:f domino_or)
       (Fault.enumerate domino_or))

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "text -> library -> PROTEST -> validation" `Quick
            test_text_to_validated_test;
          Alcotest.test_case "PODEM vs uniform random" `Quick
            test_podem_beats_uniform_on_hard_circuit;
          Alcotest.test_case "optimized random reaches full coverage" `Quick
            test_optimized_random_matches_podem;
          Alcotest.test_case "weighted self-test end to end" `Quick test_selftest_pipeline;
        ] );
      ( "model_consistency",
        [
          Alcotest.test_case "A2 by double application" `Slow test_a2_by_double_application;
          Alcotest.test_case "cross-technology" `Quick test_cross_technology_consistency;
          Alcotest.test_case "charge sim = fault sim" `Slow test_charge_sim_matches_faultsim;
          Alcotest.test_case "scan invalidation (static) vs domino" `Quick
            test_scan_invalidation;
        ] );
    ]
