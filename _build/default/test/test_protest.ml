open Dynmos_util
open Dynmos_cell
open Dynmos_netlist
open Dynmos_sim
open Dynmos_faultsim
open Dynmos_protest
open Dynmos_circuits

(* Tests for the PROTEST reproduction: signal probabilities, detection
   probabilities, test length, input-probability optimization, pattern
   generation and the validating fault simulation. *)

let check = Alcotest.(check bool)
let checkf eps = Alcotest.(check (float eps))

let uniform n = Array.make n 0.5

(* --- Signal probabilities ----------------------------------------------- *)

let test_signal_prob_tree_exact () =
  (* On fan-out-free circuits the propagation estimator is exact. *)
  let nl = Generators.and_tree ~technology:Technology.Domino_cmos 8 in
  let c = Compiled.compile nl in
  let est = Signal_prob.propagate c ~pi_weights:(uniform 8) in
  let ex = Signal_prob.exact c ~pi_weights:(uniform 8) in
  Array.iteri (fun i p -> checkf 1e-9 (Fmt.str "net %d" i) ex.(i) p) est;
  (* The tree root: AND of 8 at p=0.5 is 2^-8. *)
  let root = Option.get (Compiled.net_index c (List.hd (Netlist.outputs nl))) in
  checkf 1e-12 "root probability" (1.0 /. 256.0) est.(root)

let test_signal_prob_weighted () =
  let nl = Generators.and_tree ~technology:Technology.Domino_cmos 4 in
  let c = Compiled.compile nl in
  let w = [| 0.9; 0.8; 0.7; 0.6 |] in
  let est = Signal_prob.propagate c ~pi_weights:w in
  let root = Option.get (Compiled.net_index c (List.hd (Netlist.outputs nl))) in
  checkf 1e-9 "weighted root" (0.9 *. 0.8 *. 0.7 *. 0.6) est.(root)

let test_signal_prob_reconvergence_error () =
  (* Reconvergent fan-out makes the estimator approximate; exact stays
     exact.  On c17 the max estimator error is small but non-zero. *)
  let nl = Generators.c17 ~style:`Static () in
  let c = Compiled.compile nl in
  let max_err, mean_err = Signal_prob.estimator_error c ~pi_weights:(uniform 5) in
  check "some error" true (max_err > 0.0);
  check "bounded" true (max_err < 0.2 && mean_err < 0.05)

let test_signal_prob_monte_carlo () =
  let nl = Generators.c17 ~style:`Domino () in
  let c = Compiled.compile nl in
  let n = Compiled.n_inputs c in
  let mc = Signal_prob.monte_carlo (Prng.create 3) c ~pi_weights:(uniform n) ~samples:20000 in
  let ex = Signal_prob.exact c ~pi_weights:(uniform n) in
  Array.iteri
    (fun i p -> check (Fmt.str "net %d close" i) true (Float.abs (p -. ex.(i)) < 0.02))
    mc

let test_weights_validation () =
  let nl = Generators.c17 ~style:`Domino () in
  let c = Compiled.compile nl in
  check "bad weight rejected" true
    (match
       Signal_prob.propagate c
         ~pi_weights:(Array.append (Array.make (Compiled.n_inputs c - 1) 0.5) [| 1.5 |])
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* --- Detection probabilities --------------------------------------------- *)

let test_detect_prob_single_gate () =
  let u = Faultsim.universe (Generators.fig9_network ()) in
  let ex = Detect_prob.exact u ~pi_weights:(uniform 5) in
  (* Class 9 (u stuck 0) is detected whenever u = 1: p = P(u=1) = 14/32.
     Class 10 (u stuck 1) whenever u = 0: p = 18/32. *)
  Array.iter
    (fun site ->
      let cid = site.Faultsim.entry.Dynmos_core.Faultlib.class_id in
      if cid = 9 then checkf 1e-9 "stuck0 det" (17.0 /. 32.0) ex.(site.Faultsim.sid);
      if cid = 10 then checkf 1e-9 "stuck1 det" (15.0 /. 32.0) ex.(site.Faultsim.sid))
    u.Faultsim.sites

let test_detect_prob_exact_vs_mc () =
  let u = Faultsim.universe (Generators.c17 ~style:`Domino ()) in
  let n = Compiled.n_inputs u.Faultsim.compiled in
  let ex = Detect_prob.exact u ~pi_weights:(uniform n) in
  let mc = Detect_prob.monte_carlo (Prng.create 4) u ~pi_weights:(uniform n) ~samples:20000 in
  Array.iteri
    (fun i p -> check (Fmt.str "site %d" i) true (Float.abs (p -. ex.(i)) < 0.02))
    mc

let test_detect_prob_estimate_trees () =
  (* On a fan-out-free tree the COP-style estimate matches the exact
     value. *)
  let u = Faultsim.universe (Generators.and_tree ~technology:Technology.Domino_cmos 4) in
  let ex = Detect_prob.exact u ~pi_weights:(uniform 4) in
  let est = Detect_prob.estimate u ~pi_weights:(uniform 4) in
  Array.iteri (fun i p -> checkf 1e-9 (Fmt.str "site %d" i) ex.(i) p) est

let test_observability () =
  let nl = Generators.and_tree ~technology:Technology.Domino_cmos 4 in
  let c = Compiled.compile nl in
  let _, obs = Detect_prob.observability c ~pi_weights:(uniform 4) in
  let po = Option.get (Compiled.net_index c (List.hd (Netlist.outputs nl))) in
  checkf 1e-9 "PO fully observable" 1.0 obs.(po);
  (* a leaf of an AND tree needs the 3 side inputs at 1: 2^-3 *)
  let leaf = Option.get (Compiled.net_index c "x0") in
  checkf 1e-9 "leaf observability" 0.125 obs.(leaf)

(* --- Test length ------------------------------------------------------------ *)

let test_length_formulas () =
  (* single fault, p=0.5, c=0.99: need ~7 patterns *)
  Alcotest.(check int) "single fault" 7
    (Test_length.required_length ~confidence:0.99 [| 0.5 |]);
  (* confidence at that length is >= demanded and < at length-1 *)
  check "meets confidence" true (Test_length.confidence ~n:7 [| 0.5 |] >= 0.99);
  check "tight" true (Test_length.confidence ~n:6 [| 0.5 |] < 0.99);
  (* monotone in confidence and in fault hardness *)
  check "harder fault, longer test" true
    (Test_length.required_length ~confidence:0.99 [| 0.01 |]
    > Test_length.required_length ~confidence:0.99 [| 0.5 |]);
  check "higher confidence, longer test" true
    (Test_length.required_length ~confidence:0.9999 [| 0.3 |]
    >= Test_length.required_length ~confidence:0.99 [| 0.3 |]);
  (* the closed-form worst-fault bound dominates the exact answer *)
  let probs = [| 0.5; 0.25; 0.03 |] in
  check "worst bound >= exact" true
    (Test_length.required_length_worst ~confidence:0.99 probs
    >= Test_length.required_length ~confidence:0.99 probs);
  check "undetectable raises" true
    (match Test_length.required_length ~confidence:0.9 [| 0.5; 0.0 |] with
    | _ -> false
    | exception Test_length.Undetectable -> true);
  check "bad confidence" true
    (match Test_length.required_length ~confidence:1.0 [| 0.5 |] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkf 1e-9 "escape complements" 1.0
    (Test_length.escape ~n:5 [| 0.2 |] +. Test_length.confidence ~n:5 [| 0.2 |]);
  checkf 1e-9 "expected first detection" 4.0 (Test_length.expected_first_detection 0.25)

let test_length_matches_simulation () =
  (* Empirical check: N patterns detect all faults with roughly the
     demanded confidence. *)
  let u = Faultsim.universe (Generators.c17 ~style:`Domino ()) in
  let n_in = Compiled.n_inputs u.Faultsim.compiled in
  let probs = Detect_prob.exact u ~pi_weights:(uniform n_in) in
  let n = Test_length.required_length ~confidence:0.9 probs in
  let prng = Prng.create 77 in
  let trials = 60 in
  let successes = ref 0 in
  for _ = 1 to trials do
    let pats = Faultsim.random_patterns prng ~n_inputs:n_in ~count:n in
    let s = Faultsim.run_parallel u pats in
    if Faultsim.coverage s >= 1.0 then incr successes
  done;
  let rate = float_of_int !successes /. float_of_int trials in
  (* allow generous sampling slack around 0.9 *)
  check "empirical confidence plausible" true (rate > 0.75)

(* --- Optimization ------------------------------------------------------------- *)

let test_optimize_wide_and () =
  (* The paper's headline: optimized input probabilities shorten the test
     by orders of magnitude.  A wide AND is the canonical case: output
     s-a-0 needs the all-ones vector (2^-16 at p=0.5). *)
  let nl = Generators.wide_and ~technology:Technology.Domino_cmos 16 in
  let u = Faultsim.universe nl in
  let r = Optimize.run ~objective:Optimize.Estimated ~confidence:0.999 u in
  match (r.Optimize.initial_length, r.Optimize.optimized_length, r.Optimize.reduction) with
  | Some before, Some after, Some red ->
      check "shorter" true (after < before);
      check "orders of magnitude" true (red > 50.0)
  | _ -> Alcotest.fail "expected finite lengths"

let test_optimize_exact_small () =
  let u = Faultsim.universe (Generators.and_tree ~technology:Technology.Domino_cmos 6) in
  let r = Optimize.run ~objective:Optimize.Exact ~confidence:0.99 u in
  match (r.Optimize.initial_length, r.Optimize.optimized_length) with
  | Some before, Some after ->
      check "no worse" true (after <= before);
      (* AND tree wants high input probabilities *)
      check "weights raised" true
        (Array.for_all (fun w -> w >= 0.5) r.Optimize.optimized_weights)
  | _ -> Alcotest.fail "expected finite lengths"

let test_optimize_cost_order () =
  let u = Faultsim.universe (Generators.and_tree ~technology:Technology.Domino_cmos 4) in
  let c_bad = Optimize.cost u ~objective:Optimize.Exact ~confidence:0.99 ~pi_weights:(uniform 4) in
  let c_good =
    Optimize.cost u ~objective:Optimize.Exact ~confidence:0.99 ~pi_weights:[| 0.9; 0.9; 0.9; 0.9 |]
  in
  check "biased weights cost less on AND tree" true (c_good < c_bad)

(* --- The facade ----------------------------------------------------------------- *)

let test_analyze_and_validate () =
  let nl = Generators.carry_chain ~technology:Technology.Domino_cmos 4 in
  let report = Protest.analyze ~confidence:0.99 nl in
  (match report.Protest.test_length with
  | Some n -> check "positive length" true (n > 0)
  | None -> Alcotest.fail "expected detectable universe");
  (* exact detection probabilities present on this small circuit *)
  check "exact present" true
    (Array.for_all (fun f -> f.Protest.exact <> None) report.Protest.faults);
  let v = Protest.validate ~seed:9 report in
  check "applied = length" true (v.Protest.applied = Option.get report.Protest.test_length);
  check "high coverage" true (v.Protest.achieved_coverage > 0.9);
  check "prediction sane" true
    (v.Protest.predicted_confidence > 0.9 && v.Protest.predicted_confidence <= 1.0)

let test_analyze_optimized_patterns () =
  let nl = Generators.wide_and ~technology:Technology.Domino_cmos 8 in
  let report = Protest.analyze ~confidence:0.99 ~optimize:true nl in
  match report.Protest.optimization with
  | None -> Alcotest.fail "expected optimization"
  | Some o ->
      let pats = Protest.patterns ~seed:2 report ~count:500 in
      (* empirical input frequency tracks the optimized weights *)
      let freq i =
        float_of_int (Array.fold_left (fun a p -> if p.(i) then a + 1 else a) 0 pats) /. 500.0
      in
      let ok = ref true in
      Array.iteri
        (fun i w -> if Float.abs (freq i -. w) > 0.1 then ok := false)
        o.Optimize.optimized_weights;
      check "patterns follow optimized weights" true !ok

let test_report_printing () =
  let nl = Generators.c17 ~style:`Domino () in
  let report = Protest.analyze ~confidence:0.99 nl in
  let s = Fmt.str "%a" Protest.pp_report report in
  check "mentions test length" true (String.length s > 0)

let () =
  Alcotest.run "protest"
    [
      ( "signal_prob",
        [
          Alcotest.test_case "exact on trees" `Quick test_signal_prob_tree_exact;
          Alcotest.test_case "weighted inputs" `Quick test_signal_prob_weighted;
          Alcotest.test_case "reconvergence error bounded" `Quick
            test_signal_prob_reconvergence_error;
          Alcotest.test_case "monte carlo agrees" `Quick test_signal_prob_monte_carlo;
          Alcotest.test_case "weight validation" `Quick test_weights_validation;
        ] );
      ( "detect_prob",
        [
          Alcotest.test_case "fig9 closed forms" `Quick test_detect_prob_single_gate;
          Alcotest.test_case "exact vs monte carlo" `Quick test_detect_prob_exact_vs_mc;
          Alcotest.test_case "estimate exact on trees" `Quick test_detect_prob_estimate_trees;
          Alcotest.test_case "observability" `Quick test_observability;
        ] );
      ( "test_length",
        [
          Alcotest.test_case "formulas" `Quick test_length_formulas;
          Alcotest.test_case "matches simulation" `Slow test_length_matches_simulation;
        ] );
      ( "optimize",
        [
          Alcotest.test_case "wide AND orders of magnitude" `Quick test_optimize_wide_and;
          Alcotest.test_case "exact objective" `Quick test_optimize_exact_small;
          Alcotest.test_case "cost ordering" `Quick test_optimize_cost_order;
        ] );
      ( "facade",
        [
          Alcotest.test_case "analyze + validate" `Quick test_analyze_and_validate;
          Alcotest.test_case "optimized patterns" `Quick test_analyze_optimized_patterns;
          Alcotest.test_case "report printing" `Quick test_report_printing;
        ] );
    ]
