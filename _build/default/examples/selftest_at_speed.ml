(* Random self test at operating speed (the paper's Section 4): a BILBO in
   PRPG mode drives a domino carry chain, a MISR compacts the responses,
   and — because the session runs at maximum clock rate — a
   performance-degradation fault (the CMOS-3 case b) corrupts the
   signature, while the same fault escapes both a relaxed-clock session
   and a leakage (IDDQ) measurement on a large die.

   Run with:  dune exec examples/selftest_at_speed.exe *)

open Dynmos_util
open Dynmos_cell
open Dynmos_netlist
open Dynmos_sim
open Dynmos_bist
open Dynmos_circuits

let () =
  let n = 8 in
  let nl = Generators.carry_chain ~technology:Technology.Domino_cmos n in
  let compiled = Compiled.compile nl in
  Format.printf "domino carry chain: %d gates, critical path %d levels@." (Netlist.n_gates nl)
    (Netlist.depth nl);

  (* Golden signature of a healthy BILBO session. *)
  let session () = Selftest.make_session ~seed:42 ~source:`Bilbo compiled ~n_cycles:500 in
  let golden = Selftest.golden (session ()) in
  Format.printf "golden signature after 500 cycles: %#x@." golden;

  (* A logic fault in the last carry cell (a deep-chain fault would need a
     long sensitized path — see the weighted-pattern examples for that). *)
  let u = Dynmos_faultsim.Faultsim.universe nl in
  let last_gate = Netlist.n_gates nl - 1 in
  let site =
    Array.to_list u.Dynmos_faultsim.Faultsim.sites
    |> List.find (fun s -> s.Dynmos_faultsim.Faultsim.gate.Netlist.id = last_gate)
  in
  let o = Selftest.test_fault ~seed:42 ~source:`Bilbo compiled ~n_cycles:500 site in
  Format.printf "logic fault %s: signature %#x -> detected %b@."
    (Dynmos_faultsim.Faultsim.site_label u site)
    o.Selftest.faulty_signature o.Selftest.detected;

  (* A delay fault (CMOS-3b: stuck-closed precharge that loses the ratio
     fight): only at-speed operation exposes it. *)
  let delays = Timing.nominal_delays compiled in
  (* Clock at the true worst case: the full carry-propagate chain. *)
  let propagate =
    Array.of_list (List.map (fun nm -> nm.[0] = 'c' || nm.[0] = 'p') (Netlist.inputs nl))
  in
  let period = Timing.critical_path compiled delays propagate in
  Format.printf "@.nominal clock period (min safe): %.1f@." period;
  List.iter
    (fun (label, test_period) ->
      let o =
        Selftest.test_delay_fault ~seed:42 ~source:`Bilbo compiled ~n_cycles:500 ~gate_id:3
          ~factor:3.0 ~period:test_period
      in
      Format.printf "  delay fault at gate 3 (x3 slower), %s clock: detected %b@." label
        o.Selftest.detected)
    [ ("maximum-speed", period); ("relaxed (4x)", period *. 4.0) ];

  (* The leakage alternative the paper argues against: on a small block
     the bridge current stands out; embedded in a large die the baseline
     variation swamps it. *)
  Format.printf "@.IDDQ alternative (defect current fixed, die size grows):@.";
  let prng = Prng.create 7 in
  List.iter
    (fun chain_length ->
      let big = Generators.carry_chain ~technology:Technology.Domino_cmos chain_length in
      let cbig = Compiled.compile big in
      let pi = Array.make (Compiled.n_inputs cbig) true in
      let rate = Power.detection_rate prng cbig ~faulty_gate:(Some 0) pi in
      let mu, sigma = Power.baseline_stats cbig in
      Format.printf "  %5d transistors: baseline %.2f +- %.3f, detection rate %.0f%%@."
        (Netlist.n_transistors big) mu sigma (100.0 *. rate))
    [ 8; 64; 512; 2048 ]
