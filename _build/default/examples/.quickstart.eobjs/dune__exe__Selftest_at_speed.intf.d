examples/selftest_at_speed.mli:
