examples/quickstart.mli:
