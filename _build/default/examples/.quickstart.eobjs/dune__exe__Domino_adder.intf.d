examples/domino_adder.mli:
