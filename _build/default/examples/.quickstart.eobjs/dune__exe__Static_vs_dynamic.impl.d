examples/static_vs_dynamic.ml: Array Bool Boolnet Cell Charge_sim Compiled Dynmos_cell Dynmos_circuits Dynmos_core Dynmos_sim Event_sim Fault Format Generators List Logic Stdcells Technology
