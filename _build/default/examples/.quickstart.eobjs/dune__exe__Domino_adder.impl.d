examples/domino_adder.ml: Array Boolnet Dynmos_atpg Dynmos_circuits Dynmos_faultsim Dynmos_netlist Dynmos_protest Dynmos_util Faultsim Fmt Format Generators List Netlist Podem Prng Protest
