examples/quickstart.ml: Cell Cell_parser Dynmos_cell Dynmos_circuits Dynmos_core Dynmos_protest Faultlib Format Generators List Protest String
