(* A realistic workload: a ripple-carry adder realized in dual-rail domino
   CMOS (the standard way to get non-monotone arithmetic into domino
   logic), taken through the whole test flow:

     fault universe -> PROTEST analysis -> optimized weighted random test
     -> validation, compared against a PODEM deterministic test.

   Run with:  dune exec examples/domino_adder.exe *)

open Dynmos_util
open Dynmos_netlist
open Dynmos_faultsim
open Dynmos_protest
open Dynmos_atpg
open Dynmos_circuits

let () =
  let bits = 3 in
  let bn = Generators.ripple_adder_boolnet bits in
  let nl = Boolnet.to_domino_dual_rail ~name:(Fmt.str "adder%d_domino" bits) bn in
  Format.printf "%d-bit dual-rail domino adder: %d gates, %d nets, %d transistors, depth %d@."
    bits (Netlist.n_gates nl) (Netlist.n_nets nl) (Netlist.n_transistors nl) (Netlist.depth nl);
  Format.printf "domino-legal network: %b@." (Netlist.check_domino nl);

  let u = Faultsim.universe nl in
  Format.printf "fault universe: %d sites from %d distinct cell libraries@."
    (Faultsim.n_sites u)
    (List.length u.Faultsim.libraries);

  (* PROTEST with input-probability optimization. *)
  let report = Protest.analyze ~confidence:0.999 ~optimize:true nl in
  Format.printf "@.%a" Protest.pp_report report;

  (* Validate the optimized random test by fault simulation. *)
  let v = Protest.validate ~seed:7 report in
  Format.printf "random self-test: %d patterns -> %.2f%% coverage@." v.Protest.applied
    (100.0 *. v.Protest.achieved_coverage);

  (* Deterministic baseline: PODEM with fault dropping. *)
  let r = Podem.generate_set u in
  let s = Faultsim.run_parallel u r.Podem.vectors in
  Format.printf "PODEM: %d vectors -> %.2f%% coverage (%d faults dropped by simulation)@."
    (Array.length r.Podem.vectors)
    (100.0 *. Faultsim.coverage s)
    r.Podem.covered_by_simulation;

  (* The paper's A2 prescription: apply the deterministic set exactly
     twice. *)
  let doubled = Podem.schedule_double r.Podem.vectors in
  Format.printf "A2 schedule: deterministic set applied twice = %d vectors@."
    (Array.length doubled);

  (* Sanity: uniform random with the same budget as PODEM. *)
  let prng = Prng.create 123 in
  let budget = Array.length r.Podem.vectors in
  let uniform =
    Faultsim.random_patterns prng ~n_inputs:(List.length (Netlist.inputs nl)) ~count:budget
  in
  let su = Faultsim.run_parallel u uniform in
  Format.printf "uniform random with the same %d-vector budget: %.2f%% coverage@." budget
    (100.0 *. Faultsim.coverage su)
