(* Quickstart: describe a dynamic MOS cell in the paper's language,
   generate its fault library, and ask PROTEST how long a random test must
   be.

   Run with:  dune exec examples/quickstart.exe *)

open Dynmos_cell
open Dynmos_core
open Dynmos_circuits
open Dynmos_protest

let () =
  (* 1. A cell description, exactly as in the paper's Section 5 (Fig. 9). *)
  let description =
    "TECHNOLOGY domino-CMOS;\n\
     NAME fig9;\n\
     INPUT a,b,c,d,e;\n\
     OUTPUT u;\n\
     x1 := a*(b+c);\n\
     x2 := d*e;\n\
     u  := x1+x2;\n"
  in
  let cell = Cell_parser.cell description in
  Format.printf "Parsed cell %s: %d inputs, %d switching-network transistors@."
    (Cell.name cell) (Cell.arity cell) (Cell.n_transistors cell);

  (* 2. The fault library: every physical fault mapped to its logical
     class, in minimum disjunctive form — the paper's fault-class table. *)
  let lib = Faultlib.generate cell in
  Format.printf "@.%a@." (fun ppf -> Faultlib.pp_table ppf) lib;

  (* 3. The library as a program, as the original tool emitted (Pascal). *)
  Format.printf "Generated Pascal library (first lines):@.";
  let pascal = Faultlib.to_pascal lib in
  String.split_on_char '\n' pascal
  |> List.filteri (fun i _ -> i < 8)
  |> List.iter (Format.printf "  %s@.");

  (* 4. PROTEST on the one-gate network: detection probabilities and the
     necessary random test length for 99.9%% confidence. *)
  let nl = Generators.single_cell cell in
  let report = Protest.analyze ~confidence:0.999 nl in
  Format.printf "@.%a" Protest.pp_report report;

  (* 5. Validate the proposal by static fault simulation. *)
  let v = Protest.validate report in
  Format.printf "applied %d random patterns -> coverage %.1f%% (predicted confidence %.3f)@."
    v.Protest.applied
    (100.0 *. v.Protest.achieved_coverage)
    v.Protest.predicted_confidence
