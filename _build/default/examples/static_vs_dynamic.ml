(* The paper's motivation, executed: static CMOS stuck-open faults create
   memory (Fig. 1) and hazards, dynamic logic does not.

   - reproduces the Fig. 1 NOR function table;
   - runs the combinationality check over every physical fault of the
     Fig. 9 domino gate and a dynamic nMOS gate;
   - counts glitches of a static parity network against the monotone
     domino realization of the same function (Fig. 5's "no races and
     spikes").

   Run with:  dune exec examples/static_vs_dynamic.exe *)

open Dynmos_cell
open Dynmos_core
open Dynmos_sim
open Dynmos_circuits

let show_logic = function
  | Logic.Zero -> "0"
  | Logic.One -> "1"
  | Logic.X -> "X"

let () =
  (* --- Fig. 1: the faulty CMOS NOR ---------------------------------- *)
  let nor = Stdcells.fig1_nor in
  let fault = Fault.Network_open 1 in
  Format.printf "Fig. 1 — static CMOS NOR with the A pull-down open:@.";
  Format.printf "  A B | Z(good) | Z(faulty)@.";
  List.iter
    (fun (a, b) ->
      let good = snd (Charge_sim.static_step nor Charge_sim.static_initial [ a; b ]) in
      (* The faulty gate's row 10 depends on the stored state: print it as
         Z(t) like the paper does. *)
      let f0 =
        snd (Charge_sim.static_step ~fault nor { Charge_sim.out = Charge_sim.Driven false } [ a; b ])
      in
      let f1 =
        snd (Charge_sim.static_step ~fault nor { Charge_sim.out = Charge_sim.Driven true } [ a; b ])
      in
      let faulty = if Logic.equal f0 f1 then show_logic f0 else "Z(t)" in
      Format.printf "  %d %d |    %s    |   %s@." (Bool.to_int a) (Bool.to_int b)
        (show_logic good) faulty)
    [ (false, false); (false, true); (true, false); (true, true) ];
  Format.printf "  -> the faulty NOR remembers its previous output at A=1,B=0.@.";

  (* --- Claim 2: dynamic gates stay combinational --------------------- *)
  let report cell combinational =
    let faults = Fault.enumerate cell in
    let bad = List.filter (fun f -> not (combinational ~fault:f cell)) faults in
    Format.printf "  %-28s %2d physical faults, sequential under fault: %d@." (Cell.name cell)
      (List.length faults) (List.length bad)
  in
  Format.printf "@.Section 3 — combinationality under every physical fault:@.";
  report Stdcells.fig9 (fun ~fault c -> Charge_sim.domino_combinational ~fault c);
  report
    (Stdcells.nand 3 Technology.Dynamic_nmos)
    (fun ~fault c -> Charge_sim.nmos_combinational ~fault c);
  report
    (Stdcells.ao ~groups:[ 2; 2 ] Technology.Domino_cmos)
    (fun ~fault c -> Charge_sim.domino_combinational ~fault c);
  let sequential_static =
    List.filter
      (fun f -> Charge_sim.static_sequential ~fault:f Stdcells.fig1_nor)
      (Fault.enumerate Stdcells.fig1_nor)
  in
  Format.printf "  %-28s %2d physical faults, sequential under fault: %d  (the problem!)@."
    (Cell.name Stdcells.fig1_nor)
    (List.length (Fault.enumerate Stdcells.fig1_nor))
    (List.length sequential_static);

  (* --- Fig. 5: no races and spikes in domino -------------------------- *)
  Format.printf "@.Fig. 5 — transition counts for 6-input parity, 64 input changes:@.";
  let bn = Generators.parity_boolnet 6 in
  let static = Boolnet.to_static bn in
  let cs = Compiled.compile static in
  let sim = Event_sim.create cs in
  Event_sim.settle sim (Array.make 6 false);
  let static_glitchy_nets = ref 0 and static_transitions = ref 0 in
  for row = 0 to 63 do
    let pi = Array.init 6 (fun i -> (row lsr i) land 1 = 1) in
    let tr, _ = Event_sim.apply sim pi in
    static_glitchy_nets := !static_glitchy_nets + Event_sim.glitch_count tr;
    static_transitions := !static_transitions + Event_sim.total_gate_transitions sim tr
  done;
  let domino = Boolnet.to_domino_dual_rail bn in
  let cd = Compiled.compile domino in
  let domino_glitchy = ref 0 and domino_transitions = ref 0 in
  for row = 0 to 63 do
    let pi = Array.init 6 (fun i -> (row lsr i) land 1 = 1) in
    let tr, _ = Event_sim.domino_evaluate cd (Boolnet.dual_rail_vector bn pi) in
    Array.iteri
      (fun i t ->
        if i >= Compiled.n_inputs cd then begin
          domino_transitions := !domino_transitions + t;
          if t > 1 then incr domino_glitchy
        end)
      tr
  done;
  Format.printf "  static  implementation: %4d gate transitions, %d glitching nets@."
    !static_transitions !static_glitchy_nets;
  Format.printf "  domino  implementation: %4d gate transitions, %d glitching nets@."
    !domino_transitions !domino_glitchy;
  Format.printf "  -> domino evaluation is monotone: every node rises at most once.@."
