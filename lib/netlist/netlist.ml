open Dynmos_cell

(* Gate-level combinational networks of library cells.

   Nets are named; every net is driven by exactly one primary input or one
   gate output.  Gates are stored in topological order after [Builder.finish]
   validates the structure, so simulators can evaluate in a single pass.
   Clocking discipline is derived, not stored: domino networks use a single
   clock (Fig. 5), dynamic nMOS networks assign alternating phases by
   logic level (Fig. 7). *)

type gate = {
  id : int;                       (* dense, assigned in creation order *)
  gname : string;
  cell : Cell.t;
  input_nets : string list;       (* positional: nth net drives nth cell input *)
  output_net : string;
  level : int;                    (* longest path from a primary input *)
}

type t = {
  name : string;
  inputs : string list;
  outputs : string list;
  gates : gate array;             (* topological order *)
  gate_of_net : (string, gate) Hashtbl.t;
  fanout : (string, gate list) Hashtbl.t;
}

exception Invalid of string

let invalid fmt = Fmt.kstr (fun s -> raise (Invalid s)) fmt

module Builder = struct
  type pending = { pname : string; pcell : Cell.t; pinputs : string list; poutput : string }

  type b = {
    bname : string;
    mutable binputs : string list;
    mutable boutputs : string list;
    mutable bgates : pending list;
    mutable counter : int;
  }

  let create bname = { bname; binputs = []; boutputs = []; bgates = []; counter = 0 }

  let input b net =
    if List.mem net b.binputs then invalid "duplicate primary input %s" net;
    b.binputs <- net :: b.binputs;
    net

  let inputs b nets = List.map (fun n -> ignore (input b n)) nets |> ignore

  let add b ?name cell ~inputs ~output =
    if List.length inputs <> Cell.arity cell then
      invalid "gate %s: cell %s expects %d inputs, got %d"
        (Option.value ~default:output name) (Cell.name cell) (Cell.arity cell)
        (List.length inputs);
    b.counter <- b.counter + 1;
    let pname =
      match name with Some n -> n | None -> Fmt.str "g%d_%s" b.counter (Cell.name cell)
    in
    b.bgates <- { pname; pcell = cell; pinputs = inputs; poutput = output } :: b.bgates;
    output

  let output b net =
    if not (List.mem net b.boutputs) then b.boutputs <- net :: b.boutputs

  let finish b =
    let inputs = List.rev b.binputs in
    let outputs = List.rev b.boutputs in
    let pending = List.rev b.bgates in
    (* Single-driver check. *)
    let driver = Hashtbl.create 64 in
    List.iter (fun net -> Hashtbl.replace driver net `Input) inputs;
    List.iter
      (fun p ->
        if Hashtbl.mem driver p.poutput then invalid "net %s driven twice" p.poutput;
        Hashtbl.replace driver p.poutput (`Gate p))
      pending;
    List.iter
      (fun p ->
        List.iter
          (fun net -> if not (Hashtbl.mem driver net) then invalid "net %s is undriven" net)
          p.pinputs)
      pending;
    List.iter
      (fun net -> if not (Hashtbl.mem driver net) then invalid "primary output %s is undriven" net)
      outputs;
    (* Topological sort (DFS from outputs would drop unobserved gates; we
       keep every gate, so iterate over all of them) with cycle detection,
       computing levels. *)
    let level = Hashtbl.create 64 in
    List.iter (fun net -> Hashtbl.replace level net 0) inputs;
    let order = ref [] in
    let visiting = Hashtbl.create 64 in
    let rec visit_net net =
      match Hashtbl.find_opt level net with
      | Some l -> l
      | None -> (
          match Hashtbl.find_opt driver net with
          | Some (`Gate p) ->
              if Hashtbl.mem visiting net then invalid "combinational cycle through net %s" net;
              Hashtbl.replace visiting net ();
              let l = 1 + List.fold_left (fun acc n -> max acc (visit_net n)) 0 p.pinputs in
              Hashtbl.remove visiting net;
              Hashtbl.replace level net l;
              order := (p, l) :: !order;
              l
          | Some `Input ->
              (* Primary inputs are pre-seeded in [level]; reaching here
                 means the driver and level tables disagree about [net] —
                 report which net instead of dying on an assertion. *)
              invalid "input net %s missing from the level table" net
          | None -> invalid "net %s is undriven" net)
    in
    List.iter (fun p -> ignore (visit_net p.poutput)) pending;
    let ordered = List.rev !order in
    (* [visit_net] appends a gate only after its transitive fan-in, so the
       reversed accumulation is already topological. *)
    let gates =
      Array.of_list
        (List.mapi
           (fun i (p, l) ->
             {
               id = i;
               gname = p.pname;
               cell = p.pcell;
               input_nets = p.pinputs;
               output_net = p.poutput;
               level = l;
             })
           ordered)
    in
    let gate_of_net = Hashtbl.create 64 in
    Array.iter (fun g -> Hashtbl.replace gate_of_net g.output_net g) gates;
    let fanout = Hashtbl.create 64 in
    Array.iter
      (fun g ->
        List.iter
          (fun net ->
            Hashtbl.replace fanout net (g :: Option.value ~default:[] (Hashtbl.find_opt fanout net)))
          g.input_nets)
      gates;
    Hashtbl.iter
      (fun net gs -> Hashtbl.replace fanout net (List.rev gs))
      (Hashtbl.copy fanout);
    { name = b.bname; inputs; outputs; gates; gate_of_net; fanout }
end

let name t = t.name
let inputs t = t.inputs
let outputs t = t.outputs
let gates t = Array.to_list t.gates
let gate_array t = t.gates
let n_gates t = Array.length t.gates

let gate_of_net t net = Hashtbl.find_opt t.gate_of_net net

let fanout t net = Option.value ~default:[] (Hashtbl.find_opt t.fanout net)

let nets t =
  t.inputs @ List.map (fun g -> g.output_net) (Array.to_list t.gates)

let n_nets t = List.length (nets t)

let depth t = Array.fold_left (fun acc g -> max acc g.level) 0 t.gates

let technologies t =
  List.sort_uniq Stdlib.compare
    (Array.to_list (Array.map (fun g -> Cell.technology g.cell) t.gates))

let single_technology t = match technologies t with [ tech ] -> Some tech | _ -> None

(* Fig. 7: a dynamic nMOS network needs two non-overlapping clocks; gates
   alternate phases by level parity.  Domino networks use one clock. *)
let clock_phase g = if g.level mod 2 = 1 then `Phi1 else `Phi2

(* A domino network is legal when every gate is domino and every gate input
   is a primary input or another domino gate's output (monotone rising
   evaluation; no races or spikes, Fig. 5). *)
let check_domino t =
  Array.for_all (fun g -> Cell.technology g.cell = Technology.Domino_cmos) t.gates

let distinct_cells t =
  let tbl = Hashtbl.create 16 in
  Array.iter (fun g -> Hashtbl.replace tbl (Cell.name g.cell) g.cell) t.gates;
  Hashtbl.fold (fun _ c acc -> c :: acc) tbl []
  |> List.sort (fun a b -> String.compare (Cell.name a) (Cell.name b))

let n_transistors t =
  Array.fold_left
    (fun acc g ->
      let sn = Cell.n_transistors g.cell in
      let clocking =
        match Cell.technology g.cell with
        | Technology.Domino_cmos -> 4 (* T1, T2, inverter p+n *)
        | Technology.Dynamic_nmos -> 1 (* T(n+1) *)
        | Technology.Static_cmos -> sn (* dual pull-up network *)
        | Technology.Nmos_pulldown -> 1 (* depletion load *)
        | Technology.Bipolar -> 0
      in
      acc + sn + clocking)
    0 t.gates

let pp ppf t =
  Fmt.pf ppf "@[<v>network %s: %d inputs, %d outputs, %d gates, depth %d@,%a@]" t.name
    (List.length t.inputs) (List.length t.outputs) (n_gates t) (depth t)
    Fmt.(
      list ~sep:cut (fun ppf g ->
          Fmt.pf ppf "  %s = %s(%s)  [level %d]" g.output_net (Cell.name g.cell)
            (String.concat "," g.input_nets) g.level))
    (Array.to_list t.gates)
