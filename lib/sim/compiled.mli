open Dynmos_expr
open Dynmos_netlist

(** Compiled netlists for fast simulation.

    Nets get dense indices (primary inputs first, then gate outputs in
    topological order); every distinct cell function is compiled once to a
    cube cover evaluated with word arithmetic, so the same code evaluates
    one pattern or 62 packed patterns per word (bit-parallel fault
    simulation). *)

type gate_fn = {
  arity : int;
  cubes : (int * int) array;  (** (care, value) masks over input positions *)
  table : Truth_table.t;
}

type cgate = {
  g : Netlist.gate;
  ins : int array;  (** input net indices, positional *)
  out : int;
  fn : gate_fn;
}

type t

val compile : Netlist.t -> t

val fn_of_table : Truth_table.t -> gate_fn
(** Compile an arbitrary gate function (e.g. a faulty class function). *)

val netlist : t -> Netlist.t
val n_nets : t -> int
val n_inputs : t -> int
val n_outputs : t -> int
val n_gates : t -> int
val po_indices : t -> int array
val net_index : t -> string -> int option
val net_name : t -> int -> string
val gates : t -> cgate array

(** {1 Structural fanout analysis}

    Computed once at [compile] time: for every gate, the transitive
    fanout cone (every gate whose value a fault at that site can
    influence) and the subset of primary outputs it reaches.  Fault
    injection only ever needs to re-evaluate the cone and compare the
    reachable outputs. *)

val fanout_cone : t -> int -> int array
(** [fanout_cone t gid] is the transitive fanout cone of gate [gid]
    (inclusive): gate ids in ascending — hence topological — order,
    starting with [gid] itself. *)

val reachable_outputs : t -> int -> int array
(** [reachable_outputs t gid]: positions in [po_indices] of the primary
    outputs reachable from gate [gid].  A faulty machine differing only
    at gate [gid]'s function can differ from the good machine on exactly
    these outputs. *)

val max_cone_size : t -> int
(** Largest [fanout_cone] length over all gates (0 for a gateless
    netlist); the buffer size {!eval_cone_into} needs. *)

val eval_fn : gate_fn -> int array -> int
(** Word-parallel single-gate evaluation: bit j of the result applies the
    function to bit j of each input word. *)

val eval_words : ?override:int * gate_fn -> t -> int array -> int array
(** Evaluate 62 packed patterns; returns the word for every net.
    [override = (gate_id, fn)] substitutes one gate's function (fault
    injection). *)

type scratch = int array
(** Reusable evaluation buffer (one word per net).  A compiled netlist is
    immutable after [compile] and safe to share across domains; a scratch
    buffer holds all of an evaluation's mutable state and must be owned by
    a single domain. *)

val make_scratch : t -> scratch

val eval_words_into : ?override:int * gate_fn -> t -> scratch:scratch -> int array -> unit
(** [eval_words] without the per-call allocation: every net's word is
    written into [scratch].  The allocation-free hot path of the
    fault-simulation engines (gate inputs are gathered by indirect
    indexing inside the cube loop, so no per-gate buffer is built). *)

val eval_fn_from : gate_fn -> int array -> int array -> int
(** [eval_fn_from fn ins nets] evaluates [fn] reading literal [i] from
    [nets.(ins.(i))] — {!eval_fn} without materializing the input
    gather. *)

val make_cone_buffer : t -> int array
(** A save buffer of {!max_cone_size} words for {!eval_cone_into}. *)

val eval_cone_into :
  ?tally:int ref -> t -> override:int * gate_fn -> scratch:scratch -> buf:int array -> int
(** Cone-restricted faulty evaluation.  [scratch] must hold a completed
    good-machine evaluation of the PI words of interest; only the
    overridden gate's fanout cone is re-evaluated against it and only
    the reachable primary outputs are compared.  Returns the OR over all
    primary outputs of [faulty lxor good] — bit-identical to evaluating
    the whole faulty circuit — and restores [scratch] to the baseline
    before returning.  When the overridden gate's faulty word equals its
    good word the fault is not activated and the kernel exits after that
    single gate evaluation.  [tally], when given, accumulates the gate
    evaluations performed (1 or the cone size). *)

(** {1 Word-matrix evaluation (PPSFP)}

    A flat (net x lane) matrix of pattern words for parallel-pattern /
    parallel-fault simulation: row [net] holds [width] machine words at
    [net * width + lane], one per fault machine.  Net-major order makes
    the lane loop unit-stride, so one cube-cover decode is amortized
    over the whole fault group.  Backed by [Bigarray.int] (native 63-bit
    ints, unboxed loads) — the engines pack 62 patterns per word, so the
    narrower element loses nothing and every [unsafe_get] stays
    allocation-free. *)

type word_matrix = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

val make_word_matrix : t -> width:int -> word_matrix
(** A zeroed [n_nets x width] matrix.  Raises [Invalid_argument] when
    [width < 1]. *)

val matrix_fill_row : word_matrix -> width:int -> net:int -> int -> unit
(** Broadcast one word to every lane of row [net] (good-machine frontier
    values entering a fault group's cone). *)

val eval_fn_rows :
  gate_fn -> int array -> word_matrix -> width:int -> out:int -> tmp:int array -> unit
(** Grouped single-gate evaluation: for every lane, row [out] becomes
    the function applied to the input rows ([ins], net indices).  Cube
    outer, literal middle, lane inner; [tmp] (length >= [width]) is the
    caller-owned accumulator making the call allocation-free. *)

val eval_fn_in_matrix : gate_fn -> int array -> word_matrix -> width:int -> lane:int -> int
(** Scalar one-lane evaluation out of the matrix — the per-machine
    faulty-function fixup of a PPSFP sweep. *)

val gate_is_po : t -> int -> bool
(** Is gate [gid]'s output net a primary output?  (The PO-diff test of
    the cone-restricted kernels.) *)

val outputs_of_nets : t -> int array -> int array
(** Select the primary-output words from an [eval_words] result. *)

val eval : ?override:int * gate_fn -> t -> bool array -> bool array
(** Single-pattern convenience: primary inputs to primary outputs. *)

val eval_nets : ?override:int * gate_fn -> t -> bool array -> bool array
(** Single-pattern evaluation returning every net's value. *)

val eval_reference : t -> bool array -> bool array
(** Reference evaluation through the cell expressions (cross-checks the
    compiled path in tests). *)

val output_expr : t -> string -> Expr.t
(** Global function of a net over the primary inputs (cone extraction);
    for small networks and PROTEST's exact analyses. *)
