open Dynmos_expr
open Dynmos_switchnet
open Dynmos_cell
open Dynmos_core

(* Charge-level simulation of single gates.

   This is the model that lets the paper's claims be *executed* rather
   than assumed: a node is either actively driven or floating with a
   retained charge; floating nodes lose their charge after [leak_cycles]
   clock cycles (assumption A1: open gates read low because they leak).

   - [domino_cycle] runs one precharge/evaluate cycle of a domino CMOS
     gate (Fig. 4) with an optional injected physical fault;
   - [dynamic_nmos_cycle] does the same for a dynamic nMOS gate (Fig. 6);
   - [static_step] applies one input vector to a static CMOS gate, whose
     output node *retains* its value when neither network conducts — the
     Fig. 1 stuck-open memory.

   Combinationality of a faulted dynamic gate is then a checkable
   property: the valid output of a cycle must not depend on the gate's
   internal state at the start of the cycle. *)

type node = Driven of bool | Floating of bool | Unknown

let node_value = function Driven v | Floating v -> Logic.of_bool v | Unknown -> Logic.X

let equal_node a b =
  match (a, b) with
  | Driven x, Driven y | Floating x, Floating y -> Bool.compare x y = 0
  | Unknown, Unknown -> true
  | _, _ -> false

(* One clock cycle without a driver.  A previously driven node keeps its
   charge (dynamic retention is the operating principle of this logic and
   far outlasts a test on clock timescales); a node that was *never*
   charged reads low — that is assumption A1, the same leakage argument
   the paper applies to open gates.  This is exactly what makes the
   paper's A2-based classes come out: inverter-n-open retains the 1 it
   received when the node was last driven (s1-z), a never-precharged node
   (CMOS-4) reads 0. *)
let decay = function
  | Driven v -> Floating v
  | Floating v -> Floating v
  | Unknown -> Floating false

type domino_state = { y : node; z : node }

let domino_initial = { y = Unknown; z = Unknown }

let all_domino_states =
  let nodes = [ Driven false; Driven true; Floating false; Floating true; Unknown ] in
  List.concat_map (fun y -> List.map (fun z -> { y; z }) nodes) nodes

let is_fault cell fault candidates =
  ignore cell;
  match fault with Some f -> List.exists (fun c -> Fault.equal f c) candidates | None -> false

(* Does the (possibly faulted) switching network conduct under [env]? *)
let sn_conducts cell fault env =
  let net = Cell.network cell in
  let t' =
    match fault with
    | Some (Fault.Network_open i) -> Spnet.faulty_transmission net (Spnet.Switch_open i)
    | Some (Fault.Network_closed i) -> Spnet.faulty_transmission net (Spnet.Switch_closed i)
    | Some (Fault.Input_gate_open v) ->
        Spnet.faulty_transmission_multi net
          (List.map (fun s -> Spnet.Gate_open s.Spnet.id) (Spnet.switches_of_input net v))
    | _ -> Spnet.transmission net
  in
  Expr.eval env t'

let env_of_inputs cell inputs =
  let bound = List.combine (Cell.inputs cell) inputs in
  fun v ->
    match List.assoc_opt v bound with
    | Some b -> b
    | None -> invalid_arg ("Charge_sim: unbound input " ^ v)

(* Resolve a ratioed fight between a pull-up and a pull-down path. *)
let resolve_fight (el : Fault_map.electrical) ~r_up ~r_down =
  if r_up < el.Fault_map.strong_ratio *. r_down then Driven true
  else if r_down < el.Fault_map.strong_ratio *. r_up then Driven false
  else Unknown

(* Output inverter with optional device faults; input is the y node. *)
let inverter el fault ~y ~z_prev =
  let has c = match fault with Some f -> Fault.equal f c | None -> false in
  match y with
  | Unknown ->
      if has Fault.Inverter_p_closed && has Fault.Inverter_n_open then Driven true else Unknown
  | Driven v | Floating v ->
      let p_on = ((not v) || has Fault.Inverter_p_closed) && not (has Fault.Inverter_p_open) in
      let n_on = (v || has Fault.Inverter_n_closed) && not (has Fault.Inverter_n_open) in
      if p_on && n_on then
        resolve_fight el ~r_up:el.Fault_map.r_inverter_p ~r_down:el.Fault_map.r_inverter_n
      else if p_on then Driven true
      else if n_on then Driven false
      else decay z_prev

(* --- Domino CMOS (Fig. 4) --------------------------------------------- *)

let domino_cycle ?(electrical = Fault_map.default_electrical) ?fault cell state inputs =
  let el = electrical in
  let env = env_of_inputs cell inputs in
  let has c = is_fault cell fault [ c ] in
  let pulldown_conn_ok = not (has (Fault.Connection_open Fault.Pulldown_path)) in
  let precharge_conn_ok = not (has (Fault.Connection_open Fault.Precharge_path)) in
  (* Precharge phase: clock low; all domino gate inputs are low (they are
     outputs of other domino gates, Fig. 5). *)
  let y_pre =
    let pullup = (not (has Fault.Precharge_open)) && precharge_conn_ok in
    let foot = has Fault.Evaluate_closed in
    let pd = foot && pulldown_conn_ok && sn_conducts cell fault (fun _ -> false) in
    if pullup && pd then
      resolve_fight el ~r_up:el.Fault_map.r_precharge
        ~r_down:
          (el.Fault_map.r_evaluate
          +. Option.value ~default:infinity (Spnet.min_resistance (Cell.network cell)))
    else if pullup then Driven true
    else if pd then Driven false
    else decay state.y
  in
  let z_pre = inverter el fault ~y:y_pre ~z_prev:(decay state.z) in
  (* Evaluate phase: clock high. *)
  let y_eval =
    let pullup = has Fault.Precharge_closed && precharge_conn_ok in
    let foot = not (has Fault.Evaluate_open) in
    let pd = foot && pulldown_conn_ok && sn_conducts cell fault env in
    let r_path =
      el.Fault_map.r_evaluate
      +. (match Spnet.resistance (Cell.network cell) env with Some r -> r | None -> infinity)
    in
    if pullup && pd then resolve_fight el ~r_up:el.Fault_map.r_precharge ~r_down:r_path
    else if pd then Driven false
    else if pullup then Driven true
    else (
      (* The precharged node holds its charge within the cycle. *)
      match y_pre with Driven v -> Floating v | s -> s)
  in
  let z_eval = inverter el fault ~y:y_eval ~z_prev:z_pre in
  ({ y = y_eval; z = z_eval }, node_value z_eval)

(* --- Dynamic nMOS (Fig. 6) --------------------------------------------- *)

type nmos_state = { zn : node }

let nmos_initial = { zn = Unknown }

let all_nmos_states =
  List.map (fun zn -> { zn }) [ Driven false; Driven true; Floating false; Floating true; Unknown ]

(* Dynamic nMOS T_i stuck closed: the complementary clock charges the
   *input* node through the closed channel, so during evaluation the whole
   input reads 1 (paper case nMOS-(n+i)). *)
let nmos_effective_env cell fault env =
  match fault with
  | Some (Fault.Network_closed i) -> (
      match Spnet.find_switch (Cell.network cell) i with
      | Some s -> fun v -> if String.equal v s.Spnet.input then true else env v
      | None -> env)
  | _ -> env

let dynamic_nmos_cycle ?(electrical = Fault_map.default_electrical) ?fault cell state inputs =
  ignore electrical;
  let env = env_of_inputs cell inputs in
  let has c = is_fault cell fault [ c ] in
  let pulldown_conn_ok = not (has (Fault.Connection_open Fault.Pulldown_path)) in
  let precharge_conn_ok = not (has (Fault.Connection_open Fault.Precharge_path)) in
  (* Phase 1 (clock active): z precharged through T(n+1); input nodes are
     being charged to their logical values. *)
  let z_pre =
    let pullup = (not (has Fault.Precharge_open)) && precharge_conn_ok in
    if pullup then Driven true else decay state.zn
  in
  (* Phase 2 (clock falls): T(n+1) off — unless stuck closed, which keeps a
     permanent drain-source path that the evaluation fights and, per the
     paper, discharges z (the path goes to the now-low clock line). *)
  let z_eval =
    let env' =
      match fault with
      | Some (Fault.Network_closed _) -> nmos_effective_env cell fault env
      | _ -> env
    in
    let sn_fault =
      (* Network_closed is modelled through the input node, not the
         channel, in dynamic nMOS. *)
      match fault with Some (Fault.Network_closed _) -> None | f -> f
    in
    let pd = pulldown_conn_ok && sn_conducts cell sn_fault env' in
    if has Fault.Precharge_closed then Driven false
    else if pd then Driven false
    else match z_pre with Driven v -> Floating v | s -> s
  in
  ({ zn = z_eval }, node_value z_eval)

(* --- Static CMOS (Fig. 1) ---------------------------------------------- *)

type static_state = { out : node }

let static_initial = { out = Unknown }

let static_step ?(electrical = Fault_map.default_electrical) ?fault cell state inputs =
  let el = electrical in
  let env = env_of_inputs cell inputs in
  let net = Cell.network cell in
  let dual_net = Spnet.dual net in
  let pd =
    match fault with
    | Some (Fault.Network_open i) ->
        Expr.eval env (Spnet.faulty_transmission net (Spnet.Switch_open i))
    | Some (Fault.Network_closed i) ->
        Expr.eval env (Spnet.faulty_transmission net (Spnet.Switch_closed i))
    | _ -> Expr.eval env (Spnet.transmission net)
  in
  let pu =
    match fault with
    | Some (Fault.Pullup_open i) ->
        Expr.eval env (Spnet.faulty_transmission dual_net (Spnet.Switch_open i))
    | Some (Fault.Pullup_closed i) ->
        Expr.eval env (Spnet.faulty_transmission dual_net (Spnet.Switch_closed i))
    | _ -> Expr.eval env (Spnet.transmission dual_net)
  in
  let out =
    if pd && pu then resolve_fight el ~r_up:el.Fault_map.r_inverter_p ~r_down:el.Fault_map.r_inverter_n
    else if pd then Driven false
    else if pu then Driven true
    else (
      (* Neither network conducts: the output node keeps its charge.  This
         is the sequential behaviour of Fig. 1. *)
      match state.out with Driven v | Floating v -> Floating v | Unknown -> Unknown)
  in
  ({ out }, node_value out)

(* --- Combinationality checking ----------------------------------------- *)

let bool_vectors n =
  List.init (1 lsl n) (fun row -> List.init n (fun i -> (row lsr i) land 1 = 1))

(* A2 warm-up: apply every input vector once (for cell-sized gates this
   certainly charges and discharges every node of the fault-free circuit,
   and gives the faulty circuit the history assumption A2 requires). *)
let domino_warmup ?electrical ?fault cell =
  List.fold_left
    (fun st v -> fst (domino_cycle ?electrical ?fault cell st v))
    domino_initial
    (bool_vectors (Cell.arity cell))

let nmos_warmup ?electrical ?fault cell =
  List.fold_left
    (fun st v -> fst (dynamic_nmos_cycle ?electrical ?fault cell st v))
    nmos_initial
    (bool_vectors (Cell.arity cell))

(* Claim 2 executed: after the A2 warm-up, does the valid output of every
   cycle depend only on that cycle's inputs?  We enumerate reachable
   states (from the warm-up state, closed under every input vector) and
   require a unique output per vector across all of them. *)
let combinational_after_warmup ~cycle ~warm_state ~equal_state ~arity =
  let vectors = bool_vectors arity in
  let reachable = ref [ warm_state ] in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun st ->
        List.iter
          (fun v ->
            let st', _ = cycle st v in
            if not (List.exists (equal_state st') !reachable) then begin
              reachable := st' :: !reachable;
              changed := true
            end)
          vectors)
      !reachable
  done;
  List.for_all
    (fun v ->
      match List.map (fun st -> snd (cycle st v)) !reachable with
      | [] -> true
      | o :: os -> List.for_all (Logic.equal o) os)
    vectors

let domino_combinational ?electrical ?fault cell =
  let cycle st v = domino_cycle ?electrical ?fault cell st v in
  combinational_after_warmup ~cycle
    ~warm_state:(domino_warmup ?electrical ?fault cell)
    ~equal_state:(fun a b -> equal_node a.y b.y && equal_node a.z b.z)
    ~arity:(Cell.arity cell)

let nmos_combinational ?electrical ?fault cell =
  let cycle st v = dynamic_nmos_cycle ?electrical ?fault cell st v in
  combinational_after_warmup ~cycle
    ~warm_state:(nmos_warmup ?electrical ?fault cell)
    ~equal_state:(fun a b -> equal_node a.zn b.zn)
    ~arity:(Cell.arity cell)

let static_sequential ?electrical ?fault cell =
  (* Does there exist an input vector whose output differs depending on
     the stored state?  (The Fig. 1 test, as an existence check.) *)
  let vectors = bool_vectors (Cell.arity cell) in
  let states =
    [ { out = Driven false }; { out = Driven true } ]
  in
  List.exists
    (fun v ->
      match
        List.map (fun st -> snd (static_step ?electrical ?fault cell st v)) states
      with
      | [ a; b ] -> not (Logic.equal a b)
      | _ -> false)
    vectors

(* The observed logic function of a (possibly faulty) dynamic gate after
   warm-up — compared against [Fault_map.map]'s prediction in tests. *)
let observed_function ?electrical ?fault cell =
  let tech = Cell.technology cell in
  let warm, cycle =
    match tech with
    | Technology.Domino_cmos ->
        let w = domino_warmup ?electrical ?fault cell in
        (`D w, fun st v -> match st with
           | `D s -> let s', o = domino_cycle ?electrical ?fault cell s v in (`D s', o)
           | `N _ ->
               invalid_arg
                 "Charge_sim.observed_function: dynamic-NMOS state fed to a domino cycle")
    | Technology.Dynamic_nmos ->
        let w = nmos_warmup ?electrical ?fault cell in
        (`N w, fun st v -> match st with
           | `N s -> let s', o = dynamic_nmos_cycle ?electrical ?fault cell s v in (`N s', o)
           | `D _ ->
               invalid_arg
                 "Charge_sim.observed_function: domino state fed to a dynamic-NMOS cycle")
    | _ -> invalid_arg "Charge_sim.observed_function: dynamic technologies only"
  in
  let vectors = bool_vectors (Cell.arity cell) in
  let _, outs =
    List.fold_left
      (fun (st, acc) v ->
        let st', o = cycle st v in
        (st', (v, o) :: acc))
      (warm, []) vectors
  in
  List.rev outs
