open Dynmos_expr
open Dynmos_cell
open Dynmos_netlist

(* Compiled form of a netlist for fast simulation.

   Nets get dense indices (primary inputs first, then gate outputs in
   topological order).  Every distinct cell function is compiled once into
   a cube cover over the gate's input positions, so evaluation is pure
   word arithmetic: the same cover evaluates one pattern (ints 0/1) or 62
   packed patterns per machine word — the representation bit-parallel
   fault simulation uses. *)

type gate_fn = {
  arity : int;
  cubes : (int * int) array;  (* (care, value) over input positions *)
  table : Truth_table.t;      (* over the cell's formal inputs *)
}

type cgate = {
  g : Netlist.gate;
  ins : int array;  (* net indices, positional *)
  out : int;        (* net index *)
  fn : gate_fn;
}

type t = {
  netlist : Netlist.t;
  n_nets : int;
  n_inputs : int;
  po : int array;       (* net indices of the primary outputs *)
  cgates : cgate array; (* topological order; cgates.(i).g.id = i *)
  index_of_net : (string, int) Hashtbl.t;
  net_names : string array;
  (* Structural fanout analysis, computed once at compile time: the
     transitive fanout cone of each gate (every gate a fault at that site
     can influence), topologically sorted so the cone can be re-evaluated
     in one forward pass, plus the subset of primary outputs the cone
     reaches.  This is what lets fault injection re-simulate a handful of
     gates instead of the whole circuit. *)
  cones : int array array;    (* per gate id: cone gate ids, ascending; cone.(0) = the gate *)
  reach_po : int array array; (* per gate id: positions in [po] reachable from it *)
  gate_po : bool array;       (* per gate id: its output net is a primary output *)
  max_cone : int;
}

let fn_of_table table =
  let sop = Minimize.of_table table in
  {
    arity = Truth_table.n_vars table;
    cubes = Array.of_list (List.map (fun c -> (Cube.care c, Cube.value c)) sop);
    table;
  }

let fn_of_cell cell = fn_of_table (Cell.logic_table cell)

let compile netlist =
  let index_of_net = Hashtbl.create 64 in
  let next = ref 0 in
  let assign net =
    Hashtbl.replace index_of_net net !next;
    incr next
  in
  List.iter assign (Netlist.inputs netlist);
  let n_inputs = !next in
  Array.iter (fun g -> assign g.Netlist.output_net) (Netlist.gate_array netlist);
  let n_nets = !next in
  let idx net = Hashtbl.find index_of_net net in
  (* Compile each distinct cell once. *)
  let fns = Hashtbl.create 16 in
  let fn_of cell =
    match Hashtbl.find_opt fns (Cell.name cell) with
    | Some fn -> fn
    | None ->
        let fn = fn_of_cell cell in
        Hashtbl.add fns (Cell.name cell) fn;
        fn
  in
  let cgates =
    Array.map
      (fun g ->
        { g; ins = Array.of_list (List.map idx g.input_nets); out = idx g.output_net; fn = fn_of g.cell })
      (Netlist.gate_array netlist)
  in
  let po = Array.of_list (List.map idx (Netlist.outputs netlist)) in
  let net_names = Array.make n_nets "" in
  Hashtbl.iter (fun net i -> net_names.(i) <- net) index_of_net;
  (* Fanout analysis.  Gate ids are dense topological indices (validated
     by Netlist), so gate i's output net is n_inputs + i and a cone
     collected in ascending id order is already topologically sorted. *)
  let n_g = Array.length cgates in
  Array.iteri (fun i cg -> assert (cg.g.Netlist.id = i && cg.out = n_inputs + i)) cgates;
  let consumers = Array.make n_g [] in
  Array.iteri
    (fun gi cg ->
      Array.iter
        (fun net -> if net >= n_inputs then consumers.(net - n_inputs) <- gi :: consumers.(net - n_inputs))
        cg.ins)
    cgates;
  let gate_po = Array.make n_g false in
  let po_positions = Array.make n_g [] in
  Array.iteri
    (fun k net ->
      if net >= n_inputs then begin
        gate_po.(net - n_inputs) <- true;
        po_positions.(net - n_inputs) <- k :: po_positions.(net - n_inputs)
      end)
    po;
  let mark = Array.make n_g (-1) in
  let cones = Array.make n_g [||] in
  let reach_po = Array.make n_g [||] in
  let max_cone = ref 0 in
  for g0 = 0 to n_g - 1 do
    (* DFS over consumer edges, stamping [mark] with g0 (no clearing
       between gates); explicit stack so deep chains cannot overflow. *)
    mark.(g0) <- g0;
    let stack = ref consumers.(g0) in
    while !stack <> [] do
      match !stack with
      | [] -> ()
      | g :: rest ->
          stack := rest;
          if mark.(g) <> g0 then begin
            mark.(g) <- g0;
            stack := List.rev_append consumers.(g) !stack
          end
    done;
    let count = ref 0 in
    for g = g0 to n_g - 1 do
      if mark.(g) = g0 then incr count
    done;
    let cone = Array.make !count 0 in
    let pos = ref [] in
    let j = ref 0 in
    for g = g0 to n_g - 1 do
      if mark.(g) = g0 then begin
        cone.(!j) <- g;
        incr j;
        List.iter (fun k -> pos := k :: !pos) po_positions.(g)
      end
    done;
    cones.(g0) <- cone;
    reach_po.(g0) <- Array.of_list (List.rev !pos);
    if !count > !max_cone then max_cone := !count
  done;
  {
    netlist; n_nets; n_inputs; po; cgates; index_of_net; net_names;
    cones; reach_po; gate_po; max_cone = !max_cone;
  }

let netlist t = t.netlist
let n_nets t = t.n_nets
let n_inputs t = t.n_inputs
let n_outputs t = Array.length t.po
let n_gates t = Array.length t.cgates
let po_indices t = t.po
let net_index t net = Hashtbl.find_opt t.index_of_net net
let net_name t i = t.net_names.(i)
let gates t = t.cgates
let fanout_cone t gid = t.cones.(gid)
let reachable_outputs t gid = t.reach_po.(gid)
let max_cone_size t = t.max_cone

(* Evaluate one gate function on word-packed inputs: bit j of the result is
   the function applied to bit j of each input word. *)
let eval_fn fn (input_words : int array) =
  let out = ref 0 in
  Array.iter
    (fun (care, value) ->
      let m = ref (-1) in
      let rec lits i =
        if 1 lsl i <= care then begin
          if care land (1 lsl i) <> 0 then
            m := !m land (if value land (1 lsl i) <> 0 then input_words.(i) else lnot input_words.(i));
          lits (i + 1)
        end
      in
      lits 0;
      out := !out lor !m)
    fn.cubes;
  !out

(* [eval_fn] with the input gather folded into the cube loop: literal i
   reads [nets.(ins.(i))] directly, so evaluating a gate allocates
   nothing (the old hot path built a fresh [Array.map] of input words
   per gate per evaluation). *)
let eval_fn_from fn (ins : int array) (nets : int array) =
  let out = ref 0 in
  Array.iter
    (fun (care, value) ->
      let m = ref (-1) in
      let rec lits i =
        if 1 lsl i <= care then begin
          if care land (1 lsl i) <> 0 then begin
            let w = nets.(ins.(i)) in
            m := !m land (if value land (1 lsl i) <> 0 then w else lnot w)
          end;
          lits (i + 1)
        end
      in
      lits 0;
      out := !out lor !m)
    fn.cubes;
  !out

(* Evaluation scratch state.  All mutable state of an evaluation lives in
   the caller-provided [scratch] buffer: [t] itself is never written after
   [compile], so one compiled netlist can be shared read-only across
   domains — but a scratch buffer must belong to exactly one domain (or
   one call chain); sharing it across domains races on every net value. *)
type scratch = int array

let make_scratch t = Array.make t.n_nets 0

(* [override] substitutes the function of one gate (fault injection).
   Writes every net's word into [scratch] (length [n_nets]). *)
let eval_words_into ?override t ~(scratch : scratch) (pi_words : int array) =
  if Array.length pi_words <> t.n_inputs then invalid_arg "Compiled.eval_words: PI arity";
  if Array.length scratch <> t.n_nets then invalid_arg "Compiled.eval_words_into: scratch size";
  Array.blit pi_words 0 scratch 0 t.n_inputs;
  Array.iter
    (fun cg ->
      let fn =
        match override with
        | Some (gid, fn') when gid = cg.g.id -> fn'
        | _ -> cg.fn
      in
      scratch.(cg.out) <- eval_fn_from fn cg.ins scratch)
    t.cgates

(* --- Cone-restricted fault injection ------------------------------------- *)

let make_cone_buffer t = Array.make (max 1 t.max_cone) 0

(* Faulty evaluation restricted to the fault site's fanout cone.

   [scratch] must hold a completed good-machine evaluation
   ([eval_words_into] on the same PI words); it is used in place as the
   baseline and is restored before returning, so one buffer serves any
   number of consecutive fault injections against the same patterns.
   [buf] (>= the cone size, see [make_cone_buffer]) saves the baseline
   words of the cone outputs.

   The overridden gate is evaluated first: when its faulty word equals
   the good word on every packed pattern the fault is not activated,
   nothing downstream can diverge, and the kernel exits after that
   single gate — the dominant saving, since most patterns do not
   activate most faults.  Otherwise the rest of the cone is re-evaluated
   in topological order (nets outside the cone cannot change, their
   values are read from the baseline) and only the primary outputs the
   cone reaches are compared; unreachable outputs are untouched by
   construction, so the returned word is bit-identical to a whole-
   circuit faulty evaluation XORed against the good one over all
   outputs.

   [tally], when given, accumulates the number of gate evaluations
   actually performed (1 when the fault was not activated, the cone size
   otherwise). *)
let eval_cone_into ?tally t ~override:(gid, fn') ~(scratch : scratch) ~(buf : int array) =
  let cone = t.cones.(gid) in
  let n = Array.length cone in
  let cgates = t.cgates in
  for i = 0 to n - 1 do
    buf.(i) <- scratch.(cgates.(cone.(i)).out)
  done;
  let cg0 = cgates.(gid) in
  let faulty0 = eval_fn_from fn' cg0.ins scratch in
  let diff = ref 0 in
  let evaluated = ref 1 in
  if faulty0 <> buf.(0) then begin
    scratch.(cg0.out) <- faulty0;
    for i = 1 to n - 1 do
      let cg = cgates.(cone.(i)) in
      scratch.(cg.out) <- eval_fn_from cg.fn cg.ins scratch
    done;
    evaluated := n;
    (* Compare the reachable outputs and restore the baseline in one
       backwards pass. *)
    for i = n - 1 downto 0 do
      let g = cone.(i) in
      let out = cgates.(g).out in
      if t.gate_po.(g) then diff := !diff lor (scratch.(out) lxor buf.(i));
      scratch.(out) <- buf.(i)
    done
  end;
  (match tally with Some r -> r := !r + !evaluated | None -> ());
  !diff

(* --- Word-matrix evaluation (PPSFP) --------------------------------------- *)

(* A flat (net x lane) matrix of pattern words: row [net] holds [width]
   machine words, one per fault machine ("lane"), at [net * width + lane].
   Net-major order makes the lane loop unit-stride, so evaluating one
   gate for a whole fault group decodes the cube cover once and streams
   over contiguous memory.  Backed by [Bigarray.int] rather than the
   boxed-on-read [Int64]: OCaml's native 63-bit int fits the engines'
   62-pattern packing and [Array1.unsafe_get] on the int kind is a bare
   load, no allocation on any path. *)
type word_matrix = (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t

let make_word_matrix t ~width =
  if width < 1 then invalid_arg "Compiled.make_word_matrix: width must be >= 1";
  let m = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max 1 (t.n_nets * width)) in
  Bigarray.Array1.fill m 0;
  m

let matrix_fill_row (m : word_matrix) ~width ~net w =
  let base = net * width in
  for l = 0 to width - 1 do
    Bigarray.Array1.unsafe_set m (base + l) w
  done

(* Grouped single-gate evaluation: for every lane, bit j of row [out]
   becomes [fn] applied to bit j of each input row.  The cube cover is
   decoded once for all [width] lanes — cube outer, literal middle, lane
   inner — with the output row itself as the per-cube mask buffer (legal
   because a combinational gate never reads its own output) and [tmp]
   (caller scratch, length >= width) as the OR-accumulator, so the call
   allocates nothing. *)
let eval_fn_rows fn (ins : int array) (m : word_matrix) ~width ~out ~(tmp : int array) =
  let base_out = out * width in
  (* AND one literal's input row into the output row, in place. *)
  let and_literal care value i =
    if care land (1 lsl i) <> 0 then begin
      let base_in = Array.unsafe_get ins i * width in
      if value land (1 lsl i) <> 0 then
        for l = 0 to width - 1 do
          Bigarray.Array1.unsafe_set m (base_out + l)
            (Bigarray.Array1.unsafe_get m (base_out + l)
            land Bigarray.Array1.unsafe_get m (base_in + l))
        done
      else
        for l = 0 to width - 1 do
          Bigarray.Array1.unsafe_set m (base_out + l)
            (Bigarray.Array1.unsafe_get m (base_out + l)
            land lnot (Bigarray.Array1.unsafe_get m (base_in + l)))
        done
    end
  in
  let cubes = fn.cubes in
  let n_cubes = Array.length cubes in
  (* Two specializations cover the common cell covers (a minimized
     monotone AND is one cube; a minimized OR is single-literal cubes)
     without the accumulator round-trips of the general shape. *)
  if n_cubes = 0 then
    for l = 0 to width - 1 do
      Bigarray.Array1.unsafe_set m (base_out + l) 0
    done
  else if n_cubes = 1 then begin
    (* One cube: AND the literals straight into the output row. *)
    let care, value = Array.unsafe_get cubes 0 in
    for l = 0 to width - 1 do
      Bigarray.Array1.unsafe_set m (base_out + l) (-1)
    done;
    let rec lits i =
      if 1 lsl i <= care then begin
        and_literal care value i;
        lits (i + 1)
      end
    in
    lits 0
  end
  else begin
    let single_literal = ref true in
    for c = 0 to n_cubes - 1 do
      let care, _ = Array.unsafe_get cubes c in
      if care = 0 || care land (care - 1) <> 0 then single_literal := false
    done;
    if !single_literal then begin
      (* Every cube is one literal: OR them straight into the output row. *)
      for l = 0 to width - 1 do
        Bigarray.Array1.unsafe_set m (base_out + l) 0
      done;
      for c = 0 to n_cubes - 1 do
        let care, value = Array.unsafe_get cubes c in
        let rec idx i = if care lsr i = 1 then i else idx (i + 1) in
        let base_in = Array.unsafe_get ins (idx 0) * width in
        if value land care <> 0 then
          for l = 0 to width - 1 do
            Bigarray.Array1.unsafe_set m (base_out + l)
              (Bigarray.Array1.unsafe_get m (base_out + l)
              lor Bigarray.Array1.unsafe_get m (base_in + l))
          done
        else
          for l = 0 to width - 1 do
            Bigarray.Array1.unsafe_set m (base_out + l)
              (Bigarray.Array1.unsafe_get m (base_out + l)
              lor lnot (Bigarray.Array1.unsafe_get m (base_in + l)))
          done
      done
    end
    else begin
      (* General cover: the output row is the per-cube mask buffer and
         [tmp] the OR-accumulator. *)
      Array.fill tmp 0 width 0;
      for c = 0 to n_cubes - 1 do
        let care, value = Array.unsafe_get cubes c in
        for l = 0 to width - 1 do
          Bigarray.Array1.unsafe_set m (base_out + l) (-1)
        done;
        let rec lits i =
          if 1 lsl i <= care then begin
            and_literal care value i;
            lits (i + 1)
          end
        in
        lits 0;
        for l = 0 to width - 1 do
          Array.unsafe_set tmp l
            (Array.unsafe_get tmp l lor Bigarray.Array1.unsafe_get m (base_out + l))
        done
      done;
      for l = 0 to width - 1 do
        Bigarray.Array1.unsafe_set m (base_out + l) (Array.unsafe_get tmp l)
      done
    end
  end

(* Scalar evaluation of one lane out of the matrix — the per-machine
   override fixup of the PPSFP sweep (a faulty gate function applies to
   exactly one lane, so it is evaluated alone against that lane's input
   words). *)
let eval_fn_in_matrix fn (ins : int array) (m : word_matrix) ~width ~lane =
  let out = ref 0 in
  Array.iter
    (fun (care, value) ->
      let mask = ref (-1) in
      let rec lits i =
        if 1 lsl i <= care then begin
          if care land (1 lsl i) <> 0 then begin
            let w = Bigarray.Array1.unsafe_get m ((Array.unsafe_get ins i * width) + lane) in
            mask := !mask land (if value land (1 lsl i) <> 0 then w else lnot w)
          end;
          lits (i + 1)
        end
      in
      lits 0;
      out := !out lor !mask)
    fn.cubes;
  !out

let gate_is_po t gid = t.gate_po.(gid)

let eval_words ?override t (pi_words : int array) =
  let scratch = make_scratch t in
  eval_words_into ?override t ~scratch pi_words;
  scratch

let outputs_of_nets t nets = Array.map (fun i -> nets.(i)) t.po

let eval ?override t (pi : bool array) =
  let words = Array.map (fun b -> if b then 1 else 0) pi in
  let nets = eval_words ?override t words in
  Array.map (fun i -> nets.(i) land 1 = 1) t.po

let eval_nets ?override t (pi : bool array) =
  let words = Array.map (fun b -> if b then 1 else 0) pi in
  let nets = eval_words ?override t words in
  Array.map (fun w -> w land 1 = 1) nets

(* Reference evaluation through the cell logic expressions (no cube
   compilation) — used to cross-check the compiled path in tests. *)
let eval_reference t (pi : bool array) =
  let env = Hashtbl.create 64 in
  List.iteri (fun i net -> Hashtbl.replace env net pi.(i)) (Netlist.inputs t.netlist);
  Array.iter
    (fun cg ->
      let formal = Cell.inputs cg.g.cell in
      let binding = List.combine formal cg.g.input_nets in
      let lookup v =
        match List.assoc_opt v binding with
        | Some net -> Hashtbl.find env net
        | None -> invalid_arg ("eval_reference: free variable " ^ v)
      in
      Hashtbl.replace env cg.g.output_net (Expr.eval lookup (Cell.logic cg.g.cell)))
    t.cgates;
  Array.of_list (List.map (Hashtbl.find env) (Netlist.outputs t.netlist))

(* The global function of one primary output as an expression over the
   primary inputs (cone extraction); feasible for small networks and used
   by PROTEST's exact analyses. *)
let output_expr t net =
  let cache = Hashtbl.create 64 in
  let rec expr_of net =
    match Hashtbl.find_opt cache net with
    | Some e -> e
    | None ->
        let e =
          match Netlist.gate_of_net t.netlist net with
          | None -> Expr.var net
          | Some g ->
              let formal = Cell.inputs g.cell in
              let binding = List.combine formal g.input_nets in
              Expr.subst
                (fun v ->
                  match List.assoc_opt v binding with
                  | Some inner -> Some (expr_of inner)
                  | None -> None)
                (Cell.logic g.cell)
        in
        Hashtbl.replace cache net e;
        e
  in
  expr_of net
