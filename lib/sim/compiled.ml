open Dynmos_expr
open Dynmos_cell
open Dynmos_netlist

(* Compiled form of a netlist for fast simulation.

   Nets get dense indices (primary inputs first, then gate outputs in
   topological order).  Every distinct cell function is compiled once into
   a cube cover over the gate's input positions, so evaluation is pure
   word arithmetic: the same cover evaluates one pattern (ints 0/1) or 62
   packed patterns per machine word — the representation bit-parallel
   fault simulation uses. *)

type gate_fn = {
  arity : int;
  cubes : (int * int) array;  (* (care, value) over input positions *)
  table : Truth_table.t;      (* over the cell's formal inputs *)
}

type cgate = {
  g : Netlist.gate;
  ins : int array;  (* net indices, positional *)
  out : int;        (* net index *)
  fn : gate_fn;
}

type t = {
  netlist : Netlist.t;
  n_nets : int;
  n_inputs : int;
  po : int array;       (* net indices of the primary outputs *)
  cgates : cgate array; (* topological order *)
  index_of_net : (string, int) Hashtbl.t;
  net_names : string array;
}

let fn_of_table table =
  let sop = Minimize.of_table table in
  {
    arity = Truth_table.n_vars table;
    cubes = Array.of_list (List.map (fun c -> (Cube.care c, Cube.value c)) sop);
    table;
  }

let fn_of_cell cell = fn_of_table (Cell.logic_table cell)

let compile netlist =
  let index_of_net = Hashtbl.create 64 in
  let next = ref 0 in
  let assign net =
    Hashtbl.replace index_of_net net !next;
    incr next
  in
  List.iter assign (Netlist.inputs netlist);
  let n_inputs = !next in
  Array.iter (fun g -> assign g.Netlist.output_net) (Netlist.gate_array netlist);
  let n_nets = !next in
  let idx net = Hashtbl.find index_of_net net in
  (* Compile each distinct cell once. *)
  let fns = Hashtbl.create 16 in
  let fn_of cell =
    match Hashtbl.find_opt fns (Cell.name cell) with
    | Some fn -> fn
    | None ->
        let fn = fn_of_cell cell in
        Hashtbl.add fns (Cell.name cell) fn;
        fn
  in
  let cgates =
    Array.map
      (fun g ->
        { g; ins = Array.of_list (List.map idx g.input_nets); out = idx g.output_net; fn = fn_of g.cell })
      (Netlist.gate_array netlist)
  in
  let po = Array.of_list (List.map idx (Netlist.outputs netlist)) in
  let net_names = Array.make n_nets "" in
  Hashtbl.iter (fun net i -> net_names.(i) <- net) index_of_net;
  { netlist; n_nets; n_inputs; po; cgates; index_of_net; net_names }

let netlist t = t.netlist
let n_nets t = t.n_nets
let n_inputs t = t.n_inputs
let n_outputs t = Array.length t.po
let n_gates t = Array.length t.cgates
let po_indices t = t.po
let net_index t net = Hashtbl.find_opt t.index_of_net net
let net_name t i = t.net_names.(i)
let gates t = t.cgates

(* Evaluate one gate function on word-packed inputs: bit j of the result is
   the function applied to bit j of each input word. *)
let eval_fn fn (input_words : int array) =
  let out = ref 0 in
  Array.iter
    (fun (care, value) ->
      let m = ref (-1) in
      let rec lits i =
        if 1 lsl i <= care then begin
          if care land (1 lsl i) <> 0 then
            m := !m land (if value land (1 lsl i) <> 0 then input_words.(i) else lnot input_words.(i));
          lits (i + 1)
        end
      in
      lits 0;
      out := !out lor !m)
    fn.cubes;
  !out

(* Evaluation scratch state.  All mutable state of an evaluation lives in
   the caller-provided [scratch] buffer: [t] itself is never written after
   [compile], so one compiled netlist can be shared read-only across
   domains — but a scratch buffer must belong to exactly one domain (or
   one call chain); sharing it across domains races on every net value. *)
type scratch = int array

let make_scratch t = Array.make t.n_nets 0

(* [override] substitutes the function of one gate (fault injection).
   Writes every net's word into [scratch] (length [n_nets]). *)
let eval_words_into ?override t ~(scratch : scratch) (pi_words : int array) =
  if Array.length pi_words <> t.n_inputs then invalid_arg "Compiled.eval_words: PI arity";
  if Array.length scratch <> t.n_nets then invalid_arg "Compiled.eval_words_into: scratch size";
  Array.blit pi_words 0 scratch 0 t.n_inputs;
  Array.iter
    (fun cg ->
      let fn =
        match override with
        | Some (gid, fn') when gid = cg.g.id -> fn'
        | _ -> cg.fn
      in
      let ins = Array.map (fun i -> scratch.(i)) cg.ins in
      scratch.(cg.out) <- eval_fn fn ins)
    t.cgates

let eval_words ?override t (pi_words : int array) =
  let scratch = make_scratch t in
  eval_words_into ?override t ~scratch pi_words;
  scratch

let outputs_of_nets t nets = Array.map (fun i -> nets.(i)) t.po

let eval ?override t (pi : bool array) =
  let words = Array.map (fun b -> if b then 1 else 0) pi in
  let nets = eval_words ?override t words in
  Array.map (fun i -> nets.(i) land 1 = 1) t.po

let eval_nets ?override t (pi : bool array) =
  let words = Array.map (fun b -> if b then 1 else 0) pi in
  let nets = eval_words ?override t words in
  Array.map (fun w -> w land 1 = 1) nets

(* Reference evaluation through the cell logic expressions (no cube
   compilation) — used to cross-check the compiled path in tests. *)
let eval_reference t (pi : bool array) =
  let env = Hashtbl.create 64 in
  List.iteri (fun i net -> Hashtbl.replace env net pi.(i)) (Netlist.inputs t.netlist);
  Array.iter
    (fun cg ->
      let formal = Cell.inputs cg.g.cell in
      let binding = List.combine formal cg.g.input_nets in
      let lookup v =
        match List.assoc_opt v binding with
        | Some net -> Hashtbl.find env net
        | None -> invalid_arg ("eval_reference: free variable " ^ v)
      in
      Hashtbl.replace env cg.g.output_net (Expr.eval lookup (Cell.logic cg.g.cell)))
    t.cgates;
  Array.of_list (List.map (Hashtbl.find env) (Netlist.outputs t.netlist))

(* The global function of one primary output as an expression over the
   primary inputs (cone extraction); feasible for small networks and used
   by PROTEST's exact analyses. *)
let output_expr t net =
  let cache = Hashtbl.create 64 in
  let rec expr_of net =
    match Hashtbl.find_opt cache net with
    | Some e -> e
    | None ->
        let e =
          match Netlist.gate_of_net t.netlist net with
          | None -> Expr.var net
          | Some g ->
              let formal = Cell.inputs g.cell in
              let binding = List.combine formal g.input_nets in
              Expr.subst
                (fun v ->
                  match List.assoc_opt v binding with
                  | Some inner -> Some (expr_of inner)
                  | None -> None)
                (Cell.logic g.cell)
        in
        Hashtbl.replace cache net e;
        e
  in
  expr_of net
