(* Observability: counters, wall-clock timers and span events with a
   JSONL sink.  See the interface for the design constraints; the one
   non-obvious point is the encoding of non-finite floats, which JSON
   cannot represent — they become the strings "nan"/"inf"/"-inf" so a
   line never fails to parse. *)

type value = Bool of bool | Int of int | Float of float | String of string

type event = { ts : float; ev : string; fields : (string * value) list }

(* --- JSON encoding -------------------------------------------------------- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_into buf f =
  if Float.is_finite f then
    (* %.17g round-trips; %g alone may print "1e+06" which is valid JSON,
       but exponents with a leading '+' are too, so no post-processing. *)
    Buffer.add_string buf (Printf.sprintf "%.17g" f)
  else if Float.is_nan f then Buffer.add_string buf "\"nan\""
  else Buffer.add_string buf (if f > 0.0 then "\"inf\"" else "\"-inf\"")

let value_into buf = function
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_into buf f
  | String s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'

let json_line e =
  let buf = Buffer.create 128 in
  Buffer.add_string buf "{\"ts\":";
  float_into buf e.ts;
  Buffer.add_string buf ",\"ev\":\"";
  escape_into buf e.ev;
  Buffer.add_char buf '"';
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf ",\"";
      escape_into buf k;
      Buffer.add_string buf "\":";
      value_into buf v)
    e.fields;
  Buffer.add_char buf '}';
  Buffer.contents buf

let int_field e k = match List.assoc_opt k e.fields with Some (Int n) -> Some n | _ -> None

(* --- Sinks ----------------------------------------------------------------- *)

type sink = Null | Emit of (event -> unit)

let null_sink = Null

let channel_sink oc =
  let m = Mutex.create () in
  Emit
    (fun e ->
      Mutex.lock m;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock m)
        (fun () ->
          output_string oc (json_line e);
          output_char oc '\n';
          flush oc))

let memory_sink () =
  let m = Mutex.create () in
  let events = ref [] in
  let sink =
    Emit
      (fun e ->
        Mutex.lock m;
        events := e :: !events;
        Mutex.unlock m)
  in
  let fetch () =
    Mutex.lock m;
    let l = List.rev !events in
    Mutex.unlock m;
    l
  in
  (sink, fetch)

(* Ring buffer: long-lived processes (the serve loop) must be able to
   keep a recent-events window without the unbounded list growth of
   [memory_sink].  [next] counts every emission, so the fill level and
   the oldest live slot fall out of one cursor. *)
let bounded_memory_sink ~capacity =
  if capacity <= 0 then
    invalid_arg
      (Printf.sprintf "Obs.bounded_memory_sink: capacity must be positive (got %d)" capacity);
  let m = Mutex.create () in
  let buf = Array.make capacity None in
  let next = ref 0 in
  let sink =
    Emit
      (fun e ->
        Mutex.lock m;
        buf.(!next mod capacity) <- Some e;
        incr next;
        Mutex.unlock m)
  in
  let fetch () =
    Mutex.lock m;
    let live = min !next capacity in
    let first = !next - live in
    let l = List.init live (fun i -> Option.get buf.((first + i) mod capacity)) in
    Mutex.unlock m;
    l
  in
  let total () =
    Mutex.lock m;
    let n = !next in
    Mutex.unlock m;
    n
  in
  (sink, fetch, total)

let tee a b =
  match (a, b) with
  | Null, s | s, Null -> s
  | Emit f, Emit g -> Emit (fun e -> f e; g e)

(* --- Recorders -------------------------------------------------------------- *)

type t = { sink : sink }

let disabled = { sink = Null }
let make sink = { sink }
let enabled t = match t.sink with Null -> false | Emit _ -> true
let now () = Unix.gettimeofday ()

let emit t ~ev fields =
  match t.sink with Null -> () | Emit f -> f { ts = now (); ev; fields }

let span t ~name ?(fields = []) f =
  match t.sink with
  | Null -> f ()
  | Emit _ ->
      let t0 = now () in
      let finally () = emit t ~ev:"span" (("name", String name) :: ("dt_s", Float (now () -. t0)) :: fields) in
      Fun.protect ~finally f

(* --- Counters ---------------------------------------------------------------- *)

module Counters = struct
  type nonrec t = (string, int ref) Hashtbl.t

  let create () : t = Hashtbl.create 16

  let add t name n =
    match Hashtbl.find_opt t name with
    | Some r -> r := !r + n
    | None -> Hashtbl.add t name (ref n)

  let incr t name = add t name 1
  let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

  let merge_into ~dst src = Hashtbl.iter (fun name r -> add dst name !r) src

  let to_list t =
    Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let fields t = List.map (fun (name, n) -> (name, Int n)) (to_list t)
end

let emit_counters t ~ev ?(fields = []) counters =
  match t.sink with Null -> () | Emit _ -> emit t ~ev (fields @ Counters.fields counters)
