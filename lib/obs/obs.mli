(** Observability: counters, wall-clock timers and span events with a
    JSONL sink — the measurement substrate of the fault-simulation
    engines and the bench harness.

    Design constraints:
    - a disabled recorder ({!disabled}) costs one branch per emission
      point — no allocation, no clock read;
    - sinks are safe to share across OCaml 5 domains (each emission is
      serialized under a mutex), so per-domain workers can report into
      one trace;
    - the JSONL encoding is self-contained (no external JSON library):
      one event per line, objects only, keys and string values escaped
      per RFC 8259. *)

type value = Bool of bool | Int of int | Float of float | String of string

type event = {
  ts : float;  (** wall-clock seconds since the epoch at emission *)
  ev : string;  (** event kind, e.g. ["faultsim.run"] *)
  fields : (string * value) list;
}

val json_line : event -> string
(** One-line JSON object: [{"ts":..., "ev":..., <fields>}] (no trailing
    newline).  Non-finite floats are encoded as strings ("nan", "inf",
    "-inf") to keep the line valid JSON. *)

val int_field : event -> string -> int option
(** [int_field e k] is the [Int] value of field [k], if present — the
    accessor consumers (server stats, CLI [--stats], the bench) use to
    read counters like ["gate_evals"] or ["chaos_injected"] off
    ["faultsim.run"] events without re-implementing the assoc lookup. *)

(** {1 Sinks} *)

type sink

val null_sink : sink
(** Drops every event. *)

val channel_sink : out_channel -> sink
(** JSON Lines to a channel, one flushed line per event, mutex-guarded
    (safe from multiple domains).  The caller owns and closes the
    channel. *)

val memory_sink : unit -> sink * (unit -> event list)
(** In-memory collection (mutex-guarded); the second component returns
    the events emitted so far, in emission order.  For [--stats]
    summaries and tests. *)

val bounded_memory_sink :
  capacity:int -> sink * (unit -> event list) * (unit -> int)
(** Ring-buffer variant of {!memory_sink} for long-lived processes: at
    most [capacity] events are retained, the oldest overwritten first.
    Returns the sink, a fetch of the retained events (at most [capacity],
    in emission order) and the total number of events ever emitted (so a
    caller can report how many were dropped:
    [total () - List.length (fetch ())]).  Mutex-guarded, domain-safe.
    Raises [Invalid_argument] when [capacity <= 0].  The server's
    [--stats] path records into this sink so an unbounded stream of
    requests cannot grow memory. *)

val tee : sink -> sink -> sink
(** Every event goes to both sinks. *)

(** {1 Recorders} *)

type t

val disabled : t
(** The no-op recorder: {!enabled} is [false]; {!emit} and counters do
    nothing; {!span} runs its thunk without reading the clock. *)

val make : sink -> t

val enabled : t -> bool
(** Hot paths should check this once before building field lists:
    [if Obs.enabled obs then Obs.emit obs ...]. *)

val now : unit -> float
(** Wall-clock seconds ([Unix.gettimeofday]).  The single clock used by
    the engines and the bench harness — never [Sys.time], whose CPU
    semantics sums over domains and hides parallel speedups. *)

val emit : t -> ev:string -> (string * value) list -> unit
(** Emit one event (no-op when disabled). *)

val span : t -> name:string -> ?fields:(string * value) list -> (unit -> 'a) -> 'a
(** [span t ~name f] runs [f] and emits an event [ev = "span"] with
    [name] and the elapsed wall-clock time as ["dt_s"].  When disabled,
    [f] runs directly. *)

(** {1 Counters}

    Named monotonic tallies, cheap enough for per-run (not per-eval)
    granularity; engines accumulate plain [int] refs in their hot loops
    and convert to a counter set once at the end of a run. *)

module Counters : sig
  type t

  val create : unit -> t
  val add : t -> string -> int -> unit
  val incr : t -> string -> unit

  val get : t -> string -> int
  (** 0 when the counter was never touched. *)

  val merge_into : dst:t -> t -> unit
  (** Add every counter of the source into [dst] (per-domain tallies
      into a run total). *)

  val to_list : t -> (string * int) list
  (** Sorted by name. *)

  val fields : t -> (string * value) list
  (** The counters as event fields, sorted by name. *)
end

val emit_counters : t -> ev:string -> ?fields:(string * value) list -> Counters.t -> unit
(** Emit one event carrying [fields] followed by every counter. *)
