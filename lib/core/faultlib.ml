open Dynmos_expr
open Dynmos_cell

(* Fault library generation (the paper's Section 5).

   For a cell, every physical fault is mapped through [Fault_map] and the
   combinational results are collapsed into fault-equivalence classes —
   two faults are equivalent iff their faulty functions are semantically
   equal.  Each class stores its function in minimum disjunctive form, so
   the generated library reproduces the paper's Fig. 9 table verbatim.
   Non-combinational effects (delay, the CMOS-1 redundancy, static-CMOS
   sequential/contention cases) are collected separately: they are exactly
   the faults the paper says need maximum-speed testing or cannot be
   modelled at the logic level. *)

type effect =
  | Function of { sop : Minimize.sop; text : string; expr : Expr.t }
  | Delay_fault of { observed_as : string option; factor : float }
  | Sequential_fault of { retain_when : string }
  | Contention_fault of { fight_when : string; resolves_to : string; factor : float }

type entry = {
  class_id : int;
  members : (Fault.physical * string) list;  (* fault and its display label *)
  effect : effect;
  detectable : bool;
}

type t = {
  cell : Cell.t;
  vars : string array;
  fault_free_text : string;
  fault_free_table : Truth_table.t;
  function_classes : entry list;
  special_classes : entry list;
  n_faults : int;
}

let minimize_text ~vars expr =
  let sop = Minimize.of_table (Truth_table.of_expr ~vars expr) in
  (sop, Minimize.to_string ~vars sop)

let generate ?electrical cell =
  let vars = Cell.input_vars cell in
  let fault_free_table = Cell.logic_table cell in
  let ff_sop = Minimize.of_table fault_free_table in
  let fault_free_text = Minimize.to_string ~vars ff_sop in
  let faults = Fault.enumerate cell in
  (* Group combinational faults by the canonical text of their minimized
     faulty function; first-occurrence order yields the paper's class
     numbering. *)
  let order = ref [] in
  let groups : (string, (Fault.physical * string) list ref) Hashtbl.t = Hashtbl.create 16 in
  let specials = ref [] in
  List.iter
    (fun f ->
      let lbl = Fault.label cell f in
      match Fault_map.map ?electrical cell f with
      | Fault_map.Combinational e ->
          let _, text = minimize_text ~vars e in
          (match Hashtbl.find_opt groups text with
          | Some members -> members := (f, lbl) :: !members
          | None ->
              Hashtbl.add groups text (ref [ (f, lbl) ]);
              order := text :: !order)
      | Fault_map.Delay { observed_as; factor } ->
          let observed_as =
            Option.map (fun e -> snd (minimize_text ~vars e)) observed_as
          in
          specials := ((f, lbl), `Delay (observed_as, factor)) :: !specials
      | Fault_map.Sequential { retain_when } ->
          let _, text = minimize_text ~vars retain_when in
          specials := ((f, lbl), `Sequential text) :: !specials
      | Fault_map.Contention { fight_when; resolves_to; factor } ->
          let _, fw = minimize_text ~vars fight_when in
          let _, rt = minimize_text ~vars resolves_to in
          specials := ((f, lbl), `Contention (fw, rt, factor)) :: !specials)
    faults;
  let next_id = ref 0 in
  let function_classes =
    List.rev_map
      (fun text ->
        let members = List.rev !(Hashtbl.find groups text) in
        incr next_id;
        let expr =
          match members with
          | (f, lbl) :: _ -> (
              match Fault_map.map ?electrical cell f with
              | Fault_map.Combinational e -> e
              | _ ->
                  invalid_arg
                    (Fmt.str
                       "Faultlib.generate: cell %s: fault %s grouped as combinational \
                        but maps to a non-combinational effect"
                       (Cell.name cell) lbl))
          | [] ->
              invalid_arg
                (Fmt.str "Faultlib.generate: cell %s: empty fault-equivalence class %S"
                   (Cell.name cell) text)
        in
        let sop, _ = minimize_text ~vars expr in
        {
          class_id = !next_id;
          members;
          effect = Function { sop; text; expr };
          detectable = not (String.equal text fault_free_text);
        })
      (List.rev !order)
    |> List.rev
  in
  (* Group the special (non-combinational) effects by identical behaviour
     as well. *)
  let special_classes =
    let collapsed = Hashtbl.create 8 in
    let sp_order = ref [] in
    List.iter
      (fun ((f, lbl), eff) ->
        let key =
          match eff with
          | `Delay (obs, factor) -> Fmt.str "delay:%a:%f" Fmt.(option string) obs factor
          | `Sequential r -> "seq:" ^ r
          | `Contention (fw, rt, factor) -> Fmt.str "cont:%s:%s:%f" fw rt factor
        in
        match Hashtbl.find_opt collapsed key with
        | Some (members, _) -> members := (f, lbl) :: !members
        | None ->
            Hashtbl.add collapsed key (ref [ (f, lbl) ], eff);
            sp_order := key :: !sp_order)
      (List.rev !specials);
    List.rev_map
      (fun key ->
        let members, eff = Hashtbl.find collapsed key in
        incr next_id;
        let effect =
          match eff with
          | `Delay (observed_as, factor) -> Delay_fault { observed_as; factor }
          | `Sequential retain_when -> Sequential_fault { retain_when }
          | `Contention (fight_when, resolves_to, factor) ->
              Contention_fault { fight_when; resolves_to; factor }
        in
        let detectable =
          match effect with
          | Delay_fault { observed_as = None; _ } -> false (* CMOS-1: possibly undetectable *)
          | _ -> true
        in
        { class_id = !next_id; members = List.rev !members; effect; detectable })
      (List.rev !sp_order)
    |> List.rev
  in
  {
    cell;
    vars;
    fault_free_text;
    fault_free_table;
    function_classes;
    special_classes;
    n_faults = List.length faults;
  }

let entries t = t.function_classes @ t.special_classes

let n_classes t = List.length (entries t)

let lookup t fault =
  List.find_opt
    (fun e -> List.exists (fun (f, _) -> Fault.equal f fault) e.members)
    (entries t)

let detectable_function_classes t = List.filter (fun e -> e.detectable) t.function_classes

(* Truth tables of the fault-free function and of every detectable function
   class — the form fault simulation consumes. *)
let tables t =
  List.filter_map
    (fun e ->
      match e.effect with
      | Function { expr; _ } when e.detectable ->
          Some (e.class_id, Truth_table.of_expr ~vars:t.vars expr)
      | Function _ | Delay_fault _ | Sequential_fault _ | Contention_fault _ -> None)
    t.function_classes

let members_text e = String.concat ", " (List.map snd e.members)

let pp_table ppf t =
  Fmt.pf ppf "Cell %s (%a), fault-free function: %s = %s@."
    (Cell.name t.cell)
    Technology.pp (Cell.technology t.cell)
    (Cell.output t.cell) t.fault_free_text;
  Fmt.pf ppf "%-6s %-28s %s@." "Class" "Fault" "Faulty function";
  List.iter
    (fun e ->
      match e.effect with
      | Function { text; _ } ->
          Fmt.pf ppf "%-6d %-28s %s = %s%s@." e.class_id (members_text e)
            (Cell.output t.cell) text
            (if e.detectable then "" else "   (undetectable: equals fault-free)")
      | _ -> ())
    t.function_classes;
  List.iter
    (fun e ->
      match e.effect with
      | Delay_fault { observed_as; factor } ->
          Fmt.pf ppf "%-6d %-28s delay x%.1f%s@." e.class_id (members_text e) factor
            (match observed_as with
            | Some f -> Fmt.str ", seen as %s = %s at max speed" (Cell.output t.cell) f
            | None -> ", possibly undetectable (redundant for timing)")
      | Sequential_fault { retain_when } ->
          Fmt.pf ppf "%-6d %-28s SEQUENTIAL: retains state when %s@." e.class_id
            (members_text e) retain_when
      | Contention_fault { fight_when; resolves_to; factor } ->
          Fmt.pf ppf "%-6d %-28s contention when %s, resolves to %s (delay x%.1f)@."
            e.class_id (members_text e) fight_when resolves_to factor
      | Function _ -> ())
    t.special_classes

(* --- Library emission -------------------------------------------------
   The paper: "The internal representation of a library is a PASCAL
   program performing the fault free and the faulty functions."  We emit
   both Pascal (fidelity) and OCaml (practicality). *)

let sop_to_infix ~and_op ~or_op ~not_op ~vars sop =
  match sop with
  | [] -> "false"
  | _ when List.exists (fun c -> Cube.n_literals c = 0) sop -> "true"
  | _ ->
      String.concat (" " ^ or_op ^ " ")
        (List.map
           (fun c ->
             let lits =
               List.map
                 (fun (i, pos) -> if pos then vars.(i) else not_op ^ " " ^ vars.(i))
                 (Cube.literals c)
             in
             match lits with
             | [ l ] -> l
             | ls -> "(" ^ String.concat (" " ^ and_op ^ " ") ls ^ ")")
           sop)

let pascal_function ~vars ~name sop =
  let params = String.concat ", " (Array.to_list vars) in
  let body =
    match sop with
    | [] -> "false"
    | _ when List.exists (fun c -> Cube.n_literals c = 0) sop -> "true"
    | _ ->
        String.concat " or "
          (List.map
             (fun c ->
               let lits =
                 List.map
                   (fun (i, pos) -> if pos then vars.(i) else "not " ^ vars.(i))
                   (Cube.literals c)
               in
               "(" ^ String.concat " and " lits ^ ")")
             sop)
  in
  Fmt.str "function %s(%s : boolean) : boolean;@.begin@.  %s := %s@.end;@." name params name body

let to_pascal t =
  let buf = Buffer.create 1024 in
  let add s = Buffer.add_string buf s in
  add (Fmt.str "{ Fault library for cell %s (%s), generated automatically. }\n"
         (Cell.name t.cell)
         (Technology.to_string (Cell.technology t.cell)));
  let ff_sop = Minimize.of_table t.fault_free_table in
  add (pascal_function ~vars:t.vars ~name:(Cell.name t.cell ^ "_good") ff_sop);
  List.iter
    (fun e ->
      match e.effect with
      | Function { sop; _ } ->
          add (Fmt.str "{ class %d: %s }\n" e.class_id (members_text e));
          add (pascal_function ~vars:t.vars ~name:(Fmt.str "%s_fault_%d" (Cell.name t.cell) e.class_id) sop)
      | _ -> ())
    t.function_classes;
  Buffer.contents buf

let to_ocaml t =
  let buf = Buffer.create 1024 in
  let add s = Buffer.add_string buf s in
  let vars = t.vars in
  let params = String.concat " " (Array.to_list vars) in
  let fn name sop =
    add
      (Fmt.str "let %s %s = %s\n" name params
         (sop_to_infix ~and_op:"&&" ~or_op:"||" ~not_op:"not" ~vars sop))
  in
  add (Fmt.str "(* Fault library for cell %s (%s), generated automatically. *)\n"
         (Cell.name t.cell)
         (Technology.to_string (Cell.technology t.cell)));
  fn (Cell.name t.cell ^ "_good") (Minimize.of_table t.fault_free_table);
  List.iter
    (fun e ->
      match e.effect with
      | Function { sop; _ } ->
          add (Fmt.str "(* class %d: %s *)\n" e.class_id (members_text e));
          fn (Fmt.str "%s_fault_%d" (Cell.name t.cell) e.class_id) sop
      | _ -> ())
    t.function_classes;
  Buffer.contents buf
