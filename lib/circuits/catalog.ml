open Dynmos_cell
open Dynmos_netlist

(* The named benchmark catalog.  Lived in the CLI until the serve loop
   needed the same name -> netlist mapping; constructors stay lazy so
   listing names never builds a circuit. *)

let builtin : (string * (unit -> Netlist.t)) list =
  [
    ("fig9", fun () -> Generators.fig9_network ());
    ("fig5", fun () -> Generators.fig5_network ());
    ("carry8", fun () -> Generators.carry_chain ~technology:Technology.Domino_cmos 8);
    ("carry16", fun () -> Generators.carry_chain ~technology:Technology.Domino_cmos 16);
    ("c17-static", fun () -> Generators.c17 ~style:`Static ());
    ("c17-domino", fun () -> Generators.c17 ~style:`Domino ());
    ("adder3-domino", fun () -> Generators.ripple_adder ~style:`Domino 3);
    ("parity6-domino", fun () -> Generators.parity ~style:`Domino 6);
    ("parity6-static", fun () -> Generators.parity ~style:`Static 6);
    ("decoder3-domino", fun () -> Generators.decoder ~style:`Domino 3);
    ("mux3-domino", fun () -> Generators.mux_tree ~style:`Domino 3);
    ("wideand12", fun () -> Generators.wide_and ~technology:Technology.Domino_cmos 12);
    ("rand20", fun () ->
        Generators.random_monotone ~seed:1 ~n_inputs:8 ~n_gates:20
          ~technology:Technology.Domino_cmos ());
    (* Same construction as the bench suite's rand60 — big enough that a
       checkpoint/kill/resume cycle has something to interrupt. *)
    ("rand60", fun () ->
        Generators.random_monotone ~seed:7 ~n_inputs:12 ~n_gates:60
          ~technology:Technology.Domino_cmos ());
    (* Layered thousand/ten-thousand-gate networks: the scale where
       memory layout dominates — the PPSFP benchmark workloads. *)
    ("rand1k", fun () ->
        Generators.random_layered ~seed:11 ~n_inputs:32 ~width:100 ~depth:10 ~window:8
          ~technology:Technology.Domino_cmos ());
    ("rand10k", fun () ->
        Generators.random_layered ~seed:13 ~n_inputs:64 ~width:500 ~depth:20 ~window:4
          ~technology:Technology.Domino_cmos ());
  ]

let names = List.map fst builtin

let mem name = List.mem_assoc name builtin

let find name =
  match List.assoc_opt name builtin with
  | Some f -> Ok (f ())
  | None ->
      Error
        (Fmt.str "unknown circuit %S; try one of: %s" name (String.concat ", " names))
