open Dynmos_netlist

(** The built-in benchmark catalog: the named circuits every front end
    (CLI subcommands, the serve loop) resolves requests against.
    Constructors are lazy — a catalog entry costs nothing until
    {!find} builds it. *)

val builtin : (string * (unit -> Netlist.t)) list

val names : string list

val mem : string -> bool
(** Name validity without building the circuit — the serve loop's
    admission check. *)

val find : string -> (Netlist.t, string) result
(** Build the named circuit, or a user-facing error naming the known
    circuits. *)
