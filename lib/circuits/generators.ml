open Dynmos_util
open Dynmos_cell
open Dynmos_netlist

(* Benchmark circuit generators.

   The paper's own evaluation circuits are lost; these are the standard
   reconstructable workloads its techniques apply to: AND/OR trees with
   extreme detection-probability skew (the PROTEST optimization showcase),
   carry chains (naturally monotone, domino-friendly), decoders and
   comparators (dual-rail), parity (XOR-heavy, the static-glitch foil),
   the classic c17, and seeded random monotone networks. *)

let pi_name i = Fmt.str "x%d" i

(* --- Trees -------------------------------------------------------------- *)

(* Balanced tree of [fanin]-input gates over [n] primary inputs, in any
   technology.  For inverting technologies levels alternate NAND/NOR...;
   we keep the *function* a pure AND (resp. OR) by using De Morgan pairs,
   which keeps detection-probability analysis clean. *)
let tree ~op ~technology ~fanin ~n ?(name_prefix = "t") () =
  if fanin < 2 then invalid_arg "Generators.tree: fanin >= 2";
  let name = Fmt.str "%s_%s%d_n%d" name_prefix (match op with `And -> "and" | `Or -> "or") fanin n in
  let b = Netlist.Builder.create name in
  let fresh =
    let k = ref 0 in
    fun () ->
      incr k;
      Fmt.str "%s%d" name_prefix !k
  in
  let pis = List.init n pi_name in
  List.iter (fun p -> ignore (Netlist.Builder.input b p)) pis;
  let inverting = Technology.inverts_transmission technology in
  let inv = if inverting then Some (Stdcells.inv technology) else None in
  let cell k = function
    | `And -> if inverting then Stdcells.nand k technology else Stdcells.and_gate k technology
    | `Or -> if inverting then Stdcells.nor k technology else Stdcells.or_gate k technology
  in
  let rec reduce nets =
    match nets with
    | [ x ] -> x
    | _ ->
        let rec chunk acc cur = function
          | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
          | x :: rest ->
              if List.length cur = fanin - 1 then chunk (List.rev (x :: cur) :: acc) [] rest
              else chunk acc (x :: cur) rest
        in
        let groups = chunk [] [] nets in
        let next =
          List.map
            (fun group ->
              match group with
              | [ single ] -> single
              | _ ->
                  let k = List.length group in
                  let out = Netlist.Builder.add b (cell k op) ~inputs:group ~output:(fresh ()) in
                  if inverting then
                    Netlist.Builder.add b (Option.get inv) ~inputs:[ out ] ~output:(fresh ())
                  else out)
            groups
        in
        reduce next
  in
  let root = reduce pis in
  Netlist.Builder.output b root;
  Netlist.Builder.finish b

let and_tree ?(fanin = 2) ~technology n = tree ~op:`And ~technology ~fanin ~n ()
let or_tree ?(fanin = 2) ~technology n = tree ~op:`Or ~technology ~fanin ~n ()

(* --- Carry chain --------------------------------------------------------
   c_{i+1} = g_i + p_i * c_i: monotone, single-rail domino-legal, and the
   classic example of a long sensitized path for delay testing. *)
let carry_chain ~technology n =
  let b = Netlist.Builder.create (Fmt.str "carry%d" n) in
  let ao = Stdcells.ao ~name:(Fmt.str "carrycell_%s" (Technology.to_string technology)) ~groups:[ 1; 2 ] technology in
  let c0 = Netlist.Builder.input b "c0" in
  let gs = List.init n (fun i -> Netlist.Builder.input b (Fmt.str "g%d" i)) in
  let ps = List.init n (fun i -> Netlist.Builder.input b (Fmt.str "p%d" i)) in
  let carry =
    List.fold_left2
      (fun c (i, g) p ->
        ignore i;
        Netlist.Builder.add b ao ~inputs:[ g; p; c ] ~output:(Fmt.str "c%d_out" (i + 1)))
      c0
      (List.mapi (fun i g -> (i, g)) gs)
      ps
  in
  Netlist.Builder.output b carry;
  Netlist.Builder.finish b

(* --- Boolnet-based generators ------------------------------------------ *)

let parity_boolnet n =
  let b = Boolnet.Build.create () in
  let ins = List.init n (fun i -> Boolnet.Build.input b (pi_name i)) in
  let root =
    match ins with
    | [] -> invalid_arg "parity: n >= 1"
    | x :: rest -> List.fold_left (fun acc y -> Boolnet.Build.xor_ b acc y) x rest
  in
  Boolnet.Build.output b "parity" root;
  Boolnet.Build.finish b

let ripple_adder_boolnet n =
  let b = Boolnet.Build.create () in
  let xs = List.init n (fun i -> Boolnet.Build.input b (Fmt.str "a%d" i)) in
  let ys = List.init n (fun i -> Boolnet.Build.input b (Fmt.str "b%d" i)) in
  let cin = Boolnet.Build.input b "cin" in
  let carry = ref cin in
  List.iteri
    (fun i (x, y) ->
      let axb = Boolnet.Build.xor_ b x y in
      let sum = Boolnet.Build.xor_ b axb !carry in
      let c1 = Boolnet.Build.land_ b [ x; y ] in
      let c2 = Boolnet.Build.land_ b [ axb; !carry ] in
      carry := Boolnet.Build.lor_ b [ c1; c2 ];
      Boolnet.Build.output b (Fmt.str "s%d" i) sum)
    (List.combine xs ys);
  Boolnet.Build.output b "cout" !carry;
  Boolnet.Build.finish b

let decoder_boolnet n =
  let b = Boolnet.Build.create () in
  let ins = Array.of_list (List.init n (fun i -> Boolnet.Build.input b (pi_name i))) in
  let negs = Array.map (fun i -> Boolnet.Build.not_ b i) ins in
  for row = 0 to (1 lsl n) - 1 do
    let lits =
      List.init n (fun i -> if (row lsr i) land 1 = 1 then ins.(i) else negs.(i))
    in
    Boolnet.Build.output b (Fmt.str "d%d" row) (Boolnet.Build.land_ b lits)
  done;
  Boolnet.Build.finish b

let equality_boolnet n =
  let b = Boolnet.Build.create () in
  let xs = List.init n (fun i -> Boolnet.Build.input b (Fmt.str "a%d" i)) in
  let ys = List.init n (fun i -> Boolnet.Build.input b (Fmt.str "b%d" i)) in
  let eqs =
    List.map2 (fun x y -> Boolnet.Build.not_ b (Boolnet.Build.xor_ b x y)) xs ys
  in
  Boolnet.Build.output b "eq" (Boolnet.Build.land_ b eqs);
  Boolnet.Build.finish b

(* The ISCAS-85 c17 (6 NAND2 gates, 5 inputs, 2 outputs). *)
let c17_boolnet () =
  let b = Boolnet.Build.create () in
  let nand2 x y = Boolnet.Build.not_ b (Boolnet.Build.land_ b [ x; y ]) in
  let i1 = Boolnet.Build.input b "G1" in
  let i2 = Boolnet.Build.input b "G2" in
  let i3 = Boolnet.Build.input b "G3" in
  let i4 = Boolnet.Build.input b "G4" in
  let i5 = Boolnet.Build.input b "G5" in
  let g6 = nand2 i1 i3 in
  let g7 = nand2 i3 i4 in
  let g8 = nand2 i2 g7 in
  let g9 = nand2 g7 i5 in
  let g10 = nand2 g6 g8 in
  let g11 = nand2 g8 g9 in
  Boolnet.Build.output b "G10" g10;
  Boolnet.Build.output b "G11" g11;
  Boolnet.Build.finish b

let mux_tree_boolnet k =
  (* 2^k data inputs, k selects. *)
  let b = Boolnet.Build.create () in
  let data = Array.of_list (List.init (1 lsl k) (fun i -> Boolnet.Build.input b (Fmt.str "d%d" i))) in
  let sels = Array.of_list (List.init k (fun i -> Boolnet.Build.input b (Fmt.str "s%d" i))) in
  let rec level nodes s =
    if s >= k then nodes
    else
      let sel = sels.(s) in
      let nsel = Boolnet.Build.not_ b sel in
      let next =
        Array.init
          (Array.length nodes / 2)
          (fun i ->
            let lo = nodes.(2 * i) and hi = nodes.((2 * i) + 1) in
            Boolnet.Build.lor_ b
              [ Boolnet.Build.land_ b [ lo; nsel ]; Boolnet.Build.land_ b [ hi; sel ] ])
      in
      level next (s + 1)
  in
  let out = (level data 0).(0) in
  Boolnet.Build.output b "y" out;
  Boolnet.Build.finish b

(* --- Random monotone domino networks ------------------------------------ *)

let random_monotone ?(seed = 42) ~n_inputs ~n_gates ~technology () =
  if Technology.inverts_transmission technology then
    invalid_arg "random_monotone: transmission-preserving technologies only";
  let prng = Prng.create seed in
  let b = Netlist.Builder.create (Fmt.str "rand_s%d_g%d" seed n_gates) in
  let pis = List.init n_inputs pi_name in
  List.iter (fun p -> ignore (Netlist.Builder.input b p)) pis;
  let nets = ref (Array.of_list pis) in
  let used = Hashtbl.create 64 in
  for g = 1 to n_gates do
    let k = 2 + Prng.int prng 2 in
    let pool = !nets in
    let rec pick acc remaining =
      if remaining = 0 then acc
      else
        let cand = Prng.choose prng pool in
        if List.mem cand acc then pick acc remaining else pick (cand :: acc) (remaining - 1)
    in
    let ins = pick [] (min k (Array.length pool)) in
    let k = List.length ins in
    let cell =
      if Prng.bool prng then Stdcells.and_gate k technology else Stdcells.or_gate k technology
    in
    let out = Netlist.Builder.add b cell ~inputs:ins ~output:(Fmt.str "r%d" g) in
    List.iter (fun n -> Hashtbl.replace used n ()) ins;
    nets := Array.append !nets [| out |]
  done;
  (* Every net nobody consumes becomes a primary output. *)
  Array.iter
    (fun n -> if not (Hashtbl.mem used n) && not (List.mem n pis) then Netlist.Builder.output b n)
    !nets;
  Netlist.Builder.finish b

(* Layered random monotone networks with windowed connectivity: [depth]
   layers of [width] AND/OR gates, each gate reading 2-3 nets from the
   previous layer within +/-[window] of its own (scaled) position.  The
   window bounds how fast fanout cones widen (~2*window gates per
   layer), so thousand-to-ten-thousand-gate circuits keep compile-time
   cone tables linear-ish instead of quadratic — the scale the PPSFP
   memory-layout benchmarks need.  [random_monotone]'s uniform
   connectivity gives near-whole-circuit cones past a few hundred
   gates. *)
let random_layered ?(seed = 42) ~n_inputs ~width ~depth ?(window = 8) ~technology () =
  if Technology.inverts_transmission technology then
    invalid_arg "random_layered: transmission-preserving technologies only";
  if n_inputs < 2 then invalid_arg "random_layered: n_inputs >= 2";
  if width < 2 then invalid_arg "random_layered: width >= 2";
  if depth < 1 then invalid_arg "random_layered: depth >= 1";
  if window < 1 then invalid_arg "random_layered: window >= 1";
  let prng = Prng.create seed in
  let b = Netlist.Builder.create (Fmt.str "randl_s%d_w%dx%d" seed width depth) in
  let pis = List.init n_inputs pi_name in
  List.iter (fun p -> ignore (Netlist.Builder.input b p)) pis;
  let used = Hashtbl.create 64 in
  let gate_nets = ref [] in
  let prev = ref (Array.of_list pis) in
  let gid = ref 0 in
  for _d = 1 to depth do
    let pool = !prev in
    let pw = Array.length pool in
    let layer =
      Array.init width (fun j ->
          let center = j * pw / width in
          let lo = max 0 (center - window) and hi = min (pw - 1) (center + window) in
          let span = hi - lo + 1 in
          let k = min span (2 + Prng.int prng 2) in
          let rec pick acc remaining =
            if remaining = 0 then acc
            else
              let cand = pool.(lo + Prng.int prng span) in
              if List.mem cand acc then pick acc remaining
              else pick (cand :: acc) (remaining - 1)
          in
          let ins = pick [] k in
          let k = List.length ins in
          let cell =
            if Prng.bool prng then Stdcells.and_gate k technology
            else Stdcells.or_gate k technology
          in
          incr gid;
          let out = Netlist.Builder.add b cell ~inputs:ins ~output:(Fmt.str "l%d" !gid) in
          List.iter (fun n -> Hashtbl.replace used n ()) ins;
          gate_nets := out :: !gate_nets;
          out)
    in
    prev := layer
  done;
  (* Every gate net nobody consumes becomes a primary output (at least
     the whole final layer). *)
  List.iter
    (fun n -> if not (Hashtbl.mem used n) then Netlist.Builder.output b n)
    (List.rev !gate_nets);
  Netlist.Builder.finish b

(* --- Single paper gates as 1-gate networks ------------------------------ *)

let single_cell cell =
  let b = Netlist.Builder.create ("single_" ^ Cell.name cell) in
  List.iter (fun i -> ignore (Netlist.Builder.input b i)) (Cell.inputs cell);
  let out = Netlist.Builder.add b cell ~inputs:(Cell.inputs cell) ~output:(Cell.output cell) in
  Netlist.Builder.output b out;
  Netlist.Builder.finish b

let fig9_network () = single_cell Stdcells.fig9

(* The Fig. 5 example: a two-level domino network z1 = (i1+i2)*i3. *)
let fig5_network () =
  let b = Netlist.Builder.create "fig5" in
  let i1 = Netlist.Builder.input b "i1" in
  let i2 = Netlist.Builder.input b "i2" in
  let i3 = Netlist.Builder.input b "i3" in
  let or2 = Stdcells.or_gate 2 Technology.Domino_cmos in
  let and2 = Stdcells.and_gate 2 Technology.Domino_cmos in
  let w = Netlist.Builder.add b or2 ~inputs:[ i1; i2 ] ~output:"zint" in
  let z = Netlist.Builder.add b and2 ~inputs:[ w; i3 ] ~output:"z1" in
  Netlist.Builder.output b z;
  Netlist.Builder.finish b

(* Wide AND in a given technology: the detection-probability pathology
   (output s-a-0 needs the all-ones vector) used by the PROTEST
   optimization experiment. *)
let wide_and ~technology n = and_tree ~fanin:4 ~technology n

let parity ~style n =
  let bn = parity_boolnet n in
  match style with
  | `Static -> Boolnet.to_static ~name:(Fmt.str "parity%d_static" n) bn
  | `Domino -> Boolnet.to_domino_dual_rail ~name:(Fmt.str "parity%d_domino" n) bn

let ripple_adder ~style n =
  let bn = ripple_adder_boolnet n in
  match style with
  | `Static -> Boolnet.to_static ~name:(Fmt.str "adder%d_static" n) bn
  | `Domino -> Boolnet.to_domino_dual_rail ~name:(Fmt.str "adder%d_domino" n) bn

let decoder ~style n =
  let bn = decoder_boolnet n in
  match style with
  | `Static -> Boolnet.to_static ~name:(Fmt.str "dec%d_static" n) bn
  | `Domino -> Boolnet.to_domino_dual_rail ~name:(Fmt.str "dec%d_domino" n) bn

let equality ~style n =
  let bn = equality_boolnet n in
  match style with
  | `Static -> Boolnet.to_static ~name:(Fmt.str "eq%d_static" n) bn
  | `Domino -> Boolnet.to_domino_dual_rail ~name:(Fmt.str "eq%d_domino" n) bn

let c17 ~style () =
  let bn = c17_boolnet () in
  match style with
  | `Static -> Boolnet.to_static ~name:"c17_static" bn
  | `Domino -> Boolnet.to_domino_dual_rail ~name:"c17_domino" bn

let mux_tree ~style k =
  let bn = mux_tree_boolnet k in
  match style with
  | `Static -> Boolnet.to_static ~name:(Fmt.str "mux%d_static" k) bn
  | `Domino -> Boolnet.to_domino_dual_rail ~name:(Fmt.str "mux%d_domino" k) bn
