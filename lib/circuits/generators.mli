open Dynmos_cell
open Dynmos_netlist

(** Benchmark circuit generators: reconstructable workloads for the
    paper's techniques (the original evaluation circuits are lost). *)

val tree :
  op:[ `And | `Or ] ->
  technology:Technology.t ->
  fanin:int ->
  n:int ->
  ?name_prefix:string ->
  unit ->
  Netlist.t
(** Balanced gate tree computing an [n]-ary AND/OR (De Morgan pairs keep
    the global function pure for inverting technologies). *)

val and_tree : ?fanin:int -> technology:Technology.t -> int -> Netlist.t
val or_tree : ?fanin:int -> technology:Technology.t -> int -> Netlist.t

val carry_chain : technology:Technology.t -> int -> Netlist.t
(** Manchester-style carry chain [c_{i+1} = g_i + p_i*c_i]: monotone,
    domino-legal, and the classic long sensitizable path. *)

val parity_boolnet : int -> Boolnet.t
val ripple_adder_boolnet : int -> Boolnet.t
val decoder_boolnet : int -> Boolnet.t
val equality_boolnet : int -> Boolnet.t
val c17_boolnet : unit -> Boolnet.t
val mux_tree_boolnet : int -> Boolnet.t

val random_monotone :
  ?seed:int -> n_inputs:int -> n_gates:int -> technology:Technology.t -> unit -> Netlist.t
(** Seeded random AND/OR network; unconsumed nets become primary outputs. *)

val random_layered :
  ?seed:int ->
  n_inputs:int ->
  width:int ->
  depth:int ->
  ?window:int ->
  technology:Technology.t ->
  unit ->
  Netlist.t
(** Seeded layered random AND/OR network: [depth] layers of [width]
    gates, each reading 2-3 nets from the previous layer within
    +/-[window] (default 8) of its scaled position; unconsumed gate
    nets become primary outputs.  The window bounds fanout-cone growth
    to ~2*[window] gates per layer, keeping compile-time cone tables
    tractable at the thousand-to-ten-thousand-gate scale
    ({!random_monotone}'s uniform connectivity does not). *)

val single_cell : Cell.t -> Netlist.t
(** Wrap one cell as a one-gate network. *)

val fig9_network : unit -> Netlist.t
val fig5_network : unit -> Netlist.t
(** The paper's Fig. 5 two-level domino example [z1 = (i1+i2)*i3]. *)

val wide_and : technology:Technology.t -> int -> Netlist.t
(** Wide AND (fan-in-4 tree): the detection-probability pathology used by
    the PROTEST input-probability-optimization experiment. *)

val parity : style:[ `Static | `Domino ] -> int -> Netlist.t
val ripple_adder : style:[ `Static | `Domino ] -> int -> Netlist.t
val decoder : style:[ `Static | `Domino ] -> int -> Netlist.t
val equality : style:[ `Static | `Domino ] -> int -> Netlist.t
val c17 : style:[ `Static | `Domino ] -> unit -> Netlist.t
val mux_tree : style:[ `Static | `Domino ] -> int -> Netlist.t
