(** Deterministic chaos injection for the infrastructure's own fault
    handling.

    The paper's premise is that realistic defects must be injected and
    simulated, not assumed away.  This module applies the same discipline
    to the simulator's infrastructure: every recovery path in the stack
    (supervised retry, executor respawn, checkpoint atomic write, client
    IO cancellation, cache insertion) carries a named {e injection point},
    and a registry decides — deterministically, from one seed — whether an
    invocation of that point fails, stalls, or proceeds.

    Determinism contract: each armed point draws from its own PRNG stream,
    seeded from [(campaign seed, point)] alone.  The Nth tap of a point
    therefore has the same verdict regardless of how taps of {e other}
    points interleave with it, so a failure schedule observed once is
    replayable from the spec string (see {!of_spec}) — the same guarantee
    the engines give for fault universes.

    Cost contract: a disabled registry costs one mutable-flag branch per
    tap; an armed registry costs one array-slot load for points with no
    action configured.  Same bar as [Dynmos_obs.Obs]. *)

type point =
  | Sched_spawn  (** Executor-domain spawn in [Parallel_exec.Scheduler]. *)
  | Sched_task  (** Task execution on a scheduler executor domain. *)
  | Exec_job  (** Supervised per-site evaluation in a campaign kernel. *)
  | Ckpt_write  (** Checkpoint body write (torn = truncated tmp file). *)
  | Ckpt_rename  (** Atomic publish rename of a checkpoint. *)
  | Ckpt_fsync  (** Durability fsync before rename (fail = skip). *)
  | Serve_write  (** Server response write to a client. *)
  | Serve_read  (** Server request read from a client (delay = stall). *)
  | Cache_insert  (** Result-cache insertion after a completed job. *)
  | Journal_append  (** Write-ahead journal record append (torn = half a
                        record, no newline — the classic torn tail). *)
  | Journal_fsync  (** Journal durability fsync after append (fail = skip). *)
  | Journal_compact  (** Journal segment compaction (torn = truncated
                         replacement segment left as a stale tmp). *)
  | Cache_persist  (** Result-cache entry persist to the data dir (torn =
                       a corrupt entry file the loader must quarantine). *)

val points : point list
(** Every injection point, in a fixed order. *)

val point_name : point -> string
(** Stable spec-grammar name, e.g. [Ckpt_write] is ["ckpt.write"]. *)

val point_of_name : string -> point option

type action =
  | Fail_once  (** Fail the first tap of this point, pass afterwards. *)
  | Fail_prob of float  (** Fail each tap independently with probability p. *)
  | Delay_ms of int  (** Sleep the given milliseconds, then pass. *)
  | Torn_write  (** Like a failure, but write points first emit a torn
                    (truncated, checksum-invalid) artifact. *)

type verdict = Pass | Fail | Torn
(** [Delay_ms] sleeps inside {!decide} and then reports [Pass]; the delay
    still counts as an injection. *)

type t
(** A chaos registry.  Immutable configuration, mutable counters; safe to
    share across domains (the armed slow path is mutex-protected). *)

val disabled : t
(** The inert registry: every tap passes via the one-branch fast path. *)

val enabled : t -> bool

val create : ?seed:int -> (point * action) list -> t
(** [create ~seed plan] arms the given points.  Default seed 0.  Each
    point's PRNG stream is derived from [seed] and the point identity
    only.  Later bindings for the same point override earlier ones. *)

val of_spec : string -> (t, string) result
(** Parse a spec string:
    [point=action{,point=action}{,seed=N}] where action is one of
    [fail_once | fail_prob:P | delay:MS | torn_write].
    Example: ["sched.task=fail_once,ckpt.write=torn_write,seed=42"].
    The empty string yields {!disabled}. *)

val to_spec : t -> string
(** Canonical spec round-trip; [to_spec disabled = ""]. *)

val seed : t -> int

val decide : t -> point -> verdict
(** Draw this point's next verdict (and sleep, for delay actions). *)

exception Injected of point
(** The exception raised by {!tap} for injected failures — recovery paths
    treat it like any other exception, which is the point. *)

val tap : t -> point -> unit
(** [tap t p] is {!decide} with [Fail] and [Torn] turned into
    [raise (Injected p)].  For call sites with no torn-artifact notion. *)

val injected : t -> int
(** Total injections so far (failed, torn and delayed taps). *)

val counts : t -> (string * int) list
(** Per-point injection counts, armed points only, fixed order. *)

val journal : t -> (string * string) list
(** The injection schedule actually exercised: [(point, verdict)] pairs in
    tap order, where verdict is ["fail"], ["torn"] or ["delay"].  Bounded
    (oldest entries dropped beyond an internal cap); used by replay tests
    to assert two runs saw the identical schedule. *)
