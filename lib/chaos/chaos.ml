(* Deterministic chaos injection.  See chaos.mli for the contracts.

   Layout mirrors lib/obs: one [armed] branch on the fast path, an array
   slot per point so armed-but-unconfigured points stay lock-free, and a
   mutex only around the configured slow path (PRNG draw + counters),
   because the scheduler and server tap from several domains at once. *)

module Prng = Dynmos_util.Prng

type point =
  | Sched_spawn
  | Sched_task
  | Exec_job
  | Ckpt_write
  | Ckpt_rename
  | Ckpt_fsync
  | Serve_write
  | Serve_read
  | Cache_insert
  | Journal_append
  | Journal_fsync
  | Journal_compact
  | Cache_persist

let points =
  [
    Sched_spawn;
    Sched_task;
    Exec_job;
    Ckpt_write;
    Ckpt_rename;
    Ckpt_fsync;
    Serve_write;
    Serve_read;
    Cache_insert;
    Journal_append;
    Journal_fsync;
    Journal_compact;
    Cache_persist;
  ]

let tag = function
  | Sched_spawn -> 0
  | Sched_task -> 1
  | Exec_job -> 2
  | Ckpt_write -> 3
  | Ckpt_rename -> 4
  | Ckpt_fsync -> 5
  | Serve_write -> 6
  | Serve_read -> 7
  | Cache_insert -> 8
  | Journal_append -> 9
  | Journal_fsync -> 10
  | Journal_compact -> 11
  | Cache_persist -> 12

let n_points = List.length points

let point_name = function
  | Sched_spawn -> "sched.spawn"
  | Sched_task -> "sched.task"
  | Exec_job -> "exec.job"
  | Ckpt_write -> "ckpt.write"
  | Ckpt_rename -> "ckpt.rename"
  | Ckpt_fsync -> "ckpt.fsync"
  | Serve_write -> "serve.write"
  | Serve_read -> "serve.read"
  | Cache_insert -> "cache.insert"
  | Journal_append -> "journal.append"
  | Journal_fsync -> "journal.fsync"
  | Journal_compact -> "journal.compact"
  | Cache_persist -> "cache.persist"

let point_of_name s = List.find_opt (fun p -> point_name p = s) points

type action = Fail_once | Fail_prob of float | Delay_ms of int | Torn_write

type verdict = Pass | Fail | Torn

type slot = {
  action : action;
  prng : Prng.t;
  mutable fired : bool;  (* Fail_once consumed *)
  mutable injections : int;
}

type t = {
  armed : bool;
  seed : int;
  hot : bool array;           (* indexed by [tag]: is this point configured?
                                 The whole fast path — one load and one
                                 branch — so a tap at an unconfigured point
                                 of an armed registry costs exactly what a
                                 disabled registry costs. *)
  slots : slot option array;  (* indexed by [tag] *)
  mu : Mutex.t;
  mutable total : int;
  journal_q : (string * string) Queue.t;
  mutable journal_dropped : int;
}

let journal_cap = 10_000

let disabled =
  {
    armed = false;
    seed = 0;
    hot = Array.make n_points false;
    slots = [||];
    mu = Mutex.create ();
    total = 0;
    journal_q = Queue.create ();
    journal_dropped = 0;
  }

let enabled t = t.armed

(* Per-point stream derivation: splitmix64-style finalizer over
   (seed, tag) so streams are independent of each other and of any
   engine PRNG seeded from small integers. *)
let point_seed seed p =
  let z = Int64.of_int ((seed * 0x9e3779b9) lxor ((tag p + 1) * 0x85ebca6b)) in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.to_int (Int64.logand (Int64.logxor z (Int64.shift_right_logical z 31)) 0x3fffffffffffffffL)

let create ?(seed = 0) plan =
  match plan with
  | [] -> disabled
  | _ ->
      let slots = Array.make n_points None in
      List.iter
        (fun (p, action) ->
          slots.(tag p) <-
            Some { action; prng = Prng.create (point_seed seed p); fired = false; injections = 0 })
        plan;
      {
        armed = true;
        seed;
        hot = Array.map Option.is_some slots;
        slots;
        mu = Mutex.create ();
        total = 0;
        journal_q = Queue.create ();
        journal_dropped = 0;
      }

let action_spec = function
  | Fail_once -> "fail_once"
  | Fail_prob p -> Printf.sprintf "fail_prob:%g" p
  | Delay_ms ms -> Printf.sprintf "delay:%d" ms
  | Torn_write -> "torn_write"

let to_spec t =
  if not t.armed then ""
  else
    let items =
      List.filter_map
        (fun p ->
          match t.slots.(tag p) with
          | None -> None
          | Some s -> Some (point_name p ^ "=" ^ action_spec s.action))
        points
    in
    String.concat "," (items @ [ Printf.sprintf "seed=%d" t.seed ])

let seed t = t.seed

let parse_action s =
  match String.index_opt s ':' with
  | None -> (
      match s with
      | "fail_once" -> Ok Fail_once
      | "torn_write" -> Ok Torn_write
      | _ -> Error (Printf.sprintf "unknown chaos action %S" s))
  | Some i -> (
      let name = String.sub s 0 i in
      let arg = String.sub s (i + 1) (String.length s - i - 1) in
      match name with
      | "fail_prob" -> (
          match float_of_string_opt arg with
          | Some p when p >= 0.0 && p <= 1.0 -> Ok (Fail_prob p)
          | _ -> Error (Printf.sprintf "fail_prob wants a probability in [0,1], got %S" arg))
      | "delay" -> (
          match int_of_string_opt arg with
          | Some ms when ms >= 0 -> Ok (Delay_ms ms)
          | _ -> Error (Printf.sprintf "delay wants a non-negative millisecond count, got %S" arg))
      | _ -> Error (Printf.sprintf "unknown chaos action %S" s))

let of_spec spec =
  let spec = String.trim spec in
  if spec = "" then Ok disabled
  else
    let items = String.split_on_char ',' spec in
    let rec go seed plan = function
      | [] -> (
          match plan with
          | [] -> Error "chaos spec configures no injection point"
          | _ -> Ok (create ?seed (List.rev plan)))
      | item :: rest -> (
          match String.index_opt item '=' with
          | None -> Error (Printf.sprintf "chaos spec item %S is not point=action or seed=N" item)
          | Some i -> (
              let key = String.trim (String.sub item 0 i) in
              let value = String.trim (String.sub item (i + 1) (String.length item - i - 1)) in
              if key = "seed" then
                match int_of_string_opt value with
                | Some n -> go (Some n) plan rest
                | None -> Error (Printf.sprintf "chaos seed %S is not an integer" value)
              else
                match point_of_name key with
                | None -> Error (Printf.sprintf "unknown chaos injection point %S" key)
                | Some p -> (
                    match parse_action value with
                    | Ok a -> go seed ((p, a) :: plan) rest
                    | Error e -> Error e)))
    in
    go None [] items

exception Injected of point

(* Injected faults surface in user-facing reports (failed-site messages,
   server error responses) via [Printexc.to_string]; name the point
   instead of printing a bare constructor tag. *)
let () =
  Printexc.register_printer (function
    | Injected p -> Some (Printf.sprintf "chaos injection at %s" (point_name p))
    | _ -> None)

let note t p verdict =
  t.total <- t.total + 1;
  if Queue.length t.journal_q >= journal_cap then begin
    ignore (Queue.pop t.journal_q);
    t.journal_dropped <- t.journal_dropped + 1
  end;
  Queue.push (point_name p, verdict) t.journal_q

let decide t p =
  if not t.hot.(tag p) then Pass
  else
    match t.slots.(tag p) with
    | None -> Pass
    | Some s ->
        Mutex.lock t.mu;
        let outcome =
          match s.action with
          | Fail_once ->
              if s.fired then `Pass
              else begin
                s.fired <- true;
                `Fail
              end
          | Fail_prob pr -> if Prng.bernoulli s.prng pr then `Fail else `Pass
          | Delay_ms ms -> if ms > 0 then `Delay ms else `Pass
          | Torn_write ->
              if s.fired then `Pass
              else begin
                s.fired <- true;
                `Torn
              end
        in
        (match outcome with
        | `Pass -> ()
        | `Fail ->
            s.injections <- s.injections + 1;
            note t p "fail"
        | `Torn ->
            s.injections <- s.injections + 1;
            note t p "torn"
        | `Delay _ ->
            s.injections <- s.injections + 1;
            note t p "delay");
        Mutex.unlock t.mu;
        (* Sleep outside the lock so a stalled point can't block taps of
           other points (the determinism contract is per-point). *)
        (match outcome with
        | `Delay ms ->
            Unix.sleepf (float_of_int ms /. 1000.0);
            Pass
        | `Pass -> Pass
        | `Fail -> Fail
        | `Torn -> Torn)

let tap t p = match decide t p with Pass -> () | Fail | Torn -> raise (Injected p)

let injected t =
  if not t.armed then 0
  else begin
    Mutex.lock t.mu;
    let n = t.total in
    Mutex.unlock t.mu;
    n
  end

let counts t =
  if not t.armed then []
  else begin
    Mutex.lock t.mu;
    let cs =
      List.filter_map
        (fun p ->
          match t.slots.(tag p) with
          | None -> None
          | Some s -> Some (point_name p, s.injections))
        points
    in
    Mutex.unlock t.mu;
    cs
  end

let journal t =
  Mutex.lock t.mu;
  let entries = List.of_seq (Queue.to_seq t.journal_q) in
  Mutex.unlock t.mu;
  entries
