open Dynmos_sim

(** PPSFP: the parallel-pattern x parallel-fault kernel.

    A group of [group] fault machines is simulated together against each
    62-pattern word, with all mutable state in a flat (net x lane)
    Bigarray word matrix ({!Compiled.word_matrix}): one cube-cover
    decode per gate is amortized over the whole group and the lane loop
    is unit-stride.  Per group and pattern word the kernel probes each
    machine's own faulty gate against the shared good machine, skips the
    group outright when no machine is activated, and otherwise sweeps
    the group's union fanout cone once ([`Cone]; [`Full] sweeps every
    gate), diffing each lane over the cone's primary-output gates.
    First detections are bit-identical to the bit-parallel engine
    (frozen fixtures and a QCheck differential pin this).

    The kernel is generic over the fault universe: a site is any
    (gate, faulty function) pair, so cell-level fault classes beyond
    stuck-ats plug in unchanged.  {!Faultsim.run_ppsfp} is the public
    wrapper over {!Campaign.run_patterns}. *)

type fsite = {
  sid : int;                (** dense site id (index into the driver's arrays) *)
  gate : int;               (** gate id of the fault site *)
  fn : Compiled.gate_fn;    (** compiled faulty function *)
}

val default_group : int
(** Default fault-group size (16). *)

val kernel :
  ?group:int ->
  ?trace_site:(sid:int -> start:int -> unit) ->
  algo:[ `Full | `Cone ] ->
  Compiled.t ->
  fsite array ->
  bool array array ->
  Kernel.t
(** Build the PPSFP kernel for {!Campaign.run_patterns}.  [sites] must
    be in ascending [sid] = non-decreasing gate order (the order
    {!Faultsim.universe} produces).  [group] is the lane count G of the
    word matrix (raises [Invalid_argument] when < 1): larger groups
    amortize the per-gate decode over more machines but sweep more
    wasted lanes per activation and grow the matrix working set —
    G x n_nets words.  Fault dropping compacts groups between pattern
    units; retired sites are never re-simulated ([trace_site], called
    once per site per pattern unit actually simulated, is the test
    hook pinning that). *)
