(** Campaign outcomes: did a fault-simulation run finish, and if not, why.

    Robust campaigns never throw partial work away: a run stopped by a
    deadline, an evaluation budget, a cooperative interrupt or repeatedly
    crashing fault-site jobs returns [Partial] alongside every detection
    gathered so far, instead of raising. *)

type stop_cause =
  | Deadline     (** the [?deadline] wall-clock limit passed *)
  | Max_evals    (** the [?max_evals] evaluation budget ran out *)
  | Interrupted  (** the [?interrupt] callback asked for a stop *)

type partial = {
  stopped : stop_cause option;
      (** why the sweep stopped early, if it did *)
  failed_sites : (int * string) list;
      (** sites whose evaluation kept raising after bounded retries:
          (site id, exception message).  Their detections are unknown;
          every other site's detections are identical to a clean run. *)
}

type t = Complete | Partial of partial

val is_complete : t -> bool

val make : ?stopped:stop_cause -> ?failed_sites:(int * string) list -> unit -> t
(** [Complete] when nothing stopped early and nothing failed; [Partial]
    otherwise. *)

val stop_cause_name : stop_cause -> string
(** ["deadline"] / ["max_evals"] / ["interrupted"], as used in obs
    events. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val exit_code : t -> int
(** CLI convention: 0 for [Complete], 2 for [Partial]. *)
