(** Campaign checkpoints: versioned, atomically-written progress files
    that let an interrupted fault-simulation campaign (crash, Ctrl-C,
    deadline) resume bit-identically instead of starting over.

    A checkpoint pins the campaign it belongs to with digests of the
    circuit, the fault universe and the pattern set; {!create} refuses to
    resume against mismatched digests.  Files are published with a
    write-to-temporary + [rename] so readers never see a torn file, and
    carry a trailing checksum so truncation is detected at {!load}. *)

exception Error of string
(** Raised on unreadable, corrupted, version-incompatible or
    digest-mismatched checkpoint files.  Never raised for a merely
    missing file at the CLI level — see [Faultsim.resume]. *)

type mode =
  | Patterns
      (** pattern-sweep engines (serial, bit-parallel, deductive,
          concurrent): [units_done] patterns are complete for all sites *)
  | Sites
      (** the site-sweep domains engine: the sites flagged in
          [site_done] are complete for all patterns *)

val mode_name : mode -> string

type state = {
  mode : mode;
  circuit_digest : string;
  universe_digest : string;
  pattern_digest : string;
  n_sites : int;
  n_patterns : int;
  units_done : int;  (** patterns done ([Patterns]) or sites done ([Sites]) *)
  first_detection : int option array;
      (** per-site earliest detecting pattern index, as of the snapshot *)
  site_done : bool array option;
      (** per-site completion bitmap; present iff [mode = Sites] *)
  prng_state : string option;
      (** {!Dynmos_util.Prng.save} token of the campaign generator, for
          diagnostics; resume regenerates patterns from the seed and
          validates them via [pattern_digest] *)
}

val save : ?chaos:Dynmos_chaos.Chaos.t -> string -> state -> unit
(** [save path st] atomically publishes [st] at [path]: temp file, flush,
    [fsync], rotation of the previous file to [path ^ ".bak"], rename,
    checksum trailer.  Raises {!Error} on I/O failure.  [chaos] taps the
    [ckpt.write] / [ckpt.fsync] / [ckpt.rename] injection points. *)

val load : string -> state
(** Parse and validate a checkpoint file.  Raises {!Error} on missing
    file, bad checksum (truncation), unknown version, or malformed
    fields. *)

val load_or_backup : string -> state * bool
(** [load_or_backup path] is [load path], falling back to
    [path ^ ".bak"] when the primary is corrupt or missing (the rotation
    in {!save} leaves a brief no-primary window if the writer dies
    between its two renames).  Returns [(state, used_backup)].  When both
    fail, re-raises the {e primary}'s {!Error}. *)

val cleanup_stale : string -> int
(** Delete [path ^ ".tmp.<pid>"] leftovers from crashed writers and
    return how many were removed.  Call only when no writer for [path]
    can be live (campaign start/resume — {!create} does this itself). *)

(** {1 Controllers}

    The handle engines thread through a run.  It owns the write
    throttling (every [interval] completed units) and the campaign
    digests; all writes are mutex-serialized so the domains engine's
    checkpointing worker uses the same path as single-threaded
    engines. *)

type ctl

val create :
  path:string ->
  interval:int ->
  ?prng_state:string ->
  ?resume:state ->
  ?resumed_from_backup:bool ->
  ?chaos:Dynmos_chaos.Chaos.t ->
  circuit_digest:string ->
  universe_digest:string ->
  pattern_digest:string ->
  n_sites:int ->
  n_patterns:int ->
  unit ->
  ctl
(** Build a controller for this campaign.  When [resume] is given, its
    digests and dimensions must match the fresh campaign's — {!Error}
    otherwise (resuming against a different circuit, universe or pattern
    set would silently corrupt coverage numbers).  Creation also runs
    {!cleanup_stale} for [path].  [chaos] is threaded into every write
    this controller performs. *)

val resume_state : ctl -> state option
(** The validated state passed as [?resume], for engines to preload. *)

val resumed_from_backup : ctl -> bool
(** Whether the resume state was salvaged from the [.bak] rotation
    rather than the primary file (set by the caller that loaded it; a
    durability stat, not a behavior change). *)

val require_mode : ctl -> mode -> engine:string -> unit
(** Fail early ({!Error}) when a resume state was produced by the other
    sweep mode than engine [engine] uses. *)

val tick :
  ctl ->
  mode:mode ->
  units_done:int ->
  first_detection:int option array ->
  ?site_done:bool array ->
  unit ->
  bool
(** Interval-gated write: persists a snapshot iff at least [interval]
    units completed since the last write.  Returns whether a file was
    written.  A failed write is absorbed (counted in {!failed_writes},
    retried at the next interval) — checkpointing trouble never aborts
    the simulation itself.  Thread-safe. *)

val finalize :
  ctl ->
  mode:mode ->
  units_done:int ->
  first_detection:int option array ->
  ?site_done:bool array ->
  unit ->
  unit
(** Unconditional write — called at clean completion, deadline stop and
    interrupt, so the published file always reflects the returned
    summary.  Retries once on failure, then absorbs it (counted in
    {!failed_writes}); the previous [.bak] stays resumable. *)

val interval : ctl -> int
val path : ctl -> string

val writes : ctl -> int
(** Number of files written through this controller (tests and the
    checkpoint-overhead bench read this). *)

val failed_writes : ctl -> int
(** Write attempts absorbed by {!tick}/{!finalize} instead of raised. *)

val stale_cleaned : ctl -> int
(** Stale tmp files removed when this controller was created. *)
