open Dynmos_sim
module Obs = Dynmos_obs.Obs
module Chaos = Dynmos_chaos.Chaos
module Prng = Dynmos_util.Prng

(* Domain-parallel fault-simulation core.

   The fault universe is embarrassingly parallel across fault sites: each
   site's simulation touches only (a) the shared read-only compiled
   netlist and pattern data and (b) its own slot of the result array.  So
   the engine partitions *sites* across domains and leaves the pattern
   loop sequential inside each site — that keeps first-detection
   semantics trivially identical to the serial engine (patterns are
   always scanned in ascending order).

   Scheduling is a hand-rolled chunked work-stealing pool (no Domainslib):
   a single [Atomic.t] cursor over the site array; every domain claims
   blocks of [block] consecutive sites with [fetch_and_add] until the
   cursor passes the end.  Blocks (rather than single sites) amortize the
   atomic op; stealing from a shared cursor (rather than pre-splitting
   ranges) load-balances sites whose faulty cones differ wildly in size.

   Domain count clamping: spawning a domain costs tens of microseconds on
   an idle multicore host and milliseconds on an oversubscribed one, so
   tiny workloads must not pay it.  The effective domain count is clamped
   to (a) the number of jobs — more domains than jobs can only idle — and
   (b) one domain per [min_work_per_domain] gate-evaluations of estimated
   work, so each spawned domain has enough work to amortize its spawn.
   The clamp never changes results (every domain count produces identical
   output); [stats] reports requested vs effective counts and the
   spawn/join cost so the cases where spawn would have dominated are
   visible rather than silently slow.

   Supervision (see [run_supervised]): the pool never lets one bad fault
   site take the campaign down.  Every job evaluation runs under a
   per-job exception handler; a job that raises is requeued with a
   bounded attempt count and re-run in isolation on the calling domain
   after the main sweep, and a job that keeps raising is reported in
   [report.failed_sites] — every *other* site's detections are identical
   to a clean run.  [Domain.spawn] failure degrades gracefully: the
   shared-cursor design means whatever domains did start (down to just
   the calling domain) simply drain the whole queue.  Limits
   ([Limits.gauge]) are polled at block/chunk boundaries and stop the
   sweep cleanly, recording which sites completed.

   Correctness-critical sharing audit (see Compiled):
   - [Compiled.t] is immutable after [compile]; shared read-only.  OK.
   - All mutable evaluation state lives in a [Compiled.scratch] buffer;
     each worker allocates its own and threads it through every call.
   - The result array is written at [job.jid] only, and each jid is
     claimed by exactly one domain: disjoint writes, no tearing (OCaml
     array writes of immediates/pointers are domain-atomic).
   - Pattern words and good-value arrays are computed once, before the
     domains spawn, and only read afterwards.
   - Per-domain stats are written to a private slot of [per_domain] by
     the owning worker and only read after every domain is joined.
   - Supervision state (attempt counts, retry queue, failure list, the
     done bitmap and counter) is guarded by mutexes; [first] slots of
     *done* jobs are published via the progress mutex (marked done only
     under it, after the owning worker's writes), so a progress callback
     snapshotting under that mutex sees consistent (first, done) pairs.
     In-flight jobs' [first] slots may be read stale by a snapshot —
     harmless, because resume only trusts slots marked done. *)

type job = {
  jid : int;            (* slot in the result array *)
  gate_id : int;        (* netlist gate to override *)
  fn : Compiled.gate_fn;  (* compiled faulty function *)
}

type inner = Serial | Bit_parallel

let inner_name = function Serial -> "serial" | Bit_parallel -> "bit_parallel"
let algo_name = function `Full -> "full" | `Cone -> "cone"

let word_bits = 62

type domain_stats = {
  dom : int;
  jobs_claimed : int;
  evals : int;
  evals_saved : int;
  gate_evals : int;
  busy_s : float;
  steal_s : float;
}

type stats = {
  requested_domains : int;
  effective_domains : int;
  n_jobs : int;
  n_patterns : int;
  n_chunks : int;
  inner_used : inner;
  algo_used : [ `Full | `Cone ];
  work_estimate : int;
  prepare_s : float;
  spawn_s : float;
  join_s : float;
  total_s : float;
  per_domain : domain_stats array;
}

type report = {
  stopped : Outcome.stop_cause option;
  failed_sites : (int * string) list;
  sites_done : int;
  done_mask : bool array;
  retries : int;
  spawn_failures : int;
  worker_crashes : int;
  backoff_sleeps : int;
}

(* Exponential backoff with jitter for supervised retries.  An immediate
   retry of a site that crashed on a transient cause (injected chaos, a
   momentarily-full disk, an oversubscribed host) tends to hit the same
   cause again; spacing attempts out exponentially — with jitter so
   simultaneous retriers decorrelate — is the standard cure.  Sleep
   durations never influence results, only wall clock, so the jitter PRNG
   needs no seeding discipline. *)
module Backoff = struct
  type t = { base_s : float; cap_s : float }

  let default = { base_s = 0.001; cap_s = 0.05 }
  let none = { base_s = 0.0; cap_s = 0.0 }
  let make ~base_s ~cap_s = { base_s; cap_s }

  (* Delay before retry [attempt] (1-based): base * 2^(attempt-1), capped,
     then jittered into [d/2, d). *)
  let delay t prng ~attempt =
    if t.base_s <= 0.0 then 0.0
    else
      let d = t.base_s *. float_of_int (1 lsl min 16 (max 0 (attempt - 1))) in
      let d = Float.min d t.cap_s in
      d *. (0.5 +. (0.5 *. Prng.float prng))

  let sleep t prng ~attempt =
    let d = delay t prng ~attempt in
    if d > 0.0 then Unix.sleepf d;
    d
end

let stats_evals s = Array.fold_left (fun acc d -> acc + d.evals) 0 s.per_domain
let stats_evals_saved s = Array.fold_left (fun acc d -> acc + d.evals_saved) 0 s.per_domain
let stats_gate_evals s = Array.fold_left (fun acc d -> acc + d.gate_evals) 0 s.per_domain

let spawn_dominated s =
  let busy = Array.fold_left (fun acc d -> acc +. d.busy_s) 0.0 s.per_domain in
  s.effective_domains > 1 && s.spawn_s +. s.join_s > busy

let pp_stats ppf s =
  Format.fprintf ppf
    "domains: requested %d, effective %d (%d jobs, %d patterns, %s kernel, %s algo, ~%d gate-evals estimated, %d performed)@."
    s.requested_domains s.effective_domains s.n_jobs s.n_patterns (inner_name s.inner_used)
    (algo_name s.algo_used) s.work_estimate (stats_gate_evals s);
  Format.fprintf ppf "prepare %.6f s, spawn %.6f s, join %.6f s, total %.6f s@." s.prepare_s
    s.spawn_s s.join_s s.total_s;
  Array.iter
    (fun d ->
      Format.fprintf ppf
        "  domain %d: %d jobs, %d evals (%d gate-evals), %d saved by dropping, busy %.6f s, steal %.6f s@."
        d.dom d.jobs_claimed d.evals d.gate_evals d.evals_saved d.busy_s d.steal_s)
    s.per_domain;
  if spawn_dominated s then
    Format.fprintf ppf "  note: spawn/join time exceeds total busy time — workload too small for %d domains@."
      s.effective_domains;
  if s.effective_domains < s.requested_domains then
    Format.fprintf ppf "  note: clamped from %d requested domains (jobs or estimated work too small)@."
      s.requested_domains

(* Per-worker evaluation tally, threaded through the inner kernels.
   [t_evals] counts kernel invocations (one per job x chunk/pattern
   attempted — identical between [`Full] and [`Cone], which is what the
   cross-engine reconciliation tests rely on); [t_gate] counts the gate
   evaluations those invocations performed, which is where the cone
   restriction shows up. *)
type tally = { mutable t_evals : int; mutable t_saved : int; mutable t_gate : int }

(* One packed chunk of <= 62 patterns with its fault-free response.
   [nets] is the complete good-machine evaluation (every net, not just
   the POs): the baseline [Compiled.eval_cone_into] starts from. *)
type chunk = {
  start : int;          (* pattern index of bit 0 *)
  mask : int;           (* valid-bit mask (len low bits) *)
  words : int array;    (* packed primary-input words *)
  good : int array;     (* fault-free primary-output words *)
  nets : int array;     (* fault-free words for every net *)
}

let pack_chunks compiled (patterns : bool array array) =
  let n_inputs = Compiled.n_inputs compiled in
  let total = Array.length patterns in
  let n_chunks = (total + word_bits - 1) / word_bits in
  let scratch = Compiled.make_scratch compiled in
  Array.init n_chunks (fun c ->
      let start = c * word_bits in
      let len = min word_bits (total - start) in
      let words = Array.make n_inputs 0 in
      for j = 0 to len - 1 do
        let p = patterns.(start + j) in
        for i = 0 to n_inputs - 1 do
          if p.(i) then words.(i) <- words.(i) lor (1 lsl j)
        done
      done;
      Compiled.eval_words_into compiled ~scratch words;
      {
        start;
        mask = (if len >= word_bits then max_int else (1 lsl len) - 1);
        words;
        good = Compiled.outputs_of_nets compiled scratch;
        nets = Array.copy scratch;
      })

(* Single-pattern chunks (mask = bit 0): the serial inner kernel under
   [`Cone] reuses the bit-parallel cone block runner with these. *)
let pack_single_chunks compiled (patterns : bool array array) =
  let scratch = Compiled.make_scratch compiled in
  Array.mapi
    (fun pi pattern ->
      let words = Array.map (fun b -> if b then 1 else 0) pattern in
      Compiled.eval_words_into compiled ~scratch words;
      {
        start = pi;
        mask = 1;
        words;
        good = Compiled.outputs_of_nets compiled scratch;
        nets = Array.copy scratch;
      })
    patterns

(* Supervision context threaded into the block runners.  [hook] is the
   crash-injection point (identity in production; tests raise from it);
   [crashed] flags jobs that raised in the current pass so block runners
   stop touching them; [record] books a crash (bounded requeue or
   permanent failure); [should_stop]/[spend] poll and feed the limit
   gauge. *)
type sup_ctx = {
  hook : int -> unit;
  crashed : bool array;                 (* per jid *)
  record : int -> int -> exn -> unit;   (* job index, jid, exn *)
  should_stop : unit -> bool;
  spend : int -> unit;                  (* gate evaluations *)
}

(* Earliest detecting pattern of one job, scanning chunks in order.  With
   [drop] the scan stops at the first detecting chunk; without it every
   chunk is still evaluated (mirroring the serial engine's ~drop:false
   workload), but the recorded detection is identical either way. *)
let run_job_bit_parallel ~drop compiled chunks po scratch tally job =
  let n_po = Array.length po in
  let n_gates = Compiled.n_gates compiled in
  let found = ref None in
  let c = ref 0 in
  let n_chunks = Array.length chunks in
  while !c < n_chunks && not (drop && !found <> None) do
    let ch = chunks.(!c) in
    Compiled.eval_words_into ~override:(job.gate_id, job.fn) compiled ~scratch ch.words;
    let diff = ref 0 in
    for k = 0 to n_po - 1 do
      diff := !diff lor (ch.good.(k) lxor scratch.(po.(k)))
    done;
    let diff = !diff land ch.mask in
    if diff <> 0 && !found = None then begin
      let rec lowest j = if (diff lsr j) land 1 = 1 then j else lowest (j + 1) in
      found := Some (ch.start + lowest 0)
    end;
    incr c
  done;
  tally.t_evals <- tally.t_evals + !c;
  tally.t_saved <- tally.t_saved + (n_chunks - !c);
  tally.t_gate <- tally.t_gate + (!c * n_gates);
  !found

(* Serial inner engine: one evaluation per pattern (words carry a single
   pattern in bit 0).  [pat_words] and [good] are precomputed, shared,
   read-only. *)
let run_job_serial ~drop compiled (pat_words : int array array) (good : int array array) po
    scratch tally job =
  let n_po = Array.length po in
  let n_gates = Compiled.n_gates compiled in
  let total = Array.length pat_words in
  let found = ref None in
  let pi = ref 0 in
  while !pi < total && not (drop && !found <> None) do
    Compiled.eval_words_into ~override:(job.gate_id, job.fn) compiled ~scratch pat_words.(!pi);
    let diff = ref 0 in
    for k = 0 to n_po - 1 do
      diff := !diff lor ((good.(!pi).(k) lxor scratch.(po.(k))) land 1)
    done;
    if !diff <> 0 && !found = None then found := Some !pi;
    incr pi
  done;
  tally.t_evals <- tally.t_evals + !pi;
  tally.t_saved <- tally.t_saved + (total - !pi);
  tally.t_gate <- tally.t_gate + (!pi * n_gates);
  !found

(* Cone block runner: chunk-outer over a claimed block of jobs.  The
   chunk's full baseline is blitted into [scratch] once per (chunk,
   block) and [Compiled.eval_cone_into] restores it after every job, so
   the whole block shares one baseline load.  Dropping is a per-job skip
   (a found job stops being evaluated on later chunks) plus a block-level
   exit once every job in the block is found; both are accounted so
   t_evals/t_saved match the job-inner kernels above invocation for
   invocation.

   A job that raises mid-cone leaves [scratch] partially overwritten
   ([eval_cone_into] only restores on normal return), so the handler
   re-blits the chunk baseline before moving on — the next job in the
   block sees an intact good machine.  Crashed jobs are flagged and
   skipped on the remaining chunks; their partial detections are
   discarded ([record] resets the slot) so a later isolated re-run is
   bit-identical to a clean scan.

   Returns the exclusive end of the fully-completed job prefix: [stop+1]
   when every chunk was scanned, [start] when a limit stopped the block
   between chunks (no job in the block saw every pattern). *)
let run_block_cone ~drop ctx compiled chunks (jobs : job array) (first : int option array)
    scratch buf tally start stop =
  let n_chunks = Array.length chunks in
  let n_nets = Compiled.n_nets compiled in
  let block_jobs = stop - start + 1 in
  let remaining = ref block_jobs in
  let gate_tally = ref tally.t_gate in
  let c = ref 0 in
  let stopped = ref false in
  while !c < n_chunks && not (drop && !remaining = 0) && not !stopped do
    if ctx.should_stop () then stopped := true
    else begin
      let ch = chunks.(!c) in
      Array.blit ch.nets 0 scratch 0 n_nets;
      let g0 = !gate_tally in
      for j = start to stop do
        let job = jobs.(j) in
        if ctx.crashed.(job.jid) then ()
        else if drop && first.(job.jid) <> None then tally.t_saved <- tally.t_saved + 1
        else begin
          tally.t_evals <- tally.t_evals + 1;
          match
            ctx.hook job.jid;
            Compiled.eval_cone_into ~tally:gate_tally compiled ~override:(job.gate_id, job.fn)
              ~scratch ~buf
          with
          | diff ->
              let diff = diff land ch.mask in
              if diff <> 0 && first.(job.jid) = None then begin
                let rec lowest k = if (diff lsr k) land 1 = 1 then k else lowest (k + 1) in
                first.(job.jid) <- Some (ch.start + lowest 0);
                if drop then decr remaining
              end
          | exception exn ->
              Array.blit ch.nets 0 scratch 0 n_nets;
              ctx.record j job.jid exn;
              decr remaining
        end
      done;
      ctx.spend (!gate_tally - g0);
      incr c
    end
  done;
  tally.t_gate <- !gate_tally;
  if !c < n_chunks && not !stopped then
    tally.t_saved <- tally.t_saved + ((n_chunks - !c) * block_jobs);
  if !stopped then start else stop + 1

let default_domains () = Domain.recommended_domain_count ()

(* One domain per this many estimated gate-evaluations of work (a gate
   evaluation is the innermost cube loop, tens of nanoseconds): a spawned
   domain should have at least ~1 ms of work so its spawn/join cost stays
   marginal even on a loaded host. *)
let default_min_work_per_domain = 50_000

let default_max_attempts = 3

let run_supervised ?(drop = true) ?(inner = Bit_parallel) ?(algo = `Cone) ?num_domains
    ?(min_work_per_domain = default_min_work_per_domain) ?(obs = Obs.disabled)
    ?(gauge = Limits.gauge Limits.none) ?(max_attempts = default_max_attempts)
    ?(backoff = Backoff.default) ?(crash_hook = fun (_ : int) -> ()) ?first:first_init
    ?done_mask:done_init ?(on_progress = fun ~sites_done:(_ : int) -> ()) compiled
    (jobs : job array) (patterns : bool array array) =
  let t_total0 = Obs.now () in
  if max_attempts < 1 then invalid_arg "Parallel_exec.run_supervised: max_attempts must be >= 1";
  let requested =
    match num_domains with
    | Some n ->
        if n < 1 then invalid_arg "Parallel_exec.run: num_domains must be >= 1";
        n
    | None -> default_domains ()
  in
  let n = Array.length jobs in
  let n_patterns = Array.length patterns in
  let n_chunks = (n_patterns + word_bits - 1) / word_bits in
  let n_slots =
    match first_init with
    | Some a -> Array.length a
    | None -> Array.fold_left (fun acc j -> max acc (j.jid + 1)) n jobs
  in
  let first = match first_init with Some a -> a | None -> Array.make n_slots None in
  let done_mask = match done_init with Some a -> a | None -> Array.make n_slots false in
  if Array.length done_mask <> n_slots then
    invalid_arg "Parallel_exec.run_supervised: first and done_mask lengths differ";
  Array.iter
    (fun j ->
      if j.jid < 0 || j.jid >= n_slots then
        invalid_arg
          (Printf.sprintf "Parallel_exec.run_supervised: jid %d outside result array of %d"
             j.jid n_slots))
    jobs;
  (* supervision state, all guarded by [sup_lock] *)
  let sup_lock = Mutex.create () in
  let attempts = Array.make n_slots 0 in
  let crashed = Array.make n_slots false in
  let retry_q = Queue.create () in
  let failures = ref [] in
  let retries = ref 0 in
  let worker_crashes = ref 0 in
  let spawn_failures = ref 0 in
  let backoff_sleeps = ref 0 in
  let backoff_prng = Prng.create 0x0b0f (* jitter only; never affects results *) in
  (* progress state, guarded by [progress_lock]; [done_count] includes
     any preloaded (resumed) sites *)
  let progress_lock = Mutex.create () in
  let done_count = ref (Array.fold_left (fun acc d -> if d then acc + 1 else acc) 0 done_mask) in
  let record j jid exn =
    Mutex.lock sup_lock;
    crashed.(jid) <- true;
    first.(jid) <- None;
    attempts.(jid) <- attempts.(jid) + 1;
    if attempts.(jid) >= max_attempts then
      failures := (jid, Printexc.to_string exn) :: !failures
    else Queue.add j retry_q;
    Mutex.unlock sup_lock
  in
  let ctx =
    {
      hook = crash_hook;
      crashed;
      record;
      should_stop = (fun () -> Limits.check gauge);
      spend = Limits.add_evals gauge;
    }
  in
  let per_job_evals = match inner with Bit_parallel -> n_chunks | Serial -> n_patterns in
  let work_estimate = n * per_job_evals * Compiled.n_gates compiled in
  let work_cap =
    if min_work_per_domain <= 0 then max_int else max 1 (work_estimate / min_work_per_domain)
  in
  let effective = max 1 (min requested (min (max 1 n) work_cap)) in
  let finish ~prepare_s ~spawn_s ~join_s ~per_domain =
    let stats =
      {
        requested_domains = requested;
        effective_domains = effective;
        n_jobs = n;
        n_patterns;
        n_chunks;
        inner_used = inner;
        algo_used = algo;
        work_estimate;
        prepare_s;
        spawn_s;
        join_s;
        total_s = Obs.now () -. t_total0;
        per_domain;
      }
    in
    let report =
      {
        stopped = Limits.stopped gauge;
        failed_sites = List.sort compare !failures;
        sites_done = !done_count;
        done_mask;
        retries = !retries;
        spawn_failures = !spawn_failures;
        worker_crashes = !worker_crashes;
        backoff_sleeps = !backoff_sleeps;
      }
    in
    if Obs.enabled obs then begin
      Array.iter
        (fun d ->
          Obs.emit obs ~ev:"parallel_exec.domain"
            [
              ("dom", Obs.Int d.dom);
              ("jobs_claimed", Obs.Int d.jobs_claimed);
              ("evals", Obs.Int d.evals);
              ("evals_saved", Obs.Int d.evals_saved);
              ("gate_evals", Obs.Int d.gate_evals);
              ("busy_s", Obs.Float d.busy_s);
              ("steal_s", Obs.Float d.steal_s);
            ])
        stats.per_domain;
      List.iter
        (fun (jid, msg) ->
          Obs.emit obs ~ev:"parallel_exec.job_failed"
            [
              ("jid", Obs.Int jid);
              ("attempts", Obs.Int attempts.(jid));
              ("error", Obs.String msg);
            ])
        report.failed_sites;
      Obs.emit obs ~ev:"parallel_exec.run"
        [
          ("requested_domains", Obs.Int stats.requested_domains);
          ("effective_domains", Obs.Int stats.effective_domains);
          ("jobs", Obs.Int stats.n_jobs);
          ("patterns", Obs.Int stats.n_patterns);
          ("chunks", Obs.Int stats.n_chunks);
          ("inner", Obs.String (inner_name stats.inner_used));
          ("algo", Obs.String (algo_name stats.algo_used));
          ("work_estimate", Obs.Int stats.work_estimate);
          ("evals", Obs.Int (stats_evals stats));
          ("evals_saved", Obs.Int (stats_evals_saved stats));
          ("gate_evals", Obs.Int (stats_gate_evals stats));
          ("spawn_dominated", Obs.Bool (spawn_dominated stats));
          ("sites_done", Obs.Int report.sites_done);
          ("retries", Obs.Int report.retries);
          ("failed_jobs", Obs.Int (List.length report.failed_sites));
          ("spawn_failures", Obs.Int report.spawn_failures);
          ("worker_crashes", Obs.Int report.worker_crashes);
          ("backoff_sleeps", Obs.Int report.backoff_sleeps);
          ( "stopped",
            Obs.String
              (match report.stopped with
              | Some c -> Outcome.stop_cause_name c
              | None -> "none") );
          ("prepare_s", Obs.Float stats.prepare_s);
          ("spawn_s", Obs.Float stats.spawn_s);
          ("join_s", Obs.Float stats.join_s);
          ("total_s", Obs.Float stats.total_s);
        ]
    end;
    (first, report, stats)
  in
  if n = 0 || n_patterns = 0 then
    finish ~prepare_s:0.0 ~spawn_s:0.0 ~join_s:0.0 ~per_domain:[||]
  else begin
    let t_prep0 = Obs.now () in
    let po = Compiled.po_indices compiled in
    (* [run_block ctx scratch buf tally start stop] processes one claimed
       block of jobs and returns the exclusive end of the job prefix
       that completed (jobs past it were skipped by a tripped limit;
       crashed jobs inside the prefix are flagged in [ctx.crashed]).
       [`Full] runs the classical per-job kernels under a per-job
       handler; [`Cone] runs the chunk-outer cone runner (the serial
       inner uses single-pattern chunks so both inners share it). *)
    let full_block run1 =
      fun ctx scratch tally start stop ->
       let j = ref start in
       let finished = ref false in
       while (not !finished) && !j <= stop do
         if ctx.should_stop () then finished := true
         else begin
           let job = jobs.(!j) in
           let g0 = tally.t_gate in
           (try
              ctx.hook job.jid;
              first.(job.jid) <- run1 scratch tally job
            with exn -> ctx.record !j job.jid exn);
           ctx.spend (tally.t_gate - g0);
           incr j
         end
       done;
       !j
    in
    let run_block =
      match (inner, algo) with
      | Bit_parallel, `Full ->
          let chunks = pack_chunks compiled patterns in
          let runner = full_block (fun scratch tally job ->
              run_job_bit_parallel ~drop compiled chunks po scratch tally job)
          in
          fun ctx scratch _buf tally start stop -> runner ctx scratch tally start stop
      | Bit_parallel, `Cone ->
          let chunks = pack_chunks compiled patterns in
          fun ctx scratch buf tally start stop ->
            run_block_cone ~drop ctx compiled chunks jobs first scratch buf tally start stop
      | Serial, `Full ->
          let pat_words =
            Array.map (fun p -> Array.map (fun b -> if b then 1 else 0) p) patterns
          in
          let scratch = Compiled.make_scratch compiled in
          let good =
            Array.map
              (fun w ->
                Compiled.eval_words_into compiled ~scratch w;
                Array.map (fun i -> scratch.(i) land 1) po)
              pat_words
          in
          let runner = full_block (fun scratch tally job ->
              run_job_serial ~drop compiled pat_words good po scratch tally job)
          in
          fun ctx scratch _buf tally start stop -> runner ctx scratch tally start stop
      | Serial, `Cone ->
          let chunks = pack_single_chunks compiled patterns in
          fun ctx scratch buf tally start stop ->
            run_block_cone ~drop ctx compiled chunks jobs first scratch buf tally start stop
    in
    (* mark the completed, non-crashed jobs of [start..fin-1] done and
       report progress — under the progress mutex, so a checkpoint
       snapshot taken inside [on_progress] observes every done job's
       final [first] slot (the marker's writes happen-before via this
       mutex) *)
    let mark_done start fin =
      if fin > start then begin
        Mutex.lock progress_lock;
        for j = start to fin - 1 do
          let jid = jobs.(j).jid in
          if (not crashed.(jid)) && not done_mask.(jid) then begin
            done_mask.(jid) <- true;
            incr done_count
          end
        done;
        let sites_done = !done_count in
        (try on_progress ~sites_done
         with exn ->
           Mutex.unlock progress_lock;
           raise exn);
        Mutex.unlock progress_lock
      end
    in
    let prepare_s = Obs.now () -. t_prep0 in
    let next = Atomic.make 0 in
    let block = max 1 (n / (effective * 8)) in
    let per_domain =
      Array.init effective (fun di ->
          {
            dom = di;
            jobs_claimed = 0;
            evals = 0;
            evals_saved = 0;
            gate_evals = 0;
            busy_s = 0.0;
            steal_s = 0.0;
          })
    in
    (* [cur.(di)] is the block domain [di] is currently processing: if a
       worker dies outside the per-job handlers (a supervision bug, an
       asynchronous exception), the survivors' join path requeues that
       block instead of losing it *)
    let cur = Array.make effective None in
    let worker di () =
      let scratch = Compiled.make_scratch compiled in
      let buf = Compiled.make_cone_buffer compiled in
      let tally = { t_evals = 0; t_saved = 0; t_gate = 0 } in
      let claimed = ref 0 in
      let busy = ref 0.0 in
      let steal = ref 0.0 in
      let continue = ref true in
      while !continue do
        let t0 = Obs.now () in
        let start = Atomic.fetch_and_add next block in
        let t1 = Obs.now () in
        steal := !steal +. (t1 -. t0);
        if start >= n || ctx.should_stop () then continue := false
        else begin
          let stop = min n (start + block) - 1 in
          cur.(di) <- Some (start, stop);
          let fin =
            try run_block ctx scratch buf tally start stop
            with exn ->
              (* block-level escape (outside the per-job handlers):
                 requeue every job in the block that has not already
                 been booked as crashed — re-running a job that did in
                 fact finish is idempotent (the retry resets its slot
                 and rescans every pattern) *)
              for j = start to stop do
                let jid = jobs.(j).jid in
                if not crashed.(jid) then record j jid exn
              done;
              start
          in
          mark_done start fin;
          cur.(di) <- None;
          claimed := !claimed + (stop - start + 1);
          busy := !busy +. (Obs.now () -. t1)
        end
      done;
      per_domain.(di) <-
        {
          dom = di;
          jobs_claimed = !claimed;
          evals = tally.t_evals;
          evals_saved = tally.t_saved;
          gate_evals = tally.t_gate;
          busy_s = !busy;
          steal_s = !steal;
        }
    in
    let t_spawn0 = Obs.now () in
    let helpers =
      Array.init (effective - 1) (fun i ->
          let di = i + 1 in
          try
            Some
              (Domain.spawn (fun () ->
                   try worker di ()
                   with exn ->
                     (* the worker loop itself died; requeue its
                        in-flight block so the post-join retry pass
                        recovers it, and flag the degradation *)
                     Mutex.lock sup_lock;
                     incr worker_crashes;
                     Mutex.unlock sup_lock;
                     (match cur.(di) with
                     | Some (start, stop) ->
                         for j = start to stop do
                           let jid = jobs.(j).jid in
                           if (not crashed.(jid)) && not done_mask.(jid) then record j jid exn
                         done
                     | None -> ())))
          with _spawn_failed ->
            (* Domain.spawn itself failed (resource exhaustion): degrade
               gracefully — the shared cursor means the domains that did
               start (down to just the calling one) drain everything *)
            incr spawn_failures;
            None)
    in
    let spawn_s = Obs.now () -. t_spawn0 in
    (try worker 0 ()
     with exn ->
       Mutex.lock sup_lock;
       incr worker_crashes;
       Mutex.unlock sup_lock;
       (match cur.(0) with
       | Some (start, stop) ->
           for j = start to stop do
             let jid = jobs.(j).jid in
             if (not crashed.(jid)) && not done_mask.(jid) then record j jid exn
           done
       | None -> ()));
    let t_join0 = Obs.now () in
    Array.iter (Option.iter Domain.join) helpers;
    let join_s = Obs.now () -. t_join0 in
    (* Retry pass: isolated re-runs on the calling domain, after every
       helper has quiesced (so the queue is stable and the crashed flags
       race with nobody).  Each re-run resets the job's slot and rescans
       every pattern — bit-identical to a clean evaluation. *)
    if not (Queue.is_empty retry_q) then begin
      let scratch = Compiled.make_scratch compiled in
      let buf = Compiled.make_cone_buffer compiled in
      let rtally = { t_evals = 0; t_saved = 0; t_gate = 0 } in
      let continue = ref true in
      while !continue && not (ctx.should_stop ()) do
        match Queue.take_opt retry_q with
        | None -> continue := false
        | Some j ->
            incr retries;
            let jid = jobs.(j).jid in
            (* back off before the retry: the attempt count this job has
               already burned sets the exponent *)
            if Backoff.sleep backoff backoff_prng ~attempt:attempts.(jid) > 0.0 then
              incr backoff_sleeps;
            crashed.(jid) <- false;
            first.(jid) <- None;
            let fin =
              try run_block ctx scratch buf rtally j j
              with exn ->
                if not crashed.(jid) then record j jid exn;
                j
            in
            if fin > j && not crashed.(jid) then mark_done j (j + 1)
      done;
      if Array.length per_domain > 0 then begin
        let d = per_domain.(0) in
        per_domain.(0) <-
          {
            d with
            evals = d.evals + rtally.t_evals;
            evals_saved = d.evals_saved + rtally.t_saved;
            gate_evals = d.gate_evals + rtally.t_gate;
          }
      end
    end;
    finish ~prepare_s ~spawn_s ~join_s ~per_domain
  end

let run_with_stats ?drop ?inner ?algo ?num_domains ?min_work_per_domain ?obs compiled jobs
    patterns =
  let first, report, stats =
    run_supervised ?drop ?inner ?algo ?num_domains ?min_work_per_domain ?obs compiled jobs
      patterns
  in
  (* legacy entry point: preserve fail-loudly semantics — before
     supervision, a raising job tore down the whole run *)
  (match report.failed_sites with
  | (jid, msg) :: _ ->
      failwith (Printf.sprintf "Parallel_exec.run: job %d failed after retries: %s" jid msg)
  | [] -> ());
  (first, stats)

let run ?drop ?inner ?algo ?num_domains ?min_work_per_domain ?obs compiled jobs patterns =
  fst
    (run_with_stats ?drop ?inner ?algo ?num_domains ?min_work_per_domain ?obs compiled jobs
       patterns)

(* --- Persistent scheduler ---------------------------------------------------- *)

(* A long-lived supervised pool for callers that submit work continuously
   (the serve loop) instead of in one batch.  Worker domains are spawned
   once and park on a condition variable between tasks — no sleep-polling,
   so an idle pool costs zero loop iterations ([wakeups] counts passes
   through the worker loop, which a regression test bounds).

   Fairness: tasks are queued per client and clients are drained
   round-robin — a client that floods the queue delays only its own later
   requests, never another client's next one.  [cancel] drops a
   disconnected client's queued tasks in O(queue); tasks already running
   are the submitter's problem (the serve loop hands them a cooperative
   interrupt flag instead).

   Supervision: a task that raises is counted in [crashes] and the worker
   keeps running — a poisoned job can never take an executor down, which
   is the invariant the old single-executor serve loop violated.

   Watchdog: an executor whose *loop* dies (an injected [sched.task]
   fault, an asynchronous exception outside the task handler) restarts on
   the same domain, counted in [respawns]; a claimed-but-unexecuted task
   is first handed back through the rescue queue so it is never lost.
   Executors that failed to spawn at creation ([sched.spawn] chaos or
   real resource exhaustion) are re-attempted on the next [submit], so a
   pool that degraded never stays degraded while work keeps arriving. *)

module Scheduler = struct
  type task = unit -> unit

  exception Executor_killed
  (* Raised (internally) by an injected [sched.task] fault to simulate an
     executor domain dying between claiming a task and finishing it. *)

  (* A task can be chaos-killed at most this many times before it runs
     regardless: bounds the interference of a [fail_prob 1.0] schedule so
     the pool always makes progress (the soak test's no-hang guarantee). *)
  let max_rescues = 10

  type t = {
    m : Mutex.t;
    nonempty : Condition.t;     (* signaled on submit and shutdown *)
    idle : Condition.t;         (* signaled when depth and active reach 0 *)
    queues : (int, task Queue.t) Hashtbl.t;  (* per-client FIFO *)
    rescued : (int * task * int) Queue.t;
        (* (client, task, kill count) handed back by killed executors;
           drained before the round-robin queues to preserve liveness *)
    mutable rr : int list;      (* round-robin order of clients with queued work *)
    capacity : int;
    chaos : Chaos.t;
    mutable depth : int;        (* queued, not yet claimed *)
    mutable active : int;       (* claimed, currently executing *)
    mutable running : bool;
    mutable workers : unit Domain.t list;
    n_workers : int;
    wakeups : int Atomic.t;     (* worker-loop passes; ~tasks executed + shutdown *)
    crashes : int Atomic.t;     (* tasks that raised (absorbed) *)
    executed : int Atomic.t;
    respawns : int Atomic.t;    (* executor loops restarted by the watchdog *)
    spawn_failures : int Atomic.t;  (* Domain.spawn attempts that failed *)
  }

  (* Next task: rescued tasks first (they were already claimed once and
     owe their client a response), then the head client of [rr] gives up
     one task and moves to the tail (or leaves [rr] if its queue
     emptied). *)
  let pop_locked t =
    if not (Queue.is_empty t.rescued) then begin
      let entry = Queue.take t.rescued in
      t.depth <- t.depth - 1;
      Some entry
    end
    else
      match t.rr with
      | [] -> None
      | c :: rest -> (
          match Hashtbl.find_opt t.queues c with
          | None -> None  (* unreachable: rr only lists clients with queues *)
          | Some q ->
              let task = Queue.take q in
              t.depth <- t.depth - 1;
              if Queue.is_empty q then begin
                Hashtbl.remove t.queues c;
                t.rr <- rest
              end
              else t.rr <- rest @ [ c ];
              Some (c, task, 0))

  let worker t () =
    let continue = ref true in
    while !continue do
      Mutex.lock t.m;
      while t.running && t.depth = 0 do
        Condition.wait t.nonempty t.m
      done;
      Atomic.incr t.wakeups;
      match pop_locked t with
      | None ->
          (* not running and nothing queued: drain complete, retire *)
          continue := false;
          Mutex.unlock t.m
      | Some (client, task, kills) ->
          t.active <- t.active + 1;
          Mutex.unlock t.m;
          let killed =
            kills < max_rescues
            &&
            match Chaos.decide t.chaos Chaos.Sched_task with
            | Chaos.Pass -> false
            | Chaos.Fail | Chaos.Torn -> true
          in
          if killed then begin
            (* hand the claimed task back before this executor "dies" *)
            Mutex.lock t.m;
            t.active <- t.active - 1;
            Queue.add (client, task, kills + 1) t.rescued;
            t.depth <- t.depth + 1;
            Condition.signal t.nonempty;
            Mutex.unlock t.m;
            raise Executor_killed
          end;
          (try task () with _ -> Atomic.incr t.crashes);
          Atomic.incr t.executed;
          Mutex.lock t.m;
          t.active <- t.active - 1;
          if t.depth = 0 && t.active = 0 then Condition.broadcast t.idle;
          Mutex.unlock t.m
    done

  (* Watchdog: the domain entry point restarts the worker loop whenever
     it escapes.  The loop only raises from outside the task handler and
     outside the mutex'd sections, so restarting is safe; the alternative
     — letting the domain die — silently narrows the pool. *)
  let rec worker_entry t () =
    match worker t () with
    | () -> ()
    | exception _ ->
        Atomic.incr t.respawns;
        worker_entry t ()

  (* One spawn attempt, under [t.m].  Chaos [sched.spawn] models the
     spawn itself failing (resource exhaustion). *)
  let spawn_locked t =
    let blocked =
      match Chaos.decide t.chaos Chaos.Sched_spawn with
      | Chaos.Fail | Chaos.Torn -> true
      | Chaos.Pass -> false
    in
    if blocked then begin
      Atomic.incr t.spawn_failures;
      false
    end
    else
      match Domain.spawn (worker_entry t) with
      | d ->
          t.workers <- d :: t.workers;
          true
      | exception _ ->
          Atomic.incr t.spawn_failures;
          false

  (* Top up executors that never spawned.  If chaos keeps vetoing and the
     pool is empty while work is queued, force one spawn past the chaos
     tap: the scheduler guarantees at least one live executor whenever
     work exists (again the soak's no-hang bound). *)
  let ensure_workers_locked t =
    if t.running then begin
      let missing = t.n_workers - List.length t.workers in
      for _ = 1 to missing do
        if spawn_locked t then Atomic.incr t.respawns
      done;
      if t.workers = [] && t.depth > 0 then
        match Domain.spawn (worker_entry t) with
        | d ->
            t.workers <- d :: t.workers;
            Atomic.incr t.respawns
        | exception _ -> Atomic.incr t.spawn_failures
    end

  let create ?num_domains ?(capacity = max_int) ?(chaos = Chaos.disabled) () =
    let n =
      match num_domains with
      | None -> max 1 (default_domains ())
      | Some n ->
          if n < 1 then
            invalid_arg
              (Printf.sprintf "Scheduler.create: num_domains must be >= 1 (got %d)" n);
          n
    in
    if capacity < 1 then
      invalid_arg (Printf.sprintf "Scheduler.create: capacity must be >= 1 (got %d)" capacity);
    let t =
      {
        m = Mutex.create ();
        nonempty = Condition.create ();
        idle = Condition.create ();
        queues = Hashtbl.create 8;
        rescued = Queue.create ();
        rr = [];
        capacity;
        chaos;
        depth = 0;
        active = 0;
        running = true;
        workers = [];
        n_workers = n;
        wakeups = Atomic.make 0;
        crashes = Atomic.make 0;
        executed = Atomic.make 0;
        respawns = Atomic.make 0;
        spawn_failures = Atomic.make 0;
      }
    in
    Mutex.lock t.m;
    for _ = 1 to n do
      ignore (spawn_locked t)
    done;
    Mutex.unlock t.m;
    (* Zero workers is survivable under chaos (submit re-attempts), but
       without chaos it means real resource exhaustion: fail loudly. *)
    if t.workers = [] && not (Chaos.enabled chaos) then
      failwith "Scheduler.create: could not spawn any executor domain";
    t

  let size t = t.n_workers
  let wakeups t = Atomic.get t.wakeups
  let crashes t = Atomic.get t.crashes
  let executed t = Atomic.get t.executed
  let respawns t = Atomic.get t.respawns
  let spawn_failures t = Atomic.get t.spawn_failures

  let live_workers t =
    Mutex.lock t.m;
    let n = List.length t.workers in
    Mutex.unlock t.m;
    n

  let depth t =
    Mutex.lock t.m;
    let d = t.depth in
    Mutex.unlock t.m;
    d

  let submit t ~client task =
    Mutex.lock t.m;
    let r =
      if not t.running then `Closed
      else if t.depth >= t.capacity then `Full
      else begin
        let q =
          match Hashtbl.find_opt t.queues client with
          | Some q -> q
          | None ->
              let q = Queue.create () in
              Hashtbl.add t.queues client q;
              t.rr <- t.rr @ [ client ];
              q
        in
        Queue.add task q;
        t.depth <- t.depth + 1;
        if List.length t.workers < t.n_workers then ensure_workers_locked t;
        Condition.signal t.nonempty;
        `Ok t.depth
      end
    in
    Mutex.unlock t.m;
    r

  let cancel t ~client =
    Mutex.lock t.m;
    let n =
      match Hashtbl.find_opt t.queues client with
      | None -> 0
      | Some q ->
          let n = Queue.length q in
          Hashtbl.remove t.queues client;
          t.rr <- List.filter (fun c -> c <> client) t.rr;
          t.depth <- t.depth - n;
          n
    in
    (* the client's rescued tasks are cancelled too: a kill-recover cycle
       must not resurrect work for a connection that is gone *)
    let keep = Queue.create () in
    let dropped = ref 0 in
    Queue.iter
      (fun ((c, _, _) as e) -> if c = client then incr dropped else Queue.add e keep)
      t.rescued;
    Queue.clear t.rescued;
    Queue.transfer keep t.rescued;
    t.depth <- t.depth - !dropped;
    let n = n + !dropped in
    if t.depth = 0 && t.active = 0 then Condition.broadcast t.idle;
    Mutex.unlock t.m;
    n

  let wait_idle t =
    Mutex.lock t.m;
    while t.depth > 0 || t.active > 0 do
      Condition.wait t.idle t.m
    done;
    Mutex.unlock t.m

  (* Graceful: queued tasks still execute (workers only retire once the
     queue is empty), then every worker domain is joined.  Idempotent. *)
  let shutdown t =
    Mutex.lock t.m;
    let ws = t.workers in
    t.running <- false;
    t.workers <- [];
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m;
    List.iter Domain.join ws
end
