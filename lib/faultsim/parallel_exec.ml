open Dynmos_sim

(* Domain-parallel fault-simulation core.

   The fault universe is embarrassingly parallel across fault sites: each
   site's simulation touches only (a) the shared read-only compiled
   netlist and pattern data and (b) its own slot of the result array.  So
   the engine partitions *sites* across domains and leaves the pattern
   loop sequential inside each site — that keeps first-detection
   semantics trivially identical to the serial engine (patterns are
   always scanned in ascending order).

   Scheduling is a hand-rolled chunked work-stealing pool (no Domainslib):
   a single [Atomic.t] cursor over the site array; every domain claims
   blocks of [block] consecutive sites with [fetch_and_add] until the
   cursor passes the end.  Blocks (rather than single sites) amortize the
   atomic op; stealing from a shared cursor (rather than pre-splitting
   ranges) load-balances sites whose faulty cones differ wildly in size.

   Correctness-critical sharing audit (see Compiled):
   - [Compiled.t] is immutable after [compile]; shared read-only.  OK.
   - All mutable evaluation state lives in a [Compiled.scratch] buffer;
     each worker allocates its own and threads it through every call.
   - The result array is written at [job.jid] only, and each jid is
     claimed by exactly one domain: disjoint writes, no tearing (OCaml
     array writes of immediates/pointers are domain-atomic).
   - Pattern words and good-value arrays are computed once, before the
     domains spawn, and only read afterwards. *)

type job = {
  jid : int;            (* slot in the result array *)
  gate_id : int;        (* netlist gate to override *)
  fn : Compiled.gate_fn;  (* compiled faulty function *)
}

type inner = Serial | Bit_parallel

let word_bits = 62

(* One packed chunk of <= 62 patterns with its fault-free response. *)
type chunk = {
  start : int;          (* pattern index of bit 0 *)
  mask : int;           (* valid-bit mask (len low bits) *)
  words : int array;    (* packed primary-input words *)
  good : int array;     (* fault-free primary-output words *)
}

let pack_chunks compiled (patterns : bool array array) =
  let n_inputs = Compiled.n_inputs compiled in
  let total = Array.length patterns in
  let n_chunks = (total + word_bits - 1) / word_bits in
  let scratch = Compiled.make_scratch compiled in
  Array.init n_chunks (fun c ->
      let start = c * word_bits in
      let len = min word_bits (total - start) in
      let words = Array.make n_inputs 0 in
      for j = 0 to len - 1 do
        let p = patterns.(start + j) in
        for i = 0 to n_inputs - 1 do
          if p.(i) then words.(i) <- words.(i) lor (1 lsl j)
        done
      done;
      Compiled.eval_words_into compiled ~scratch words;
      {
        start;
        mask = (if len >= word_bits then max_int else (1 lsl len) - 1);
        words;
        good = Compiled.outputs_of_nets compiled scratch;
      })

(* Earliest detecting pattern of one job, scanning chunks in order.  With
   [drop] the scan stops at the first detecting chunk; without it every
   chunk is still evaluated (mirroring the serial engine's ~drop:false
   workload), but the recorded detection is identical either way. *)
let run_job_bit_parallel ~drop compiled chunks po scratch job =
  let n_po = Array.length po in
  let found = ref None in
  let c = ref 0 in
  let n_chunks = Array.length chunks in
  while !c < n_chunks && not (drop && !found <> None) do
    let ch = chunks.(!c) in
    Compiled.eval_words_into ~override:(job.gate_id, job.fn) compiled ~scratch ch.words;
    let diff = ref 0 in
    for k = 0 to n_po - 1 do
      diff := !diff lor (ch.good.(k) lxor scratch.(po.(k)))
    done;
    let diff = !diff land ch.mask in
    if diff <> 0 && !found = None then begin
      let rec lowest j = if (diff lsr j) land 1 = 1 then j else lowest (j + 1) in
      found := Some (ch.start + lowest 0)
    end;
    incr c
  done;
  !found

(* Serial inner engine: one evaluation per pattern (words carry a single
   pattern in bit 0).  [pat_words] and [good] are precomputed, shared,
   read-only. *)
let run_job_serial ~drop compiled (pat_words : int array array) (good : int array array) po
    scratch job =
  let n_po = Array.length po in
  let total = Array.length pat_words in
  let found = ref None in
  let pi = ref 0 in
  while !pi < total && not (drop && !found <> None) do
    Compiled.eval_words_into ~override:(job.gate_id, job.fn) compiled ~scratch pat_words.(!pi);
    let diff = ref 0 in
    for k = 0 to n_po - 1 do
      diff := !diff lor ((good.(!pi).(k) lxor scratch.(po.(k))) land 1)
    done;
    if !diff <> 0 && !found = None then found := Some !pi;
    incr pi
  done;
  !found

let default_domains () = Domain.recommended_domain_count ()

let run ?(drop = true) ?(inner = Bit_parallel) ?num_domains compiled (jobs : job array)
    (patterns : bool array array) =
  let num_domains =
    match num_domains with
    | Some n ->
        if n < 1 then invalid_arg "Parallel_exec.run: num_domains must be >= 1";
        n
    | None -> default_domains ()
  in
  let n = Array.length jobs in
  let first = Array.make n None in
  if n > 0 && Array.length patterns > 0 then begin
    let po = Compiled.po_indices compiled in
    let run_job =
      match inner with
      | Bit_parallel ->
          let chunks = pack_chunks compiled patterns in
          fun scratch job -> run_job_bit_parallel ~drop compiled chunks po scratch job
      | Serial ->
          let pat_words =
            Array.map (fun p -> Array.map (fun b -> if b then 1 else 0) p) patterns
          in
          let scratch = Compiled.make_scratch compiled in
          let good =
            Array.map
              (fun w ->
                Compiled.eval_words_into compiled ~scratch w;
                Array.map (fun i -> scratch.(i) land 1) po)
              pat_words
          in
          fun scratch job -> run_job_serial ~drop compiled pat_words good po scratch job
    in
    let next = Atomic.make 0 in
    let block = max 1 (n / (num_domains * 8)) in
    let worker () =
      let scratch = Compiled.make_scratch compiled in
      let continue = ref true in
      while !continue do
        let start = Atomic.fetch_and_add next block in
        if start >= n then continue := false
        else
          for j = start to min n (start + block) - 1 do
            let job = jobs.(j) in
            first.(job.jid) <- run_job scratch job
          done
      done
    in
    let helpers = Array.init (num_domains - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join helpers
  end;
  first
