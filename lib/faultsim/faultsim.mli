open Dynmos_util
open Dynmos_core
open Dynmos_netlist
open Dynmos_sim

(** Fault simulation over netlists.

    The fault universe is the union over gates of the detectable function
    classes of each gate's fault library — valid precisely because the
    paper's model maps every physical fault of a dynamic gate to a
    combinational function.  Serial, bit-parallel (62 patterns/word) and
    deductive engines produce identical detection results (cross-checked
    in tests). *)

type site = {
  sid : int;                 (** dense site id *)
  gate : Netlist.gate;
  entry : Faultlib.entry;    (** the fault-equivalence class injected *)
  fn : Compiled.gate_fn;     (** compiled faulty function *)
}

type universe = {
  compiled : Compiled.t;
  sites : site array;
  libraries : (string * Faultlib.t) list;
}

val universe : ?electrical:Fault_map.electrical -> Netlist.t -> universe
(** Build the fault universe (one site per gate per detectable function
    class; libraries generated once per distinct cell). *)

val n_sites : universe -> int

val site_label : universe -> site -> string

type summary = {
  n_sites : int;
  n_patterns : int;
  first_detection : int option array;  (** per site: first detecting pattern *)
}

val n_detected : summary -> int
val coverage : summary -> float
val undetected : universe -> summary -> site list

val coverage_curve : summary -> float array
(** [curve.(k)] = fraction of sites detected within the first [k]
    patterns (length [n_patterns + 1]). *)

val detects : universe -> site -> bool array -> bool
(** Does one pattern detect one site? *)

(** Every engine takes an optional observability recorder [obs] (default
    disabled, one branch of overhead): when enabled it receives one
    ["faultsim.run"] event per run carrying the engine name, site and
    pattern counts, wall-clock time, the number of faulty-machine kernel
    evaluations performed ("evals") and the evaluations skipped by fault
    dropping or the all-detected early exit ("evals_saved").  The
    injection engines additionally report the algorithm name ("algo"),
    the faulty gate evaluations performed ("gate_evals"), the gate
    evaluations the cone restriction avoided relative to whole-circuit
    sweeps ("gate_evals_saved") and the summed fanout-cone size over all
    sites ("cone_gates").  The recorder never changes results: with and
    without [obs], summaries are bit-identical (tested).

    The injection engines ({!run_serial}, {!run_parallel},
    {!run_domain_parallel}) take [?algo]:

    - [`Cone] (default): re-evaluate only the fault site's transitive
      fanout cone against the good-machine baseline
      ({!Compiled.eval_cone_into}), exiting immediately when the fault is
      not activated;
    - [`Full]: re-evaluate the whole circuit per fault and compare every
      primary output (the classical kernel).

    Both produce bit-identical [first_detection] (a fault can only
    influence its fanout cone); they differ only in work performed. *)

val run_serial :
  ?drop:bool ->
  ?algo:[ `Full | `Cone ] ->
  ?obs:Dynmos_obs.Obs.t ->
  universe ->
  bool array array ->
  summary

val run_parallel :
  ?drop:bool ->
  ?algo:[ `Full | `Cone ] ->
  ?obs:Dynmos_obs.Obs.t ->
  universe ->
  bool array array ->
  summary
val run_deductive : ?drop:bool -> ?obs:Dynmos_obs.Obs.t -> universe -> bool array array -> summary

val run_concurrent : ?drop:bool -> ?obs:Dynmos_obs.Obs.t -> universe -> bool array array -> summary
(** Concurrent engine: per net, the list of diverged faulty machines with
    their explicit faulty values (the third classical simulator the paper
    names alongside parallel and deductive). *)

val run_domain_parallel :
  ?drop:bool ->
  ?inner:Parallel_exec.inner ->
  ?algo:[ `Full | `Cone ] ->
  ?num_domains:int ->
  ?min_work_per_domain:int ->
  ?obs:Dynmos_obs.Obs.t ->
  universe ->
  bool array array ->
  summary
(** Multicore engine: fault sites partitioned across OCaml 5 domains (a
    work-stealing pool, see {!Parallel_exec}), each running the serial or
    bit-parallel kernel with private scratch state.  [first_detection] is
    bit-identical to {!run_serial} for every [num_domains], [inner],
    [algo] and [drop].  [num_domains] defaults to
    [Domain.recommended_domain_count ()] and is clamped to the number of
    sites and to the estimated work (one domain per [min_work_per_domain]
    gate-evaluations, see {!Parallel_exec.run}); [inner] defaults to
    [Bit_parallel]; [algo] defaults to [`Cone]. *)

val run_domain_parallel_stats :
  ?drop:bool ->
  ?inner:Parallel_exec.inner ->
  ?algo:[ `Full | `Cone ] ->
  ?num_domains:int ->
  ?min_work_per_domain:int ->
  ?obs:Dynmos_obs.Obs.t ->
  universe ->
  bool array array ->
  summary * Parallel_exec.stats
(** {!run_domain_parallel} plus the scheduling statistics (per-domain
    jobs/evals/busy/steal, spawn and join cost, effective domain
    count). *)

val random_patterns :
  ?weights:float array -> Prng.t -> n_inputs:int -> count:int -> bool array array
(** Weighted random patterns ([weights.(i)] = probability input [i] is 1;
    default uniform 0.5).  Raises [Invalid_argument] when [n_inputs] or
    [count] is negative, when [weights] has fewer than [n_inputs]
    entries, or when any weight is outside [0, 1]. *)

val max_exhaustive_inputs : int
(** Largest input count {!exhaustive_patterns} accepts (24: past that the
    table no longer fits in memory, and [1 lsl n] eventually overflows). *)

val exhaustive_patterns : int -> bool array array
(** All [2^n] patterns in row order.  Raises [Invalid_argument] when [n]
    is negative or exceeds {!max_exhaustive_inputs}. *)
