open Dynmos_util
open Dynmos_core
open Dynmos_netlist
open Dynmos_sim

(** Fault simulation over netlists.

    The fault universe is the union over gates of the detectable function
    classes of each gate's fault library — valid precisely because the
    paper's model maps every physical fault of a dynamic gate to a
    combinational function.  Serial, bit-parallel (62 patterns/word) and
    deductive engines produce identical detection results (cross-checked
    in tests). *)

type site = {
  sid : int;                 (** dense site id *)
  gate : Netlist.gate;
  entry : Faultlib.entry;    (** the fault-equivalence class injected *)
  fn : Compiled.gate_fn;     (** compiled faulty function *)
}

type universe = {
  compiled : Compiled.t;
  sites : site array;
  libraries : (string * Faultlib.t) list;
}

val universe : ?electrical:Fault_map.electrical -> Netlist.t -> universe
(** Build the fault universe (one site per gate per detectable function
    class; libraries generated once per distinct cell). *)

val validate_universe : universe -> unit
(** Structural validation against the circuit: sids must be dense array
    indices, every site's gate id must exist in the compiled circuit, and
    no (gate, function class) pair may appear twice.  Raises
    [Invalid_argument] with a named description of the first violation.
    {!universe} and {!restrict_universe} validate their results; call
    this yourself when assembling or slicing a universe by hand. *)

val restrict_universe : universe -> gates:int list -> universe
(** The sub-universe containing only the fault sites of the listed gate
    ids, renumbered densely (every engine accepts the result unchanged).
    Raises [Invalid_argument] on out-of-range or duplicate gate ids. *)

val n_sites : universe -> int

val site_label : universe -> site -> string

type summary = Campaign.summary = {
  n_sites : int;
  n_patterns : int;
  first_detection : int option array;  (** per site: first detecting pattern *)
  outcome : Outcome.t;
      (** [Complete], or [Partial] with the stop cause (deadline /
          evaluation budget / interrupt) and any permanently-failed
          sites.  Detections gathered before a stop are always
          returned. *)
  patterns_done : int;
      (** patterns completed for every live site (pattern-sweep
          engines).  The site-sweep domains engine reports [n_patterns]
          when complete and [0] on a partial stop — its progress is
          [sites_done]. *)
  sites_done : int;
      (** sites whose result is final: everything except failed sites on
          a complete run; on a stopped run, the detected sites
          (pattern-sweep) or the fully-swept sites (domains engine,
          including checkpoint-preloaded ones). *)
}

val n_detected : summary -> int

val coverage : summary -> float
(** Detected fraction over the {e whole} universe — on a [Partial] run
    this is the conservative lower bound (unresolved sites count as
    undetected). *)

val coverage_of_done : summary -> float
(** Detected fraction over [sites_done] — the optimistic companion on
    partial runs; equals {!coverage} on complete, failure-free runs. *)

val undetected : universe -> summary -> site list

val coverage_curve : summary -> float array
(** [curve.(k)] = fraction of sites detected within the first [k]
    patterns (length [n_patterns + 1]). *)

val detects : universe -> site -> bool array -> bool
(** Does one pattern detect one site? *)

(** Every engine is a thin wrapper over the unified campaign driver
    ({!Campaign}): limits, checkpointing, obs accounting, fault dropping,
    supervision and the all-detected early exit are implemented exactly
    once there, so the six entry points cannot drift apart.

    Every engine takes an optional observability recorder [obs] (default
    disabled, one branch of overhead): when enabled it receives one
    ["faultsim.run"] event per run carrying the engine name, site and
    pattern counts, wall-clock time, the number of kernel evaluations
    performed ("evals") and the evaluations skipped by fault dropping or
    the all-detected early exit ("evals_saved").  Both counts follow one
    driver-level definition — {e one evaluation per live site per
    pattern unit} — so engines report identical totals on the same
    campaign (serial, deductive and concurrent sweep one pattern per
    unit; bit-parallel and the domains engine's bit-parallel inner
    kernel sweep one 62-pattern word per unit).  Gate-level work is
    reported separately: every engine carries "gate_evals" (gate or
    gate-function evaluations performed), and the injection engines add
    the gate evaluations the cone restriction avoided relative to
    whole-circuit sweeps ("gate_evals_saved") and the summed fanout-cone
    size over all sites ("cone_gates").  The recorder never changes
    results: with and without [obs], summaries are bit-identical
    (tested).

    Every engine takes [?algo]:

    - [`Cone] (default): for the injection engines ({!run_serial},
      {!run_parallel}, {!run_domain_parallel}), re-evaluate only the
      fault site's transitive fanout cone against the good-machine
      baseline ({!Compiled.eval_cone_into}), exiting immediately when
      the fault is not activated.  For the propagation engines
      ({!run_deductive}, {!run_concurrent}) — whose per-net propagation
      is already cone-local per site — skip every gate that lies in no
      live site's fanout cone (gates outside all injected cones on
      restricted universes, and, as dropping retires sites, growing
      regions of the circuit);
    - [`Full]: sweep every gate (the classical kernels).

    All combinations produce bit-identical [first_detection] (a fault
    can only influence its fanout cone); they differ only in work
    performed.

    {b Robustness} (see also {!Outcome}, {!Limits}, {!Checkpoint}):
    every engine takes [?deadline] (absolute epoch seconds),
    [?max_evals] (a gate-evaluation budget) and [?interrupt] (a polled
    cooperative stop flag).  A tripped limit stops the sweep cleanly at
    pattern-unit granularity and the summary's [outcome] records the
    cause; detections gathered so far are returned, never discarded, and
    {!coverage} is then the conservative lower bound.  Every engine also
    takes [?checkpoint] (build with {!checkpoint_ctl}): progress is
    persisted every interval and at return, and a controller carrying a
    validated resume state continues {e bit-identically} — each pattern
    is evaluated exactly once across the combined runs, in ascending
    order, so no first detection can move.

    The injection engines ({!run_serial}, {!run_parallel},
    {!run_domain_parallel}) additionally supervise per-site evaluation:
    a site whose faulty function raises is retried (bounded by
    [?max_attempts], default 3; the good-machine baseline is restored
    first) and, if it keeps raising, excluded and reported in the
    outcome's [failed_sites] — every other site's detections are
    identical to a clean run.  [?crash_hook] (default no-op, called with
    the site id before each evaluation) is the fault-injection point the
    supervision tests use.  The deductive and concurrent engines
    propagate all sites jointly through shared per-net lists, so a
    raising site cannot be isolated there; they support limits and
    checkpoints only.

    Every engine also takes [?on_progress] (default no-op), called after
    each completed unit of work — patterns for the pattern-sweep
    engines, sites for {!run_domain_parallel} — with the running
    detection count.  This is the streaming hook [dynmos serve] uses for
    partial-result responses; the callback must be cheap and must not
    raise (for the domains engine it runs under the pool's progress
    mutex, possibly from a worker domain). *)

val run_serial :
  ?drop:bool ->
  ?algo:[ `Full | `Cone ] ->
  ?obs:Dynmos_obs.Obs.t ->
  ?deadline:float ->
  ?max_evals:int ->
  ?interrupt:(unit -> bool) ->
  ?checkpoint:Checkpoint.ctl ->
  ?max_attempts:int ->
  ?backoff:Parallel_exec.Backoff.t ->
  ?chaos:Dynmos_chaos.Chaos.t ->
  ?crash_hook:(int -> unit) ->
  ?on_progress:(units_done:int -> detected:int -> unit) ->
  universe ->
  bool array array ->
  summary

val run_parallel :
  ?drop:bool ->
  ?algo:[ `Full | `Cone ] ->
  ?obs:Dynmos_obs.Obs.t ->
  ?deadline:float ->
  ?max_evals:int ->
  ?interrupt:(unit -> bool) ->
  ?checkpoint:Checkpoint.ctl ->
  ?max_attempts:int ->
  ?backoff:Parallel_exec.Backoff.t ->
  ?chaos:Dynmos_chaos.Chaos.t ->
  ?crash_hook:(int -> unit) ->
  ?on_progress:(units_done:int -> detected:int -> unit) ->
  universe ->
  bool array array ->
  summary

val run_deductive :
  ?drop:bool ->
  ?algo:[ `Full | `Cone ] ->
  ?obs:Dynmos_obs.Obs.t ->
  ?deadline:float ->
  ?max_evals:int ->
  ?interrupt:(unit -> bool) ->
  ?checkpoint:Checkpoint.ctl ->
  ?on_progress:(units_done:int -> detected:int -> unit) ->
  universe ->
  bool array array ->
  summary

val run_concurrent :
  ?drop:bool ->
  ?algo:[ `Full | `Cone ] ->
  ?obs:Dynmos_obs.Obs.t ->
  ?deadline:float ->
  ?max_evals:int ->
  ?interrupt:(unit -> bool) ->
  ?checkpoint:Checkpoint.ctl ->
  ?on_progress:(units_done:int -> detected:int -> unit) ->
  universe ->
  bool array array ->
  summary
(** Concurrent engine: per net, the list of diverged faulty machines with
    their explicit faulty values (the third classical simulator the paper
    names alongside parallel and deductive). *)

val run_ppsfp :
  ?drop:bool ->
  ?algo:[ `Full | `Cone ] ->
  ?group:int ->
  ?trace_site:(sid:int -> start:int -> unit) ->
  ?obs:Dynmos_obs.Obs.t ->
  ?deadline:float ->
  ?max_evals:int ->
  ?interrupt:(unit -> bool) ->
  ?checkpoint:Checkpoint.ctl ->
  ?on_progress:(units_done:int -> detected:int -> unit) ->
  universe ->
  bool array array ->
  summary
(** PPSFP engine: a group of [group] (default 16) fault machines
    simulated together against each 62-pattern word on a flat Bigarray
    (net x lane) word matrix — one cube decode per gate amortized over
    the whole group, unit-stride lane loops (see {!Ppsfp}).  [`Cone]
    probes each machine's own gate against the good machine and, when
    any machine is activated, sweeps the group's union fanout cone
    once; [`Full] sweeps every gate.  [first_detection] is
    bit-identical to {!run_parallel} for every [group], [algo] and
    [drop].  Fault dropping compacts groups between pattern units, so
    retired sites are never re-simulated ([trace_site] is the test hook
    observing which sites each unit touches).  Groups propagate
    jointly, so like the propagation engines this wrapper exposes no
    supervision knobs. *)

val run_domain_parallel :
  ?drop:bool ->
  ?inner:Parallel_exec.inner ->
  ?algo:[ `Full | `Cone ] ->
  ?num_domains:int ->
  ?min_work_per_domain:int ->
  ?obs:Dynmos_obs.Obs.t ->
  ?deadline:float ->
  ?max_evals:int ->
  ?interrupt:(unit -> bool) ->
  ?checkpoint:Checkpoint.ctl ->
  ?max_attempts:int ->
  ?backoff:Parallel_exec.Backoff.t ->
  ?crash_hook:(int -> unit) ->
  ?on_progress:(units_done:int -> detected:int -> unit) ->
  universe ->
  bool array array ->
  summary
(** Multicore engine: fault sites partitioned across OCaml 5 domains (a
    supervised work-stealing pool, see {!Parallel_exec.run_supervised}),
    each running the serial or bit-parallel kernel with private scratch
    state.  [first_detection] is bit-identical to {!run_serial} for
    every [num_domains], [inner], [algo] and [drop].  [num_domains]
    defaults to [Domain.recommended_domain_count ()] and is clamped to
    the number of sites and to the estimated work (one domain per
    [min_work_per_domain] gate-evaluations, see {!Parallel_exec.run});
    [inner] defaults to [Bit_parallel]; [algo] defaults to [`Cone].

    This engine sweeps sites, not patterns, so its checkpoints are
    site-mode (a done bitmap plus the done sites' detections) and cannot
    be exchanged with the pattern-sweep engines' — {!Checkpoint.Error}
    on a mode mismatch.  A failed [Domain.spawn] degrades gracefully to
    fewer domains (down to the calling one) with results unchanged. *)

val run_domain_parallel_stats :
  ?drop:bool ->
  ?inner:Parallel_exec.inner ->
  ?algo:[ `Full | `Cone ] ->
  ?num_domains:int ->
  ?min_work_per_domain:int ->
  ?obs:Dynmos_obs.Obs.t ->
  ?deadline:float ->
  ?max_evals:int ->
  ?interrupt:(unit -> bool) ->
  ?checkpoint:Checkpoint.ctl ->
  ?max_attempts:int ->
  ?backoff:Parallel_exec.Backoff.t ->
  ?crash_hook:(int -> unit) ->
  ?on_progress:(units_done:int -> detected:int -> unit) ->
  universe ->
  bool array array ->
  summary * Parallel_exec.stats
(** {!run_domain_parallel} plus the scheduling statistics (per-domain
    jobs/evals/busy/steal, spawn and join cost, effective domain
    count). *)

val random_patterns :
  ?weights:float array -> Prng.t -> n_inputs:int -> count:int -> bool array array
(** Weighted random patterns ([weights.(i)] = probability input [i] is 1;
    default uniform 0.5).  Raises [Invalid_argument] when [n_inputs] or
    [count] is negative, when [weights] has fewer than [n_inputs]
    entries, or when any weight is outside [0, 1]. *)

val max_exhaustive_inputs : int
(** Largest input count {!exhaustive_patterns} accepts (24: past that the
    table no longer fits in memory, and [1 lsl n] eventually overflows). *)

val exhaustive_patterns : int -> bool array array
(** All [2^n] patterns in row order.  Raises [Invalid_argument] when [n]
    is negative or exceeds {!max_exhaustive_inputs}. *)

(** {1 Checkpointing}

    Campaign digests pin a checkpoint file to the exact circuit, fault
    universe and pattern set that produced it; resuming against anything
    else is refused ({!Checkpoint.Error}).  The digests cover campaign
    identity only — engine choice, domain count and [drop] are free to
    differ between the producing and resuming runs (pattern-sweep
    checkpoints are interchangeable among serial / bit-parallel /
    deductive / concurrent; the domains engine uses site-mode
    checkpoints). *)

val circuit_digest : universe -> string
val universe_digest : universe -> string
val patterns_digest : bool array array -> string

val checkpoint_ctl :
  path:string ->
  interval:int ->
  ?resume:bool ->
  ?prng_state:string ->
  ?chaos:Dynmos_chaos.Chaos.t ->
  universe ->
  bool array array ->
  Checkpoint.ctl
(** Build the checkpoint controller to pass as [?checkpoint] to any
    engine: computes the campaign digests and, when [resume] is true and
    [path] (or its [.bak] sibling) exists, loads and validates the saved
    state — falling back to the [.bak] when the primary is corrupt or
    missing, see {!Checkpoint.load_or_backup} (a {e missing} pair under
    [resume] is a fresh start, not an error — a campaign killed before
    its first tick left nothing behind).  Stale temp files from crashed
    writers are cleaned up on creation.  [interval] is in completed
    pattern-units (patterns for the pattern-sweep engines, sites for the
    domains engine).  [prng_state] (a {!Prng.save} token) is stored for
    diagnostics; resume regenerates patterns from the seed and validates
    them via the pattern digest.  [chaos] is threaded into every write
    (the [ckpt.write] / [ckpt.fsync] / [ckpt.rename] points). *)
