open Dynmos_cell
open Dynmos_core
open Dynmos_netlist
open Dynmos_sim
module Obs = Dynmos_obs.Obs

(* Fault simulation over netlists.

   The fault universe of a network is the union, over its gates, of the
   detectable *function classes* of each gate's fault library — this is
   exactly what the paper's model buys: because every physical fault of a
   dynamic gate is combinational, the classical injection-based machinery
   (serial, bit-parallel, deductive) applies unchanged.  Three engines are
   provided and cross-checked in tests:

   - serial: re-simulate the whole circuit per fault;
   - parallel: 62 patterns per machine word, one pass per fault;
   - deductive: one pass per pattern, propagating fault lists (sets of
     site ids whose effect inverts the net) through the gates. *)

type site = {
  sid : int;
  gate : Netlist.gate;
  entry : Faultlib.entry;
  fn : Compiled.gate_fn;  (* the faulty function, compiled *)
}

type universe = {
  compiled : Compiled.t;
  sites : site array;
  libraries : (string * Faultlib.t) list;  (* per distinct cell *)
}

let site_label u site =
  ignore u;
  Fmt.str "%s/class%d(%s)" site.gate.Netlist.gname site.entry.Faultlib.class_id
    (String.concat "," (List.map snd site.entry.Faultlib.members))

(* Structural validation of a universe against its circuit.  The
   constructor below always produces a valid universe, but the record is
   public (tests and future front-ends can assemble or slice one by
   hand), and a broken universe — stale sid, site pointing outside the
   circuit, the same fault class injected twice at one gate — used to
   surface only as confusing kernel behavior deep inside an engine.
   Fail at construction time with a named error instead. *)
let validate_universe u =
  let n_gates = Compiled.n_gates u.compiled in
  let seen = Hashtbl.create (Array.length u.sites) in
  Array.iteri
    (fun i s ->
      if s.sid <> i then
        invalid_arg
          (Fmt.str "Faultsim.universe: site at index %d carries sid %d (sids must be dense)" i
             s.sid);
      let gid = s.gate.Netlist.id in
      if gid < 0 || gid >= n_gates then
        invalid_arg
          (Fmt.str
             "Faultsim.universe: site %d references gate id %d outside the circuit (%d gates)"
             i gid n_gates);
      let key = (gid, s.entry.Faultlib.class_id) in
      if Hashtbl.mem seen key then
        invalid_arg
          (Fmt.str
             "Faultsim.universe: duplicate fault site (gate %d %S, class %d) — each \
              function class may be injected once per gate"
             gid s.gate.Netlist.gname s.entry.Faultlib.class_id);
      Hashtbl.add seen key ())
    u.sites

let universe ?electrical netlist =
  let compiled = Compiled.compile netlist in
  let libraries =
    List.map (fun c -> (Cell.name c, Faultlib.generate ?electrical c)) (Netlist.distinct_cells netlist)
  in
  (* Per distinct cell, prepare each table's (entry, compiled function)
     pair exactly once: entries are indexed by class_id through a hash
     table (the old per-gate [List.find] over the entry list was
     quadratic per gate), and the faulty cover is minimized/compiled per
     cell instead of per gate — every gate instantiating the cell shares
     the same immutable [gate_fn]. *)
  let per_cell = Hashtbl.create 16 in
  List.iter
    (fun (name, lib) ->
      let by_id = Hashtbl.create 16 in
      List.iter (fun e -> Hashtbl.replace by_id e.Faultlib.class_id e) (Faultlib.entries lib);
      let prepared =
        List.map
          (fun (class_id, table) ->
            match Hashtbl.find_opt by_id class_id with
            | Some entry -> (entry, Compiled.fn_of_table table)
            | None ->
                invalid_arg
                  (Fmt.str "Faultsim.universe: class %d of cell %s has a table but no entry"
                     class_id name))
          (Faultlib.tables lib)
      in
      Hashtbl.replace per_cell name prepared)
    libraries;
  let sites = ref [] in
  let sid = ref 0 in
  Array.iter
    (fun g ->
      List.iter
        (fun (entry, fn) ->
          sites := { sid = !sid; gate = g; entry; fn } :: !sites;
          incr sid)
        (Hashtbl.find per_cell (Cell.name g.Netlist.cell)))
    (Netlist.gate_array netlist);
  let u = { compiled; sites = Array.of_list (List.rev !sites); libraries } in
  validate_universe u;
  u

(* Sub-universe over a gate subset (the serve protocol's "gates" field):
   sites are filtered and renumbered densely so every engine works on the
   result unchanged.  Out-of-range and duplicate gate ids are user input
   at the server boundary — named errors, never asserts. *)
let restrict_universe u ~gates =
  let n_gates = Compiled.n_gates u.compiled in
  let wanted = Hashtbl.create 16 in
  List.iter
    (fun g ->
      if g < 0 || g >= n_gates then
        invalid_arg
          (Fmt.str "Faultsim.restrict_universe: gate id %d out of range (circuit has %d gates)"
             g n_gates);
      if Hashtbl.mem wanted g then
        invalid_arg (Fmt.str "Faultsim.restrict_universe: duplicate gate id %d" g);
      Hashtbl.add wanted g ())
    gates;
  let kept =
    Array.to_list u.sites
    |> List.filter (fun s -> Hashtbl.mem wanted s.gate.Netlist.id)
    |> List.mapi (fun i s -> { s with sid = i })
  in
  let u' = { u with sites = Array.of_list kept } in
  validate_universe u';
  u'

let n_sites u = Array.length u.sites

(* --- Results ------------------------------------------------------------ *)

type summary = {
  n_sites : int;
  n_patterns : int;
  first_detection : int option array;  (* per site: index of first detecting pattern *)
  outcome : Outcome.t;       (* did the campaign finish, and if not, why *)
  patterns_done : int;       (* patterns completed for every live site
                                (pattern-sweep engines; the site-sweep
                                domains engine reports [n_patterns] when
                                complete and 0 on a partial stop —
                                its progress lives in [sites_done]) *)
  sites_done : int;          (* sites whose result is final *)
}

let detected_count first =
  Array.fold_left (fun acc d -> match d with Some _ -> acc + 1 | None -> acc) 0 first

let n_detected s = detected_count s.first_detection

(* Coverage over the whole universe: on a partial run this is the
   *conservative lower bound* — every site the stopped sweep never
   resolved counts as undetected. *)
let coverage s =
  if s.n_sites = 0 then 1.0 else float_of_int (n_detected s) /. float_of_int s.n_sites

(* Coverage over the sites actually resolved — the optimistic companion
   of [coverage] on partial runs; identical to it on complete ones. *)
let coverage_of_done s =
  if s.sites_done = 0 then 1.0
  else float_of_int (n_detected s) /. float_of_int s.sites_done

let undetected u s =
  let acc = ref [] in
  Array.iteri
    (fun i d -> if d = None then acc := u.sites.(i) :: !acc)
    s.first_detection;
  List.rev !acc

(* Fraction of sites detected within the first k patterns, for k = 0..n. *)
let coverage_curve s =
  let counts = Array.make (s.n_patterns + 1) 0 in
  Array.iter
    (function Some p -> counts.(p + 1) <- counts.(p + 1) + 1 | None -> ())
    s.first_detection;
  let total = float_of_int (max 1 s.n_sites) in
  let acc = ref 0 in
  Array.map
    (fun c ->
      acc := !acc + c;
      float_of_int !acc /. total)
    counts

(* --- Observability -------------------------------------------------------- *)

(* Per-run totals: the engines tally plain ints in their loops (an int
   add is noise next to a netlist evaluation) and emit one
   "faultsim.run" event when the recorder is enabled; a disabled
   recorder costs the [Obs.enabled] branch and never reads the clock.
   The "evals" field counts faulty-machine kernel evaluations — the unit
   each engine's work is measured in (single-pattern circuit evaluations
   for serial, packed-word chunk evaluations for bit-parallel, gate
   function evaluations for deductive/concurrent) — and "evals_saved"
   the ones fault dropping skipped. *)

let start_time obs = if Obs.enabled obs then Obs.now () else 0.0

let emit_run obs ~engine ~n_sites ~n_patterns ?(outcome = Outcome.Complete) ?(patterns_done = 0)
    ?(sites_done = 0) ~t0 fields =
  if Obs.enabled obs then
    Obs.emit obs ~ev:"faultsim.run"
      (("engine", Obs.String engine)
      :: ("sites", Obs.Int n_sites)
      :: ("patterns", Obs.Int n_patterns)
      :: ("outcome", Obs.String (Outcome.to_string outcome))
      :: ("patterns_done", Obs.Int patterns_done)
      :: ("sites_done", Obs.Int sites_done)
      :: ("dt_s", Obs.Float (Obs.now () -. t0))
      :: fields)

let emit_site_failed obs ~engine failed_sites =
  if Obs.enabled obs then
    List.iter
      (fun (sid, msg) ->
        Obs.emit obs ~ev:"faultsim.site_failed"
          [ ("engine", Obs.String engine); ("sid", Obs.Int sid); ("error", Obs.String msg) ])
      failed_sites

let emit_checkpoint obs ~engine ctl ~units_done =
  if Obs.enabled obs then
    Obs.emit obs ~ev:"faultsim.checkpoint"
      [
        ("engine", Obs.String engine);
        ("path", Obs.String (Checkpoint.path ctl));
        ("units_done", Obs.Int units_done);
        ("writes", Obs.Int (Checkpoint.writes ctl));
      ]

(* --- Campaign robustness ---------------------------------------------------

   Every engine below accepts:
   - [?deadline] (absolute epoch seconds), [?max_evals] (gate-evaluation
     budget) and [?interrupt] (cooperative stop flag), polled at
     pattern-unit boundaries through a [Limits.gauge]; a tripped limit
     stops the sweep cleanly and the summary's [outcome] records the
     cause — detections gathered so far are returned, never discarded;
   - [?checkpoint], a [Checkpoint.ctl] (build one with
     {!checkpoint_ctl}): progress is persisted every [interval]
     completed units and unconditionally when the run returns, and a
     controller carrying a validated resume state preloads it and
     continues bit-identically (each pattern is evaluated exactly once
     across the combined runs, in ascending order, so first-detections
     cannot move).

   The injection engines (serial, bit-parallel, domains) additionally
   supervise per-site evaluation: a site whose faulty function raises is
   retried a bounded number of times ([?max_attempts], with the
   good-machine baseline restored first — a mid-cone exception leaves
   the shared scratch dirty) and, if it keeps raising, excluded and
   reported in [outcome]'s [failed_sites] — the other sites' detections
   are identical to a clean run.  [?crash_hook] is the fault-injection
   point the supervision tests use (called with the site id before every
   evaluation; no-op by default).  The deductive and concurrent engines
   propagate all sites jointly through shared per-net structures, so a
   raising site cannot be isolated mid-pattern — they take limits and
   checkpoints but not per-site supervision. *)

let make_gauge ?deadline ?max_evals ?interrupt () =
  Limits.gauge (Limits.make ?deadline ?max_evals ?interrupt ())

let default_max_attempts = Parallel_exec.default_max_attempts

(* Preload a patterns-mode resume state: trusted detections are blitted
   in and the scan continues after the last fully-completed pattern. *)
let preload_patterns ~engine checkpoint (first : int option array) =
  match checkpoint with
  | None -> 0
  | Some ctl -> (
      Checkpoint.require_mode ctl Checkpoint.Patterns ~engine;
      match Checkpoint.resume_state ctl with
      | None -> 0
      | Some st ->
          Array.blit st.Checkpoint.first_detection 0 first 0 (Array.length first);
          st.Checkpoint.units_done)

let tick_patterns checkpoint ~obs ~engine ~units_done ~first =
  match checkpoint with
  | None -> ()
  | Some ctl ->
      if Checkpoint.tick ctl ~mode:Checkpoint.Patterns ~units_done ~first_detection:first ()
      then emit_checkpoint obs ~engine ctl ~units_done

let finalize_patterns checkpoint ~obs ~engine ~units_done ~first =
  match checkpoint with
  | None -> ()
  | Some ctl ->
      Checkpoint.finalize ctl ~mode:Checkpoint.Patterns ~units_done ~first_detection:first ();
      emit_checkpoint obs ~engine ctl ~units_done

(* --- Injection algorithms ------------------------------------------------- *)

(* The injection engines (serial, bit-parallel and the domain-parallel
   kernels) evaluate faulty machines one of two ways:

   - [`Full]: re-evaluate every gate of the circuit with the override in
     place and compare every primary output — the classical whole-
     circuit injection;
   - [`Cone] (default): re-evaluate only the fault site's transitive
     fanout cone against the good-machine baseline and compare only the
     primary outputs that cone reaches (Compiled.eval_cone_into), with
     an immediate exit when the fault is not activated.

   The two are bit-identical in [first_detection] — a fault can only
   ever influence its fanout cone — and differ only in gate evaluations
   performed, which the ["gate_evals"] / ["gate_evals_saved"] obs fields
   account for.  ["cone_gates"] reports the summed fanout-cone size over
   all sites (the per-sweep cone workload; [`Full] sweeps cost
   sites x gates instead). *)

let algo_name = function `Full -> "full" | `Cone -> "cone"

let total_cone_gates u =
  Array.fold_left
    (fun acc s -> acc + Array.length (Compiled.fanout_cone u.compiled s.gate.Netlist.id))
    0 u.sites

(* --- Serial -------------------------------------------------------------- *)

let detects u site pattern =
  let good = Compiled.eval u.compiled pattern in
  let faulty = Compiled.eval ~override:(site.gate.Netlist.id, site.fn) u.compiled pattern in
  good <> faulty

let run_serial ?(drop = true) ?(algo = `Cone) ?(obs = Obs.disabled) ?deadline ?max_evals
    ?interrupt ?checkpoint ?(max_attempts = default_max_attempts)
    ?(crash_hook = fun (_ : int) -> ()) u (patterns : bool array array) =
  let t0 = start_time obs in
  let n = n_sites u in
  let first = Array.make n None in
  let compiled = u.compiled in
  let n_inputs = Compiled.n_inputs compiled in
  let n_gates = Compiled.n_gates compiled in
  let po = Compiled.po_indices compiled in
  let n_po = Array.length po in
  (* All buffers live outside the loops: good machine in [scratch]
     (doubling as the cone baseline), whole-circuit faulty runs in
     [fscratch], cone save/restore in [buf]. *)
  let scratch = Compiled.make_scratch compiled in
  let fscratch = Compiled.make_scratch compiled in
  let buf = Compiled.make_cone_buffer compiled in
  let pat_words = Array.make n_inputs 0 in
  let evals = ref 0 and saved = ref 0 and good_evals = ref 0 in
  let gate_evals = ref 0 in
  let undetected = ref n in
  let total = Array.length patterns in
  let gauge = make_gauge ?deadline ?max_evals ?interrupt () in
  let attempts = Array.make n 0 in
  let failed = Array.make n false in
  let failures = ref [] in
  let pi = ref (preload_patterns ~engine:"serial" checkpoint first) in
  Array.iter (function Some _ -> decr undetected | None -> ()) first;
  (* Early exit: once every site is detected (and dropping is on), the
     remaining patterns can neither detect anything new nor simulate
     anything — skip them, good machine included. *)
  let stopping = ref false in
  while !pi < total && (not (drop && !undetected = 0)) && not !stopping do
    let pattern = patterns.(!pi) in
    for i = 0 to n_inputs - 1 do
      pat_words.(i) <- if pattern.(i) then 1 else 0
    done;
    Compiled.eval_words_into compiled ~scratch pat_words;
    incr good_evals;
    let g0 = !gate_evals in
    Array.iter
      (fun site ->
        if failed.(site.sid) then ()
        else if (not drop) || first.(site.sid) = None then begin
          (* bounded immediate retry at this very pattern, so a
             transient crash cannot skip a pattern and move the site's
             first detection *)
          let rec attempt () =
            incr evals;
            match
              crash_hook site.sid;
              (match algo with
              | `Cone ->
                  Compiled.eval_cone_into ~tally:gate_evals compiled
                    ~override:(site.gate.Netlist.id, site.fn) ~scratch ~buf
              | `Full ->
                  Compiled.eval_words_into ~override:(site.gate.Netlist.id, site.fn) compiled
                    ~scratch:fscratch pat_words;
                  gate_evals := !gate_evals + n_gates;
                  let d = ref 0 in
                  for k = 0 to n_po - 1 do
                    d := !d lor (scratch.(po.(k)) lxor fscratch.(po.(k)))
                  done;
                  !d)
            with
            | diff -> Some diff
            | exception exn ->
                (* a mid-cone exception leaves [scratch] partially
                   overwritten; restore the good-machine baseline before
                   anyone reads it again *)
                if algo = `Cone then Compiled.eval_words_into compiled ~scratch pat_words;
                attempts.(site.sid) <- attempts.(site.sid) + 1;
                if attempts.(site.sid) >= max_attempts then begin
                  failed.(site.sid) <- true;
                  failures := (site.sid, Printexc.to_string exn) :: !failures;
                  None
                end
                else attempt ()
          in
          match attempt () with
          | None -> ()
          | Some diff ->
              if diff land 1 <> 0 && first.(site.sid) = None then begin
                first.(site.sid) <- Some !pi;
                decr undetected
              end
        end
        else incr saved)
      u.sites;
    incr pi;
    Limits.add_evals gauge (!gate_evals - g0);
    if Limits.check gauge then stopping := true;
    tick_patterns checkpoint ~obs ~engine:"serial" ~units_done:!pi ~first
  done;
  if (!pi < total) && not !stopping then saved := !saved + ((total - !pi) * n);
  finalize_patterns checkpoint ~obs ~engine:"serial" ~units_done:!pi ~first;
  let failed_sites = List.sort compare !failures in
  let outcome = Outcome.make ?stopped:(Limits.stopped gauge) ~failed_sites () in
  (* A stopped pattern sweep has resolved exactly the detected sites (a
     detection is final once found; undetected sites still had patterns
     to see); a finished sweep has resolved everything but the failed
     sites. *)
  let sites_done =
    if !stopping then detected_count first else n - List.length failed_sites
  in
  emit_site_failed obs ~engine:"serial" failed_sites;
  emit_run obs ~engine:"serial" ~n_sites:n ~n_patterns:total ~outcome ~patterns_done:!pi
    ~sites_done ~t0
    [
      ("algo", Obs.String (algo_name algo));
      ("evals", Obs.Int !evals);
      ("evals_saved", Obs.Int !saved);
      ("good_evals", Obs.Int !good_evals);
      ("gate_evals", Obs.Int !gate_evals);
      ("gate_evals_saved", Obs.Int (((!evals + !saved) * n_gates) - !gate_evals));
      ("cone_gates", Obs.Int (total_cone_gates u));
    ];
  { n_sites = n; n_patterns = total; first_detection = first; outcome; patterns_done = !pi;
    sites_done }

(* --- Bit-parallel (62 patterns per word) --------------------------------- *)

let word_bits = 62

let run_parallel ?(drop = true) ?(algo = `Cone) ?(obs = Obs.disabled) ?deadline ?max_evals
    ?interrupt ?checkpoint ?(max_attempts = default_max_attempts)
    ?(crash_hook = fun (_ : int) -> ()) u (patterns : bool array array) =
  let t0 = start_time obs in
  let n = n_sites u in
  let first = Array.make n None in
  let compiled = u.compiled in
  let n_inputs = Compiled.n_inputs compiled in
  let n_gates = Compiled.n_gates compiled in
  let po = Compiled.po_indices compiled in
  let n_po = Array.length po in
  let total = Array.length patterns in
  let scratch = Compiled.make_scratch compiled in
  let fscratch = Compiled.make_scratch compiled in
  let buf = Compiled.make_cone_buffer compiled in
  let words = Array.make n_inputs 0 in
  let evals = ref 0 and saved = ref 0 in
  let gate_evals = ref 0 in
  let undetected = ref n in
  let n_chunks = (total + word_bits - 1) / word_bits in
  let chunks_done = ref 0 in
  let gauge = make_gauge ?deadline ?max_evals ?interrupt () in
  let attempts = Array.make n 0 in
  let failed = Array.make n false in
  let failures = ref [] in
  (* A resume point need not be 62-aligned: chunks are packed relative
     to wherever the scan starts, and first-detection only depends on
     each pattern being evaluated exactly once in ascending order — the
     chunk boundaries carry no semantics. *)
  let chunk_start = ref (preload_patterns ~engine:"parallel" checkpoint first) in
  Array.iter (function Some _ -> decr undetected | None -> ()) first;
  let stopping = ref false in
  while !chunk_start < total && (not (drop && !undetected = 0)) && not !stopping do
    let len = min word_bits (total - !chunk_start) in
    Array.fill words 0 n_inputs 0;
    for j = 0 to len - 1 do
      let p = patterns.(!chunk_start + j) in
      for i = 0 to n_inputs - 1 do
        if p.(i) then words.(i) <- words.(i) lor (1 lsl j)
      done
    done;
    let mask = if len >= word_bits then max_int else (1 lsl len) - 1 in
    Compiled.eval_words_into compiled ~scratch words;
    let g0 = !gate_evals in
    Array.iter
      (fun site ->
        if failed.(site.sid) then ()
        else if (not drop) || first.(site.sid) = None then begin
          let rec attempt () =
            incr evals;
            match
              crash_hook site.sid;
              (match algo with
              | `Cone ->
                  Compiled.eval_cone_into ~tally:gate_evals compiled
                    ~override:(site.gate.Netlist.id, site.fn) ~scratch ~buf
              | `Full ->
                  Compiled.eval_words_into ~override:(site.gate.Netlist.id, site.fn) compiled
                    ~scratch:fscratch words;
                  gate_evals := !gate_evals + n_gates;
                  let d = ref 0 in
                  for k = 0 to n_po - 1 do
                    d := !d lor (scratch.(po.(k)) lxor fscratch.(po.(k)))
                  done;
                  !d)
            with
            | diff -> Some diff
            | exception exn ->
                (* restore the chunk's good-machine baseline a mid-cone
                   exception may have left dirty *)
                if algo = `Cone then Compiled.eval_words_into compiled ~scratch words;
                attempts.(site.sid) <- attempts.(site.sid) + 1;
                if attempts.(site.sid) >= max_attempts then begin
                  failed.(site.sid) <- true;
                  failures := (site.sid, Printexc.to_string exn) :: !failures;
                  None
                end
                else attempt ()
          in
          match attempt () with
          | None -> ()
          | Some diff ->
              let diff = diff land mask in
              if diff <> 0 && first.(site.sid) = None then begin
                (* First detecting pattern: lowest set bit. *)
                let rec lowest j = if (diff lsr j) land 1 = 1 then j else lowest (j + 1) in
                first.(site.sid) <- Some (!chunk_start + lowest 0);
                decr undetected
              end
        end
        else incr saved)
      u.sites;
    incr chunks_done;
    chunk_start := !chunk_start + len;
    Limits.add_evals gauge (!gate_evals - g0);
    if Limits.check gauge then stopping := true;
    tick_patterns checkpoint ~obs ~engine:"parallel" ~units_done:!chunk_start ~first
  done;
  if !chunks_done < n_chunks && not !stopping then
    saved := !saved + ((n_chunks - !chunks_done) * n);
  finalize_patterns checkpoint ~obs ~engine:"parallel" ~units_done:!chunk_start ~first;
  let failed_sites = List.sort compare !failures in
  let outcome = Outcome.make ?stopped:(Limits.stopped gauge) ~failed_sites () in
  let sites_done =
    if !stopping then detected_count first else n - List.length failed_sites
  in
  emit_site_failed obs ~engine:"parallel" failed_sites;
  emit_run obs ~engine:"parallel" ~n_sites:n ~n_patterns:total ~outcome
    ~patterns_done:!chunk_start ~sites_done ~t0
    [
      ("algo", Obs.String (algo_name algo));
      ("evals", Obs.Int !evals);
      ("evals_saved", Obs.Int !saved);
      ("gate_evals", Obs.Int !gate_evals);
      ("gate_evals_saved", Obs.Int (((!evals + !saved) * n_gates) - !gate_evals));
      ("cone_gates", Obs.Int (total_cone_gates u));
    ];
  { n_sites = n; n_patterns = total; first_detection = first; outcome;
    patterns_done = !chunk_start; sites_done }

(* --- Deductive ------------------------------------------------------------ *)

module Int_set = Set.Make (Int)

(* One pass per pattern: each net carries the set of fault sites whose
   presence would invert the net's good value.  A gate's output list is
   computed by re-evaluating its function with the inputs inverted exactly
   on the faults' membership pattern (this handles multiple faulted inputs
   from reconvergent fan-out correctly), plus the gate's own local faults
   whose faulty function differs under the applied input vector. *)
let run_deductive ?(drop = true) ?(obs = Obs.disabled) ?deadline ?max_evals ?interrupt
    ?checkpoint u (patterns : bool array array) =
  let t0 = start_time obs in
  let n = n_sites u in
  let first = Array.make n None in
  let evals = ref 0 in
  let saved = ref 0 in
  let compiled = u.compiled in
  let n_nets = Compiled.n_nets compiled in
  let gates = Compiled.gates compiled in
  let is_po = Array.make n_nets false in
  Array.iter (fun p -> is_po.(p) <- true) (Compiled.po_indices compiled);
  (* Local sites per gate id. *)
  let local = Hashtbl.create 64 in
  Array.iter
    (fun site ->
      let k = site.gate.Netlist.id in
      Hashtbl.replace local k (site :: Option.value ~default:[] (Hashtbl.find_opt local k)))
    u.sites;
  let dropped = Array.make n false in
  let undetected = ref n in
  let total = Array.length patterns in
  let gauge = make_gauge ?deadline ?max_evals ?interrupt () in
  let pi = ref (preload_patterns ~engine:"deductive" checkpoint first) in
  Array.iteri
    (fun i d ->
      if d <> None then begin
        decr undetected;
        if drop then dropped.(i) <- true
      end)
    first;
  let stopping = ref false in
  while !pi < total && (not (drop && !undetected = 0)) && not !stopping do
    let pattern = patterns.(!pi) in
    let e0 = !evals in
    let values = Compiled.eval_nets compiled pattern in
    let lists : Int_set.t array = Array.make n_nets Int_set.empty in
    Array.iter
      (fun cg ->
        let ins = cg.Compiled.ins in
        let arity = Array.length ins in
        let in_vals = Array.map (fun i -> values.(i)) ins in
        let good_out = values.(cg.Compiled.out) in
        let candidates =
          Array.fold_left (fun acc i -> Int_set.union acc lists.(i)) Int_set.empty ins
        in
        let propagated =
          Int_set.filter
            (fun f ->
              (* A dropped site can still sit in upstream lists built
                 earlier this pattern; skip its propagation outright
                 instead of re-evaluating the gate for it. *)
              if drop && dropped.(f) then begin
                incr saved;
                false
              end
              else begin
                incr evals;
                let flipped =
                  Array.init arity (fun k ->
                      if Int_set.mem f lists.(ins.(k)) then not in_vals.(k) else in_vals.(k))
                in
                let words = Array.map (fun b -> if b then 1 else 0) flipped in
                Compiled.eval_fn cg.Compiled.fn words land 1 = 1 <> good_out
              end)
            candidates
        in
        let with_local =
          List.fold_left
            (fun acc site ->
              if drop && dropped.(site.sid) then begin
                incr saved;
                acc
              end
              else begin
                incr evals;
                let words = Array.map (fun b -> if b then 1 else 0) in_vals in
                let fv = Compiled.eval_fn site.fn words land 1 = 1 in
                if fv <> good_out then Int_set.add site.sid acc else acc
              end)
            propagated
            (Option.value ~default:[] (Hashtbl.find_opt local cg.Compiled.g.Netlist.id))
        in
        (* A fault reaching a primary-output net is detected; record it
           the moment the driving gate is processed so dropping takes
           effect for the rest of this very pattern. *)
        if is_po.(cg.Compiled.out) then
          Int_set.iter
            (fun f ->
              if first.(f) = None then begin
                first.(f) <- Some !pi;
                decr undetected
              end;
              if drop then dropped.(f) <- true)
            with_local;
        lists.(cg.Compiled.out) <- with_local)
      gates;
    incr pi;
    Limits.add_evals gauge (!evals - e0);
    if Limits.check gauge then stopping := true;
    tick_patterns checkpoint ~obs ~engine:"deductive" ~units_done:!pi ~first
  done;
  (* Early exit once every site is detected: each skipped pattern saves at
     least the n local spawn evaluations (plus all propagation work). *)
  if (!pi < total) && not !stopping then saved := !saved + ((total - !pi) * n);
  finalize_patterns checkpoint ~obs ~engine:"deductive" ~units_done:!pi ~first;
  let outcome = Outcome.make ?stopped:(Limits.stopped gauge) () in
  let sites_done = if !stopping then detected_count first else n in
  emit_run obs ~engine:"deductive" ~n_sites:n ~n_patterns:total ~outcome ~patterns_done:!pi
    ~sites_done ~t0
    [ ("evals", Obs.Int !evals); ("evals_saved", Obs.Int !saved) ];
  { n_sites = n; n_patterns = total; first_detection = first; outcome; patterns_done = !pi;
    sites_done }

(* --- Concurrent ------------------------------------------------------------ *)

(* Concurrent fault simulation: the third classical engine the paper
   names.  Instead of re-simulating whole circuits (serial/parallel) or
   propagating pure difference sets (deductive), each gate carries a list
   of *diverged* faulty machines — (site, faulty output value) pairs that
   differ from the good value at that gate's output.  A faulty machine is
   spawned at its own gate, propagated while its gate-input values differ
   from the good ones, and dies when its outputs reconverge.  On purely
   combinational single-pass evaluation this specializes to keeping, per
   net, the set of (site, value) pairs with value <> good value; the
   engine's characteristic bookkeeping is the explicit faulty *value*
   (not just membership), which is what lets it extend to sequential
   circuits — and what the paper points out breaks for static-CMOS
   stuck-opens, whose faulty machines are not combinational at all. *)

module Int_map = Map.Make (Int)

let run_concurrent ?(drop = true) ?(obs = Obs.disabled) ?deadline ?max_evals ?interrupt
    ?checkpoint u (patterns : bool array array) =
  let t0 = start_time obs in
  let n = n_sites u in
  let first = Array.make n None in
  let evals = ref 0 in
  let saved = ref 0 in
  let compiled = u.compiled in
  let n_nets = Compiled.n_nets compiled in
  let gates = Compiled.gates compiled in
  let local = Hashtbl.create 64 in
  Array.iter
    (fun site ->
      let k = site.gate.Netlist.id in
      Hashtbl.replace local k (site :: Option.value ~default:[] (Hashtbl.find_opt local k)))
    u.sites;
  let is_po = Array.make n_nets false in
  Array.iter (fun p -> is_po.(p) <- true) (Compiled.po_indices compiled);
  let dropped = Array.make n false in
  let undetected = ref n in
  let total = Array.length patterns in
  let gauge = make_gauge ?deadline ?max_evals ?interrupt () in
  let pi = ref (preload_patterns ~engine:"concurrent" checkpoint first) in
  Array.iteri
    (fun i d ->
      if d <> None then begin
        decr undetected;
        if drop then dropped.(i) <- true
      end)
    first;
  let stopping = ref false in
  while !pi < total && (not (drop && !undetected = 0)) && not !stopping do
    let pattern = patterns.(!pi) in
    let e0 = !evals in
    let values = Compiled.eval_nets compiled pattern in
    (* Per net: the diverged machines as a map site -> faulty value
       (present only when it differs from the good value). *)
    let diverged : bool Int_map.t array = Array.make n_nets Int_map.empty in
    Array.iter
      (fun cg ->
        let ins = cg.Compiled.ins in
        let arity = Array.length ins in
        let in_vals = Array.map (fun i -> values.(i)) ins in
        let good_out = values.(cg.Compiled.out) in
        (* Machines appearing on any input. *)
        let candidates =
          Array.fold_left
            (fun acc i ->
              Int_map.fold (fun site _ acc -> Int_map.add site () acc) diverged.(i) acc)
            Int_map.empty ins
        in
        let out_map = ref Int_map.empty in
        Int_map.iter
          (fun site () ->
            (* A dropped machine may still be diverged on upstream nets
               from earlier this pattern; let it die here for free. *)
            if drop && dropped.(site) then incr saved
            else begin
              incr evals;
              let faulty_ins =
                Array.init arity (fun k ->
                    match Int_map.find_opt site diverged.(ins.(k)) with
                    | Some v -> v
                    | None -> in_vals.(k))
              in
              let words = Array.map (fun b -> if b then 1 else 0) faulty_ins in
              let fn =
                if cg.Compiled.g.Netlist.id = u.sites.(site).gate.Netlist.id then
                  u.sites.(site).fn
                else cg.Compiled.fn
              in
              let fv = Compiled.eval_fn fn words land 1 = 1 in
              if fv <> good_out then out_map := Int_map.add site fv !out_map
            end)
          candidates;
        (* Spawn local machines at this gate (their inputs equal the
           good inputs; their gate function is the faulty one). *)
        List.iter
          (fun site ->
            if drop && dropped.(site.sid) then incr saved
            else if not (Int_map.mem site.sid !out_map) then begin
              incr evals;
              let words = Array.map (fun b -> if b then 1 else 0) in_vals in
              let fv = Compiled.eval_fn site.fn words land 1 = 1 in
              if fv <> good_out then out_map := Int_map.add site.sid fv !out_map
            end)
          (Option.value ~default:[] (Hashtbl.find_opt local cg.Compiled.g.Netlist.id));
        (* A machine diverged on a primary-output net is detected; record
           inline so dropping takes effect within this pattern. *)
        if is_po.(cg.Compiled.out) then
          Int_map.iter
            (fun site _ ->
              if first.(site) = None then begin
                first.(site) <- Some !pi;
                decr undetected
              end;
              if drop then dropped.(site) <- true)
            !out_map;
        diverged.(cg.Compiled.out) <- !out_map)
      gates;
    incr pi;
    Limits.add_evals gauge (!evals - e0);
    if Limits.check gauge then stopping := true;
    tick_patterns checkpoint ~obs ~engine:"concurrent" ~units_done:!pi ~first
  done;
  if (!pi < total) && not !stopping then saved := !saved + ((total - !pi) * n);
  finalize_patterns checkpoint ~obs ~engine:"concurrent" ~units_done:!pi ~first;
  let outcome = Outcome.make ?stopped:(Limits.stopped gauge) () in
  let sites_done = if !stopping then detected_count first else n in
  emit_run obs ~engine:"concurrent" ~n_sites:n ~n_patterns:total ~outcome ~patterns_done:!pi
    ~sites_done ~t0
    [ ("evals", Obs.Int !evals); ("evals_saved", Obs.Int !saved) ];
  { n_sites = n; n_patterns = total; first_detection = first; outcome; patterns_done = !pi;
    sites_done }

(* --- Domain-parallel -------------------------------------------------------- *)

(* Multicore wrapper: fault sites are partitioned across OCaml 5 domains
   (work-stealing pool in Parallel_exec); inside each site the serial or
   bit-parallel kernel runs unchanged, so first-detection results are
   bit-identical to [run_serial] for every domain count.

   This engine sweeps *sites*, not patterns, so its checkpoints are
   site-mode: a done bitmap plus the done sites' detections.  On resume,
   done sites are preloaded and their jobs never submitted to the pool;
   the rest re-run from pattern 0 (idempotent — a site's scan has no
   cross-site state).  Progress snapshots are taken from inside the
   pool's progress mutex, which orders them after the detections they
   cover. *)
let run_domain_parallel_stats ?drop ?inner ?algo ?num_domains ?min_work_per_domain
    ?(obs = Obs.disabled) ?deadline ?max_evals ?interrupt ?checkpoint ?max_attempts ?crash_hook
    u (patterns : bool array array) =
  let t0 = start_time obs in
  let n = n_sites u in
  let total = Array.length patterns in
  let first = Array.make n None in
  let done_mask = Array.make n false in
  (match checkpoint with
  | None -> ()
  | Some ctl -> (
      Checkpoint.require_mode ctl Checkpoint.Sites ~engine:"domains";
      match Checkpoint.resume_state ctl with
      | None -> ()
      | Some st -> (
          match st.Checkpoint.site_done with
          | None -> ()
          | Some d ->
              Array.iteri
                (fun i dn ->
                  if dn then begin
                    done_mask.(i) <- true;
                    first.(i) <- st.Checkpoint.first_detection.(i)
                  end)
                d)));
  let jobs =
    u.sites
    |> Array.to_seq
    |> Seq.filter (fun s -> not done_mask.(s.sid))
    |> Seq.map (fun s -> { Parallel_exec.jid = s.sid; gate_id = s.gate.Netlist.id; fn = s.fn })
    |> Array.of_seq
  in
  let gauge = make_gauge ?deadline ?max_evals ?interrupt () in
  let on_progress ~sites_done =
    match checkpoint with
    | None -> ()
    | Some ctl ->
        if
          Checkpoint.tick ctl ~mode:Checkpoint.Sites ~units_done:sites_done
            ~first_detection:first ~site_done:done_mask ()
        then emit_checkpoint obs ~engine:"domains" ctl ~units_done:sites_done
  in
  let rfirst, report, stats =
    Parallel_exec.run_supervised ?drop ?inner ?algo ?num_domains ?min_work_per_domain ~obs
      ~gauge ?max_attempts ?crash_hook ~first ~done_mask ~on_progress u.compiled jobs patterns
  in
  assert (rfirst == first);
  (match checkpoint with
  | None -> ()
  | Some ctl ->
      Checkpoint.finalize ctl ~mode:Checkpoint.Sites
        ~units_done:report.Parallel_exec.sites_done ~first_detection:first
        ~site_done:done_mask ();
      emit_checkpoint obs ~engine:"domains" ctl ~units_done:report.Parallel_exec.sites_done);
  let outcome =
    Outcome.make ?stopped:report.Parallel_exec.stopped
      ~failed_sites:report.Parallel_exec.failed_sites ()
  in
  let sites_done = report.Parallel_exec.sites_done in
  let patterns_done = if Outcome.is_complete outcome then total else 0 in
  emit_site_failed obs ~engine:"domains" report.Parallel_exec.failed_sites;
  emit_run obs ~engine:"domains" ~n_sites:n ~n_patterns:total ~outcome ~patterns_done
    ~sites_done ~t0
    [
      ("algo", Obs.String (Parallel_exec.algo_name stats.Parallel_exec.algo_used));
      ("evals", Obs.Int (Parallel_exec.stats_evals stats));
      ("evals_saved", Obs.Int (Parallel_exec.stats_evals_saved stats));
      ("gate_evals", Obs.Int (Parallel_exec.stats_gate_evals stats));
      ("cone_gates", Obs.Int (total_cone_gates u));
      ("effective_domains", Obs.Int stats.Parallel_exec.effective_domains);
      ("retries", Obs.Int report.Parallel_exec.retries);
      ("spawn_failures", Obs.Int report.Parallel_exec.spawn_failures);
      ("worker_crashes", Obs.Int report.Parallel_exec.worker_crashes);
    ];
  ( { n_sites = n; n_patterns = total; first_detection = first; outcome; patterns_done;
      sites_done },
    stats )

let run_domain_parallel ?drop ?inner ?algo ?num_domains ?min_work_per_domain ?obs ?deadline
    ?max_evals ?interrupt ?checkpoint ?max_attempts ?crash_hook u patterns =
  fst
    (run_domain_parallel_stats ?drop ?inner ?algo ?num_domains ?min_work_per_domain ?obs
       ?deadline ?max_evals ?interrupt ?checkpoint ?max_attempts ?crash_hook u patterns)

(* --- Random-pattern driver ------------------------------------------------ *)

let random_patterns ?(weights : float array option) prng ~n_inputs ~count =
  if n_inputs < 0 then
    invalid_arg (Fmt.str "Faultsim.random_patterns: n_inputs must be >= 0 (got %d)" n_inputs);
  if count < 0 then
    invalid_arg (Fmt.str "Faultsim.random_patterns: count must be >= 0 (got %d)" count);
  (match weights with
  | None -> ()
  | Some w ->
      if Array.length w < n_inputs then
        invalid_arg
          (Fmt.str
             "Faultsim.random_patterns: weights has %d entries but the circuit has %d inputs"
             (Array.length w) n_inputs);
      Array.iteri
        (fun i p ->
          if not (p >= 0.0 && p <= 1.0) then
            invalid_arg
              (Fmt.str
                 "Faultsim.random_patterns: weights.(%d) = %g is not a probability in [0, 1]" i p))
        w);
  Array.init count (fun _ ->
      Array.init n_inputs (fun i ->
          let p = match weights with Some w -> w.(i) | None -> 0.5 in
          Dynmos_util.Prng.bernoulli prng p))

(* 2^n pattern arrays of n bools each: beyond ~24 inputs the table no
   longer fits in memory, and beyond [Sys.int_size - 1] the [1 lsl n]
   row count silently overflows — fail loudly well before either. *)
let max_exhaustive_inputs = 24

let exhaustive_patterns n_inputs =
  if n_inputs < 0 then
    invalid_arg (Fmt.str "Faultsim.exhaustive_patterns: n_inputs must be >= 0 (got %d)" n_inputs);
  if n_inputs > max_exhaustive_inputs then
    invalid_arg
      (Fmt.str
         "Faultsim.exhaustive_patterns: %d inputs would need 2^%d patterns; the supported \
          maximum is %d inputs"
         n_inputs n_inputs max_exhaustive_inputs);
  Array.init (1 lsl n_inputs) (fun row ->
      Array.init n_inputs (fun i -> (row lsr i) land 1 = 1))

(* --- Checkpoint wiring ------------------------------------------------------ *)

(* Digests pin a checkpoint to the exact campaign that produced it.
   They cover campaign *identity* — topology, fault universe, pattern
   set — not implementation details like engine choice or domain count
   (any engine may resume any patterns-mode checkpoint and still be
   bit-identical). *)

let circuit_digest u =
  let b = Buffer.create 1024 in
  Array.iter
    (fun cg ->
      let g = cg.Compiled.g in
      Buffer.add_string b (string_of_int g.Netlist.id);
      Buffer.add_char b ':';
      Buffer.add_string b g.Netlist.gname;
      Buffer.add_char b ':';
      Buffer.add_string b (Cell.name g.Netlist.cell);
      Array.iter
        (fun i ->
          Buffer.add_char b ',';
          Buffer.add_string b (string_of_int i))
        cg.Compiled.ins;
      Buffer.add_char b '>';
      Buffer.add_string b (string_of_int cg.Compiled.out);
      Buffer.add_char b ';')
    (Compiled.gates u.compiled);
  Digest.to_hex (Digest.string (Buffer.contents b))

let universe_digest u =
  let b = Buffer.create 1024 in
  Array.iter
    (fun s ->
      Buffer.add_string b (string_of_int s.sid);
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int s.gate.Netlist.id);
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int s.entry.Faultlib.class_id);
      Buffer.add_char b ':';
      Buffer.add_string b (String.concat "," (List.map snd s.entry.Faultlib.members));
      Buffer.add_char b ';')
    u.sites;
  Digest.to_hex (Digest.string (Buffer.contents b))

let patterns_digest (patterns : bool array array) =
  let b = Buffer.create (Array.length patterns * 8) in
  Array.iter
    (fun p ->
      Array.iter (fun v -> Buffer.add_char b (if v then '1' else '0')) p;
      Buffer.add_char b ';')
    patterns;
  Digest.to_hex (Digest.string (Buffer.contents b))

let checkpoint_ctl ~path ~interval ?(resume = false) ?prng_state u patterns =
  (* a missing file under [resume] is a fresh start, not an error: a
     campaign killed before its first tick leaves no checkpoint, and its
     retry must still come up *)
  let resume_state = if resume && Sys.file_exists path then Some (Checkpoint.load path) else None in
  Checkpoint.create ~path ~interval ?prng_state ?resume:resume_state
    ~circuit_digest:(circuit_digest u) ~universe_digest:(universe_digest u)
    ~pattern_digest:(patterns_digest patterns) ~n_sites:(n_sites u)
    ~n_patterns:(Array.length patterns) ()
