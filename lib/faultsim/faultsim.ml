open Dynmos_cell
open Dynmos_core
open Dynmos_netlist
open Dynmos_sim
module Obs = Dynmos_obs.Obs

(* Fault simulation over netlists.

   The fault universe of a network is the union, over its gates, of the
   detectable *function classes* of each gate's fault library — this is
   exactly what the paper's model buys: because every physical fault of a
   dynamic gate is combinational, the classical injection-based machinery
   (serial, bit-parallel, deductive) applies unchanged.  Four pattern-sweep
   engines plus the domain-parallel site-sweep engine are provided and
   cross-checked in tests:

   - serial: re-simulate the whole circuit per fault;
   - parallel: 62 patterns per machine word, one pass per fault;
   - deductive: one pass per pattern, propagating fault lists (sets of
     site ids whose effect inverts the net) through the gates;
   - concurrent: one pass per pattern, propagating diverged faulty
     machines with explicit faulty values.

   Every campaign policy — limits, checkpointing, obs accounting, fault
   dropping, supervision and the all-detected early exit — is implemented
   once in [Campaign]; this module contributes the fault universe, the
   evaluation kernels ([Kernel.t] builders) and thin public wrappers. *)

type site = {
  sid : int;
  gate : Netlist.gate;
  entry : Faultlib.entry;
  fn : Compiled.gate_fn;  (* the faulty function, compiled *)
}

type universe = {
  compiled : Compiled.t;
  sites : site array;
  libraries : (string * Faultlib.t) list;  (* per distinct cell *)
}

let site_label u site =
  ignore u;
  Fmt.str "%s/class%d(%s)" site.gate.Netlist.gname site.entry.Faultlib.class_id
    (String.concat "," (List.map snd site.entry.Faultlib.members))

(* Structural validation of a universe against its circuit.  The
   constructor below always produces a valid universe, but the record is
   public (tests and future front-ends can assemble or slice one by
   hand), and a broken universe — stale sid, site pointing outside the
   circuit, the same fault class injected twice at one gate — used to
   surface only as confusing kernel behavior deep inside an engine.
   Fail at construction time with a named error instead. *)
let validate_universe u =
  let n_gates = Compiled.n_gates u.compiled in
  let seen = Hashtbl.create (Array.length u.sites) in
  Array.iteri
    (fun i s ->
      if s.sid <> i then
        invalid_arg
          (Fmt.str "Faultsim.universe: site at index %d carries sid %d (sids must be dense)" i
             s.sid);
      let gid = s.gate.Netlist.id in
      if gid < 0 || gid >= n_gates then
        invalid_arg
          (Fmt.str
             "Faultsim.universe: site %d references gate id %d outside the circuit (%d gates)"
             i gid n_gates);
      let key = (gid, s.entry.Faultlib.class_id) in
      if Hashtbl.mem seen key then
        invalid_arg
          (Fmt.str
             "Faultsim.universe: duplicate fault site (gate %d %S, class %d) — each \
              function class may be injected once per gate"
             gid s.gate.Netlist.gname s.entry.Faultlib.class_id);
      Hashtbl.add seen key ())
    u.sites

let universe ?electrical netlist =
  let compiled = Compiled.compile netlist in
  let libraries =
    List.map (fun c -> (Cell.name c, Faultlib.generate ?electrical c)) (Netlist.distinct_cells netlist)
  in
  (* Per distinct cell, prepare each table's (entry, compiled function)
     pair exactly once: entries are indexed by class_id through a hash
     table (the old per-gate [List.find] over the entry list was
     quadratic per gate), and the faulty cover is minimized/compiled per
     cell instead of per gate — every gate instantiating the cell shares
     the same immutable [gate_fn]. *)
  let per_cell = Hashtbl.create 16 in
  List.iter
    (fun (name, lib) ->
      let by_id = Hashtbl.create 16 in
      List.iter (fun e -> Hashtbl.replace by_id e.Faultlib.class_id e) (Faultlib.entries lib);
      let prepared =
        List.map
          (fun (class_id, table) ->
            match Hashtbl.find_opt by_id class_id with
            | Some entry -> (entry, Compiled.fn_of_table table)
            | None ->
                invalid_arg
                  (Fmt.str "Faultsim.universe: class %d of cell %s has a table but no entry"
                     class_id name))
          (Faultlib.tables lib)
      in
      Hashtbl.replace per_cell name prepared)
    libraries;
  let sites = ref [] in
  let sid = ref 0 in
  Array.iter
    (fun g ->
      List.iter
        (fun (entry, fn) ->
          sites := { sid = !sid; gate = g; entry; fn } :: !sites;
          incr sid)
        (Hashtbl.find per_cell (Cell.name g.Netlist.cell)))
    (Netlist.gate_array netlist);
  let u = { compiled; sites = Array.of_list (List.rev !sites); libraries } in
  validate_universe u;
  u

(* Sub-universe over a gate subset (the serve protocol's "gates" field):
   sites are filtered and renumbered densely so every engine works on the
   result unchanged.  Out-of-range and duplicate gate ids are user input
   at the server boundary — named errors, never asserts. *)
let restrict_universe u ~gates =
  let n_gates = Compiled.n_gates u.compiled in
  let wanted = Hashtbl.create 16 in
  List.iter
    (fun g ->
      if g < 0 || g >= n_gates then
        invalid_arg
          (Fmt.str "Faultsim.restrict_universe: gate id %d out of range (circuit has %d gates)"
             g n_gates);
      if Hashtbl.mem wanted g then
        invalid_arg (Fmt.str "Faultsim.restrict_universe: duplicate gate id %d" g);
      Hashtbl.add wanted g ())
    gates;
  let kept =
    Array.to_list u.sites
    |> List.filter (fun s -> Hashtbl.mem wanted s.gate.Netlist.id)
    |> List.mapi (fun i s -> { s with sid = i })
  in
  let u' = { u with sites = Array.of_list kept } in
  validate_universe u';
  u'

let n_sites u = Array.length u.sites

(* --- Results ------------------------------------------------------------ *)

type summary = Campaign.summary = {
  n_sites : int;
  n_patterns : int;
  first_detection : int option array;  (* per site: index of first detecting pattern *)
  outcome : Outcome.t;       (* did the campaign finish, and if not, why *)
  patterns_done : int;
  sites_done : int;          (* sites whose result is final *)
}

let n_detected s = Campaign.detected_count s.first_detection

(* Coverage over the whole universe: on a partial run this is the
   *conservative lower bound* — every site the stopped sweep never
   resolved counts as undetected. *)
let coverage s =
  if s.n_sites = 0 then 1.0 else float_of_int (n_detected s) /. float_of_int s.n_sites

(* Coverage over the sites actually resolved — the optimistic companion
   of [coverage] on partial runs; identical to it on complete ones. *)
let coverage_of_done s =
  if s.sites_done = 0 then 1.0
  else float_of_int (n_detected s) /. float_of_int s.sites_done

let undetected u s =
  let acc = ref [] in
  Array.iteri
    (fun i d -> if d = None then acc := u.sites.(i) :: !acc)
    s.first_detection;
  List.rev !acc

(* Fraction of sites detected within the first k patterns, for k = 0..n. *)
let coverage_curve s =
  let counts = Array.make (s.n_patterns + 1) 0 in
  Array.iter
    (function Some p -> counts.(p + 1) <- counts.(p + 1) + 1 | None -> ())
    s.first_detection;
  let total = float_of_int (max 1 s.n_sites) in
  let acc = ref 0 in
  Array.map
    (fun c ->
      acc := !acc + c;
      float_of_int !acc /. total)
    counts

(* --- Injection algorithms ------------------------------------------------- *)

(* The injection kernels (serial, bit-parallel and the domain-parallel
   inner kernels) evaluate faulty machines one of two ways:

   - [`Full]: re-evaluate every gate of the circuit with the override in
     place and compare every primary output — the classical whole-
     circuit injection;
   - [`Cone] (default): re-evaluate only the fault site's transitive
     fanout cone against the good-machine baseline and compare only the
     primary outputs that cone reaches (Compiled.eval_cone_into), with
     an immediate exit when the fault is not activated.

   The two are bit-identical in [first_detection] — a fault can only
   ever influence its fanout cone — and differ only in gate evaluations
   performed, which the ["gate_evals"] / ["gate_evals_saved"] obs fields
   account for.  ["cone_gates"] reports the summed fanout-cone size over
   all sites (the per-sweep cone workload; [`Full] sweeps cost
   sites x gates instead).

   The deductive and concurrent engines propagate fault effects through
   per-net structures, which is already cone-local per site; their
   [`Cone] variant adds a structural restriction on top: a gate that
   lies in no *live* site's fanout cone (initially, gates outside every
   injected cone — relevant for restricted universes; as dropping
   retires sites, growing regions of the circuit) cannot carry any list
   entry or diverged machine, so the whole gate is skipped.  Results are
   bit-identical: a live site's effects occur only inside its own cone,
   whose gates stay active by construction. *)

let algo_name = function `Full -> "full" | `Cone -> "cone"

let total_cone_gates u =
  Array.fold_left
    (fun acc s -> acc + Array.length (Compiled.fanout_cone u.compiled s.gate.Netlist.id))
    0 u.sites

let detects u site pattern =
  let good = Compiled.eval u.compiled pattern in
  let faulty = Compiled.eval ~override:(site.gate.Netlist.id, site.fn) u.compiled pattern in
  good <> faulty

(* --- Injection kernels (serial / bit-parallel) ---------------------------- *)

let word_bits = 62

(* One builder serves both: the serial engine is the bit-parallel
   mechanics with one pattern per unit (words are then plain 0/1), which
   is exactly how the two engines always related — only the packing
   width differed. *)
let injection_kernel ~name ~unit_bits ~count_good_evals ~algo u patterns =
  let compiled = u.compiled in
  let n_inputs = Compiled.n_inputs compiled in
  let n_gates = Compiled.n_gates compiled in
  let po = Compiled.po_indices compiled in
  let n_po = Array.length po in
  let total = Array.length patterns in
  (* All buffers live outside the loops: good machine in [scratch]
     (doubling as the cone baseline), whole-circuit faulty runs in
     [fscratch], cone save/restore in [buf]. *)
  let scratch = Compiled.make_scratch compiled in
  let fscratch = Compiled.make_scratch compiled in
  let buf = Compiled.make_cone_buffer compiled in
  let words = Array.make n_inputs 0 in
  let good_evals = ref 0 in
  let run_unit (ctx : Kernel.ctx) ~start ~len =
    Array.fill words 0 n_inputs 0;
    for j = 0 to len - 1 do
      let p = patterns.(start + j) in
      for i = 0 to n_inputs - 1 do
        if p.(i) then words.(i) <- words.(i) lor (1 lsl j)
      done
    done;
    let mask = if len >= word_bits then max_int else (1 lsl len) - 1 in
    Compiled.eval_words_into compiled ~scratch words;
    incr good_evals;
    (* a mid-cone exception leaves [scratch] partially overwritten;
       restore the good-machine baseline before anyone reads it again *)
    let restore () =
      if algo = `Cone then Compiled.eval_words_into compiled ~scratch words
    in
    Array.iter
      (fun site ->
        if ctx.Kernel.failed.(site.sid) then ()
        else if ctx.Kernel.drop && ctx.Kernel.first.(site.sid) <> None then ()
        else
          let eval () =
            match algo with
            | `Cone ->
                Compiled.eval_cone_into ~tally:ctx.Kernel.work compiled
                  ~override:(site.gate.Netlist.id, site.fn) ~scratch ~buf
            | `Full ->
                Compiled.eval_words_into ~override:(site.gate.Netlist.id, site.fn) compiled
                  ~scratch:fscratch words;
                ctx.Kernel.work := !(ctx.Kernel.work) + n_gates;
                let d = ref 0 in
                for k = 0 to n_po - 1 do
                  d := !d lor (scratch.(po.(k)) lxor fscratch.(po.(k)))
                done;
                !d
          in
          match ctx.Kernel.supervise ~sid:site.sid ~restore eval with
          | None -> ()
          | Some diff ->
              let diff = diff land mask in
              if diff <> 0 && ctx.Kernel.first.(site.sid) = None then begin
                (* First detecting pattern: lowest set bit. *)
                let rec lowest j = if (diff lsr j) land 1 = 1 then j else lowest (j + 1) in
                ctx.Kernel.detect ~sid:site.sid ~pat:(start + lowest 0)
              end)
      u.sites
  in
  let obs_fields (t : Kernel.totals) =
    ("algo", Obs.String (algo_name algo))
    :: (if count_good_evals then [ ("good_evals", Obs.Int !good_evals) ] else [])
    @ [
        ("gate_evals", Obs.Int t.Kernel.work);
        ( "gate_evals_saved",
          Obs.Int (((t.Kernel.evals + t.Kernel.evals_saved) * n_gates) - t.Kernel.work) );
        ("cone_gates", Obs.Int (total_cone_gates u));
      ]
  in
  {
    Kernel.name;
    unit_len = (fun ~start -> min unit_bits (total - start));
    units_remaining = (fun ~start -> (total - start + unit_bits - 1) / unit_bits);
    run_unit;
    obs_fields;
  }

(* --- Cone restriction for the propagation engines ------------------------- *)

(* Per gate, the number of live sites whose fanout cone contains it; a
   gate at zero carries no possible fault effect and is skipped whole.
   Dropped (and failed) sites are retired at unit boundaries — a site
   dropped mid-pattern keeps its cone active until the pattern ends,
   which the inline drop checks already handle. *)
type cone_tracker = { active : int array; accounted : bool array }

let cone_tracker ~algo u =
  match algo with
  | `Full -> None
  | `Cone ->
      let active = Array.make (Compiled.n_gates u.compiled) 0 in
      Array.iter
        (fun s ->
          Array.iter
            (fun g -> active.(g) <- active.(g) + 1)
            (Compiled.fanout_cone u.compiled s.gate.Netlist.id))
        u.sites;
      Some { active; accounted = Array.make (n_sites u) false }

let reconcile_tracker tracker (ctx : Kernel.ctx) u =
  match tracker with
  | None -> ()
  | Some { active; accounted } ->
      Array.iteri
        (fun sid acc ->
          if (not acc) && (ctx.Kernel.dropped.(sid) || ctx.Kernel.failed.(sid)) then begin
            accounted.(sid) <- true;
            Array.iter
              (fun g -> active.(g) <- active.(g) - 1)
              (Compiled.fanout_cone u.compiled u.sites.(sid).gate.Netlist.id)
          end)
        accounted

let skip_gate tracker gid =
  match tracker with None -> false | Some { active; _ } -> active.(gid) = 0

let propagation_obs_fields ~algo (t : Kernel.totals) =
  [ ("algo", Obs.String (algo_name algo)); ("gate_evals", Obs.Int t.Kernel.work) ]

(* Local sites per gate id, shared by the two propagation kernels. *)
let local_sites u =
  let local = Hashtbl.create 64 in
  Array.iter
    (fun site ->
      let k = site.gate.Netlist.id in
      Hashtbl.replace local k (site :: Option.value ~default:[] (Hashtbl.find_opt local k)))
    u.sites;
  local

(* --- Deductive kernel ------------------------------------------------------ *)

module Int_set = Set.Make (Int)

(* One pass per pattern: each net carries the set of fault sites whose
   presence would invert the net's good value.  A gate's output list is
   computed by re-evaluating its function with the inputs inverted exactly
   on the faults' membership pattern (this handles multiple faulted inputs
   from reconvergent fan-out correctly), plus the gate's own local faults
   whose faulty function differs under the applied input vector. *)
let deductive_kernel ~algo u patterns =
  let compiled = u.compiled in
  let n_nets = Compiled.n_nets compiled in
  let gates = Compiled.gates compiled in
  let total = Array.length patterns in
  let is_po = Array.make n_nets false in
  Array.iter (fun p -> is_po.(p) <- true) (Compiled.po_indices compiled);
  let local = local_sites u in
  let tracker = cone_tracker ~algo u in
  let run_unit (ctx : Kernel.ctx) ~start ~len:_ =
    reconcile_tracker tracker ctx u;
    let drop = ctx.Kernel.drop in
    let dropped = ctx.Kernel.dropped in
    let work = ctx.Kernel.work in
    let pattern = patterns.(start) in
    let values = Compiled.eval_nets compiled pattern in
    let lists : Int_set.t array = Array.make n_nets Int_set.empty in
    Array.iter
      (fun cg ->
        if not (skip_gate tracker cg.Compiled.g.Netlist.id) then begin
          let ins = cg.Compiled.ins in
          let arity = Array.length ins in
          let in_vals = Array.map (fun i -> values.(i)) ins in
          let good_out = values.(cg.Compiled.out) in
          let candidates =
            Array.fold_left (fun acc i -> Int_set.union acc lists.(i)) Int_set.empty ins
          in
          let propagated =
            Int_set.filter
              (fun f ->
                (* A dropped site can still sit in upstream lists built
                   earlier this pattern; skip its propagation outright
                   instead of re-evaluating the gate for it. *)
                if drop && dropped.(f) then false
                else begin
                  incr work;
                  let flipped =
                    Array.init arity (fun k ->
                        if Int_set.mem f lists.(ins.(k)) then not in_vals.(k) else in_vals.(k))
                  in
                  let words = Array.map (fun b -> if b then 1 else 0) flipped in
                  Compiled.eval_fn cg.Compiled.fn words land 1 = 1 <> good_out
                end)
              candidates
          in
          let with_local =
            List.fold_left
              (fun acc site ->
                if drop && dropped.(site.sid) then acc
                else begin
                  incr work;
                  let words = Array.map (fun b -> if b then 1 else 0) in_vals in
                  let fv = Compiled.eval_fn site.fn words land 1 = 1 in
                  if fv <> good_out then Int_set.add site.sid acc else acc
                end)
              propagated
              (Option.value ~default:[] (Hashtbl.find_opt local cg.Compiled.g.Netlist.id))
          in
          (* A fault reaching a primary-output net is detected; record it
             the moment the driving gate is processed so dropping takes
             effect for the rest of this very pattern. *)
          if is_po.(cg.Compiled.out) then
            Int_set.iter (fun f -> ctx.Kernel.detect ~sid:f ~pat:start) with_local;
          lists.(cg.Compiled.out) <- with_local
        end)
      gates
  in
  {
    Kernel.name = "deductive";
    unit_len = (fun ~start:_ -> 1);
    units_remaining = (fun ~start -> total - start);
    run_unit;
    obs_fields = propagation_obs_fields ~algo;
  }

(* --- Concurrent kernel ------------------------------------------------------ *)

(* Concurrent fault simulation: the third classical engine the paper
   names.  Instead of re-simulating whole circuits (serial/parallel) or
   propagating pure difference sets (deductive), each gate carries a list
   of *diverged* faulty machines — (site, faulty output value) pairs that
   differ from the good value at that gate's output.  A faulty machine is
   spawned at its own gate, propagated while its gate-input values differ
   from the good ones, and dies when its outputs reconverge.  On purely
   combinational single-pass evaluation this specializes to keeping, per
   net, the set of (site, value) pairs with value <> good value; the
   engine's characteristic bookkeeping is the explicit faulty *value*
   (not just membership), which is what lets it extend to sequential
   circuits — and what the paper points out breaks for static-CMOS
   stuck-opens, whose faulty machines are not combinational at all. *)

module Int_map = Map.Make (Int)

let concurrent_kernel ~algo u patterns =
  let compiled = u.compiled in
  let n_nets = Compiled.n_nets compiled in
  let gates = Compiled.gates compiled in
  let total = Array.length patterns in
  let is_po = Array.make n_nets false in
  Array.iter (fun p -> is_po.(p) <- true) (Compiled.po_indices compiled);
  let local = local_sites u in
  let tracker = cone_tracker ~algo u in
  let run_unit (ctx : Kernel.ctx) ~start ~len:_ =
    reconcile_tracker tracker ctx u;
    let drop = ctx.Kernel.drop in
    let dropped = ctx.Kernel.dropped in
    let work = ctx.Kernel.work in
    let pattern = patterns.(start) in
    let values = Compiled.eval_nets compiled pattern in
    (* Per net: the diverged machines as a map site -> faulty value
       (present only when it differs from the good value). *)
    let diverged : bool Int_map.t array = Array.make n_nets Int_map.empty in
    Array.iter
      (fun cg ->
        if not (skip_gate tracker cg.Compiled.g.Netlist.id) then begin
          let ins = cg.Compiled.ins in
          let arity = Array.length ins in
          let in_vals = Array.map (fun i -> values.(i)) ins in
          let good_out = values.(cg.Compiled.out) in
          (* Machines appearing on any input. *)
          let candidates =
            Array.fold_left
              (fun acc i ->
                Int_map.fold (fun site _ acc -> Int_map.add site () acc) diverged.(i) acc)
              Int_map.empty ins
          in
          let out_map = ref Int_map.empty in
          Int_map.iter
            (fun site () ->
              (* A dropped machine may still be diverged on upstream nets
                 from earlier this pattern; let it die here for free. *)
              if drop && dropped.(site) then ()
              else begin
                incr work;
                let faulty_ins =
                  Array.init arity (fun k ->
                      match Int_map.find_opt site diverged.(ins.(k)) with
                      | Some v -> v
                      | None -> in_vals.(k))
                in
                let words = Array.map (fun b -> if b then 1 else 0) faulty_ins in
                let fn =
                  if cg.Compiled.g.Netlist.id = u.sites.(site).gate.Netlist.id then
                    u.sites.(site).fn
                  else cg.Compiled.fn
                in
                let fv = Compiled.eval_fn fn words land 1 = 1 in
                if fv <> good_out then out_map := Int_map.add site fv !out_map
              end)
            candidates;
          (* Spawn local machines at this gate (their inputs equal the
             good inputs; their gate function is the faulty one). *)
          List.iter
            (fun site ->
              if drop && dropped.(site.sid) then ()
              else if not (Int_map.mem site.sid !out_map) then begin
                incr work;
                let words = Array.map (fun b -> if b then 1 else 0) in_vals in
                let fv = Compiled.eval_fn site.fn words land 1 = 1 in
                if fv <> good_out then out_map := Int_map.add site.sid fv !out_map
              end)
            (Option.value ~default:[] (Hashtbl.find_opt local cg.Compiled.g.Netlist.id));
          (* A machine diverged on a primary-output net is detected; record
             inline so dropping takes effect within this pattern. *)
          if is_po.(cg.Compiled.out) then
            Int_map.iter (fun site _ -> ctx.Kernel.detect ~sid:site ~pat:start) !out_map;
          diverged.(cg.Compiled.out) <- !out_map
        end)
      gates
  in
  {
    Kernel.name = "concurrent";
    unit_len = (fun ~start:_ -> 1);
    units_remaining = (fun ~start -> total - start);
    run_unit;
    obs_fields = propagation_obs_fields ~algo;
  }

(* --- Public engines: thin wrappers over the campaign driver ---------------- *)

let run_serial ?drop ?(algo = `Cone) ?obs ?deadline ?max_evals ?interrupt ?checkpoint
    ?max_attempts ?backoff ?chaos ?crash_hook ?on_progress u (patterns : bool array array) =
  Campaign.run_patterns ?drop ?obs ?deadline ?max_evals ?interrupt ?checkpoint ?max_attempts
    ?backoff ?chaos ?crash_hook ?on_progress ~n_sites:(n_sites u)
    ~total:(Array.length patterns)
    (injection_kernel ~name:"serial" ~unit_bits:1 ~count_good_evals:true ~algo u patterns)

let run_parallel ?drop ?(algo = `Cone) ?obs ?deadline ?max_evals ?interrupt ?checkpoint
    ?max_attempts ?backoff ?chaos ?crash_hook ?on_progress u (patterns : bool array array) =
  Campaign.run_patterns ?drop ?obs ?deadline ?max_evals ?interrupt ?checkpoint ?max_attempts
    ?backoff ?chaos ?crash_hook ?on_progress ~n_sites:(n_sites u)
    ~total:(Array.length patterns)
    (injection_kernel ~name:"parallel" ~unit_bits:word_bits ~count_good_evals:false ~algo u
       patterns)

(* The propagation engines move all sites jointly through shared per-net
   structures, so a raising site cannot be isolated mid-pattern — their
   wrappers expose no supervision knobs (the driver's supervision simply
   goes unused). *)

let run_deductive ?drop ?(algo = `Cone) ?obs ?deadline ?max_evals ?interrupt ?checkpoint
    ?on_progress u (patterns : bool array array) =
  Campaign.run_patterns ?drop ?obs ?deadline ?max_evals ?interrupt ?checkpoint ?on_progress
    ~n_sites:(n_sites u) ~total:(Array.length patterns) (deductive_kernel ~algo u patterns)

let run_concurrent ?drop ?(algo = `Cone) ?obs ?deadline ?max_evals ?interrupt ?checkpoint
    ?on_progress u (patterns : bool array array) =
  Campaign.run_patterns ?drop ?obs ?deadline ?max_evals ?interrupt ?checkpoint ?on_progress
    ~n_sites:(n_sites u) ~total:(Array.length patterns) (concurrent_kernel ~algo u patterns)

(* PPSFP simulates a whole fault group jointly against each pattern
   word, so — like the propagation engines — a raising site cannot be
   isolated and the wrapper exposes no supervision knobs.  The kernel
   itself is generic over (gate, faulty function) pairs; this wrapper
   instantiates it on the universe's sites. *)
let run_ppsfp ?drop ?(algo = `Cone) ?group ?trace_site ?obs ?deadline ?max_evals ?interrupt
    ?checkpoint ?on_progress u (patterns : bool array array) =
  let fsites =
    Array.map
      (fun s -> { Ppsfp.sid = s.sid; gate = s.gate.Netlist.id; fn = s.fn })
      u.sites
  in
  Campaign.run_patterns ?drop ?obs ?deadline ?max_evals ?interrupt ?checkpoint ?on_progress
    ~n_sites:(n_sites u) ~total:(Array.length patterns)
    (Ppsfp.kernel ?group ?trace_site ~algo u.compiled fsites patterns)

(* --- Domain-parallel -------------------------------------------------------- *)

(* Multicore wrapper: fault sites are partitioned across OCaml 5 domains
   (work-stealing pool in Parallel_exec); inside each site the serial or
   bit-parallel kernel runs unchanged, so first-detection results are
   bit-identical to [run_serial] for every domain count.  All campaign
   plumbing lives in [Campaign.run_sites]. *)
let run_domain_parallel_stats ?drop ?inner ?algo ?num_domains ?min_work_per_domain ?obs
    ?deadline ?max_evals ?interrupt ?checkpoint ?max_attempts ?backoff ?crash_hook
    ?on_progress u (patterns : bool array array) =
  let jobs =
    Array.map
      (fun s -> { Parallel_exec.jid = s.sid; gate_id = s.gate.Netlist.id; fn = s.fn })
      u.sites
  in
  let summary, _report, stats =
    Campaign.run_sites ?drop ?inner ?algo ?num_domains ?min_work_per_domain ?obs ?deadline
      ?max_evals ?interrupt ?checkpoint ?max_attempts ?backoff ?crash_hook ?on_progress
      ~extra_fields:[ ("cone_gates", Obs.Int (total_cone_gates u)) ]
      u.compiled jobs patterns
  in
  (summary, stats)

let run_domain_parallel ?drop ?inner ?algo ?num_domains ?min_work_per_domain ?obs ?deadline
    ?max_evals ?interrupt ?checkpoint ?max_attempts ?backoff ?crash_hook ?on_progress u
    patterns =
  fst
    (run_domain_parallel_stats ?drop ?inner ?algo ?num_domains ?min_work_per_domain ?obs
       ?deadline ?max_evals ?interrupt ?checkpoint ?max_attempts ?backoff ?crash_hook
       ?on_progress u patterns)

(* --- Random-pattern driver ------------------------------------------------ *)

let random_patterns ?(weights : float array option) prng ~n_inputs ~count =
  if n_inputs < 0 then
    invalid_arg (Fmt.str "Faultsim.random_patterns: n_inputs must be >= 0 (got %d)" n_inputs);
  if count < 0 then
    invalid_arg (Fmt.str "Faultsim.random_patterns: count must be >= 0 (got %d)" count);
  (match weights with
  | None -> ()
  | Some w ->
      if Array.length w < n_inputs then
        invalid_arg
          (Fmt.str
             "Faultsim.random_patterns: weights has %d entries but the circuit has %d inputs"
             (Array.length w) n_inputs);
      Array.iteri
        (fun i p ->
          if not (p >= 0.0 && p <= 1.0) then
            invalid_arg
              (Fmt.str
                 "Faultsim.random_patterns: weights.(%d) = %g is not a probability in [0, 1]" i p))
        w);
  Array.init count (fun _ ->
      Array.init n_inputs (fun i ->
          let p = match weights with Some w -> w.(i) | None -> 0.5 in
          Dynmos_util.Prng.bernoulli prng p))

(* 2^n pattern arrays of n bools each: beyond ~24 inputs the table no
   longer fits in memory, and beyond [Sys.int_size - 1] the [1 lsl n]
   row count silently overflows — fail loudly well before either. *)
let max_exhaustive_inputs = 24

let exhaustive_patterns n_inputs =
  if n_inputs < 0 then
    invalid_arg (Fmt.str "Faultsim.exhaustive_patterns: n_inputs must be >= 0 (got %d)" n_inputs);
  if n_inputs > max_exhaustive_inputs then
    invalid_arg
      (Fmt.str
         "Faultsim.exhaustive_patterns: %d inputs would need 2^%d patterns; the supported \
          maximum is %d inputs"
         n_inputs n_inputs max_exhaustive_inputs);
  Array.init (1 lsl n_inputs) (fun row ->
      Array.init n_inputs (fun i -> (row lsr i) land 1 = 1))

(* --- Checkpoint wiring ------------------------------------------------------ *)

(* Digests pin a checkpoint to the exact campaign that produced it.
   They cover campaign *identity* — topology, fault universe, pattern
   set — not implementation details like engine choice or domain count
   (any engine may resume any patterns-mode checkpoint and still be
   bit-identical). *)

let circuit_digest u =
  let b = Buffer.create 1024 in
  Array.iter
    (fun cg ->
      let g = cg.Compiled.g in
      Buffer.add_string b (string_of_int g.Netlist.id);
      Buffer.add_char b ':';
      Buffer.add_string b g.Netlist.gname;
      Buffer.add_char b ':';
      Buffer.add_string b (Cell.name g.Netlist.cell);
      Array.iter
        (fun i ->
          Buffer.add_char b ',';
          Buffer.add_string b (string_of_int i))
        cg.Compiled.ins;
      Buffer.add_char b '>';
      Buffer.add_string b (string_of_int cg.Compiled.out);
      Buffer.add_char b ';')
    (Compiled.gates u.compiled);
  Digest.to_hex (Digest.string (Buffer.contents b))

let universe_digest u =
  let b = Buffer.create 1024 in
  Array.iter
    (fun s ->
      Buffer.add_string b (string_of_int s.sid);
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int s.gate.Netlist.id);
      Buffer.add_char b ':';
      Buffer.add_string b (string_of_int s.entry.Faultlib.class_id);
      Buffer.add_char b ':';
      Buffer.add_string b (String.concat "," (List.map snd s.entry.Faultlib.members));
      Buffer.add_char b ';')
    u.sites;
  Digest.to_hex (Digest.string (Buffer.contents b))

let patterns_digest (patterns : bool array array) =
  let b = Buffer.create (Array.length patterns * 8) in
  Array.iter
    (fun p ->
      Array.iter (fun v -> Buffer.add_char b (if v then '1' else '0')) p;
      Buffer.add_char b ';')
    patterns;
  Digest.to_hex (Digest.string (Buffer.contents b))

let checkpoint_ctl ~path ~interval ?(resume = false) ?prng_state ?chaos u patterns =
  (* a missing file under [resume] is a fresh start, not an error: a
     campaign killed before its first tick leaves no checkpoint, and its
     retry must still come up.  A corrupt primary falls back to the .bak
     rotated by the previous run's writes. *)
  let resume_state, resumed_from_backup =
    if resume && (Sys.file_exists path || Sys.file_exists (path ^ ".bak")) then
      let st, from_bak = Checkpoint.load_or_backup path in
      (Some st, from_bak)
    else (None, false)
  in
  Checkpoint.create ~path ~interval ?prng_state ?resume:resume_state ~resumed_from_backup
    ?chaos
    ~circuit_digest:(circuit_digest u) ~universe_digest:(universe_digest u)
    ~pattern_digest:(patterns_digest patterns) ~n_sites:(n_sites u)
    ~n_patterns:(Array.length patterns) ()
