open Dynmos_sim

(** Domain-parallel fault-simulation core (OCaml 5 [Domain]s, no
    Domainslib): chunked work-stealing over fault-injection jobs via a
    single atomic cursor.  The compiled netlist and packed pattern data
    are shared read-only; each domain owns a private [Compiled.scratch]
    and writes only its claimed jobs' result slots.

    [Faultsim.run_domain_parallel] is the high-level entry point; this
    module is exposed for callers that carry their own fault-site
    representation. *)

type job = {
  jid : int;              (** slot in the result array *)
  gate_id : int;          (** netlist gate whose function is overridden *)
  fn : Compiled.gate_fn;  (** compiled faulty function *)
}

type inner = Serial | Bit_parallel  (** per-site evaluation kernel *)

val inner_name : inner -> string
(** ["serial"] / ["bit_parallel"], as used in stats events and bench
    JSON. *)

val algo_name : [ `Full | `Cone ] -> string
(** ["full"] / ["cone"], as used in stats events and bench JSON. *)

val word_bits : int
(** Patterns per machine word in the [Bit_parallel] kernel (62). *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val default_min_work_per_domain : int
(** Estimated gate-evaluations of work required per spawned domain
    before the engine is willing to spawn it (see {!run}). *)

(** {1 Run statistics} *)

type domain_stats = {
  dom : int;          (** 0 is the calling domain *)
  jobs_claimed : int;
  evals : int;        (** inner-kernel evaluations performed (chunk
                          evaluations for [Bit_parallel], single-pattern
                          evaluations for [Serial]) *)
  evals_saved : int;  (** evaluations skipped thanks to fault dropping *)
  gate_evals : int;   (** gate evaluations those kernel calls performed —
                          where the [`Cone] restriction shows up *)
  busy_s : float;     (** wall-clock time inside job kernels *)
  steal_s : float;    (** wall-clock time claiming work from the cursor *)
}

type stats = {
  requested_domains : int;
  effective_domains : int;  (** after clamping to jobs and work estimate *)
  n_jobs : int;
  n_patterns : int;
  n_chunks : int;
  inner_used : inner;
  algo_used : [ `Full | `Cone ];
  work_estimate : int;      (** jobs x per-job evals x gates *)
  prepare_s : float;        (** pattern packing + fault-free responses *)
  spawn_s : float;
  join_s : float;
  total_s : float;
  per_domain : domain_stats array;  (** empty when there was nothing to do *)
}

val stats_evals : stats -> int
(** Total evaluations over all domains; with the [Serial] kernel and
    [drop = false] this equals [n_jobs * n_patterns], reconciling with
    the serial reference engine. *)

val stats_evals_saved : stats -> int

val stats_gate_evals : stats -> int
(** Total gate evaluations over all domains.  With [`Full] this is
    [stats_evals x n_gates]; with [`Cone] it is bounded by the summed
    fanout-cone sizes and is typically far smaller. *)

val spawn_dominated : stats -> bool
(** True when the spawn + join cost exceeded the total busy time — the
    workload was too small for the domain count actually used. *)

val pp_stats : Format.formatter -> stats -> unit

(** {1 Running} *)

val run :
  ?drop:bool ->
  ?inner:inner ->
  ?algo:[ `Full | `Cone ] ->
  ?num_domains:int ->
  ?min_work_per_domain:int ->
  ?obs:Dynmos_obs.Obs.t ->
  Compiled.t ->
  job array ->
  bool array array ->
  int option array
(** [run compiled jobs patterns] returns, per [jid], the index of the
    first pattern whose primary outputs differ under the job's override —
    bit-identical to the serial engine for every [inner], [algo],
    [num_domains] and [drop] setting ([drop] only skips work after a
    site's first detection, never changes results).

    [algo] (default [`Cone]) selects the faulty-machine kernel: [`Cone]
    re-evaluates only each job's fanout cone against a shared
    good-machine baseline ({!Compiled.eval_cone_into}, chunk-outer over
    each claimed block so one baseline load serves the whole block);
    [`Full] re-evaluates the entire circuit per job and chunk.  Kernel
    *invocation* counts ([evals]/[evals_saved]) are identical between
    the two; the cone saving is visible in [gate_evals].

    [num_domains] (default [default_domains ()]) is a ceiling: the
    effective count is clamped to the number of jobs and to one domain
    per [min_work_per_domain] estimated gate-evaluations (default
    {!default_min_work_per_domain}; pass [0] to disable the work clamp),
    so tiny workloads never pay domain-spawn overhead.  [obs] (default
    disabled) receives one ["parallel_exec.domain"] event per domain and
    a ["parallel_exec.run"] event per call. *)

val run_with_stats :
  ?drop:bool ->
  ?inner:inner ->
  ?algo:[ `Full | `Cone ] ->
  ?num_domains:int ->
  ?min_work_per_domain:int ->
  ?obs:Dynmos_obs.Obs.t ->
  Compiled.t ->
  job array ->
  bool array array ->
  int option array * stats
(** [run] plus the scheduling statistics of the call. *)
