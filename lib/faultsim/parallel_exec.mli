open Dynmos_sim

(** Domain-parallel fault-simulation core (OCaml 5 [Domain]s, no
    Domainslib): chunked work-stealing over fault-injection jobs via a
    single atomic cursor.  The compiled netlist and packed pattern data
    are shared read-only; each domain owns a private [Compiled.scratch]
    and writes only its claimed jobs' result slots.

    [Faultsim.run_domain_parallel] is the high-level entry point; this
    module is exposed for callers that carry their own fault-site
    representation. *)

type job = {
  jid : int;              (** slot in the result array *)
  gate_id : int;          (** netlist gate whose function is overridden *)
  fn : Compiled.gate_fn;  (** compiled faulty function *)
}

type inner = Serial | Bit_parallel  (** per-site evaluation kernel *)

(** The pool is {e supervised}: a job whose evaluation raises is retried
    a bounded number of times in isolation and, if it keeps raising,
    reported per-site instead of tearing the campaign down; failed
    [Domain.spawn]s degrade gracefully to fewer domains (down to the
    calling one) because every domain steals from the same cursor.  See
    {!run_supervised}. *)

val inner_name : inner -> string
(** ["serial"] / ["bit_parallel"], as used in stats events and bench
    JSON. *)

val algo_name : [ `Full | `Cone ] -> string
(** ["full"] / ["cone"], as used in stats events and bench JSON. *)

val word_bits : int
(** Patterns per machine word in the [Bit_parallel] kernel (62). *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val default_min_work_per_domain : int
(** Estimated gate-evaluations of work required per spawned domain
    before the engine is willing to spawn it (see {!run}). *)

(** {1 Run statistics} *)

type domain_stats = {
  dom : int;          (** 0 is the calling domain *)
  jobs_claimed : int;
  evals : int;        (** inner-kernel evaluations performed (chunk
                          evaluations for [Bit_parallel], single-pattern
                          evaluations for [Serial]) *)
  evals_saved : int;  (** evaluations skipped thanks to fault dropping *)
  gate_evals : int;   (** gate evaluations those kernel calls performed —
                          where the [`Cone] restriction shows up *)
  busy_s : float;     (** wall-clock time inside job kernels *)
  steal_s : float;    (** wall-clock time claiming work from the cursor *)
}

type stats = {
  requested_domains : int;
  effective_domains : int;  (** after clamping to jobs and work estimate *)
  n_jobs : int;
  n_patterns : int;
  n_chunks : int;
  inner_used : inner;
  algo_used : [ `Full | `Cone ];
  work_estimate : int;      (** jobs x per-job evals x gates *)
  prepare_s : float;        (** pattern packing + fault-free responses *)
  spawn_s : float;
  join_s : float;
  total_s : float;
  per_domain : domain_stats array;  (** empty when there was nothing to do *)
}

type report = {
  stopped : Outcome.stop_cause option;
      (** why the sweep stopped early ([None] = ran to the end) *)
  failed_sites : (int * string) list;
      (** jobs that kept raising after bounded retries, sorted by jid:
          (jid, exception message).  Their result slots are [None];
          every other slot is identical to a clean run. *)
  sites_done : int;
      (** result slots fully evaluated (including preloaded ones) *)
  done_mask : bool array;  (** per-slot completion (the array passed as
                               [?done_mask], or a fresh one) *)
  retries : int;           (** isolated re-runs performed *)
  spawn_failures : int;    (** [Domain.spawn] calls that failed *)
  worker_crashes : int;    (** worker loops that died outside the
                               per-job handlers (recovered by requeue) *)
  backoff_sleeps : int;    (** retries preceded by a backoff sleep *)
}
(** What the supervisor observed: how much of the sweep completed and
    every degradation it absorbed. *)

(** Exponential backoff with jitter between supervised retry attempts.
    Transient failure causes (injected chaos, a full disk, an
    oversubscribed host) tend to persist for a moment; spacing the
    attempts out — jittered, so concurrent retriers decorrelate — turns
    retry-until-failed into retry-until-recovered.  Sleeps never affect
    results, only wall clock. *)
module Backoff : sig
  type t

  val default : t
  (** 1 ms base doubling per attempt, capped at 50 ms. *)

  val none : t
  (** No sleeping — the pre-backoff immediate-retry behavior (tests). *)

  val make : base_s:float -> cap_s:float -> t
  (** [base_s <= 0] disables sleeping, like {!none}. *)

  val delay : t -> Dynmos_util.Prng.t -> attempt:int -> float
  (** The jittered delay before retry [attempt] (1-based):
      [base * 2^(attempt-1)] capped at [cap_s], scaled into [d/2, d). *)

  val sleep : t -> Dynmos_util.Prng.t -> attempt:int -> float
  (** {!delay}, slept; returns the duration. *)
end

val stats_evals : stats -> int
(** Total evaluations over all domains; with the [Serial] kernel and
    [drop = false] this equals [n_jobs * n_patterns], reconciling with
    the serial reference engine. *)

val stats_evals_saved : stats -> int

val stats_gate_evals : stats -> int
(** Total gate evaluations over all domains.  With [`Full] this is
    [stats_evals x n_gates]; with [`Cone] it is bounded by the summed
    fanout-cone sizes and is typically far smaller. *)

val spawn_dominated : stats -> bool
(** True when the spawn + join cost exceeded the total busy time — the
    workload was too small for the domain count actually used. *)

val pp_stats : Format.formatter -> stats -> unit

(** {1 Running} *)

val run :
  ?drop:bool ->
  ?inner:inner ->
  ?algo:[ `Full | `Cone ] ->
  ?num_domains:int ->
  ?min_work_per_domain:int ->
  ?obs:Dynmos_obs.Obs.t ->
  Compiled.t ->
  job array ->
  bool array array ->
  int option array
(** [run compiled jobs patterns] returns, per [jid], the index of the
    first pattern whose primary outputs differ under the job's override —
    bit-identical to the serial engine for every [inner], [algo],
    [num_domains] and [drop] setting ([drop] only skips work after a
    site's first detection, never changes results).

    [algo] (default [`Cone]) selects the faulty-machine kernel: [`Cone]
    re-evaluates only each job's fanout cone against a shared
    good-machine baseline ({!Compiled.eval_cone_into}, chunk-outer over
    each claimed block so one baseline load serves the whole block);
    [`Full] re-evaluates the entire circuit per job and chunk.  Kernel
    *invocation* counts ([evals]/[evals_saved]) are identical between
    the two; the cone saving is visible in [gate_evals].

    [num_domains] (default [default_domains ()]) is a ceiling: the
    effective count is clamped to the number of jobs and to one domain
    per [min_work_per_domain] estimated gate-evaluations (default
    {!default_min_work_per_domain}; pass [0] to disable the work clamp),
    so tiny workloads never pay domain-spawn overhead.  [obs] (default
    disabled) receives one ["parallel_exec.domain"] event per domain and
    a ["parallel_exec.run"] event per call. *)

val run_with_stats :
  ?drop:bool ->
  ?inner:inner ->
  ?algo:[ `Full | `Cone ] ->
  ?num_domains:int ->
  ?min_work_per_domain:int ->
  ?obs:Dynmos_obs.Obs.t ->
  Compiled.t ->
  job array ->
  bool array array ->
  int option array * stats
(** [run] plus the scheduling statistics of the call. *)

val default_max_attempts : int
(** Evaluation attempts per job before it is declared failed (3). *)

val run_supervised :
  ?drop:bool ->
  ?inner:inner ->
  ?algo:[ `Full | `Cone ] ->
  ?num_domains:int ->
  ?min_work_per_domain:int ->
  ?obs:Dynmos_obs.Obs.t ->
  ?gauge:Limits.gauge ->
  ?max_attempts:int ->
  ?backoff:Backoff.t ->
  ?crash_hook:(int -> unit) ->
  ?first:int option array ->
  ?done_mask:bool array ->
  ?on_progress:(sites_done:int -> unit) ->
  Compiled.t ->
  job array ->
  bool array array ->
  int option array * report * stats
(** The fault-tolerant entry point {!run}/{!run_with_stats} wrap.

    Supervision: every job evaluation runs under a per-job exception
    handler.  A raising job is requeued (at most [max_attempts] total
    attempts, default {!default_max_attempts}) and re-run in isolation
    on the calling domain after the main sweep and join; a job that
    keeps raising lands in [report.failed_sites] with its slot [None].
    Either way its partial progress is discarded and re-runs rescan
    every pattern, so surviving results are bit-identical to a clean
    run.  Each retry is preceded by a [backoff] sleep (default
    {!Backoff.default}; pass {!Backoff.none} for the old immediate
    behavior) whose exponent is the job's burned attempt count.
    [crash_hook] is called with the job's [jid] before every
    evaluation — it exists for fault-injection tests and defaults to a
    no-op.

    Limits: [gauge] is polled at job/chunk/block boundaries and fed the
    gate-evaluations performed; when it trips, the sweep stops cleanly
    at the next boundary and [report.stopped] records the cause.  Slots
    not fully evaluated stay unmarked in [report.done_mask].

    Resume support: [first] and [done_mask] (same length, defining the
    result-slot space) may carry preloaded results from a checkpoint —
    pass only the jobs still to run; preloaded slots count toward
    [report.sites_done].  [on_progress] is invoked under the pool's
    progress mutex after each completed block with the running done
    count; a checkpoint snapshot taken inside it observes every done
    slot's final result (in-flight slots may read stale, which is safe
    because resume only trusts slots marked done). *)

(** {1 Persistent scheduler} *)

(** A long-lived supervised worker pool for callers that submit tasks
    continuously (the serve loop) instead of in one batch.  Worker
    domains are spawned once at {!Scheduler.create} and park on a
    condition variable between tasks — an idle pool performs no loop
    iterations ({!Scheduler.wakeups} counts worker-loop passes, which
    the busy-wait regression test bounds).

    Fairness: tasks queue per client and clients are drained
    round-robin, so one client's backlog delays only its own later
    tasks.  {!Scheduler.cancel} drops a disconnected client's queued
    tasks; already-running tasks should be stopped cooperatively (the
    serve loop passes engines an interrupt flag).

    Supervision: a raising task is absorbed (counted in
    {!Scheduler.crashes}); a worker domain never dies to a task.

    Watchdog: an executor loop that escapes (an injected [sched.task]
    fault, an asynchronous exception) restarts on the same domain —
    counted in {!Scheduler.respawns} — after handing its claimed task
    back through an internal rescue queue, so the task is re-executed
    rather than lost.  Executors that failed to spawn are re-attempted
    on the next {!Scheduler.submit}.  A task can be chaos-killed at most
    a bounded number of times before it runs regardless, so even a
    100%-kill schedule cannot starve the pool. *)
module Scheduler : sig
  type task = unit -> unit

  type t

  val create :
    ?num_domains:int -> ?capacity:int -> ?chaos:Dynmos_chaos.Chaos.t -> unit -> t
  (** [num_domains] (default [default_domains ()]) worker domains;
      [capacity] (default unbounded) caps the total queued-task count
      across clients — beyond it {!submit} answers [`Full].
      [Invalid_argument] on non-positive values; fails loudly if no
      worker domain at all could be spawned without chaos (fewer than
      requested degrades silently and is topped back up on submit).
      [chaos] arms the [sched.spawn] and [sched.task] injection
      points. *)

  val submit : t -> client:int -> task -> [ `Ok of int | `Full | `Closed ]
  (** Enqueue on [client]'s FIFO.  [`Ok depth] reports the queued count
      after insertion; [`Full] = capacity reached (nothing enqueued);
      [`Closed] = the scheduler was shut down. *)

  val cancel : t -> client:int -> int
  (** Drop every queued (not yet claimed) task of [client]; returns how
      many were dropped.  Running tasks are unaffected. *)

  val depth : t -> int
  (** Tasks queued and not yet claimed by a worker. *)

  val size : t -> int
  (** Worker domains requested at creation. *)

  val wakeups : t -> int
  (** Worker-loop passes so far.  On a condvar-parked pool this tracks
      the number of tasks executed (plus one final pass per worker at
      shutdown) — the busy-wait regression metric. *)

  val crashes : t -> int
  (** Tasks that raised (absorbed, worker kept running). *)

  val executed : t -> int
  (** Tasks run to completion (including ones that raised). *)

  val respawns : t -> int
  (** Executor recoveries performed by the watchdog: loop restarts after
      an executor death plus spawn top-ups on submit. *)

  val spawn_failures : t -> int
  (** [Domain.spawn] attempts that failed (real or injected). *)

  val live_workers : t -> int
  (** Worker domains currently spawned (≤ {!size}). *)

  val wait_idle : t -> unit
  (** Block until no task is queued or running. *)

  val shutdown : t -> unit
  (** Stop accepting work, let queued tasks finish, join every worker
      domain.  Idempotent; concurrent {!submit}s answer [`Closed]. *)
end
