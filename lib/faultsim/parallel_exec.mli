open Dynmos_sim

(** Domain-parallel fault-simulation core (OCaml 5 [Domain]s, no
    Domainslib): chunked work-stealing over fault-injection jobs via a
    single atomic cursor.  The compiled netlist and packed pattern data
    are shared read-only; each domain owns a private [Compiled.scratch]
    and writes only its claimed jobs' result slots.

    [Faultsim.run_domain_parallel] is the high-level entry point; this
    module is exposed for callers that carry their own fault-site
    representation. *)

type job = {
  jid : int;              (** slot in the result array *)
  gate_id : int;          (** netlist gate whose function is overridden *)
  fn : Compiled.gate_fn;  (** compiled faulty function *)
}

type inner = Serial | Bit_parallel  (** per-site evaluation kernel *)

val word_bits : int
(** Patterns per machine word in the [Bit_parallel] kernel (62). *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run :
  ?drop:bool ->
  ?inner:inner ->
  ?num_domains:int ->
  Compiled.t ->
  job array ->
  bool array array ->
  int option array
(** [run compiled jobs patterns] returns, per [jid], the index of the
    first pattern whose primary outputs differ under the job's override —
    bit-identical to the serial engine for every [inner], [num_domains]
    and [drop] setting ([drop] only skips work after a site's first
    detection, never changes results).  [num_domains] defaults to
    [default_domains ()]; [inner] defaults to [Bit_parallel]. *)
