module Obs = Dynmos_obs.Obs
module Chaos = Dynmos_chaos.Chaos

(* The unified campaign driver.

   Every fault-simulation engine is "run a universe of faults against a
   pattern source and report detection"; what differs is only the inner
   evaluation kernel.  The five public engines used to each re-implement
   the campaign policies — limits, checkpoint write/resume, supervision,
   obs accounting, fault dropping, the all-detected early exit — and
   that duplication is where drift bugs lived (the deductive/concurrent
   engines never gained the cone restriction; eval accounting semantics
   differed subtly per engine).  This module implements each policy
   exactly once:

   - {!run_patterns} drives a pattern-sweep {!Kernel.t} (serial,
     bit-parallel, deductive, concurrent) one pattern unit at a time;
   - {!run_sites} drives the site-sweep domains engine over the
     supervised work-stealing pool, owning the same checkpoint, gauge,
     outcome and obs plumbing.

   Limits precedence is fixed by [Limits.check]'s polling order
   (interrupt > deadline > max_evals) and both drivers poll the same
   gauge, so every engine resolves simultaneous limits identically. *)

type summary = {
  n_sites : int;
  n_patterns : int;
  first_detection : int option array;  (* per site: index of first detecting pattern *)
  outcome : Outcome.t;       (* did the campaign finish, and if not, why *)
  patterns_done : int;       (* patterns completed for every live site
                                (pattern-sweep engines; the site-sweep
                                domains engine reports [n_patterns] when
                                complete and 0 on a partial stop —
                                its progress lives in [sites_done]) *)
  sites_done : int;          (* sites whose result is final *)
}

let detected_count first =
  Array.fold_left (fun acc d -> match d with Some _ -> acc + 1 | None -> acc) 0 first

(* --- Observability -------------------------------------------------------- *)

(* Per-run totals: the driver tallies plain ints (an int add is noise
   next to a netlist evaluation) and emits one "faultsim.run" event when
   the recorder is enabled; a disabled recorder costs the [Obs.enabled]
   branch and never reads the clock.  The "evals" field counts kernel
   evaluations under one driver-level definition — one per live site per
   pattern unit — identical across every pattern-sweep engine on the
   same campaign; "evals_saved" counts the site x unit evaluations
   skipped by fault dropping or the all-detected early exit.  Gate-level
   work (where the cone restriction shows up) is reported separately as
   "gate_evals". *)

let start_time obs = if Obs.enabled obs then Obs.now () else 0.0

let emit_run obs ~engine ~n_sites ~n_patterns ?(outcome = Outcome.Complete) ?(patterns_done = 0)
    ?(sites_done = 0) ~t0 fields =
  if Obs.enabled obs then
    Obs.emit obs ~ev:"faultsim.run"
      (("engine", Obs.String engine)
      :: ("sites", Obs.Int n_sites)
      :: ("patterns", Obs.Int n_patterns)
      :: ("outcome", Obs.String (Outcome.to_string outcome))
      :: ("patterns_done", Obs.Int patterns_done)
      :: ("sites_done", Obs.Int sites_done)
      :: ("dt_s", Obs.Float (Obs.now () -. t0))
      :: fields)

let emit_site_failed obs ~engine failed_sites =
  if Obs.enabled obs then
    List.iter
      (fun (sid, msg) ->
        Obs.emit obs ~ev:"faultsim.site_failed"
          [ ("engine", Obs.String engine); ("sid", Obs.Int sid); ("error", Obs.String msg) ])
      failed_sites

let emit_checkpoint obs ~engine ctl ~units_done =
  if Obs.enabled obs then
    Obs.emit obs ~ev:"faultsim.checkpoint"
      [
        ("engine", Obs.String engine);
        ("path", Obs.String (Checkpoint.path ctl));
        ("units_done", Obs.Int units_done);
        ("writes", Obs.Int (Checkpoint.writes ctl));
      ]

(* --- Shared plumbing ------------------------------------------------------- *)

let make_gauge ?deadline ?max_evals ?interrupt () =
  Limits.gauge (Limits.make ?deadline ?max_evals ?interrupt ())

let default_max_attempts = Parallel_exec.default_max_attempts

(* Preload a patterns-mode resume state: trusted detections are blitted
   in and the scan continues after the last fully-completed pattern. *)
let preload_patterns ~engine checkpoint (first : int option array) =
  match checkpoint with
  | None -> 0
  | Some ctl -> (
      Checkpoint.require_mode ctl Checkpoint.Patterns ~engine;
      match Checkpoint.resume_state ctl with
      | None -> 0
      | Some st ->
          Array.blit st.Checkpoint.first_detection 0 first 0 (Array.length first);
          st.Checkpoint.units_done)

let tick_patterns checkpoint ~obs ~engine ~units_done ~first =
  match checkpoint with
  | None -> ()
  | Some ctl ->
      if Checkpoint.tick ctl ~mode:Checkpoint.Patterns ~units_done ~first_detection:first ()
      then emit_checkpoint obs ~engine ctl ~units_done

let finalize_patterns checkpoint ~obs ~engine ~units_done ~first =
  match checkpoint with
  | None -> ()
  | Some ctl ->
      Checkpoint.finalize ctl ~mode:Checkpoint.Patterns ~units_done ~first_detection:first ();
      emit_checkpoint obs ~engine ctl ~units_done

(* --- Pattern-sweep driver --------------------------------------------------- *)

let run_patterns ?(drop = true) ?(obs = Obs.disabled) ?deadline ?max_evals ?interrupt
    ?checkpoint ?(max_attempts = default_max_attempts) ?(backoff = Parallel_exec.Backoff.default)
    ?(chaos = Chaos.disabled) ?(crash_hook = fun (_ : int) -> ())
    ?(on_progress = fun ~units_done:(_ : int) ~detected:(_ : int) -> ()) ~n_sites:n ~total
    (kernel : Kernel.t) =
  let t0 = start_time obs in
  let engine = kernel.Kernel.name in
  let first = Array.make n None in
  let failed = Array.make n false in
  let dropped = Array.make n false in
  let attempts = Array.make n 0 in
  let failures = ref [] in
  let undetected = ref n in
  let evals = ref 0 and saved = ref 0 in
  let work = ref 0 in
  let retries = ref 0 in
  let backoff_sleeps = ref 0 in
  let backoff_prng = Dynmos_util.Prng.create 0x0b0f (* jitter only; never affects results *) in
  let gauge = make_gauge ?deadline ?max_evals ?interrupt () in
  let pos = ref (preload_patterns ~engine checkpoint first) in
  Array.iteri
    (fun i d ->
      if d <> None then begin
        decr undetected;
        if drop then dropped.(i) <- true
      end)
    first;
  let detect ~sid ~pat =
    if first.(sid) = None then begin
      first.(sid) <- Some pat;
      decr undetected;
      if drop then dropped.(sid) <- true
    end
  in
  (* Bounded retry at this very unit, so a transient crash cannot skip a
     pattern and move the site's first detection; a mid-cone exception
     leaves shared scratch dirty, which [restore] repairs before anyone
     reads it again.  Retries back off exponentially with jitter (pass
     [Backoff.none] for the old immediate behavior); the [exec.job]
     chaos tap sits beside [crash_hook], inside the supervised region,
     so injected faults exercise exactly this path. *)
  let supervise ~sid ~restore f =
    let rec attempt () =
      match
        crash_hook sid;
        Chaos.tap chaos Chaos.Exec_job;
        f ()
      with
      | v -> Some v
      | exception exn ->
          restore ();
          attempts.(sid) <- attempts.(sid) + 1;
          if attempts.(sid) >= max_attempts then begin
            failed.(sid) <- true;
            failures := (sid, Printexc.to_string exn) :: !failures;
            None
          end
          else begin
            incr retries;
            if
              Parallel_exec.Backoff.sleep backoff backoff_prng ~attempt:attempts.(sid) > 0.0
            then incr backoff_sleeps;
            attempt ()
          end
    in
    attempt ()
  in
  let ctx = { Kernel.drop; first; failed; dropped; work; detect; supervise } in
  let stopping = ref false in
  (* Early exit: once every site is detected (and dropping is on), the
     remaining patterns can neither detect anything new nor simulate
     anything — skip them entirely. *)
  while !pos < total && (not (drop && !undetected = 0)) && not !stopping do
    let len = kernel.Kernel.unit_len ~start:!pos in
    (* Unified accounting, decided before the kernel runs: one kernel
       evaluation per live site per unit; a dropped site's unit is
       saved; a failed site is out of both counts. *)
    for sid = 0 to n - 1 do
      if failed.(sid) then ()
      else if drop && first.(sid) <> None then incr saved
      else incr evals
    done;
    let w0 = !work in
    kernel.Kernel.run_unit ctx ~start:!pos ~len;
    pos := !pos + len;
    Limits.add_evals gauge (!work - w0);
    if Limits.check gauge then stopping := true;
    tick_patterns checkpoint ~obs ~engine ~units_done:!pos ~first;
    on_progress ~units_done:!pos ~detected:(n - !undetected)
  done;
  let live = n - Array.fold_left (fun a f -> if f then a + 1 else a) 0 failed in
  if !pos < total && not !stopping then
    saved := !saved + (live * kernel.Kernel.units_remaining ~start:!pos);
  finalize_patterns checkpoint ~obs ~engine ~units_done:!pos ~first;
  let failed_sites = List.sort compare !failures in
  let outcome = Outcome.make ?stopped:(Limits.stopped gauge) ~failed_sites () in
  (* A stopped pattern sweep has resolved exactly the detected sites (a
     detection is final once found; undetected sites still had patterns
     to see); a finished sweep has resolved everything but the failed
     sites. *)
  let sites_done =
    if !stopping then detected_count first else n - List.length failed_sites
  in
  emit_site_failed obs ~engine failed_sites;
  emit_run obs ~engine ~n_sites:n ~n_patterns:total ~outcome ~patterns_done:!pos ~sites_done
    ~t0
    (("evals", Obs.Int !evals)
    :: ("evals_saved", Obs.Int !saved)
    :: ("retries", Obs.Int !retries)
    :: ("backoff_sleeps", Obs.Int !backoff_sleeps)
    :: ("chaos_injected", Obs.Int (Chaos.injected chaos))
    :: kernel.Kernel.obs_fields
         { Kernel.evals = !evals; evals_saved = !saved; work = !work });
  { n_sites = n; n_patterns = total; first_detection = first; outcome; patterns_done = !pos;
    sites_done }

(* --- Site-sweep driver (domains engine) ------------------------------------- *)

(* The multicore engine sweeps *sites*, not patterns, over the
   supervised work-stealing pool; per-site retry and cross-domain
   degradation are delegated to [Parallel_exec.run_supervised] (they are
   inherently pool-level), but the campaign policies — checkpoint
   preload/tick/finalize, gauge creation, outcome assembly, obs
   emission — live here, in the same driver layer as the pattern-sweep
   engines.  Site-mode checkpoints carry a done bitmap plus the done
   sites' detections; on resume, done sites are preloaded and their jobs
   never submitted to the pool (idempotent — a site's scan has no
   cross-site state).  Progress snapshots are taken from inside the
   pool's progress mutex, which orders them after the detections they
   cover. *)

let run_sites ?drop ?inner ?algo ?num_domains ?min_work_per_domain ?(obs = Obs.disabled)
    ?deadline ?max_evals ?interrupt ?checkpoint ?max_attempts ?backoff ?crash_hook
    ?(on_progress = fun ~units_done:(_ : int) ~detected:(_ : int) -> ())
    ?(extra_fields = []) compiled (jobs : Parallel_exec.job array) patterns =
  let t0 = start_time obs in
  let n = Array.length jobs in
  let total = Array.length patterns in
  let first = Array.make n None in
  let done_mask = Array.make n false in
  (match checkpoint with
  | None -> ()
  | Some ctl -> (
      Checkpoint.require_mode ctl Checkpoint.Sites ~engine:"domains";
      match Checkpoint.resume_state ctl with
      | None -> ()
      | Some st -> (
          match st.Checkpoint.site_done with
          | None -> ()
          | Some d ->
              Array.iteri
                (fun i dn ->
                  if dn then begin
                    done_mask.(i) <- true;
                    first.(i) <- st.Checkpoint.first_detection.(i)
                  end)
                d)));
  let pending =
    jobs
    |> Array.to_seq
    |> Seq.filter (fun j -> not done_mask.(j.Parallel_exec.jid))
    |> Array.of_seq
  in
  let gauge = make_gauge ?deadline ?max_evals ?interrupt () in
  (* Both callbacks run under the pool's progress mutex, which makes the
     detected count read consistent with the sites just marked done. *)
  let pool_progress ~sites_done =
    (match checkpoint with
    | None -> ()
    | Some ctl ->
        if
          Checkpoint.tick ctl ~mode:Checkpoint.Sites ~units_done:sites_done
            ~first_detection:first ~site_done:done_mask ()
        then emit_checkpoint obs ~engine:"domains" ctl ~units_done:sites_done);
    on_progress ~units_done:sites_done ~detected:(detected_count first)
  in
  let rfirst, report, stats =
    Parallel_exec.run_supervised ?drop ?inner ?algo ?num_domains ?min_work_per_domain ~obs
      ~gauge ?max_attempts ?backoff ?crash_hook ~first ~done_mask ~on_progress:pool_progress
      compiled pending patterns
  in
  assert (rfirst == first);
  (match checkpoint with
  | None -> ()
  | Some ctl ->
      Checkpoint.finalize ctl ~mode:Checkpoint.Sites
        ~units_done:report.Parallel_exec.sites_done ~first_detection:first
        ~site_done:done_mask ();
      emit_checkpoint obs ~engine:"domains" ctl ~units_done:report.Parallel_exec.sites_done);
  let outcome =
    Outcome.make ?stopped:report.Parallel_exec.stopped
      ~failed_sites:report.Parallel_exec.failed_sites ()
  in
  let sites_done = report.Parallel_exec.sites_done in
  let patterns_done = if Outcome.is_complete outcome then total else 0 in
  emit_site_failed obs ~engine:"domains" report.Parallel_exec.failed_sites;
  emit_run obs ~engine:"domains" ~n_sites:n ~n_patterns:total ~outcome ~patterns_done
    ~sites_done ~t0
    ([
       ("algo", Obs.String (Parallel_exec.algo_name stats.Parallel_exec.algo_used));
       ("evals", Obs.Int (Parallel_exec.stats_evals stats));
       ("evals_saved", Obs.Int (Parallel_exec.stats_evals_saved stats));
       ("gate_evals", Obs.Int (Parallel_exec.stats_gate_evals stats));
     ]
    @ extra_fields
    @ [
        ("effective_domains", Obs.Int stats.Parallel_exec.effective_domains);
        ("retries", Obs.Int report.Parallel_exec.retries);
        ("spawn_failures", Obs.Int report.Parallel_exec.spawn_failures);
        ("worker_crashes", Obs.Int report.Parallel_exec.worker_crashes);
        ("backoff_sleeps", Obs.Int report.Parallel_exec.backoff_sleeps);
      ]);
  ( { n_sites = n; n_patterns = total; first_detection = first; outcome; patterns_done;
      sites_done },
    report,
    stats )
