open Dynmos_sim

(** The unified campaign driver.

    One implementation of every campaign policy — {!Limits} (precedence
    interrupt > deadline > budget, fixed by the gauge's polling order),
    {!Checkpoint} write/resume, supervision/retry, obs events, fault
    dropping and the all-detected early exit — shared by all five public
    engines.  Kernels ({!Kernel.t}) carry only evaluation mechanics.

    [Faultsim.run_serial] / [run_parallel] / [run_deductive] /
    [run_concurrent] are thin wrappers over {!run_patterns};
    [Faultsim.run_domain_parallel] wraps {!run_sites}. *)

type summary = {
  n_sites : int;
  n_patterns : int;
  first_detection : int option array;
  outcome : Outcome.t;
  patterns_done : int;
  sites_done : int;
}

val detected_count : int option array -> int

val run_patterns :
  ?drop:bool ->
  ?obs:Dynmos_obs.Obs.t ->
  ?deadline:float ->
  ?max_evals:int ->
  ?interrupt:(unit -> bool) ->
  ?checkpoint:Checkpoint.ctl ->
  ?max_attempts:int ->
  ?backoff:Parallel_exec.Backoff.t ->
  ?chaos:Dynmos_chaos.Chaos.t ->
  ?crash_hook:(int -> unit) ->
  ?on_progress:(units_done:int -> detected:int -> unit) ->
  n_sites:int ->
  total:int ->
  Kernel.t ->
  summary
(** Drive a pattern-sweep kernel over [total] patterns.  The driver owns
    the per-site detection state, the drop/early-exit decisions, the
    unified [evals]/[evals_saved] accounting (one kernel evaluation per
    live site per pattern unit), checkpoint preload/tick/finalize in
    [Patterns] mode, the limits gauge (fed the kernel's gate-level work
    at unit boundaries) and the ["faultsim.run"] obs emission.

    Supervised retries back off exponentially with jitter ([backoff],
    default [Parallel_exec.Backoff.default]); [chaos] (default disabled)
    arms the [exec.job] injection point inside the supervised region, so
    injected faults exercise the retry path itself.

    [on_progress] (default no-op) is called after every pattern unit
    with the patterns completed so far and the running detection count —
    the streaming hook the serve loop uses.  It runs on the sweeping
    domain; keep it cheap and never let it raise. *)

val run_sites :
  ?drop:bool ->
  ?inner:Parallel_exec.inner ->
  ?algo:[ `Full | `Cone ] ->
  ?num_domains:int ->
  ?min_work_per_domain:int ->
  ?obs:Dynmos_obs.Obs.t ->
  ?deadline:float ->
  ?max_evals:int ->
  ?interrupt:(unit -> bool) ->
  ?checkpoint:Checkpoint.ctl ->
  ?max_attempts:int ->
  ?backoff:Parallel_exec.Backoff.t ->
  ?crash_hook:(int -> unit) ->
  ?on_progress:(units_done:int -> detected:int -> unit) ->
  ?extra_fields:(string * Dynmos_obs.Obs.value) list ->
  Compiled.t ->
  Parallel_exec.job array ->
  bool array array ->
  summary * Parallel_exec.report * Parallel_exec.stats
(** Drive the site-sweep domains engine: checkpoint preload/tick/
    finalize in [Sites] mode, gauge creation, outcome assembly and obs
    emission live here; per-site retry and cross-domain degradation are
    delegated to {!Parallel_exec.run_supervised} (inherently
    pool-level).  [jobs] must carry dense [jid]s ([0..n-1]); jobs whose
    site a resumed checkpoint already completed are not re-submitted.
    [extra_fields] is appended to the ["faultsim.run"] obs event.

    [on_progress] here reports {e sites} done (this engine sweeps
    sites), with the detected count read under the pool's progress
    mutex.  It may be called from any worker domain. *)
