(* Campaign outcomes.

   Every fault-simulation run now reports not just what it detected but
   whether it finished: a campaign cut short by a wall-clock deadline, an
   evaluation budget, a cooperative interrupt (Ctrl-C) or repeatedly
   crashing fault-site jobs returns [Partial] instead of raising — the
   detections gathered so far are always preserved.  [Complete] means
   every site saw every pattern (or was fault-dropped after its first
   detection, which is result-equivalent). *)

type stop_cause = Deadline | Max_evals | Interrupted

type partial = {
  stopped : stop_cause option;
  failed_sites : (int * string) list;
}

type t = Complete | Partial of partial

let stop_cause_name = function
  | Deadline -> "deadline"
  | Max_evals -> "max_evals"
  | Interrupted -> "interrupted"

let is_complete = function Complete -> true | Partial _ -> false

let make ?stopped ?(failed_sites = []) () =
  match (stopped, failed_sites) with
  | None, [] -> Complete
  | stopped, failed_sites -> Partial { stopped; failed_sites }

let to_string = function
  | Complete -> "complete"
  | Partial { stopped; failed_sites } ->
      let parts =
        (match stopped with Some c -> [ "stopped=" ^ stop_cause_name c ] | None -> [])
        @
        match failed_sites with
        | [] -> []
        | l -> [ Printf.sprintf "failed_sites=%d" (List.length l) ]
      in
      "partial(" ^ String.concat "," parts ^ ")"

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* CLI convention: 0 = complete campaign, 2 = partial results delivered.
   (130 — interrupted by SIGINT/SIGTERM — is decided by the CLI itself,
   which knows whether the stop came from a signal.) *)
let exit_code = function Complete -> 0 | Partial _ -> 2
