(** Execution limits for fault-simulation campaigns: wall-clock deadline,
    gate-evaluation budget, cooperative interrupt.

    Engines poll a shared {!gauge} at pattern-unit / scheduling
    boundaries; when a limit trips they stop cleanly and return
    [Outcome.Partial] with the detections gathered so far.  The gauge is
    domain-safe ([Atomic.t] counter and cause), so the parallel pool's
    workers share one.  Precedence when several limits trip at once:
    interrupt > deadline > evaluation budget. *)

type t

val none : t

val make :
  ?deadline:float -> ?max_evals:int -> ?interrupt:(unit -> bool) -> unit -> t
(** [deadline] is absolute epoch seconds ([Unix.gettimeofday]-based);
    [max_evals] is a budget in {e gate evaluations} (the innermost work
    unit, the same metric as [Parallel_exec.stats_gate_evals]) and must
    be positive; [interrupt] is polled and should be cheap (read an
    [Atomic.t] flag). *)

val is_none : t -> bool

type gauge
(** Shared mutable limit state for one run. *)

val gauge : t -> gauge

val add_evals : gauge -> int -> unit
(** Account [n] gate evaluations.  No-op when no budget is set. *)

val evals : gauge -> int

val check : gauge -> bool
(** [true] when the run should stop.  The first limit observed tripping
    is recorded as the {!stopped} cause; engines may overshoot by at
    most one scheduling unit (a pattern, a chunk, or a claimed block)
    between polls. *)

val stopped : gauge -> Outcome.stop_cause option

val trip : gauge -> Outcome.stop_cause -> unit
(** Force a stop cause (first writer wins) — used by tests and by
    engines that detect a condition outside {!check}. *)
