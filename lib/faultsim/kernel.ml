(* Driver/kernel interface types of the unified campaign driver; see
   kernel.mli.  Pure data — the driver logic is in campaign.ml and the
   kernel implementations in faultsim.ml. *)

type ctx = {
  drop : bool;
  first : int option array;
  failed : bool array;
  dropped : bool array;
  work : int ref;
  detect : sid:int -> pat:int -> unit;
  supervise : sid:int -> restore:(unit -> unit) -> (unit -> int) -> int option;
}

type totals = { evals : int; evals_saved : int; work : int }

type t = {
  name : string;
  unit_len : start:int -> int;
  units_remaining : start:int -> int;
  run_unit : ctx -> start:int -> len:int -> unit;
  obs_fields : totals -> (string * Dynmos_obs.Obs.value) list;
}
