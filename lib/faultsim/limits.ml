(* Execution limits for fault-simulation campaigns.

   A campaign can be bounded three ways: a wall-clock deadline (absolute
   epoch seconds — the CLI converts a relative [--deadline SEC] before
   calling), a gate-evaluation budget, and a cooperative interrupt
   callback (the CLI's signal handler sets an [Atomic.t] flag the
   callback reads).  Engines poll {!check} at pattern-unit / scheduling
   boundaries and stop *cleanly* when it trips: the run returns
   [Outcome.Partial] with every detection gathered so far instead of
   raising.

   The gauge is shared across the domains of the parallel pool, so the
   counter and the tripped cause are [Atomic.t]: the first domain to
   observe a tripped limit publishes the cause with [compare_and_set]
   and every later poll sees it.  Polling order fixes the precedence
   when several limits trip in the same window:
   interrupt > deadline > max_evals. *)

type t = {
  deadline : float option;
  max_evals : int option;
  interrupt : (unit -> bool) option;
}

let none = { deadline = None; max_evals = None; interrupt = None }

let make ?deadline ?max_evals ?interrupt () =
  (match max_evals with
  | Some n when n < 1 ->
      invalid_arg (Printf.sprintf "Limits.make: max_evals must be >= 1 (got %d)" n)
  | _ -> ());
  { deadline; max_evals; interrupt }

let is_none l = l.deadline = None && l.max_evals = None && l.interrupt = None

type gauge = {
  limits : t;
  evals : int Atomic.t;
  cause : Outcome.stop_cause option Atomic.t;
}

let gauge limits = { limits; evals = Atomic.make 0; cause = Atomic.make None }

let add_evals g n =
  (* the counter only matters when a budget is set; skip the atomic
     traffic on unbounded runs *)
  if g.limits.max_evals <> None && n > 0 then ignore (Atomic.fetch_and_add g.evals n)

let evals g = Atomic.get g.evals
let stopped g = Atomic.get g.cause

let trip g cause = ignore (Atomic.compare_and_set g.cause None (Some cause))

let check g =
  match Atomic.get g.cause with
  | Some _ -> true
  | None ->
      (match g.limits.interrupt with
      | Some f when f () -> trip g Outcome.Interrupted
      | _ -> ());
      (if Atomic.get g.cause = None then
         match g.limits.deadline with
         | Some d when Unix.gettimeofday () >= d -> trip g Outcome.Deadline
         | _ -> ());
      (if Atomic.get g.cause = None then
         match g.limits.max_evals with
         | Some m when Atomic.get g.evals >= m -> trip g Outcome.Max_evals
         | _ -> ());
      Atomic.get g.cause <> None
