(* Campaign checkpoints: serialize fault-simulation progress to a
   versioned file so an interrupted run (crash, SIGINT, deadline) can be
   resumed bit-identically instead of being thrown away.

   Design constraints:
   - *atomic*: the state is written to a sibling temporary file and
     published with [Sys.rename], so a reader never observes a
     half-written checkpoint, even if the writer is killed mid-write;
   - *self-validating*: a trailing MD5 checksum over the payload detects
     truncation or corruption at load time (a torn tmp file left behind
     by a crash is never the published checkpoint);
   - *digest-pinned*: the circuit, fault-universe and pattern digests of
     the producing campaign are stored, and resume refuses to continue
     against different ones — silently mixing campaigns would produce
     confidently wrong coverage;
   - *engine-honest*: pattern-sweep engines (serial, bit-parallel,
     deductive, concurrent) checkpoint "patterns 0..K done for every
     site"; the site-sweep domains engine checkpoints "these sites fully
     done".  The [mode] field keeps the two from being resumed by the
     wrong kind of engine.

   The format is deliberately plain text (one [key value] line each, the
   detection array space-separated) rather than [Marshal]: it survives
   compiler upgrades, is inspectable with [cat], and parsing failures
   produce named errors instead of segfaults. *)

module Chaos = Dynmos_chaos.Chaos

exception Error of string

let version = 1

type mode = Patterns | Sites

let mode_name = function Patterns -> "patterns" | Sites -> "sites"

type state = {
  mode : mode;
  circuit_digest : string;
  universe_digest : string;
  pattern_digest : string;
  n_sites : int;
  n_patterns : int;
  units_done : int;
  first_detection : int option array;
  site_done : bool array option;
  prng_state : string option;
}

let fail fmt = Format.kasprintf (fun msg -> raise (Error msg)) fmt

(* --- Serialization ---------------------------------------------------------- *)

let payload st =
  let buf = Buffer.create (256 + (8 * st.n_sites)) in
  let line fmt = Format.kasprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  line "dynmos-checkpoint v%d" version;
  line "mode %s" (mode_name st.mode);
  line "circuit %s" st.circuit_digest;
  line "universe %s" st.universe_digest;
  line "patterns %s" st.pattern_digest;
  line "n_sites %d" st.n_sites;
  line "n_patterns %d" st.n_patterns;
  line "units_done %d" st.units_done;
  (match st.prng_state with Some s -> line "prng %s" s | None -> ());
  line "first %s"
    (String.concat " "
       (Array.to_list
          (Array.map (function None -> "-" | Some p -> string_of_int p) st.first_detection)));
  (match st.site_done with
  | Some d ->
      line "done %s" (String.init (Array.length d) (fun i -> if d.(i) then '1' else '0'))
  | None -> ());
  Buffer.contents buf

let save ?(chaos = Chaos.disabled) path st =
  let body = payload st in
  let body = body ^ Printf.sprintf "checksum %s\n" (Digest.to_hex (Digest.string body)) in
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  (match Chaos.decide chaos Chaos.Ckpt_write with
  | Chaos.Pass -> ()
  | Chaos.Fail -> fail "checkpoint: injected write failure for %s" tmp
  | Chaos.Torn ->
      (* Simulate a crash mid-write: a truncated tmp file stays behind
         (its checksum can never validate), exactly what [cleanup_stale]
         and the [.bak] fallback exist to absorb. *)
      let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
      output_string oc (String.sub body 0 (String.length body / 2));
      close_out_noerr oc;
      fail "checkpoint: injected torn write to %s" tmp);
  let oc =
    try open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp
    with Sys_error msg -> fail "checkpoint: cannot write %s: %s" tmp msg
  in
  (try
     output_string oc body;
     flush oc;
     (* fsync before rename: without it a power loss can publish a name
        pointing at data the disk never received — the classic torn-rename
        window.  An injected fsync fault silently skips the sync (the
        write still "works"), modeling exactly that window. *)
     (match Chaos.decide chaos Chaos.Ckpt_fsync with
     | Chaos.Pass -> (
         try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ())
     | Chaos.Fail | Chaos.Torn -> ());
     close_out oc
   with Sys_error msg ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     fail "checkpoint: short write to %s: %s" tmp msg);
  (* Rotate the last good checkpoint to [.bak] before publishing, so a
     later corruption of the primary still leaves a resumable state. *)
  (if Sys.file_exists path then try Sys.rename path (path ^ ".bak") with Sys_error _ -> ());
  (match Chaos.decide chaos Chaos.Ckpt_rename with
  | Chaos.Pass -> ()
  | Chaos.Fail | Chaos.Torn ->
      (try Sys.remove tmp with Sys_error _ -> ());
      fail "checkpoint: injected rename failure publishing %s" path);
  try Sys.rename tmp path
  with Sys_error msg ->
    (try Sys.remove tmp with Sys_error _ -> ());
    fail "checkpoint: cannot publish %s: %s" path msg

let load path =
  let ic =
    try open_in_bin path with Sys_error msg -> fail "checkpoint: cannot read %s: %s" path msg
  in
  let raw =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  (* split the trailing checksum line off and verify it first: any
     truncation or bit-rot is reported as such, not as a parse error *)
  let body, sum =
    match String.rindex_opt (String.trim raw) '\n' with
    | None -> fail "checkpoint %s: not a checkpoint file" path
    | Some i ->
        let raw = String.trim raw in
        (String.sub raw 0 (i + 1), String.sub raw (i + 1) (String.length raw - i - 1))
  in
  (match String.split_on_char ' ' sum with
  | [ "checksum"; hex ] ->
      if not (String.equal hex (Digest.to_hex (Digest.string body))) then
        fail "checkpoint %s: checksum mismatch (truncated or corrupted file)" path
  | _ -> fail "checkpoint %s: missing checksum line (truncated file?)" path);
  let lines = String.split_on_char '\n' body |> List.filter (fun l -> l <> "") in
  let kv =
    List.map
      (fun l ->
        match String.index_opt l ' ' with
        | Some i -> (String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1))
        | None -> (l, ""))
      lines
  in
  let get k =
    match List.assoc_opt k kv with
    | Some v -> v
    | None -> fail "checkpoint %s: missing field %S" path k
  in
  let get_int k =
    match int_of_string_opt (get k) with
    | Some n -> n
    | None -> fail "checkpoint %s: field %S is not an integer (%S)" path k (get k)
  in
  (match get "dynmos-checkpoint" with
  | "v1" -> ()
  | v -> fail "checkpoint %s: unsupported version %s (this build reads v%d)" path v version);
  let mode =
    match get "mode" with
    | "patterns" -> Patterns
    | "sites" -> Sites
    | m -> fail "checkpoint %s: unknown mode %S" path m
  in
  let n_sites = get_int "n_sites" in
  let n_patterns = get_int "n_patterns" in
  let units_done = get_int "units_done" in
  if n_sites < 0 || n_patterns < 0 || units_done < 0 then
    fail "checkpoint %s: negative counts" path;
  let first_detection =
    let words =
      String.split_on_char ' ' (get "first") |> List.filter (fun w -> w <> "") |> Array.of_list
    in
    if Array.length words <> n_sites then
      fail "checkpoint %s: %d detection entries for %d sites" path (Array.length words) n_sites;
    Array.map
      (fun w ->
        if w = "-" then None
        else
          match int_of_string_opt w with
          | Some p when p >= 0 && p < n_patterns -> Some p
          | Some p -> fail "checkpoint %s: detection index %d out of range" path p
          | None -> fail "checkpoint %s: bad detection entry %S" path w)
      words
  in
  let site_done =
    match List.assoc_opt "done" kv with
    | None -> None
    | Some bits ->
        if String.length bits <> n_sites then
          fail "checkpoint %s: %d done bits for %d sites" path (String.length bits) n_sites;
        Some
          (Array.init n_sites (fun i ->
               match bits.[i] with
               | '1' -> true
               | '0' -> false
               | c -> fail "checkpoint %s: bad done bit %C" path c))
  in
  (match (mode, site_done) with
  | Sites, None -> fail "checkpoint %s: site-sweep checkpoint has no done bitmap" path
  | _ -> ());
  {
    mode;
    circuit_digest = get "circuit";
    universe_digest = get "universe";
    pattern_digest = get "patterns";
    n_sites;
    n_patterns;
    units_done;
    first_detection;
    site_done;
    prng_state = List.assoc_opt "prng" kv;
  }

let load_or_backup path =
  (* Reject-then-fallback: a corrupt (or mid-rotation missing) primary
     does not kill the resume when the previous snapshot is still valid.
     The primary's own error is preserved when both fail — it names the
     file the user asked about. *)
  match load path with
  | st -> (st, false)
  | exception Error primary_err -> (
      match load (path ^ ".bak") with
      | st -> (st, true)
      | exception Error _ -> raise (Error primary_err))

let cleanup_stale path =
  (* Remove [<path>.tmp.<pid>] leftovers from writers that crashed between
     opening the tmp file and publishing it.  Called when a campaign
     starts or resumes; by construction no live writer for [path] exists
     then, so every matching sibling is garbage. *)
  let dir = Filename.dirname path in
  let prefix = Filename.basename path ^ ".tmp." in
  let plen = String.length prefix in
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | entries ->
      Array.fold_left
        (fun n entry ->
          if String.length entry > plen && String.sub entry 0 plen = prefix then (
            try
              Sys.remove (Filename.concat dir entry);
              n + 1
            with Sys_error _ -> n)
          else n)
        0 entries

(* --- Controllers ------------------------------------------------------------- *)

(* The mutable handle threaded into the engines.  [tick] throttles writes
   to every [interval] completed pattern-units (sites for the site-sweep
   mode); [finalize] always writes.  All writes go through one mutex so
   the domains engine's worker 0 and a pattern-sweep engine's single
   thread use the same code path. *)
type ctl = {
  path : string;
  interval : int;
  circuit_digest : string;
  universe_digest : string;
  pattern_digest : string;
  n_sites : int;
  n_patterns : int;
  prng_state : string option;
  resume : state option;
  resumed_from_backup : bool;
  chaos : Chaos.t;
  lock : Mutex.t;
  mutable last_units : int;
  mutable writes : int;
  mutable failed_writes : int;
  stale_cleaned : int;
}

let create ~path ~interval ?prng_state ?resume ?(resumed_from_backup = false)
    ?(chaos = Chaos.disabled) ~circuit_digest ~universe_digest ~pattern_digest ~n_sites
    ~n_patterns () =
  if interval < 1 then fail "checkpoint: interval must be >= 1 (got %d)" interval;
  let stale_cleaned = cleanup_stale path in
  (match (resume : state option) with
  | Some st ->
      if st.n_sites <> n_sites then
        fail "checkpoint %s: has %d sites, campaign has %d" path st.n_sites n_sites;
      if st.n_patterns <> n_patterns then
        fail "checkpoint %s: campaign length %d patterns, this run has %d" path st.n_patterns
          n_patterns;
      let pin what saved fresh =
        if not (String.equal saved fresh) then
          fail
            "checkpoint %s: %s digest mismatch (%s vs %s) — refusing to resume against a \
             different %s"
            path what saved fresh what
      in
      pin "circuit" st.circuit_digest circuit_digest;
      pin "universe" st.universe_digest universe_digest;
      pin "pattern" st.pattern_digest pattern_digest
  | None -> ());
  {
    path;
    interval;
    circuit_digest;
    universe_digest;
    pattern_digest;
    n_sites;
    n_patterns;
    prng_state;
    resume;
    resumed_from_backup;
    chaos;
    lock = Mutex.create ();
    last_units = (match resume with Some st -> st.units_done | None -> 0);
    writes = 0;
    failed_writes = 0;
    stale_cleaned;
  }

let resume_state ctl = ctl.resume
let resumed_from_backup ctl = ctl.resumed_from_backup
let interval ctl = ctl.interval
let path ctl = ctl.path
let writes ctl = ctl.writes
let failed_writes ctl = ctl.failed_writes
let stale_cleaned ctl = ctl.stale_cleaned

let require_mode ctl mode ~engine =
  match ctl.resume with
  | Some st when st.mode <> mode ->
      fail
        "checkpoint %s: written by a %s-sweep engine, but %s is a %s-sweep engine — resume \
         with a matching engine"
        ctl.path (mode_name st.mode) engine (mode_name mode)
  | _ -> ()

let write ctl ~mode ~units_done ~first_detection ~site_done =
  let st =
    {
      mode;
      circuit_digest = ctl.circuit_digest;
      universe_digest = ctl.universe_digest;
      pattern_digest = ctl.pattern_digest;
      n_sites = ctl.n_sites;
      n_patterns = ctl.n_patterns;
      units_done;
      first_detection = Array.copy first_detection;
      site_done = Option.map Array.copy site_done;
      prng_state = ctl.prng_state;
    }
  in
  save ~chaos:ctl.chaos ctl.path st;
  ctl.last_units <- units_done;
  ctl.writes <- ctl.writes + 1

let tick ctl ~mode ~units_done ~first_detection ?site_done () =
  Mutex.lock ctl.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock ctl.lock)
    (fun () ->
      if units_done - ctl.last_units >= ctl.interval then begin
        (* A failed interval write must not abort the campaign: the
           simulation result is unaffected, [last_units] stays put so the
           next tick retries, and the failure is counted for stats. *)
        match write ctl ~mode ~units_done ~first_detection ~site_done with
        | () -> true
        | exception Error _ ->
            ctl.failed_writes <- ctl.failed_writes + 1;
            false
      end
      else false)

let finalize ctl ~mode ~units_done ~first_detection ?site_done () =
  Mutex.lock ctl.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock ctl.lock)
    (fun () ->
      match write ctl ~mode ~units_done ~first_detection ~site_done with
      | () -> ()
      | exception Error _ ->
          (* One retry clears transient faults (an injected fail_once, a
             full tmpfs racing a cleanup); a persistent failure is
             absorbed and counted — the campaign's in-memory result is
             intact and the previous [.bak] remains resumable. *)
          ctl.failed_writes <- ctl.failed_writes + 1;
          (match write ctl ~mode ~units_done ~first_detection ~site_done with
          | () -> ()
          | exception Error _ -> ctl.failed_writes <- ctl.failed_writes + 1))
