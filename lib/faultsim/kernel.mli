(** The driver/kernel interface of the unified campaign driver.

    A kernel is one way of evaluating the fault universe over a span of
    patterns (serial, bit-parallel, deductive, concurrent — each
    optionally cone-restricted).  It owns only the evaluation mechanics;
    every campaign policy — limits, checkpointing, obs accounting, fault
    dropping, supervision/retry and the all-detected early exit — lives
    in {!Campaign.run_patterns}, which drives the kernel one pattern
    unit at a time through the services exposed in {!ctx}. *)

type ctx = {
  drop : bool;  (** fault dropping on: skip sites whose [first] is set *)
  first : int option array;
      (** per-site first detection — read-only to kernels; write through
          {!field-detect} so the driver's drop/early-exit state stays
          consistent *)
  failed : bool array;
      (** sites excluded by supervision; kernels must skip them *)
  dropped : bool array;
      (** [drop] && detected (including checkpoint-preloaded
          detections) — the engines that propagate all sites jointly
          read this mid-unit *)
  work : int ref;
      (** gate-level work counter: kernels add every gate(-function)
          evaluation they perform; the driver feeds the deltas to the
          [max_evals] budget gauge at unit boundaries *)
  detect : sid:int -> pat:int -> unit;
      (** record a detection (idempotent: only the first call per site
          sticks); maintains the undetected count and [dropped] *)
  supervise : sid:int -> restore:(unit -> unit) -> (unit -> int) -> int option;
      (** run one site evaluation under the driver's bounded-retry
          supervision: the crash hook fires before each attempt,
          [restore] repairs shared scratch state after an exception, and
          a persistently-raising site is marked [failed] and reported —
          [None] — instead of killing the campaign *)
}

type totals = {
  evals : int;        (** driver-counted kernel evaluations (site x unit) *)
  evals_saved : int;  (** evaluations skipped by dropping / early exit *)
  work : int;         (** final gate-level work counter *)
}
(** The driver's per-run accounting, handed to {!field-obs_fields} so a
    kernel can derive its extra obs fields from the unified totals. *)

type t = {
  name : string;  (** engine name used in obs events and checkpoint modes *)
  unit_len : start:int -> int;
      (** patterns consumed by the unit beginning at [start] (1 for the
          single-pattern engines; up to a word for bit-parallel) *)
  units_remaining : start:int -> int;
      (** units left from [start] — the early-exit saved accounting *)
  run_unit : ctx -> start:int -> len:int -> unit;
      (** evaluate every live site over patterns [start, start+len) *)
  obs_fields : totals -> (string * Dynmos_obs.Obs.value) list;
      (** kernel-specific obs fields (algo, gate-eval breakdowns, cone
          workload), appended to the driver's standard fields *)
}
