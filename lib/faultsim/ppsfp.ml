open Dynmos_sim
module Obs = Dynmos_obs.Obs

(* PPSFP: parallel-pattern x parallel-fault simulation.

   The bit-parallel engine packs 62 patterns into one machine word but
   still walks fault sites one at a time, re-entering the cube-decode
   loop per site per gate.  This kernel adds the second parallel axis: a
   *group* of G fault machines is simulated together against one pattern
   word, with all mutable state in a flat (net x lane) Bigarray word
   matrix (Compiled.word_matrix).  One cube-cover decode per gate is
   amortized over the whole group and the lane loop is unit-stride, so
   the marginal cost of a machine-gate evaluation drops to a strided
   and/or/not — the memory-layout win the ROADMAP's "raw speed" item
   asks for.

   Per pattern unit the kernel:

   1. evaluates the good machine once into an ordinary scratch array;
   2. per group, *probes* each machine's own faulty gate as a scalar
      against the good values (a machine's inputs at its own gate are
      upstream of the fault, hence good) — when no lane is activated
      the whole group is done at G gate evaluations, the same dominant
      saving the bit-parallel cone kernel gets per site;
   3. otherwise broadcasts the group's frontier nets (cone inputs
      produced outside the union fanout cone) from the good scratch
      into the matrix and sweeps the union cone once in topological
      order with [Compiled.eval_fn_rows], substituting each machine's
      probed faulty word into its own lane at its own gate;
   4. diffs each lane against the good machine over the cone's
      primary-output gates; the lowest set bit of the masked diff is
      the first detecting pattern.

   Correctness: machine l's lane starts from good frontier values and
   is evaluated with true gate functions everywhere except its own
   gate, so by induction over the topological order it equals the good
   machine outside the fanout cone of its own fault and equals the
   whole-circuit faulty machine inside it.  The PO diff is therefore
   bit-identical to the bit-parallel engine's — the frozen fixtures and
   the QCheck differential pin this.

   Fault dropping compacts groups: retired sites (dropped or failed)
   are removed and the survivors regrouped at unit boundaries, but only
   when the retired count actually changed — group construction (union
   cones, frontiers) is the only allocating part of the kernel and is
   skipped while the live set is stable.  The kernel propagates each
   group jointly, so like the deductive/concurrent engines it exposes
   no per-site supervision. *)

type fsite = { sid : int; gate : int; fn : Compiled.gate_fn }

type group = {
  lanes : fsite array;   (* ascending sid => non-decreasing gate id *)
  cone : int array;      (* union fanout cone, ascending (= topological) gate ids *)
  cone_po : int array;   (* cone gates whose output net is a primary output *)
  frontier : int array;  (* net indices read by the cone but produced outside it *)
}

let word_bits = 62

let algo_name = function `Full -> "full" | `Cone -> "cone"

let default_group = 16

let kernel ?(group = default_group) ?trace_site ~algo compiled (sites : fsite array)
    (patterns : bool array array) =
  if group < 1 then
    invalid_arg (Fmt.str "Ppsfp.kernel: group size must be >= 1 (got %d)" group);
  let n = Array.length sites in
  let n_inputs = Compiled.n_inputs compiled in
  let n_gates = Compiled.n_gates compiled in
  let cgates = Compiled.gates compiled in
  let total = Array.length patterns in
  let width = group in
  (* All buffers live for the whole campaign: the word matrix, the
     good-machine scratch, the packed PI words, per-lane probe and diff
     words, and the grouped-eval accumulator. *)
  let matrix = Compiled.make_word_matrix compiled ~width in
  let scratch = Compiled.make_scratch compiled in
  let words = Array.make n_inputs 0 in
  let fw = Array.make width 0 in
  let diff = Array.make width 0 in
  let tmp = Array.make width 0 in
  (* Full-algo groups share one all-gates cone / all-PIs frontier. *)
  let all_gates = lazy (Array.init n_gates Fun.id) in
  let all_po =
    lazy
      (Array.of_seq
         (Seq.filter (Compiled.gate_is_po compiled) (Seq.init n_gates Fun.id)))
  in
  let all_pi = lazy (Array.init n_inputs Fun.id) in
  (* Group-build scratch: stamp arrays dedupe cone gates and frontier
     nets without clearing between builds. *)
  let gstamp = Array.make (max 1 n_gates) (-1) in
  let nstamp = Array.make (max 1 (Compiled.n_nets compiled)) (-1) in
  let stamp = ref 0 in
  let build_group lanes =
    match algo with
    | `Full ->
        {
          lanes;
          cone = Lazy.force all_gates;
          cone_po = Lazy.force all_po;
          frontier = Lazy.force all_pi;
        }
    | `Cone ->
        incr stamp;
        let cur = !stamp in
        let acc = ref [] in
        Array.iter
          (fun s ->
            Array.iter
              (fun g ->
                if gstamp.(g) <> cur then begin
                  gstamp.(g) <- cur;
                  acc := g :: !acc
                end)
              (Compiled.fanout_cone compiled s.gate))
          lanes;
        let cone = Array.of_list !acc in
        Array.sort compare cone;
        let cone_po =
          Array.of_seq
            (Seq.filter (Compiled.gate_is_po compiled) (Array.to_seq cone))
        in
        let facc = ref [] in
        Array.iter
          (fun g ->
            Array.iter
              (fun net ->
                let outside = net < n_inputs || gstamp.(net - n_inputs) <> cur in
                if outside && nstamp.(net) <> cur then begin
                  nstamp.(net) <- cur;
                  facc := net :: !facc
                end)
              cgates.(g).Compiled.ins)
          cone;
        { lanes; cone; cone_po; frontier = Array.of_list !facc }
  in
  (* Lazily (re)built group partition: the first unit sees checkpoint-
     preloaded detections through the same retired-count trigger as
     mid-run drops. *)
  let groups = ref [||] in
  let built_retired = ref (-1) in
  let rebuild (ctx : Kernel.ctx) =
    let live = ref [] in
    for sid = n - 1 downto 0 do
      if
        (not ctx.Kernel.failed.(sid))
        && not (ctx.Kernel.drop && ctx.Kernel.first.(sid) <> None)
      then live := sites.(sid) :: !live
    done;
    let live = Array.of_list !live in
    let n_live = Array.length live in
    let n_groups = (n_live + width - 1) / width in
    groups :=
      Array.init n_groups (fun k ->
          build_group (Array.sub live (k * width) (min width (n_live - (k * width)))))
  in
  let run_group (ctx : Kernel.ctx) grp ~start ~mask =
    let glen = Array.length grp.lanes in
    (match trace_site with
    | None -> ()
    | Some f -> Array.iter (fun s -> f ~sid:s.sid ~start) grp.lanes);
    (* Probe: each machine's faulty gate as a scalar against the good
       machine (its inputs there are good by construction).  The probed
       word doubles as the lane's override value during the sweep. *)
    let activated = ref false in
    for l = 0 to glen - 1 do
      let s = grp.lanes.(l) in
      let cg = cgates.(s.gate) in
      let w = Compiled.eval_fn_from s.fn cg.Compiled.ins scratch in
      fw.(l) <- w;
      if w <> scratch.(cg.Compiled.out) then activated := true
    done;
    ctx.Kernel.work := !(ctx.Kernel.work) + glen;
    if !activated || algo = `Full then begin
      Array.iter
        (fun net -> Compiled.matrix_fill_row matrix ~width ~net scratch.(net))
        grp.frontier;
      (* Ascending sweep; lanes are in non-decreasing gate order, so the
         override fixups are a single pointer walk alongside it. *)
      let op = ref 0 in
      Array.iter
        (fun g ->
          let cg = cgates.(g) in
          Compiled.eval_fn_rows cg.Compiled.fn cg.Compiled.ins matrix ~width
            ~out:cg.Compiled.out ~tmp;
          while !op < glen && grp.lanes.(!op).gate = g do
            Bigarray.Array1.unsafe_set matrix ((cg.Compiled.out * width) + !op) fw.(!op);
            incr op
          done)
        grp.cone;
      ctx.Kernel.work := !(ctx.Kernel.work) + (Array.length grp.cone * glen);
      Array.fill diff 0 glen 0;
      Array.iter
        (fun g ->
          let out = cgates.(g).Compiled.out in
          let base = out * width in
          let good = scratch.(out) in
          for l = 0 to glen - 1 do
            diff.(l) <- diff.(l) lor (Bigarray.Array1.unsafe_get matrix (base + l) lxor good)
          done)
        grp.cone_po;
      for l = 0 to glen - 1 do
        let d = diff.(l) land mask in
        let sid = grp.lanes.(l).sid in
        if d <> 0 && ctx.Kernel.first.(sid) = None then begin
          let rec lowest j = if (d lsr j) land 1 = 1 then j else lowest (j + 1) in
          ctx.Kernel.detect ~sid ~pat:(start + lowest 0)
        end
      done
    end
  in
  let run_unit (ctx : Kernel.ctx) ~start ~len =
    Array.fill words 0 n_inputs 0;
    for j = 0 to len - 1 do
      let p = patterns.(start + j) in
      for i = 0 to n_inputs - 1 do
        if p.(i) then words.(i) <- words.(i) lor (1 lsl j)
      done
    done;
    let mask = if len >= word_bits then max_int else (1 lsl len) - 1 in
    Compiled.eval_words_into compiled ~scratch words;
    let retired = ref 0 in
    for sid = 0 to n - 1 do
      if ctx.Kernel.failed.(sid) || (ctx.Kernel.drop && ctx.Kernel.first.(sid) <> None)
      then incr retired
    done;
    if !retired <> !built_retired then begin
      built_retired := !retired;
      rebuild ctx
    end;
    Array.iter (fun grp -> run_group ctx grp ~start ~mask) !groups
  in
  let cone_gates =
    Array.fold_left
      (fun acc s -> acc + Array.length (Compiled.fanout_cone compiled s.gate))
      0 sites
  in
  let obs_fields (t : Kernel.totals) =
    [
      ("algo", Obs.String (algo_name algo));
      ("group", Obs.Int group);
      ("gate_evals", Obs.Int t.Kernel.work);
      ( "gate_evals_saved",
        Obs.Int (((t.Kernel.evals + t.Kernel.evals_saved) * n_gates) - t.Kernel.work) );
      ("cone_gates", Obs.Int cone_gates);
    ]
  in
  {
    Kernel.name = "ppsfp";
    unit_len = (fun ~start -> min word_bits (total - start));
    units_remaining = (fun ~start -> (total - start + word_bits - 1) / word_bits);
    run_unit;
    obs_fields;
  }
