open Dynmos_expr

(* Parser for cell description files in the paper's syntax.

   A file contains one or more cells; each cell starts with a TECHNOLOGY
   statement:

     TECHNOLOGY domino-CMOS;
     NAME fig9;                -- optional
     INPUT a,b,c,d,e;
     OUTPUT u;
     x1 := a*(b+c);
     x2 := d*e;
     u  := x1+x2;

   Statements are ';'-terminated; '#' and '--' introduce line comments.
   Keywords are case-insensitive.  Expressions use the [Parse] grammar. *)

exception Error of string

let error fmt = Fmt.kstr (fun s -> raise (Error s)) fmt

let strip_comments text =
  String.concat "\n"
    (List.map
       (fun line ->
         let cut i = String.sub line 0 i in
         let hash = String.index_opt line '#' in
         let dash =
           let rec find i =
             if i + 1 >= String.length line then None
             else if line.[i] = '-' && line.[i + 1] = '-' then Some i
             else find (i + 1)
           in
           find 0
         in
         match (hash, dash) with
         | None, None -> line
         | Some i, None | None, Some i -> cut i
         | Some i, Some j -> cut (min i j))
       (String.split_on_char '\n' text))

let statements text =
  strip_comments text
  |> String.split_on_char ';'
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")

type stmt =
  | Technology of Technology.t
  | Name of string
  | Input of string list
  | Output of string
  | Assign of string * Expr.t

let split_keyword s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.trim (String.sub s (i + 1) (String.length s - i - 1)))

let parse_stmt s =
  match String.index_opt s ':' with
  | Some i when i + 1 < String.length s && s.[i + 1] = '=' ->
      let lhs = String.trim (String.sub s 0 i) in
      let rhs = String.sub s (i + 2) (String.length s - i - 2) in
      if lhs = "" then error "assignment with empty left-hand side: %S" s;
      let e = try Parse.expr rhs with Parse.Error { message; _ } -> error "in %S: %s" s message in
      Assign (lhs, e)
  | _ -> (
      let kw, rest = split_keyword s in
      match String.uppercase_ascii kw with
      | "TECHNOLOGY" -> (
          match Technology.of_string rest with
          | Some t -> Technology t
          | None -> error "unknown technology %S" rest)
      | "NAME" -> Name rest
      | "INPUT" | "INPUTS" ->
          Input (List.filter (fun s -> s <> "") (List.map String.trim (String.split_on_char ',' rest)))
      | "OUTPUT" -> Output rest
      | _ -> error "unrecognized statement %S" s)

(* Group the statement stream into cells: a TECHNOLOGY statement opens a
   new cell. *)
let cells text =
  let stmts = List.map parse_stmt (statements text) in
  let finish (tech, name, inputs, output, assigns) =
    match (tech, inputs, output) with
    | None, _, _ -> error "cell without TECHNOLOGY statement"
    | _, None, _ -> error "cell without INPUT statement"
    | _, _, None -> error "cell without OUTPUT statement"
    | Some technology, Some inputs, Some output ->
        Cell.make ?name ~technology ~inputs ~output (List.rev assigns)
  in
  let rec go acc current = function
    | [] -> ( match current with None -> List.rev acc | Some c -> List.rev (finish c :: acc))
    | Technology t :: rest -> (
        match current with
        | None -> go acc (Some (Some t, None, None, None, [])) rest
        | Some c -> go (finish c :: acc) (Some (Some t, None, None, None, [])) rest)
    | stmt :: rest -> (
        match current with
        | None -> error "statement before any TECHNOLOGY statement"
        | Some (tech, name, inputs, output, assigns) ->
            let current =
              match stmt with
              | Name n -> (tech, Some n, inputs, output, assigns)
              | Input is -> (tech, name, Some is, output, assigns)
              | Output o -> (tech, name, inputs, Some o, assigns)
              | Assign (n, e) -> (tech, name, inputs, output, (n, e) :: assigns)
              | Technology _ ->
                  (* TECHNOLOGY statements are consumed by the outer match
                     to open a new cell; if one reaches the in-cell merge
                     the statement stream is malformed — say so instead of
                     killing the process on an assertion. *)
                  error "TECHNOLOGY statement must open a new cell, not appear inside one"
            in
            go acc (Some current) rest)
  in
  match go [] None stmts with
  | [] -> error "no cells in input"
  | cs -> cs

let cell text =
  match cells text with
  | [ c ] -> c
  | cs -> error "expected exactly one cell, found %d" (List.length cs)
