(** Append-only, fsync'd, CRC-checksummed write-ahead job journal.

    The durability contract of [dynmos serve]: a run request is
    {e admitted} only after its envelope is on disk here, and its
    terminal outcome is recorded the same way, so a [kill -9] at any
    instant loses no admitted job — on the next boot {!open_} replays
    the segment and {!recovered} names every job whose outcome never
    made it to disk, ready to be re-enqueued.

    Format: a versioned header line ([dynmos-journal v1]) followed by
    one record per line, each prefixed with a CRC-32 over its payload.
    Three record kinds: [gen N] (boot generation stamp), [admit JID
    ENVELOPE] (the replay key: a client-independent request envelope),
    [done JID STATUS] (terminal outcome).  A record is durable once its
    full line is on disk; {!open_} truncates a torn tail (a half-written
    record, or anything whose CRC fails) back to the last good record.

    Compaction rewrites the segment keeping only the latest generation
    and the pending admits, using tmp + fsync + rename — a crash
    mid-compaction leaves the live segment untouched (the truncated
    replacement exists only under a tmp name, swept at the next open).
    {!append_done} auto-compacts once the segment exceeds the rotate
    limit and at least half its records are completed pairs.

    Chaos points: [journal.append] (Fail = clean append failure, Torn =
    half a record with no newline), [journal.fsync] (skip the sync),
    [journal.compact] (Fail = abort, Torn = crash mid-rewrite).  All
    appends are serialized under one internal mutex — reader threads
    admit and executor domains complete concurrently. *)

exception Error of string

type t

type entry = { jid : int; envelope : string }

val open_ : ?chaos:Dynmos_chaos.Chaos.t -> ?rotate_limit:int -> string -> t
(** Open (or create) the journal at the given path: sweep stale
    compaction tmps, scan the segment, truncate any torn tail, and stamp
    a new boot generation.  [rotate_limit] (default 1024, min 2) bounds
    the segment's record count before auto-compaction.  Raises {!Error}
    on an unreadable file or a foreign header. *)

val recovered : t -> entry list
(** The admitted-but-unfinished jobs found at {!open_} (plus any
    admitted since), in admission (jid) order — the replay work list. *)

val append_admit : t -> envelope:string -> int
(** Log an admitted request; returns its journal id.  The envelope must
    be a single line (the server uses the canonical run-request JSON).
    Fsync'd before returning; raises {!Error} if the record could not be
    made durable — the caller must then reject the request, because an
    unjournaled job would not survive a crash. *)

val append_done : t -> jid:int -> status:string -> unit
(** Log a terminal outcome ([ok], [partial], [error], [dropped]).  May
    auto-compact.  Raises {!Error} when the record cannot be written —
    safe to absorb: a lost done record only costs a redundant (and
    idempotent, content-addressed) replay at the next boot. *)

val compact : t -> unit
(** Force a segment compaction (the SIGHUP maintenance hook). *)

val close : t -> unit
(** Close the segment channel.  Further appends raise {!Error}. *)

val path : t -> string

val generation : t -> int
(** This boot's generation: 1 on a fresh journal, previous + 1 after
    every recovery (the [restart_generation] stats counter). *)

val pending_count : t -> int
val appends : t -> int
val fsyncs : t -> int
val failed_appends : t -> int
val compactions : t -> int

val truncated_tail : t -> int
(** 1 when this open found and truncated a torn tail, else 0. *)

val stale_cleaned : t -> int
(** Stale compaction tmp files swept at open. *)
