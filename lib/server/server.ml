open Dynmos_netlist
open Dynmos_sim
open Dynmos_faultsim
open Dynmos_circuits
module Obs = Dynmos_obs.Obs

(* The serve loop.  Two domains per [serve] call: the caller's domain
   reads and validates lines (admission), a spawned executor domain runs
   admitted jobs.  All cross-domain state is either atomic counters or
   guarded by a single queue mutex; responses from both sides funnel
   through one writer mutex so lines never interleave.

   The executor's idle wait is a short sleep-poll rather than a condition
   variable: the drain signal arrives from a Unix signal handler, which
   must not take locks, and a 2 ms poll on an idle server is cheaper than
   the deadlock analysis of signaling a condvar from a handler. *)

type config = {
  queue_capacity : int;
  max_patterns : int;
  max_seconds : float;
  max_request_evals : int option;
  global_max_evals : int option;
  max_line_bytes : int;
  events_capacity : int;
}

let default_config =
  {
    queue_capacity = 64;
    max_patterns = 1_000_000;
    max_seconds = 60.0;
    max_request_evals = None;
    global_max_evals = None;
    max_line_bytes = 1_048_576;
    events_capacity = 1024;
  }

(* --- Counters ----------------------------------------------------------------- *)

type counters = {
  lines : int Atomic.t;
  accepted : int Atomic.t;
  completed_ok : int Atomic.t;
  completed_partial : int Atomic.t;
  failed : int Atomic.t;            (* jobs answered with status "error" *)
  rejected_invalid : int Atomic.t;
  rejected_overload : int Atomic.t;
  rejected_draining : int Atomic.t;
  rejected_budget : int Atomic.t;
}

let make_counters () =
  {
    lines = Atomic.make 0;
    accepted = Atomic.make 0;
    completed_ok = Atomic.make 0;
    completed_partial = Atomic.make 0;
    failed = Atomic.make 0;
    rejected_invalid = Atomic.make 0;
    rejected_overload = Atomic.make 0;
    rejected_draining = Atomic.make 0;
    rejected_budget = Atomic.make 0;
  }

type t = {
  config : config;
  counters : counters;
  obs : Obs.t;
  fetch_events : unit -> Obs.event list;
  total_events : unit -> int;
  cache : (string, Faultsim.universe) Hashtbl.t;
  cache_m : Mutex.t;
  global_evals : int Atomic.t;  (* gate evaluations spent across all requests *)
  t0 : float;
}

let create ?(config = default_config) ?trace () =
  let bad what n =
    invalid_arg (Printf.sprintf "Server.create: %s must be positive (got %d)" what n)
  in
  if config.queue_capacity < 1 then bad "queue_capacity" config.queue_capacity;
  if config.max_patterns < 0 then bad "max_patterns" config.max_patterns;
  if not (config.max_seconds > 0.0) then
    invalid_arg
      (Printf.sprintf "Server.create: max_seconds must be positive (got %g)" config.max_seconds);
  (match config.max_request_evals with Some n when n < 1 -> bad "max_request_evals" n | _ -> ());
  (match config.global_max_evals with Some n when n < 1 -> bad "global_max_evals" n | _ -> ());
  if config.max_line_bytes < 2 then bad "max_line_bytes" config.max_line_bytes;
  if config.events_capacity < 1 then bad "events_capacity" config.events_capacity;
  let ring, fetch_events, total_events =
    Obs.bounded_memory_sink ~capacity:config.events_capacity
  in
  let sink = match trace with None -> ring | Some s -> Obs.tee ring s in
  {
    config;
    counters = make_counters ();
    obs = Obs.make sink;
    fetch_events;
    total_events;
    cache = Hashtbl.create 8;
    cache_m = Mutex.create ();
    global_evals = Atomic.make 0;
    t0 = Obs.now ();
  }

let obs t = t.obs

let limits t =
  {
    Protocol.max_patterns = t.config.max_patterns;
    max_seconds = t.config.max_seconds;
    max_request_evals = t.config.max_request_evals;
  }

(* Universe construction is deterministic per circuit name, so one build
   serves every request; the mutex covers concurrent first requests from
   the admission and executor sides of different connections. *)
let universe_of t name =
  Mutex.lock t.cache_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.cache_m)
    (fun () ->
      match Hashtbl.find_opt t.cache name with
      | Some u -> u
      | None ->
          let nl =
            match Catalog.find name with
            | Ok nl -> nl
            | Error e -> failwith e  (* admission already validated; belt and braces *)
          in
          let u = Faultsim.universe nl in
          Hashtbl.add t.cache name u;
          u)

(* --- Stats -------------------------------------------------------------------- *)

let stats_line t ~queue_depth =
  let c = t.counters in
  let buffered = List.length (t.fetch_events ()) in
  let opt_budget = function None -> Json.Null | Some n -> Json.Int n in
  [
    ("uptime_s", Json.Float (Obs.now () -. t.t0));
    ("lines", Json.Int (Atomic.get c.lines));
    ("accepted", Json.Int (Atomic.get c.accepted));
    ("ok", Json.Int (Atomic.get c.completed_ok));
    ("partial", Json.Int (Atomic.get c.completed_partial));
    ("failed", Json.Int (Atomic.get c.failed));
    ("rejected_invalid", Json.Int (Atomic.get c.rejected_invalid));
    ("rejected_overload", Json.Int (Atomic.get c.rejected_overload));
    ("rejected_draining", Json.Int (Atomic.get c.rejected_draining));
    ("rejected_budget", Json.Int (Atomic.get c.rejected_budget));
    ("queue_depth", Json.Int queue_depth);
    ("queue_capacity", Json.Int t.config.queue_capacity);
    ("global_evals_used", Json.Int (Atomic.get t.global_evals));
    ("global_evals_budget", opt_budget t.config.global_max_evals);
    ("events_buffered", Json.Int buffered);
    ("events_total", Json.Int (t.total_events ()));
    ("circuits_cached", Json.Int (Hashtbl.length t.cache));
  ]

(* --- Bounded pending queue ----------------------------------------------------- *)

module Pending = struct
  type 'a t = {
    m : Mutex.t;
    items : 'a Queue.t;
    cap : int;
    mutable accepting : bool;
  }

  let create cap = { m = Mutex.create (); items = Queue.create (); cap; accepting = true }

  let with_lock q f =
    Mutex.lock q.m;
    Fun.protect ~finally:(fun () -> Mutex.unlock q.m) f

  let push q x =
    with_lock q (fun () ->
        if not q.accepting then `Closed
        else if Queue.length q.items >= q.cap then `Full
        else begin
          Queue.add x q.items;
          `Ok (Queue.length q.items)
        end)

  let pop q = with_lock q (fun () -> Queue.take_opt q.items)
  let depth q = with_lock q (fun () -> Queue.length q.items)

  (* The drain handshake: flipping [accepting] and observing emptiness
     happen under one lock, so once this returns true no job can ever be
     admitted again — a reader mid-push gets [`Closed] and answers
     "draining". *)
  let close_if_empty q =
    with_lock q (fun () ->
        let empty = Queue.is_empty q.items in
        if empty then q.accepting <- false;
        empty)
end

(* --- Job execution -------------------------------------------------------------- *)

type job = { line_no : int; run : Protocol.run }

(* Gate evaluations a finished run actually performed, read back from the
   engine's own faultsim.run event (the deductive/concurrent engines
   report kernel evals; the injection engines report gate_evals).  This
   is what the global budget is charged with. *)
let gate_evals_of_events events =
  List.fold_left
    (fun acc e ->
      if e.Obs.ev <> "faultsim.run" then acc
      else
        let get k =
          match List.assoc_opt k e.Obs.fields with Some (Obs.Int n) -> Some n | _ -> None
        in
        acc + (match get "gate_evals" with Some n -> n | None -> Option.value ~default:0 (get "evals")))
    0 events

let stop_cause_field (p : Outcome.partial) =
  match p.Outcome.stopped with
  | Some c -> Outcome.stop_cause_name c
  | None -> "site_failures"

exception Reject of string

let exec_job t job =
  let r = job.run in
  (* Global budget: admission control against a server-wide spend.  The
     check sits at execution time because the budget moves between
     admission and execution of queued work. *)
  let global_remaining =
    match t.config.global_max_evals with
    | None -> None
    | Some budget ->
        let remaining = budget - Atomic.get t.global_evals in
        if remaining <= 0 then begin
          Atomic.incr t.counters.rejected_budget;
          raise (Reject "global gate-evaluation budget exhausted")
        end;
        Some remaining
  in
  let u = universe_of t r.Protocol.circuit in
  let u =
    match r.Protocol.gates with
    | None -> u
    | Some gates -> Faultsim.restrict_universe u ~gates  (* Invalid_argument on bad ids *)
  in
  let n_sites = Faultsim.n_sites u in
  (match r.Protocol.crash_sid with
  | Some sid when sid >= n_sites ->
      raise
        (Reject
           (Printf.sprintf "field \"crash_sid\": site id %d out of range (%d sites)" sid n_sites))
  | _ -> ());
  let crash_hook =
    Option.map
      (fun sid jid ->
        if jid = sid then failwith (Printf.sprintf "injected crash at site %d" sid))
      r.Protocol.crash_sid
  in
  let nl = Compiled.netlist u.Faultsim.compiled in
  let prng = Dynmos_util.Prng.create r.Protocol.seed in
  let pats =
    Faultsim.random_patterns prng
      ~n_inputs:(List.length (Netlist.inputs nl))
      ~count:r.Protocol.patterns
  in
  let deadline = Obs.now () +. r.Protocol.deadline_s in
  let max_evals =
    match (r.Protocol.max_evals, global_remaining) with
    | None, None -> None
    | Some n, None -> Some n
    | None, Some g -> Some g
    | Some n, Some g -> Some (min n g)
  in
  (* Each job records into a private memory sink so its gate-eval spend
     can be read back; the events are forwarded to the server recorder
     afterwards, so traces carry the engine events too. *)
  let mem, fetch = Obs.memory_sink () in
  let job_obs = Obs.make mem in
  let drop = r.Protocol.drop in
  let algo = r.Protocol.algo in
  let t0 = Obs.now () in
  let summary =
    match r.Protocol.engine with
    | `Serial ->
        Faultsim.run_serial ~drop ~algo ~obs:job_obs ~deadline ?max_evals ?crash_hook u pats
    | `Parallel ->
        Faultsim.run_parallel ~drop ~algo ~obs:job_obs ~deadline ?max_evals ?crash_hook u pats
    | `Deductive ->
        Faultsim.run_deductive ~drop ~algo ~obs:job_obs ~deadline ?max_evals u pats
    | `Concurrent ->
        Faultsim.run_concurrent ~drop ~algo ~obs:job_obs ~deadline ?max_evals u pats
    | `Domains ->
        Faultsim.run_domain_parallel ~drop ~algo ?num_domains:r.Protocol.jobs ~obs:job_obs
          ~deadline ?max_evals ?crash_hook u pats
  in
  let dt = Obs.now () -. t0 in
  let events = fetch () in
  let evals = gate_evals_of_events events in
  ignore (Atomic.fetch_and_add t.global_evals evals);
  (* Forward the engine events into the server trace/ring. *)
  if Obs.enabled t.obs then
    List.iter (fun e -> Obs.emit t.obs ~ev:e.Obs.ev e.Obs.fields) events;
  (summary, dt, evals, n_sites)

let job_response t job =
  let r = job.run in
  let base_fields summary dt evals n_sites =
    [
      ("circuit", Json.String r.Protocol.circuit);
      ("engine", Json.String (Protocol.engine_name r.Protocol.engine));
      ("sites", Json.Int n_sites);
      ("patterns", Json.Int r.Protocol.patterns);
      ("detected", Json.Int (Faultsim.n_detected summary));
      ("coverage", Json.Float (Faultsim.coverage summary));
      ("dt_s", Json.Float dt);
      ("gate_evals", Json.Int evals);
    ]
  in
  let respond ~status fields =
    (status, Protocol.response ~line:job.line_no ?id:r.Protocol.id ~status fields)
  in
  match exec_job t job with
  | summary, dt, evals, n_sites -> (
      match summary.Faultsim.outcome with
      | Outcome.Complete -> respond ~status:"ok" (base_fields summary dt evals n_sites)
      | Outcome.Partial p ->
          let failed =
            List.map
              (fun (sid, msg) ->
                Json.Obj [ ("sid", Json.Int sid); ("error", Json.String msg) ])
              p.Outcome.failed_sites
          in
          respond ~status:"partial"
            (base_fields summary dt evals n_sites
            @ [
                ("cause", Json.String (stop_cause_field p));
                ("patterns_done", Json.Int summary.Faultsim.patterns_done);
                ("sites_done", Json.Int summary.Faultsim.sites_done);
                ("coverage_of_done", Json.Float (Faultsim.coverage_of_done summary));
                ("failed_sites", Json.List failed);
              ]))
  | exception Reject msg ->
      respond ~status:"error" [ ("error", Json.String msg) ]
  | exception (Invalid_argument msg | Failure msg) ->
      respond ~status:"error" [ ("error", Json.String msg) ]
  | exception exn ->
      (* The supervised pool isolates per-site crashes; anything that
         still lands here (a bug in an engine, Out_of_memory on an
         absurd workload) is reported on the request's line and the
         loop keeps serving. *)
      respond ~status:"error" [ ("error", Json.String (Printexc.to_string exn)) ]

(* --- The serve loop -------------------------------------------------------------- *)

type stop = [ `Eof | `Drained ]

(* Best-effort id salvage for schema-level rejections: when the line is
   well-formed JSON with an "id", echo it so the client can correlate
   without relying on line numbers. *)
let salvage_id line =
  match Json.parse line with Ok obj -> Json.member "id" obj | Error _ -> None

let admit t q ~write ~line_no line =
  let c = t.counters in
  Atomic.incr c.lines;
  let reject reason msg id =
    (match reason with
    | `Invalid -> Atomic.incr c.rejected_invalid
    | `Overloaded -> Atomic.incr c.rejected_overload
    | `Draining -> Atomic.incr c.rejected_draining);
    if Obs.enabled t.obs then
      Obs.emit t.obs ~ev:"serve.reject"
        [
          ("line", Obs.Int line_no);
          ( "reason",
            Obs.String
              (match reason with
              | `Invalid -> "invalid"
              | `Overloaded -> "overloaded"
              | `Draining -> "draining") );
        ];
    let status = match reason with
      | `Invalid -> "error"
      | `Overloaded -> "overloaded"
      | `Draining -> "draining"
    in
    let fields =
      match reason with
      | `Overloaded ->
          [
            ("error", Json.String msg);
            ("queue_depth", Json.Int (Pending.depth q));
            ("queue_capacity", Json.Int t.config.queue_capacity);
          ]
      | _ -> [ ("error", Json.String msg) ]
    in
    write (Protocol.response ~line:line_no ?id ~status fields)
  in
  if String.length line > t.config.max_line_bytes then
    reject `Invalid
      (Printf.sprintf "request line exceeds %d bytes" t.config.max_line_bytes)
      None
  else
    match Protocol.parse_request ~limits:(limits t) ~known_circuit:Catalog.mem line with
    | Error msg -> reject `Invalid msg (salvage_id line)
    | Ok (Protocol.Ping id) ->
        write (Protocol.response ~line:line_no ?id ~status:"pong" [])
    | Ok (Protocol.Stats id) ->
        write
          (Protocol.response ~line:line_no ?id ~status:"stats"
             (stats_line t ~queue_depth:(Pending.depth q)))
    | Ok (Protocol.Run run) -> (
        match Pending.push q { line_no; run } with
        | `Ok depth ->
            Atomic.incr c.accepted;
            if Obs.enabled t.obs then
              Obs.emit t.obs ~ev:"serve.accept"
                [
                  ("line", Obs.Int line_no);
                  ("circuit", Obs.String run.Protocol.circuit);
                  ("engine", Obs.String (Protocol.engine_name run.Protocol.engine));
                  ("queue_depth", Obs.Int depth);
                ]
        | `Full ->
            reject `Overloaded
              (Printf.sprintf "pending queue full (%d requests)" t.config.queue_capacity)
              run.Protocol.id
        | `Closed -> reject `Draining "server is draining; request not admitted" run.Protocol.id)

let serve t ?(drain = fun () -> false) ~input ~output () =
  let out_m = Mutex.create () in
  let write line =
    Mutex.lock out_m;
    Fun.protect ~finally:(fun () -> Mutex.unlock out_m) (fun () -> output line)
  in
  let q = Pending.create t.config.queue_capacity in
  let eof = Atomic.make false in
  let reader_done = Atomic.make false in
  let reader () =
    Fun.protect
      ~finally:(fun () ->
        Atomic.set eof true;
        Atomic.set reader_done true)
      (fun () ->
        let line_no = ref 0 in
        let continue = ref true in
        while !continue && not (drain ()) do
          match input () with
          | None -> continue := false
          | Some line ->
              incr line_no;
              admit t q ~write ~line_no:!line_no line
        done)
  in
  let reader_dom = Domain.spawn reader in
  let rec exec_loop () =
    match Pending.pop q with
    | Some job ->
        let status, resp = job_response t job in
        (match status with
        | "ok" -> Atomic.incr t.counters.completed_ok
        | "partial" -> Atomic.incr t.counters.completed_partial
        | _ -> Atomic.incr t.counters.failed);
        if Obs.enabled t.obs then
          Obs.emit t.obs ~ev:"serve.request"
            [
              ("line", Obs.Int job.line_no);
              ("circuit", Obs.String job.run.Protocol.circuit);
              ("status", Obs.String status);
            ];
        write resp;
        exec_loop ()
    | None ->
        if (Atomic.get eof || drain ()) && Pending.close_if_empty q then ()
        else begin
          Unix.sleepf 0.002;
          exec_loop ()
        end
  in
  exec_loop ();
  (* Give an actively-admitting reader a moment to finish its current
     line; a reader parked in a blocking [input] is left behind — the
     process exit reaps its domain (nothing of ours is in flight). *)
  let patience = Obs.now () +. 0.5 in
  while (not (Atomic.get reader_done)) && Obs.now () < patience do
    Unix.sleepf 0.005
  done;
  if Atomic.get reader_done then Domain.join reader_dom;
  let stop : stop = if drain () then `Drained else `Eof in
  if Obs.enabled t.obs then
    Obs.emit t.obs ~ev:"serve.drain"
      [
        ("reason", Obs.String (match stop with `Eof -> "eof" | `Drained -> "signal"));
        ("lines", Obs.Int (Atomic.get t.counters.lines));
        ("accepted", Obs.Int (Atomic.get t.counters.accepted));
      ];
  stop

let serve_channels t ?drain ic oc =
  let input () =
    match input_line ic with
    | line -> Some line
    | exception (End_of_file | Sys_error _) -> None
  in
  let output line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  serve t ?drain ~input ~output ()

let serve_socket t ?(drain = fun () -> false) path =
  (if Sys.file_exists path then
     match (Unix.lstat path).Unix.st_kind with
     | Unix.S_SOCK -> Unix.unlink path
     | _ ->
         invalid_arg
           (Printf.sprintf "Server.serve_socket: %s exists and is not a socket" path));
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 8;
      let continue = ref true in
      while !continue && not (drain ()) do
        match Unix.accept sock with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()  (* signal: recheck drain *)
        | fd, _ ->
            let ic = Unix.in_channel_of_descr fd in
            let oc = Unix.out_channel_of_descr fd in
            (* A client hanging up mid-response must not kill the
               accept loop: absorb I/O failures, close, move on. *)
            (match serve_channels t ~drain ic oc with
            | (_ : stop) -> ()
            | exception (Sys_error _ | Unix.Unix_error _) ->
                Obs.emit t.obs ~ev:"serve.connection_error" []);
            (try close_out_noerr oc with _ -> ());
            (try close_in_noerr ic with _ -> ())
      done)
