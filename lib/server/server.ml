open Dynmos_netlist
open Dynmos_sim
open Dynmos_faultsim
open Dynmos_circuits
module Obs = Dynmos_obs.Obs
module Scheduler = Parallel_exec.Scheduler
module Chaos = Dynmos_chaos.Chaos

(* The concurrent serve loop.  Any number of clients at once: each
   connection (or [serve] call) owns a reader thread that validates lines
   and submits admitted jobs to one long-lived supervised domain pool
   shared by the whole server ([Parallel_exec.Scheduler]); the pool
   drains clients round-robin so one client's backlog never starves
   another's next request.  Per-client responses funnel through a
   per-client writer mutex so lines never interleave on a connection.

   Idle costs nothing: workers park on the scheduler's condition
   variable, readers block in [input], and the drain path wakes both
   explicitly ([request_drain] runs from ordinary thread context — the
   CLI converts signals with a dedicated sigwait thread — so it may take
   locks and broadcast, which is what replaced the old 2 ms sleep-poll).

   In front of the pool sits a content-addressed result cache: a
   completed run is stored under the digests that already pin
   checkpoints (circuit x universe x patterns) plus the engine/algo/drop
   knobs, so a repeat request is answered without simulating a single
   gate.  Content addressing means there is nothing to invalidate — a
   key changes whenever any input it covers changes; the LRU bound only
   reclaims space. *)

type config = {
  queue_capacity : int;
  executors : int;
  max_patterns : int;
  max_seconds : float;
  max_request_evals : int option;
  global_max_evals : int option;
  max_line_bytes : int;
  events_capacity : int;
  cache_capacity : int;
  idle_timeout_s : float option;
  chaos : Chaos.t;
  data_dir : string option;
  ckpt_patterns : int;
  ckpt_interval : int;
}

let default_config =
  {
    queue_capacity = 64;
    executors = 2;
    max_patterns = 1_000_000;
    max_seconds = 60.0;
    max_request_evals = None;
    global_max_evals = None;
    max_line_bytes = 1_048_576;
    events_capacity = 1024;
    cache_capacity = 256;
    idle_timeout_s = None;
    chaos = Chaos.disabled;
    data_dir = None;
    ckpt_patterns = 4096;
    ckpt_interval = 1000;
  }

exception Reject of string

(* --- Counters ----------------------------------------------------------------- *)

type counters = {
  lines : int Atomic.t;
  accepted : int Atomic.t;
  completed_ok : int Atomic.t;
  completed_partial : int Atomic.t;
  failed : int Atomic.t;            (* jobs answered with status "error" *)
  rejected_invalid : int Atomic.t;
  rejected_overload : int Atomic.t;
  rejected_draining : int Atomic.t;
  rejected_budget : int Atomic.t;
  cancelled : int Atomic.t;         (* jobs dropped or skipped for a gone client *)
  connections : int Atomic.t;       (* socket connections accepted *)
  idle_reaps : int Atomic.t;        (* silent connections reaped by the idle timeout *)
}

let make_counters () =
  {
    lines = Atomic.make 0;
    accepted = Atomic.make 0;
    completed_ok = Atomic.make 0;
    completed_partial = Atomic.make 0;
    failed = Atomic.make 0;
    rejected_invalid = Atomic.make 0;
    rejected_overload = Atomic.make 0;
    rejected_draining = Atomic.make 0;
    rejected_budget = Atomic.make 0;
    cancelled = Atomic.make 0;
    connections = Atomic.make 0;
    idle_reaps = Atomic.make 0;
  }

(* --- Content-addressed result cache ------------------------------------------- *)

(* Keys are compositions of the checkpoint digests (circuit topology,
   fault universe — which covers any [gates] restriction — and the exact
   pattern set) with the engine/algo/drop knobs that shape the reported
   accounting.  Only [Complete] outcomes are stored: a partial result
   depends on the request's own limits, a crash-injected one on the test
   hook.  Entries are immutable after insertion ([summary] is never
   mutated post-run); the mutex covers table and LRU-stamp state. *)
module Cache = struct
  type entry = {
    summary : Faultsim.summary;
    dt_s : float;    (* wall clock of the run that produced the entry *)
    evals : int;     (* gate evaluations that run performed *)
    n_sites : int;
    recovered : bool;        (* produced by restart recovery (disk load or replay) *)
    mutable persisted : bool;  (* has an on-disk twin in data-dir/cache *)
    mutable stamp : int;  (* LRU clock at last touch *)
  }

  type t = {
    m : Mutex.t;
    tbl : (string, entry) Hashtbl.t;
    cap : int;  (* 0 = caching disabled *)
    mutable clock : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
  }

  let create cap =
    {
      m = Mutex.create ();
      tbl = Hashtbl.create 32;
      cap;
      clock = 0;
      hits = 0;
      misses = 0;
      evictions = 0;
    }

  let find c key =
    if c.cap = 0 then None
    else begin
      Mutex.lock c.m;
      let r =
        match Hashtbl.find_opt c.tbl key with
        | Some e ->
            c.clock <- c.clock + 1;
            e.stamp <- c.clock;
            c.hits <- c.hits + 1;
            Some e
        | None ->
            c.misses <- c.misses + 1;
            None
      in
      Mutex.unlock c.m;
      r
    end

  let add c key entry =
    if c.cap > 0 then begin
      Mutex.lock c.m;
      (* two identical in-flight requests can both miss and both store;
         first insert wins, the duplicate is dropped *)
      if not (Hashtbl.mem c.tbl key) then begin
        if Hashtbl.length c.tbl >= c.cap then begin
          let victim =
            Hashtbl.fold
              (fun k e acc ->
                match acc with
                | Some (_, s) when s <= e.stamp -> acc
                | _ -> Some (k, e.stamp))
              c.tbl None
          in
          match victim with
          | Some (k, _) ->
              Hashtbl.remove c.tbl k;
              c.evictions <- c.evictions + 1
          | None -> ()
        end;
        c.clock <- c.clock + 1;
        entry.stamp <- c.clock;
        Hashtbl.add c.tbl key entry
      end;
      Mutex.unlock c.m
    end

  let stats c =
    Mutex.lock c.m;
    let r = (c.hits, c.misses, Hashtbl.length c.tbl, c.evictions) in
    Mutex.unlock c.m;
    r

  (* Every resident (key, entry) pair in key order — the maintenance
     hook walks this to re-persist entries whose disk write failed. *)
  let snapshot c =
    Mutex.lock c.m;
    let r = Hashtbl.fold (fun k e acc -> (k, e) :: acc) c.tbl [] in
    Mutex.unlock c.m;
    List.sort (fun (a, _) (b, _) -> compare a b) r
end

(* --- Clients -------------------------------------------------------------------- *)

(* One record per connection / [serve] call.  [inflight] counts admitted
   jobs not yet finished (their scheduler tasks still pending or
   running); [wake] is broadcast whenever the client's wait condition
   may have changed: a job finished, EOF was read, the server started
   draining, or the client was found dead. *)
type client = {
  cid : int;
  output : string -> unit;
  out_m : Mutex.t;
  wake_m : Mutex.t;
  wake : Condition.t;
  mutable inflight : int;
  mutable eof : bool;
  cancelled : bool Atomic.t;
}

(* Everything the [--data-dir] option switches on: the write-ahead
   journal, the cache's disk backing and the per-job checkpoint
   directory.  [dur_m] guards the mutable persistence counters (written
   from executor domains and the maintenance hook concurrently). *)
type durable = {
  journal : Journal.t;
  cache_dir : string;
  ckpt_dir : string;
  cache_loaded : int;            (* healthy entries rehydrated at boot *)
  cache_corrupt : int;           (* entries quarantined at boot *)
  dur_m : Mutex.t;
  mutable cache_persisted : int;
  mutable cache_persist_failed : int;
  mutable recovered_jobs : int;  (* journaled jobs replayed to a terminal outcome *)
}

type t = {
  config : config;
  counters : counters;
  obs : Obs.t;
  fetch_events : unit -> Obs.event list;
  total_events : unit -> int;
  known_circuit : string -> bool;
  find_circuit : string -> (Netlist.t, string) result;
  universes : (string, Faultsim.universe) Hashtbl.t;
  universes_m : Mutex.t;
  rcache : Cache.t;
  sched : Scheduler.t;
  global_evals : int Atomic.t;  (* gate evaluations spent across all requests *)
  draining : bool Atomic.t;
  clients_m : Mutex.t;          (* guards [clients], [next_cid], [drain_hooks] *)
  mutable clients : client list;
  mutable next_cid : int;
  mutable drain_hooks : (unit -> unit) list;
  durable : durable option;
  mutable recovery : Thread.t option;  (* the boot-time replay worker *)
  t0 : float;
}

(* [create] lives below [run_job]: boot-time recovery replays journaled
   jobs through the ordinary execution path, so construction needs the
   job runner in scope. *)

let obs t = t.obs

let shutdown t =
  Scheduler.shutdown t.sched;
  match t.durable with None -> () | Some d -> Journal.close d.journal

let exec_wakeups t = Scheduler.wakeups t.sched

let add_drain_hook t hook =
  Mutex.lock t.clients_m;
  t.drain_hooks <- hook :: t.drain_hooks;
  Mutex.unlock t.clients_m

(* First call wins; runs the registered hooks (close listening sockets,
   shut down connection fds so blocked readers see EOF) and wakes every
   client waiter.  Safe from any ordinary thread — never call it from a
   signal handler (it takes locks); the CLI uses a sigwait thread. *)
let request_drain t =
  if not (Atomic.exchange t.draining true) then begin
    Mutex.lock t.clients_m;
    let hooks = t.drain_hooks in
    let clients = t.clients in
    Mutex.unlock t.clients_m;
    List.iter (fun h -> try h () with _ -> ()) hooks;
    List.iter
      (fun c ->
        Mutex.lock c.wake_m;
        Condition.broadcast c.wake;
        Mutex.unlock c.wake_m)
      clients
  end

let register_client t ~output =
  Mutex.lock t.clients_m;
  let cid = t.next_cid in
  t.next_cid <- cid + 1;
  let client =
    {
      cid;
      output;
      out_m = Mutex.create ();
      wake_m = Mutex.create ();
      wake = Condition.create ();
      inflight = 0;
      eof = false;
      cancelled = Atomic.make false;
    }
  in
  t.clients <- client :: t.clients;
  Mutex.unlock t.clients_m;
  client

let unregister_client t client =
  Mutex.lock t.clients_m;
  t.clients <- List.filter (fun c -> c.cid <> client.cid) t.clients;
  Mutex.unlock t.clients_m

(* A write failure means the client is gone: mark it cancelled, drop its
   queued jobs (running ones observe the flag through their interrupt)
   and wake its waiters.  Idempotent. *)
let client_gone t client =
  if not (Atomic.exchange client.cancelled true) then begin
    let n = Scheduler.cancel t.sched ~client:client.cid in
    if n > 0 then ignore (Atomic.fetch_and_add t.counters.cancelled n);
    Mutex.lock client.wake_m;
    client.inflight <- client.inflight - n;
    Condition.broadcast client.wake;
    Mutex.unlock client.wake_m
  end

let client_write t client line =
  Mutex.lock client.out_m;
  let ok =
    (* [serve.write] injects here exactly what a vanished peer produces —
       an exception out of [output] — so the injected failure and the
       real one share the whole [client_gone] recovery path. *)
    match Chaos.decide t.config.chaos Chaos.Serve_write with
    | Chaos.Fail | Chaos.Torn -> false
    | Chaos.Pass -> (try client.output line; true with _ -> false)
  in
  Mutex.unlock client.out_m;
  if not ok then client_gone t client

let limits t =
  {
    Protocol.max_patterns = t.config.max_patterns;
    max_seconds = t.config.max_seconds;
    max_request_evals = t.config.max_request_evals;
  }

(* Universe construction is deterministic per circuit name, so one build
   serves every request; the mutex covers concurrent first requests.
   A failing lookup is a [Reject] — a structured error response — never
   an exception that could take an executor down (the old [failwith]
   here killed the executor domain mid-service). *)
let universe_of t name =
  Mutex.lock t.universes_m;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.universes_m)
    (fun () ->
      match Hashtbl.find_opt t.universes name with
      | Some u -> u
      | None ->
          let nl =
            match t.find_circuit name with
            | Ok nl -> nl
            | Error e -> raise (Reject (Printf.sprintf "circuit lookup failed: %s" e))
          in
          let u = Faultsim.universe nl in
          Hashtbl.add t.universes name u;
          u)

(* --- Stats -------------------------------------------------------------------- *)

let stats_line t =
  let c = t.counters in
  let buffered = List.length (t.fetch_events ()) in
  let opt_budget = function None -> Json.Null | Some n -> Json.Int n in
  let cache_hits, cache_misses, cache_entries, cache_evictions = Cache.stats t.rcache in
  [
    ("uptime_s", Json.Float (Obs.now () -. t.t0));
    ("lines", Json.Int (Atomic.get c.lines));
    ("accepted", Json.Int (Atomic.get c.accepted));
    ("ok", Json.Int (Atomic.get c.completed_ok));
    ("partial", Json.Int (Atomic.get c.completed_partial));
    ("failed", Json.Int (Atomic.get c.failed));
    ("rejected_invalid", Json.Int (Atomic.get c.rejected_invalid));
    ("rejected_overload", Json.Int (Atomic.get c.rejected_overload));
    ("rejected_draining", Json.Int (Atomic.get c.rejected_draining));
    ("rejected_budget", Json.Int (Atomic.get c.rejected_budget));
    ("cancelled", Json.Int (Atomic.get c.cancelled));
    ("connections", Json.Int (Atomic.get c.connections));
    ("queue_depth", Json.Int (Scheduler.depth t.sched));
    ("queue_capacity", Json.Int t.config.queue_capacity);
    ("executors", Json.Int t.config.executors);
    ("exec_wakeups", Json.Int (Scheduler.wakeups t.sched));
    ("exec_crashes", Json.Int (Scheduler.crashes t.sched));
    ("exec_respawns", Json.Int (Scheduler.respawns t.sched));
    ("exec_spawn_failures", Json.Int (Scheduler.spawn_failures t.sched));
    ("executors_live", Json.Int (Scheduler.live_workers t.sched));
    ("idle_reaps", Json.Int (Atomic.get c.idle_reaps));
    ("chaos_injected", Json.Int (Chaos.injected t.config.chaos));
    ("global_evals_used", Json.Int (Atomic.get t.global_evals));
    ("global_evals_budget", opt_budget t.config.global_max_evals);
    ("cache_hits", Json.Int cache_hits);
    ("cache_misses", Json.Int cache_misses);
    ("cache_entries", Json.Int cache_entries);
    ("cache_capacity", Json.Int t.config.cache_capacity);
    ("cache_evictions", Json.Int cache_evictions);
    ("events_buffered", Json.Int buffered);
    ("events_total", Json.Int (t.total_events ()));
    ("circuits_cached", Json.Int (Hashtbl.length t.universes));
  ]
  (* Durability counters are always present (zero without [data_dir]) so
     stats consumers never need to probe for the fields. *)
  @ (match t.durable with
    | None ->
        [
          ("journal_appends", Json.Int 0);
          ("journal_fsyncs", Json.Int 0);
          ("journal_recovered", Json.Int 0);
          ("journal_pending", Json.Int 0);
          ("journal_truncated_tail", Json.Int 0);
          ("journal_compactions", Json.Int 0);
          ("cache_persisted", Json.Int 0);
          ("cache_persist_failed", Json.Int 0);
          ("cache_corrupt_quarantined", Json.Int 0);
          ("cache_loaded", Json.Int 0);
          ("restart_generation", Json.Int 0);
        ]
    | Some d ->
        let persisted, persist_failed, recovered_jobs =
          Mutex.lock d.dur_m;
          let r = (d.cache_persisted, d.cache_persist_failed, d.recovered_jobs) in
          Mutex.unlock d.dur_m;
          r
        in
        [
          ("journal_appends", Json.Int (Journal.appends d.journal));
          ("journal_fsyncs", Json.Int (Journal.fsyncs d.journal));
          ("journal_recovered", Json.Int recovered_jobs);
          ("journal_pending", Json.Int (Journal.pending_count d.journal));
          ("journal_truncated_tail", Json.Int (Journal.truncated_tail d.journal));
          ("journal_compactions", Json.Int (Journal.compactions d.journal));
          ("cache_persisted", Json.Int persisted);
          ("cache_persist_failed", Json.Int persist_failed);
          ("cache_corrupt_quarantined", Json.Int d.cache_corrupt);
          ("cache_loaded", Json.Int d.cache_loaded);
          ("restart_generation", Json.Int (Journal.generation d.journal));
        ])

(* --- Job execution -------------------------------------------------------------- *)

type job = {
  line_no : int;
  run : Protocol.run;
  jid : int option;  (* journal id; [None] = not journaled (no data dir, or test hook) *)
  replay : bool;     (* re-enqueued by boot recovery rather than a live client *)
}

(* Gate evaluations a finished run actually performed, read back from the
   engine's own faultsim.run event (the deductive/concurrent engines
   report kernel evals; the injection engines report gate_evals).  This
   is what the global budget is charged with. *)
let gate_evals_of_events events =
  List.fold_left
    (fun acc e ->
      if e.Obs.ev <> "faultsim.run" then acc
      else
        let get = Obs.int_field e in
        acc + (match get "gate_evals" with Some n -> n | None -> Option.value ~default:0 (get "evals")))
    0 events

let stop_cause_field (p : Outcome.partial) =
  match p.Outcome.stopped with
  | Some c -> Outcome.stop_cause_name c
  | None -> "site_failures"

let algo_name = function `Cone -> "cone" | `Full -> "full"

(* The result-cache key: the checkpoint digests pin campaign identity
   (topology, fault universe — including any [gates] restriction — and
   the exact pattern set); engine/algo/drop are appended because they
   shape the reported accounting ([gate_evals], [dt_s]) even though
   detection results are bit-identical across them.  [jobs] (domain
   count) is deliberately absent: it can never change any reported
   field's meaning for a [Complete] run's coverage.  The same identity
   also names the job's on-disk checkpoint — a replayed campaign after a
   crash finds its own progress file by content, not by connection.
   [None] = no durable identity (crash injection is a test hook). *)
let job_ident t r u pats =
  if r.Protocol.crash_sid <> None then None
  else if t.config.cache_capacity = 0 && t.durable = None then None
  else
    Some
      (String.concat "|"
         [
           Faultsim.circuit_digest u;
           Faultsim.universe_digest u;
           Faultsim.patterns_digest pats;
           Protocol.engine_name r.Protocol.engine;
           algo_name r.Protocol.algo;
           string_of_bool r.Protocol.drop;
         ])

(* Build (or resume) the per-job checkpoint controller.  Only jobs big
   enough to be worth the write amplification get one ([ckpt_patterns]);
   a checkpoint corrupted beyond its [.bak] is discarded and the job
   restarts from scratch — durability must never wedge a request. *)
let job_checkpoint t ident u pats ~patterns =
  match t.durable with
  | Some d when patterns >= t.config.ckpt_patterns ->
      let path =
        Filename.concat d.ckpt_dir (Digest.to_hex (Digest.string ident) ^ ".ckpt")
      in
      let make ~resume =
        Faultsim.checkpoint_ctl ~path ~interval:t.config.ckpt_interval ~resume
          ~chaos:t.config.chaos u pats
      in
      (try Some (make ~resume:true)
       with Checkpoint.Error _ -> (
         (try Sys.remove path with Sys_error _ -> ());
         (try Sys.remove (path ^ ".bak") with Sys_error _ -> ());
         try Some (make ~resume:false) with Checkpoint.Error _ -> None))
  | _ -> None

let ckpt_discard ckpt =
  match ckpt with
  | None -> ()
  | Some ctl ->
      (* A completed job's checkpoint is dead weight — worse, a stale one
         would preload a finished state into an unrelated future run of
         the same identity (harmlessly, but pointlessly). *)
      let path = Checkpoint.path ctl in
      (try Sys.remove path with Sys_error _ -> ());
      (try Sys.remove (path ^ ".bak") with Sys_error _ -> ())

let exec_job t client job =
  let r = job.run in
  let replay = job.replay in
  let u = universe_of t r.Protocol.circuit in
  let u =
    match r.Protocol.gates with
    | None -> u
    | Some gates -> Faultsim.restrict_universe u ~gates  (* Invalid_argument on bad ids *)
  in
  let n_sites = Faultsim.n_sites u in
  (match r.Protocol.crash_sid with
  | Some sid when sid >= n_sites ->
      raise
        (Reject
           (Printf.sprintf "field \"crash_sid\": site id %d out of range (%d sites)" sid n_sites))
  | _ -> ());
  let nl = Compiled.netlist u.Faultsim.compiled in
  let prng = Dynmos_util.Prng.create r.Protocol.seed in
  let pats =
    Faultsim.random_patterns prng
      ~n_inputs:(List.length (Netlist.inputs nl))
      ~count:r.Protocol.patterns
  in
  let ident = job_ident t r u pats in
  let key = if t.config.cache_capacity = 0 then None else ident in
  match Option.bind key (fun k -> Cache.find t.rcache k) with
  | Some e ->
      (* Served from the cache: zero gate evaluations, nothing charged
         to the global budget, per-request limits vacuously satisfied. *)
      (e.Cache.summary, e.Cache.dt_s, e.Cache.evals, e.Cache.n_sites, true, e.Cache.recovered)
  | None ->
      (* Global budget: admission control against a server-wide spend.
         Checked at execution time (the budget moves between admission
         and execution) and only for real work — cache hits are free. *)
      let global_remaining =
        match t.config.global_max_evals with
        | None -> None
        | Some budget ->
            let remaining = budget - Atomic.get t.global_evals in
            if remaining <= 0 then begin
              Atomic.incr t.counters.rejected_budget;
              raise (Reject "global gate-evaluation budget exhausted")
            end;
            Some remaining
      in
      let crash_hook =
        Option.map
          (fun sid jid ->
            if jid = sid then failwith (Printf.sprintf "injected crash at site %d" sid))
          r.Protocol.crash_sid
      in
      let deadline = Obs.now () +. r.Protocol.deadline_s in
      let max_evals =
        match (r.Protocol.max_evals, global_remaining) with
        | None, None -> None
        | Some n, None -> Some n
        | None, Some g -> Some g
        | Some n, Some g -> Some (min n g)
      in
      (* A disconnected client's running job stops at the next pattern
         unit through the engines' cooperative interrupt. *)
      let interrupt () = Atomic.get client.cancelled in
      let on_progress =
        match r.Protocol.stream_every with
        | None -> None
        | Some every ->
            let total_units =
              match r.Protocol.engine with `Domains -> n_sites | _ -> r.Protocol.patterns
            in
            let last = ref 0 in
            Some
              (fun ~units_done ~detected ->
                if units_done - !last >= every && not (Atomic.get client.cancelled) then begin
                  last := units_done;
                  client_write t client
                    (Protocol.response ~line:job.line_no ?id:r.Protocol.id ~status:"progress"
                       [
                         ("units_done", Json.Int units_done);
                         ("units_total", Json.Int total_units);
                         ("detected", Json.Int detected);
                       ])
                end)
      in
      (* Each job records into a private memory sink so its gate-eval
         spend can be read back; the events are forwarded to the server
         recorder afterwards, so traces carry the engine events too. *)
      let mem, fetch = Obs.memory_sink () in
      let job_obs = Obs.make mem in
      let drop = r.Protocol.drop in
      let algo = r.Protocol.algo in
      let ckpt =
        match ident with
        | Some id -> job_checkpoint t id u pats ~patterns:r.Protocol.patterns
        | None -> None
      in
      let t0 = Obs.now () in
      let summary =
        match r.Protocol.engine with
        | `Serial ->
            Faultsim.run_serial ~drop ~algo ~obs:job_obs ~deadline ?max_evals ~interrupt
              ?checkpoint:ckpt ?crash_hook ?on_progress u pats
        | `Parallel ->
            Faultsim.run_parallel ~drop ~algo ~obs:job_obs ~deadline ?max_evals ~interrupt
              ?checkpoint:ckpt ?crash_hook ?on_progress u pats
        | `Deductive ->
            Faultsim.run_deductive ~drop ~algo ~obs:job_obs ~deadline ?max_evals ~interrupt
              ?checkpoint:ckpt ?on_progress u pats
        | `Concurrent ->
            Faultsim.run_concurrent ~drop ~algo ~obs:job_obs ~deadline ?max_evals ~interrupt
              ?checkpoint:ckpt ?on_progress u pats
        | `Ppsfp ->
            Faultsim.run_ppsfp ~drop ~algo ?group:r.Protocol.group ~obs:job_obs ~deadline
              ?max_evals ~interrupt ?checkpoint:ckpt ?on_progress u pats
        | `Domains ->
            Faultsim.run_domain_parallel ~drop ~algo ?num_domains:r.Protocol.jobs ~obs:job_obs
              ~deadline ?max_evals ~interrupt ?checkpoint:ckpt ?crash_hook ?on_progress u pats
      in
      let dt = Obs.now () -. t0 in
      let events = fetch () in
      let evals = gate_evals_of_events events in
      ignore (Atomic.fetch_and_add t.global_evals evals);
      (* Forward the engine events into the server trace/ring. *)
      if Obs.enabled t.obs then
        List.iter (fun e -> Obs.emit t.obs ~ev:e.Obs.ev e.Obs.fields) events;
      (match summary.Faultsim.outcome with
      | Outcome.Complete ->
          ckpt_discard ckpt;
          (match key with
          | Some k -> (
              (* A lost insert only costs a future cache miss — the response
                 already carries the summary — which is why [cache.insert]
                 failures are safe to swallow here. *)
              match Chaos.decide t.config.chaos Chaos.Cache_insert with
              | Chaos.Fail | Chaos.Torn -> ()
              | Chaos.Pass ->
                  let entry =
                    {
                      Cache.summary;
                      dt_s = dt;
                      evals;
                      n_sites;
                      recovered = replay;
                      persisted = false;
                      stamp = 0;
                    }
                  in
                  (* Persist before publishing in memory so [persisted]
                     never claims a write that didn't happen.  A failed
                     persist is absorbed: the in-memory entry still
                     serves this boot, only warm-restart reuse is lost
                     (the maintenance hook retries). *)
                  (match t.durable with
                  | None -> ()
                  | Some d -> (
                      match
                        Cache_store.save ~chaos:t.config.chaos d.cache_dir
                          { Cache_store.key = k; summary; dt_s = dt; evals; n_sites }
                      with
                      | () ->
                          entry.Cache.persisted <- true;
                          Mutex.lock d.dur_m;
                          d.cache_persisted <- d.cache_persisted + 1;
                          Mutex.unlock d.dur_m
                      | exception Cache_store.Error _ ->
                          Mutex.lock d.dur_m;
                          d.cache_persist_failed <- d.cache_persist_failed + 1;
                          Mutex.unlock d.dur_m));
                  Cache.add t.rcache k entry)
          | None -> ())
      | Outcome.Partial _ -> ());
      (summary, dt, evals, n_sites, false, replay)

let job_response t client job =
  let r = job.run in
  let base_fields summary dt evals n_sites cached recovered =
    [
      ("circuit", Json.String r.Protocol.circuit);
      ("engine", Json.String (Protocol.engine_name r.Protocol.engine));
      ("sites", Json.Int n_sites);
      ("patterns", Json.Int r.Protocol.patterns);
      ("detected", Json.Int (Faultsim.n_detected summary));
      ("coverage", Json.Float (Faultsim.coverage summary));
      ("dt_s", Json.Float dt);
      ("gate_evals", Json.Int evals);
      ("cached", Json.Bool cached);
      ("recovered", Json.Bool recovered);
    ]
  in
  let respond ~status fields =
    (status, Protocol.response ~line:job.line_no ?id:r.Protocol.id ~status fields)
  in
  match exec_job t client job with
  | summary, dt, evals, n_sites, cached, recovered -> (
      match summary.Faultsim.outcome with
      | Outcome.Complete ->
          respond ~status:"ok" (base_fields summary dt evals n_sites cached recovered)
      | Outcome.Partial p ->
          let failed =
            List.map
              (fun (sid, msg) ->
                Json.Obj [ ("sid", Json.Int sid); ("error", Json.String msg) ])
              p.Outcome.failed_sites
          in
          respond ~status:"partial"
            (base_fields summary dt evals n_sites cached recovered
            @ [
                ("cause", Json.String (stop_cause_field p));
                ("patterns_done", Json.Int summary.Faultsim.patterns_done);
                ("sites_done", Json.Int summary.Faultsim.sites_done);
                ("coverage_of_done", Json.Float (Faultsim.coverage_of_done summary));
                ("failed_sites", Json.List failed);
              ]))
  | exception Reject msg ->
      respond ~status:"error" [ ("error", Json.String msg) ]
  | exception (Invalid_argument msg | Failure msg) ->
      respond ~status:"error" [ ("error", Json.String msg) ]
  | exception exn ->
      (* The supervised pool isolates per-site crashes; anything that
         still lands here (a bug in an engine, Out_of_memory on an
         absurd workload) is reported on the request's line and the
         loop keeps serving. *)
      respond ~status:"error" [ ("error", Json.String (Printexc.to_string exn)) ]

(* Executed on a scheduler worker.  [inflight] was incremented at
   admission; whatever happens, it is decremented exactly once here (or
   by [client_gone] for tasks cancelled before they ran). *)
(* Record a job's terminal outcome in the journal.  A lost done record
   is absorbed — it only costs a redundant, idempotent replay at the
   next boot (the result cache answers it without re-simulating). *)
let journal_done t job ~status =
  match (t.durable, job.jid) with
  | Some d, Some jid -> (
      try Journal.append_done d.journal ~jid ~status with Journal.Error _ -> ())
  | _ -> ()

let run_job t client job =
  Fun.protect
    ~finally:(fun () ->
      Mutex.lock client.wake_m;
      client.inflight <- client.inflight - 1;
      Condition.broadcast client.wake;
      Mutex.unlock client.wake_m)
    (fun () ->
      if Atomic.get client.cancelled then begin
        Atomic.incr t.counters.cancelled;
        journal_done t job ~status:"dropped"
      end
      else begin
        let status, resp = job_response t client job in
        (match status with
        | "ok" -> Atomic.incr t.counters.completed_ok
        | "partial" -> Atomic.incr t.counters.completed_partial
        | _ -> Atomic.incr t.counters.failed);
        journal_done t job ~status;
        if Obs.enabled t.obs then
          Obs.emit t.obs ~ev:"serve.request"
            [
              ("line", Obs.Int job.line_no);
              ("circuit", Obs.String job.run.Protocol.circuit);
              ("status", Obs.String status);
            ];
        client_write t client resp
      end)

(* --- Boot: durable state and recovery ------------------------------------------- *)

let rec mkdir_p dir =
  if dir <> "" && not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error ((Unix.EEXIST | Unix.EISDIR), _, _) -> ()
  end

(* Replay the journal's unfinished jobs through the ordinary execution
   path, one at a time on a pseudo-client whose output is discarded (the
   connection those jobs arrived on died with the previous process; what
   survives is the journal's done record and the result cache entry,
   which answers the client's retry with [recovered:true]).  Serial
   replay keeps recovery bounded — live traffic always has executors to
   run on — and deterministic.  Runs on its own thread so boot returns
   immediately; [wait_recovery] joins it. *)
let recover t d entries =
  let client = register_client t ~output:(fun _ -> ()) in
  Fun.protect
    ~finally:(fun () -> unregister_client t client)
    (fun () ->
      List.iter
        (fun { Journal.jid; envelope } ->
          if not (Atomic.get t.draining) then
            match
              Protocol.parse_request ~limits:(limits t) ~known_circuit:t.known_circuit
                envelope
            with
            | Ok (Protocol.Run run) -> (
                let job = { line_no = 0; run; jid = Some jid; replay = true } in
                Mutex.lock client.wake_m;
                client.inflight <- client.inflight + 1;
                Mutex.unlock client.wake_m;
                match
                  Scheduler.submit t.sched ~client:client.cid (fun () ->
                      run_job t client job)
                with
                | `Ok _ ->
                    Mutex.lock client.wake_m;
                    while client.inflight > 0 do
                      Condition.wait client.wake client.wake_m
                    done;
                    Mutex.unlock client.wake_m;
                    Mutex.lock d.dur_m;
                    d.recovered_jobs <- d.recovered_jobs + 1;
                    Mutex.unlock d.dur_m
                | `Full | `Closed ->
                    (* Draining or shut down: leave the job pending — the
                       next boot replays it. *)
                    Mutex.lock client.wake_m;
                    client.inflight <- client.inflight - 1;
                    Mutex.unlock client.wake_m)
            | Ok _ | Error _ ->
                (* An envelope the schema rejects cannot be re-run; close
                   it out so it doesn't haunt every future boot.  (Can
                   only happen when the journal was written by a build
                   with a different schema or edited by hand — the CRC
                   already vetted the bytes.) *)
                (try Journal.append_done d.journal ~jid ~status:"error"
                 with Journal.Error _ -> ()))
        entries;
      if Obs.enabled t.obs then
        Obs.emit t.obs ~ev:"serve.recovery"
          [
            ("jobs", Obs.Int (List.length entries));
            ("generation", Obs.Int (Journal.generation d.journal));
          ])

let create ?(config = default_config) ?trace ?(known_circuit = Catalog.mem)
    ?(find_circuit = Catalog.find) () =
  let bad what n =
    invalid_arg (Printf.sprintf "Server.create: %s must be positive (got %d)" what n)
  in
  if config.queue_capacity < 1 then bad "queue_capacity" config.queue_capacity;
  if config.executors < 1 then bad "executors" config.executors;
  if config.max_patterns < 0 then bad "max_patterns" config.max_patterns;
  if not (config.max_seconds > 0.0) then
    invalid_arg
      (Printf.sprintf "Server.create: max_seconds must be positive (got %g)" config.max_seconds);
  (match config.max_request_evals with Some n when n < 1 -> bad "max_request_evals" n | _ -> ());
  (match config.global_max_evals with Some n when n < 1 -> bad "global_max_evals" n | _ -> ());
  if config.max_line_bytes < 2 then bad "max_line_bytes" config.max_line_bytes;
  if config.events_capacity < 1 then bad "events_capacity" config.events_capacity;
  if config.cache_capacity < 0 then
    invalid_arg
      (Printf.sprintf "Server.create: cache_capacity must be >= 0 (got %d)"
         config.cache_capacity);
  if config.ckpt_patterns < 0 then
    invalid_arg
      (Printf.sprintf "Server.create: ckpt_patterns must be >= 0 (got %d)"
         config.ckpt_patterns);
  if config.ckpt_interval < 1 then bad "ckpt_interval" config.ckpt_interval;
  (match config.idle_timeout_s with
  | Some s when not (s > 0.0) ->
      invalid_arg
        (Printf.sprintf "Server.create: idle_timeout_s must be positive (got %g)" s)
  | _ -> ());
  let ring, fetch_events, total_events =
    Obs.bounded_memory_sink ~capacity:config.events_capacity
  in
  let sink = match trace with None -> ring | Some s -> Obs.tee ring s in
  (* Recovery order: journal first (pins the boot generation and the
     replay work list), then the on-disk cache (so replays of jobs whose
     results did land before the crash are answered without
     re-simulating), then — lazily, per job — the checkpoints. *)
  let durable, disk_entries =
    match config.data_dir with
    | None -> (None, [])
    | Some dir ->
        mkdir_p dir;
        let cache_dir = Filename.concat dir "cache" in
        let ckpt_dir = Filename.concat dir "ckpt" in
        mkdir_p cache_dir;
        mkdir_p ckpt_dir;
        let journal = Journal.open_ ~chaos:config.chaos (Filename.concat dir "journal") in
        let entries, cache_corrupt = Cache_store.load_all cache_dir in
        ( Some
            {
              journal;
              cache_dir;
              ckpt_dir;
              cache_loaded = List.length entries;
              cache_corrupt;
              dur_m = Mutex.create ();
              cache_persisted = 0;
              cache_persist_failed = 0;
              recovered_jobs = 0;
            },
          entries )
  in
  let t =
    {
      config;
      counters = make_counters ();
      obs = Obs.make sink;
      fetch_events;
      total_events;
      known_circuit;
      find_circuit;
      universes = Hashtbl.create 8;
      universes_m = Mutex.create ();
      rcache = Cache.create config.cache_capacity;
      sched =
        Scheduler.create ~num_domains:config.executors ~capacity:config.queue_capacity
          ~chaos:config.chaos ();
      global_evals = Atomic.make 0;
      draining = Atomic.make false;
      clients_m = Mutex.create ();
      clients = [];
      next_cid = 0;
      drain_hooks = [];
      durable;
      recovery = None;
      t0 = Obs.now ();
    }
  in
  List.iter
    (fun (e : Cache_store.entry) ->
      Cache.add t.rcache e.Cache_store.key
        {
          Cache.summary = e.Cache_store.summary;
          dt_s = e.Cache_store.dt_s;
          evals = e.Cache_store.evals;
          n_sites = e.Cache_store.n_sites;
          recovered = true;
          persisted = true;
          stamp = 0;
        })
    disk_entries;
  (match durable with
  | Some d ->
      let pending = Journal.recovered d.journal in
      if pending <> [] then t.recovery <- Some (Thread.create (fun () -> recover t d pending) ())
  | None -> ());
  t

let wait_recovery t = match t.recovery with None -> () | Some th -> Thread.join th

(* The SIGHUP hook: compact the journal, retry every cache entry whose
   disk write failed, and emit a durability snapshot to the trace sink —
   all without touching admission or live connections. *)
let maintenance t =
  match t.durable with
  | None -> ()
  | Some d ->
      (try Journal.compact d.journal with Journal.Error _ -> ());
      List.iter
        (fun (k, (e : Cache.entry)) ->
          if not e.Cache.persisted then
            match
              Cache_store.save ~chaos:t.config.chaos d.cache_dir
                {
                  Cache_store.key = k;
                  summary = e.Cache.summary;
                  dt_s = e.Cache.dt_s;
                  evals = e.Cache.evals;
                  n_sites = e.Cache.n_sites;
                }
            with
            | () ->
                e.Cache.persisted <- true;
                Mutex.lock d.dur_m;
                d.cache_persisted <- d.cache_persisted + 1;
                Mutex.unlock d.dur_m
            | exception Cache_store.Error _ ->
                Mutex.lock d.dur_m;
                d.cache_persist_failed <- d.cache_persist_failed + 1;
                Mutex.unlock d.dur_m)
        (Cache.snapshot t.rcache);
      if Obs.enabled t.obs then
        Obs.emit t.obs ~ev:"serve.maintenance"
          [
            ("journal_pending", Obs.Int (Journal.pending_count d.journal));
            ("journal_compactions", Obs.Int (Journal.compactions d.journal));
            ("generation", Obs.Int (Journal.generation d.journal));
          ]

(* --- Admission -------------------------------------------------------------------- *)

(* Best-effort id salvage for schema-level rejections: when the line is
   well-formed JSON with an "id", echo it so the client can correlate
   without relying on line numbers. *)
let salvage_id line =
  match Json.parse line with Ok obj -> Json.member "id" obj | Error _ -> None

let admit t client ~line_no line =
  let c = t.counters in
  Atomic.incr c.lines;
  let reject reason msg id =
    (match reason with
    | `Invalid -> Atomic.incr c.rejected_invalid
    | `Overloaded -> Atomic.incr c.rejected_overload
    | `Draining -> Atomic.incr c.rejected_draining);
    if Obs.enabled t.obs then
      Obs.emit t.obs ~ev:"serve.reject"
        [
          ("line", Obs.Int line_no);
          ( "reason",
            Obs.String
              (match reason with
              | `Invalid -> "invalid"
              | `Overloaded -> "overloaded"
              | `Draining -> "draining") );
        ];
    let status = match reason with
      | `Invalid -> "error"
      | `Overloaded -> "overloaded"
      | `Draining -> "draining"
    in
    let fields =
      match reason with
      | `Overloaded ->
          [
            ("error", Json.String msg);
            ("queue_depth", Json.Int (Scheduler.depth t.sched));
            ("queue_capacity", Json.Int t.config.queue_capacity);
          ]
      | _ -> [ ("error", Json.String msg) ]
    in
    client_write t client (Protocol.response ~line:line_no ?id ~status fields)
  in
  if String.length line > t.config.max_line_bytes then
    reject `Invalid
      (Printf.sprintf "request line exceeds %d bytes" t.config.max_line_bytes)
      None
  else
    match Protocol.parse_request ~limits:(limits t) ~known_circuit:t.known_circuit line with
    | Error msg -> reject `Invalid msg (salvage_id line)
    | Ok (Protocol.Ping id) ->
        client_write t client (Protocol.response ~line:line_no ?id ~status:"pong" [])
    | Ok (Protocol.Stats id) ->
        client_write t client
          (Protocol.response ~line:line_no ?id ~status:"stats" (stats_line t))
    | Ok (Protocol.Run run) ->
        if Atomic.get t.draining then
          reject `Draining "server is draining; request not admitted" run.Protocol.id
        else begin
          (* Log-before-work: the job is admitted only once its envelope
             is durably journaled, so a kill -9 after this point cannot
             lose it.  A journal that cannot take the record means the
             durability contract cannot be honoured — the request is
             refused, not silently run undurable.  [crash_sid] requests
             (test hooks) are never journaled, like they are never
             cached. *)
          let jid =
            match t.durable with
            | Some d when run.Protocol.crash_sid = None -> (
                match
                  Journal.append_admit d.journal
                    ~envelope:(Protocol.run_envelope run)
                with
                | jid -> Ok (Some jid)
                | exception Journal.Error msg -> Error msg)
            | _ -> Ok None
          in
          match jid with
          | Error msg ->
              Atomic.incr c.failed;
              client_write t client
                (Protocol.response ~line:line_no ?id:run.Protocol.id ~status:"error"
                   [ ("error", Json.String ("journal append failed: " ^ msg)) ])
          | Ok jid -> (
              let job = { line_no; run; jid; replay = false } in
              Mutex.lock client.wake_m;
              client.inflight <- client.inflight + 1;
              Mutex.unlock client.wake_m;
              match
                Scheduler.submit t.sched ~client:client.cid (fun () -> run_job t client job)
              with
              | `Ok depth ->
                  Atomic.incr c.accepted;
                  if Obs.enabled t.obs then
                    Obs.emit t.obs ~ev:"serve.accept"
                      [
                        ("line", Obs.Int line_no);
                        ("circuit", Obs.String run.Protocol.circuit);
                        ("engine", Obs.String (Protocol.engine_name run.Protocol.engine));
                        ("queue_depth", Obs.Int depth);
                      ]
              | (`Full | `Closed) as r ->
                  Mutex.lock client.wake_m;
                  client.inflight <- client.inflight - 1;
                  Condition.broadcast client.wake;
                  Mutex.unlock client.wake_m;
                  journal_done t job ~status:"dropped";
                  (match r with
                  | `Full ->
                      reject `Overloaded
                        (Printf.sprintf "pending queue full (%d requests)"
                           t.config.queue_capacity)
                        run.Protocol.id
                  | `Closed ->
                      reject `Draining "server is draining; request not admitted"
                        run.Protocol.id))
        end

(* --- The serve loop -------------------------------------------------------------- *)

type stop = [ `Eof | `Drained ]

(* One client session.  The reader runs on its own thread so a reader
   parked in a blocking [input] can be left behind when the server
   drains (the caller returns once every admitted job is answered; the
   abandoned thread is reaped at process exit, nothing of ours is in
   flight on it).  Safe to call concurrently from many threads against
   one [t] — that is exactly what [serve_socket] does. *)
let serve t ?(drain = fun () -> false) ~input ~output () =
  let client = register_client t ~output in
  let reader () =
    (try
       let line_no = ref 0 in
       let continue = ref true in
       while !continue do
         if drain () then begin
           request_drain t;
           continue := false
         end
         else if Atomic.get t.draining || Atomic.get client.cancelled then continue := false
         else
           match input () with
           | None -> continue := false
           | Some line ->
               incr line_no;
               admit t client ~line_no:!line_no line
       done
     with _ -> ());
    Mutex.lock client.wake_m;
    client.eof <- true;
    Condition.broadcast client.wake;
    Mutex.unlock client.wake_m
  in
  ignore (Thread.create reader ());
  Mutex.lock client.wake_m;
  while
    not
      ((client.eof || Atomic.get t.draining || Atomic.get client.cancelled)
      && client.inflight = 0)
  do
    Condition.wait client.wake client.wake_m
  done;
  Mutex.unlock client.wake_m;
  unregister_client t client;
  let stop : stop = if Atomic.get t.draining then `Drained else `Eof in
  if Obs.enabled t.obs then
    Obs.emit t.obs ~ev:"serve.drain"
      [
        ("reason", Obs.String (match stop with `Eof -> "eof" | `Drained -> "signal"));
        ("lines", Obs.Int (Atomic.get t.counters.lines));
        ("accepted", Obs.Int (Atomic.get t.counters.accepted));
      ];
  stop

let serve_channels t ?drain ic oc =
  let input () =
    match input_line ic with
    | line -> Some line
    | exception (End_of_file | Sys_error _) -> None
  in
  let output line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  serve t ?drain ~input ~output ()

(* A reader parked in [input_line] can only be freed by closing the fd
   under it, so the socket path reads the raw fd through [select]: a
   connection that has gone silent past [idle_timeout_s] surfaces as
   [`Idle] and can be reaped, freeing its thread (and, transitively, any
   queue slots its future requests would have held).  Line semantics
   mirror [input_line] — split on '\n', a trailing unterminated line is
   delivered before EOF.  [serve.read] injects here: [Fail]/[Torn] close
   the connection as if the peer vanished; [Delay] stalls the reader,
   which is what the idle timeout defends against. *)
let make_fd_reader ?idle_timeout_s ~chaos fd =
  let acc = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let lines = Queue.create () in
  let at_eof = ref false in
  let flush_tail () =
    if Buffer.length acc > 0 then begin
      let l = Buffer.contents acc in
      Buffer.clear acc;
      `Line l
    end
    else `Eof
  in
  let rec next () =
    if not (Queue.is_empty lines) then `Line (Queue.pop lines)
    else if !at_eof then `Eof
    else if Chaos.decide chaos Chaos.Serve_read <> Chaos.Pass then begin
      at_eof := true;
      flush_tail ()
    end
    else begin
      let timeout = match idle_timeout_s with None -> -1.0 | Some s -> s in
      match Unix.select [ fd ] [] [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> next ()
      | exception Unix.Unix_error _ ->
          at_eof := true;
          flush_tail ()
      | [], _, _ -> `Idle
      | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> next ()
          | exception Unix.Unix_error _ ->
              at_eof := true;
              flush_tail ()
          | 0 ->
              at_eof := true;
              flush_tail ()
          | n ->
              for i = 0 to n - 1 do
                let c = Bytes.get chunk i in
                if c = '\n' then begin
                  Queue.add (Buffer.contents acc) lines;
                  Buffer.clear acc
                end
                else Buffer.add_char acc c
              done;
              next ())
    end
  in
  next

(* One socket connection, run entirely on its own thread: read/admit to
   EOF (or drain/disconnect/idle-reap), then hold the connection open
   until every admitted job has been answered. *)
let handle_conn t fd =
  let oc = Unix.out_channel_of_descr fd in
  let output line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let client = register_client t ~output in
  let read =
    make_fd_reader ?idle_timeout_s:t.config.idle_timeout_s ~chaos:t.config.chaos fd
  in
  (try
     let line_no = ref 0 in
     let continue = ref true in
     while !continue do
       if Atomic.get t.draining || Atomic.get client.cancelled then continue := false
       else
         match read () with
         | `Line line ->
             incr line_no;
             admit t client ~line_no:!line_no line
         | `Eof -> continue := false
         | `Idle ->
             (* A silent connection with nothing in flight is dead
                weight — reap it so its thread frees up.  With work
                still in flight, keep waiting: the client is presumably
                blocked on our responses, not gone. *)
             let busy =
               Mutex.lock client.wake_m;
               let b = client.inflight > 0 in
               Mutex.unlock client.wake_m;
               b
             in
             if not busy then begin
               Atomic.incr t.counters.idle_reaps;
               if Obs.enabled t.obs then
                 Obs.emit t.obs ~ev:"serve.idle_reap" [ ("cid", Obs.Int client.cid) ];
               continue := false
             end
     done
   with _ -> ());
  Mutex.lock client.wake_m;
  client.eof <- true;
  while client.inflight > 0 && not (Atomic.get client.cancelled) do
    Condition.wait client.wake client.wake_m
  done;
  Mutex.unlock client.wake_m;
  unregister_client t client;
  close_out_noerr oc

let serve_socket t ?(drain = fun () -> false) path =
  (* A client that disconnects mid-write must cost a cancelled session,
     not the process: without this the first write to the half-closed
     socket raises SIGPIPE and kills the server.  Ignored, the write
     fails with EPIPE, which [client_write] already turns into
     [client_gone]. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  (if Sys.file_exists path then
     match (Unix.lstat path).Unix.st_kind with
     | Unix.S_SOCK -> Unix.unlink path
     | _ ->
         invalid_arg
           (Printf.sprintf "Server.serve_socket: %s exists and is not a socket" path));
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let stop_accept = Atomic.make false in
  let conns_m = Mutex.create () in
  let live = ref [] in
  let threads = ref [] in
  (* The drain hook wakes everything this loop can be blocked on: a
     dummy connection unblocks [accept] (portable, unlike shutting down
     a listening socket), and half-closing live connections gives their
     readers EOF. *)
  let hook () =
    Atomic.set stop_accept true;
    (try
       let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
       (try Unix.connect fd (Unix.ADDR_UNIX path) with _ -> ());
       Unix.close fd
     with _ -> ());
    Mutex.lock conns_m;
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_RECEIVE with _ -> ())
      !live;
    Mutex.unlock conns_m
  in
  add_drain_hook t hook;
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      try Unix.unlink path with Unix.Unix_error _ | Sys_error _ -> ())
    (fun () ->
      Unix.bind sock (Unix.ADDR_UNIX path);
      Unix.listen sock 64;
      let continue = ref true in
      while !continue do
        if Atomic.get stop_accept || Atomic.get t.draining then continue := false
        else if drain () then begin
          request_drain t;
          continue := false
        end
        else
          match Unix.accept sock with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()  (* signal: recheck drain *)
          | exception Unix.Unix_error _ when Atomic.get stop_accept -> continue := false
          | fd, _ ->
              if Atomic.get stop_accept || Atomic.get t.draining then begin
                (try Unix.close fd with Unix.Unix_error _ -> ());
                continue := false
              end
              else begin
                Atomic.incr t.counters.connections;
                Mutex.lock conns_m;
                live := fd :: !live;
                Mutex.unlock conns_m;
                let th =
                  Thread.create
                    (fun () ->
                      Fun.protect
                        ~finally:(fun () ->
                          Mutex.lock conns_m;
                          live := List.filter (fun f -> f <> fd) !live;
                          Mutex.unlock conns_m)
                        (fun () -> try handle_conn t fd with _ -> ()))
                    ()
                in
                threads := th :: !threads
              end
      done;
      (* every connection finishes answering its admitted work *)
      List.iter Thread.join !threads)
