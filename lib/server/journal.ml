(* Write-ahead job journal for the serve loop.  See journal.mli for the
   contracts.

   Format (plain text, one record per line — same transparency rationale
   as lib/faultsim/checkpoint.ml):

     dynmos-journal v1
     <crc32> gen <N>
     <crc32> admit <jid> <envelope-json>
     <crc32> done <jid> <status>

   where <crc32> is eight lowercase hex digits over the rest of the line
   (exclusive of the separating space and the newline).  The CRC is per
   record, not per file, because the file is append-only: a whole-file
   checksum would have to be rewritten on every append, which is exactly
   the non-atomic tail this format exists to survive.

   Recovery semantics: a record is durable once its line — CRC, payload,
   trailing newline — is fully on disk.  On open, the file is scanned
   from the top; the first line that is missing its newline, fails its
   CRC or does not parse marks the torn tail, and the file is truncated
   back to the last good record (kill -9 mid-append loses at most the
   record being appended, which was never acknowledged).  Everything
   after a torn record is unreachable by construction — appends are
   serialized under one mutex, so bytes after a half-written record can
   only be garbage from a pre-crash filesystem reordering, and trusting
   them would replay corrupt envelopes.

   Compaction rewrites the segment as header + latest generation +
   pending admits (completed pairs are dropped), via the same
   tmp + fsync + rename discipline as checkpoints: a crash mid-compaction
   leaves the original segment untouched plus a stale tmp that the next
   open sweeps. *)

module Chaos = Dynmos_chaos.Chaos

exception Error of string

let fail fmt = Format.kasprintf (fun msg -> raise (Error msg)) fmt

let version = 1
let header = Printf.sprintf "dynmos-journal v%d" version

(* --- CRC-32 (IEEE 802.3, the zlib polynomial) ------------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8)) s;
  !c lxor 0xffffffff

let crc_hex s = Printf.sprintf "%08x" (crc32 s)

(* --- Types ------------------------------------------------------------------- *)

type entry = { jid : int; envelope : string }

type t = {
  path : string;
  chaos : Chaos.t;
  rotate_limit : int;
  lock : Mutex.t;
  mutable oc : out_channel option;     (* None after [close] *)
  mutable next_jid : int;
  pending : (int, string) Hashtbl.t;   (* jid -> envelope, admits without a done *)
  mutable records : int;               (* records in the current segment *)
  generation : int;
  mutable appends : int;
  mutable fsyncs : int;
  mutable failed_appends : int;
  mutable compactions : int;
  truncated_tail : int;
  stale_cleaned : int;
}

(* --- Record encoding ---------------------------------------------------------- *)

let encode payload = crc_hex payload ^ " " ^ payload

(* A record payload parses to one of the three kinds, or is rejected. *)
type record = Gen of int | Admit of int * string | Done of int * string

let parse_record line =
  (* "<8 hex> <payload>" with a matching CRC *)
  if String.length line < 10 || line.[8] <> ' ' then None
  else
    let crc = String.sub line 0 8 in
    let payload = String.sub line 9 (String.length line - 9) in
    if not (String.equal crc (crc_hex payload)) then None
    else
      match String.split_on_char ' ' payload with
      | "gen" :: [ n ] -> Option.map (fun n -> Gen n) (int_of_string_opt n)
      | "admit" :: jid :: (_ :: _ as rest) ->
          Option.map
            (fun jid -> Admit (jid, String.concat " " rest))
            (int_of_string_opt jid)
      | [ "done"; jid; status ] ->
          Option.map (fun jid -> Done (jid, status)) (int_of_string_opt jid)
      | _ -> None

(* --- Open / recovery ----------------------------------------------------------- *)

let cleanup_stale path =
  let dir = Filename.dirname path in
  let prefix = Filename.basename path ^ ".tmp." in
  let plen = String.length prefix in
  match Sys.readdir dir with
  | exception Sys_error _ -> 0
  | entries ->
      Array.fold_left
        (fun n entry ->
          if String.length entry > plen && String.sub entry 0 plen = prefix then (
            try
              Sys.remove (Filename.concat dir entry);
              n + 1
            with Sys_error _ -> n)
          else n)
        0 entries

(* Scan an existing segment: validate the header, replay records until
   the torn tail (if any), and report where the good prefix ends.
   Returns (good_bytes, generation, pending, max_jid, records, tail_torn). *)
let scan path =
  let ic = try open_in_bin path with Sys_error msg -> fail "journal: cannot read %s: %s" path msg in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let len = in_channel_length ic in
      let raw = really_input_string ic len in
      let hlen = String.length header in
      if len < hlen + 1 || not (String.equal (String.sub raw 0 hlen) header) || raw.[hlen] <> '\n'
      then
        fail "journal %s: bad header (not a dynmos-journal v%d file)" path version;
      let pending = Hashtbl.create 16 in
      let generation = ref 0 in
      let max_jid = ref (-1) in
      let records = ref 0 in
      let pos = ref (hlen + 1) in
      let good = ref !pos in
      let torn = ref false in
      while (not !torn) && !pos < len do
        match String.index_from_opt raw !pos '\n' with
        | None -> torn := true (* no newline: the appender died mid-record *)
        | Some nl -> (
            let line = String.sub raw !pos (nl - !pos) in
            match parse_record line with
            | None -> torn := true (* CRC or shape failure: trust nothing beyond *)
            | Some r ->
                (match r with
                | Gen g -> generation := max !generation g
                | Admit (jid, envelope) ->
                    Hashtbl.replace pending jid envelope;
                    max_jid := max !max_jid jid
                | Done (jid, _) -> Hashtbl.remove pending jid);
                incr records;
                pos := nl + 1;
                good := !pos)
      done;
      (!good, !generation, pending, !max_jid, !records, !torn))

let fsync_oc t oc =
  match Chaos.decide t.chaos Chaos.Journal_fsync with
  | Chaos.Fail | Chaos.Torn -> ()
  | Chaos.Pass -> (
      (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
      t.fsyncs <- t.fsyncs + 1)

let with_oc t f =
  match t.oc with None -> fail "journal %s: closed" t.path | Some oc -> f oc

(* Append one already-encoded record line under the lock, honouring the
   [journal.append] point: Fail raises before any byte is written; Torn
   writes half the line with no newline — the on-disk artifact of a
   kill -9 mid-append — and then raises.  [tap:false] skips the
   injection point: the boot-time generation stamp is bookkeeping, not
   admitted client work, and must not consume a one-shot armed against
   admission. *)
let append_record ?(tap = true) t payload =
  with_oc t @@ fun oc ->
  let line = encode payload in
  (match (if tap then Chaos.decide t.chaos Chaos.Journal_append else Chaos.Pass) with
  | Chaos.Pass -> ()
  | Chaos.Fail ->
      t.failed_appends <- t.failed_appends + 1;
      fail "journal %s: injected append failure" t.path
  | Chaos.Torn ->
      t.failed_appends <- t.failed_appends + 1;
      output_string oc (String.sub line 0 (String.length line / 2));
      flush oc;
      fail "journal %s: injected torn append" t.path);
  (try
     output_string oc line;
     output_char oc '\n';
     flush oc
   with Sys_error msg -> fail "journal %s: append failed: %s" t.path msg);
  fsync_oc t oc;
  t.appends <- t.appends + 1;
  t.records <- t.records + 1

(* --- Compaction ----------------------------------------------------------------- *)

let pending_list t =
  Hashtbl.fold (fun jid envelope acc -> { jid; envelope } :: acc) t.pending []
  |> List.sort (fun a b -> compare a.jid b.jid)

let compact_locked t =
  with_oc t @@ fun old_oc ->
  let tmp = Printf.sprintf "%s.tmp.%d" t.path (Unix.getpid ()) in
  (match Chaos.decide t.chaos Chaos.Journal_compact with
  | Chaos.Pass -> ()
  | Chaos.Fail -> fail "journal %s: injected compaction failure" t.path
  | Chaos.Torn ->
      (* Crash mid-compaction: a truncated replacement segment exists
         only under its tmp name, the live segment is untouched, and the
         next open sweeps the garbage. *)
      let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp in
      output_string oc (header ^ "\n");
      output_string oc (String.sub (encode (Printf.sprintf "gen %d" t.generation)) 0 5);
      close_out_noerr oc;
      fail "journal %s: injected torn compaction" t.path);
  let oc =
    try open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp
    with Sys_error msg -> fail "journal %s: cannot write %s: %s" t.path tmp msg
  in
  let entries = pending_list t in
  (try
     output_string oc (header ^ "\n");
     output_string oc (encode (Printf.sprintf "gen %d" t.generation));
     output_char oc '\n';
     List.iter
       (fun { jid; envelope } ->
         output_string oc (encode (Printf.sprintf "admit %d %s" jid envelope));
         output_char oc '\n')
       entries;
     flush oc;
     (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
     close_out oc
   with Sys_error msg ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     fail "journal %s: compaction write failed: %s" t.path msg);
  (try Sys.rename tmp t.path
   with Sys_error msg ->
     (try Sys.remove tmp with Sys_error _ -> ());
     fail "journal %s: cannot publish compacted segment: %s" t.path msg);
  (* The old channel points at an unlinked inode; all future appends go
     to the fresh segment. *)
  close_out_noerr old_oc;
  t.oc <- Some (open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 t.path);
  t.records <- 1 + List.length entries;
  t.compactions <- t.compactions + 1

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let compact t = locked t (fun () -> compact_locked t)

(* --- API ------------------------------------------------------------------------ *)

let open_ ?(chaos = Chaos.disabled) ?(rotate_limit = 1024) path =
  if rotate_limit < 2 then fail "journal: rotate_limit must be >= 2 (got %d)" rotate_limit;
  let stale_cleaned = cleanup_stale path in
  let fresh = not (Sys.file_exists path) in
  let good, generation, pending, max_jid, records, torn =
    if fresh then (0, 0, Hashtbl.create 16, -1, 0, false) else scan path
  in
  (* Truncate the torn tail before reopening for append: the half-record
     must not prefix the next append into a corrupt line. *)
  if torn then begin
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> Unix.ftruncate fd good)
  end;
  let oc =
    try open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644 path
    with Sys_error msg -> fail "journal: cannot open %s: %s" path msg
  in
  if fresh then begin
    output_string oc (header ^ "\n");
    flush oc
  end;
  let t =
    {
      path;
      chaos;
      rotate_limit;
      lock = Mutex.create ();
      oc = Some oc;
      next_jid = max_jid + 1;
      pending;
      records;
      generation = generation + 1;
      appends = 0;
      fsyncs = 0;
      failed_appends = 0;
      compactions = 0;
      truncated_tail = (if torn then 1 else 0);
      stale_cleaned;
    }
  in
  (* Stamp this boot.  The generation record is ordinary — CRC'd,
     fsync'd — so [generation] survives compaction and restarts count
     monotonically. *)
  locked t (fun () -> append_record ~tap:false t (Printf.sprintf "gen %d" t.generation));
  t

let recovered t = locked t (fun () -> pending_list t)

let append_admit t ~envelope =
  if String.contains envelope '\n' then
    invalid_arg "Journal.append_admit: envelope must be a single line";
  locked t (fun () ->
      let jid = t.next_jid in
      (* Reserve the id even if the append fails: a retry must not reuse
         a jid that may half-exist in the torn tail. *)
      t.next_jid <- jid + 1;
      append_record t (Printf.sprintf "admit %d %s" jid envelope);
      Hashtbl.replace t.pending jid envelope;
      jid)

let append_done t ~jid ~status =
  if String.contains status ' ' || String.contains status '\n' then
    invalid_arg "Journal.append_done: status must be a single word";
  locked t (fun () ->
      append_record t (Printf.sprintf "done %d %s" jid status);
      Hashtbl.remove t.pending jid;
      (* Rotation: once the segment has accumulated [rotate_limit]
         records, fold the completed pairs away.  Only when compaction
         would actually shrink the segment — a journal that is all
         pending admits is already minimal, and rewriting it on every
         done would be quadratic. *)
      if t.records >= t.rotate_limit && Hashtbl.length t.pending * 2 < t.records then
        match compact_locked t with
        | () -> ()
        | exception Error _ -> () (* failed auto-compaction: segment intact, retry later *))

let close t =
  locked t (fun () ->
      match t.oc with
      | None -> ()
      | Some oc ->
          close_out_noerr oc;
          t.oc <- None)

let path t = t.path
let generation t = t.generation
let pending_count t = locked t (fun () -> Hashtbl.length t.pending)
let appends t = locked t (fun () -> t.appends)
let fsyncs t = locked t (fun () -> t.fsyncs)
let failed_appends t = locked t (fun () -> t.failed_appends)
let compactions t = locked t (fun () -> t.compactions)
let truncated_tail t = t.truncated_tail
let stale_cleaned t = t.stale_cleaned
