(* Request validation and response encoding for the serve loop.  The
   design rule: every way a request can be wrong has a named error
   message, and validation happens before a job is admitted — the
   executor only ever sees structurally sound work (circuit-dependent
   checks like gate-id ranges are the one exception, resolved at
   execution time when the compiled circuit is in hand). *)

type engine = [ `Serial | `Parallel | `Deductive | `Concurrent | `Ppsfp | `Domains ]

let engine_name = function
  | `Serial -> "serial"
  | `Parallel -> "parallel"
  | `Deductive -> "deductive"
  | `Concurrent -> "concurrent"
  | `Ppsfp -> "ppsfp"
  | `Domains -> "domains"

type run = {
  id : Json.t option;
  circuit : string;
  patterns : int;
  seed : int;
  engine : engine;
  jobs : int option;
  group : int option;
  drop : bool;
  algo : [ `Full | `Cone ];
  gates : int list option;
  deadline_s : float;
  max_evals : int option;
  crash_sid : int option;
  stream_every : int option;
}

type request = Run of run | Stats of Json.t option | Ping of Json.t option

type limits = {
  max_patterns : int;
  max_seconds : float;
  max_request_evals : int option;
}

(* --- Field extraction -------------------------------------------------------- *)

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let to_int ~field = function
  | Json.Int n -> Ok n
  | Json.Float f
    when Float.is_integer f && f >= -1073741823. && f <= 1073741823. ->
      Ok (int_of_float f)
  | Json.Float _ -> err "field %S: number is not a representable integer" field
  | v -> err "field %S: expected an integer, got %s" field (Json.type_name v)

let to_float ~field = function
  | Json.Int n -> Ok (float_of_int n)
  | Json.Float f when Float.is_finite f -> Ok f
  | Json.Float _ -> err "field %S: number must be finite" field
  | v -> err "field %S: expected a number, got %s" field (Json.type_name v)

let to_bool ~field = function
  | Json.Bool b -> Ok b
  | v -> err "field %S: expected a boolean, got %s" field (Json.type_name v)

let to_string ~field = function
  | Json.String s -> Ok s
  | v -> err "field %S: expected a string, got %s" field (Json.type_name v)

let opt_field obj field conv =
  match Json.member field obj with
  | None -> Ok None
  | Some v ->
      let* x = conv ~field v in
      Ok (Some x)

let enum_field ~field choices v =
  let* s = to_string ~field v in
  match List.assoc_opt s choices with
  | Some x -> Ok x
  | None ->
      err "field %S: unknown value %S (expected one of: %s)" field s
        (String.concat ", " (List.map fst choices))

(* Strictness: an unknown field is a rejected request.  A misspelled
   "max_evls" silently ignored would run without its budget — the
   opposite of what a robustness protocol should do. *)
let check_fields ~op ~allowed obj =
  match obj with
  | Json.Obj fields ->
      let rec go = function
        | [] -> Ok ()
        | (k, _) :: rest ->
            if List.mem k allowed then go rest
            else
              err "unknown field %S for op %S (allowed: %s)" k op
                (String.concat ", " allowed)
      in
      go fields
  | _ -> err "internal error: op %S: field check applied to a non-object request" op

(* --- Request parsing --------------------------------------------------------- *)

let parse_run ~limits ~known_circuit obj id =
  let* () =
    check_fields ~op:"run"
      ~allowed:
        [
          "op"; "id"; "circuit"; "patterns"; "seed"; "engine"; "jobs"; "group"; "drop";
          "algo"; "gates"; "deadline_s"; "max_evals"; "crash_sid"; "stream_every";
        ]
      obj
  in
  let* circuit =
    match Json.member "circuit" obj with
    | None -> err "field %S is required for op \"run\"" "circuit"
    | Some v -> to_string ~field:"circuit" v
  in
  let* () =
    if known_circuit circuit then Ok () else err "unknown circuit %S" circuit
  in
  let* patterns = opt_field obj "patterns" to_int in
  let patterns = Option.value ~default:256 patterns in
  let* () =
    if patterns < 0 then err "field \"patterns\" must be >= 0 (got %d)" patterns
    else if patterns > limits.max_patterns then
      err "field \"patterns\": %d exceeds the per-request limit of %d" patterns
        limits.max_patterns
    else Ok ()
  in
  let* seed = opt_field obj "seed" to_int in
  let seed = Option.value ~default:42 seed in
  let* engine =
    match Json.member "engine" obj with
    | None -> Ok `Serial
    | Some v ->
        enum_field ~field:"engine"
          [
            ("serial", `Serial);
            ("parallel", `Parallel);
            ("deductive", `Deductive);
            ("concurrent", `Concurrent);
            ("ppsfp", `Ppsfp);
            ("domains", `Domains);
          ]
          v
  in
  let* jobs = opt_field obj "jobs" to_int in
  let* () =
    match jobs with
    | Some j when j < 1 || j > 1024 -> err "field \"jobs\" must be in 1..1024 (got %d)" j
    | Some _ when engine <> `Domains -> err "field \"jobs\" only applies to the \"domains\" engine"
    | _ -> Ok ()
  in
  let* group = opt_field obj "group" to_int in
  let* () =
    match group with
    | Some g when g < 1 || g > 1024 -> err "field \"group\" must be in 1..1024 (got %d)" g
    | Some _ when engine <> `Ppsfp -> err "field \"group\" only applies to the \"ppsfp\" engine"
    | _ -> Ok ()
  in
  let* drop = opt_field obj "drop" to_bool in
  let drop = Option.value ~default:true drop in
  let* algo =
    match Json.member "algo" obj with
    | None -> Ok `Cone
    | Some v -> enum_field ~field:"algo" [ ("cone", `Cone); ("full", `Full) ] v
  in
  let* gates =
    match Json.member "gates" obj with
    | None -> Ok None
    | Some (Json.List l) ->
        let rec go acc = function
          | [] -> Ok (Some (List.rev acc))
          | v :: rest ->
              let* n = to_int ~field:"gates" v in
              go (n :: acc) rest
        in
        go [] l
    | Some v -> err "field \"gates\": expected an array of gate ids, got %s" (Json.type_name v)
  in
  let* deadline_s = opt_field obj "deadline_s" to_float in
  let* deadline_s =
    match deadline_s with
    | Some d when d <= 0.0 -> err "field \"deadline_s\" must be positive (got %g)" d
    | Some d -> Ok (Float.min d limits.max_seconds)
    | None -> Ok limits.max_seconds
  in
  let* max_evals = opt_field obj "max_evals" to_int in
  let* max_evals =
    match (max_evals, limits.max_request_evals) with
    | Some n, _ when n < 1 -> err "field \"max_evals\" must be >= 1 (got %d)" n
    | Some n, Some cap -> Ok (Some (min n cap))
    | Some n, None -> Ok (Some n)
    | None, cap -> Ok cap
  in
  let* stream_every = opt_field obj "stream_every" to_int in
  let* () =
    match stream_every with
    | Some n when n < 1 -> err "field \"stream_every\" must be >= 1 (got %d)" n
    | _ -> Ok ()
  in
  let* crash_sid = opt_field obj "crash_sid" to_int in
  let* () =
    match crash_sid with
    | Some s when s < 0 -> err "field \"crash_sid\" must be >= 0 (got %d)" s
    | Some _ when engine = `Deductive || engine = `Concurrent || engine = `Ppsfp ->
        err
          "field \"crash_sid\" requires a supervised injection engine (serial, parallel, \
           domains)"
    | _ -> Ok ()
  in
  Ok
    (Run
       {
         id;
         circuit;
         patterns;
         seed;
         engine;
         jobs;
         group;
         drop;
         algo;
         gates;
         deadline_s;
         max_evals;
         crash_sid;
         stream_every;
       })

let parse_request ~limits ~known_circuit line =
  match Json.parse line with
  | Error msg -> err "malformed JSON: %s" msg
  | Ok (Json.Obj _ as obj) -> (
      let id = Json.member "id" obj in
      let* op =
        match Json.member "op" obj with
        | None -> Ok "run"
        | Some v -> to_string ~field:"op" v
      in
      match op with
      | "run" -> parse_run ~limits ~known_circuit obj id
      | "stats" ->
          let* () = check_fields ~op:"stats" ~allowed:[ "op"; "id" ] obj in
          Ok (Stats id)
      | "ping" ->
          let* () = check_fields ~op:"ping" ~allowed:[ "op"; "id" ] obj in
          Ok (Ping id)
      | other -> err "unknown op %S (expected \"run\", \"stats\" or \"ping\")" other)
  | Ok v -> err "request must be a JSON object, got %s" (Json.type_name v)

let request_id = function Run r -> r.id | Stats id -> id | Ping id -> id

(* --- Journal envelopes --------------------------------------------------------- *)

(* The write-ahead journal's replay key: a canonical, client-independent
   re-encoding of a run request.  Everything that shapes the result or
   its accounting is kept (including the already-clamped limits, so a
   replay stops where the original would have); everything tied to the
   original connection is dropped — [id] and [stream_every] belong to a
   client that no longer exists, and [crash_sid] requests are test hooks
   the server never journals.  The envelope re-enters through
   {!parse_request} on recovery, so it can never drift from the schema:
   a field the parser would reject cannot be encoded here. *)
let run_envelope r =
  let opt name conv v = Option.map (fun x -> (name, conv x)) v in
  let fields =
    List.filter_map Fun.id
      [
        Some ("op", Json.String "run");
        Some ("circuit", Json.String r.circuit);
        Some ("patterns", Json.Int r.patterns);
        Some ("seed", Json.Int r.seed);
        Some ("engine", Json.String (engine_name r.engine));
        opt "jobs" (fun n -> Json.Int n) r.jobs;
        opt "group" (fun n -> Json.Int n) r.group;
        Some ("drop", Json.Bool r.drop);
        Some ("algo", Json.String (match r.algo with `Cone -> "cone" | `Full -> "full"));
        opt "gates" (fun gs -> Json.List (List.map (fun g -> Json.Int g) gs)) r.gates;
        Some ("deadline_s", Json.Float r.deadline_s);
        opt "max_evals" (fun n -> Json.Int n) r.max_evals;
      ]
  in
  Json.to_string (Json.Obj fields)

(* --- Responses ---------------------------------------------------------------- *)

let response ~line ?id ~status fields =
  let id_field = match id with None -> [] | Some v -> [ ("id", v) ] in
  Json.to_string
    (Json.Obj
       ((("line", Json.Int line) :: id_field)
       @ (("status", Json.String status) :: fields)))
