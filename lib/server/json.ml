(* Strict recursive-descent JSON, sized for one-line requests.  See the
   interface for the hardening constraints; the implementation raises a
   private [Fail] internally and converts it to [Error] at the single
   entry point, so [parse] is total. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let max_depth = 64

exception Fail of string

(* --- Parsing ---------------------------------------------------------------- *)

type st = { s : string; mutable pos : int }

let fail st fmt =
  Printf.ksprintf (fun msg -> raise (Fail (Printf.sprintf "%s at offset %d" msg st.pos))) fmt

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && (match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some x when x = c -> st.pos <- st.pos + 1
  | Some x -> fail st "expected '%c', found '%c'" c x
  | None -> fail st "expected '%c', found end of input" c

let literal st lit v =
  String.iter (fun c -> expect st c) lit;
  v

(* Append a Unicode scalar value as UTF-8. *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else if cp < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
  end

let hex4 st =
  let digit () =
    match peek st with
    | Some ('0' .. '9' as c) -> st.pos <- st.pos + 1; Char.code c - Char.code '0'
    | Some ('a' .. 'f' as c) -> st.pos <- st.pos + 1; Char.code c - Char.code 'a' + 10
    | Some ('A' .. 'F' as c) -> st.pos <- st.pos + 1; Char.code c - Char.code 'A' + 10
    | _ -> fail st "bad \\u escape (need four hex digits)"
  in
  let a = digit () in
  let b = digit () in
  let c = digit () in
  let d = digit () in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
        st.pos <- st.pos + 1;
        (match peek st with
        | Some '"' -> st.pos <- st.pos + 1; Buffer.add_char buf '"'
        | Some '\\' -> st.pos <- st.pos + 1; Buffer.add_char buf '\\'
        | Some '/' -> st.pos <- st.pos + 1; Buffer.add_char buf '/'
        | Some 'b' -> st.pos <- st.pos + 1; Buffer.add_char buf '\b'
        | Some 'f' -> st.pos <- st.pos + 1; Buffer.add_char buf '\012'
        | Some 'n' -> st.pos <- st.pos + 1; Buffer.add_char buf '\n'
        | Some 'r' -> st.pos <- st.pos + 1; Buffer.add_char buf '\r'
        | Some 't' -> st.pos <- st.pos + 1; Buffer.add_char buf '\t'
        | Some 'u' ->
            st.pos <- st.pos + 1;
            let cp = hex4 st in
            if cp >= 0xD800 && cp <= 0xDBFF then begin
              (* High surrogate: the pair is mandatory. *)
              expect st '\\';
              expect st 'u';
              let lo = hex4 st in
              if lo < 0xDC00 || lo > 0xDFFF then fail st "high surrogate without low surrogate";
              add_utf8 buf (0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00))
            end
            else if cp >= 0xDC00 && cp <= 0xDFFF then fail st "lone low surrogate"
            else add_utf8 buf cp
        | _ -> fail st "bad escape");
        go ()
    | Some c when Char.code c < 0x20 ->
        fail st "raw control character 0x%02x in string" (Char.code c)
    | Some c ->
        st.pos <- st.pos + 1;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

(* JSON number grammar: '-'? int frac? exp?, int = 0 | [1-9][0-9]*.
   Parsed as Int when the literal is integral and round-trips through
   [int_of_string]; Float otherwise (huge literals overflow to infinity,
   left for field validation to reject by name). *)
let parse_number st =
  let start = st.pos in
  if peek st = Some '-' then st.pos <- st.pos + 1;
  (match peek st with
  | Some '0' -> st.pos <- st.pos + 1
  | Some '1' .. '9' ->
      while (match peek st with Some '0' .. '9' -> true | _ -> false) do
        st.pos <- st.pos + 1
      done
  | _ -> fail st "expected a digit");
  let integral = ref true in
  if peek st = Some '.' then begin
    integral := false;
    st.pos <- st.pos + 1;
    (match peek st with Some '0' .. '9' -> () | _ -> fail st "expected a digit after '.'");
    while (match peek st with Some '0' .. '9' -> true | _ -> false) do
      st.pos <- st.pos + 1
    done
  end;
  (match peek st with
  | Some ('e' | 'E') ->
      integral := false;
      st.pos <- st.pos + 1;
      (match peek st with Some ('+' | '-') -> st.pos <- st.pos + 1 | _ -> ());
      (match peek st with Some '0' .. '9' -> () | _ -> fail st "expected an exponent digit");
      while (match peek st with Some '0' .. '9' -> true | _ -> false) do
        st.pos <- st.pos + 1
      done
  | _ -> ());
  let lit = String.sub st.s start (st.pos - start) in
  if !integral then
    match int_of_string_opt lit with
    | Some n -> Int n
    | None -> Float (float_of_string lit)  (* overflows to +/- infinity *)
  else Float (float_of_string lit)

let rec parse_value st depth =
  if depth > max_depth then fail st "nesting deeper than %d" max_depth;
  skip_ws st;
  match peek st with
  | None -> fail st "expected a value, found end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then (st.pos <- st.pos + 1; List [])
      else begin
        let items = ref [] in
        let rec elems () =
          items := parse_value st (depth + 1) :: !items;
          skip_ws st;
          match peek st with
          | Some ',' -> st.pos <- st.pos + 1; elems ()
          | Some ']' -> st.pos <- st.pos + 1
          | _ -> fail st "expected ',' or ']'"
        in
        elems ();
        List (List.rev !items)
      end
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then (st.pos <- st.pos + 1; Obj [])
      else begin
        let fields = ref [] in
        let rec members () =
          skip_ws st;
          let k = parse_string st in
          if List.mem_assoc k !fields then fail st "duplicate key %S" k;
          skip_ws st;
          expect st ':';
          let v = parse_value st (depth + 1) in
          fields := (k, v) :: !fields;
          skip_ws st;
          match peek st with
          | Some ',' -> st.pos <- st.pos + 1; members ()
          | Some '}' -> st.pos <- st.pos + 1
          | _ -> fail st "expected ',' or '}'"
        in
        members ();
        Obj (List.rev !fields)
      end
  | Some c -> fail st "unexpected character '%s'" (Char.escaped c)

let parse s =
  let st = { s; pos = 0 } in
  match
    let v = parse_value st 0 in
    skip_ws st;
    if st.pos <> String.length s then fail st "trailing garbage after value";
    v
  with
  | v -> Ok v
  | exception Fail msg -> Error msg

(* --- Printing --------------------------------------------------------------- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let float_into buf f =
  if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
  else if Float.is_nan f then Buffer.add_string buf "\"nan\""
  else Buffer.add_string buf (if f > 0.0 then "\"inf\"" else "\"-inf\"")

let rec value_into buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> float_into buf f
  | String s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          value_into buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          value_into buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  value_into buf v;
  Buffer.contents buf

let type_name = function
  | Null -> "null"
  | Bool _ -> "bool"
  | Int _ -> "int"
  | Float _ -> "float"
  | String _ -> "string"
  | List _ -> "array"
  | Obj _ -> "object"

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
