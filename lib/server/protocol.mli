(** The serve loop's JSONL protocol: one request object per input line,
    exactly one response object per line, every response carrying the
    1-based ["line"] it answers (responses may interleave across lines —
    immediate rejections overtake queued work — so the line number, not
    arrival order, is the correlation key).

    Requests: [{"op":"run", "circuit":"carry8", ...}] (op defaults to
    "run"), [{"op":"stats"}], [{"op":"ping"}].  Unknown ops and unknown
    fields are rejected by name — a typo yields an error response, never
    silent misbehavior.  Responses: [{"line":N, "id":..., "status":S,
    ...}] with status one of ok / partial / error / overloaded /
    draining / pong / stats.

    A run request carrying ["stream_every":K] additionally receives
    [{"status":"progress", ...}] lines while it executes — these are
    {e not} the response; the one-response-per-line invariant counts
    terminal statuses only (everything except "progress"). *)

type engine = [ `Serial | `Parallel | `Deductive | `Concurrent | `Ppsfp | `Domains ]

val engine_name : engine -> string

type run = {
  id : Json.t option;  (** echoed verbatim in the response *)
  circuit : string;    (** validated against the catalog at admission *)
  patterns : int;
  seed : int;
  engine : engine;
  jobs : int option;   (** worker domains, [`Domains] engine only *)
  group : int option;  (** fault-group size, [`Ppsfp] engine only *)
  drop : bool;
  algo : [ `Full | `Cone ];
  gates : int list option;
      (** restrict the fault universe to these gate ids (validated
          against the circuit at execution time) *)
  deadline_s : float;
      (** effective per-request wall budget, already capped by the
          server's [max_seconds] *)
  max_evals : int option;
      (** effective per-request gate-eval budget, already capped by the
          server's [max_request_evals] *)
  crash_sid : int option;
      (** fault-injection test hook: evaluation of this site id raises,
          exercising the supervised pool's crash isolation end to end *)
  stream_every : int option;
      (** emit a ["progress"] line roughly every this many completed
          work units (patterns, or sites for the domains engine) *)
}

type request =
  | Run of run
  | Stats of Json.t option  (** payload: the request id, echoed *)
  | Ping of Json.t option

type limits = {
  max_patterns : int;
  max_seconds : float;
  max_request_evals : int option;
}
(** The admission caps {!parse_request} applies while validating. *)

val parse_request :
  limits:limits -> known_circuit:(string -> bool) -> string -> (request, string) result
(** Validate one input line against the schema.  Never raises: malformed
    JSON, a non-object, wrong field types, unknown fields or ops,
    unknown circuits, out-of-range pattern counts / seeds / budgets all
    return [Error] with a message naming the offending field. *)

val request_id : request -> Json.t option

val run_envelope : run -> string
(** The canonical client-independent journal envelope of a run request:
    one JSON line keeping every result-shaping field (circuit, patterns,
    seed, engine, jobs/group, drop, algo, gates, the clamped deadline
    and eval budget) and dropping the connection-bound ones ([id],
    [stream_every], [crash_sid]).  Restart recovery replays envelopes
    through {!parse_request}, so the encoding cannot drift from the
    schema.  Responses to requests answered from recovered state carry
    ["recovered":true] next to ["cached"]. *)

val response :
  line:int -> ?id:Json.t -> status:string -> (string * Json.t) list -> string
(** One response line (no trailing newline): [{"line":N, "id":...,
    "status":S, <fields>}]; ["id"] is omitted when the request carried
    none. *)
