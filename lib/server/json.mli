(** A minimal, strict, total JSON parser and printer for the serve
    loop's line protocol.  The repo deliberately carries no JSON
    library; this one is sized for single-line requests and hardened
    against hostile input:

    - {!parse} never raises: every malformed input — truncated values,
      raw control bytes (including NUL), numbers too large for the
      grammar, duplicate object keys, lone UTF-16 surrogates — returns
      [Error] with an offset-carrying message;
    - nesting depth is capped ({!max_depth}) so a line of ten thousand
      ['['] characters reports an error instead of overflowing the
      stack;
    - numbers parse to [Int] when they are integral and fit in an OCaml
      [int], and to [Float] otherwise (overflowing literals become
      infinities, which field validation then rejects with a named
      message). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list  (** keys unique, in input order *)

val max_depth : int
(** Maximum container nesting {!parse} accepts (64). *)

val parse : string -> (t, string) result
(** Parse one complete JSON value (surrounding whitespace allowed;
    trailing garbage is an error).  Never raises. *)

val to_string : t -> string
(** Canonical one-line encoding: strings escaped per RFC 8259,
    non-finite floats as the strings ["nan"]/["inf"]/["-inf"] (matching
    the obs JSONL convention, so every emitted line stays parseable). *)

val type_name : t -> string
(** ["null"], ["bool"], ["int"], ["float"], ["string"], ["array"],
    ["object"] — for error messages. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] on anything else. *)
