(** Persistent backing for the server's content-addressed result cache.

    One checksummed file per completed run under [data-dir/cache],
    written atomically (tmp + fsync + rename) at insertion time and
    loaded back on boot, so a warm restart serves repeat requests at
    zero gate evaluations.  Corrupt files — bit-rot, or the torn writes
    the [cache.persist] chaos point injects — are quarantined (renamed
    [*.corrupt]) and counted, never trusted and never fatal. *)

exception Error of string

type entry = {
  key : string;  (** the in-memory cache's content-addressed key *)
  summary : Dynmos_faultsim.Faultsim.summary;  (** [Complete] outcomes only *)
  dt_s : float;
  evals : int;
  n_sites : int;
}

val file_of : string -> string -> string
(** [file_of dir key] — the entry's path: [dir/<md5(key)>.entry]. *)

val save : ?chaos:Dynmos_chaos.Chaos.t -> string -> entry -> unit
(** Persist one entry into the directory.  Raises {!Error} on failure
    (including injected ones) — safe to absorb and count: the in-memory
    cache still holds the entry, only warm-restart reuse is lost. *)

val load : string -> entry
(** Load and verify one entry file.  Raises {!Error} on any mismatch. *)

val load_all : string -> entry list * int
(** Scan a cache directory: [(healthy entries in deterministic order,
    corrupt files quarantined)].  A missing directory is an empty
    cache. *)

val quarantine : string -> bool
(** Rename a file to [*.corrupt] (fallback: remove it). *)
