open Dynmos_obs

(** [dynmos serve] — a long-lived, crash-isolated, concurrent batch
    front end over the fault-simulation engines.

    One JSONL request per input line, exactly one terminal JSONL
    response per request line (see {!Protocol}).  The loop is built not
    to die, and to serve many clients at once:

    - {e validation}: malformed JSON, schema violations, unknown
      circuits, out-of-range ids and failing circuit lookups yield
      [{"status":"error", ...}] responses, never an exception escaping
      the loop or killing an executor;
    - {e isolation}: jobs run on the supervised engines with a
      per-request wall-clock deadline and gate-eval budget (capped by
      the server {!config}), so one hung or crashing request is reported
      [partial]/[error] while the server keeps serving;
    - {e concurrency}: every connection (or {!serve} call) gets its own
      reader; admitted jobs multiplex onto one long-lived pool of
      [executors] worker domains which drains clients round-robin —
      FIFO per client, and one client's backlog cannot starve another's
      next request.  Workers park on a condition variable when idle (no
      sleep-polling anywhere in the serve path);
    - {e result cache}: completed runs are stored in a content-addressed
      LRU cache keyed by the checkpoint digests (circuit x universe x
      patterns) plus engine/algo/drop; a repeat request is answered
      bit-identically with zero new gate evaluations and no charge to
      the global budget.  Content addressing makes invalidation moot —
      any input change changes the key — so the LRU bound exists only to
      reclaim space;
    - {e admission control}: run requests pass through a bounded pending
      queue; once full, new work is rejected immediately with
      [{"status":"overloaded"}] — backpressure instead of unbounded
      memory.  An optional global gate-eval budget rejects work once
      exhausted;
    - {e cancellation}: a client that disconnects mid-service has its
      queued jobs dropped and its running jobs interrupted at the next
      work unit; other clients never notice;
    - {e graceful drain}: {!request_drain} (the CLI's first
      SIGTERM/SIGINT, forwarded from a sigwait thread) stops admission
      ([{"status":"draining"}] for lines still read), lets queued and
      in-flight jobs finish under their per-request limits, wakes every
      blocked reader/acceptor, and {!serve} returns [`Drained]. *)

type config = {
  queue_capacity : int;        (** pending run requests (all clients) before
                                   [overloaded] (default 64) *)
  executors : int;             (** worker domains in the shared pool (default 2) *)
  max_patterns : int;          (** per-request pattern-count cap (default 1_000_000) *)
  max_seconds : float;         (** per-request wall-clock cap and default deadline
                                   (default 60.) — also bounds drain time *)
  max_request_evals : int option;  (** per-request gate-eval cap and default budget *)
  global_max_evals : int option;   (** whole-server gate-eval budget; once spent,
                                       run requests are rejected *)
  max_line_bytes : int;        (** request lines longer than this are rejected (default 1 MiB) *)
  events_capacity : int;       (** ring size of the bounded in-memory obs sink
                                   backing the [stats] op (default 1024) *)
  cache_capacity : int;        (** result-cache entries before LRU eviction
                                   (default 256; 0 disables caching) *)
  idle_timeout_s : float option;  (** socket connections silent this long with no
                                      work in flight are reaped — dead peers free
                                      their reader thread (default [None] = never) *)
  chaos : Dynmos_chaos.Chaos.t;   (** deterministic fault injection: arms the
                                      [serve.write]/[serve.read]/[cache.insert]
                                      points here, [sched.spawn]/[sched.task] in
                                      the executor pool, and — with [data_dir] —
                                      [journal.*]/[cache.persist]/[ckpt.*] in the
                                      durability layer (default disabled) *)
  data_dir : string option;    (** durable state root (default [None] = volatile):
                                   [journal] (write-ahead job journal), [cache/]
                                   (persistent result cache), [ckpt/] (per-job
                                   checkpoints).  Admission becomes log-before-
                                   work, and {!create} recovers whatever the
                                   previous process — even one killed with
                                   [kill -9] — left behind *)
  ckpt_patterns : int;         (** with [data_dir]: jobs of at least this many
                                   patterns write resumable checkpoints
                                   (default 4096) *)
  ckpt_interval : int;         (** checkpoint write throttle, in completed work
                                   units (default 1000) *)
}

val default_config : config

type t
(** Server state shared across connections: config, counters, the
    executor pool, the result cache, the compiled-universe cache and the
    obs recorder (a {!Obs.bounded_memory_sink} of [events_capacity]
    events, teed with the optional trace sink). *)

val create :
  ?config:config ->
  ?trace:Obs.sink ->
  ?known_circuit:(string -> bool) ->
  ?find_circuit:(string -> (Dynmos_netlist.Netlist.t, string) result) ->
  unit ->
  t
(** Spawns the executor pool ([config.executors] domains) — pair with
    {!shutdown}.  [known_circuit] (default {!Dynmos_circuits.Catalog.mem})
    vets names at admission; [find_circuit] (default
    {!Dynmos_circuits.Catalog.find}) resolves them at execution — an
    [Error] there becomes a structured error response, not a dead
    executor.  The split is injectable so tests can drive the
    lookup-failure path.  Raises [Invalid_argument] on a nonsensical
    config (non-positive capacities, limits or line bound).

    With [config.data_dir] set, boot also runs crash recovery, in
    order: the journal is opened (torn tail truncated, boot generation
    stamped), the persistent result cache is rehydrated (corrupt
    entries quarantined), and every journaled-but-unfinished job is
    re-enqueued on a background thread, replayed through the ordinary
    execution path — resuming from its checkpoint when one was written
    — and closed out in the journal; its result lands in the cache, so
    the client's retry is answered bit-identically with
    [cached:true, recovered:true].  Raises {!Journal.Error} when the
    journal file exists but is not one of ours. *)

val wait_recovery : t -> unit
(** Block until boot recovery has replayed (or abandoned, on drain)
    every journaled job.  No-op without [data_dir] or with an empty
    journal. *)

val maintenance : t -> unit
(** The CLI's SIGHUP hook: force a journal compaction, retry persisting
    any cache entry whose disk write failed, and emit a
    [serve.maintenance] durability snapshot — without interrupting
    admission or live connections.  No-op without [data_dir]. *)

val shutdown : t -> unit
(** Stop and join the executor pool once all queued work has been
    claimed.  Idempotent.  Call after the last {!serve} returns; domains
    are a bounded resource (OCaml caps them around 128). *)

val request_drain : t -> unit
(** Begin a graceful drain: stop admitting runs, wake blocked readers
    and acceptors (registered drain hooks close listening sockets and
    half-close live connections), let in-flight work finish.  First call
    wins; safe from any ordinary thread, {e not} from a signal handler
    (it takes locks) — convert signals with [Thread.wait_signal] first,
    as the CLI does. *)

val obs : t -> Obs.t
(** The server's recorder — serve-loop lifecycle events
    ([serve.accept], [serve.reject], [serve.request], [serve.drain])
    and every engine's [faultsim.run] events flow through it. *)

val stats_line : t -> (string * Json.t) list
(** The fields of a [stats] response: uptime, per-status counters,
    queue/executor/cache/budget state, obs-ring occupancy, the
    recovery counters ([exec_respawns], [exec_spawn_failures],
    [executors_live], [idle_reaps], [chaos_injected]) and the
    durability counters ([journal_appends], [journal_fsyncs],
    [journal_recovered], [journal_pending], [journal_truncated_tail],
    [journal_compactions], [cache_persisted], [cache_persist_failed],
    [cache_corrupt_quarantined], [cache_loaded],
    [restart_generation] — all zero without [data_dir]).  Exposed for
    the CLI and tests. *)

val exec_wakeups : t -> int
(** Times an executor woke from its idle wait — parked workers cost
    zero wakeups, so this stays O(jobs), not O(idle time / poll
    interval).  Exposed so tests can pin down that the old sleep-poll
    loops are gone. *)

type stop = [ `Eof | `Drained ]

val serve :
  t ->
  ?drain:(unit -> bool) ->
  input:(unit -> string option) ->
  output:(string -> unit) ->
  unit ->
  stop
(** One client session: serve until [input] returns [None] ([`Eof]) or
    the server drains ([`Drained], via [drain] polled between lines or
    {!request_drain}); both paths answer all admitted work before
    returning.  Safe to call concurrently against one [t] — each call is
    its own client with FIFO response ordering.  [input] yields one line
    (no newline) per call and runs on a dedicated reader thread;
    [output] receives one complete response line (no newline) per call,
    possibly from any executor domain, serialized per client by the
    server.  Never raises on request content; an [output] failure marks
    the client gone — queued jobs are cancelled, running ones
    interrupted — and the call returns after in-flight work unwinds. *)

val serve_channels : t -> ?drain:(unit -> bool) -> in_channel -> out_channel -> stop
(** {!serve} over channels: flushed line-buffered responses; EOF and
    read errors on [ic] end the loop as [`Eof]. *)

val serve_socket : t -> ?drain:(unit -> bool) -> string -> unit
(** Listen on a Unix-domain socket at the given path (an existing
    {e socket} file is replaced; any other file kind is refused) and
    serve connections {e concurrently} — one reader thread per
    connection, all multiplexed onto the shared executor pool — until
    {!request_drain} (or [drain], polled between accepts).  A connection
    dying mid-response only cancels that client's work.  On drain the
    accept loop is woken, live connections are half-closed so their
    readers see EOF, every admitted job is answered, connection threads
    are joined, and the socket file is unlinked. *)
