open Dynmos_obs

(** [dynmos serve] — a long-lived, crash-isolated batch front end over
    the fault-simulation engines.

    One JSONL request per input line, exactly one JSONL response per
    request line (see {!Protocol}).  The loop is built not to die:

    - {e validation}: malformed JSON, schema violations, unknown
      circuits and out-of-range ids yield [{"status":"error", ...}]
      responses, never an exception escaping the loop;
    - {e isolation}: jobs run on the supervised engines with a
      per-request wall-clock deadline and gate-eval budget (capped by
      the server {!config}), so one hung or crashing request is reported
      [partial]/[error] while the server keeps serving;
    - {e admission control}: run requests pass through a bounded pending
      queue; once full, new work is rejected immediately with
      [{"status":"overloaded"}] — backpressure instead of unbounded
      memory.  An optional global gate-eval budget rejects work once
      exhausted;
    - {e graceful drain}: when the [drain] callback turns true (the
      CLI's first SIGTERM/SIGINT), admission stops ([{"status":
      "draining"}] for lines still read), queued and in-flight jobs
      finish under their per-request limits, the obs trace is flushed,
      and {!serve} returns [`Drained].

    Execution runs on a dedicated domain while the caller's domain reads
    input, so a slow job never stops admission (and rejections can
    overtake earlier jobs' responses — correlate by ["line"]). *)

type config = {
  queue_capacity : int;        (** pending run requests before [overloaded] (default 64) *)
  max_patterns : int;          (** per-request pattern-count cap (default 1_000_000) *)
  max_seconds : float;         (** per-request wall-clock cap and default deadline
                                   (default 60.) — also bounds drain time *)
  max_request_evals : int option;  (** per-request gate-eval cap and default budget *)
  global_max_evals : int option;   (** whole-server gate-eval budget; once spent,
                                       run requests are rejected *)
  max_line_bytes : int;        (** request lines longer than this are rejected (default 1 MiB) *)
  events_capacity : int;       (** ring size of the bounded in-memory obs sink
                                   backing the [stats] op (default 1024) *)
}

val default_config : config

type t
(** Server state shared across connections: config, counters, the
    compiled-universe cache and the obs recorder (a
    {!Obs.bounded_memory_sink} of [events_capacity] events, teed with
    the optional trace sink). *)

val create : ?config:config -> ?trace:Obs.sink -> unit -> t
(** Raises [Invalid_argument] on a nonsensical config (non-positive
    capacities, limits or line bound). *)

val obs : t -> Obs.t
(** The server's recorder — serve-loop lifecycle events
    ([serve.accept], [serve.reject], [serve.request], [serve.drain])
    and every engine's [faultsim.run] events flow through it. *)

val stats_line : t -> queue_depth:int -> (string * Json.t) list
(** The fields of a [stats] response: uptime, per-status counters, queue
    and budget state, obs-ring occupancy.  Exposed for the CLI and
    tests. *)

type stop = [ `Eof | `Drained ]

val serve :
  t ->
  ?drain:(unit -> bool) ->
  input:(unit -> string option) ->
  output:(string -> unit) ->
  unit ->
  stop
(** Serve until [input] returns [None] ([`Eof]) or [drain] turns true
    ([`Drained]); both paths finish all admitted work before returning.
    [input] yields one line (no newline) per call; [output] receives one
    complete response line (no newline) per call and may be called from
    two domains (calls are serialized by the server).  Never raises on
    request content; it does propagate [output] failures (a dead client
    pipe) after which the caller owns cleanup. *)

val serve_channels : t -> ?drain:(unit -> bool) -> in_channel -> out_channel -> stop
(** {!serve} over channels: flushed line-buffered responses; EOF and
    read errors on [ic] end the loop as [`Eof]. *)

val serve_socket : t -> ?drain:(unit -> bool) -> string -> unit
(** Listen on a Unix-domain socket at the given path (an existing
    {e socket} file is replaced; any other file kind is refused) and
    serve connections sequentially until [drain] turns true.  A
    connection dying mid-response is absorbed: the loop accepts the next
    client.  The socket file is unlinked on return. *)
