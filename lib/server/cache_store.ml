(* On-disk backing for the content-addressed result cache.  See
   cache_store.mli.

   One file per entry under the data dir's cache/ subdirectory, named by
   the MD5 of the cache key (the key itself contains '|' separators and
   digests, so it is stored inside the file and verified on load).  The
   write discipline is the checkpoint one — tmp + fsync + rename, a
   whole-file MD5 on the last line — so a crash mid-persist never
   publishes a torn entry; what CAN appear on disk is bit-rot or a torn
   write injected by the [cache.persist] chaos point, and the loader's
   answer to both is quarantine: the file is renamed to [*.corrupt]
   (kept for inspection, never rescanned) and counted, and the boot
   continues with every healthy entry. *)

open Dynmos_faultsim
module Chaos = Dynmos_chaos.Chaos

exception Error of string

let fail fmt = Format.kasprintf (fun msg -> raise (Error msg)) fmt

let version = 1

type entry = {
  key : string;
  summary : Faultsim.summary;
  dt_s : float;
  evals : int;
  n_sites : int;
}

let file_of dir key = Filename.concat dir (Digest.to_hex (Digest.string key) ^ ".entry")

(* --- Serialization ------------------------------------------------------------ *)

let payload e =
  let s = e.summary in
  if s.Faultsim.outcome <> Dynmos_faultsim.Outcome.Complete then
    invalid_arg "Cache_store: only Complete results are persisted";
  let buf = Buffer.create (256 + (8 * s.Faultsim.n_sites)) in
  let line fmt =
    Format.kasprintf (fun l -> Buffer.add_string buf l; Buffer.add_char buf '\n') fmt
  in
  line "dynmos-cache v%d" version;
  line "key %s" e.key;
  line "n_sites %d" s.Faultsim.n_sites;
  line "n_patterns %d" s.Faultsim.n_patterns;
  line "patterns_done %d" s.Faultsim.patterns_done;
  line "sites_done %d" s.Faultsim.sites_done;
  (* %h: exact hex float round-trip — a warm restart must serve the very
     bytes a cold run reported. *)
  line "dt_s %h" e.dt_s;
  line "evals %d" e.evals;
  line "universe_sites %d" e.n_sites;
  line "first %s"
    (String.concat " "
       (Array.to_list
          (Array.map
             (function None -> "-" | Some p -> string_of_int p)
             s.Faultsim.first_detection)));
  Buffer.contents buf

let save ?(chaos = Chaos.disabled) dir e =
  let path = file_of dir e.key in
  let body = payload e in
  let body = body ^ Printf.sprintf "checksum %s\n" (Digest.to_hex (Digest.string body)) in
  (match Chaos.decide chaos Chaos.Cache_persist with
  | Chaos.Pass -> ()
  | Chaos.Fail -> fail "cache entry %s: injected persist failure" path
  | Chaos.Torn ->
      (* Model corruption the atomic rename cannot prevent: a truncated
         entry at the FINAL name, which the next boot must quarantine. *)
      let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path in
      output_string oc (String.sub body 0 (String.length body / 2));
      close_out_noerr oc;
      fail "cache entry %s: injected torn persist" path);
  let tmp = Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) in
  let oc =
    try open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp
    with Sys_error msg -> fail "cache entry: cannot write %s: %s" tmp msg
  in
  (try
     output_string oc body;
     flush oc;
     (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
     close_out oc
   with Sys_error msg ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     fail "cache entry: short write to %s: %s" tmp msg);
  try Sys.rename tmp path
  with Sys_error msg ->
    (try Sys.remove tmp with Sys_error _ -> ());
    fail "cache entry: cannot publish %s: %s" path msg

let load path =
  let ic =
    try open_in_bin path with Sys_error msg -> fail "cache entry: cannot read %s: %s" path msg
  in
  let raw =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let body, sum =
    match String.rindex_opt (String.trim raw) '\n' with
    | None -> fail "cache entry %s: not an entry file" path
    | Some i ->
        let raw = String.trim raw in
        (String.sub raw 0 (i + 1), String.sub raw (i + 1) (String.length raw - i - 1))
  in
  (match String.split_on_char ' ' sum with
  | [ "checksum"; hex ] ->
      if not (String.equal hex (Digest.to_hex (Digest.string body))) then
        fail "cache entry %s: checksum mismatch (truncated or corrupted)" path
  | _ -> fail "cache entry %s: missing checksum line" path);
  let lines = String.split_on_char '\n' body |> List.filter (fun l -> l <> "") in
  let kv =
    List.map
      (fun l ->
        match String.index_opt l ' ' with
        | Some i -> (String.sub l 0 i, String.sub l (i + 1) (String.length l - i - 1))
        | None -> (l, ""))
      lines
  in
  let get k =
    match List.assoc_opt k kv with
    | Some v -> v
    | None -> fail "cache entry %s: missing field %S" path k
  in
  let get_int k =
    match int_of_string_opt (get k) with
    | Some n -> n
    | None -> fail "cache entry %s: field %S is not an integer (%S)" path k (get k)
  in
  (match get "dynmos-cache" with
  | "v1" -> ()
  | v -> fail "cache entry %s: unsupported version %s (this build reads v%d)" path v version);
  let n_sites = get_int "n_sites" in
  let n_patterns = get_int "n_patterns" in
  if n_sites < 0 || n_patterns < 0 then fail "cache entry %s: negative counts" path;
  let first_detection =
    let words =
      String.split_on_char ' ' (get "first") |> List.filter (fun w -> w <> "") |> Array.of_list
    in
    if Array.length words <> n_sites then
      fail "cache entry %s: %d detection entries for %d sites" path (Array.length words) n_sites;
    Array.map
      (fun w ->
        if w = "-" then None
        else
          match int_of_string_opt w with
          | Some p when p >= 0 && p < n_patterns -> Some p
          | _ -> fail "cache entry %s: bad detection entry %S" path w)
      words
  in
  let dt_s =
    match float_of_string_opt (get "dt_s") with
    | Some f when Float.is_finite f && f >= 0.0 -> f
    | _ -> fail "cache entry %s: bad dt_s %S" path (get "dt_s")
  in
  {
    key = get "key";
    summary =
      {
        Faultsim.n_sites;
        n_patterns;
        first_detection;
        outcome = Dynmos_faultsim.Outcome.Complete;
        patterns_done = get_int "patterns_done";
        sites_done = get_int "sites_done";
      };
    dt_s;
    evals = get_int "evals";
    n_sites = get_int "universe_sites";
  }

let quarantine path =
  try
    Sys.rename path (path ^ ".corrupt");
    true
  with Sys_error _ -> ( try Sys.remove path; true with Sys_error _ -> false)

let load_all dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ([], 0)
  | files ->
      Array.sort compare files;
      Array.fold_left
        (fun (entries, corrupt) name ->
          if Filename.check_suffix name ".entry" then
            let path = Filename.concat dir name in
            match load path with
            | e ->
                (* The file name must be the key's digest — an entry
                   copied under the wrong name would serve the wrong
                   campaign's results. *)
                if Filename.concat dir (Filename.basename (file_of dir e.key)) = path then
                  (e :: entries, corrupt)
                else (
                  ignore (quarantine path);
                  (entries, corrupt + 1))
            | exception Error _ ->
                ignore (quarantine path);
                (entries, corrupt + 1)
          else (entries, corrupt))
        ([], 0) files
      |> fun (entries, corrupt) -> (List.rev entries, corrupt)
