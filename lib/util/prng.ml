(* Deterministic pseudo-random number generation for the whole project.

   Library code never uses [Stdlib.Random]: every stochastic component
   (random pattern generators, weighted pattern sources, circuit
   generators, Monte-Carlo estimators) takes an explicit [Prng.t] so that
   all experiments are reproducible bit-for-bit.  The generator is
   xoshiro256** seeded through splitmix64, which is more than adequate
   for test-pattern generation. *)

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 seed =
  let z = ref (Int64.add seed 0x9E3779B97F4A7C15L) in
  let next () =
    z := Int64.add !z 0x9E3779B97F4A7C15L;
    let a = !z in
    let a = Int64.mul (Int64.logxor a (Int64.shift_right_logical a 30)) 0xBF58476D1CE4E5B9L in
    let a = Int64.mul (Int64.logxor a (Int64.shift_right_logical a 27)) 0x94D049BB133111EBL in
    Int64.logxor a (Int64.shift_right_logical a 31)
  in
  next

let create seed =
  let next = splitmix64 (Int64.of_int seed) in
  let s0 = next () in
  let s1 = next () in
  let s2 = next () in
  let s3 = next () in
  if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then { s0 = 1L; s1; s2; s3 }
  else { s0; s1; s2; s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let x = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 x;
  t.s3 <- rotl t.s3 45;
  result

let bits62 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(* Uniform in [0, bound) by rejection sampling: a draw landing in the
   final partial copy of [0, bound) inside [0, 2^62) is redrawn, so every
   value is exactly equally likely (plain [mod] over-weights the low
   values for bounds not dividing 2^62).  Accepted draws reduce with the
   same [mod] as before, so existing seeds keep their streams except on
   the astronomically rare rejection (probability < bound / 2^62). *)
let int t bound =
  assert (bound > 0);
  if bound land (bound - 1) = 0 then bits62 t land (bound - 1)
  else begin
    (* 2^62 mod bound, computed without representing 2^62 (max_int = 2^62 - 1) *)
    let rem = ((max_int mod bound) + 1) mod bound in
    let cutoff = max_int - rem in
    let rec draw () =
      let x = bits62 t in
      if x > cutoff then draw () else x mod bound
    in
    draw ()
  end

let float t =
  (* 53 uniformly distributed mantissa bits in [0,1). *)
  let x = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float x *. (1.0 /. 9007199254740992.0)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = float t < p

let split t =
  let next = splitmix64 (next_int64 t) in
  let s0 = next () in
  let s1 = next () in
  let s2 = next () in
  let s3 = next () in
  { s0; s1; s2; s3 }

(* Save/restore: the four state words as a versioned, human-readable
   token.  Resumable campaigns (Dynmos_faultsim.Checkpoint) persist the
   generator alongside their progress so a resumed run continues the
   exact stream — [restore (save t)] and [t] produce identical outputs
   forever after, from any point mid-stream. *)

let save t = Printf.sprintf "xoshiro256ss:v1:%016Lx:%016Lx:%016Lx:%016Lx" t.s0 t.s1 t.s2 t.s3

let restore s =
  let fail () =
    invalid_arg
      (Printf.sprintf "Prng.restore: %S is not a saved generator state (expected %s)" s
         "\"xoshiro256ss:v1:<16 hex>:<16 hex>:<16 hex>:<16 hex>\"")
  in
  match String.split_on_char ':' s with
  | [ "xoshiro256ss"; "v1"; a; b; c; d ] ->
      let word w =
        if String.length w <> 16 then fail ();
        match Int64.of_string_opt ("0x" ^ w) with Some x -> x | None -> fail ()
      in
      let s0 = word a and s1 = word b and s2 = word c and s3 = word d in
      if s0 = 0L && s1 = 0L && s2 = 0L && s3 = 0L then fail ();
      { s0; s1; s2; s3 }
  | _ -> fail ()

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))
