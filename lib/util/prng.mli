(** Deterministic pseudo-random number generator (xoshiro256 star-star).

    All stochastic components of the library take an explicit generator so
    that experiments are reproducible.  The stdlib [Random] module is not
    used anywhere in library code. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed (via splitmix64
    state expansion). Equal seeds yield equal streams. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val bits62 : t -> int
(** Next 62-bit non-negative integer. *)

val int : t -> int -> int
(** [int t bound] is exactly uniform in [0, bound) (rejection sampling —
    no modulo bias). [bound] must be positive. *)

val float : t -> float
(** Uniform float in [0, 1) with 53 random bits. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)

val save : t -> string
(** The generator state as a versioned printable token
    (["xoshiro256ss:v1:<hex>:<hex>:<hex>:<hex>"]).  Saving does not
    advance the generator. *)

val restore : string -> t
(** Rebuild a generator from {!save} output; the restored generator
    continues the exact stream of the saved one (bit-identical resume of
    checkpointed campaigns).  Raises [Invalid_argument] on a malformed or
    all-zero token. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly chosen element of a non-empty array. *)
