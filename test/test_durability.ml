open Dynmos_server
open Dynmos_faultsim
open Dynmos_circuits
module Obs = Dynmos_obs.Obs
module Chaos = Dynmos_chaos.Chaos
module Prng = Dynmos_util.Prng

(* Durability tests: the write-ahead job journal, the persistent result
   cache, per-job checkpoints, and the whole kill -9 recovery story —
   a crash is simulated by writing exactly the on-disk state a killed
   process leaves (admits without dones, checkpoints, torn files) and
   asserting the next boot replays it to results bit-identical with a
   crash-free run. *)

let check = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

(* --- Helpers ------------------------------------------------------------------ *)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o700;
  path

let rec rm_rf p =
  match Unix.lstat p with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
      Unix.rmdir p
  | _ -> Sys.remove p
  | exception Unix.Unix_error _ -> ()

let with_dir prefix f =
  let dir = temp_dir prefix in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

(* The serve-loop limits the crash-simulation envelopes are parsed
   under; must match [durable_config] so a replayed envelope carries the
   same clamped deadline the live admission would have produced. *)
let limits =
  { Protocol.max_patterns = 4096; max_seconds = 30.0; max_request_evals = None }

let envelope_of line =
  match Protocol.parse_request ~limits ~known_circuit:Catalog.mem line with
  | Ok (Protocol.Run r) -> Protocol.run_envelope r
  | Ok _ -> Alcotest.fail "envelope_of: not a run request"
  | Error e -> Alcotest.failf "envelope_of: %s" e

let durable_config dir =
  {
    Server.default_config with
    Server.max_patterns = 4096;
    max_seconds = 30.0;
    executors = 1;
    data_dir = Some dir;
  }

(* One client session against an existing server (same idiom as
   test_server.ml). *)
let run_on t lines =
  let remaining = ref lines in
  let input () =
    match !remaining with
    | [] -> None
    | l :: rest ->
        remaining := rest;
        Some l
  in
  let m = Mutex.create () in
  let out = ref [] in
  let output s =
    Mutex.lock m;
    out := s :: !out;
    Mutex.unlock m
  in
  ignore (Server.serve t ~input ~output () : Server.stop);
  List.rev !out

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error e -> Alcotest.failf "response is not valid JSON: %s (%s)" s e

let field name resp =
  match Json.member name (parse_ok resp) with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name resp

let status resp = match field "status" resp with Json.String s -> s | _ -> "?"
let line_of resp = match field "line" resp with Json.Int n -> n | _ -> -1
let int_field name resp = match field name resp with Json.Int n -> n | _ -> -1

let bool_field name resp =
  match field name resp with Json.Bool b -> b | _ -> Alcotest.failf "%s not a bool" name

let float_field name resp =
  match field name resp with
  | Json.Float f -> f
  | Json.Int n -> float_of_int n
  | _ -> Alcotest.failf "%s not a number" name

let response_for n resps =
  match List.find_opt (fun r -> line_of r = n) resps with
  | Some r -> r
  | None -> Alcotest.failf "no response for line %d" n

let stat t name =
  match List.assoc_opt name (Server.stats_line t) with
  | Some (Json.Int n) -> n
  | _ -> Alcotest.failf "stats lack %S" name

(* Engine workload mirroring the server's exec path exactly: same PRNG
   construction, same pattern generation. *)
let workload name ~patterns ~seed =
  let nl = match Catalog.find name with Ok nl -> nl | Error e -> Alcotest.fail e in
  let u = Faultsim.universe nl in
  let prng = Prng.create seed in
  let pats =
    Faultsim.random_patterns prng
      ~n_inputs:(List.length (Dynmos_netlist.Netlist.inputs nl))
      ~count:patterns
  in
  (u, pats)

let evals_of events =
  List.fold_left
    (fun acc e ->
      if e.Obs.ev <> "faultsim.run" then acc
      else
        let get = Obs.int_field e in
        acc + (match get "gate_evals" with Some n -> n | None -> Option.value ~default:0 (get "evals")))
    0 events

let run_clean_serial u pats =
  let mem, fetch = Obs.memory_sink () in
  let s = Faultsim.run_serial ~drop:true ~algo:`Cone ~obs:(Obs.make mem) u pats in
  (s, evals_of (fetch ()))

(* --- Journal -------------------------------------------------------------------- *)

let test_journal_roundtrip () =
  with_dir "dynmos_jnl" @@ fun dir ->
  let path = Filename.concat dir "journal" in
  let j = Journal.open_ path in
  check_i "fresh generation" 1 (Journal.generation j);
  let a = Journal.append_admit j ~envelope:{|{"op":"run","circuit":"fig5"}|} in
  let b = Journal.append_admit j ~envelope:{|{"op":"run","circuit":"carry8"}|} in
  let c = Journal.append_admit j ~envelope:{|{"op":"run","circuit":"fig9"}|} in
  check "jids ascend" true (a < b && b < c);
  Journal.append_done j ~jid:a ~status:"ok";
  Journal.append_done j ~jid:c ~status:"error";
  check_i "one pending" 1 (Journal.pending_count j);
  check "appends fsync'd" true (Journal.fsyncs j >= Journal.appends j);
  Journal.close j;
  (* Reopen: only the undone admit survives as recovery work. *)
  let j2 = Journal.open_ path in
  check_i "generation bumped" 2 (Journal.generation j2);
  check_i "no torn tail" 0 (Journal.truncated_tail j2);
  (match Journal.recovered j2 with
  | [ e ] ->
      check_i "pending jid" b e.Journal.jid;
      check_s "pending envelope" {|{"op":"run","circuit":"carry8"}|} e.Journal.envelope
  | l -> Alcotest.failf "expected 1 recovered entry, got %d" (List.length l));
  Journal.close j2

let test_journal_torn_tail () =
  with_dir "dynmos_jnl" @@ fun dir ->
  let path = Filename.concat dir "journal" in
  let j = Journal.open_ path in
  let a = Journal.append_admit j ~envelope:{|{"op":"run","circuit":"fig5"}|} in
  Journal.close j;
  (* kill -9 mid-append: half a record, no newline. *)
  let oc = open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 path in
  output_string oc "deadbeef admit 1 {\"op\"";
  close_out oc;
  let j2 = Journal.open_ path in
  check_i "torn tail detected" 1 (Journal.truncated_tail j2);
  check_i "good prefix kept" 1 (Journal.pending_count j2);
  check_i "kept jid" a (List.hd (Journal.recovered j2)).Journal.jid;
  (* The truncation must leave a clean append point: new records land on
     their own lines and survive a further reopen. *)
  let b = Journal.append_admit j2 ~envelope:{|{"op":"run","circuit":"fig9"}|} in
  Journal.close j2;
  let j3 = Journal.open_ path in
  check_i "no torn tail after repair" 0 (Journal.truncated_tail j3);
  check_i "both pending" 2 (Journal.pending_count j3);
  check "fresh jid not reused" true (b > a);
  Journal.close j3

let test_journal_crc_rejects_corruption () =
  with_dir "dynmos_jnl" @@ fun dir ->
  let path = Filename.concat dir "journal" in
  let j = Journal.open_ path in
  ignore (Journal.append_admit j ~envelope:{|{"op":"run","circuit":"fig5"}|} : int);
  ignore (Journal.append_admit j ~envelope:{|{"op":"run","circuit":"fig9"}|} : int);
  Journal.close j;
  (* Flip one payload byte of the second admit record: its CRC fails and
     everything from there on is untrusted. *)
  let raw = read_file path in
  let idx = String.rindex raw 'f' in  (* the 'f' of the last "fig9" *)
  let mutated = Bytes.of_string raw in
  Bytes.set mutated idx 'X';
  write_file path (Bytes.to_string mutated);
  let j2 = Journal.open_ path in
  check_i "corrupt record truncated" 1 (Journal.truncated_tail j2);
  check_i "only the intact admit survives" 1 (Journal.pending_count j2);
  Journal.close j2

let test_journal_compaction () =
  with_dir "dynmos_jnl" @@ fun dir ->
  let path = Filename.concat dir "journal" in
  let j = Journal.open_ ~rotate_limit:8 path in
  let keep = Journal.append_admit j ~envelope:{|{"op":"run","circuit":"carry8"}|} in
  for _ = 1 to 20 do
    let jid = Journal.append_admit j ~envelope:{|{"op":"run","circuit":"fig5"}|} in
    Journal.append_done j ~jid ~status:"ok"
  done;
  check "auto-compacted" true (Journal.compactions j > 0);
  check_i "pending survives compaction" 1 (Journal.pending_count j);
  let gen = Journal.generation j in
  Journal.close j;
  (* The compacted segment must be small (completed pairs folded away)
     and reopen with the pending admit and the generation intact. *)
  check "segment shrank" true (String.length (read_file path) < 512);
  let j2 = Journal.open_ path in
  check_i "generation survives compaction" (gen + 1) (Journal.generation j2);
  check_i "pending jid survives" keep (List.hd (Journal.recovered j2)).Journal.jid;
  Journal.close j2;
  (* Forced compaction (the SIGHUP path) on a quiet journal. *)
  let j3 = Journal.open_ path in
  Journal.compact j3;
  check "forced compaction counted" true (Journal.compactions j3 >= 1);
  check_i "pending intact after force" 1 (Journal.pending_count j3);
  Journal.close j3

let test_journal_chaos_compact_crash () =
  with_dir "dynmos_jnl" @@ fun dir ->
  let path = Filename.concat dir "journal" in
  let j = Journal.open_ path in
  ignore (Journal.append_admit j ~envelope:{|{"op":"run","circuit":"fig5"}|} : int);
  Journal.close j;
  (* A compaction that dies mid-rewrite leaves the live segment
     untouched plus tmp garbage the next open sweeps. *)
  let chaos =
    match Chaos.of_spec "journal.compact=torn_write,seed=5" with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  let j2 = Journal.open_ ~chaos path in
  (match Journal.compact j2 with
  | () -> Alcotest.fail "torn compaction should raise"
  | exception Journal.Error _ -> ());
  check_i "segment intact after torn compaction" 1 (Journal.pending_count j2);
  Journal.close j2;
  let j3 = Journal.open_ path in
  check "stale compaction tmp swept" true (Journal.stale_cleaned j3 >= 1);
  check_i "pending intact" 1 (Journal.pending_count j3);
  Journal.close j3

(* --- Cache store ----------------------------------------------------------------- *)

let test_cache_store_roundtrip () =
  with_dir "dynmos_cache" @@ fun dir ->
  let u, pats = workload "fig5" ~patterns:16 ~seed:3 in
  let summary, evals = run_clean_serial u pats in
  let e =
    {
      Cache_store.key = "k|serial|cone|true";
      summary;
      dt_s = 0x1.9p-3;
      evals;
      n_sites = Faultsim.n_sites u;
    }
  in
  Cache_store.save dir e;
  let back = Cache_store.load (Cache_store.file_of dir e.Cache_store.key) in
  check_s "key" e.Cache_store.key back.Cache_store.key;
  check "summary bit-identical" true (back.Cache_store.summary = summary);
  check "dt_s exact" true (back.Cache_store.dt_s = e.Cache_store.dt_s);
  check_i "evals" evals back.Cache_store.evals;
  let entries, corrupt = Cache_store.load_all dir in
  check_i "one healthy entry" 1 (List.length entries);
  check_i "no corruption" 0 corrupt

let test_cache_store_quarantine () =
  with_dir "dynmos_cache" @@ fun dir ->
  let u, pats = workload "fig5" ~patterns:8 ~seed:1 in
  let summary, evals = run_clean_serial u pats in
  let entry key =
    { Cache_store.key; summary; dt_s = 0.5; evals; n_sites = Faultsim.n_sites u }
  in
  Cache_store.save dir (entry "healthy");
  (* A torn persist publishes a truncated file at the final name — the
     exact artifact the [cache.persist] chaos point injects. *)
  let chaos =
    match Chaos.of_spec "cache.persist=torn_write,seed=9" with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  (match Cache_store.save ~chaos dir (entry "torn") with
  | () -> Alcotest.fail "torn persist should raise"
  | exception Cache_store.Error _ -> ());
  (* An entry renamed under the wrong name must not serve. *)
  Cache_store.save dir (entry "misplaced");
  Sys.rename
    (Cache_store.file_of dir "misplaced")
    (Filename.concat dir (String.make 32 '0' ^ ".entry"));
  let entries, corrupt = Cache_store.load_all dir in
  check_i "one healthy survives" 1 (List.length entries);
  check_s "the right one" "healthy" (List.hd entries).Cache_store.key;
  check_i "two quarantined" 2 corrupt;
  let corrupt_files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".corrupt")
  in
  check_i "quarantine artifacts kept" 2 (List.length corrupt_files);
  (* Quarantine is sticky: a rescan must not recount or resurrect. *)
  let entries2, corrupt2 = Cache_store.load_all dir in
  check_i "rescan stable (healthy)" 1 (List.length entries2);
  check_i "rescan stable (corrupt)" 0 corrupt2

(* --- Server: warm-restart cache ---------------------------------------------------- *)

let test_server_warm_restart_cache () =
  with_dir "dynmos_dur" @@ fun dir ->
  let req = {|{"circuit":"fig5","patterns":32,"seed":3}|} in
  let t1 = Server.create ~config:(durable_config dir) () in
  let cold =
    Fun.protect
      ~finally:(fun () -> Server.shutdown t1)
      (fun () ->
        let r = response_for 1 (run_on t1 [ req ]) in
        check_s "cold run ok" "ok" (status r);
        check "cold not cached" false (bool_field "cached" r);
        check "cold not recovered" false (bool_field "recovered" r);
        r)
  in
  (* Same data dir, new process: the result must come back from disk,
     bit-identical, with zero simulation. *)
  let t2 = Server.create ~config:(durable_config dir) () in
  Fun.protect
    ~finally:(fun () -> Server.shutdown t2)
    (fun () ->
      check_i "cache rehydrated" 1 (stat t2 "cache_loaded");
      check_i "nothing quarantined" 0 (stat t2 "cache_corrupt_quarantined");
      check_i "second boot generation" 2 (stat t2 "restart_generation");
      let warm = response_for 1 (run_on t2 [ req ]) in
      check_s "warm run ok" "ok" (status warm);
      check "warm cached" true (bool_field "cached" warm);
      check "warm recovered" true (bool_field "recovered" warm);
      List.iter
        (fun f ->
          check (f ^ " bit-identical across restart") true
            (field f warm = field f cold))
        [ "coverage"; "detected"; "gate_evals"; "dt_s"; "sites" ])

(* --- Server: kill -9 recovery -------------------------------------------------------- *)

let test_server_recovers_journaled_job () =
  with_dir "dynmos_dur" @@ fun dir ->
  let req = {|{"circuit":"carry8","patterns":48,"seed":11}|} in
  (* The crashed process: the job was admitted (journaled) but never
     finished — no done record, no cache entry. *)
  let j = Journal.open_ (Filename.concat dir "journal") in
  ignore (Journal.append_admit j ~envelope:(envelope_of req) : int);
  Journal.close j;
  let u, pats = workload "carry8" ~patterns:48 ~seed:11 in
  let clean, _ = run_clean_serial u pats in
  let t = Server.create ~config:(durable_config dir) () in
  Fun.protect
    ~finally:(fun () -> Server.shutdown t)
    (fun () ->
      Server.wait_recovery t;
      check_i "journal drained" 0 (stat t "journal_pending");
      check_i "one job replayed" 1 (stat t "journal_recovered");
      check_i "second boot" 2 (stat t "restart_generation");
      (* The original client's retry: answered from the recovered state,
         bit-identical with a crash-free run. *)
      let r = response_for 1 (run_on t [ req ]) in
      check_s "retry ok" "ok" (status r);
      check "retry cached" true (bool_field "cached" r);
      check "retry flagged recovered" true (bool_field "recovered" r);
      check_i "detected = crash-free" (Faultsim.n_detected clean) (int_field "detected" r);
      check "coverage = crash-free" true
        (float_field "coverage" r = Faultsim.coverage clean))

let test_server_recovery_resumes_checkpoint () =
  with_dir "dynmos_dur" @@ fun dir ->
  let patterns = 64 and seed = 7 in
  let u, pats = workload "carry8" ~patterns ~seed in
  let clean, clean_evals = run_clean_serial u pats in
  (* The crashed campaign: ran under the server's checkpoint identity,
     died roughly halfway (eval budget stands in for kill -9 — both
     leave the same on-disk state: a valid checkpoint, no done record). *)
  let ident =
    String.concat "|"
      [
        Faultsim.circuit_digest u;
        Faultsim.universe_digest u;
        Faultsim.patterns_digest pats;
        "serial";
        "cone";
        "true";
      ]
  in
  let ckpt_dir = Filename.concat dir "ckpt" in
  Unix.mkdir ckpt_dir 0o755;
  let path = Filename.concat ckpt_dir (Digest.to_hex (Digest.string ident) ^ ".ckpt") in
  let ctl = Faultsim.checkpoint_ctl ~path ~interval:1 u pats in
  let partial =
    Faultsim.run_serial ~drop:true ~algo:`Cone ~max_evals:(clean_evals / 2) ~checkpoint:ctl
      u pats
  in
  (match partial.Faultsim.outcome with
  | Outcome.Partial _ -> ()
  | Outcome.Complete -> Alcotest.fail "budget was meant to stop the first run");
  check "first run made progress" true (partial.Faultsim.patterns_done > 0);
  let req = Printf.sprintf {|{"circuit":"carry8","patterns":%d,"seed":%d}|} patterns seed in
  let j = Journal.open_ (Filename.concat dir "journal") in
  ignore (Journal.append_admit j ~envelope:(envelope_of req) : int);
  Journal.close j;
  (* Reboot with per-job checkpointing on: recovery must resume the
     campaign, not restart it — strictly fewer evaluations than a cold
     run, identical detections. *)
  let config = { (durable_config dir) with Server.ckpt_patterns = 0; ckpt_interval = 1 } in
  let t = Server.create ~config () in
  Fun.protect
    ~finally:(fun () -> Server.shutdown t)
    (fun () ->
      Server.wait_recovery t;
      check_i "journal drained" 0 (stat t "journal_pending");
      let r = response_for 1 (run_on t [ req ]) in
      check_s "retry ok" "ok" (status r);
      check "retry cached" true (bool_field "cached" r);
      check "retry flagged recovered" true (bool_field "recovered" r);
      check_i "detected = crash-free" (Faultsim.n_detected clean) (int_field "detected" r);
      check "coverage = crash-free" true
        (float_field "coverage" r = Faultsim.coverage clean);
      let resumed_evals = int_field "gate_evals" r in
      check "resumed, not restarted" true (resumed_evals > 0 && resumed_evals < clean_evals);
      (* A completed job's checkpoint is discarded. *)
      check "checkpoint removed on completion" false (Sys.file_exists path))

let test_server_journal_admission_gate () =
  with_dir "dynmos_dur" @@ fun dir ->
  (* Log-before-work: if the journal cannot take the admit record, the
     request is refused — never run undurable. *)
  let chaos =
    match Chaos.of_spec "journal.append=fail_once,seed=2" with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  let config = { (durable_config dir) with Server.chaos } in
  let t = Server.create ~config () in
  Fun.protect
    ~finally:(fun () -> Server.shutdown t)
    (fun () ->
      let req = {|{"circuit":"fig5","patterns":8,"seed":1}|} in
      let resps = run_on t [ req; req ] in
      let r1 = response_for 1 resps and r2 = response_for 2 resps in
      check_s "unjournaled request refused" "error" (status r1);
      check "refusal names the journal" true
        (match field "error" r1 with
        | Json.String m ->
            (* the admission gate, not some engine failure *)
            String.length m >= 7 && String.sub m 0 7 = "journal"
        | _ -> false);
      check_s "journal recovered, next request runs" "ok" (status r2))

(* --- Sites-mode checkpoints under fire (domains engine) ---------------------------- *)

let test_sites_checkpoint_backup_rotation () =
  with_dir "dynmos_ckpt" @@ fun dir ->
  let u, pats = workload "carry8" ~patterns:16 ~seed:5 in
  let clean =
    Faultsim.run_domain_parallel ~drop:true ~algo:`Cone ~num_domains:2 u pats
  in
  let path = Filename.concat dir "sites.ckpt" in
  let ctl = Faultsim.checkpoint_ctl ~path ~interval:1 u pats in
  let s = Faultsim.run_domain_parallel ~drop:true ~algo:`Cone ~num_domains:2 ~checkpoint:ctl u pats in
  check "campaign complete" true (s.Faultsim.outcome = Outcome.Complete);
  check "interval 1 wrote repeatedly" true (Checkpoint.writes ctl >= 2);
  check "rotation left a backup" true (Sys.file_exists (path ^ ".bak"));
  (* Corrupt the primary mid-publish: recovery must fall back to the
     .bak and say so. *)
  let raw = read_file path in
  write_file path (String.sub raw 0 (String.length raw / 2));
  let st, from_bak = Checkpoint.load_or_backup path in
  check "salvaged from backup" true from_bak;
  check "site-sweep mode" true (st.Checkpoint.mode = Checkpoint.Sites);
  let ctl2 = Faultsim.checkpoint_ctl ~path ~interval:1 ~resume:true u pats in
  check "controller records the backup source" true (Checkpoint.resumed_from_backup ctl2);
  let resumed =
    Faultsim.run_domain_parallel ~drop:true ~algo:`Cone ~num_domains:2 ~checkpoint:ctl2 u
      pats
  in
  check "resume from .bak is bit-identical" true
    (resumed.Faultsim.first_detection = clean.Faultsim.first_detection);
  check_i "all sites final" (Faultsim.n_sites u) resumed.Faultsim.sites_done

let test_sites_checkpoint_torn_write_chaos () =
  with_dir "dynmos_ckpt" @@ fun dir ->
  let u, pats = workload "fig5" ~patterns:12 ~seed:4 in
  let clean = Faultsim.run_domain_parallel ~drop:true ~algo:`Cone ~num_domains:2 u pats in
  let path = Filename.concat dir "sites.ckpt" in
  (* Pre-plant a stale tmp from a "crashed" writer; the controller must
     sweep it at creation. *)
  write_file (path ^ ".tmp.99999") "garbage";
  let chaos =
    match Chaos.of_spec "ckpt.write=torn_write,seed=3" with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  let ctl = Faultsim.checkpoint_ctl ~path ~interval:1 ~chaos u pats in
  check "stale tmp swept" true (Checkpoint.stale_cleaned ctl >= 1);
  let s =
    Faultsim.run_domain_parallel ~drop:true ~algo:`Cone ~num_domains:2 ~checkpoint:ctl u
      pats
  in
  check "torn write absorbed, campaign complete" true (s.Faultsim.outcome = Outcome.Complete);
  check "torn write counted" true (Checkpoint.failed_writes ctl >= 1);
  check "detections unaffected by chaos" true
    (s.Faultsim.first_detection = clean.Faultsim.first_detection);
  (* Whatever the chaos left behind, the published pair must still load. *)
  let st, _ = Checkpoint.load_or_backup path in
  check_i "final state is the full sweep" (Faultsim.n_sites u) st.Checkpoint.units_done

(* --- QCheck soak: kill/restart under random chaos ---------------------------------- *)

(* Each iteration builds a crashed server's on-disk state (journaled
   admits without outcomes), then boots with a random chaos schedule
   armed over the durability points and asserts recovery still converges
   to coverage bit-identical with a chaos-free run.  The chaos points
   here are the absorb-and-continue ones; the fail-the-request semantics
   of [journal.append] has its own deterministic test above. *)
let qcheck_recovery_soak =
  let gen =
    QCheck2.Gen.(
      let circuit = oneofl [ "fig5"; "fig9"; "carry8" ] in
      let job = triple circuit (int_range 1 40) (int_range 0 99) in
      triple (list_size (int_range 1 3) job) (int_range 0 7) (int_range 1 1000))
  in
  QCheck2.Test.make ~count:12 ~name:"kill -9 recovery under random chaos schedules" gen
    (fun (jobs, chaos_bits, chaos_seed) ->
      with_dir "dynmos_soak" @@ fun dir ->
      let spec =
        let parts =
          List.filteri
            (fun i _ -> chaos_bits land (1 lsl i) <> 0)
            [
              "journal.fsync=fail_prob:0.5";
              "journal.compact=torn_write";
              "cache.persist=torn_write";
            ]
        in
        match parts with
        | [] -> ""
        | _ -> String.concat "," (parts @ [ Printf.sprintf "seed=%d" chaos_seed ])
      in
      let chaos =
        if spec = "" then Chaos.disabled
        else
          match Chaos.of_spec spec with
          | Ok c -> c
          | Error e -> QCheck2.Test.fail_reportf "bad generated spec %S: %s" spec e
      in
      let reqs =
        List.map
          (fun (c, p, s) ->
            Printf.sprintf {|{"circuit":%S,"patterns":%d,"seed":%d}|} c p s)
          jobs
      in
      (* The crash: all admitted, none finished. *)
      let j = Journal.open_ (Filename.concat dir "journal") in
      List.iter (fun r -> ignore (Journal.append_admit j ~envelope:(envelope_of r) : int)) reqs;
      Journal.close j;
      let config = { (durable_config dir) with Server.chaos } in
      let t = Server.create ~config () in
      Fun.protect
        ~finally:(fun () -> Server.shutdown t)
        (fun () ->
          Server.wait_recovery t;
          if stat t "journal_pending" <> 0 then
            QCheck2.Test.fail_reportf "spec %S left %d jobs pending" spec
              (stat t "journal_pending");
          let resps = run_on t reqs in
          List.iteri
            (fun i req ->
              let r = response_for (i + 1) resps in
              if status r <> "ok" then
                QCheck2.Test.fail_reportf "spec %S: %s -> %s" spec req r;
              let c, p, s =
                match List.nth jobs i with c, p, s -> (c, p, s)
              in
              let u, pats = workload c ~patterns:p ~seed:s in
              let clean, _ = run_clean_serial u pats in
              if
                int_field "detected" r <> Faultsim.n_detected clean
                || float_field "coverage" r <> Faultsim.coverage clean
              then
                QCheck2.Test.fail_reportf
                  "spec %S: recovered coverage diverges from chaos-free run on %s" spec req)
            reqs;
          true))

(* --- Maintenance (the SIGHUP hook) -------------------------------------------------- *)

let test_maintenance_compacts_and_repersists () =
  with_dir "dynmos_dur" @@ fun dir ->
  (* Every persist fails; maintenance later retries them with the chaos
     exhausted (fail_once semantics). *)
  let chaos =
    match Chaos.of_spec "cache.persist=fail_once,seed=6" with
    | Ok c -> c
    | Error e -> Alcotest.fail e
  in
  let config = { (durable_config dir) with Server.chaos } in
  let t = Server.create ~config () in
  Fun.protect
    ~finally:(fun () -> Server.shutdown t)
    (fun () ->
      let r = response_for 1 (run_on t [ {|{"circuit":"fig5","patterns":16,"seed":2}|} ]) in
      check_s "run ok despite persist failure" "ok" (status r);
      check_i "persist failure counted" 1 (stat t "cache_persist_failed");
      check_i "nothing persisted yet" 0 (stat t "cache_persisted");
      Server.maintenance t;
      check_i "maintenance re-persisted the entry" 1 (stat t "cache_persisted");
      check "journal compacted" true (stat t "journal_compactions" >= 1));
  (* The re-persisted entry must be the one a restart loads. *)
  let t2 = Server.create ~config:(durable_config dir) () in
  Fun.protect
    ~finally:(fun () -> Server.shutdown t2)
    (fun () -> check_i "repersisted entry survives restart" 1 (stat t2 "cache_loaded"))

(* --- Suite -------------------------------------------------------------------------- *)

let () =
  Alcotest.run "dynmos durability"
    [
      ( "journal",
        [
          Alcotest.test_case "round-trip and pending tracking" `Quick test_journal_roundtrip;
          Alcotest.test_case "torn tail truncated on open" `Quick test_journal_torn_tail;
          Alcotest.test_case "CRC rejects corrupted records" `Quick
            test_journal_crc_rejects_corruption;
          Alcotest.test_case "compaction folds completed pairs" `Quick
            test_journal_compaction;
          Alcotest.test_case "torn compaction leaves segment intact" `Quick
            test_journal_chaos_compact_crash;
        ] );
      ( "cache store",
        [
          Alcotest.test_case "round-trip is exact" `Quick test_cache_store_roundtrip;
          Alcotest.test_case "corrupt entries quarantined" `Quick
            test_cache_store_quarantine;
        ] );
      ( "server recovery",
        [
          Alcotest.test_case "warm restart serves bit-identical cached results" `Quick
            test_server_warm_restart_cache;
          Alcotest.test_case "journaled job replayed after kill -9" `Quick
            test_server_recovers_journaled_job;
          Alcotest.test_case "recovery resumes from the job checkpoint" `Quick
            test_server_recovery_resumes_checkpoint;
          Alcotest.test_case "admission refused when the journal cannot log" `Quick
            test_server_journal_admission_gate;
          Alcotest.test_case "SIGHUP maintenance compacts and re-persists" `Quick
            test_maintenance_compacts_and_repersists;
        ] );
      ( "sites-mode checkpoints",
        [
          Alcotest.test_case "load_or_backup salvages the .bak rotation" `Quick
            test_sites_checkpoint_backup_rotation;
          Alcotest.test_case "torn ckpt writes absorbed and counted" `Quick
            test_sites_checkpoint_torn_write_chaos;
        ] );
      ("soak", [ QCheck_alcotest.to_alcotest qcheck_recovery_soak ]);
    ]
