open Dynmos_util
open Dynmos_cell
open Dynmos_faultsim
open Dynmos_circuits
module Chaos = Dynmos_chaos.Chaos
module Backoff = Parallel_exec.Backoff
module Scheduler = Parallel_exec.Scheduler

(* The chaos layer's contract is determinism: a spec plus a seed IS the
   failure schedule.  These tests pin the spec grammar, the per-point
   stream independence, the replay guarantee end-to-end through the
   serial engine, the hardening each injection point exposes (checkpoint
   fallback, scheduler watchdog, supervised backoff), and a soak
   property over random schedules. *)

let check = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

let chaos_of_spec spec =
  match Chaos.of_spec spec with
  | Ok c -> c
  | Error e -> Alcotest.failf "of_spec %S: %s" spec e

let fixture ?(seed = 3) ?(n_inputs = 6) ?(count = 60) () =
  let nl =
    Generators.random_monotone ~seed ~n_inputs ~n_gates:20
      ~technology:Technology.Domino_cmos ()
  in
  let u = Faultsim.universe nl in
  let prng = Prng.create (seed + 1000) in
  let pats = Faultsim.random_patterns prng ~n_inputs ~count in
  (u, pats)

let with_temp_checkpoint f =
  let path = Filename.temp_file "dynmos_chaos_ckpt" ".dat" in
  Sys.remove path;
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> if Sys.file_exists p then Sys.remove p)
        [ path; path ^ ".bak"; Printf.sprintf "%s.tmp.%d" path (Unix.getpid ()) ])
    (fun () -> f path)

(* --- Spec grammar ------------------------------------------------------------- *)

let test_spec_roundtrip () =
  check "empty spec is the disabled registry" false (Chaos.enabled (chaos_of_spec ""));
  check_s "disabled prints as the empty spec" "" (Chaos.to_spec Chaos.disabled);
  let spec =
    "ckpt.write=fail_once,sched.task=fail_prob:0.25,serve.read=delay:5,cache.insert=torn_write,seed=7"
  in
  let c = chaos_of_spec spec in
  check "parsed spec is enabled" true (Chaos.enabled c);
  check_i "seed parsed" 7 (Chaos.seed c);
  (* to_spec is canonical: parsing its own output is a fixed point *)
  let canon = Chaos.to_spec c in
  check_s "canonical form round-trips" canon (Chaos.to_spec (chaos_of_spec canon))

let test_spec_errors () =
  let bad s = match Chaos.of_spec s with Error _ -> true | Ok _ -> false in
  check "unknown point" true (bad "bogus=fail_once");
  check "unknown action" true (bad "sched.task=explode");
  check "probability above 1" true (bad "sched.task=fail_prob:1.5");
  check "negative delay" true (bad "serve.read=delay:-1");
  check "seed without any point" true (bad "seed=3");
  check "unparsable seed" true (bad "sched.task=fail_once,seed=x")

(* --- Determinism of the injection streams ------------------------------------- *)

let decisions c p n = List.init n (fun _ -> Chaos.decide c p)

(* Each point draws from its own seeded stream, so point A's Nth
   decision cannot depend on how many times point B was tapped in
   between — the property that makes schedules replayable even when
   thread interleavings differ across runs. *)
let test_per_point_independence () =
  let plan =
    [ (Chaos.Sched_task, Chaos.Fail_prob 0.5); (Chaos.Exec_job, Chaos.Fail_prob 0.5) ]
  in
  let solo = decisions (Chaos.create ~seed:11 plan) Chaos.Sched_task 64 in
  let b = Chaos.create ~seed:11 plan in
  let interleaved =
    List.init 64 (fun _ ->
        let v = Chaos.decide b Chaos.Sched_task in
        ignore (Chaos.decide b Chaos.Exec_job : Chaos.verdict);
        v)
  in
  check "interleaving another point leaves the stream unchanged" true (solo = interleaved);
  check "the stream actually injects" true (List.exists (fun v -> v = Chaos.Fail) solo);
  check "the stream actually passes" true (List.exists (fun v -> v = Chaos.Pass) solo)

let test_fail_once () =
  let c = Chaos.create ~seed:1 [ (Chaos.Ckpt_write, Chaos.Fail_once) ] in
  check "first tap fails" true (Chaos.decide c Chaos.Ckpt_write = Chaos.Fail);
  check "subsequent taps pass" true
    (List.for_all (fun v -> v = Chaos.Pass) (decisions c Chaos.Ckpt_write 8));
  check_i "exactly one injection counted" 1 (Chaos.injected c);
  check "unconfigured points always pass" true
    (List.for_all (fun v -> v = Chaos.Pass) (decisions c Chaos.Serve_write 8))

(* --- Replay guarantee --------------------------------------------------------- *)

(* The acceptance bar: the same --chaos spec reproduces the same
   injection sequence AND the same final report across two runs. *)
let test_replay_identical () =
  let spec = "exec.job=fail_prob:0.3,seed=5" in
  let run () =
    let u, pats = fixture () in
    let c = chaos_of_spec spec in
    let s = Faultsim.run_serial ~drop:false ~backoff:Backoff.none ~chaos:c u pats in
    (c, s)
  in
  let c1, s1 = run () in
  let c2, s2 = run () in
  check "injections occurred at all" true (Chaos.injected c1 > 0);
  check "identical injection journal" true (Chaos.journal c1 = Chaos.journal c2);
  check "identical per-point counts" true (Chaos.counts c1 = Chaos.counts c2);
  check "identical outcome" true (s1.Faultsim.outcome = s2.Faultsim.outcome);
  check "identical detections" true
    (s1.Faultsim.first_detection = s2.Faultsim.first_detection)

(* --- Supervised backoff ------------------------------------------------------- *)

let test_backoff_delays () =
  let prng = Prng.create 1 in
  let b = Backoff.make ~base_s:0.01 ~cap_s:0.05 in
  for _ = 1 to 20 do
    let d1 = Backoff.delay b prng ~attempt:1 in
    check "attempt 1 jittered into [base/2, base)" true (d1 >= 0.005 && d1 < 0.01);
    let d4 = Backoff.delay b prng ~attempt:4 in
    check "attempt 4 capped then jittered" true (d4 >= 0.025 && d4 < 0.05)
  done;
  check "Backoff.none never sleeps" true (Backoff.delay Backoff.none prng ~attempt:9 = 0.0)

(* --- Checkpoint hardening ----------------------------------------------------- *)

let test_stale_tmp_cleanup () =
  with_temp_checkpoint @@ fun path ->
  let stale = path ^ ".tmp.99999" in
  let oc = open_out stale in
  output_string oc "leftover from a crashed writer";
  close_out oc;
  let u, pats = fixture () in
  let ctl = Faultsim.checkpoint_ctl ~path ~interval:5 u pats in
  check_i "stale tmp swept at campaign start" 1 (Checkpoint.stale_cleaned ctl);
  check "the leftover is gone" false (Sys.file_exists stale)

let test_backup_fallback () =
  with_temp_checkpoint @@ fun path ->
  let u, pats = fixture () in
  let ctl = Faultsim.checkpoint_ctl ~path ~interval:5 u pats in
  ignore (Faultsim.run_serial ~drop:false ~checkpoint:ctl u pats : Faultsim.summary);
  check "rotation left a .bak" true (Sys.file_exists (path ^ ".bak"));
  let reference = Checkpoint.load (path ^ ".bak") in
  (* corrupt the primary: load_or_backup must fall back, not raise *)
  let oc = open_out_bin path in
  output_string oc "garbage, not a checkpoint";
  close_out oc;
  let st, used_backup = Checkpoint.load_or_backup path in
  check "fell back to .bak on a corrupt primary" true used_backup;
  check "fallback state parses to the rotated snapshot" true
    (st.Checkpoint.units_done = reference.Checkpoint.units_done);
  (* the mid-rotation window: no primary at all, only the .bak *)
  Sys.remove path;
  let _, used_backup = Checkpoint.load_or_backup path in
  check "fell back when the primary is missing entirely" true used_backup;
  (* both gone: the primary's own error must surface *)
  Sys.remove (path ^ ".bak");
  check "both missing still raises" true
    (match Checkpoint.load_or_backup path with
    | exception Checkpoint.Error _ -> true
    | _ -> false)

(* Checkpoint failure must never abort the simulation.  Three shapes:
   a one-shot torn write (simulated crash mid-file) is absorbed and the
   next interval publishes normally; a persistent write failure keeps
   the campaign alive with zero published files; and the torn tmp
   litter a crash leaves behind is swept by [cleanup_stale]. *)
let test_ckpt_chaos_absorbed () =
  with_temp_checkpoint @@ fun path ->
  let u, pats = fixture () in
  let torn = chaos_of_spec "ckpt.write=torn_write,seed=4" in
  let ctl = Faultsim.checkpoint_ctl ~path ~interval:5 ~chaos:torn u pats in
  let s = Faultsim.run_serial ~drop:false ~backoff:Backoff.none ~checkpoint:ctl u pats in
  check "campaign completes over a torn checkpoint write" true
    (Outcome.is_complete s.Faultsim.outcome);
  check "the torn write was absorbed and counted" true (Checkpoint.failed_writes ctl > 0);
  check "later intervals published normally" true (Checkpoint.writes ctl > 0);
  check "a primary exists after recovery" true (Sys.file_exists path);
  (* persistent failure: every single write refused *)
  with_temp_checkpoint @@ fun path2 ->
  let dead = chaos_of_spec "ckpt.write=fail_prob:1,seed=4" in
  let ctl2 = Faultsim.checkpoint_ctl ~path:path2 ~interval:5 ~chaos:dead u pats in
  let s2 =
    Faultsim.run_serial ~drop:false ~backoff:Backoff.none ~checkpoint:ctl2 u pats
  in
  check "campaign completes under persistent checkpoint failure" true
    (Outcome.is_complete s2.Faultsim.outcome);
  check "every failure absorbed and counted" true (Checkpoint.failed_writes ctl2 > 1);
  check_i "nothing published" 0 (Checkpoint.writes ctl2);
  check "no primary on disk" false (Sys.file_exists path2);
  (* a torn save leaves its truncated tmp behind; the next campaign
     over that path sweeps it *)
  let st = Checkpoint.load path in
  with_temp_checkpoint @@ fun path3 ->
  check "torn save raises" true
    (match Checkpoint.save ~chaos:(chaos_of_spec "ckpt.write=torn_write,seed=1") path3 st with
    | exception Checkpoint.Error _ -> true
    | () -> false);
  check_i "the truncated tmp was left behind" 1 (Checkpoint.cleanup_stale path3)

(* --- Scheduler: chaos kills, watchdog respawn, cancel race -------------------- *)

(* The cancel/respawn race: tasks are being chaos-killed (claimed,
   re-enqueued for rescue, the executor domain dies and is respawned)
   while one client cancels.  The invariants: no task ever runs twice,
   every admitted task either runs exactly once or is reported cancelled
   (no leaked queue slot), the surviving client is fully served, and the
   watchdog keeps the pool alive. *)
let test_scheduler_cancel_respawn_race () =
  let chaos = chaos_of_spec "sched.task=fail_prob:0.5,seed=9" in
  let sched = Scheduler.create ~num_domains:2 ~capacity:256 ~chaos () in
  Fun.protect ~finally:(fun () -> Scheduler.shutdown sched) @@ fun () ->
  let n = 40 in
  let ran0 = Array.make n 0 and ran1 = Array.make n 0 in
  let m = Mutex.create () in
  let submit client arr i =
    match
      Scheduler.submit sched ~client (fun () ->
          Mutex.lock m;
          arr.(i) <- arr.(i) + 1;
          Mutex.unlock m)
    with
    | `Ok _ -> true
    | `Full | `Closed -> false
  in
  let acc0 = ref 0 and acc1 = ref 0 in
  for i = 0 to n - 1 do
    if submit 0 ran0 i then incr acc0;
    if submit 1 ran1 i then incr acc1
  done;
  Thread.delay 0.02;
  let dropped = Scheduler.cancel sched ~client:0 in
  let sum a = Array.fold_left ( + ) 0 a in
  let deadline = Unix.gettimeofday () +. 30.0 in
  while
    (sum ran1 < !acc1 || sum ran0 + dropped < !acc0)
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.01
  done;
  check_i "surviving client saw every accepted task" !acc1 (sum ran1);
  check "no surviving-client task ran twice" true (Array.for_all (fun k -> k <= 1) ran1);
  check "no cancelled-client task ran twice" true (Array.for_all (fun k -> k <= 1) ran0);
  check_i "cancelled client's slots conserved (ran + dropped = admitted)" !acc0
    (sum ran0 + dropped);
  check "chaos actually killed executors" true (Chaos.injected chaos > 0);
  check "watchdog respawned killed executors" true (Scheduler.respawns sched > 0);
  check "the pool is still alive" true (Scheduler.live_workers sched >= 1)

(* --- Soak property ------------------------------------------------------------ *)

(* Random chaos schedules x random circuits through the serial engine
   with checkpointing armed: no schedule may hang the run (the qcheck
   driver itself is the timeout), and whenever the outcome is [Complete]
   the detections must be bit-identical to the chaos-free run.  Delays
   are 0 ms (a zero delay passes without sleeping) so the 100 cases
   stay fast. *)
let gen_schedule =
  QCheck2.Gen.(
    let point = oneofl [ "exec.job"; "ckpt.write"; "ckpt.rename"; "ckpt.fsync" ] in
    let action =
      oneof
        [
          return "fail_once";
          map (fun p -> Printf.sprintf "fail_prob:%.2f" p) (float_bound_inclusive 1.0);
          return "delay:0";
          return "torn_write";
        ]
    in
    let binding = map2 (fun p a -> p ^ "=" ^ a) point action in
    map2
      (fun bs seed -> String.concat "," (bs @ [ Printf.sprintf "seed=%d" seed ]))
      (list_size (int_range 1 3) binding)
      (int_range 0 10_000))

let qcheck_soak =
  QCheck2.Test.make
    ~name:"chaos soak: random schedules terminate; Complete => bit-identical" ~count:100
    QCheck2.Gen.(triple gen_schedule (int_range 0 5) (int_range 1 40))
    (fun (spec, cseed, npats) ->
      let u, pats = fixture ~seed:cseed ~n_inputs:5 ~count:npats () in
      let reference = Faultsim.run_serial ~drop:false u pats in
      let chaos =
        match Chaos.of_spec spec with
        | Ok c -> c
        | Error e -> QCheck2.Test.fail_reportf "generated a bad spec %S: %s" spec e
      in
      with_temp_checkpoint @@ fun path ->
      let ctl = Faultsim.checkpoint_ctl ~path ~interval:3 ~chaos u pats in
      let s =
        Faultsim.run_serial ~drop:false ~backoff:Backoff.none ~chaos ~checkpoint:ctl u pats
      in
      (match s.Faultsim.outcome with
      | Outcome.Complete ->
          if s.Faultsim.first_detection <> reference.Faultsim.first_detection then
            QCheck2.Test.fail_reportf "schedule %S changed a Complete run's detections"
              spec
      | Outcome.Partial _ -> ());
      true)

(* --- Suite -------------------------------------------------------------------- *)

let () =
  Alcotest.run "dynmos chaos"
    [
      ( "spec",
        [
          Alcotest.test_case "round-trip" `Quick test_spec_roundtrip;
          Alcotest.test_case "errors" `Quick test_spec_errors;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "per-point stream independence" `Quick
            test_per_point_independence;
          Alcotest.test_case "fail_once fires once" `Quick test_fail_once;
          Alcotest.test_case "replay guarantee end-to-end" `Quick test_replay_identical;
        ] );
      ( "hardening",
        [
          Alcotest.test_case "backoff delays" `Quick test_backoff_delays;
          Alcotest.test_case "stale tmp cleanup" `Quick test_stale_tmp_cleanup;
          Alcotest.test_case "corrupt primary falls back to .bak" `Quick
            test_backup_fallback;
          Alcotest.test_case "checkpoint chaos absorbed" `Quick test_ckpt_chaos_absorbed;
          Alcotest.test_case "scheduler cancel/respawn race" `Quick
            test_scheduler_cancel_respawn_race;
        ] );
      ("soak", [ QCheck_alcotest.to_alcotest qcheck_soak ]);
    ]
